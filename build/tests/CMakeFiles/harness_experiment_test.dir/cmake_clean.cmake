file(REMOVE_RECURSE
  "CMakeFiles/harness_experiment_test.dir/harness_experiment_test.cc.o"
  "CMakeFiles/harness_experiment_test.dir/harness_experiment_test.cc.o.d"
  "harness_experiment_test"
  "harness_experiment_test.pdb"
  "harness_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
