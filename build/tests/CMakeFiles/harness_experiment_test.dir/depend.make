# Empty dependencies file for harness_experiment_test.
# This may be replaced when dependencies are built.
