# Empty dependencies file for sim_determinism_test.
# This may be replaced when dependencies are built.
