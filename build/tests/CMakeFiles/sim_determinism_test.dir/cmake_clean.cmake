file(REMOVE_RECURSE
  "CMakeFiles/sim_determinism_test.dir/sim_determinism_test.cc.o"
  "CMakeFiles/sim_determinism_test.dir/sim_determinism_test.cc.o.d"
  "sim_determinism_test"
  "sim_determinism_test.pdb"
  "sim_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
