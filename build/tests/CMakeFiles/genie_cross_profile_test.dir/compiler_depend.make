# Empty compiler generated dependencies file for genie_cross_profile_test.
# This may be replaced when dependencies are built.
