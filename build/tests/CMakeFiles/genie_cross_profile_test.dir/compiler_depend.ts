# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for genie_cross_profile_test.
