file(REMOVE_RECURSE
  "CMakeFiles/genie_cross_profile_test.dir/genie_cross_profile_test.cc.o"
  "CMakeFiles/genie_cross_profile_test.dir/genie_cross_profile_test.cc.o.d"
  "genie_cross_profile_test"
  "genie_cross_profile_test.pdb"
  "genie_cross_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_cross_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
