# Empty compiler generated dependencies file for genie_semantics_test.
# This may be replaced when dependencies are built.
