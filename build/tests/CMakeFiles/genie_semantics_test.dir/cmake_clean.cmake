file(REMOVE_RECURSE
  "CMakeFiles/genie_semantics_test.dir/genie_semantics_test.cc.o"
  "CMakeFiles/genie_semantics_test.dir/genie_semantics_test.cc.o.d"
  "genie_semantics_test"
  "genie_semantics_test.pdb"
  "genie_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
