file(REMOVE_RECURSE
  "CMakeFiles/genie_transfer_test.dir/genie_transfer_test.cc.o"
  "CMakeFiles/genie_transfer_test.dir/genie_transfer_test.cc.o.d"
  "genie_transfer_test"
  "genie_transfer_test.pdb"
  "genie_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
