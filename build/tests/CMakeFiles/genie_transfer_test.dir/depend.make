# Empty dependencies file for genie_transfer_test.
# This may be replaced when dependencies are built.
