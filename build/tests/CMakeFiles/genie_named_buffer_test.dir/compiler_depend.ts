# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for genie_named_buffer_test.
