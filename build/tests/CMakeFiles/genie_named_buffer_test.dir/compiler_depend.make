# Empty compiler generated dependencies file for genie_named_buffer_test.
# This may be replaced when dependencies are built.
