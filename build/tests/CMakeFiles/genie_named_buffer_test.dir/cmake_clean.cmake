file(REMOVE_RECURSE
  "CMakeFiles/genie_named_buffer_test.dir/genie_named_buffer_test.cc.o"
  "CMakeFiles/genie_named_buffer_test.dir/genie_named_buffer_test.cc.o.d"
  "genie_named_buffer_test"
  "genie_named_buffer_test.pdb"
  "genie_named_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_named_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
