# Empty compiler generated dependencies file for mem_backing_store_test.
# This may be replaced when dependencies are built.
