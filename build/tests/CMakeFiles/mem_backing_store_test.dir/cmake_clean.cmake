file(REMOVE_RECURSE
  "CMakeFiles/mem_backing_store_test.dir/mem_backing_store_test.cc.o"
  "CMakeFiles/mem_backing_store_test.dir/mem_backing_store_test.cc.o.d"
  "mem_backing_store_test"
  "mem_backing_store_test.pdb"
  "mem_backing_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_backing_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
