# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mem_backing_store_test.
