# Empty dependencies file for genie_message_test.
# This may be replaced when dependencies are built.
