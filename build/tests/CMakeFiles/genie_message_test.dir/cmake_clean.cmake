file(REMOVE_RECURSE
  "CMakeFiles/genie_message_test.dir/genie_message_test.cc.o"
  "CMakeFiles/genie_message_test.dir/genie_message_test.cc.o.d"
  "genie_message_test"
  "genie_message_test.pdb"
  "genie_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
