file(REMOVE_RECURSE
  "CMakeFiles/genie_memory_pressure_test.dir/genie_memory_pressure_test.cc.o"
  "CMakeFiles/genie_memory_pressure_test.dir/genie_memory_pressure_test.cc.o.d"
  "genie_memory_pressure_test"
  "genie_memory_pressure_test.pdb"
  "genie_memory_pressure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_memory_pressure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
