# Empty dependencies file for genie_memory_pressure_test.
# This may be replaced when dependencies are built.
