file(REMOVE_RECURSE
  "CMakeFiles/vm_pageout_test.dir/vm_pageout_test.cc.o"
  "CMakeFiles/vm_pageout_test.dir/vm_pageout_test.cc.o.d"
  "vm_pageout_test"
  "vm_pageout_test.pdb"
  "vm_pageout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_pageout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
