# Empty compiler generated dependencies file for vm_pageout_test.
# This may be replaced when dependencies are built.
