file(REMOVE_RECURSE
  "CMakeFiles/genie_checksum_test.dir/genie_checksum_test.cc.o"
  "CMakeFiles/genie_checksum_test.dir/genie_checksum_test.cc.o.d"
  "genie_checksum_test"
  "genie_checksum_test.pdb"
  "genie_checksum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_checksum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
