# Empty dependencies file for genie_checksum_test.
# This may be replaced when dependencies are built.
