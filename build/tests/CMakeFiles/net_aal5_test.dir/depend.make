# Empty dependencies file for net_aal5_test.
# This may be replaced when dependencies are built.
