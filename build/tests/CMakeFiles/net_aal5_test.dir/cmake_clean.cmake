file(REMOVE_RECURSE
  "CMakeFiles/net_aal5_test.dir/net_aal5_test.cc.o"
  "CMakeFiles/net_aal5_test.dir/net_aal5_test.cc.o.d"
  "net_aal5_test"
  "net_aal5_test.pdb"
  "net_aal5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_aal5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
