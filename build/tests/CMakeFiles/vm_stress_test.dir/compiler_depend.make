# Empty compiler generated dependencies file for vm_stress_test.
# This may be replaced when dependencies are built.
