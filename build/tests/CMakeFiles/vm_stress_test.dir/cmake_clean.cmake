file(REMOVE_RECURSE
  "CMakeFiles/vm_stress_test.dir/vm_stress_test.cc.o"
  "CMakeFiles/vm_stress_test.dir/vm_stress_test.cc.o.d"
  "vm_stress_test"
  "vm_stress_test.pdb"
  "vm_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
