# Empty dependencies file for vm_tcow_test.
# This may be replaced when dependencies are built.
