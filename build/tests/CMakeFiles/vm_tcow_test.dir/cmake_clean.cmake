file(REMOVE_RECURSE
  "CMakeFiles/vm_tcow_test.dir/vm_tcow_test.cc.o"
  "CMakeFiles/vm_tcow_test.dir/vm_tcow_test.cc.o.d"
  "vm_tcow_test"
  "vm_tcow_test.pdb"
  "vm_tcow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_tcow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
