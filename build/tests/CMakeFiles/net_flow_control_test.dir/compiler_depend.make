# Empty compiler generated dependencies file for net_flow_control_test.
# This may be replaced when dependencies are built.
