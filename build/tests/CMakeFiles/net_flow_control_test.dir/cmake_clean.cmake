file(REMOVE_RECURSE
  "CMakeFiles/net_flow_control_test.dir/net_flow_control_test.cc.o"
  "CMakeFiles/net_flow_control_test.dir/net_flow_control_test.cc.o.d"
  "net_flow_control_test"
  "net_flow_control_test.pdb"
  "net_flow_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_flow_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
