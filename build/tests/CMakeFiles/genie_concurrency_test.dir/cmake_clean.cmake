file(REMOVE_RECURSE
  "CMakeFiles/genie_concurrency_test.dir/genie_concurrency_test.cc.o"
  "CMakeFiles/genie_concurrency_test.dir/genie_concurrency_test.cc.o.d"
  "genie_concurrency_test"
  "genie_concurrency_test.pdb"
  "genie_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
