# Empty compiler generated dependencies file for genie_concurrency_test.
# This may be replaced when dependencies are built.
