# Empty dependencies file for net_checksum_test.
# This may be replaced when dependencies are built.
