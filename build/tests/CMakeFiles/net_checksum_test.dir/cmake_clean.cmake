file(REMOVE_RECURSE
  "CMakeFiles/net_checksum_test.dir/net_checksum_test.cc.o"
  "CMakeFiles/net_checksum_test.dir/net_checksum_test.cc.o.d"
  "net_checksum_test"
  "net_checksum_test.pdb"
  "net_checksum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_checksum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
