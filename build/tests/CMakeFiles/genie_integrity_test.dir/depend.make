# Empty dependencies file for genie_integrity_test.
# This may be replaced when dependencies are built.
