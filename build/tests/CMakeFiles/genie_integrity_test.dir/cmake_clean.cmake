file(REMOVE_RECURSE
  "CMakeFiles/genie_integrity_test.dir/genie_integrity_test.cc.o"
  "CMakeFiles/genie_integrity_test.dir/genie_integrity_test.cc.o.d"
  "genie_integrity_test"
  "genie_integrity_test.pdb"
  "genie_integrity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_integrity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
