file(REMOVE_RECURSE
  "CMakeFiles/genie_mechanism_test.dir/genie_mechanism_test.cc.o"
  "CMakeFiles/genie_mechanism_test.dir/genie_mechanism_test.cc.o.d"
  "genie_mechanism_test"
  "genie_mechanism_test.pdb"
  "genie_mechanism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_mechanism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
