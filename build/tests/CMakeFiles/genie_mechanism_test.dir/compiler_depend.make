# Empty compiler generated dependencies file for genie_mechanism_test.
# This may be replaced when dependencies are built.
