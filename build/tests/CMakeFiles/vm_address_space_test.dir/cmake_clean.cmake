file(REMOVE_RECURSE
  "CMakeFiles/vm_address_space_test.dir/vm_address_space_test.cc.o"
  "CMakeFiles/vm_address_space_test.dir/vm_address_space_test.cc.o.d"
  "vm_address_space_test"
  "vm_address_space_test.pdb"
  "vm_address_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_address_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
