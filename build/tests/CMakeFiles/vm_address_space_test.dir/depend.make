# Empty dependencies file for vm_address_space_test.
# This may be replaced when dependencies are built.
