file(REMOVE_RECURSE
  "CMakeFiles/sim_resource_test.dir/sim_resource_test.cc.o"
  "CMakeFiles/sim_resource_test.dir/sim_resource_test.cc.o.d"
  "sim_resource_test"
  "sim_resource_test.pdb"
  "sim_resource_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_resource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
