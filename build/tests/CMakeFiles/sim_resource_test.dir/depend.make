# Empty dependencies file for sim_resource_test.
# This may be replaced when dependencies are built.
