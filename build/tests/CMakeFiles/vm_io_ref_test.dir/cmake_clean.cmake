file(REMOVE_RECURSE
  "CMakeFiles/vm_io_ref_test.dir/vm_io_ref_test.cc.o"
  "CMakeFiles/vm_io_ref_test.dir/vm_io_ref_test.cc.o.d"
  "vm_io_ref_test"
  "vm_io_ref_test.pdb"
  "vm_io_ref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_io_ref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
