# Empty compiler generated dependencies file for vm_io_ref_test.
# This may be replaced when dependencies are built.
