# Empty compiler generated dependencies file for genie_edge_test.
# This may be replaced when dependencies are built.
