file(REMOVE_RECURSE
  "CMakeFiles/genie_edge_test.dir/genie_edge_test.cc.o"
  "CMakeFiles/genie_edge_test.dir/genie_edge_test.cc.o.d"
  "genie_edge_test"
  "genie_edge_test.pdb"
  "genie_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
