file(REMOVE_RECURSE
  "CMakeFiles/genie_stats_test.dir/genie_stats_test.cc.o"
  "CMakeFiles/genie_stats_test.dir/genie_stats_test.cc.o.d"
  "genie_stats_test"
  "genie_stats_test.pdb"
  "genie_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
