# Empty dependencies file for genie_stats_test.
# This may be replaced when dependencies are built.
