# Empty dependencies file for vm_memory_object_test.
# This may be replaced when dependencies are built.
