file(REMOVE_RECURSE
  "CMakeFiles/vm_memory_object_test.dir/vm_memory_object_test.cc.o"
  "CMakeFiles/vm_memory_object_test.dir/vm_memory_object_test.cc.o.d"
  "vm_memory_object_test"
  "vm_memory_object_test.pdb"
  "vm_memory_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_memory_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
