# Empty dependencies file for genie_property_test.
# This may be replaced when dependencies are built.
