file(REMOVE_RECURSE
  "CMakeFiles/genie_property_test.dir/genie_property_test.cc.o"
  "CMakeFiles/genie_property_test.dir/genie_property_test.cc.o.d"
  "genie_property_test"
  "genie_property_test.pdb"
  "genie_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
