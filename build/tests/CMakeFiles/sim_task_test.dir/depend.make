# Empty dependencies file for sim_task_test.
# This may be replaced when dependencies are built.
