file(REMOVE_RECURSE
  "CMakeFiles/sim_task_test.dir/sim_task_test.cc.o"
  "CMakeFiles/sim_task_test.dir/sim_task_test.cc.o.d"
  "sim_task_test"
  "sim_task_test.pdb"
  "sim_task_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
