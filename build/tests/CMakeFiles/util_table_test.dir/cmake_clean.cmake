file(REMOVE_RECURSE
  "CMakeFiles/util_table_test.dir/util_table_test.cc.o"
  "CMakeFiles/util_table_test.dir/util_table_test.cc.o.d"
  "util_table_test"
  "util_table_test.pdb"
  "util_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
