file(REMOVE_RECURSE
  "CMakeFiles/sim_engine_test.dir/sim_engine_test.cc.o"
  "CMakeFiles/sim_engine_test.dir/sim_engine_test.cc.o.d"
  "sim_engine_test"
  "sim_engine_test.pdb"
  "sim_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
