file(REMOVE_RECURSE
  "CMakeFiles/analysis_scaling_test.dir/analysis_scaling_test.cc.o"
  "CMakeFiles/analysis_scaling_test.dir/analysis_scaling_test.cc.o.d"
  "analysis_scaling_test"
  "analysis_scaling_test.pdb"
  "analysis_scaling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_scaling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
