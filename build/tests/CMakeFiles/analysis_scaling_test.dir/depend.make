# Empty dependencies file for analysis_scaling_test.
# This may be replaced when dependencies are built.
