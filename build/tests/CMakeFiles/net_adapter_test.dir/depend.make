# Empty dependencies file for net_adapter_test.
# This may be replaced when dependencies are built.
