file(REMOVE_RECURSE
  "CMakeFiles/net_adapter_test.dir/net_adapter_test.cc.o"
  "CMakeFiles/net_adapter_test.dir/net_adapter_test.cc.o.d"
  "net_adapter_test"
  "net_adapter_test.pdb"
  "net_adapter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
