# Empty dependencies file for analysis_linear_fit_test.
# This may be replaced when dependencies are built.
