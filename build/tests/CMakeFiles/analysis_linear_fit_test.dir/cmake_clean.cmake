file(REMOVE_RECURSE
  "CMakeFiles/analysis_linear_fit_test.dir/analysis_linear_fit_test.cc.o"
  "CMakeFiles/analysis_linear_fit_test.dir/analysis_linear_fit_test.cc.o.d"
  "analysis_linear_fit_test"
  "analysis_linear_fit_test.pdb"
  "analysis_linear_fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_linear_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
