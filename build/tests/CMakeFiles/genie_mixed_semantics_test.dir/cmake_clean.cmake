file(REMOVE_RECURSE
  "CMakeFiles/genie_mixed_semantics_test.dir/genie_mixed_semantics_test.cc.o"
  "CMakeFiles/genie_mixed_semantics_test.dir/genie_mixed_semantics_test.cc.o.d"
  "genie_mixed_semantics_test"
  "genie_mixed_semantics_test.pdb"
  "genie_mixed_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_mixed_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
