# Empty dependencies file for genie_mixed_semantics_test.
# This may be replaced when dependencies are built.
