# Empty dependencies file for mem_phys_memory_test.
# This may be replaced when dependencies are built.
