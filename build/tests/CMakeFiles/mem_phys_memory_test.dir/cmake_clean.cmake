file(REMOVE_RECURSE
  "CMakeFiles/mem_phys_memory_test.dir/mem_phys_memory_test.cc.o"
  "CMakeFiles/mem_phys_memory_test.dir/mem_phys_memory_test.cc.o.d"
  "mem_phys_memory_test"
  "mem_phys_memory_test.pdb"
  "mem_phys_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_phys_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
