# Empty dependencies file for vm_cow_test.
# This may be replaced when dependencies are built.
