file(REMOVE_RECURSE
  "CMakeFiles/vm_cow_test.dir/vm_cow_test.cc.o"
  "CMakeFiles/vm_cow_test.dir/vm_cow_test.cc.o.d"
  "vm_cow_test"
  "vm_cow_test.pdb"
  "vm_cow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_cow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
