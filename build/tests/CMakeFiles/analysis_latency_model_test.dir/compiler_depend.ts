# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for analysis_latency_model_test.
