file(REMOVE_RECURSE
  "CMakeFiles/analysis_latency_model_test.dir/analysis_latency_model_test.cc.o"
  "CMakeFiles/analysis_latency_model_test.dir/analysis_latency_model_test.cc.o.d"
  "analysis_latency_model_test"
  "analysis_latency_model_test.pdb"
  "analysis_latency_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_latency_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
