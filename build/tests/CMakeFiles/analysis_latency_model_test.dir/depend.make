# Empty dependencies file for analysis_latency_model_test.
# This may be replaced when dependencies are built.
