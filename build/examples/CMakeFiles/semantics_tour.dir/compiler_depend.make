# Empty compiler generated dependencies file for semantics_tour.
# This may be replaced when dependencies are built.
