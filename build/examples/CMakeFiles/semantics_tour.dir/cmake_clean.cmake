file(REMOVE_RECURSE
  "CMakeFiles/semantics_tour.dir/semantics_tour.cpp.o"
  "CMakeFiles/semantics_tour.dir/semantics_tour.cpp.o.d"
  "semantics_tour"
  "semantics_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantics_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
