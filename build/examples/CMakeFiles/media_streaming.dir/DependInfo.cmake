
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/media_streaming.cpp" "examples/CMakeFiles/media_streaming.dir/media_streaming.cpp.o" "gcc" "examples/CMakeFiles/media_streaming.dir/media_streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/genie/CMakeFiles/genie_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/genie_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/genie_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/genie_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/genie_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/genie_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/genie_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/genie_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/genie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
