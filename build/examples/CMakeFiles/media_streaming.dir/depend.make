# Empty dependencies file for media_streaming.
# This may be replaced when dependencies are built.
