file(REMOVE_RECURSE
  "CMakeFiles/media_streaming.dir/media_streaming.cpp.o"
  "CMakeFiles/media_streaming.dir/media_streaming.cpp.o.d"
  "media_streaming"
  "media_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
