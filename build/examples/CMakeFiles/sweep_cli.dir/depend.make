# Empty dependencies file for sweep_cli.
# This may be replaced when dependencies are built.
