file(REMOVE_RECURSE
  "CMakeFiles/sweep_cli.dir/sweep_cli.cpp.o"
  "CMakeFiles/sweep_cli.dir/sweep_cli.cpp.o.d"
  "sweep_cli"
  "sweep_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
