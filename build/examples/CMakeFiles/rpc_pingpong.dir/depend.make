# Empty dependencies file for rpc_pingpong.
# This may be replaced when dependencies are built.
