file(REMOVE_RECURSE
  "CMakeFiles/rpc_pingpong.dir/rpc_pingpong.cpp.o"
  "CMakeFiles/rpc_pingpong.dir/rpc_pingpong.cpp.o.d"
  "rpc_pingpong"
  "rpc_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
