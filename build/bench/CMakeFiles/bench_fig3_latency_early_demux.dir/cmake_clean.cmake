file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_latency_early_demux.dir/bench_fig3_latency_early_demux.cc.o"
  "CMakeFiles/bench_fig3_latency_early_demux.dir/bench_fig3_latency_early_demux.cc.o.d"
  "bench_fig3_latency_early_demux"
  "bench_fig3_latency_early_demux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_latency_early_demux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
