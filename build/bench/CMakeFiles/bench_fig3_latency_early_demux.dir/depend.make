# Empty dependencies file for bench_fig3_latency_early_demux.
# This may be replaced when dependencies are built.
