file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pooled_unaligned.dir/bench_fig7_pooled_unaligned.cc.o"
  "CMakeFiles/bench_fig7_pooled_unaligned.dir/bench_fig7_pooled_unaligned.cc.o.d"
  "bench_fig7_pooled_unaligned"
  "bench_fig7_pooled_unaligned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pooled_unaligned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
