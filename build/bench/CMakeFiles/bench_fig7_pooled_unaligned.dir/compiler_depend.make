# Empty compiler generated dependencies file for bench_fig7_pooled_unaligned.
# This may be replaced when dependencies are built.
