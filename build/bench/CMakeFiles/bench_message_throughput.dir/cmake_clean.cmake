file(REMOVE_RECURSE
  "CMakeFiles/bench_message_throughput.dir/bench_message_throughput.cc.o"
  "CMakeFiles/bench_message_throughput.dir/bench_message_throughput.cc.o.d"
  "bench_message_throughput"
  "bench_message_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_message_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
