file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_model_vs_actual.dir/bench_table7_model_vs_actual.cc.o"
  "CMakeFiles/bench_table7_model_vs_actual.dir/bench_table7_model_vs_actual.cc.o.d"
  "bench_table7_model_vs_actual"
  "bench_table7_model_vs_actual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_model_vs_actual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
