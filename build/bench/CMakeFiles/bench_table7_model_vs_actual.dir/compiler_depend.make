# Empty compiler generated dependencies file for bench_table7_model_vs_actual.
# This may be replaced when dependencies are built.
