file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pooled_aligned.dir/bench_fig6_pooled_aligned.cc.o"
  "CMakeFiles/bench_fig6_pooled_aligned.dir/bench_fig6_pooled_aligned.cc.o.d"
  "bench_fig6_pooled_aligned"
  "bench_fig6_pooled_aligned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pooled_aligned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
