# Empty compiler generated dependencies file for bench_fig6_pooled_aligned.
# This may be replaced when dependencies are built.
