file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cpu_utilization.dir/bench_fig4_cpu_utilization.cc.o"
  "CMakeFiles/bench_fig4_cpu_utilization.dir/bench_fig4_cpu_utilization.cc.o.d"
  "bench_fig4_cpu_utilization"
  "bench_fig4_cpu_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cpu_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
