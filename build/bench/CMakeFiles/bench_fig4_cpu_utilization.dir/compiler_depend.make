# Empty compiler generated dependencies file for bench_fig4_cpu_utilization.
# This may be replaced when dependencies are built.
