# Empty dependencies file for bench_outboard_prediction.
# This may be replaced when dependencies are built.
