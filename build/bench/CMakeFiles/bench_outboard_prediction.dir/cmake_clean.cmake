file(REMOVE_RECURSE
  "CMakeFiles/bench_outboard_prediction.dir/bench_outboard_prediction.cc.o"
  "CMakeFiles/bench_outboard_prediction.dir/bench_outboard_prediction.cc.o.d"
  "bench_outboard_prediction"
  "bench_outboard_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outboard_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
