file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_optimizations.dir/bench_ablation_optimizations.cc.o"
  "CMakeFiles/bench_ablation_optimizations.dir/bench_ablation_optimizations.cc.o.d"
  "bench_ablation_optimizations"
  "bench_ablation_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
