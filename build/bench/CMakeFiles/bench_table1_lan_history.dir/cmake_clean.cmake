file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lan_history.dir/bench_table1_lan_history.cc.o"
  "CMakeFiles/bench_table1_lan_history.dir/bench_table1_lan_history.cc.o.d"
  "bench_table1_lan_history"
  "bench_table1_lan_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lan_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
