# Empty dependencies file for bench_table1_lan_history.
# This may be replaced when dependencies are built.
