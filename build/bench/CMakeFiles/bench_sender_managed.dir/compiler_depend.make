# Empty compiler generated dependencies file for bench_sender_managed.
# This may be replaced when dependencies are built.
