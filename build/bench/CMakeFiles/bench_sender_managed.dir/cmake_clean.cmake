file(REMOVE_RECURSE
  "CMakeFiles/bench_sender_managed.dir/bench_sender_managed.cc.o"
  "CMakeFiles/bench_sender_managed.dir/bench_sender_managed.cc.o.d"
  "bench_sender_managed"
  "bench_sender_managed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sender_managed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
