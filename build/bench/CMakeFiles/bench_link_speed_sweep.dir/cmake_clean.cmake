file(REMOVE_RECURSE
  "CMakeFiles/bench_link_speed_sweep.dir/bench_link_speed_sweep.cc.o"
  "CMakeFiles/bench_link_speed_sweep.dir/bench_link_speed_sweep.cc.o.d"
  "bench_link_speed_sweep"
  "bench_link_speed_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_speed_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
