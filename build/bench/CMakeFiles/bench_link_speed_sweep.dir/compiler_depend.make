# Empty compiler generated dependencies file for bench_link_speed_sweep.
# This may be replaced when dependencies are built.
