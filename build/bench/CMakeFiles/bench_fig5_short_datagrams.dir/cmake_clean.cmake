file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_short_datagrams.dir/bench_fig5_short_datagrams.cc.o"
  "CMakeFiles/bench_fig5_short_datagrams.dir/bench_fig5_short_datagrams.cc.o.d"
  "bench_fig5_short_datagrams"
  "bench_fig5_short_datagrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_short_datagrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
