# Empty dependencies file for bench_fig5_short_datagrams.
# This may be replaced when dependencies are built.
