file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_primitive_ops.dir/bench_table6_primitive_ops.cc.o"
  "CMakeFiles/bench_table6_primitive_ops.dir/bench_table6_primitive_ops.cc.o.d"
  "bench_table6_primitive_ops"
  "bench_table6_primitive_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_primitive_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
