# Empty dependencies file for bench_table6_primitive_ops.
# This may be replaced when dependencies are built.
