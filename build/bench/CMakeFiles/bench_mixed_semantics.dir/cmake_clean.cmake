file(REMOVE_RECURSE
  "CMakeFiles/bench_mixed_semantics.dir/bench_mixed_semantics.cc.o"
  "CMakeFiles/bench_mixed_semantics.dir/bench_mixed_semantics.cc.o.d"
  "bench_mixed_semantics"
  "bench_mixed_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
