# Empty compiler generated dependencies file for bench_mixed_semantics.
# This may be replaced when dependencies are built.
