file(REMOVE_RECURSE
  "CMakeFiles/bench_checksum_integration.dir/bench_checksum_integration.cc.o"
  "CMakeFiles/bench_checksum_integration.dir/bench_checksum_integration.cc.o.d"
  "bench_checksum_integration"
  "bench_checksum_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checksum_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
