# Empty compiler generated dependencies file for bench_checksum_integration.
# This may be replaced when dependencies are built.
