file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_scaling.dir/bench_table8_scaling.cc.o"
  "CMakeFiles/bench_table8_scaling.dir/bench_table8_scaling.cc.o.d"
  "bench_table8_scaling"
  "bench_table8_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
