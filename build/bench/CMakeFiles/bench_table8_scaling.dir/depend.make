# Empty dependencies file for bench_table8_scaling.
# This may be replaced when dependencies are built.
