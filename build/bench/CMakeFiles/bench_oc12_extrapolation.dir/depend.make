# Empty dependencies file for bench_oc12_extrapolation.
# This may be replaced when dependencies are built.
