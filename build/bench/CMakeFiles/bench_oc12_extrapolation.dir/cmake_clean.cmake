file(REMOVE_RECURSE
  "CMakeFiles/bench_oc12_extrapolation.dir/bench_oc12_extrapolation.cc.o"
  "CMakeFiles/bench_oc12_extrapolation.dir/bench_oc12_extrapolation.cc.o.d"
  "bench_oc12_extrapolation"
  "bench_oc12_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oc12_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
