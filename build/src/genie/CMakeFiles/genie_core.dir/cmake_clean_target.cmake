file(REMOVE_RECURSE
  "libgenie_core.a"
)
