file(REMOVE_RECURSE
  "CMakeFiles/genie_core.dir/endpoint.cc.o"
  "CMakeFiles/genie_core.dir/endpoint.cc.o.d"
  "CMakeFiles/genie_core.dir/message.cc.o"
  "CMakeFiles/genie_core.dir/message.cc.o.d"
  "CMakeFiles/genie_core.dir/node.cc.o"
  "CMakeFiles/genie_core.dir/node.cc.o.d"
  "CMakeFiles/genie_core.dir/semantics.cc.o"
  "CMakeFiles/genie_core.dir/semantics.cc.o.d"
  "CMakeFiles/genie_core.dir/sys_buffer.cc.o"
  "CMakeFiles/genie_core.dir/sys_buffer.cc.o.d"
  "libgenie_core.a"
  "libgenie_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
