file(REMOVE_RECURSE
  "CMakeFiles/genie_vm.dir/address_space.cc.o"
  "CMakeFiles/genie_vm.dir/address_space.cc.o.d"
  "CMakeFiles/genie_vm.dir/cow.cc.o"
  "CMakeFiles/genie_vm.dir/cow.cc.o.d"
  "CMakeFiles/genie_vm.dir/io_ref.cc.o"
  "CMakeFiles/genie_vm.dir/io_ref.cc.o.d"
  "CMakeFiles/genie_vm.dir/memory_object.cc.o"
  "CMakeFiles/genie_vm.dir/memory_object.cc.o.d"
  "CMakeFiles/genie_vm.dir/pageout.cc.o"
  "CMakeFiles/genie_vm.dir/pageout.cc.o.d"
  "libgenie_vm.a"
  "libgenie_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
