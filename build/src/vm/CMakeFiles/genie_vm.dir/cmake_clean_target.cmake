file(REMOVE_RECURSE
  "libgenie_vm.a"
)
