# Empty compiler generated dependencies file for genie_vm.
# This may be replaced when dependencies are built.
