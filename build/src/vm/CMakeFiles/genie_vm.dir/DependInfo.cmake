
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/address_space.cc" "src/vm/CMakeFiles/genie_vm.dir/address_space.cc.o" "gcc" "src/vm/CMakeFiles/genie_vm.dir/address_space.cc.o.d"
  "/root/repo/src/vm/cow.cc" "src/vm/CMakeFiles/genie_vm.dir/cow.cc.o" "gcc" "src/vm/CMakeFiles/genie_vm.dir/cow.cc.o.d"
  "/root/repo/src/vm/io_ref.cc" "src/vm/CMakeFiles/genie_vm.dir/io_ref.cc.o" "gcc" "src/vm/CMakeFiles/genie_vm.dir/io_ref.cc.o.d"
  "/root/repo/src/vm/memory_object.cc" "src/vm/CMakeFiles/genie_vm.dir/memory_object.cc.o" "gcc" "src/vm/CMakeFiles/genie_vm.dir/memory_object.cc.o.d"
  "/root/repo/src/vm/pageout.cc" "src/vm/CMakeFiles/genie_vm.dir/pageout.cc.o" "gcc" "src/vm/CMakeFiles/genie_vm.dir/pageout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/genie_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/genie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
