file(REMOVE_RECURSE
  "CMakeFiles/genie_harness.dir/experiment.cc.o"
  "CMakeFiles/genie_harness.dir/experiment.cc.o.d"
  "libgenie_harness.a"
  "libgenie_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
