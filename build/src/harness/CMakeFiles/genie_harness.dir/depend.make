# Empty dependencies file for genie_harness.
# This may be replaced when dependencies are built.
