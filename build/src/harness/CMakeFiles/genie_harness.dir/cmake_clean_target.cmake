file(REMOVE_RECURSE
  "libgenie_harness.a"
)
