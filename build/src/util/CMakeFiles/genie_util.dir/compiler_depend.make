# Empty compiler generated dependencies file for genie_util.
# This may be replaced when dependencies are built.
