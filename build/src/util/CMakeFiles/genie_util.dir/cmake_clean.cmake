file(REMOVE_RECURSE
  "CMakeFiles/genie_util.dir/check.cc.o"
  "CMakeFiles/genie_util.dir/check.cc.o.d"
  "CMakeFiles/genie_util.dir/stats.cc.o"
  "CMakeFiles/genie_util.dir/stats.cc.o.d"
  "CMakeFiles/genie_util.dir/table.cc.o"
  "CMakeFiles/genie_util.dir/table.cc.o.d"
  "libgenie_util.a"
  "libgenie_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
