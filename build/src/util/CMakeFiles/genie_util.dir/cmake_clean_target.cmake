file(REMOVE_RECURSE
  "libgenie_util.a"
)
