file(REMOVE_RECURSE
  "CMakeFiles/genie_net.dir/aal5.cc.o"
  "CMakeFiles/genie_net.dir/aal5.cc.o.d"
  "CMakeFiles/genie_net.dir/adapter.cc.o"
  "CMakeFiles/genie_net.dir/adapter.cc.o.d"
  "CMakeFiles/genie_net.dir/buffer_pool.cc.o"
  "CMakeFiles/genie_net.dir/buffer_pool.cc.o.d"
  "CMakeFiles/genie_net.dir/checksum.cc.o"
  "CMakeFiles/genie_net.dir/checksum.cc.o.d"
  "CMakeFiles/genie_net.dir/iovec_io.cc.o"
  "CMakeFiles/genie_net.dir/iovec_io.cc.o.d"
  "libgenie_net.a"
  "libgenie_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
