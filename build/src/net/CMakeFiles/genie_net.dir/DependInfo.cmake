
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/aal5.cc" "src/net/CMakeFiles/genie_net.dir/aal5.cc.o" "gcc" "src/net/CMakeFiles/genie_net.dir/aal5.cc.o.d"
  "/root/repo/src/net/adapter.cc" "src/net/CMakeFiles/genie_net.dir/adapter.cc.o" "gcc" "src/net/CMakeFiles/genie_net.dir/adapter.cc.o.d"
  "/root/repo/src/net/buffer_pool.cc" "src/net/CMakeFiles/genie_net.dir/buffer_pool.cc.o" "gcc" "src/net/CMakeFiles/genie_net.dir/buffer_pool.cc.o.d"
  "/root/repo/src/net/checksum.cc" "src/net/CMakeFiles/genie_net.dir/checksum.cc.o" "gcc" "src/net/CMakeFiles/genie_net.dir/checksum.cc.o.d"
  "/root/repo/src/net/iovec_io.cc" "src/net/CMakeFiles/genie_net.dir/iovec_io.cc.o" "gcc" "src/net/CMakeFiles/genie_net.dir/iovec_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/genie_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/genie_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/genie_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/genie_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/genie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
