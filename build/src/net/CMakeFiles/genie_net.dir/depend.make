# Empty dependencies file for genie_net.
# This may be replaced when dependencies are built.
