file(REMOVE_RECURSE
  "libgenie_net.a"
)
