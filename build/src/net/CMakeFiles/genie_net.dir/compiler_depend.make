# Empty compiler generated dependencies file for genie_net.
# This may be replaced when dependencies are built.
