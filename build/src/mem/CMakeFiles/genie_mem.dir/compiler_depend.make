# Empty compiler generated dependencies file for genie_mem.
# This may be replaced when dependencies are built.
