file(REMOVE_RECURSE
  "libgenie_mem.a"
)
