file(REMOVE_RECURSE
  "CMakeFiles/genie_mem.dir/backing_store.cc.o"
  "CMakeFiles/genie_mem.dir/backing_store.cc.o.d"
  "CMakeFiles/genie_mem.dir/phys_memory.cc.o"
  "CMakeFiles/genie_mem.dir/phys_memory.cc.o.d"
  "libgenie_mem.a"
  "libgenie_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
