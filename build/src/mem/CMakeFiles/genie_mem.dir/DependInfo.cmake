
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/backing_store.cc" "src/mem/CMakeFiles/genie_mem.dir/backing_store.cc.o" "gcc" "src/mem/CMakeFiles/genie_mem.dir/backing_store.cc.o.d"
  "/root/repo/src/mem/phys_memory.cc" "src/mem/CMakeFiles/genie_mem.dir/phys_memory.cc.o" "gcc" "src/mem/CMakeFiles/genie_mem.dir/phys_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/genie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
