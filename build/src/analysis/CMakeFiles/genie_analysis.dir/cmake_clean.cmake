file(REMOVE_RECURSE
  "CMakeFiles/genie_analysis.dir/latency_model.cc.o"
  "CMakeFiles/genie_analysis.dir/latency_model.cc.o.d"
  "CMakeFiles/genie_analysis.dir/linear_fit.cc.o"
  "CMakeFiles/genie_analysis.dir/linear_fit.cc.o.d"
  "CMakeFiles/genie_analysis.dir/scaling_model.cc.o"
  "CMakeFiles/genie_analysis.dir/scaling_model.cc.o.d"
  "libgenie_analysis.a"
  "libgenie_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
