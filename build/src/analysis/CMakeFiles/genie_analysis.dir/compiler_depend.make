# Empty compiler generated dependencies file for genie_analysis.
# This may be replaced when dependencies are built.
