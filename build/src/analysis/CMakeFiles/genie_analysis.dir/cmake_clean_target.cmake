file(REMOVE_RECURSE
  "libgenie_analysis.a"
)
