file(REMOVE_RECURSE
  "libgenie_sim.a"
)
