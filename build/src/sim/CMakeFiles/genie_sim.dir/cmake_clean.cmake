file(REMOVE_RECURSE
  "CMakeFiles/genie_sim.dir/engine.cc.o"
  "CMakeFiles/genie_sim.dir/engine.cc.o.d"
  "CMakeFiles/genie_sim.dir/trace.cc.o"
  "CMakeFiles/genie_sim.dir/trace.cc.o.d"
  "libgenie_sim.a"
  "libgenie_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
