file(REMOVE_RECURSE
  "CMakeFiles/genie_cost.dir/cost_model.cc.o"
  "CMakeFiles/genie_cost.dir/cost_model.cc.o.d"
  "CMakeFiles/genie_cost.dir/machine_profile.cc.o"
  "CMakeFiles/genie_cost.dir/machine_profile.cc.o.d"
  "libgenie_cost.a"
  "libgenie_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
