# Empty dependencies file for genie_cost.
# This may be replaced when dependencies are built.
