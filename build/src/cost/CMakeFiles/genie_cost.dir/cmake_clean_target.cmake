file(REMOVE_RECURSE
  "libgenie_cost.a"
)
