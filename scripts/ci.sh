#!/usr/bin/env bash
# Tier-1 CI: build and run the full test suite twice —
#   1. the default optimized build (RelWithDebInfo, -O2), and
#   2. an ASan+UBSan build (GENIE_ASAN=ON),
# so both miscompiled-fast-path bugs and memory/UB bugs are caught. The data
# plane leans on raw spans over the physical-memory arena (multi-page
# DataRun, fused checksum-copy), which is exactly the code sanitizers are
# for.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc)

echo "=== tier-1: optimized build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== tier-1: ASan+UBSan build ==="
cmake -B build-asan -S . -DGENIE_ASAN=ON >/dev/null
cmake --build build-asan -j "$JOBS"
# Leak checking is off: several sim tests intentionally leave detached
# coroutine tasks pending when the engine is torn down, so their frames are
# reported as leaks even though every test passes. ASan (bad accesses) and
# UBSan stay fully enabled.
ASAN_OPTIONS=detect_leaks=0 ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "CI OK: both suites passed."
