#!/usr/bin/env bash
# Tier-1 CI: build and run the full test suite in three flavors —
#   1. the default optimized build (RelWithDebInfo, -O2),
#   2. an ASan+UBSan build (GENIE_ASAN=ON), and
#   3. a TSan build (GENIE_TSAN=ON) for the parallel host-path tests,
# so miscompiled-fast-path bugs, memory/UB bugs, and data races are all
# caught. The data plane leans on raw spans over the physical-memory arena
# (multi-page DataRun, fused checksum-copy), and the parallel path runs real
# threads over it, which is exactly the code sanitizers are for.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc)

# Flight-recorder dumps from the stress legs land here; on a stress failure
# the dump is the first triage artifact (last N trace events + replay seed).
# Absolute path: ctest and the stress binaries run from different working
# directories, and the recorder opens the path as-is.
FLIGHT_DIR="${GENIE_FLIGHT_DIR:-$PWD/build/flight}"
mkdir -p "$FLIGHT_DIR"
export GENIE_FLIGHT_DIR="$FLIGHT_DIR"

print_flight_dumps() {
  local dumps
  dumps=$(ls "$FLIGHT_DIR"/flight_*.json 2>/dev/null || true)
  if [[ -n "$dumps" ]]; then
    echo "--- flight recorder dumps (replay seed + last trace events) ---"
    ls -l "$FLIGHT_DIR"/flight_*.json
  fi
}

echo "=== tier-1: optimized build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
# The bench_smoke gate (label "bench") runs in this leg. On failure, print
# the metrics snapshot it wrote so the op-count drift is visible in the log.
if ! ctest --test-dir build --output-on-failure -j "$JOBS"; then
  if [[ -f build/tests/bench_smoke_metrics.json ]]; then
    echo "--- bench_smoke metrics snapshot (build/tests/bench_smoke_metrics.json) ---"
    cat build/tests/bench_smoke_metrics.json
  fi
  print_flight_dumps
  exit 1
fi
# The critical-path analyzer's byte-identical-JSON contract is part of the
# trace pipeline's gate: run it by name so a filter change can never silently
# deselect it.
build/tests/obs_critical_path_test \
  --gtest_filter='CriticalPathTest.AnalyzerJsonIsByteIdenticalAcrossRuns:CriticalPathTest.FabricJsonIsByteIdenticalAcrossRuns'

echo "=== tier-1: ASan+UBSan build ==="
cmake -B build-asan -S . -DGENIE_ASAN=ON >/dev/null
cmake --build build-asan -j "$JOBS"
# Leak checking is off: several sim tests intentionally leave detached
# coroutine tasks pending when the engine is torn down, so their frames are
# reported as leaks even though every test passes. ASan (bad accesses) and
# UBSan stay fully enabled.
# -LE bench: the bench_smoke wall-clock gate only means something at -O2;
# its deterministic layers already ran in the optimized leg.
ASAN_OPTIONS=detect_leaks=0 ctest --test-dir build-asan --output-on-failure -j "$JOBS" -LE bench
ASAN_OPTIONS=detect_leaks=0 build-asan/tests/obs_critical_path_test \
  --gtest_filter='CriticalPathTest.AnalyzerJsonIsByteIdenticalAcrossRuns:CriticalPathTest.FabricJsonIsByteIdenticalAcrossRuns'

echo "=== tier-1: fault-stress replay (ASan) ==="
# Third leg: the fault-injection stress harness under ASan. Three pinned
# seeds gate the build (each under a fixed wall-clock budget), then one fresh
# entropy seed widens coverage a little every run; an entropy failure is
# reported for triage (the seed is the complete repro) but does not fail CI.
# A failing seed leaves a flight-recorder dump in $GENIE_FLIGHT_DIR.
STRESS_BIN=build-asan/tests/fault_stress_test
STRESS_FILTER='--gtest_filter=FaultStressTest.SeededInterleavingsKeepInvariantsAndBytes'
STRESS_BUDGET=120  # seconds of wall clock per seed
for seed in 1001 1042 1137; do
  echo "fault-stress fixed seed $seed"
  if ! GENIE_FAULT_SEED=$seed ASAN_OPTIONS=detect_leaks=0 \
      timeout "$STRESS_BUDGET" "$STRESS_BIN" "$STRESS_FILTER"; then
    print_flight_dumps
    exit 1
  fi
done
ENTROPY_SEED=$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')
echo "fault-stress entropy seed $ENTROPY_SEED (replay: GENIE_FAULT_SEED=$ENTROPY_SEED $STRESS_BIN $STRESS_FILTER)"
if ! GENIE_FAULT_SEED=$ENTROPY_SEED ASAN_OPTIONS=detect_leaks=0 \
    timeout "$STRESS_BUDGET" "$STRESS_BIN" "$STRESS_FILTER"; then
  echo "NON-FATAL: entropy seed $ENTROPY_SEED failed the fault-stress harness — file for triage."
  print_flight_dumps
fi

echo "=== tier-1: lossy-link soak (-O2 + ASan, stop-and-wait and windowed) ==="
# Fourth leg: the reliable-delivery stress harness (ARQ + semantics fallback
# + transfer watchdogs under link drop/duplicate/reorder faults), run in both
# build flavors and at both ARQ disciplines — GENIE_RELIABLE_WINDOW=1 is the
# legacy stop-and-wait path, 16 the selective-repeat sliding window with SACK
# trains and per-entry retransmit timers. Three pinned seeds gate each
# (build, window) combination; a failing run leaves a flight-recorder dump in
# $GENIE_FLIGHT_DIR and its path is printed below. One entropy seed per
# window widens coverage under ASan without gating.
RELIABLE_FILTER='--gtest_filter=ReliableStressTest.SeededFaultSweepsDeliverExactlyOnce'
for build_dir in build build-asan; do
  for window in 1 16; do
    RELIABLE_BIN=$build_dir/tests/reliable_stress_test
    for seed in 7003 7071 7158; do
      echo "reliable-stress $build_dir window=$window fixed seed $seed"
      if ! GENIE_RELIABLE_SEED=$seed GENIE_RELIABLE_WINDOW=$window \
          ASAN_OPTIONS=detect_leaks=0 \
          timeout "$STRESS_BUDGET" "$RELIABLE_BIN" "$RELIABLE_FILTER"; then
        print_flight_dumps
        exit 1
      fi
    done
  done
done
RELIABLE_BIN=build-asan/tests/reliable_stress_test
for window in 1 16; do
  ENTROPY_SEED=$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')
  echo "reliable-stress entropy seed $ENTROPY_SEED window=$window (replay: GENIE_RELIABLE_SEED=$ENTROPY_SEED GENIE_RELIABLE_WINDOW=$window $RELIABLE_BIN $RELIABLE_FILTER)"
  if ! GENIE_RELIABLE_SEED=$ENTROPY_SEED GENIE_RELIABLE_WINDOW=$window \
      ASAN_OPTIONS=detect_leaks=0 \
      timeout "$STRESS_BUDGET" "$RELIABLE_BIN" "$RELIABLE_FILTER"; then
    echo "NON-FATAL: entropy seed $ENTROPY_SEED (window=$window) failed the reliable-stress harness — file for triage."
    print_flight_dumps
  fi
done

echo "=== tier-1: multi-tenant fabric soak (-O2 + ASan, stop-and-wait and windowed) ==="
# Fifth leg: the switched-fabric workload soak — mixed closed/open-loop
# tenants over a lossy star/dumbbell fabric with ARQ, golden payloads, and
# quiescent VM invariants. Three pinned seeds gate each (build, window)
# combination; replay any failure with GENIE_FABRIC_SEED=<seed>. One entropy
# seed per window widens coverage under ASan without gating.
FABRIC_FILTER='--gtest_filter=FabricStressTest.LossySoakDeliversExactlyOnceAcrossSeeds'
for build_dir in build build-asan; do
  for window in 1 16; do
    FABRIC_BIN=$build_dir/tests/fabric_stress_test
    for seed in 9004 9087 9153; do
      echo "fabric-stress $build_dir window=$window fixed seed $seed"
      if ! GENIE_FABRIC_SEED=$seed GENIE_RELIABLE_WINDOW=$window \
          ASAN_OPTIONS=detect_leaks=0 \
          timeout "$STRESS_BUDGET" "$FABRIC_BIN" "$FABRIC_FILTER"; then
        print_flight_dumps
        exit 1
      fi
    done
  done
done
FABRIC_BIN=build-asan/tests/fabric_stress_test
for window in 1 16; do
  ENTROPY_SEED=$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')
  echo "fabric-stress entropy seed $ENTROPY_SEED window=$window (replay: GENIE_FABRIC_SEED=$ENTROPY_SEED GENIE_RELIABLE_WINDOW=$window $FABRIC_BIN $FABRIC_FILTER)"
  if ! GENIE_FABRIC_SEED=$ENTROPY_SEED GENIE_RELIABLE_WINDOW=$window \
      ASAN_OPTIONS=detect_leaks=0 \
      timeout "$STRESS_BUDGET" "$FABRIC_BIN" "$FABRIC_FILTER"; then
    echo "NON-FATAL: entropy seed $ENTROPY_SEED (window=$window) failed the fabric soak — file for triage."
    print_flight_dumps
  fi
done

echo "=== tier-1: concurrency layer under TSan ==="
# Sixth leg: the parallel host-path concurrency tests in a ThreadSanitizer
# build (GENIE_TSAN=ON; mutually exclusive with GENIE_ASAN, so a third build
# tree). Pinned seeds keep the workloads reproducible in distribution; the
# interleavings themselves are the coverage, so the tests are run a few
# times to let the scheduler explore. The differential checksum suite rides
# along because its SIMD kernels run inside the TSan'd threads.
cmake -B build-tsan -S . -DGENIE_TSAN=ON >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  pool_shard_test hostpath_mt_stress_test net_checksum_test
for round in 1 2 3; do
  echo "tsan round $round"
  for bin in pool_shard_test hostpath_mt_stress_test; do
    if ! timeout "$STRESS_BUDGET" "build-tsan/tests/$bin"; then
      echo "TSan leg failed: $bin (round $round)"
      exit 1
    fi
  done
done
timeout "$STRESS_BUDGET" build-tsan/tests/net_checksum_test

echo "=== tier-1: crash/partition recovery soak (-O2 + ASan, stop-and-wait and windowed) ==="
# Seventh leg: crash-stop chaos — armed node crash/restart cycles plus fabric
# partition/heal flaps over the multi-tenant workload, gating on exact
# closed-loop accounting (every transfer completes or fails loudly with
# kPeerCrashed/kGiveUp), quiescent VM invariants on every node including
# rebooted ones, and epoch fencing actually firing. Three pinned seeds gate
# each (build, window) combination — 11030 is the seed that first exposed the
# TCOW free-while-wired bug, kept as a regression guard. Replay any failure
# with GENIE_CRASH_SEED=<seed>; a failing seed leaves a flight-recorder dump
# in $GENIE_FLIGHT_DIR. One entropy seed per window widens coverage under
# ASan without gating.
CRASH_FILTER='--gtest_filter=CrashRecoveryStressTest.CrashAndPartitionSoakKeepsAccountingExactAcrossSeeds'
for build_dir in build build-asan; do
  for window in 1 16; do
    CRASH_BIN=$build_dir/tests/crash_recovery_stress_test
    for seed in 11005 11030 11117; do
      echo "crash-stress $build_dir window=$window fixed seed $seed"
      if ! GENIE_CRASH_SEED=$seed GENIE_RELIABLE_WINDOW=$window \
          ASAN_OPTIONS=detect_leaks=0 \
          timeout "$STRESS_BUDGET" "$CRASH_BIN" "$CRASH_FILTER"; then
        print_flight_dumps
        exit 1
      fi
    done
  done
done
CRASH_BIN=build-asan/tests/crash_recovery_stress_test
for window in 1 16; do
  ENTROPY_SEED=$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')
  echo "crash-stress entropy seed $ENTROPY_SEED window=$window (replay: GENIE_CRASH_SEED=$ENTROPY_SEED GENIE_RELIABLE_WINDOW=$window $CRASH_BIN $CRASH_FILTER)"
  if ! GENIE_CRASH_SEED=$ENTROPY_SEED GENIE_RELIABLE_WINDOW=$window \
      ASAN_OPTIONS=detect_leaks=0 \
      timeout "$STRESS_BUDGET" "$CRASH_BIN" "$CRASH_FILTER"; then
    echo "NON-FATAL: entropy seed $ENTROPY_SEED (window=$window) failed the crash-recovery soak — file for triage."
    print_flight_dumps
  fi
done

echo "=== tier-1: telemetry determinism (-O2 + ASan) ==="
# Eighth leg: the continuous-telemetry plane's byte-identity contract. The
# run report (telemetry series summaries, SLO verdicts/alerts, critical path)
# must be byte-for-byte identical across two same-seed runs WITHIN each build
# flavor, and identical BETWEEN -O2 and ASan — any platform-dependent float
# formatting or ordering in the pipeline shows up here as a one-line diff.
# The Perfetto trace (counter tracks interleaved with causal spans) must be
# valid JSON with the counter series present.
REPORT_SEED=0x7e1e
for build_dir in build build-asan; do
  BENCH=$build_dir/bench/bench_hostpath
  echo "telemetry run-report determinism: $build_dir seed $REPORT_SEED"
  # Both runs trace (the report embeds the critical-path section when traced);
  # the second run's trace file is scratch — only its report is compared.
  ASAN_OPTIONS=detect_leaks=0 GENIE_TRACE="$build_dir/telemetry_trace.json" \
    "$BENCH" --report "$REPORT_SEED" > "$build_dir/run_report_a.json"
  ASAN_OPTIONS=detect_leaks=0 GENIE_TRACE="$build_dir/telemetry_trace_b.json" \
    "$BENCH" --report "$REPORT_SEED" > "$build_dir/run_report_b.json"
  if ! diff "$build_dir/run_report_a.json" "$build_dir/run_report_b.json"; then
    echo "telemetry leg failed: same-seed run reports differ in $build_dir"
    exit 1
  fi
done
if ! diff build/run_report_a.json build-asan/run_report_a.json; then
  echo "telemetry leg failed: run report differs between -O2 and ASan builds"
  exit 1
fi
python3 - <<'EOF'
import json
report = json.load(open("build/run_report_a.json"))
for key in ("period_ns", "samples_taken", "sources", "slo"):
    assert key in report, f"run report missing {key!r}"
trace = json.load(open("build/telemetry_trace.json"))
events = trace["traceEvents"] if isinstance(trace, dict) else trace
counters = {e["name"] for e in events if e.get("ph") == "C"}
assert len(counters) >= 5, f"expected >=5 counter tracks, got {sorted(counters)}"
print(f"telemetry leg OK: report parses, {len(counters)} counter tracks in trace")
EOF
# The telemetry unit/soak suite by name, so a filter change can never
# silently deselect the partition-flap alert scenario.
build/tests/obs_telemetry_test
ASAN_OPTIONS=detect_leaks=0 build-asan/tests/obs_telemetry_test

echo "CI OK: all suites passed."
