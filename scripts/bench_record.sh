#!/usr/bin/env bash
# Append a normalized bench row to BENCH_hostpath.json.
#
# Runs `bench_hostpath --json` (one flat {"row": MB/s, ...} object on
# stdout), then inserts it as a named, dated section before the trailing
# "speedup" block so the file keeps its chronological before/after
# trajectory. The bench's human-readable tables never touch the file;
# only the machine row does.
#
# Usage: scripts/bench_record.sh <section-name> [note] [path-to-bench]
#   section-name  key for the new section (e.g. "telemetry_plane")
#   note          free-text provenance note (default: "recorded by bench_record.sh")
#   bench         bench binary (default: build/bench/bench_hostpath)
set -euo pipefail

cd "$(dirname "$0")/.."

SECTION="${1:?usage: bench_record.sh <section-name> [note] [bench-path]}"
NOTE="${2:-recorded by bench_record.sh}"
BENCH="${3:-build/bench/bench_hostpath}"
OUT="BENCH_hostpath.json"

if [[ ! -x "$BENCH" ]]; then
  echo "bench_record.sh: bench binary not found: $BENCH" >&2
  echo "  (build it first: cmake --build build --target bench_hostpath)" >&2
  exit 1
fi

ROWS_JSON="$("$BENCH" --json)"

ROWS_JSON="$ROWS_JSON" SECTION="$SECTION" NOTE="$NOTE" OUT="$OUT" python3 - <<'EOF'
import json, os, collections

section = os.environ["SECTION"]
rows = json.loads(os.environ["ROWS_JSON"])
if not isinstance(rows, dict) or not rows:
    raise SystemExit("bench --json produced no rows")

path = os.environ["OUT"]
with open(path) as f:
    doc = json.load(f, object_pairs_hook=collections.OrderedDict)

entry = collections.OrderedDict()
entry["date"] = __import__("datetime").date.today().isoformat()
entry["note"] = os.environ["NOTE"]
for name, mbps in rows.items():
    entry[name] = round(float(mbps), 1)

# Keep "speedup" as the trailing block; everything else stays in insertion
# (chronological) order. Re-recording a section overwrites it in place.
speedup = doc.pop("speedup", None)
doc[section] = entry
if speedup is not None:
    doc["speedup"] = speedup

with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"recorded {len(rows)} rows to {path} section {section!r}")
EOF
