// Reproduces paper Figure 6: end-to-end latency with pooled in-host input
// buffering and application-aligned application buffers.
//
// Paper: copy/emulated copy only slightly above their early-demultiplexing
// latencies (overlay overhead); wiring semantics (share, move, weak move)
// are higher; 60 KB throughputs 77 copy, 120 share/move/weak move,
// 123 emulated move/emulated copy/emulated weak move, 124 emulated share.
#include <cstdio>

#include "bench/bench_util.h"

namespace genie {
namespace {

void Run() {
  std::printf("=== Figure 6: latency, application-aligned pooled input buffering (us) ===\n\n");
  ExperimentConfig config;
  config.buffering = InputBuffering::kPooled;
  config.dst_page_offset = 0;  // Application-aligned receive buffers.
  const auto lengths = PageMultipleLengths();
  const auto results = RunAllSemantics(config, lengths);

  PrintLatencySeries(results, "One-way latency (us)", PickLatency);

  std::printf("\n60 KB equivalent throughput (paper: copy 77, share/move/weak move 120,\n");
  std::printf("emulated move/copy/weak move 123, emulated share 124 Mbps):\n");
  TextTable table;
  table.AddHeader({"semantics", "throughput (Mbps)"});
  for (const auto& [sem, run] : results) {
    table.AddRow({std::string(SemanticsName(sem)),
                  FormatDouble(SampleFor(run, 61440).throughput_mbps, 1)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
