// Extension bench: the Section 8 trend, swept continuously. The paper
// extrapolates from OC-3 to OC-12; this bench runs the simulator across two
// decades of link speed (Table 1's history: Ethernet-class 10 Mbps to
// HIPPI-class 1600 Mbps) and shows how the copy penalty grows as the wire
// stops hiding the copies — and how the non-copy cluster tightens.
#include <cstdio>

#include "bench/bench_util.h"

namespace genie {
namespace {

void Run() {
  std::printf("=== Link-speed sweep: 60 KB datagrams, early demultiplexing ===\n");
  std::printf("Effective AAL5 payload rates from Ethernet-era to HIPPI-era links\n");
  std::printf("(Table 1's two decades of LAN history), Micron P166 CPU held fixed.\n\n");

  const std::uint64_t b = 61440;
  const std::vector<std::uint64_t> lengths = {b};
  TextTable table;
  table.AddHeader({"link (Mbps)", "copy (us)", "emul. copy (us)", "emul. share (us)",
                   "copy penalty", "non-copy spread"});
  for (const double mbps : {10.0, 50.0, 133.8, 267.6, 535.2, 1070.4}) {
    ExperimentConfig config;
    config.profile = MachineProfile::MicronP166().WithEffectiveLinkMbps(mbps);
    config.repetitions = 2;
    double copy = 0;
    double ecopy = 0;
    double eshare = 0;
    double non_copy_min = 1e18;
    double non_copy_max = 0;
    for (const Semantics sem : kAllSemantics) {
      Experiment experiment(config);
      const double l = experiment.Run(sem, lengths).samples[0].latency_us;
      if (sem == Semantics::kCopy) {
        copy = l;
      } else {
        non_copy_min = std::min(non_copy_min, l);
        non_copy_max = std::max(non_copy_max, l);
        if (sem == Semantics::kEmulatedCopy) {
          ecopy = l;
        } else if (sem == Semantics::kEmulatedShare) {
          eshare = l;
        }
      }
    }
    table.AddRow({FormatDouble(mbps, 1), FormatDouble(copy, 0), FormatDouble(ecopy, 0),
                  FormatDouble(eshare, 0), FormatDouble(copy / ecopy, 2) + "x",
                  FormatDouble((non_copy_max - non_copy_min) / non_copy_min * 100, 1) + "%"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nAt Ethernet speeds the wire hides everything (copy penalty ~1x); at\n"
      "OC-3 it is 1.6x; by HIPPI-class rates the copies dominate end-to-end\n"
      "latency (~4x). With the CPU held fixed, faster links also expose the\n"
      "smaller VM-op differences between the non-copy semantics (spread 0.4%%\n"
      "-> 35%%); Section 8's clustering claim is that CPU speed grows *faster*\n"
      "than the network, which shrinks those CPU-dominated differences again\n"
      "(see ScalingTest.TrendsShrinkNonCopyDifferences). Both halves of the\n"
      "argument are measurable here.\n");
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
