// Reproduces paper Figure 4: CPU utilization while performing the Figure 3
// experiment. The paper instrumented the scheduler idle loop; we report the
// busy fraction of the receiver CPU (and the sender's for reference).
//
// Paper's 60 KB values: 26% copy; 12% move, weak move, share; 10% emulated
// copy and emulated move; 9% emulated weak move; 8% emulated share.
#include <cstdio>

#include "bench/bench_util.h"

namespace genie {
namespace {

void Run() {
  std::printf("=== Figure 4: CPU utilization, early demultiplexing (%%) ===\n\n");
  ExperimentConfig config;
  config.buffering = InputBuffering::kEarlyDemux;
  config.repetitions = 5;
  const auto lengths = PageMultipleLengths();
  const auto results = RunAllSemantics(config, lengths);

  PrintLatencySeries(results, "Receiver CPU utilization (%)", PickReceiverUtilPercent);
  std::printf("\n");
  PrintLatencySeries(results, "Sender CPU utilization (%)", PickSenderUtilPercent);

  std::printf("\n60 KB summary (paper: copy 26%%, move/weak move/share 12%%,\n");
  std::printf("emulated copy/emulated move 10%%, emulated weak move 9%%,\n");
  std::printf("emulated share 8%%):\n");
  TextTable table;
  table.AddHeader({"semantics", "receiver util (%)", "sender util (%)"});
  for (const auto& [sem, run] : results) {
    const LatencySample& s = SampleFor(run, 61440);
    table.AddRow({std::string(SemanticsName(sem)),
                  FormatDouble(s.receiver_utilization * 100, 1),
                  FormatDouble(s.sender_utilization * 100, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  const double copy =
      SampleFor(results.at(Semantics::kCopy), 61440).receiver_utilization;
  const double eshare =
      SampleFor(results.at(Semantics::kEmulatedShare), 61440).receiver_utilization;
  std::printf("\nCopy leaves %.1fx less receiver CPU available than emulated share.\n",
              copy / eshare);
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
