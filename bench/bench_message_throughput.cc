// Extension bench: multi-packet message throughput (paper reference [4]'s
// setting) with credit-based flow control. Unlike the paper's single-
// datagram latencies, fragmented messages pipeline: fragment k+1 rides the
// wire while fragment k disposes, so the receive-side dispose cost only
// hurts once it exceeds a fragment's wire time.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/genie/message.h"

namespace genie {
namespace {

constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x40000000;
constexpr std::uint64_t kMessageBytes = 4 * 1024 * 1024;

double MessageBandwidthMbps(Semantics sem, std::uint32_t window) {
  Engine engine;
  Node::Config node_cfg;
  node_cfg.mem_frames = 4096;
  node_cfg.flow_control = true;
  Node tx_node(engine, "tx", node_cfg);
  Node rx_node(engine, "rx", node_cfg);
  Network net(engine, tx_node, rx_node);
  Endpoint tx_ep(tx_node, 1);
  Endpoint rx_ep(rx_node, 1);
  AddressSpace& tx_app = tx_node.CreateProcess("app");
  AddressSpace& rx_app = rx_node.CreateProcess("app");
  tx_app.CreateRegion(kSrc, kMessageBytes);
  rx_app.CreateRegion(kDst, kMessageBytes);
  std::vector<std::byte> payload(kMessageBytes, std::byte{0x5A});
  (void)tx_app.Write(kSrc, payload);

  MessageChannel::Options options;
  options.window = window;
  MessageChannel tx_chan(tx_ep, options);
  MessageChannel rx_chan(rx_ep, options);
  MessageResult result;
  auto recv = [sem](MessageChannel& chan, AddressSpace& app,
                    MessageResult* out) -> Task<void> {
    *out = co_await chan.ReceiveMessage(app, kDst, kMessageBytes, sem);
  };
  std::move(recv(rx_chan, rx_app, &result)).Detach();
  std::move(tx_chan.SendMessage(tx_app, kSrc, kMessageBytes, sem)).Detach();
  engine.Run();
  GENIE_CHECK(result.ok);
  return static_cast<double>(kMessageBytes) * 8.0 /
         SimTimeToMicros(result.completed_at);
}

void Run() {
  std::printf("=== Multi-packet messages: 4 MB, 60 KB fragments, credit flow control ===\n\n");
  std::printf("Bandwidth by semantics (window = 4; wire limit ~133.8 Mbps):\n");
  TextTable t1;
  t1.AddHeader({"semantics", "bandwidth (Mbps)"});
  for (const Semantics sem : {Semantics::kCopy, Semantics::kEmulatedCopy, Semantics::kShare,
                              Semantics::kEmulatedShare}) {
    t1.AddRow({std::string(SemanticsName(sem)),
               FormatDouble(MessageBandwidthMbps(sem, 4), 1)});
  }
  std::printf("%s\n", t1.ToString().c_str());

  std::printf("Window sweep (emulated copy): pipelining hides the dispose cost\n");
  std::printf("once a fragment's receive-side work fits in its wire time:\n");
  TextTable t2;
  t2.AddHeader({"window", "bandwidth (Mbps)"});
  for (const std::uint32_t w : {1u, 2u, 4u, 8u}) {
    t2.AddRow({std::to_string(w), FormatDouble(MessageBandwidthMbps(Semantics::kEmulatedCopy, w), 1)});
  }
  std::printf("%s\n", t2.ToString().c_str());

  std::printf("Copy semantics pipelines too (its copies overlap the wire at OC-3),\n");
  std::printf("but burns the CPU the paper's Figure 4 measures - and at OC-12 the\n");
  std::printf("copies no longer fit in a fragment time (see bench_oc12_extrapolation).\n");
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
