// Ablation bench: sensitivity to the Section 6 thresholds. The paper states
// "performance is only moderately sensitive to these settings; we
// empirically determined these values to give good results" — this bench
// sweeps the emulated-copy output conversion threshold and the reverse
// copyout threshold around the paper's settings (1666 B, 2178 B).
#include <cstdio>

#include "bench/bench_util.h"

namespace genie {
namespace {

double Latency(std::uint64_t bytes, const GenieOptions& options) {
  ExperimentConfig config;
  config.options = options;
  config.repetitions = 3;
  Experiment experiment(config);
  const std::vector<std::uint64_t> lengths = {bytes};
  return experiment.Run(Semantics::kEmulatedCopy, lengths).samples[0].latency_us;
}

void Run() {
  std::printf("=== Threshold sensitivity (emulated copy, early demultiplexing) ===\n\n");

  std::printf("Output copy-conversion threshold (paper: 1666 B) - latency of a\n");
  std::printf("1500 B datagram as the threshold moves across it:\n");
  TextTable t1;
  t1.AddHeader({"threshold (B)", "1500 B latency (us)", "converted?"});
  for (const std::uint64_t threshold : {0ull, 800ull, 1501ull, 1666ull, 3000ull}) {
    GenieOptions options;
    options.emulated_copy_output_threshold = threshold;
    t1.AddRow({std::to_string(threshold), FormatDouble(Latency(1500, options), 1),
               threshold > 1500 ? "yes (copy path)" : "no (TCOW+swap path)"});
  }
  std::printf("%s\n", t1.ToString().c_str());

  std::printf("Reverse copyout threshold (paper: 2178 B, just above half a page) -\n");
  std::printf("latency of a one-page-plus-3000-B datagram (partial page 3000 B):\n");
  TextTable t2;
  t2.AddHeader({"threshold (B)", "7096 B latency (us)", "partial page handling"});
  for (const std::uint64_t threshold : {1024ull, 2048ull, 2178ull, 3200ull, 4096ull}) {
    GenieOptions options;
    options.reverse_copyout_threshold = threshold;
    t2.AddRow({std::to_string(threshold), FormatDouble(Latency(4096 + 3000, options), 1),
               threshold >= 3000 ? "copyout 3000 B" : "complete 1096 B + swap"});
  }
  std::printf("%s\n", t2.ToString().c_str());

  std::printf("The optimum completes-and-swaps when the completion (page - filled) is\n");
  std::printf("smaller than the copyout (filled): threshold just above half a page,\n");
  std::printf("exactly the paper's choice.\n");
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
