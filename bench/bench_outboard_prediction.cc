// Extension: the experiment the paper could not run ("We do not show results
// with outboard buffering because of limitations in the hardware used").
//
// Paper's stated expectation (Section 7): compared with early
// demultiplexing, staging at an outboard buffer adds an equal amount of
// latency to all semantics except emulated copy, which — handled specially
// (Section 6.2.3) — comes even closer to emulated share.
#include <cstdio>

#include "bench/bench_util.h"

namespace genie {
namespace {

void Run() {
  std::printf("=== Outboard input buffering (store-and-forward) vs early demux ===\n");
  std::printf("The paper predicted this experiment but could not run it; the\n");
  std::printf("simulated Credit Net adapter can.\n\n");

  const auto lengths = PageMultipleLengths();
  ExperimentConfig ed_cfg;
  ed_cfg.buffering = InputBuffering::kEarlyDemux;
  ExperimentConfig ob_cfg;
  ob_cfg.buffering = InputBuffering::kOutboard;
  const auto early = RunAllSemantics(ed_cfg, lengths);
  const auto outboard = RunAllSemantics(ob_cfg, lengths);

  PrintLatencySeries(outboard, "One-way latency, outboard buffering (us)", PickLatency);

  std::printf("\nAdded staging latency at 60 KB vs early demultiplexing:\n");
  TextTable table;
  table.AddHeader({"semantics", "early demux (us)", "outboard (us)", "delta (us)"});
  for (const auto& [sem, run] : outboard) {
    const double ed = SampleFor(early.at(sem), 61440).latency_us;
    const double ob = SampleFor(run, 61440).latency_us;
    table.AddRow({std::string(SemanticsName(sem)), FormatDouble(ed, 0), FormatDouble(ob, 0),
                  FormatDouble(ob - ed, 0)});
  }
  std::printf("%s", table.ToString().c_str());

  const double ecopy = SampleFor(outboard.at(Semantics::kEmulatedCopy), 61440).latency_us;
  const double eshare = SampleFor(outboard.at(Semantics::kEmulatedShare), 61440).latency_us;
  const double ecopy_ed = SampleFor(early.at(Semantics::kEmulatedCopy), 61440).latency_us;
  const double eshare_ed = SampleFor(early.at(Semantics::kEmulatedShare), 61440).latency_us;
  std::printf("\nEmulated copy vs emulated share gap: %.0f us outboard vs %.0f us early\n",
              ecopy - eshare, ecopy_ed - eshare_ed);
  std::printf("demux - as the paper expected, outboard emulated copy behaves almost\n");
  std::printf("like emulated share (no swap, no aligned buffer; DMA straight into the\n");
  std::printf("application buffer).\n");
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
