// Reproduces paper Table 8: scaling of data-passing costs on the Gateway
// P5-90 and the AlphaStation 255/233 relative to the Micron P166 baseline,
// grouped by parameter class (memory-, cache-, CPU-dominated), against the
// bounds estimated from machine specifications (paper Table 5).
//
// Also re-measures cross-platform end-to-end behavior: the simulator runs
// the Figure 3 sweep on each profile and fits the lines, verifying that the
// performance clustering is platform-independent ("results for the other
// platforms were similar").
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/linear_fit.h"
#include "src/analysis/scaling_model.h"

namespace genie {
namespace {

void PrintProfile(const MachineProfile& p) {
  std::printf("  %-22s SPECint %.2f, mem copy %.0f Mbps, L2 copy %.0f Mbps, page %u B\n",
              p.name.c_str(), p.spec_int, p.mem_copy_bw_mbps, p.l2_copy_bw_mbps, p.page_size);
}

void PrintScaling(const char* name, const MachineProfile& target) {
  const MachineProfile base = MachineProfile::MicronP166();
  const CostModel base_cost(base);
  const CostModel target_cost(target);
  const ScalingReport report = ComputeScaling(base_cost, target_cost);
  const EstimatedScaling est = EstimateScalingBounds(base, target);

  std::printf("--- %s ---\n", name);
  TextTable table;
  table.AddHeader({"parameter class", "estimated", "GM", "min", "max", "n"});
  table.AddRow({"Memory-dominated", FormatDouble(est.memory, 2),
                FormatDouble(report.memory_dominated.geometric_mean, 2),
                FormatDouble(report.memory_dominated.min, 2),
                FormatDouble(report.memory_dominated.max, 2),
                std::to_string(report.memory_dominated.count)});
  table.AddRow({"Cache-dominated",
                "> " + FormatDouble(est.cache_low, 2) + ", < " + FormatDouble(est.cache_high, 2),
                FormatDouble(report.cache_dominated.geometric_mean, 2),
                FormatDouble(report.cache_dominated.min, 2),
                FormatDouble(report.cache_dominated.max, 2),
                std::to_string(report.cache_dominated.count)});
  table.AddRow({"CPU-dominated mult. factor", "> " + FormatDouble(est.cpu_low, 2),
                FormatDouble(report.cpu_mult_factor.geometric_mean, 2),
                FormatDouble(report.cpu_mult_factor.min, 2),
                FormatDouble(report.cpu_mult_factor.max, 2),
                std::to_string(report.cpu_mult_factor.count)});
  table.AddRow({"CPU-dominated fixed term", "> " + FormatDouble(est.cpu_low, 2),
                FormatDouble(report.cpu_fixed_term.geometric_mean, 2),
                FormatDouble(report.cpu_fixed_term.min, 2),
                FormatDouble(report.cpu_fixed_term.max, 2),
                std::to_string(report.cpu_fixed_term.count)});
  std::printf("%s\n", table.ToString().c_str());
}

void CrossPlatformClustering(const MachineProfile& profile) {
  ExperimentConfig config;
  config.profile = profile;
  config.repetitions = 2;
  const std::uint64_t sixty_kb = 60 * 1024 / profile.page_size * profile.page_size;
  const std::vector<std::uint64_t> lengths = {sixty_kb};
  double copy_latency = 0;
  double non_copy_max = 0;
  for (const Semantics sem : kAllSemantics) {
    Experiment experiment(config);
    const double l = experiment.Run(sem, lengths).samples[0].latency_us;
    if (sem == Semantics::kCopy) {
      copy_latency = l;
    } else {
      non_copy_max = std::max(non_copy_max, l);
    }
  }
  std::printf("  %-22s copy %.0f us vs worst non-copy %.0f us (+%.0f%%): clustering %s\n",
              profile.name.c_str(), copy_latency, non_copy_max,
              (copy_latency - non_copy_max) / non_copy_max * 100.0,
              copy_latency > non_copy_max * 1.15 ? "holds" : "BROKEN");
}

void Run() {
  std::printf("=== Table 8: scaling of data-passing costs relative to the Micron P166 ===\n\n");
  std::printf("Machine profiles (paper Table 5):\n");
  PrintProfile(MachineProfile::MicronP166());
  PrintProfile(MachineProfile::GatewayP5_90());
  PrintProfile(MachineProfile::AlphaStation255());
  std::printf("\nPaper Table 8 (Gateway P5-90): memory est 2.40 meas 2.43; cache est\n");
  std::printf("(1.44, 3.33) meas 2.46; CPU mult est >1.57 GM 1.79 [1.58, 1.92]; CPU\n");
  std::printf("fixed GM 1.83 [1.53, 2.59].\n");
  std::printf("Paper Table 8 (AlphaStation): memory est 1.00 meas 0.83; cache est\n");
  std::printf("(0.26, 1.39) meas 0.54; CPU mult est >1.30 GM 1.64 [0.75, 3.77]; CPU\n");
  std::printf("fixed GM 1.54 [0.47, 3.74].\n\n");

  PrintScaling("Gateway P5-90", MachineProfile::GatewayP5_90());
  PrintScaling("AlphaStation 255/233", MachineProfile::AlphaStation255());

  std::printf("Cross-platform sanity (paper: \"results for the other platforms were\n");
  std::printf("similar\" - copy distinctly worst everywhere):\n");
  CrossPlatformClustering(MachineProfile::MicronP166());
  CrossPlatformClustering(MachineProfile::GatewayP5_90());
  CrossPlatformClustering(MachineProfile::AlphaStation255());
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
