// Ablation bench: what each of the paper's contributed optimizations is
// worth. Toggles TCOW (Section 5.1), input alignment (Section 5.2), region
// hiding (Section 4), input-disabled pageout (Section 3.2), and the
// short-output copy conversion (Section 6) individually.
//
// Two metrics per configuration: end-to-end latency (critical path) and
// total CPU busy time per datagram (sender + receiver) — optimizations whose
// operations overlap the wire (e.g. region hiding's create/remove) show up
// only in CPU time, which is what they buy back for applications (Figure 4).
#include <cstdio>

#include "bench/bench_util.h"

namespace genie {
namespace {

struct Measured {
  double latency_us = 0.0;
  double cpu_us_per_datagram = 0.0;
};

Measured Measure(Semantics sem, std::uint64_t bytes, const GenieOptions& options,
                 std::uint32_t dst_offset = 0) {
  ExperimentConfig config;
  config.options = options;
  config.dst_page_offset = dst_offset;
  config.repetitions = 5;
  Experiment experiment(config);
  const std::vector<std::uint64_t> lengths = {bytes};
  const LatencySample s = experiment.Run(sem, lengths).samples[0];
  Measured m;
  m.latency_us = s.latency_us;
  // Utilization is busy/window and the window covers `repetitions`
  // back-to-back datagrams, so busy-per-datagram = util * window / reps;
  // window/reps ~= latency for this one-at-a-time workload.
  m.cpu_us_per_datagram = (s.sender_utilization + s.receiver_utilization) * s.latency_us;
  return m;
}

void Run() {
  std::printf("=== Ablation: contribution of each Genie optimization ===\n");
  std::printf("Early demultiplexing, Micron P166, OC-3.\n\n");
  const GenieOptions defaults;

  TextTable table;
  table.AddHeader({"configuration", "semantics", "bytes", "latency (us)", "dLatency",
                   "CPU us/dgram", "dCPU"});

  auto row = [&](const char* name, Semantics sem, std::uint64_t bytes,
                 const GenieOptions& options, std::uint32_t dst_offset = 0) {
    const Measured full = Measure(sem, bytes, defaults, dst_offset);
    const Measured ablated = Measure(sem, bytes, options, dst_offset);
    auto delta = [](double a, double b) {
      return (a >= b ? "+" : "") + FormatDouble(a - b, 0);
    };
    table.AddRow({name, std::string(SemanticsName(sem)), std::to_string(bytes),
                  FormatDouble(ablated.latency_us, 0),
                  delta(ablated.latency_us, full.latency_us),
                  FormatDouble(ablated.cpu_us_per_datagram, 0),
                  delta(ablated.cpu_us_per_datagram, full.cpu_us_per_datagram)});
  };

  GenieOptions no_tcow = defaults;
  no_tcow.enable_tcow = false;
  row("TCOW off (output copies like copy)", Semantics::kEmulatedCopy, 61440, no_tcow);
  row("TCOW off, short datagram", Semantics::kEmulatedCopy, 8192, no_tcow);

  GenieOptions no_align = defaults;
  no_align.enable_input_alignment = false;
  row("input alignment off (unaligned: copyout)", Semantics::kEmulatedCopy, 61440, no_align,
      /*dst_offset=*/1000);

  GenieOptions no_hiding = defaults;
  no_hiding.enable_region_hiding = false;
  row("region hiding off (region remove+create)", Semantics::kEmulatedMove, 61440, no_hiding);
  row("region hiding off, short datagram", Semantics::kEmulatedMove, 2048, no_hiding);

  GenieOptions no_idp = defaults;
  no_idp.enable_input_disabled_pageout = false;
  row("input-disabled pageout off (wire again)", Semantics::kEmulatedCopy, 61440, no_idp);
  row("input-disabled pageout off, emul. share", Semantics::kEmulatedShare, 61440, no_idp);

  GenieOptions no_convert = defaults;
  no_convert.enable_copy_conversion = false;
  row("copy conversion off, short emul. copy", Semantics::kEmulatedCopy, 512, no_convert);
  row("copy conversion off, short emul. share", Semantics::kEmulatedShare, 128, no_convert);

  std::printf("%s", table.ToString().c_str());
  std::printf("\nPositive deltas = cost of running without the optimization. Latency\n");
  std::printf("deltas show critical-path costs (TCOW's avoided copies, alignment's\n");
  std::printf("avoided copyout, wiring on the prepare path); CPU deltas also expose\n");
  std::printf("work that overlaps the wire (region create/remove without hiding,\n");
  std::printf("sender-side unwire). Conversion-off can be slightly *faster* for very\n");
  std::printf("short data at the cost of weaker short-datagram scaling (Figure 5).\n");
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
