// Reproduces paper Table 7: estimated (E) vs actual (A) end-to-end latency
// lines for every semantics under early demultiplexing, application-aligned
// pooled, and unaligned pooled input buffering.
//
// E comes from the analytic breakdown model (base latency + Table 2 prepare
// + Table 3/4 receiver critical-path operations); A is a least-squares fit
// of latencies measured in the simulator. Close agreement validates the
// overlap structure of the breakdown model.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/latency_model.h"
#include "src/analysis/linear_fit.h"

namespace genie {
namespace {

void RunSetting(const char* title, InputBuffering buffering, std::uint32_t dst_offset) {
  std::printf("--- %s ---\n", title);
  ExperimentConfig config;
  config.buffering = buffering;
  config.dst_page_offset = dst_offset;
  config.repetitions = 3;
  const CostModel cost(config.profile);
  const auto lengths = PageMultipleLengths();

  TextTable table;
  table.AddHeader({"semantics", "E slope", "E intercept", "A slope", "A intercept", "A R^2"});
  for (const Semantics sem : kAllSemantics) {
    Experiment experiment(config);
    const RunResult run = experiment.Run(sem, lengths);
    std::vector<std::pair<double, double>> pts;
    for (const LatencySample& s : run.samples) {
      pts.emplace_back(static_cast<double>(s.bytes), s.latency_us);
    }
    const LinearFit actual = FitLine(pts);
    const LatencyLine estimated =
        EstimateLatencyLine(cost, sem, buffering, dst_offset == 0);
    table.AddRow({std::string(SemanticsName(sem)),
                  FormatDouble(estimated.slope_us_per_byte, 4),
                  FormatDouble(estimated.intercept_us, 0), FormatDouble(actual.slope, 4),
                  FormatDouble(actual.intercept, 0), FormatDouble(actual.r2, 5)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Run() {
  std::printf("=== Table 7: estimated (E) and actual (A) end-to-end latencies ===\n");
  std::printf("Lines are latency_us = slope * B + intercept, B in bytes.\n");
  std::printf("Paper values (E/A) for early demultiplexing: copy 0.0997B+141 /\n");
  std::printf("0.0998B+125; emulated copy 0.0621B+153 / 0.0622B+150; share 0.0619B+165\n");
  std::printf("/ 0.0621B+162; emulated share 0.0602B+137 / 0.0600B+137; move\n");
  std::printf("0.0628B+197 / 0.0626B+202; emulated move 0.0610B+151 / 0.0609B+150;\n");
  std::printf("weak move 0.0620B+173 / 0.0615B+170; emulated weak move 0.0603B+144 /\n");
  std::printf("0.0602B+143.\n\n");
  RunSetting("Early demultiplexing", InputBuffering::kEarlyDemux, 0);
  RunSetting("Application-aligned pooled", InputBuffering::kPooled, 0);
  RunSetting("Unaligned pooled", InputBuffering::kPooled, 1000);
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
