// Paper Table 1 (background): approximate year of introduction and
// point-to-point bandwidth of popular LANs, with the growth-rate claims the
// introduction derives from it — LAN bandwidth up roughly an order of
// magnitude per decade while DRAM access time improves only ~50% per decade.
// The bench checks the paper's motivating arithmetic against this repo's
// machine profile: at OC-3, LAN bandwidth already rivals the P166's memory
// copy bandwidth.
#include <cstdio>

#include <cmath>

#include "src/cost/machine_profile.h"
#include "src/util/table.h"

namespace genie {
namespace {

struct LanRow {
  const char* lan;
  int year;
  const char* bandwidth_mbps;
  double top_mbps;
};

void Run() {
  std::printf("=== Table 1: LAN point-to-point bandwidth history (background) ===\n\n");
  const LanRow rows[] = {
      {"Token ring", 1972, "1, 4, or 16", 16},  {"Ethernet", 1976, "3 or 10", 10},
      {"FDDI", 1987, "100", 100},               {"ATM", 1989, "155, 622, or 2488", 2488},
      {"HIPPI", 1992, "800 or 1600", 1600},
  };
  TextTable table;
  table.AddHeader({"LAN", "year introduced", "bandwidth (Mbps)"});
  for (const LanRow& row : rows) {
    table.AddRow({row.lan, std::to_string(row.year), row.bandwidth_mbps});
  }
  std::printf("%s", table.ToString().c_str());

  // The introduction's trend claim: roughly an order of magnitude per decade.
  const double per_decade =
      std::pow(rows[4].top_mbps / rows[0].top_mbps, 10.0 / (rows[4].year - rows[0].year));
  std::printf("\nGrowth 1972-1992: %.0fx overall = %.1fx per decade (paper: \"roughly an\n",
              rows[4].top_mbps / rows[0].top_mbps, per_decade);
  std::printf("order of magnitude each decade\").\n");

  const MachineProfile p166 = MachineProfile::MicronP166();
  std::printf("\n\"Today, LAN bandwidth sometimes actually exceeds main memory\n");
  std::printf("bandwidth\": the Micron P166 copies memory at %.0f Mbps while ATM already\n",
              p166.mem_copy_bw_mbps);
  std::printf("offers 622/2488 Mbps rates - each copy can cost more than the wire.\n");
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
