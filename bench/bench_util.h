// Shared helpers for the benchmark binaries that regenerate the paper's
// figures and tables.
#ifndef GENIE_BENCH_BENCH_UTIL_H_
#define GENIE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/genie/semantics.h"
#include "src/harness/experiment.h"
#include "src/util/table.h"

namespace genie {

// Runs the sweep for every semantics and returns semantics -> samples.
inline std::map<Semantics, RunResult> RunAllSemantics(const ExperimentConfig& config,
                                                      std::span<const std::uint64_t> lengths) {
  std::map<Semantics, RunResult> results;
  for (const Semantics sem : kAllSemantics) {
    Experiment experiment(config);
    results[sem] = experiment.Run(sem, lengths);
  }
  return results;
}

// Prints one figure-style series table: rows = lengths, columns = semantics.
inline void PrintLatencySeries(const std::map<Semantics, RunResult>& results,
                               const std::string& value_label,
                               double (*pick)(const LatencySample&)) {
  TextTable table;
  std::vector<std::string> header = {"bytes"};
  for (const auto& [sem, run] : results) {
    header.emplace_back(SemanticsName(sem));
  }
  table.AddHeader(std::move(header));
  const RunResult& first = results.begin()->second;
  for (std::size_t i = 0; i < first.samples.size(); ++i) {
    std::vector<std::string> row = {std::to_string(first.samples[i].bytes)};
    for (const auto& [sem, run] : results) {
      row.push_back(FormatDouble(pick(run.samples[i]), 1));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s (columns per semantics)\n", value_label.c_str());
  std::printf("%s", table.ToString().c_str());
}

inline double PickLatency(const LatencySample& s) { return s.latency_us; }
inline double PickThroughput(const LatencySample& s) { return s.throughput_mbps; }
inline double PickReceiverUtilPercent(const LatencySample& s) {
  return s.receiver_utilization * 100.0;
}
inline double PickSenderUtilPercent(const LatencySample& s) {
  return s.sender_utilization * 100.0;
}

inline const LatencySample& SampleFor(const RunResult& run, std::uint64_t bytes) {
  for (const LatencySample& s : run.samples) {
    if (s.bytes == bytes) {
      return s;
    }
  }
  std::fprintf(stderr, "no sample for %llu bytes\n", static_cast<unsigned long long>(bytes));
  std::abort();
}

}  // namespace genie

#endif  // GENIE_BENCH_BENCH_UTIL_H_
