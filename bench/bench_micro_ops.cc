// Google-benchmark microbenchmarks of this library's real (wall-clock)
// primitive costs: the data-movement and VM-manipulation operations whose
// *simulated* costs come from the paper's Table 6. Useful to see that the
// structural claim — VM manipulation is much cheaper than copying — holds on
// modern hardware too, and to profile the simulator itself.
#include <benchmark/benchmark.h>

#include <cstring>

#include "src/genie/sys_buffer.h"
#include "src/mem/phys_memory.h"
#include "src/vm/address_space.h"
#include "src/vm/io_ref.h"
#include "src/vm/vm.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kBase = 0x10000000;

void BM_MemcpyPerPage(benchmark::State& state) {
  const std::size_t pages = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> src(pages * kPage, std::byte{1});
  std::vector<std::byte> dst(pages * kPage);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), src.size());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * src.size()));
}
BENCHMARK(BM_MemcpyPerPage)->Arg(1)->Arg(4)->Arg(15);

void BM_PageSwap(benchmark::State& state) {
  // Swapping pages between a system buffer and an application buffer: the
  // copy-avoidance path (object map + PTE update, no data movement).
  const std::uint64_t pages = static_cast<std::uint64_t>(state.range(0));
  Vm vm(4096, kPage);
  AddressSpace as(vm, "app");
  as.CreateRegion(kBase, pages * kPage);
  std::vector<std::byte> payload(pages * kPage, std::byte{2});
  (void)as.Write(kBase, payload);
  for (auto _ : state) {
    SysBuffer sys = AllocateSysBuffer(vm.pm(), 0, pages * kPage);
    const DisposePlan plan = DisposeAlignedIntoApp(as, kBase, pages * kPage, sys, 2178);
    benchmark::DoNotOptimize(plan.pages_swapped);
    FreeSysBuffer(vm.pm(), sys);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * pages * kPage));
}
BENCHMARK(BM_PageSwap)->Arg(1)->Arg(4)->Arg(15);

void BM_PageReference(benchmark::State& state) {
  const std::uint64_t pages = static_cast<std::uint64_t>(state.range(0));
  Vm vm(4096, kPage);
  AddressSpace as(vm, "app");
  as.CreateRegion(kBase, pages * kPage);
  std::vector<std::byte> payload(pages * kPage, std::byte{2});
  (void)as.Write(kBase, payload);
  for (auto _ : state) {
    IoReference ref;
    (void)ReferenceRange(as, kBase, pages * kPage, IoDirection::kOutput, &ref);
    Unreference(vm, ref);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * pages));
}
BENCHMARK(BM_PageReference)->Arg(1)->Arg(4)->Arg(15);

void BM_ProtectionChange(benchmark::State& state) {
  const std::uint64_t pages = static_cast<std::uint64_t>(state.range(0));
  Vm vm(4096, kPage);
  AddressSpace as(vm, "app");
  as.CreateRegion(kBase, pages * kPage);
  std::vector<std::byte> payload(pages * kPage, std::byte{2});
  (void)as.Write(kBase, payload);
  for (auto _ : state) {
    as.RemoveWrite(kBase, pages * kPage);
    as.Reinstate(kBase, pages * kPage);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * pages * 2));
}
BENCHMARK(BM_ProtectionChange)->Arg(1)->Arg(4)->Arg(15);

void BM_TcowFault(benchmark::State& state) {
  // Full TCOW cycle: write-protect with pending output, fault, page copy.
  Vm vm(4096, kPage);
  AddressSpace as(vm, "app");
  as.CreateRegion(kBase, kPage);
  std::vector<std::byte> payload(kPage, std::byte{2});
  (void)as.Write(kBase, payload);
  std::vector<std::byte> tiny(8, std::byte{3});
  for (auto _ : state) {
    IoReference ref;
    (void)ReferenceRange(as, kBase, kPage, IoDirection::kOutput, &ref);
    as.RemoveWrite(kBase, kPage);
    (void)as.Write(kBase, tiny);  // TCOW copy fault.
    Unreference(vm, ref);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TcowFault);

void BM_RegionCreateRemove(benchmark::State& state) {
  Vm vm(4096, kPage);
  AddressSpace as(vm, "app");
  for (auto _ : state) {
    const Vaddr addr = as.FindFreeRange(4 * kPage);
    as.CreateRegion(addr, 4 * kPage);
    as.RemoveRegion(addr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegionCreateRemove);

void BM_RegionCacheReuse(benchmark::State& state) {
  // Region hiding's fast path: enqueue + dequeue a cached region.
  Vm vm(4096, kPage);
  AddressSpace as(vm, "app");
  Region* region = as.CreateRegion(kBase, 4 * kPage, RegionState::kMovedIn);
  for (auto _ : state) {
    region->state = RegionState::kMovedOut;
    as.EnqueueCachedRegion(kBase);
    Region* got = as.DequeueCachedRegion(4 * kPage, RegionState::kMovedOut);
    benchmark::DoNotOptimize(got);
    got->state = RegionState::kMovedIn;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegionCacheReuse);

}  // namespace
}  // namespace genie

BENCHMARK_MAIN();
