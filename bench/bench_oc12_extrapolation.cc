// Reproduces the paper's Section 8 OC-12 extrapolation: predicted end-to-end
// throughput for single 60 KB datagrams with early demultiplexing on the
// Micron P166 at 622 Mbps — close to 140 Mbps copy, 404 emulated copy,
// 463 emulated share, 380 move; emulated copy almost 3x copy.
//
// We both evaluate the analytic scaling model and *run the simulator* at the
// OC-12 rate, which the paper could not do.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/latency_model.h"

namespace genie {
namespace {

void Run() {
  std::printf("=== Section 8: OC-12 (622 Mbps) extrapolation, 60 KB datagrams ===\n\n");
  const MachineProfile oc3 = MachineProfile::MicronP166();
  const MachineProfile oc12 = oc3.WithEffectiveLinkMbps(4 * oc3.effective_link_mbps());
  const CostModel cost(oc12);
  const GenieOptions opts;
  const std::uint64_t b = 60 * 1024;

  ExperimentConfig config;
  config.profile = oc12;
  config.repetitions = 3;
  const std::vector<std::uint64_t> lengths = {b};

  TextTable table;
  table.AddHeader(
      {"semantics", "model (Mbps)", "simulated (Mbps)", "paper prediction (Mbps)"});
  const std::map<Semantics, const char*> paper = {{Semantics::kCopy, "~140"},
                                                  {Semantics::kEmulatedCopy, "~404"},
                                                  {Semantics::kEmulatedShare, "~463"},
                                                  {Semantics::kMove, "~380"}};
  for (const Semantics sem : kAllSemantics) {
    const double model_us =
        EstimateLatencyUs(cost, opts, sem, InputBuffering::kEarlyDemux, 0, b);
    Experiment experiment(config);
    const double sim_mbps = experiment.Run(sem, lengths).samples[0].throughput_mbps;
    const auto it = paper.find(sem);
    table.AddRow({std::string(SemanticsName(sem)),
                  FormatDouble(static_cast<double>(b) * 8 / model_us, 0),
                  FormatDouble(sim_mbps, 0), it != paper.end() ? it->second : ""});
  }
  std::printf("%s", table.ToString().c_str());

  const double copy_us =
      EstimateLatencyUs(cost, opts, Semantics::kCopy, InputBuffering::kEarlyDemux, 0, b);
  const double ecopy_us =
      EstimateLatencyUs(cost, opts, Semantics::kEmulatedCopy, InputBuffering::kEarlyDemux, 0, b);
  std::printf("\nEmulated copy : copy speedup at OC-12 = %.2fx (paper: almost 3x).\n",
              copy_us / ecopy_us);
  std::printf("At OC-3 the same ratio is %.2fx: faster networks widen the copy gap.\n",
              EstimateLatencyUs(CostModel(oc3), opts, Semantics::kCopy,
                                InputBuffering::kEarlyDemux, 0, b) /
                  EstimateLatencyUs(CostModel(oc3), opts, Semantics::kEmulatedCopy,
                                    InputBuffering::kEarlyDemux, 0, b));
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
