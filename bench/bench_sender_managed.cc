// Extension bench: sender-managed buffer placement (paper Section 6.2.1,
// Hamlyn [5] / decoupled data transfer [20]) vs receiver-preposted input.
// With a persistent named buffer the receive path shrinks to interrupt +
// notification — the data-path analogue of the control-path OS-bypass
// optimizations discussed in Section 9.
#include <cstdio>

#include "bench/bench_util.h"

namespace genie {
namespace {

constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;

Task<void> ReceiveInto(Endpoint& ep, std::uint32_t tag, InputResult* out) {
  *out = co_await ep.ReceiveNamed(tag);
}

double NamedLatency(std::uint64_t len) {
  Engine engine;
  Node tx_node(engine, "tx", Node::Config{});
  Node rx_node(engine, "rx", Node::Config{});
  Network net(engine, tx_node, rx_node);
  Endpoint tx(tx_node, 1);
  Endpoint rx(rx_node, 1);
  AddressSpace& tx_app = tx_node.CreateProcess("app");
  AddressSpace& rx_app = rx_node.CreateProcess("app");
  tx_app.CreateRegion(kSrc, 64 * 1024 + 4096);
  rx_app.CreateRegion(kDst, 64 * 1024 + 4096);
  const std::uint32_t tag = rx.RegisterNamedBuffer(rx_app, kDst, len);
  std::vector<std::byte> payload(len, std::byte{0x5A});
  (void)tx_app.Write(kSrc, payload);

  double latency = 0;
  for (int rep = 0; rep < 3; ++rep) {  // Warm + measured.
    InputResult r;
    std::move(ReceiveInto(rx, tag, &r)).Detach();
    const SimTime t0 = engine.now();
    std::move(tx.OutputTagged(tx_app, kSrc, len, Semantics::kEmulatedShare, tag)).Detach();
    engine.Run();
    latency = SimTimeToMicros(r.completed_at - t0);
  }
  return latency;
}

double PostedLatency(std::uint64_t len, Semantics sem) {
  ExperimentConfig config;
  config.repetitions = 3;
  Experiment experiment(config);
  const std::vector<std::uint64_t> lengths = {len};
  return experiment.Run(sem, lengths).samples[0].latency_us;
}

void Run() {
  std::printf("=== Sender-managed placement vs receiver-preposted input ===\n");
  std::printf("Named persistent buffers (Hamlyn-style tags in the packet header)\n");
  std::printf("against the taxonomy's cheapest preposted semantics.\n\n");
  TextTable table;
  table.AddHeader({"bytes", "sender-managed (us)", "emulated share (us)", "emulated copy (us)",
                   "copy (us)"});
  for (const std::uint64_t len : {4096ull, 16384ull, 61440ull}) {
    table.AddRow({std::to_string(len), FormatDouble(NamedLatency(len), 0),
                  FormatDouble(PostedLatency(len, Semantics::kEmulatedShare), 0),
                  FormatDouble(PostedLatency(len, Semantics::kEmulatedCopy), 0),
                  FormatDouble(PostedLatency(len, Semantics::kCopy), 0)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nSender-managed placement removes the per-datagram unreference from the\n");
  std::printf("critical path (and all buffer management from the receive side), at the\n");
  std::printf("cost of weak integrity and a pinned (non-pageable) buffer - exactly the\n");
  std::printf("trade-offs Section 9 attributes to OS-bypass architectures.\n");
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
