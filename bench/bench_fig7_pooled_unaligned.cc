// Reproduces paper Figure 7: end-to-end latency with pooled input buffering
// and unaligned application buffers.
//
// Paper: the semantics split into three clusters by number of copies —
// system-allocated (0 copies, ~121 Mbps at 60 KB), other application-
// allocated (1 copy at the receiver, ~92 Mbps), and copy (2 copies,
// 77 Mbps).
#include <cstdio>

#include "bench/bench_util.h"

namespace genie {
namespace {

void Run() {
  std::printf("=== Figure 7: latency, unaligned pooled input buffering (us) ===\n\n");
  ExperimentConfig config;
  config.buffering = InputBuffering::kPooled;
  config.dst_page_offset = 1000;  // Unaligned application receive buffers.
  const auto lengths = PageMultipleLengths();
  const auto results = RunAllSemantics(config, lengths);

  PrintLatencySeries(results, "One-way latency (us)", PickLatency);

  std::printf("\n60 KB throughput clusters (paper: copy 77; other app-allocated ~92;\n");
  std::printf("system-allocated 121 Mbps):\n");
  TextTable table;
  table.AddHeader({"semantics", "copies", "throughput (Mbps)"});
  for (const auto& [sem, run] : results) {
    const char* copies = sem == Semantics::kCopy          ? "2"
                         : IsApplicationAllocated(sem)    ? "1"
                                                          : "0";
    table.AddRow({std::string(SemanticsName(sem)), copies,
                  FormatDouble(SampleFor(run, 61440).throughput_mbps, 1)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
