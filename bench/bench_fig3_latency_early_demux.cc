// Reproduces paper Figure 3: end-to-end latency with early demultiplexing,
// page-multiple datagrams up to 60 KB, all eight semantics on the Micron
// P166 profile at OC-3.
//
// Paper's key observations to verify:
//   * copy semantics is distinctly worst; all others cluster;
//   * emulated copy reduces 60 KB latency by 37% vs copy;
//   * 60 KB equivalent throughputs: 78 copy, 121 move, 124 share/emulated
//     copy/weak move, 126 emulated move, 128 emulated weak move,
//     129 emulated share (Mbps).
#include <cstdio>

#include "bench/bench_util.h"

namespace genie {
namespace {

void Run() {
  std::printf("=== Figure 3: end-to-end latency, early demultiplexing (us) ===\n");
  std::printf("Micron P166, Credit Net ATM at OC-3, preposted receives.\n\n");
  ExperimentConfig config;
  config.buffering = InputBuffering::kEarlyDemux;
  const auto lengths = PageMultipleLengths();
  const auto results = RunAllSemantics(config, lengths);

  PrintLatencySeries(results, "One-way latency (us)", PickLatency);

  std::printf("\nEquivalent throughput for single 60 KB datagrams (paper: copy 78,\n");
  std::printf("move 121, share/emulated copy/weak move 124, emulated move 126,\n");
  std::printf("emulated weak move 128, emulated share 129 Mbps):\n");
  TextTable table;
  table.AddHeader({"semantics", "latency (us)", "throughput (Mbps)"});
  for (const auto& [sem, run] : results) {
    const LatencySample& s = SampleFor(run, 61440);
    table.AddRow({std::string(SemanticsName(sem)), FormatDouble(s.latency_us, 0),
                  FormatDouble(s.throughput_mbps, 1)});
  }
  std::printf("%s", table.ToString().c_str());

  const double copy = SampleFor(results.at(Semantics::kCopy), 61440).latency_us;
  const double ecopy = SampleFor(results.at(Semantics::kEmulatedCopy), 61440).latency_us;
  std::printf("\nEmulated copy reduces 60 KB latency by %.1f%% vs copy (paper: 37%%).\n",
              (copy - ecopy) / copy * 100.0);
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
