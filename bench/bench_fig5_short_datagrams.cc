// Reproduces paper Figure 5: end-to-end latency for short datagrams with
// early demultiplexing, showing the copy-conversion thresholds (1666 B for
// emulated copy, 280 B for emulated share) and the reverse-copyout regime.
//
// Paper's observations:
//   * move is by far the worst for short datagrams (page zero-completion);
//   * copy is lowest (~145 us) for tiny datagrams but rises fastest;
//   * emulated copy tracks copy up to about half a page, then swap +
//     reverse copyout pull it down;
//   * emulated share is lowest overall; max emulated copy vs emulated share
//     gap at half a page: 325 vs 254 us.
#include <cstdio>

#include "bench/bench_util.h"

namespace genie {
namespace {

void Run() {
  std::printf("=== Figure 5: short-datagram latency, early demultiplexing (us) ===\n");
  std::printf("Thresholds: emulated copy -> copy below 1666 B, emulated share -> copy\n");
  std::printf("below 280 B, reverse copyout above 2178 B of a partial page.\n\n");
  ExperimentConfig config;
  config.buffering = InputBuffering::kEarlyDemux;
  const auto lengths = ShortDatagramLengths();
  const auto results = RunAllSemantics(config, lengths);

  PrintLatencySeries(results, "One-way latency (us)", PickLatency);

  const double copy64 = SampleFor(results.at(Semantics::kCopy), 64).latency_us;
  const double ecopy_half = SampleFor(results.at(Semantics::kEmulatedCopy), 2048).latency_us;
  const double eshare_half = SampleFor(results.at(Semantics::kEmulatedShare), 2048).latency_us;
  const double move64 = SampleFor(results.at(Semantics::kMove), 64).latency_us;
  const double emove64 = SampleFor(results.at(Semantics::kEmulatedMove), 64).latency_us;
  std::printf("\nKey points vs paper:\n");
  std::printf("  copy @64 B:                  %6.0f us  (paper ~145)\n", copy64);
  std::printf("  emulated copy  @half page:   %6.0f us  (paper 325)\n", ecopy_half);
  std::printf("  emulated share @half page:   %6.0f us  (paper 254)\n", eshare_half);
  std::printf("  move @64 B:                  %6.0f us  (paper: by far the highest)\n", move64);
  std::printf("  emulated move @64 B:         %6.0f us  (region hiding avoids zeroing)\n",
              emove64);
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
