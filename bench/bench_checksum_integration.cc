// Extension bench (paper Section 9 / reference [4]): checksummed
// communication. Compares, per semantics, the end-to-end latency without
// checksums, with a separate read-only checksum pass, and with the checksum
// integrated into the data copies where possible.
//
// The paper's claim: "if a system buffer is involved, at least for long
// data, it costs less to pass the data by VM manipulation and then read it
// for checksumming than to read and write (one-step checksum and copy) the
// data" — i.e. emulated copy + separate pass beats copy + integration.
#include <cstdio>

#include "bench/bench_util.h"

namespace genie {
namespace {

double Latency(Semantics sem, ChecksumMode mode, std::uint64_t bytes) {
  ExperimentConfig config;
  config.options.checksum_mode = mode;
  config.repetitions = 3;
  Experiment experiment(config);
  const std::vector<std::uint64_t> lengths = {bytes};
  return experiment.Run(sem, lengths).samples[0].latency_us;
}

void Run() {
  std::printf("=== Checksummed communication (Section 9), 60 KB, early demux ===\n\n");
  const std::uint64_t b = 60 * 1024;
  TextTable table;
  table.AddHeader({"semantics", "no checksum (us)", "separate pass (us)", "integrated (us)"});
  for (const Semantics sem :
       {Semantics::kCopy, Semantics::kEmulatedCopy, Semantics::kEmulatedShare,
        Semantics::kEmulatedMove}) {
    table.AddRow({std::string(SemanticsName(sem)),
                  FormatDouble(Latency(sem, ChecksumMode::kNone, b), 0),
                  FormatDouble(Latency(sem, ChecksumMode::kSeparatePass, b), 0),
                  FormatDouble(Latency(sem, ChecksumMode::kIntegrated, b), 0)});
  }
  std::printf("%s", table.ToString().c_str());

  const double vm_pass = Latency(Semantics::kEmulatedCopy, ChecksumMode::kSeparatePass, b);
  const double one_step = Latency(Semantics::kCopy, ChecksumMode::kIntegrated, b);
  std::printf("\nVM data passing + separate checksum read: %5.0f us\n", vm_pass);
  std::printf("One-step checksum-and-copy (copy sem.):    %5.0f us\n", one_step);
  std::printf("-> passing by VM manipulation and then reading the data wins by %.0f%%\n",
              (one_step - vm_pass) / one_step * 100.0);
  std::printf("   and, unlike integration, keeps copy semantics strong on checksum\n");
  std::printf("   failure (the Section 9 semantic implication).\n");
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
