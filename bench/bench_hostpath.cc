// Wall-clock throughput of the host data plane: the per-byte work (copies,
// checksums) and per-page work (PTE lookups, scatter/gather traversal) that
// every semantics pays on the host CPU, measured in MB/s of real time.
//
// The headline row is `copy_semantics_64k`: the host-side data work of one
// 64 KiB transfer under copy semantics (sender copyin + transport checksum,
// receiver checksum verify + copyout dispose), exercised through the same
// library calls the endpoint makes. BENCH_hostpath.json records this bench's
// before/after trajectory.
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "src/genie/endpoint.h"
#include "src/genie/host_path.h"
#include "src/harness/workload.h"
#include "src/genie/node.h"
#include "src/genie/sys_buffer.h"
#include "src/mem/fault_plan.h"
#include "src/net/checksum.h"
#include "src/net/iovec_io.h"
#include "src/mem/phys_memory.h"
#include "src/obs/critical_path.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_env.h"
#include "src/util/table.h"
#include "src/vm/address_space.h"
#include "src/vm/invariants.h"
#include "src/vm/vm.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kTxBase = 0x10000000;
constexpr Vaddr kRxBase = 0x20000000;
constexpr std::uint64_t kTransfer = 64 * 1024;

// Reference scalar (byte-pair) Internet checksum, kept here verbatim so the
// optimized library implementation can be checked bit-identical against it.
std::uint16_t ScalarChecksum(std::span<const std::byte> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((static_cast<std::uint8_t>(data[i]) << 8) |
                                      static_cast<std::uint8_t>(data[i + 1]));
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[i]) << 8);
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

struct Row {
  std::string name;
  double mb_per_s = 0;
  std::uint64_t iterations = 0;
};

// Times `body` (which processes `bytes` per call) until enough wall time has
// accumulated for a stable rate; returns MB/s.
template <typename Fn>
Row Measure(const std::string& name, std::uint64_t bytes, Fn&& body) {
  using Clock = std::chrono::steady_clock;
  // Warm up: populate page tables, caches, allocator state.
  for (int i = 0; i < 3; ++i) {
    body();
  }
  std::uint64_t iters = 0;
  const Clock::time_point start = Clock::now();
  Clock::time_point now = start;
  do {
    body();
    ++iters;
    if ((iters & 7) == 0) {
      now = Clock::now();
    }
  } while (now - start < std::chrono::milliseconds(300) || iters < 16);
  now = Clock::now();
  const double seconds = std::chrono::duration<double>(now - start).count();
  Row row;
  row.name = name;
  row.iterations = iters;
  row.mb_per_s = static_cast<double>(bytes) * static_cast<double>(iters) / seconds / 1e6;
  return row;
}

std::vector<std::byte> Payload(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131 + 17) & 0xFF);
  }
  return v;
}

volatile std::uint16_t g_sink;

// One parallel fused run: K threads x fixed per-thread work through the
// allocation-point + fused-copy+checksum stack (see RunParallelFused).
// Aggregate MB/s; per-thread work is constant, so ideal scaling doubles the
// rate with the thread count (on this container's single CPU the rate stays
// flat instead — the run still exercises real contention).
Row MeasureParallelFused(std::size_t threads) {
  ParallelFusedConfig cfg;
  cfg.threads = threads;
  cfg.ops_per_thread = 1500;
  cfg.bytes_per_op = kTransfer;
  cfg.arena_frames = 64;
  cfg.pool_pages = 8 * threads;
  cfg.seed = 0xbe9c;
  PhysicalMemory pm(cfg.threads * cfg.arena_frames * 3 + cfg.pool_pages + 16, kPage);
  // Warm-up pass populates the per-thread arenas' backing pages.
  ParallelFusedConfig warm = cfg;
  warm.ops_per_thread = 50;
  (void)RunParallelFused(pm, warm);
  const ParallelFusedResult r = RunParallelFused(pm, cfg);
  Row row;
  row.name = "hostpath_mt_" + std::to_string(threads) + "t";
  row.iterations = cfg.threads * cfg.ops_per_thread;
  row.mb_per_s = static_cast<double>(r.total_bytes) / r.seconds / 1e6;
  return row;
}

// `bench_hostpath --threads N`: just the multithreaded fused mode, for
// hand-driven scaling runs on real multicore hosts (outside ctest).
int RunThreadsOnly(std::size_t threads) {
  std::printf("checksum kernel: %s\n", ChecksumIsaName());
  const Row row = MeasureParallelFused(threads);
  std::printf("%-32s %14s %10s\n", "path", "MB/s", "iters");
  std::printf("%-32s %14.1f %10llu\n", row.name.c_str(), row.mb_per_s,
              static_cast<unsigned long long>(row.iterations));
  std::printf("\nJSON: {\"%s\": %.1f}\n", row.name.c_str(), row.mb_per_s);
  return 0;
}

}  // namespace

// `json_only` (bench_hostpath --json) suppresses the human-readable output
// and prints one machine-readable JSON object of {row: MB/s} — the input
// scripts/bench_record.sh normalizes into BENCH_hostpath.json.
int Run(bool json_only) {
  std::vector<Row> rows;
  const std::vector<std::byte> payload = Payload(kTransfer);

  // --- Pure per-byte primitives over 64 KiB linear buffers ---
  {
    std::vector<std::byte> dst(kTransfer);
    rows.push_back(Measure("memcpy_64k", kTransfer, [&] {
      std::memcpy(dst.data(), payload.data(), payload.size());
      g_sink = static_cast<std::uint16_t>(dst[0]);
    }));
    rows.push_back(Measure("checksum_scalar_64k", kTransfer,
                           [&] { g_sink = ScalarChecksum(payload); }));
    rows.push_back(
        Measure("checksum_64k", kTransfer, [&] { g_sink = ChecksumOf(payload); }));
    rows.push_back(Measure("copy_then_checksum_64k", kTransfer, [&] {
      std::memcpy(dst.data(), payload.data(), payload.size());
      g_sink = ChecksumOf(std::span<const std::byte>(dst));
    }));
    rows.push_back(Measure("copy_and_checksum_64k", kTransfer,
                           [&] { g_sink = CopyAndChecksum(payload, dst); }));
  }

  // --- MMU-checked application access (PTE lookup path) ---
  {
    Vm vm(256, kPage);
    AddressSpace as(vm, "app");
    as.CreateRegion(kTxBase, kTransfer);
    std::vector<std::byte> buf(kTransfer);
    (void)as.Write(kTxBase, payload);
    rows.push_back(Measure("aspace_read_64k", kTransfer, [&] {
      (void)as.Read(kTxBase, buf);
      g_sink = static_cast<std::uint16_t>(buf[0]);
    }));
    rows.push_back(
        Measure("aspace_write_64k", kTransfer, [&] { (void)as.Write(kTxBase, payload); }));
  }

  // --- The copy-semantics transfer path (sender prepare + receiver dispose),
  //     with the transport checksum both computed and verified (Section 9). ---
  {
    Vm vm(512, kPage);
    // Worst case for the injection hooks: a fault plan is attached (so every
    // TryAllocate/TryAllocateRun on the hot path consults it) but holds no
    // rules. The acceptance bar is copy_semantics_64k within 1% of the
    // hook-free build.
    FaultPlan idle_plan(0);
    vm.pm().set_fault_plan(&idle_plan);
    AddressSpace tx(vm, "sender-app");
    AddressSpace rx(vm, "receiver-app");
    tx.CreateRegion(kTxBase, kTransfer);
    rx.CreateRegion(kRxBase, kTransfer);
    (void)tx.Write(kTxBase, payload);
    (void)rx.Write(kRxBase, payload);  // Fault the receiver buffer in.
    rows.push_back(Measure("copy_semantics_64k", kTransfer, [&] {
      // Sender: allocate a system buffer, single-pass copyin with the
      // transport checksum folded in (as the endpoint's PrepareOutput does).
      SysBuffer sysbuf = AllocateSysBuffer(vm.pm(), 0, kTransfer);
      InternetChecksum sum;
      (void)CopyinToIoVec(tx, kTxBase, kTransfer, sysbuf.iov, &sum);
      const std::uint16_t header = sum.value();
      // Receiver: verify the checksum, then copyout dispose into the
      // application buffer (the wire hop moves no host bytes).
      const std::uint16_t verify = ChecksumOfIoVec(vm.pm(), sysbuf.iov, kTransfer);
      g_sink = static_cast<std::uint16_t>(header ^ verify);
      (void)DisposeCopyOutIntoApp(rx, kRxBase, kTransfer, sysbuf.iov);
      FreeSysBuffer(vm.pm(), sysbuf);
    }));
    rows.push_back(Measure("copy_semantics_nochecksum_64k", kTransfer, [&] {
      SysBuffer sysbuf = AllocateSysBuffer(vm.pm(), 0, kTransfer);
      (void)CopyinToIoVec(tx, kTxBase, kTransfer, sysbuf.iov, nullptr);
      (void)DisposeCopyOutIntoApp(rx, kRxBase, kTransfer, sysbuf.iov);
      FreeSysBuffer(vm.pm(), sysbuf);
    }));
    const AddressSpace::Counters& c = tx.counters();
    if (!json_only) {
      std::printf("sender counters: tlb_hits=%llu tlb_misses=%llu tlb_inval=%llu "
                  "coalesced_runs=%llu coalesced_pages=%llu\n",
                  static_cast<unsigned long long>(c.tlb_hits),
                  static_cast<unsigned long long>(c.tlb_misses),
                  static_cast<unsigned long long>(c.tlb_invalidations),
                  static_cast<unsigned long long>(c.coalesced_runs),
                  static_cast<unsigned long long>(c.coalesced_pages));
    }
    if (idle_plan.total_injected() != 0) {
      std::fprintf(stderr, "idle fault plan injected a fault\n");
      return 1;
    }
    vm.pm().set_fault_plan(nullptr);
  }

  // --- End-to-end simulated transfers, lossless vs 1% frame loss with ARQ
  //     (the reliable-delivery overhead bench). Wall time is the host work
  //     of simulating one copy-semantics datagram end to end; the lossy row
  //     adds the retransmit machinery's bookkeeping plus ~1% extra frames. ---
  {
    Engine engine;
    Node sender(engine, "tx", Node::Config{});
    Node receiver(engine, "rx", Node::Config{});
    Network network(engine, sender, receiver);
    Endpoint tx_ep(sender, 1);
    Endpoint rx_ep(receiver, 1);
    AddressSpace& tx_app = sender.CreateProcess("app");
    AddressSpace& rx_app = receiver.CreateProcess("app");
    tx_app.CreateRegion(kTxBase, kTransfer);
    rx_app.CreateRegion(kRxBase, kTransfer);
    (void)tx_app.Write(kTxBase, payload);
    const std::uint64_t wire_len = 60 * 1024;  // one AAL5 datagram
    auto one_transfer = [&] {
      auto input = [](Endpoint& ep, AddressSpace& app, std::uint64_t n) -> Task<void> {
        (void)co_await ep.Input(app, kRxBase, n, Semantics::kCopy);
      };
      std::move(input(rx_ep, rx_app, wire_len)).Detach();
      std::move(tx_ep.Output(tx_app, kTxBase, wire_len, Semantics::kCopy)).Detach();
      engine.Run();
    };
    ReliableOptions ropts;
    ropts.arq = true;
    sender.EnableReliableDelivery(ropts);
    receiver.EnableReliableDelivery(ropts);
    rows.push_back(Measure("e2e_copy_arq_lossless_60k", wire_len, one_transfer));

    FaultPlan loss_plan(0xbadb10cc);
    loss_plan.set_clock([&engine] { return engine.now(); });
    FaultRule drop;
    drop.site = FaultSite::kLinkDrop;
    drop.probability = 0.01;
    loss_plan.AddRule(drop);
    sender.adapter().set_fault_plan(&loss_plan);
    rows.push_back(Measure("e2e_copy_arq_lossy1pct_60k", wire_len, one_transfer));
    sender.adapter().set_fault_plan(nullptr);
    if (tx_ep.stats().failed_outputs != 0 || rx_ep.stats().failed_inputs != 0) {
      std::fprintf(stderr, "lossy ARQ bench failed a transfer\n");
      return 1;
    }
    if (sender.reliable().stats().retransmits == 0) {
      std::fprintf(stderr, "lossy ARQ bench never retransmitted (loss not injected?)\n");
      return 1;
    }
  }

  // --- Selective-repeat window sweep (simulated throughput, deterministic).
  //     A stream of 64 copy-semantics 60 KiB datagrams is driven through the
  //     Endpoint's submit/completion rings with exactly `window` transfers in
  //     flight, matching the ARQ window configured on both peers. At w=1 the
  //     stream is stop-and-wait end to end: each datagram pays its sender
  //     prepare, wire time, and ack turnaround serially. Wider windows let
  //     the ring drain prepare the next datagrams while earlier frames are
  //     on the wire and their SACKs are in flight, collapsing the per-datagram
  //     ack_wait gap. These rows report SIMULATED wire throughput
  //     (bytes / simulated elapsed time) -- unlike the wall-clock rows above,
  //     they are deterministic and byte-identical across runs. The lossy rows
  //     inject schedule-pinned kLinkDrop faults (5 drops across ~520 frames,
  //     ~1%), so every window size recovers the same number of losses. ---
  for (const std::uint32_t window : {1u, 4u, 16u, 64u}) {
    constexpr int kStream = 64;   // datagrams per repetition
    constexpr int kLossyReps = 8;
    Engine engine;
    Node sender(engine, "tx", Node::Config{});
    Node receiver(engine, "rx", Node::Config{});
    Network network(engine, sender, receiver);
    Endpoint tx_ep(sender, 1);
    Endpoint rx_ep(receiver, 1);
    AddressSpace& tx_app = sender.CreateProcess("app");
    AddressSpace& rx_app = receiver.CreateProcess("app");
    const std::uint64_t wire_len = 60 * 1024;  // one AAL5 datagram per transfer
    constexpr std::uint64_t kRegionStride = 16 * kPage;
    tx_app.CreateRegion(kTxBase, wire_len);
    (void)tx_app.Write(kTxBase, std::span<const std::byte>(payload).subspan(0, wire_len));
    for (int i = 0; i < kStream; ++i) {
      rx_app.CreateRegion(kRxBase + i * kRegionStride, wire_len);
    }
    ReliableOptions ropts;
    ropts.arq = true;
    ropts.window = window;
    sender.EnableReliableDelivery(ropts);
    receiver.EnableReliableDelivery(ropts);

    // Sender: submit/drain/harvest the stream through the rings, `window`
    // datagrams per batch. Receiver: one posted input per datagram.
    auto ring_driver = [](Endpoint& ep, AddressSpace& app, std::uint64_t len,
                          std::uint32_t w) -> Task<void> {
      int sent = 0;
      std::vector<Endpoint::Completion> done;
      while (sent < kStream) {
        const int chunk = std::min<int>(static_cast<int>(w), kStream - sent);
        std::vector<Endpoint::SubmitEntry> batch(static_cast<std::size_t>(chunk));
        for (int i = 0; i < chunk; ++i) {
          batch[static_cast<std::size_t>(i)].op = Endpoint::SubmitEntry::Op::kOutput;
          batch[static_cast<std::size_t>(i)].app = &app;
          batch[static_cast<std::size_t>(i)].va = kTxBase;
          batch[static_cast<std::size_t>(i)].len = len;
          batch[static_cast<std::size_t>(i)].sem = Semantics::kCopy;
          batch[static_cast<std::size_t>(i)].user_data = static_cast<std::uint64_t>(sent + i);
        }
        if (ep.SubmitBatch(batch) != static_cast<std::size_t>(chunk)) {
          std::fprintf(stderr, "window sweep: submit ring refused a batch\n");
          std::abort();
        }
        (void)co_await ep.Drain();
        (void)co_await ep.WaitCompletions(static_cast<std::size_t>(chunk));
        done.clear();
        (void)ep.Harvest(&done);
        for (const Endpoint::Completion& c : done) {
          if (c.status != IoStatus::kOk) {
            std::fprintf(stderr, "window sweep: completion %llu failed\n",
                         static_cast<unsigned long long>(c.user_data));
            std::abort();
          }
        }
        sent += chunk;
      }
    };
    auto input = [](Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t n) -> Task<void> {
      (void)co_await ep.Input(app, va, n, Semantics::kCopy);
    };
    auto stream_once = [&] {
      for (int i = 0; i < kStream; ++i) {
        std::move(input(rx_ep, rx_app, kRxBase + i * kRegionStride, wire_len)).Detach();
      }
      std::move(ring_driver(tx_ep, tx_app, wire_len, window)).Detach();
      engine.Run();
    };

    Row lossless;
    lossless.name = "e2e_copy_arq_w" + std::to_string(window) + "_lossless_60k";
    lossless.iterations = 1;
    {
      // Trace the lossless stream so the critical-path analyzer can show
      // where each window spends its per-datagram makespan (the ack_wait
      // collapse quoted in BENCH_hostpath.json). Tracing records spans but
      // does not perturb the simulated schedule.
      TraceLog trace;
      sender.set_trace(&trace);
      receiver.set_trace(&trace);
      const SimTime t0 = engine.now();
      stream_once();
      const double sim_s = SimTimeToMicros(engine.now() - t0) / 1e6;
      lossless.mb_per_s =
          static_cast<double>(kStream) * static_cast<double>(wire_len) / sim_s / 1e6;
      sender.set_trace(nullptr);
      receiver.set_trace(nullptr);
      const std::vector<FlowBreakdown> cp = AnalyzeTrace(trace);
      std::array<double, kStageCount> st{};
      for (const FlowBreakdown& f : cp) {
        for (std::size_t i = 0; i < kStageCount; ++i) {
          st[i] += SimTimeToMicros(f.stage_ns[i]);
        }
      }
      const double n = static_cast<double>(cp.size());
      // Per-datagram slot: the stream's simulated time divided across its 64
      // datagrams. The per-flow stage means (wire, prepare, dispose) are
      // constant across windows -- the real work per datagram never changes.
      // What the window changes is how much of that work the stream
      // serializes: slot - wire is the off-wire gap each datagram adds to
      // the stream's critical path (sender prepare + the wire-end-to-ack
      // wait; the receiver-side dispose span shadows the ~100 us ack_wait
      // span in the per-flow partition, so the gap is quoted at stream
      // level).
      const double slot_us = sim_s * 1e6 / static_cast<double>(kStream);
      if (!json_only) {
        std::printf(
            "critical_path w=%-2u (64-datagram stream, us): slot=%.1f wire=%.1f "
            "prepare=%.1f dispose=%.1f offwire_gap=%.1f\n",
            window, slot_us, st[static_cast<std::size_t>(Stage::kWire)] / n,
            st[static_cast<std::size_t>(Stage::kPrepare)] / n,
            st[static_cast<std::size_t>(Stage::kDispose)] / n,
            slot_us - st[static_cast<std::size_t>(Stage::kWire)] / n);
      }
    }
    rows.push_back(lossless);

    // Schedule-pinned loss: the Nth-frame rules fire on the same transmit
    // ordinals for every window size, so each sweep point recovers exactly
    // five drops -- the comparison isolates how the window amortizes
    // recovery, not how lucky the RNG was.
    FaultPlan loss_plan(0xbadb10cc ^ window);
    loss_plan.set_clock([&engine] { return engine.now(); });
    for (const std::uint64_t nth : {60ull, 160ull, 260ull, 360ull, 460ull}) {
      FaultRule drop;
      drop.site = FaultSite::kLinkDrop;
      drop.nth = nth;
      loss_plan.AddRule(drop);
    }
    sender.adapter().set_fault_plan(&loss_plan);
    Row lossy;
    lossy.name = "e2e_copy_arq_w" + std::to_string(window) + "_lossy1pct_60k";
    lossy.iterations = kLossyReps;
    {
      const SimTime t0 = engine.now();
      for (int rep = 0; rep < kLossyReps; ++rep) {
        stream_once();
      }
      const double sim_s = SimTimeToMicros(engine.now() - t0) / 1e6;
      lossy.mb_per_s = static_cast<double>(kLossyReps) * static_cast<double>(kStream) *
                       static_cast<double>(wire_len) / sim_s / 1e6;
    }
    rows.push_back(lossy);
    sender.adapter().set_fault_plan(nullptr);

    if (tx_ep.stats().failed_outputs != 0 || rx_ep.stats().failed_inputs != 0) {
      std::fprintf(stderr, "window sweep w=%u failed a transfer\n", window);
      return 1;
    }
    if (sender.reliable().stats().giveups != 0 || receiver.reliable().stats().giveups != 0) {
      std::fprintf(stderr, "window sweep w=%u gave a transfer up\n", window);
      return 1;
    }
    if (loss_plan.total_injected() != 5 || sender.reliable().stats().retransmits < 5) {
      std::fprintf(stderr, "window sweep w=%u: expected 5 pinned drops, injected %llu\n",
                   window, static_cast<unsigned long long>(loss_plan.total_injected()));
      return 1;
    }
    const Endpoint::Stats& ring_stats = tx_ep.stats();
    if (ring_stats.ring_submits != static_cast<std::uint64_t>(kStream) * (1 + kLossyReps) ||
        ring_stats.ring_completions != ring_stats.ring_submits) {
      std::fprintf(stderr, "window sweep w=%u: ring accounting mismatch\n", window);
      return 1;
    }
  }

  // --- Crash-and-heal recovery row (simulated, deterministic). The receiver
  //     crash-stops mid-datagram and reboots 500 us later; the sender's
  //     timeout retransmit hits the epoch-2 incarnation and is fenced (epoch
  //     bump + channel abort with kPeerCrashed + resync). The row reports the
  //     post-heal simulated throughput of a fresh 64-datagram w=4 stream
  //     against the rebooted peer. Acceptance: recovery leaves no residue --
  //     the post-heal rate is within 10% of the w=4 lossless row above. ---
  {
    constexpr int kStream = 64;
    constexpr std::uint32_t window = 4;
    Engine engine;
    Node sender(engine, "tx", Node::Config{});
    Node receiver(engine, "rx", Node::Config{});
    Network network(engine, sender, receiver);
    Endpoint tx_ep(sender, 1);
    Endpoint rx_ep(receiver, 1);
    AddressSpace& tx_app = sender.CreateProcess("app");
    AddressSpace& rx_app = receiver.CreateProcess("app");
    const std::uint64_t wire_len = 60 * 1024;  // one AAL5 datagram per transfer
    constexpr std::uint64_t kRegionStride = 16 * kPage;
    tx_app.CreateRegion(kTxBase, wire_len);
    (void)tx_app.Write(kTxBase, std::span<const std::byte>(payload).subspan(0, wire_len));
    for (int i = 0; i < kStream; ++i) {
      rx_app.CreateRegion(kRxBase + i * kRegionStride, wire_len);
    }
    ReliableOptions ropts;
    ropts.arq = true;
    ropts.window = window;
    sender.EnableReliableDelivery(ropts);
    receiver.EnableReliableDelivery(ropts);

    // The sacrificed probe datagram: crash lands mid-wire (60 KiB takes
    // ~3.7 ms), the probe's posted input is discarded by the crash, and the
    // sender's retransmit performs epoch discovery against the reboot.
    auto probe_in = [](Endpoint& ep, AddressSpace& app, std::uint64_t n) -> Task<void> {
      (void)co_await ep.Input(app, kRxBase, n, Semantics::kCopy);
    };
    engine.ScheduleAt(2 * kMillisecond, [&receiver] { receiver.Crash(); });
    engine.ScheduleAt(2 * kMillisecond + 500 * kMicrosecond,
                      [&receiver] { receiver.Restart(); });
    std::move(probe_in(rx_ep, rx_app, wire_len)).Detach();
    std::move(tx_ep.Output(tx_app, kTxBase, wire_len, Semantics::kCopy)).Detach();
    engine.Run();
    if (receiver.crashes() != 1 || receiver.crashed() ||
        sender.reliable().stats().epoch_bumps != 1 ||
        sender.reliable().stats().peer_crash_aborts == 0 ||
        sender.reliable().stats().resyncs == 0) {
      std::fprintf(stderr, "crash-heal bench: recovery path not exercised\n");
      return 1;
    }

    auto ring_driver = [](Endpoint& ep, AddressSpace& app, std::uint64_t len,
                          std::uint32_t w) -> Task<void> {
      int sent = 0;
      std::vector<Endpoint::Completion> done;
      while (sent < kStream) {
        const int chunk = std::min<int>(static_cast<int>(w), kStream - sent);
        std::vector<Endpoint::SubmitEntry> batch(static_cast<std::size_t>(chunk));
        for (int i = 0; i < chunk; ++i) {
          batch[static_cast<std::size_t>(i)].op = Endpoint::SubmitEntry::Op::kOutput;
          batch[static_cast<std::size_t>(i)].app = &app;
          batch[static_cast<std::size_t>(i)].va = kTxBase;
          batch[static_cast<std::size_t>(i)].len = len;
          batch[static_cast<std::size_t>(i)].sem = Semantics::kCopy;
          batch[static_cast<std::size_t>(i)].user_data = static_cast<std::uint64_t>(sent + i);
        }
        if (ep.SubmitBatch(batch) != static_cast<std::size_t>(chunk)) {
          std::fprintf(stderr, "crash-heal bench: submit ring refused a batch\n");
          std::abort();
        }
        (void)co_await ep.Drain();
        (void)co_await ep.WaitCompletions(static_cast<std::size_t>(chunk));
        done.clear();
        (void)ep.Harvest(&done);
        for (const Endpoint::Completion& c : done) {
          if (c.status != IoStatus::kOk) {
            std::fprintf(stderr, "crash-heal bench: post-heal completion %llu failed\n",
                         static_cast<unsigned long long>(c.user_data));
            std::abort();
          }
        }
        sent += chunk;
      }
    };
    auto input = [](Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t n) -> Task<void> {
      (void)co_await ep.Input(app, va, n, Semantics::kCopy);
    };
    Row heal;
    heal.name = "e2e_arq_crash_heal_60k";
    heal.iterations = 1;
    const SimTime t0 = engine.now();
    for (int i = 0; i < kStream; ++i) {
      std::move(input(rx_ep, rx_app, kRxBase + i * kRegionStride, wire_len)).Detach();
    }
    std::move(ring_driver(tx_ep, tx_app, wire_len, window)).Detach();
    engine.Run();
    const double sim_s = SimTimeToMicros(engine.now() - t0) / 1e6;
    heal.mb_per_s =
        static_cast<double>(kStream) * static_cast<double>(wire_len) / sim_s / 1e6;
    rows.push_back(heal);

    // Exactly the probe failed; the whole measured stream delivered against
    // the epoch-2 peer with no give-ups and no lingering resync.
    if (tx_ep.stats().failed_outputs != 1 || rx_ep.stats().failed_inputs != 1 ||
        sender.reliable().stats().giveups != 0 ||
        receiver.reliable().stats().giveups != 0) {
      std::fprintf(stderr, "crash-heal bench: post-heal stream was not exactly-once\n");
      return 1;
    }
    double lossless_rate = 0;
    for (const Row& r : rows) {
      if (r.name == "e2e_copy_arq_w4_lossless_60k") {
        lossless_rate = r.mb_per_s;
      }
    }
    if (lossless_rate <= 0 ||
        std::fabs(heal.mb_per_s - lossless_rate) > 0.10 * lossless_rate) {
      std::fprintf(stderr,
                   "crash-heal bench: post-heal %.1f MB/s vs lossless %.1f MB/s "
                   "(bar: within 10%%)\n",
                   heal.mb_per_s, lossless_rate);
      return 1;
    }
  }

  // --- Multi-tenant switched fabric (simulated throughput, deterministic).
  //     1000 concurrent channels across 8 star-attached nodes: 900 bulk
  //     closed-loop tenants plus 100 small-transfer interactive tenants, all
  //     live at t=0. The whole schedule derives from one seed; the workload
  //     is run twice and the event digests must match bit-for-bit. The
  //     per-class p50/p99 roll-up shows what contention does to the
  //     interactive tail while bulk saturates the per-port links. ---
  {
    auto fabric_config = [] {
      WorkloadConfig cfg;
      cfg.seed = 0xfab;
      cfg.nodes = 8;
      TenantClassConfig bulk;
      bulk.name = "bulk";
      bulk.tenants = 900;
      bulk.transfers_per_tenant = 2;
      bulk.min_bytes = 1024;
      bulk.max_bytes = 8 * 1024;
      bulk.semantics_mix = {Semantics::kEmulatedCopy, Semantics::kCopy};
      cfg.classes.push_back(bulk);
      TenantClassConfig interactive;
      interactive.name = "interactive";
      interactive.tenants = 100;
      interactive.transfers_per_tenant = 4;
      interactive.min_bytes = 256;
      interactive.max_bytes = 1024;
      cfg.classes.push_back(interactive);
      return cfg;
    };
    auto run_fabric = [&](std::uint64_t* digest, bool report) -> Row {
      Engine engine;
      Workload wl(engine, fabric_config());
      wl.Run();
      if (!wl.violations().empty()) {
        std::fprintf(stderr, "fabric workload violation: %s\n",
                     wl.violations().front().c_str());
        std::abort();
      }
      std::uint64_t bytes = 0;
      std::uint64_t completed = 0;
      for (const TenantStats& t : wl.tenant_stats()) {
        bytes += t.completed_bytes;
        completed += t.completed;
      }
      Row row;
      row.name = "fabric_1000ch_8node_sim";
      row.iterations = completed;
      row.mb_per_s = static_cast<double>(bytes) /
                     (SimTimeToMicros(engine.now()) / 1e6) / 1e6;
      *digest = engine.event_digest();
      if (report) {
        std::ostringstream table;
        wl.WriteReport(table);
        std::printf(
            "\nfabric multi-tenant roll-up (%zu channels, %zu nodes, "
            "%llu frames switched):\n%s\n",
            wl.tenant_count(), wl.node_count(),
            static_cast<unsigned long long>(wl.fabric().frames_switched()),
            table.str().c_str());
      }
      return row;
    };
    std::uint64_t digest_a = 0;
    std::uint64_t digest_b = 0;
    (void)run_fabric(&digest_a, /*report=*/false);
    rows.push_back(run_fabric(&digest_b, /*report=*/!json_only));
    if (digest_a != digest_b) {
      std::fprintf(stderr, "fabric workload replay diverged: %llx vs %llx\n",
                   static_cast<unsigned long long>(digest_a),
                   static_cast<unsigned long long>(digest_b));
      return 1;
    }

    // Incast companion row: 6 identical closed-loop tenants share one egress
    // downlink for 30 simulated ms (the fairness-test scenario); the rate is
    // what DRR lets the contended port carry.
    Engine engine;
    WorkloadConfig incast;
    incast.seed = 0xfab;
    incast.nodes = 4;
    incast.fixed_dst_node = 0;
    incast.deadline = 30 * kMillisecond;
    TenantClassConfig cls;
    cls.name = "incast";
    cls.tenants = 6;
    cls.transfers_per_tenant = 0;
    cls.min_bytes = 2048;
    cls.max_bytes = 2048;
    incast.classes.push_back(cls);
    Workload wl(engine, incast);
    wl.Run();
    if (!wl.violations().empty()) {
      std::fprintf(stderr, "incast workload violation: %s\n",
                   wl.violations().front().c_str());
      return 1;
    }
    std::uint64_t bytes = 0;
    std::uint64_t completed = 0;
    for (const TenantStats& t : wl.tenant_stats()) {
      bytes += t.completed_bytes;
      completed += t.completed;
    }
    Row row;
    row.name = "fabric_incast_drr_6ch";
    row.iterations = completed;
    row.mb_per_s =
        static_cast<double>(bytes) / (SimTimeToMicros(engine.now()) / 1e6) / 1e6;
    rows.push_back(row);
  }

  // --- Parallel real-host data plane: aggregate fused copy+checksum rate
  //     at 1/2/4/8 threads (allocation-point sysbufs + sharded-pool churn).
  //     Wall-clock, schedule-dependent; the per-thread digests underneath
  //     are pinned by hostpath_mt_stress_test. ---
  if (!json_only) {
    std::printf("checksum kernel: %s\n", ChecksumIsaName());
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    rows.push_back(MeasureParallelFused(threads));
  }

  // --- Checksum correctness spot check: library vs scalar reference ---
  for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{4096}, payload.size()}) {
    const auto sub = std::span<const std::byte>(payload).subspan(0, n);
    if (ChecksumOf(sub) != ScalarChecksum(sub)) {
      std::fprintf(stderr, "checksum mismatch vs scalar reference at n=%zu\n", n);
      return 1;
    }
  }

  // --- Fault/recovery counters: one zero-fault end-to-end transfer with the
  //     injection hooks live on both nodes. All three counters come from the
  //     real sources (FaultPlan, Endpoint::Stats, VmInvariants), proving a
  //     fault-free run leaves them untouched while the checker still runs. ---
  std::uint64_t injected_faults = 0;
  std::uint64_t recovered_transfers = 0;
  std::string metrics_json;
  {
    // GENIE_TRACE=out.json captures this end-to-end transfer's spans.
    ScopedTraceFile trace_file;
    Engine engine;
    Node sender(engine, "tx", Node::Config{});
    Node receiver(engine, "rx", Node::Config{});
    if (trace_file.enabled()) {
      sender.set_trace(trace_file.log());
      receiver.set_trace(trace_file.log());
    }
    Network network(engine, sender, receiver);
    Endpoint tx_ep(sender, 1);
    Endpoint rx_ep(receiver, 1);
    AddressSpace& tx_app = sender.CreateProcess("app");
    AddressSpace& rx_app = receiver.CreateProcess("app");
    FaultPlan plan(0);
    sender.AttachFaultPlan(&plan);
    receiver.AttachFaultPlan(&plan);
    tx_app.CreateRegion(kTxBase, kTransfer);
    rx_app.CreateRegion(kRxBase, kTransfer);
    (void)tx_app.Write(kTxBase, payload);
    const std::uint64_t wire_len = 60 * 1024;  // one AAL5 datagram
    auto input = [](Endpoint& ep, AddressSpace& app, std::uint64_t n) -> Task<void> {
      (void)co_await ep.Input(app, kRxBase, n, Semantics::kEmulatedCopy);
    };
    std::move(input(rx_ep, rx_app, wire_len)).Detach();
    std::move(tx_ep.Output(tx_app, kTxBase, wire_len, Semantics::kEmulatedCopy)).Detach();
    engine.Run();
    InvariantReport report = VmInvariants::CheckAll(sender.vm(), tx_app, true);
    const InvariantReport rx_report = VmInvariants::CheckAll(receiver.vm(), rx_app, true);
    report.violations.insert(report.violations.end(), rx_report.violations.begin(),
                             rx_report.violations.end());
    sender.AttachFaultPlan(nullptr);
    receiver.AttachFaultPlan(nullptr);
    if (!report.ok()) {
      std::fprintf(stderr, "%s", report.ToString().c_str());
      return 1;
    }
    injected_faults = plan.total_injected();
    recovered_transfers = tx_ep.stats().recovered_transfers + rx_ep.stats().recovered_transfers;
    metrics_json = receiver.metrics().Snapshot().ToJson();
    if (trace_file.enabled() && !json_only) {
      // The traced transfer also feeds the critical-path analyzer: print its
      // per-stage attribution next to the trace file it came from.
      const std::vector<FlowBreakdown> breakdown = AnalyzeTrace(*trace_file.log());
      std::ostringstream table;
      WriteBreakdownTable(table, breakdown);
      std::printf("\nCritical-path attribution (from %s):\n%s\n",
                  trace_file.path().c_str(), table.str().c_str());
    }
  }
  if (json_only) {
    std::printf("{");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::printf("%s\"%s\": %.1f", i == 0 ? "" : ", ", rows[i].name.c_str(), rows[i].mb_per_s);
    }
    std::printf("}\n");
    return 0;
  }
  TextTable fault_table;
  fault_table.AddHeader({"fault/recovery counter", "value"});
  fault_table.AddRow({"injected_faults", std::to_string(injected_faults)});
  fault_table.AddRow({"recovered_transfers", std::to_string(recovered_transfers)});
  fault_table.AddRow({"invariant_checks", std::to_string(VmInvariants::total_checks())});
  std::printf("%s\n", fault_table.ToString().c_str());

  std::printf("%-32s %14s %10s\n", "path", "MB/s", "iters");
  for (const Row& r : rows) {
    std::printf("%-32s %14.1f %10llu\n", r.name.c_str(), r.mb_per_s,
                static_cast<unsigned long long>(r.iterations));
  }
  std::printf("\nJSON: {");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%s\"%s\": %.1f", i == 0 ? "" : ", ", rows[i].name.c_str(), rows[i].mb_per_s);
  }
  std::printf("}\n");
  std::printf("\nReceiver metrics snapshot (end-to-end transfer):\n%s\n", metrics_json.c_str());
  return 0;
}

// `bench_hostpath --report [seed]`: a compact telemetry-enabled dumbbell
// workload whose deterministic run report (telemetry series summaries, SLO
// verdicts, alert log, critical path when traced) prints to stdout as JSON.
// Two same-seed invocations — in any build — are byte-identical; the CI
// telemetry leg diffs them. GENIE_TRACE additionally captures the causal
// spans with the sampler's counter tracks interleaved.
int RunReportMode(std::uint64_t seed) {
  ScopedTraceFile trace_file;
  Engine engine;
  WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.nodes = 4;
  cfg.fabric.topology = Fabric::Topology::kDumbbell;
  cfg.deadline = 20 * kMillisecond;
  ReliableOptions rel;
  rel.arq = true;
  rel.window = 4;
  rel.seed = seed;
  cfg.reliable = rel;
  TenantClassConfig bulk;
  bulk.name = "bulk";
  bulk.tenants = 6;
  bulk.transfers_per_tenant = 0;  // run to the deadline
  bulk.min_bytes = 2048;
  bulk.max_bytes = 8 * 1024;
  bulk.semantics_mix = {Semantics::kEmulatedCopy, Semantics::kCopy};
  bulk.slo_p99_us = 50'000;
  bulk.slo_goodput_floor_bps = 64 * 1024;  // well under the healthy rate
  bulk.slo_giveups_zero = true;
  cfg.classes.push_back(bulk);

  Workload wl(engine, cfg);
  Workload::TelemetryOptions topts;
  topts.sampler.period = 500 * kMicrosecond;
  if (trace_file.enabled()) {
    topts.trace = trace_file.log();
    for (std::size_t i = 0; i < wl.node_count(); ++i) {
      wl.node(i).set_trace(trace_file.log());
    }
    wl.fabric().set_trace(trace_file.log());
  }
  wl.EnableTelemetry(topts);
  wl.Run();
  if (!wl.violations().empty()) {
    std::fprintf(stderr, "report workload violation: %s\n", wl.violations().front().c_str());
    return 1;
  }
  std::ostringstream report;
  wl.WriteRunReport(report, trace_file.enabled() ? trace_file.log() : nullptr);
  std::printf("%s", report.str().c_str());
  return 0;
}

}  // namespace genie

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--threads") {
    const int n = std::atoi(argv[2]);
    if (n < 1 || n > 256) {
      std::fprintf(stderr, "usage: %s [--threads N]  (1 <= N <= 256)\n", argv[0]);
      return 2;
    }
    return genie::RunThreadsOnly(static_cast<std::size_t>(n));
  }
  if (argc == 2 && std::string(argv[1]) == "--json") {
    return genie::Run(/*json_only=*/true);
  }
  if ((argc == 2 || argc == 3) && std::string(argv[1]) == "--report") {
    std::uint64_t seed = 0x7e1e;
    if (argc == 3) {
      seed = std::strtoull(argv[2], nullptr, 0);
      if (seed == 0) {
        std::fprintf(stderr, "usage: %s --report [seed]  (seed != 0)\n", argv[0]);
        return 2;
      }
    }
    return genie::RunReportMode(seed);
  }
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--threads N | --json | --report [seed]]\n", argv[0]);
    return 2;
  }
  return genie::Run(/*json_only=*/false);
}
