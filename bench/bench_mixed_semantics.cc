// Extension bench: the full 8x8 matrix of sender semantics x receiver
// semantics for 60 KB datagrams with early demultiplexing — the paper's
// Section 8 composition claim, measured. Diagonal entries reproduce the
// Figure 3 values; off-diagonal entries show what incremental adoption of
// emulated copy (one host at a time) buys.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/latency_model.h"

namespace genie {
namespace {

void Run() {
  std::printf("=== Mixed semantics: sender x receiver latency matrix (60 KB, us) ===\n");
  std::printf("Rows: sender (output) semantics; columns: receiver (input) semantics.\n\n");
  const std::uint64_t len = 61440;
  ExperimentConfig config;
  const CostModel cost(config.profile);

  TextTable table;
  std::vector<std::string> header = {"out \\ in"};
  for (const Semantics in_sem : kAllSemantics) {
    header.emplace_back(SemanticsName(in_sem));
  }
  table.AddHeader(std::move(header));

  double worst_rel_err = 0.0;
  for (const Semantics out_sem : kAllSemantics) {
    std::vector<std::string> row = {std::string(SemanticsName(out_sem))};
    for (const Semantics in_sem : kAllSemantics) {
      Testbed bed(config);
      bed.TransferOnceMixed(len, out_sem, in_sem);  // Warm-up.
      const InputResult r = bed.TransferOnceMixed(len, out_sem, in_sem);
      const double measured = SimTimeToMicros(r.completed_at - bed.last_send_time());
      const double estimated = EstimateMixedLatencyUs(cost, config.options, out_sem, in_sem,
                                                      InputBuffering::kEarlyDemux, 0, len);
      worst_rel_err = std::max(worst_rel_err, std::abs(measured - estimated) / estimated);
      row.push_back(FormatDouble(measured, 0));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nAdditive composition model (base + sender-side + receiver-side) holds\n");
  std::printf("within %.2f%% across all 64 combinations.\n", worst_rel_err * 100.0);
  std::printf("\nIncremental upgrade: copy->copy vs copy->emulated copy vs full upgrade\n");
  std::printf("shows each side's conversion is independently worthwhile.\n");
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
