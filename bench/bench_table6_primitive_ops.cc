// Reproduces paper Table 6: costs of primitive data-passing operations,
// obtained exactly as the paper did — by instrumenting the Genie code while
// running the Figure 3/6/7 experiments and least-squares fitting each
// operation's latency against datagram length.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/analysis/linear_fit.h"
#include "src/obs/trace_env.h"

namespace genie {
namespace {

struct PaperLine {
  double slope;
  double intercept;
};

// Table 6 rows (Micron P166, microseconds, B = bytes).
const std::map<OpKind, PaperLine> kPaperTable6 = {
    {OpKind::kCopyin, {0.0180, -3}},
    {OpKind::kCopyout, {0.0220, 15}},
    {OpKind::kReference, {0.000363, 5}},
    {OpKind::kUnreference, {0.000100, 2}},
    {OpKind::kWire, {0.00141, 18}},
    {OpKind::kUnwire, {0.000237, 10}},
    {OpKind::kReadOnly, {0.000367, 2}},
    {OpKind::kInvalidate, {0.000373, 2}},
    {OpKind::kSwap, {0.00163, 15}},
    {OpKind::kRegionCreate, {0, 24}},
    {OpKind::kRegionFill, {0.000398, 9}},
    {OpKind::kRegionFillOverlayRefill, {0.000716, 11}},
    {OpKind::kRegionMap, {0.000474, 6}},
    {OpKind::kRegionMarkOut, {0, 3}},
    {OpKind::kRegionMarkIn, {0, 1}},
    {OpKind::kRegionCheck, {0, 5}},
    {OpKind::kRegionCheckUnrefReinstateMarkIn, {0.000507, 11}},
    {OpKind::kRegionCheckUnrefMarkIn, {0.000194, 6}},
    {OpKind::kOverlayAllocate, {0, 7}},
    {OpKind::kOverlay, {0, 7}},
    {OpKind::kOverlayDeallocate, {0.000344, 12}},
};

void Run() {
  // GENIE_TRACE=out.json records the per-transfer spans of every sweep below.
  ScopedTraceFile trace_file;
  std::printf("=== Table 6: costs of primitive data-passing operations (us) ===\n");
  std::printf("Measured by instrumenting Genie across the Figure 3/6/7 sweeps and\n");
  std::printf("fitting each operation's charged latency vs datagram length.\n\n");

  // Gather op samples across all semantics and the three experiments'
  // buffering/alignment settings, as the paper did.
  std::map<OpKind, std::vector<std::pair<double, double>>> samples;
  const auto lengths = PageMultipleLengths();
  struct Setting {
    InputBuffering buffering;
    std::uint32_t dst_offset;
  };
  const Setting settings[] = {{InputBuffering::kEarlyDemux, 0},
                              {InputBuffering::kPooled, 0},
                              {InputBuffering::kPooled, 1000}};
  for (const Setting& setting : settings) {
    ExperimentConfig config;
    config.buffering = setting.buffering;
    config.dst_page_offset = setting.dst_offset;
    config.collect_op_samples = true;
    config.repetitions = 2;
    config.trace = trace_file.log();
    for (const Semantics sem : kAllSemantics) {
      Experiment experiment(config);
      const RunResult run = experiment.Run(sem, lengths);
      for (const auto& [op, points] : run.op_samples) {
        for (const auto& [bytes, us] : points) {
          samples[op].emplace_back(static_cast<double>(bytes), us);
        }
      }
    }
  }

  TextTable table;
  table.AddHeader({"operation", "fit (us)", "paper Table 6", "samples", "R^2"});
  for (const auto& [op, points] : samples) {
    const LinearFit fit = FitLine(points);
    std::string fitted;
    if (fit.slope > 1e-7) {
      fitted = FormatDouble(fit.slope, 6) + " B + " + FormatDouble(fit.intercept, 0);
    } else {
      fitted = FormatDouble(fit.intercept, 0);
    }
    std::string paper = "(not a Table 6 row)";
    if (auto it = kPaperTable6.find(op); it != kPaperTable6.end()) {
      if (it->second.slope > 0) {
        paper = FormatDouble(it->second.slope, 6) + " B + " + FormatDouble(it->second.intercept, 0);
      } else {
        paper = FormatDouble(it->second.intercept, 0);
      }
    }
    table.AddRow({std::string(OpKindName(op)), fitted, paper, std::to_string(points.size()),
                  FormatDouble(fit.r2, 4)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nNote: copyin's negative intercept is clamped at zero when charged\n");
  std::printf("(warm-cache L1/L2 effect in the paper), so its fitted intercept may\n");
  std::printf("sit slightly above the paper's -3.\n");
}

}  // namespace
}  // namespace genie

int main() {
  genie::Run();
  return 0;
}
