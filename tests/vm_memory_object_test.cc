#include "src/vm/memory_object.h"

#include <cstring>

#include <gtest/gtest.h>

#include "src/vm/vm.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;

TEST(MemoryObjectTest, RegistersWithVm) {
  Vm vm(16, kPage);
  auto obj = vm.CreateObject(4);
  EXPECT_EQ(vm.live_objects(), 1u);
  EXPECT_EQ(vm.FindObject(obj->id()), obj.get());
  const ObjectId id = obj->id();
  obj.reset();
  EXPECT_EQ(vm.live_objects(), 0u);
  EXPECT_EQ(vm.FindObject(id), nullptr);
}

TEST(MemoryObjectTest, InsertTakePage) {
  Vm vm(16, kPage);
  auto obj = vm.CreateObject(4);
  const FrameId f = vm.pm().Allocate();
  obj->InsertPage(2, f);
  EXPECT_EQ(obj->PageAt(2), f);
  EXPECT_EQ(obj->PageAt(0), kInvalidFrame);
  EXPECT_EQ(vm.pm().info(f).owner_object, obj->id());
  EXPECT_EQ(vm.pm().info(f).owner_page, 2u);
  EXPECT_EQ(obj->TakePage(2), f);
  EXPECT_EQ(obj->PageAt(2), kInvalidFrame);
  EXPECT_EQ(vm.pm().info(f).owner_object, kNoOwner);
  vm.pm().Free(f);
}

TEST(MemoryObjectDeathTest, DoubleInsertAborts) {
  Vm vm(16, kPage);
  auto obj = vm.CreateObject(4);
  obj->InsertPage(0, vm.pm().Allocate());
  const FrameId g = vm.pm().Allocate();
  EXPECT_DEATH(obj->InsertPage(0, g), "already present");
}

TEST(MemoryObjectTest, ReplacePageDisownsOld) {
  Vm vm(16, kPage);
  auto obj = vm.CreateObject(1);
  const FrameId old = vm.pm().Allocate();
  obj->InsertPage(0, old);
  const FrameId fresh = vm.pm().Allocate();
  EXPECT_EQ(obj->ReplacePage(0, fresh), old);
  EXPECT_EQ(obj->PageAt(0), fresh);
  EXPECT_EQ(vm.pm().info(old).owner_object, kNoOwner);
  EXPECT_EQ(vm.pm().info(fresh).owner_object, obj->id());
  vm.pm().Free(old);
}

TEST(MemoryObjectTest, DestructorFreesOwnedFrames) {
  Vm vm(4, kPage);
  {
    auto obj = vm.CreateObject(4);
    obj->InsertPage(0, vm.pm().Allocate());
    obj->InsertPage(1, vm.pm().Allocate());
    EXPECT_EQ(vm.pm().free_frames(), 2u);
  }
  EXPECT_EQ(vm.pm().free_frames(), 4u);
}

TEST(MemoryObjectTest, DestructorDefersFramesWithIoRefs) {
  Vm vm(4, kPage);
  FrameId f = kInvalidFrame;
  {
    auto obj = vm.CreateObject(1);
    f = vm.pm().Allocate();
    obj->InsertPage(0, f);
    vm.pm().AddOutputRef(f);
  }
  // Object gone, frame still zombie (pending device output).
  EXPECT_EQ(vm.pm().zombie_frames(), 1u);
  vm.pm().DropOutputRef(f);
  EXPECT_EQ(vm.pm().free_frames(), 4u);
}

TEST(MemoryObjectTest, FindWalksShadowChain) {
  Vm vm(16, kPage);
  auto backing = vm.CreateObject(4);
  auto shadow = vm.CreateObject(4);
  shadow->set_shadow_of(backing);
  const FrameId in_backing = vm.pm().Allocate();
  backing->InsertPage(1, in_backing);
  const FrameId in_shadow = vm.pm().Allocate();
  shadow->InsertPage(2, in_shadow);

  auto found = shadow->Find(1);
  EXPECT_EQ(found.frame, in_backing);
  EXPECT_EQ(found.object, backing.get());
  EXPECT_FALSE(found.in_top);

  found = shadow->Find(2);
  EXPECT_EQ(found.frame, in_shadow);
  EXPECT_TRUE(found.in_top);

  found = shadow->Find(3);
  EXPECT_EQ(found.frame, kInvalidFrame);
}

TEST(MemoryObjectTest, ShadowPageOccludesBacking) {
  Vm vm(16, kPage);
  auto backing = vm.CreateObject(1);
  auto shadow = vm.CreateObject(1);
  shadow->set_shadow_of(backing);
  backing->InsertPage(0, vm.pm().Allocate());
  const FrameId private_copy = vm.pm().Allocate();
  shadow->InsertPage(0, private_copy);
  EXPECT_EQ(shadow->Find(0).frame, private_copy);
  EXPECT_TRUE(shadow->Find(0).in_top);
}

TEST(MemoryObjectTest, TwoLevelShadowChain) {
  Vm vm(16, kPage);
  auto base = vm.CreateObject(1);
  auto mid = vm.CreateObject(1);
  auto top = vm.CreateObject(1);
  mid->set_shadow_of(base);
  top->set_shadow_of(mid);
  const FrameId f = vm.pm().Allocate();
  base->InsertPage(0, f);
  EXPECT_EQ(top->Find(0).frame, f);
  EXPECT_EQ(top->Find(0).object, base.get());
}

TEST(MemoryObjectTest, InputRefCounting) {
  Vm vm(16, kPage);
  auto obj = vm.CreateObject(1);
  EXPECT_EQ(obj->input_refs(), 0);
  obj->AddInputRef();
  obj->AddInputRef();
  EXPECT_EQ(obj->input_refs(), 2);
  obj->DropInputRef();
  obj->DropInputRef();
  EXPECT_EQ(obj->input_refs(), 0);
}

TEST(MemoryObjectTest, ChainHasInputRefsSeesBacking) {
  Vm vm(16, kPage);
  auto backing = vm.CreateObject(1);
  auto shadow = vm.CreateObject(1);
  shadow->set_shadow_of(backing);
  EXPECT_FALSE(shadow->ChainHasInputRefs());
  backing->AddInputRef();
  EXPECT_TRUE(shadow->ChainHasInputRefs());
  EXPECT_FALSE(backing->shadow_of() && false);  // backing chain unaffected
  backing->DropInputRef();
  EXPECT_FALSE(shadow->ChainHasInputRefs());
}

TEST(MemoryObjectTest, BackingStoreSlotsErasedOnDestruction) {
  Vm vm(4, kPage);
  ObjectId id;
  {
    auto obj = vm.CreateObject(2);
    id = obj->id();
    std::vector<std::byte> data(kPage);
    vm.backing().Save(id, 0, data);
    EXPECT_TRUE(vm.backing().Contains(id, 0));
  }
  EXPECT_FALSE(vm.backing().Contains(id, 0));
}

}  // namespace
}  // namespace genie
