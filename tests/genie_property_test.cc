// Randomized differential properties (seeded, deterministic): across random
// lengths, offsets, semantics, buffering schemes, and tamper times:
//   1. payload integrity for completed transfers;
//   2. simulator latency == analytic model (within rounding);
//   3. no leaked frames, references, or pending operations;
//   4. strong-integrity semantics never deliver mixed data on tampering.
#include <optional>
#include <random>

#include <gtest/gtest.h>

#include "src/analysis/latency_model.h"
#include "src/harness/experiment.h"
#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;

TEST(PropertyTest, RandomTransfersIntactAndModelExact) {
  std::mt19937_64 rng(0xC0FFEE);
  std::uniform_int_distribution<std::uint64_t> len_dist(1, 60 * 1024);
  std::uniform_int_distribution<std::uint32_t> off_dist(0, kPage - 1);
  std::uniform_int_distribution<int> sem_dist(0, 7);
  std::uniform_int_distribution<int> buf_dist(0, 2);

  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t len = len_dist(rng);
    const Semantics sem = kAllSemantics[static_cast<std::size_t>(sem_dist(rng))];
    const InputBuffering buffering = static_cast<InputBuffering>(buf_dist(rng));
    const std::uint32_t offset = off_dist(rng);

    ExperimentConfig config;
    config.buffering = buffering;
    config.dst_page_offset = offset;
    Testbed bed(config);
    // Warm-up, then measure.
    bed.TransferOnce(len, sem);
    const InputResult r = bed.TransferOnce(len, sem);
    ASSERT_TRUE(r.ok) << "trial " << trial;
    ASSERT_EQ(r.bytes, len);

    // 1. Payload integrity (the harness pattern is (i*31+7)&0xFF).
    std::vector<std::byte> got(static_cast<std::size_t>(len));
    ASSERT_EQ(bed.rx_app().Read(r.addr, got), AccessResult::kOk);
    for (std::uint64_t i = 0; i < len; i += 509) {
      ASSERT_EQ(static_cast<unsigned char>(got[static_cast<std::size_t>(i)]),
                (i * 31 + 7) & 0xFF)
          << "trial " << trial << " offset " << i;
    }

    // 2. The analytic model matches the simulator at arbitrary lengths and
    // offsets (conversion thresholds, reverse copyout, zero-completion and
    // all): this is the strongest form of the Table 7 agreement.
    const CostModel cost(config.profile);
    const double measured = SimTimeToMicros(r.completed_at - bed.last_send_time());
    const double estimated =
        EstimateLatencyUs(cost, config.options, sem, buffering,
                          IsSystemAllocated(sem) ? 0 : offset, len);
    // Tolerance: when the final wire chunk is much shorter than a page, the
    // previous chunk's overlapped driver work (<= page * 0.004 us/B = 16.4 us)
    // can still hold the receiver CPU when dispose starts — real contention
    // the closed-form model ignores.
    const double driver_residual = kPage * 0.004;
    ASSERT_NEAR(measured, estimated, estimated * 0.001 + 1.0 + driver_residual)
        << "trial " << trial << " " << SemanticsName(sem) << " "
        << InputBufferingName(buffering) << " B=" << len << " off=" << offset;

    // 3. Hygiene.
    ASSERT_EQ(bed.tx().pending_operations(), 0u);
    ASSERT_EQ(bed.rx().pending_operations(), 0u);
    ASSERT_EQ(bed.sender().vm().pm().zombie_frames(), 0u);
    ASSERT_EQ(bed.receiver().vm().pm().zombie_frames(), 0u);
  }
}

TEST(PropertyTest, RandomTamperNeverBreaksStrongIntegrity) {
  std::mt19937_64 rng(0xBEEF);
  std::uniform_int_distribution<std::uint64_t> len_dist(kPage, 12 * kPage);
  std::uniform_int_distribution<int> sem_dist(0, 1);  // copy, emulated copy

  for (int trial = 0; trial < 25; ++trial) {
    const std::uint64_t len = len_dist(rng);
    const Semantics sem = sem_dist(rng) == 0 ? Semantics::kCopy : Semantics::kEmulatedCopy;
    Rig rig;
    rig.tx_app.CreateRegion(kSrc, 16 * kPage);
    rig.rx_app.CreateRegion(kDst, 16 * kPage);
    const auto original = TestPattern(len, static_cast<unsigned char>(trial));
    GENIE_CHECK(rig.tx_app.Write(kSrc, original) == AccessResult::kOk);

    // Tamper at a random instant during the transfer.
    const double total_us = 130 + 0.0598 * static_cast<double>(len) + 120;
    std::uniform_real_distribution<double> when(1.0, total_us);
    const SimTime tamper_at = MicrosToSimTime(when(rng));
    rig.engine.ScheduleAt(tamper_at, [&] {
      auto junk = TestPattern(len, 0xEE);
      (void)rig.tx_app.Write(kSrc, junk);
    });

    const InputResult r = rig.Transfer(kSrc, kDst, len, sem);
    ASSERT_TRUE(r.ok) << trial;
    const auto got = rig.ReadBack(kDst, len);
    // Strong integrity: the receiver sees the output-call snapshot exactly —
    // never a mix — regardless of when the tamper landed.
    ASSERT_EQ(std::memcmp(got.data(), original.data(), len), 0)
        << "trial " << trial << " " << SemanticsName(sem) << " tamper@"
        << SimTimeToMicros(tamper_at);
  }
}

TEST(PropertyTest, RandomCrcFailuresAlwaysCleanUp) {
  std::mt19937_64 rng(0xDEAD);
  std::uniform_int_distribution<std::uint64_t> len_dist(1, 8 * kPage);
  std::uniform_int_distribution<int> sem_dist(0, 7);
  std::uniform_int_distribution<int> buf_dist(0, 2);
  std::uniform_int_distribution<int> fail_dist(0, 1);

  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t len = len_dist(rng);
    const Semantics sem = kAllSemantics[static_cast<std::size_t>(sem_dist(rng))];
    const InputBuffering buffering = static_cast<InputBuffering>(buf_dist(rng));
    Rig rig(buffering);
    rig.tx_app.CreateRegion(kSrc, 16 * kPage,
                            IsSystemAllocated(sem) ? RegionState::kMovedIn
                                                   : RegionState::kUnmovable);
    rig.rx_app.CreateRegion(kDst, 16 * kPage);
    GENIE_CHECK(rig.tx_app.Write(kSrc, TestPattern(len, 3)) == AccessResult::kOk);

    const bool fail = fail_dist(rng) == 1;
    std::optional<CrcErrorInjector> crc;
    if (fail) {
      crc.emplace(rig.sender.adapter());
      crc->CorruptNextFrame();
    }
    const InputResult r = rig.Transfer(kSrc, kDst, len, sem);
    ASSERT_EQ(r.ok, !fail) << trial;
    rig.ExpectQuiescent();
    ASSERT_EQ(rig.receiver.vm().pm().zombie_frames(), 0u) << trial;
    if (buffering == InputBuffering::kPooled) {
      ASSERT_EQ(rig.receiver.adapter().pool()->available(),
                rig.receiver.adapter().pool()->capacity())
          << trial;
    }
  }
}

TEST(PropertyTest, ApplicationAlignmentQueryRoundTrip) {
  // Application input alignment (Section 5.2): the app asks the I/O module
  // for its preferred offset, places its buffer there, and page swapping
  // works even though the system cannot choose the alignment itself.
  GenieOptions options;
  options.preferred_input_offset = 1234;  // e.g. unstripped packet headers
  Rig rig(InputBuffering::kEarlyDemux, options);
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);

  const std::uint32_t offset = rig.rx_ep.PreferredInputAlignment();
  EXPECT_EQ(offset, 1234u);
  const std::uint64_t len = 5 * kPage;
  const auto payload = TestPattern(len, 6);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);
  const InputResult r = rig.Transfer(kSrc, kDst + offset, len, Semantics::kEmulatedCopy);
  ASSERT_TRUE(r.ok);
  const auto got = rig.ReadBack(kDst + offset, len);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), len), 0);
  // System input alignment matched the application's placement: interior
  // pages swapped.
  EXPECT_GE(rig.rx_ep.stats().pages_swapped, 4u);
}

}  // namespace
}  // namespace genie
