#include "src/net/aal5.h"

#include <cstring>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

namespace genie {
namespace {

std::vector<std::byte> Bytes(std::string_view s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(Crc32Test, KnownVector) {
  // Standard check value for "123456789" under CRC-32/IEEE.
  EXPECT_EQ(ComputeCrc32(Bytes("123456789")), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(ComputeCrc32({}), 0x00000000u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const auto data = Bytes("the quick brown fox jumps over the lazy dog");
  Crc32 crc;
  crc.Update(std::span<const std::byte>(data).subspan(0, 10));
  crc.Update(std::span<const std::byte>(data).subspan(10, 5));
  crc.Update(std::span<const std::byte>(data).subspan(15));
  EXPECT_EQ(crc.value(), ComputeCrc32(data));
}

TEST(Crc32Test, DifferentDataDifferentCrc) {
  EXPECT_NE(ComputeCrc32(Bytes("abc")), ComputeCrc32(Bytes("abd")));
}

TEST(Crc32Test, ResetStartsFresh) {
  Crc32 crc;
  crc.Update(Bytes("junk"));
  crc.Reset();
  crc.Update(Bytes("123456789"));
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Aal5Test, MaxPayloadConstant) {
  EXPECT_EQ(kMaxAal5Payload, 65535u);
  // 60 KB is the largest page multiple under the limit (paper Section 7).
  EXPECT_LE(60u * 1024, kMaxAal5Payload);
  EXPECT_GT(64u * 1024, kMaxAal5Payload);
}

}  // namespace
}  // namespace genie
