// End-to-end datagram transfers: every semantics x every device input
// buffering scheme x several lengths/alignments must deliver the payload
// intact, with all I/O references, frames, and pending operations drained.
#include <tuple>

#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;

using TransferParam = std::tuple<Semantics, InputBuffering, std::uint64_t>;

class TransferTest : public ::testing::TestWithParam<TransferParam> {};

TEST_P(TransferTest, PayloadRoundTripsIntact) {
  const auto [sem, buffering, len] = GetParam();
  Rig rig(buffering);

  rig.tx_app.CreateRegion(kSrc, 16 * kPage,
                          IsSystemAllocated(sem) ? RegionState::kMovedIn
                                                 : RegionState::kUnmovable);
  if (IsApplicationAllocated(sem)) {
    rig.rx_app.CreateRegion(kDst, 16 * kPage);
  }
  const auto payload = TestPattern(len, static_cast<unsigned char>(len & 0xFF));
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);

  const InputResult result = rig.Transfer(kSrc, kDst, len, sem);

  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(result.bytes, len);
  if (IsApplicationAllocated(sem)) {
    EXPECT_EQ(result.addr, kDst);
  } else {
    EXPECT_NE(result.addr, 0u);  // System chose the location.
  }
  const auto got = rig.ReadBack(result.addr, len);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), len), 0);
  rig.ExpectQuiescent();
  EXPECT_EQ(rig.sender.vm().pm().zombie_frames(), 0u);
  EXPECT_EQ(rig.receiver.vm().pm().zombie_frames(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSemanticsAllBuffering, TransferTest,
    ::testing::Combine(::testing::ValuesIn(kAllSemantics),
                       ::testing::Values(InputBuffering::kEarlyDemux, InputBuffering::kPooled,
                                         InputBuffering::kOutboard),
                       ::testing::Values<std::uint64_t>(64, kPage, 4 * kPage, 60 * 1024)),
    [](const ::testing::TestParamInfo<TransferParam>& param_info) {
      std::string name(SemanticsName(std::get<0>(param_info.param)));
      name += std::string("_") + std::string(InputBufferingName(std::get<1>(param_info.param)));
      for (char& c : name) {
        if (c == '-' || c == ' ') {
          c = '_';
        }
      }
      return name + "_" + std::to_string(std::get<2>(param_info.param));
    });

// Unaligned application buffers (application-allocated semantics only).
using UnalignedParam = std::tuple<Semantics, InputBuffering>;
class UnalignedTransferTest : public ::testing::TestWithParam<UnalignedParam> {};

TEST_P(UnalignedTransferTest, UnalignedBuffersRoundTrip) {
  const auto [sem, buffering] = GetParam();
  Rig rig(buffering);
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);
  const std::uint64_t len = 3 * kPage + 100;
  const Vaddr src = kSrc + 1234;  // Deliberately unaligned on both sides.
  const Vaddr dst = kDst + 777;
  const auto payload = TestPattern(len, 5);
  ASSERT_EQ(rig.tx_app.Write(src, payload), AccessResult::kOk);

  const InputResult result = rig.Transfer(src, dst, len, sem);
  ASSERT_TRUE(result.ok);
  const auto got = rig.ReadBack(dst, len);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), len), 0);
  rig.ExpectQuiescent();
}

INSTANTIATE_TEST_SUITE_P(
    AppAllocated, UnalignedTransferTest,
    ::testing::Combine(::testing::Values(Semantics::kCopy, Semantics::kEmulatedCopy,
                                         Semantics::kShare, Semantics::kEmulatedShare),
                       ::testing::Values(InputBuffering::kEarlyDemux, InputBuffering::kPooled,
                                         InputBuffering::kOutboard)),
    [](const ::testing::TestParamInfo<UnalignedParam>& param_info) {
      std::string name(SemanticsName(std::get<0>(param_info.param)));
      name += "_" + std::string(InputBufferingName(std::get<1>(param_info.param)));
      for (char& c : name) {
        if (c == ' ' || c == '-') {
          c = '_';
        }
      }
      return name;
    });

// Data around the buffer must survive an unaligned emulated-copy input
// (reverse copyout must not clobber neighbours).
TEST(TransferEdgeTest, SurroundingBytesPreservedOnUnalignedInput) {
  Rig rig(InputBuffering::kEarlyDemux);
  rig.tx_app.CreateRegion(kSrc, 8 * kPage);
  rig.rx_app.CreateRegion(kDst, 8 * kPage);
  // Paint the whole destination region.
  const auto canvas = TestPattern(8 * kPage, 9);
  ASSERT_EQ(rig.rx_app.Write(kDst, canvas), AccessResult::kOk);

  const std::uint64_t len = 2 * kPage + 500;  // Forces reverse copyout.
  const Vaddr dst = kDst + kPage + 300;
  const auto payload = TestPattern(len, 3);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);

  const InputResult result = rig.Transfer(kSrc, dst, len, Semantics::kEmulatedCopy);
  ASSERT_TRUE(result.ok);

  // Payload correct.
  const auto got = rig.ReadBack(dst, len);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), len), 0);
  // Bytes before and after the buffer untouched.
  const auto before = rig.ReadBack(kDst, dst - kDst);
  EXPECT_EQ(std::memcmp(before.data(), canvas.data(), before.size()), 0);
  const std::uint64_t after_off = (dst - kDst) + len;
  const auto after = rig.ReadBack(dst + len, 8 * kPage - after_off);
  EXPECT_EQ(std::memcmp(after.data(), canvas.data() + after_off, after.size()), 0);
  EXPECT_GT(rig.rx_ep.stats().reverse_copyouts, 0u);
}

// Back-to-back datagrams reuse cached regions for the system-allocated
// emulated semantics (region caching / hiding).
TEST(TransferEdgeTest, PingPongReusesCachedRegions) {
  Rig rig(InputBuffering::kEarlyDemux);
  rig.tx_app.CreateRegion(kSrc, 4 * kPage, RegionState::kMovedIn);
  const std::uint64_t len = 4 * kPage;
  const auto payload = TestPattern(len, 2);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);

  Vaddr first_addr = 0;
  for (int round = 0; round < 4; ++round) {
    // Receiver inputs, then echoes back out of the moved-in region, which
    // re-primes its cache; sender gets a fresh input region each round.
    const InputResult in = rig.Transfer(kSrc, 0, len, Semantics::kEmulatedMove);
    ASSERT_TRUE(in.ok);
    if (round == 0) {
      first_addr = in.addr;
    } else {
      // Region reuse: the cached region from round N-1's output is reused.
      EXPECT_EQ(in.addr, first_addr) << "round " << round;
    }
    // Echo back: output the received region (sender side now inputs).
    InputResult back;
    auto input_driver = [](Endpoint& ep, AddressSpace& app, std::uint64_t n,
                           InputResult* out) -> Task<void> {
      *out = co_await ep.InputSystemAllocated(app, n, Semantics::kEmulatedMove);
    };
    std::move(input_driver(rig.tx_ep, rig.tx_app, len, &back)).Detach();
    std::move(rig.rx_ep.Output(rig.rx_app, in.addr, len, Semantics::kEmulatedMove)).Detach();
    rig.engine.Run();
    ASSERT_TRUE(back.ok);
  }
  EXPECT_GT(rig.rx_ep.stats().region_cache_hits, 0u);
}

// Sending from a moved-in region with application-allocated semantics is
// fine; sending from an unmovable region with system-allocated semantics
// aborts (Section 2.1).
TEST(TransferEdgeTest, SystemAllocatedOutputRequiresMovedInRegion) {
  Rig rig;
  rig.tx_app.CreateRegion(kSrc, kPage);  // Unmovable.
  std::vector<std::byte> payload(64, std::byte{1});
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);
  EXPECT_DEATH(
      {
        std::move(rig.tx_ep.Output(rig.tx_app, kSrc, 64, Semantics::kMove)).Detach();
        rig.engine.Run();
      },
      "moved-in");
}

TEST(TransferEdgeTest, AllocateAndFreeIoBuffer) {
  Rig rig;
  const Vaddr buf = rig.tx_ep.AllocateIoBuffer(rig.tx_app, 3 * kPage);
  Region* region = rig.tx_app.RegionAt(buf);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->state, RegionState::kMovedIn);
  EXPECT_EQ(region->length, 3 * kPage);
  // Usable as a normal buffer.
  std::vector<std::byte> payload(3 * kPage, std::byte{7});
  EXPECT_EQ(rig.tx_app.Write(buf, payload), AccessResult::kOk);
  rig.tx_ep.FreeIoBuffer(rig.tx_app, buf);
  EXPECT_EQ(rig.tx_app.RegionAt(buf), nullptr);
}

}  // namespace
}  // namespace genie
