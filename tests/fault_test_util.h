// Shared fixture for fault-injection tests: a Rig with a seeded FaultPlan
// attached to both nodes, whole-VM invariant checking, and helpers for
// driving transfers that are allowed to fail.
#ifndef GENIE_TESTS_FAULT_TEST_UTIL_H_
#define GENIE_TESTS_FAULT_TEST_UTIL_H_

#include <optional>
#include <string>
#include <vector>

#include "src/mem/fault_plan.h"
#include "src/util/rng.h"
#include "src/vm/invariants.h"
#include "src/vm/pageout.h"
#include "tests/genie_test_util.h"

namespace genie {

// A Rig whose nodes share one deterministic fault plan. The plan starts with
// no rules (zero faults); tests add rules before driving traffic. Every
// injection point — frame allocation, backing I/O, the adapters' transmit
// paths, pageout pressure — consults the same plan, so one seed fully
// determines a run.
struct FaultRig : Rig {
  explicit FaultRig(std::uint64_t seed, InputBuffering rx = InputBuffering::kEarlyDemux,
                    GenieOptions options = GenieOptions{}, std::size_t mem_frames = 512)
      : Rig(rx, options, MachineProfile::MicronP166(), mem_frames), plan(seed) {
    sender.AttachFaultPlan(&plan);
    receiver.AttachFaultPlan(&plan);
  }
  ~FaultRig() {
    sender.AttachFaultPlan(nullptr);
    receiver.AttachFaultPlan(nullptr);
  }

  // Whole-VM invariants on both nodes, merged into one report.
  InvariantReport CheckInvariants(bool expect_quiescent) {
    InvariantReport report = VmInvariants::CheckAll(sender.vm(), tx_app, expect_quiescent);
    InvariantReport rx_report =
        VmInvariants::CheckAll(receiver.vm(), rx_app, expect_quiescent);
    report.checks += rx_report.checks;
    report.violations.insert(report.violations.end(), rx_report.violations.begin(),
                             rx_report.violations.end());
    return report;
  }

  // ReadBack that tolerates injected faults on the fault-in path: nullopt if
  // the read itself hit an (injected) unrecoverable fault.
  std::optional<std::vector<std::byte>> TryReadBack(Vaddr addr, std::uint64_t len) {
    std::vector<std::byte> out(static_cast<std::size_t>(len));
    if (rx_app.Read(addr, out) != AccessResult::kOk) {
      return std::nullopt;
    }
    return out;
  }

  // Drives one datagram like Rig::Transfer, but tolerates one-sided
  // failures: if the output fails recoverably and strands the preposted
  // input, injection is disabled (plan.Clear keeps counters) and plain copy
  // datagrams flush the input so every operation completes. Dies if the
  // input cannot be completed — that is a real stuck-transfer bug.
  InputResult DriveTransfer(Vaddr src_va, Vaddr dst_va, std::uint64_t len, Semantics sem) {
    InputResult result;
    bool done = false;
    auto input_driver = [](Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t n,
                           Semantics s, InputResult* out, bool* flag) -> Task<void> {
      if (IsSystemAllocated(s)) {
        *out = co_await ep.InputSystemAllocated(app, n, s);
      } else {
        *out = co_await ep.Input(app, va, n, s);
      }
      *flag = true;
    };
    std::move(input_driver(rx_ep, rx_app, dst_va, len, sem, &result, &done)).Detach();
    std::move(tx_ep.Output(tx_app, src_va, len, sem)).Detach();
    engine.Run();
    int flushes = 0;
    while (!done && flushes++ < 4) {
      plan.Clear();
      std::move(tx_ep.Output(tx_app, src_va, len, Semantics::kCopy)).Detach();
      engine.Run();
    }
    GENIE_CHECK(done) << "input never completed (transfer stuck)";
    return result;
  }

  FaultPlan plan;
};

// Schedules an invariant sweep every `period` ns of sim time until `until`:
// between events, while transfers are mid-flight, the whole-VM invariants
// must already hold (non-quiescent mode). Violations accumulate in `*out`.
inline void ScheduleInvariantSweep(Engine& engine, Vm& vm, AddressSpace& aspace,
                                   SimTime period, SimTime until,
                                   std::vector<std::string>* out) {
  const SimTime next = engine.now() + period;
  if (next > until) {
    return;
  }
  engine.ScheduleAt(next, [&engine, &vm, &aspace, period, until, out] {
    const InvariantReport report =
        VmInvariants::CheckAll(vm, aspace, /*expect_quiescent=*/false);
    out->insert(out->end(), report.violations.begin(), report.violations.end());
    ScheduleInvariantSweep(engine, vm, aspace, period, until, out);
  });
}

}  // namespace genie

#endif  // GENIE_TESTS_FAULT_TEST_UTIL_H_
