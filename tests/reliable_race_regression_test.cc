// Regression tests for same-instant resolution races in the reliable layer:
// a give-up verdict (retransmit budget exhausted) or a watchdog cancellation
// landing in the same simulated instant as the final successful ack must be
// accounted as exactly one delivery — never as a give-up AND a completion,
// or a watchdog cancel AND a completion, for the same transfer.
//
// The racing schedules are engineered, not sampled: the kLinkReorder fault
// holds the frame and redelivers it R ns late, so the ack-arrival event is
// inserted into the engine *after* the already-armed retransmit timer. With
// timeout == R + kCtl both events fire in the same instant with the timer
// first — exactly the FIFO interleaving that used to count a transfer as
// both `giveups` and `completed`. The watchdog variant runs end-to-end
// through the endpoint (whose watch callback owns the fix) with a scan
// aligned to the measured ack instant.
#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/genie/reliable.h"
#include "src/net/iovec_io.h"
#include "src/sim/engine.h"
#include "src/sim/resource.h"
#include "src/sim/trace.h"
#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
// One page-frame's wire time at OC-3 (matches the adapter timing tests).
const SimTime kWire = MicrosToSimTime(kPage * 0.0598);
const SimTime kCtl = 5 * kMicrosecond;  // control-cell (ack/credit) latency
const SimTime kHold = 100 * kMicrosecond;  // reorder fault's redelivery delay

// Two adapters wired bidirectionally, as in reliable_backoff_test; the
// receive side mirrors the sender's window so windowed runs use SACK trains.
class RaceRig {
 public:
  RaceRig()
      : cost_(MachineProfile::MicronP166()),
        pm_(128, kPage),
        fwd_(eng_, "fwd"),
        back_(eng_, "back"),
        tx_(eng_, pm_, cost_, "tx", Adapter::Config{}),
        rx_(eng_, pm_, cost_, "rx", Adapter::Config{}),
        rel_(eng_, tx_, "tx.xfer") {
    tx_.ConnectTo(&rx_, &fwd_);
    rx_.ConnectTo(&tx_, &back_);
    plan_.set_clock([this] { return eng_.now(); });
    tx_.set_fault_plan(&plan_);
    rel_.set_metrics(&metrics_);
  }

  ~RaceRig() {
    for (const FrameId f : frames_) {
      pm_.Free(f);
    }
  }

  void Configure(ReliableOptions opts) {
    rel_.Configure(opts);
    tx_.set_arq_window(opts.window);
    rx_.set_arq_window(opts.window);
  }

  IoVec MakeBuffer(std::size_t bytes, unsigned char seed) {
    IoVec iov;
    std::size_t remaining = bytes;
    std::size_t produced = 0;
    while (remaining > 0) {
      const FrameId f = pm_.Allocate();
      frames_.push_back(f);
      const std::uint32_t n = static_cast<std::uint32_t>(std::min<std::size_t>(kPage, remaining));
      auto data = pm_.Data(f);
      for (std::uint32_t i = 0; i < n; ++i) {
        data[i] = static_cast<std::byte>((seed + produced + i) & 0xFF);
      }
      iov.segments.push_back(IoSegment{f, 0, n});
      remaining -= n;
      produced += n;
    }
    return iov;
  }

  // Drives one reliable transmission to completion; reports outcome and
  // finish time.
  ReliableDelivery::TxReport Transmit(std::uint64_t channel, const IoVec& iov,
                                      SimTime* done_at = nullptr) {
    std::optional<ReliableDelivery::TxReport> report;
    SimTime done = -1;
    auto drive = [](RaceRig* rig, std::uint64_t ch, IoVec frame,
                    std::optional<ReliableDelivery::TxReport>* out,
                    SimTime* when) -> Task<void> {
      *out = co_await rig->rel_.TransmitReliably(ch, frame, 0, 0, "xfer", nullptr);
      *when = rig->eng_.now();
    };
    std::move(drive(this, channel, iov, &report, &done)).Detach();
    eng_.Run();
    GENIE_CHECK(report.has_value()) << "transmission never completed";
    if (done_at != nullptr) {
      *done_at = done;
    }
    return *report;
  }

  // Holds the next frame on the wire and redelivers it kHold later: the ack
  // event is then inserted long after the retransmit timer, so a timer with
  // timeout == kHold + kCtl fires first in the collision instant.
  void HoldNextFrame() {
    FaultRule rule;
    rule.site = FaultSite::kLinkReorder;
    rule.nth = 1;
    rule.arg = static_cast<std::uint64_t>(kHold);
    plan_.AddRule(rule);
  }

  Engine eng_;
  CostModel cost_;
  PhysicalMemory pm_;
  Resource fwd_;
  Resource back_;
  Adapter tx_;
  Adapter rx_;
  ReliableDelivery rel_;
  MetricsRegistry metrics_;
  FaultPlan plan_{1};
  std::vector<FrameId> frames_;
};

ReliableOptions RaceOptions(std::uint32_t window) {
  ReliableOptions opts;
  opts.arq = true;
  opts.window = window;
  // The only retransmit timer fires exactly when the held frame's ack
  // arrives; with no retries left it renders a give-up verdict in the same
  // instant the ack resolves the transfer.
  opts.initial_timeout = kHold + kCtl;
  opts.max_retransmits = 0;
  opts.jitter_frac = 0.0;
  return opts;
}

TEST(ReliableRaceRegressionTest, StopAndWaitAckRacingGiveUpCountsOneDelivery) {
  RaceRig rig;
  rig.Configure(RaceOptions(1));
  rig.HoldNextFrame();
  const IoVec src = rig.MakeBuffer(kPage, 9);
  const IoVec dst = rig.MakeBuffer(kPage, 0);
  int completions = 0;
  rig.rx_.PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion& c) {
                                                  ++completions;
                                                  EXPECT_EQ(c.seq, 1u);
                                                }});
  SimTime done = -1;
  const auto report = rig.Transmit(1, src, &done);

  // The wire finishes at kWire (timer armed), the held frame lands at
  // kWire + kHold, and its ack collides with the give-up timer at
  // kWire + kHold + kCtl — timer event first. The ack must win.
  EXPECT_EQ(done, kWire + kHold + kCtl);
  EXPECT_EQ(report.outcome, ReliableDelivery::TxOutcome::kDelivered);
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_EQ(completions, 1);
  // Counted once, as a delivery: no give-up, no timeout, no retransmit.
  EXPECT_EQ(rig.rel_.stats().giveups, 0u);
  EXPECT_EQ(rig.rel_.stats().timeouts, 0u);
  EXPECT_EQ(rig.rel_.stats().retransmits, 0u);
  EXPECT_EQ(rig.rel_.stats().acks, 1u);
  EXPECT_EQ(rig.rel_.stats().stale_acks, 0u);
}

TEST(ReliableRaceRegressionTest, WindowedSackRacingGiveUpCountsOneDelivery) {
  RaceRig rig;
  rig.Configure(RaceOptions(4));
  rig.HoldNextFrame();
  const IoVec src = rig.MakeBuffer(kPage, 9);
  const IoVec dst = rig.MakeBuffer(kPage, 0);
  int completions = 0;
  rig.rx_.PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion& c) {
                                                  ++completions;
                                                  EXPECT_EQ(c.seq, 1u);
                                                }});
  SimTime done = -1;
  const auto report = rig.Transmit(1, src, &done);

  // Same collision as stop-and-wait, through the SACK path: the entry timer
  // (armed at kWire) marks the entry kGiveUp, then the SACK train from the
  // late delivery — same instant, inserted later — overrides it to kAcked
  // before the owning coroutine consumes the verdict.
  EXPECT_EQ(done, kWire + kHold + kCtl);
  EXPECT_EQ(report.outcome, ReliableDelivery::TxOutcome::kDelivered);
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(rig.rel_.stats().giveups, 0u);
  EXPECT_EQ(rig.rel_.stats().timeouts, 0u);
  EXPECT_EQ(rig.rel_.stats().retransmits, 0u);
  EXPECT_EQ(rig.rel_.stats().acks, 1u);
  EXPECT_EQ(rig.rel_.stats().stale_acks, 0u);
}

// --- Watchdog cancellation racing the final ack, end to end ---------------
//
// The endpoint's watch callback is the code under test, so these runs go
// through the full two-node rig. A probe run (watchdog off) measures the
// transfer's exact schedule; the race run then aligns a watchdog scan with
// the measured ack instant. Scan events are inserted one period ahead, and
// the ack control cell one control-latency ahead — with the period below
// kCtl the ack is processed first, and the callback must report the already
// resolved transfer as completed, not cancel it.

struct ProbeTiming {
  SimTime watch_at = 0;  // when TransmitAndDispose registers its watch
  SimTime ack_at = 0;    // when the ack resolves the transfer
};

ReliableOptions E2eOptions() {
  ReliableOptions opts;
  opts.arq = true;
  opts.initial_timeout = 50 * kMillisecond;  // never fires
  opts.jitter_frac = 0.0;
  return opts;
}

// One kEmulatedCopy page transfer on a fresh rig; returns the receiver-side
// result. `timing` (optional) is filled from an attached trace.
InputResult RunE2eTransfer(const ReliableOptions& opts, ProbeTiming* timing,
                           Endpoint::Stats* tx_stats, ReliableDelivery::Stats* rel_stats) {
  Rig rig;
  rig.sender.EnableReliableDelivery(opts);
  TraceLog trace;
  if (timing != nullptr) {
    rig.sender.set_trace(&trace);
  }
  constexpr Vaddr kSrc = 0x20000000;
  constexpr Vaddr kDst = 0x30000000;
  rig.tx_app.CreateRegion(kSrc, 4 * kPage, RegionState::kUnmovable);
  rig.rx_app.CreateRegion(kDst, 4 * kPage);
  const auto payload = TestPattern(kPage, 7);
  GENIE_CHECK(rig.tx_app.Write(kSrc, payload) == AccessResult::kOk);
  const InputResult result = rig.Transfer(kSrc, kDst, kPage, Semantics::kEmulatedCopy);
  if (result.ok) {
    const auto got = rig.ReadBack(result.addr, kPage);
    GENIE_CHECK(std::memcmp(got.data(), payload.data(), kPage) == 0) << "payload corrupted";
  }
  if (timing != nullptr) {
    const SimTime hw_fixed = rig.sender.Cost(OpKind::kHardwareFixed, 0);
    for (const TraceLog::Event& e : trace.events()) {
      if (e.name.ends_with(".transmit")) {
        // The watch registers one fixed hardware delay after the transmit
        // span opens (device setup, before the reliable layer is entered).
        timing->watch_at = e.start + hw_fixed;
      } else if (e.name.ends_with(".ack_wait")) {
        timing->ack_at = e.end;
      }
    }
    rig.sender.set_trace(nullptr);
  }
  if (tx_stats != nullptr) {
    *tx_stats = rig.tx_ep.stats();
  }
  if (rel_stats != nullptr) {
    *rel_stats = rig.sender.reliable().stats();
  }
  rig.ExpectQuiescent();
  return result;
}

TEST(ReliableRaceRegressionTest, WatchdogScanRacingFinalAckCompletesOnce) {
  // Probe: measure when the watch registers and when the ack lands.
  ProbeTiming timing;
  const InputResult probe = RunE2eTransfer(E2eOptions(), &timing, nullptr, nullptr);
  ASSERT_TRUE(probe.ok);
  ASSERT_GT(timing.watch_at, 0);
  ASSERT_GT(timing.ack_at, timing.watch_at);
  const SimTime lead = timing.ack_at - timing.watch_at;

  // A scan period below the control-cell latency that divides the lead puts
  // one scan exactly on the ack instant, inserted after the ack event.
  SimTime period = 1;
  for (SimTime p = kCtl - 1; p >= 2; --p) {
    if (lead % p == 0) {
      period = p;
      break;
    }
  }

  // Race run: the deadline expires exactly at the ack instant. The ack is
  // processed first (earlier insertion), so the scan's callback sees a
  // resolved transfer and must return kCompleted — one delivery, no cancel.
  ReliableOptions race = E2eOptions();
  race.watchdog_timeout = lead;
  race.watchdog_period = period;
  Endpoint::Stats tx_stats;
  ReliableDelivery::Stats rel_stats;
  const InputResult result = RunE2eTransfer(race, nullptr, &tx_stats, &rel_stats);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.bytes, kPage);
  EXPECT_EQ(tx_stats.watchdog_cancels, 0u);
  EXPECT_EQ(tx_stats.failed_outputs, 0u);
  EXPECT_EQ(rel_stats.watchdog_cancels, 0u);
  EXPECT_EQ(rel_stats.giveups, 0u);
  EXPECT_EQ(rel_stats.acks, 1u);
  // The scan chain ran from the watch to the ack instant and then stopped —
  // evidence that the final scan really landed on the collision instant.
  EXPECT_EQ(rel_stats.watchdog_scans, static_cast<std::uint64_t>(lead / period));

  // Control run: one period earlier the same schedule is a genuine cancel
  // (the ack has not arrived yet), which pins the probe's timing model: if
  // the measured watch/ack instants drifted, this run would not cancel.
  ReliableOptions cancel = E2eOptions();
  cancel.watchdog_timeout = lead - period;
  cancel.watchdog_period = period;
  const InputResult cancelled = RunE2eTransfer(cancel, nullptr, &tx_stats, &rel_stats);
  // The frame itself arrived before the cancel; only the sender's bookkeeping
  // is cancelled, and the late ack is counted stale.
  EXPECT_TRUE(cancelled.ok);
  EXPECT_EQ(tx_stats.watchdog_cancels, 1u);
  EXPECT_EQ(tx_stats.failed_outputs, 1u);
  EXPECT_EQ(rel_stats.watchdog_cancels, 1u);
  EXPECT_EQ(rel_stats.giveups, 0u);
  EXPECT_EQ(rel_stats.stale_acks, 1u);
}

}  // namespace
}  // namespace genie
