#include "src/util/table.h"

#include <gtest/gtest.h>

namespace genie {
namespace {

TEST(TextTableTest, EmptyTablePrintsNothing) {
  TextTable t;
  EXPECT_EQ(t.ToString(), "");
}

TEST(TextTableTest, HeaderAndRow) {
  TextTable t;
  t.AddHeader({"name", "value"});
  t.AddRow({"x", "1"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| x"), std::string::npos);
  // Header separated from body by a rule line.
  EXPECT_NE(s.find("+-"), std::string::npos);
}

TEST(TextTableTest, ColumnsAlignToWidestCell) {
  TextTable t;
  t.AddHeader({"a", "b"});
  t.AddRow({"longer-cell", "1"});
  const std::string s = t.ToString();
  // All lines between rules have the same length.
  std::size_t line_len = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t eol = s.find('\n', pos);
    if (line_len == 0) {
      line_len = eol - pos;
    } else {
      EXPECT_EQ(eol - pos, line_len);
    }
    pos = eol + 1;
  }
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable t;
  t.AddHeader({"a", "b", "c"});
  t.AddRow({"only-one"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

TEST(TextTableTest, RuleBeforeRow) {
  TextTable t;
  t.AddHeader({"h"});
  t.AddRow({"1"});
  t.AddRule();
  t.AddRow({"2"});
  const std::string s = t.ToString();
  // Count rule lines: top, under header, before "2", bottom = 4.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = s.find("+-", pos)) != std::string::npos) {
    ++count;
    pos = s.find('\n', pos);
  }
  EXPECT_EQ(count, 4u);
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace genie
