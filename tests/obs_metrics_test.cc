// Metrics registry: counters, gauges, log-scale latency histograms, and the
// snapshot JSON view. Includes the histogram-vs-exact-percentile property
// test (deterministic seeds) and the bench-gate checks.
#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/gate.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace genie {
namespace {

// One bucket spans a quarter octave: upper/lower boundary ratio 2^(1/4).
constexpr double kBucketRatio = 1.1892071150027210667;

TEST(MetricsRegistryTest, CountersStartAtZeroAndAccumulate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.Counter("a"), 0u);
  reg.Add("a", 3);
  reg.Add("a", 4);
  EXPECT_EQ(reg.Counter("a"), 7u);
}

TEST(MetricsRegistryTest, CounterReferencesAreStable) {
  MetricsRegistry reg;
  std::uint64_t& a = reg.Counter("a");
  // Creating many more counters must not invalidate the first reference
  // (std::map storage).
  for (int i = 0; i < 100; ++i) {
    reg.Counter("x" + std::to_string(i)) = 1;
  }
  a = 42;
  EXPECT_EQ(reg.Counter("a"), 42u);
}

TEST(MetricsRegistryTest, GaugesSampleAtSnapshotTime) {
  MetricsRegistry reg;
  std::uint64_t live = 5;
  reg.RegisterGauge("g", [&live] { return live; });
  EXPECT_EQ(reg.Snapshot().Value("g"), 5u);
  live = 9;  // No re-registration needed: the callback reads current state.
  EXPECT_EQ(reg.Snapshot().Value("g"), 9u);
}

TEST(MetricsRegistryTest, RegisterGaugeReplacesOnRebind) {
  MetricsRegistry reg;
  reg.RegisterGauge("g", [] { return std::uint64_t{1}; });
  reg.RegisterGauge("g", [] { return std::uint64_t{2}; });
  EXPECT_EQ(reg.gauge_count(), 1u);
  EXPECT_EQ(reg.Snapshot().Value("g"), 2u);
}

TEST(MetricsRegistryTest, UnregisterByPrefixDropsOnlyMatching) {
  MetricsRegistry reg;
  reg.RegisterGauge("ep1.outputs", [] { return std::uint64_t{1}; });
  reg.RegisterGauge("ep1.inputs", [] { return std::uint64_t{2}; });
  reg.RegisterGauge("ep10.outputs", [] { return std::uint64_t{3}; });
  reg.RegisterGauge("mem.free", [] { return std::uint64_t{4}; });
  reg.UnregisterByPrefix("ep1.");
  EXPECT_EQ(reg.gauge_count(), 2u);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("ep1.outputs"), 0u);
  EXPECT_EQ(snap.Value("ep1.inputs"), 0u);
  // "ep10." does not match prefix "ep1." followed by the dot.
  EXPECT_EQ(snap.Value("ep10.outputs"), 3u);
  EXPECT_EQ(snap.Value("mem.free"), 4u);
}

TEST(MetricsRegistryTest, SnapshotOmitsZeroValuesAndEmptyHistograms) {
  MetricsRegistry reg;
  reg.Counter("zero");
  reg.Add("nonzero", 1);
  reg.RegisterGauge("gauge_zero", [] { return std::uint64_t{0}; });
  reg.Histogram("empty_hist");
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.values.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 0u);
  // Absent reads as zero — the gate treats missing and zero identically.
  EXPECT_EQ(snap.Value("zero"), 0u);
  EXPECT_EQ(snap.Value("never_registered"), 0u);
  EXPECT_EQ(snap.Value("nonzero"), 1u);
}

TEST(MetricsSnapshotTest, JsonIsFlatAndDeterministic) {
  MetricsRegistry reg;
  reg.Add("b.count", 2);
  reg.Add("a.count", 1);
  reg.Histogram("lat").Add(10.0);
  const std::string json = reg.Snapshot().ToJson();
  // Alphabetical member order regardless of insertion order.
  EXPECT_LT(json.find("\"a.count\": 1"), json.find("\"b.count\": 2"));
  EXPECT_NE(json.find("\"lat\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 10"), std::string::npos);
  // Byte-identical on re-capture.
  EXPECT_EQ(json, reg.Snapshot().ToJson());
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Quantile(50), 0.0);
  EXPECT_EQ(h.Quantile(0), 0.0);
  EXPECT_EQ(h.Quantile(100), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleIsReportedExactly) {
  LatencyHistogram h;
  h.Add(137.5);
  // Clamping to [min, max] collapses every quantile onto the one sample.
  EXPECT_EQ(h.Quantile(0), 137.5);
  EXPECT_EQ(h.Quantile(50), 137.5);
  EXPECT_EQ(h.Quantile(99), 137.5);
  EXPECT_EQ(h.Quantile(100), 137.5);
  EXPECT_EQ(h.min(), 137.5);
  EXPECT_EQ(h.max(), 137.5);
  EXPECT_EQ(h.sum(), 137.5);
}

TEST(LatencyHistogramTest, OverflowSamplesReportTrueMaximum) {
  LatencyHistogram h;
  const double top = LatencyHistogram::BucketUpperBound(LatencyHistogram::kBuckets - 2);
  const double huge = top * 1000.0;  // Far beyond the last finite boundary.
  EXPECT_EQ(LatencyHistogram::BucketIndex(huge), LatencyHistogram::kBuckets - 1);
  h.Add(1.0);
  h.Add(huge);
  EXPECT_EQ(h.count(), 2u);
  // p99 ranks into the overflow bucket; the clamp makes it the observed max
  // rather than an unbounded boundary.
  EXPECT_EQ(h.Quantile(99), huge);
  EXPECT_EQ(h.max(), huge);
}

TEST(LatencyHistogramTest, BoundariesAreStrictlyIncreasing) {
  for (std::size_t i = 1; i + 1 < LatencyHistogram::kBuckets; ++i) {
    EXPECT_LT(LatencyHistogram::BucketUpperBound(i - 1), LatencyHistogram::BucketUpperBound(i));
  }
  // Each boundary sits in its own bucket (boundaries are inclusive upper
  // bounds), so BucketIndex inverts BucketUpperBound.
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(LatencyHistogram::BucketUpperBound(i)), i);
  }
}

TEST(LatencyHistogramTest, QuantileOrderIsInsensitive) {
  // Same multiset inserted in opposite orders -> identical quantiles.
  std::vector<double> xs;
  SplitMix64 rng(7);
  for (int i = 0; i < 200; ++i) {
    xs.push_back(1.0 + 5000.0 * rng.NextDouble());
  }
  LatencyHistogram fwd;
  LatencyHistogram rev;
  for (const double x : xs) {
    fwd.Add(x);
  }
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
    rev.Add(*it);
  }
  for (const double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(fwd.Quantile(p), rev.Quantile(p)) << "p=" << p;
  }
}

// Property test (satellite): against the exact linear-interpolation
// Percentile from util/stats.h, the histogram quantile must land within one
// bucket width. Log-uniform samples over three decades keep adjacent order
// statistics well inside a quarter octave, so the comparison is tight; the
// seeds are fixed, so the test is deterministic.
TEST(LatencyHistogramTest, QuantilesTrackExactPercentilesWithinOneBucket) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SplitMix64 rng(seed);
    LatencyHistogram h;
    std::vector<double> xs;
    for (int i = 0; i < 2000; ++i) {
      // Log-uniform over [1, 1000] us.
      const double v = std::pow(10.0, 3.0 * rng.NextDouble());
      xs.push_back(v);
      h.Add(v);
    }
    for (const double p : {1.0, 5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
      const double exact = Percentile(xs, p);
      const double approx = h.Quantile(p);
      EXPECT_LE(approx, exact * kBucketRatio)
          << "seed=" << seed << " p=" << p << " exact=" << exact;
      EXPECT_GE(approx, exact / kBucketRatio)
          << "seed=" << seed << " p=" << p << " exact=" << exact;
    }
  }
}

TEST(GateTest, ExactMetricsPassAndFail) {
  MetricsRegistry reg;
  reg.Add("ep1.op.copyin.count", 16);
  reg.Add("ep1.op.reference.count", 3);
  const MetricsSnapshot snap = reg.Snapshot();

  const MetricExpectation good[] = {
      {"ep1.op.copyin.count", 16},
      {"ep1.op.reference.count", 3},
      {"ep1.op.swap.count", 0},  // absent == 0
  };
  EXPECT_TRUE(CheckExactMetrics(snap, good).ok());

  const MetricExpectation bad[] = {
      {"ep1.op.copyin.count", 15},
      {"ep1.op.reference.count", 3},
      {"ep1.op.swap.count", 2},
  };
  const GateResult result = CheckExactMetrics(snap, bad);
  EXPECT_FALSE(result.ok());
  // Every violation is reported, not just the first.
  EXPECT_EQ(result.failures.size(), 2u);
  EXPECT_NE(result.ToString().find("ep1.op.copyin.count"), std::string::npos);
  EXPECT_NE(result.ToString().find("expected 15, got 16"), std::string::npos);
}

TEST(GateTest, ThroughputFloor) {
  EXPECT_TRUE(CheckThroughputFloor("memcpy", 1000.0, 50.0).ok());
  EXPECT_FALSE(CheckThroughputFloor("memcpy", 10.0, 50.0).ok());
  // NaN must fail, not silently pass (the check is !(x >= floor)).
  EXPECT_FALSE(CheckThroughputFloor("memcpy", std::nan(""), 50.0).ok());
}

}  // namespace
}  // namespace genie
