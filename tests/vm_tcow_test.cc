// TCOW (transient output copy-on-write, paper Section 5.1) behavior tests:
// write-protect at output, copy on write-during-output, plain re-enable on
// write-after-output, and deferred reclamation of the displaced page.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/vm/address_space.h"
#include "src/vm/io_ref.h"
#include "src/vm/vm.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kBase = 0x10000000;

std::vector<std::byte> Fill(std::size_t n, unsigned char v) {
  return std::vector<std::byte>(n, static_cast<std::byte>(v));
}

class TcowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    as_.CreateRegion(kBase, 4 * kPage);
    ASSERT_EQ(as_.Write(kBase, Fill(4 * kPage, 0xAB)), AccessResult::kOk);
  }

  // Emulated-copy output prepare: reference pages + remove write permission.
  void PrepareOutput(Vaddr va, std::uint64_t len) {
    ASSERT_EQ(ReferenceRange(as_, va, len, IoDirection::kOutput, &ref_), AccessResult::kOk);
    as_.RemoveWrite(va, len);
  }

  void DisposeOutput() { Unreference(vm_, ref_); }

  Vm vm_{64, kPage};
  AddressSpace as_{vm_, "app"};
  IoReference ref_;
};

TEST_F(TcowTest, WriteDuringOutputCopiesPage) {
  PrepareOutput(kBase, kPage);
  const FrameId device_frame = ref_.iovec.segments[0].frame;

  // Application overwrites the output buffer mid-output.
  ASSERT_EQ(as_.Write(kBase, Fill(16, 0xCD)), AccessResult::kOk);
  EXPECT_EQ(as_.counters().tcow_copies, 1u);

  // The device still sees the original data in the original frame.
  EXPECT_EQ(static_cast<unsigned char>(vm_.pm().Data(device_frame)[0]), 0xAB);

  // The application sees its new data (in a different frame).
  std::vector<std::byte> out(16);
  ASSERT_EQ(as_.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xCD);
  EXPECT_NE(as_.FindPte(kBase)->frame, device_frame);

  DisposeOutput();
}

TEST_F(TcowTest, WriteAfterOutputJustReenables) {
  PrepareOutput(kBase, kPage);
  const FrameId frame = ref_.iovec.segments[0].frame;
  DisposeOutput();  // Output completes before the application writes.

  ASSERT_EQ(as_.Write(kBase, Fill(16, 0xCD)), AccessResult::kOk);
  EXPECT_EQ(as_.counters().tcow_copies, 0u);
  EXPECT_EQ(as_.counters().tcow_reenables, 1u);
  // Same frame, now writable again: no copy was made.
  EXPECT_EQ(as_.FindPte(kBase)->frame, frame);
  EXPECT_EQ(static_cast<unsigned char>(vm_.pm().Data(frame)[0]), 0xCD);
}

TEST_F(TcowTest, DisplacedPageReclaimedWhenOutputCompletes) {
  PrepareOutput(kBase, kPage);
  const FrameId device_frame = ref_.iovec.segments[0].frame;
  ASSERT_EQ(as_.Write(kBase, Fill(16, 0xCD)), AccessResult::kOk);

  // The displaced frame is a zombie: owned by no object, alive only for the
  // pending output.
  EXPECT_EQ(vm_.pm().info(device_frame).owner_object, kNoOwner);
  EXPECT_EQ(vm_.pm().zombie_frames(), 1u);

  DisposeOutput();
  EXPECT_EQ(vm_.pm().zombie_frames(), 0u);  // Reclaimed at unreference.
}

TEST_F(TcowTest, TcowIsPageGranular) {
  // Writing one page of a four-page output buffer copies only that page.
  PrepareOutput(kBase, 4 * kPage);
  ASSERT_EQ(as_.Write(kBase + 2 * kPage, Fill(16, 0xCD)), AccessResult::kOk);
  EXPECT_EQ(as_.counters().tcow_copies, 1u);

  // Untouched pages still map the device frames.
  EXPECT_EQ(as_.FindPte(kBase)->frame, ref_.frames[0]);
  EXPECT_EQ(as_.FindPte(kBase + 3 * kPage)->frame, ref_.frames[3]);
  // The written page does not.
  EXPECT_NE(as_.FindPte(kBase + 2 * kPage)->frame, ref_.frames[2]);
  DisposeOutput();
}

TEST_F(TcowTest, ReadDuringOutputNeedsNoFaultAndNoCopy) {
  PrepareOutput(kBase, kPage);
  const auto faults_before = as_.counters().faults;
  std::vector<std::byte> out(kPage);
  ASSERT_EQ(as_.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xAB);
  EXPECT_EQ(as_.counters().tcow_copies, 0u);
  EXPECT_EQ(as_.counters().faults, faults_before);  // Read permission kept.
  DisposeOutput();
}

TEST_F(TcowTest, TwoOutputsOnSamePageBothProtected) {
  PrepareOutput(kBase, kPage);
  IoReference second;
  ASSERT_EQ(ReferenceRange(as_, kBase, kPage, IoDirection::kOutput, &second),
            AccessResult::kOk);
  as_.RemoveWrite(kBase, kPage);
  const FrameId frame = ref_.iovec.segments[0].frame;
  EXPECT_EQ(vm_.pm().info(frame).output_refs, 2);

  // Write during both outputs: one copy; both references still see original.
  ASSERT_EQ(as_.Write(kBase, Fill(16, 0xCD)), AccessResult::kOk);
  EXPECT_EQ(as_.counters().tcow_copies, 1u);
  EXPECT_EQ(static_cast<unsigned char>(vm_.pm().Data(frame)[0]), 0xAB);

  Unreference(vm_, second);
  DisposeOutput();
  EXPECT_EQ(vm_.pm().zombie_frames(), 0u);
}

TEST_F(TcowTest, SecondWriteAfterTcowCopyIsFree) {
  PrepareOutput(kBase, kPage);
  ASSERT_EQ(as_.Write(kBase, Fill(16, 0xCD)), AccessResult::kOk);
  const auto faults_before = as_.counters().faults;
  // The copied page is mapped writable: no further faults.
  ASSERT_EQ(as_.Write(kBase + 16, Fill(16, 0xEF)), AccessResult::kOk);
  EXPECT_EQ(as_.counters().faults, faults_before);
  DisposeOutput();
}

// Unlike the busy-marking alternative (paper Section 2.3 / [1]), TCOW never
// stalls the writer: the write completes immediately on the private copy.
TEST_F(TcowTest, WriterNeverStalls) {
  PrepareOutput(kBase, kPage);
  // In this simulation a stall would deadlock (no one completes the output
  // while the app holds control), so mere completion demonstrates no-stall.
  ASSERT_EQ(as_.Write(kBase, Fill(kPage, 0xCD)), AccessResult::kOk);
  DisposeOutput();
}

// --- Software TLB coherence ---
//
// Read/Write serve translations from a direct-mapped TLB in front of the
// page-table hash. Every protection downgrade or frame retarget must kill
// the cached entry, or the MMU would grant access the page table revoked.

TEST_F(TcowTest, WarmTlbDoesNotBypassRemoveWrite) {
  // SetUp's Write left a writable translation cached. The output prepare's
  // RemoveWrite must invalidate it, so the next write TCOW-faults instead
  // of storing into the frame the device is reading.
  ASSERT_EQ(as_.Write(kBase, Fill(16, 0x11)), AccessResult::kOk);  // re-warm
  PrepareOutput(kBase, kPage);
  const FrameId device_frame = ref_.frames[0];
  ASSERT_EQ(as_.Write(kBase, Fill(16, 0xCD)), AccessResult::kOk);
  EXPECT_EQ(as_.counters().tcow_copies, 1u);
  EXPECT_EQ(static_cast<unsigned char>(vm_.pm().Data(device_frame)[0]), 0x11);
}

TEST_F(TcowTest, WarmTlbDoesNotReadStaleFrameAfterIoRetarget) {
  // Warm the read translation, then let an in-place input TCOW-copy the
  // page (pending output) and retarget the PTE to the copy. A later read
  // must see the device's store in the NEW frame, not cached stale bytes.
  std::vector<std::byte> out(16);
  ASSERT_EQ(as_.Read(kBase, out), AccessResult::kOk);
  PrepareOutput(kBase, kPage);
  IoReference in_ref;
  ASSERT_EQ(ReferenceRange(as_, kBase, kPage, IoDirection::kInput, &in_ref),
            AccessResult::kOk);
  const FrameId new_frame = in_ref.frames[0];
  ASSERT_NE(new_frame, ref_.frames[0]);
  vm_.pm().Data(new_frame)[0] = std::byte{0x77};  // DMA store.
  ASSERT_EQ(as_.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0x77);
  Unreference(vm_, in_ref);
  DisposeOutput();
}

TEST_F(TcowTest, WarmTlbDoesNotBypassRemoveAll) {
  // Region hiding (emulated move): RemoveAll + moved-out state must make
  // every access fault unrecoverably, even with a hot translation.
  ASSERT_EQ(as_.Write(kBase, Fill(16, 0x11)), AccessResult::kOk);
  as_.RemoveAll(kBase, 4 * kPage);
  Region* region = as_.RegionAt(kBase);
  ASSERT_NE(region, nullptr);
  region->state = RegionState::kMovedOut;
  std::vector<std::byte> out(16);
  EXPECT_EQ(as_.Read(kBase, out), AccessResult::kUnrecoverableFault);
  EXPECT_EQ(as_.Write(kBase, Fill(16, 0xCD)), AccessResult::kUnrecoverableFault);
  // Reinstate (region recycled back to the application) restores access.
  region->state = RegionState::kMovedIn;
  as_.Reinstate(kBase, 4 * kPage);
  ASSERT_EQ(as_.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0x11);
}

TEST_F(TcowTest, TlbServesRepeatedAccesses) {
  std::vector<std::byte> out(64);
  ASSERT_EQ(as_.Read(kBase, out), AccessResult::kOk);
  const auto hits_before = as_.counters().tlb_hits;
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(as_.Read(kBase, out), AccessResult::kOk);
  }
  EXPECT_GE(as_.counters().tlb_hits, hits_before + 8);
}

TEST_F(TcowTest, OutputFromUnmappedBufferFaultsInViaReference) {
  // Output from a region never touched: reference faults pages in (verifying
  // read access), then protects them.
  Vm vm(16, kPage);
  AddressSpace as(vm, "app");
  as.CreateRegion(kBase, kPage);
  IoReference ref;
  ASSERT_EQ(ReferenceRange(as, kBase, kPage, IoDirection::kOutput, &ref), AccessResult::kOk);
  EXPECT_EQ(ref.iovec.total_bytes(), kPage);
  Unreference(vm, ref);
}

}  // namespace
}  // namespace genie
