// Randomized stress for the reliable delivery layer: the full fault site set
// (minus short transfers, which are a transport-checksum concern, not a
// link-recovery one) is injected under ARQ + semantics fallback + transfer
// watchdogs. Lost, duplicated, reordered and corrupted frames must all
// converge to exactly-once host delivery: every completed transfer matches
// the golden payload byte-for-byte, every failed transfer unwinds completely,
// and whole-VM invariants hold mid-flight and quiescently.
//
// Replay one seed with
//   GENIE_RELIABLE_SEED=<seed> ./reliable_stress_test
// Run the sweep under a selective-repeat window (both peers) with
//   GENIE_RELIABLE_WINDOW=<w> ./reliable_stress_test   (default 1, stop-and-wait)
#include <array>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "src/obs/flight_recorder.h"
#include "tests/fault_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrcBase = 0x20000000;
constexpr Vaddr kDstBase = 0x30000000;
constexpr int kTransfersPerSeed = 6;
constexpr std::uint64_t kFirstSeed = 7000;
constexpr int kSeedCount = 200;  // 200 seeds x 6 transfers = 1200 interleavings

struct IterationOutcome {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t injected = 0;
  int ok_transfers = 0;
  int failed_transfers = 0;
  int skipped_fills = 0;
  int skipped_verifies = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t watchdog_cancels = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::vector<std::string> violations;
};

// Everything except kDeviceShortTransfer: a passed-CRC truncation is
// indistinguishable from a legitimate short datagram at the link layer, so
// ARQ rightly acks it — recovery belongs to the transport checksum
// (genie_checksum_test), not to this harness's byte-exactness assertions.
constexpr FaultSite kReliableSitePool[] = {
    FaultSite::kFrameAllocate,  FaultSite::kFrameAllocateRun, FaultSite::kBackingWrite,
    FaultSite::kBackingRead,    FaultSite::kDeviceError,      FaultSite::kDeviceDelay,
    FaultSite::kPageoutPressure, FaultSite::kLinkDrop,        FaultSite::kLinkDuplicate,
    FaultSite::kLinkReorder,
};

FaultRule RandomRule(SplitMix64& rng) {
  FaultRule rule;
  rule.site = kReliableSitePool[rng.Below(std::size(kReliableSitePool))];
  if (rng.Chance(0.6)) {
    rule.nth = 1 + rng.Below(6);
  } else {
    rule.probability = 0.02 + 0.13 * rng.NextDouble();
  }
  if (rng.Chance(0.3)) {
    rule.window_begin = MicrosToSimTime(static_cast<double>(rng.Below(300)));
    rule.window_end = rule.window_begin + MicrosToSimTime(static_cast<double>(50 + rng.Below(200)));
  }
  rule.max_fires = 1 + rng.Below(3);
  switch (rule.site) {
    case FaultSite::kDeviceDelay:
      rule.arg = rng.Range(1000, 150000);  // extra ns
      break;
    case FaultSite::kPageoutPressure:
      rule.arg = 1 + rng.Below(3);  // frames per tick
      break;
    case FaultSite::kLinkReorder:
      rule.arg = rng.Range(5000, 80000);  // hold time ns
      break;
    default:
      break;
  }
  return rule;
}

// Selective-repeat window applied to every rig in this binary; CI runs the
// sweep at {1, 16} so both the stop-and-wait degenerate case and a deep
// pipeline face the same fault schedules.
std::uint32_t StressWindow() {
  static const std::uint32_t window = [] {
    if (const char* env = std::getenv("GENIE_RELIABLE_WINDOW"); env != nullptr) {
      const unsigned long v = std::strtoul(env, nullptr, 0);
      if (v > 0) {
        return static_cast<std::uint32_t>(v);
      }
    }
    return 1u;
  }();
  return window;
}

ReliableOptions StressReliableOptions(std::uint64_t seed) {
  ReliableOptions opts;
  opts.arq = true;
  opts.window = StressWindow();
  opts.seed = seed ^ 0xa5c3a5c3a5c3a5c3ULL;
  // Generous relative to the worst-case backoff ladder (~160 ms with the
  // defaults): the watchdog must only catch genuinely stuck transfers, never
  // one the ARQ is still legitimately recovering.
  opts.watchdog_timeout = 400 * kMillisecond;
  return opts;
}

IterationOutcome RunIteration(std::uint64_t seed) {
  IterationOutcome out;
  SplitMix64 rng(seed ^ 0x4e11ab1e4e11ab1eULL);

  const auto buffering = static_cast<InputBuffering>(rng.Below(3));
  GenieOptions options;
  options.checksum_mode = static_cast<ChecksumMode>(rng.Below(3));
  options.enable_semantics_fallback = true;
  FaultRig rig(seed, buffering, options, /*mem_frames=*/384);
  rig.sender.EnableReliableDelivery(StressReliableOptions(seed));
  rig.receiver.EnableReliableDelivery(StressReliableOptions(seed ^ 1));

  // Flight recorder over both nodes: dumps the trace ring on any invariant
  // violation and on every watchdog cancel (a cancelled transfer is exactly
  // the situation the last-N-events ring exists to explain). Recording adds
  // no events and no RNG draws; the digest-replay test stays bit-identical.
  TraceLog flight_trace;
  rig.sender.set_trace(&flight_trace);
  rig.receiver.set_trace(&flight_trace);
  FlightRecorder::Config recorder_cfg;
  recorder_cfg.capacity = 512;
  recorder_cfg.seed = seed;
  FlightRecorder recorder("seed" + std::to_string(seed), &flight_trace,
                          &rig.sender.metrics(), recorder_cfg);
  VmInvariants::SetViolationHook([&recorder](const InvariantReport& report) {
    const std::string path = recorder.DumpToFile("invariant violation: " +
                                                 report.violations.front());
    if (!path.empty()) {
      std::printf("[reliable-stress] flight recorder dump: %s\n", path.c_str());
    }
  });
  const auto dump_on_cancel = [&recorder](const std::string& label) {
    const std::string path = recorder.DumpToFile("watchdog cancel: " + label);
    if (!path.empty()) {
      std::printf("[reliable-stress] flight recorder dump: %s\n", path.c_str());
    }
  };
  rig.sender.reliable().set_cancel_hook(dump_on_cancel);
  rig.receiver.reliable().set_cancel_hook(dump_on_cancel);

  const std::size_t num_rules = 1 + rng.Below(3);
  for (std::size_t i = 0; i < num_rules; ++i) {
    rig.plan.AddRule(RandomRule(rng));
  }

  for (int t = 0; t < kTransfersPerSeed; ++t) {
    const Semantics sem = kAllSemantics[rng.Below(kAllSemantics.size())];
    const std::uint64_t len = 1 + rng.Below(5 * kPage);
    const Vaddr src_region = kSrcBase + static_cast<Vaddr>(t) * 8 * kPage;
    const Vaddr dst_region = kDstBase + static_cast<Vaddr>(t) * 8 * kPage;
    rig.tx_app.CreateRegion(src_region, 8 * kPage,
                            IsSystemAllocated(sem) ? RegionState::kMovedIn
                                                   : RegionState::kUnmovable);
    const Vaddr src =
        IsSystemAllocated(sem) ? src_region : src_region + rng.Below(kPage);
    Vaddr dst = 0;
    if (IsApplicationAllocated(sem)) {
      rig.rx_app.CreateRegion(dst_region, 8 * kPage);
      dst = dst_region + rng.Below(kPage);
    }

    const auto payload = TestPattern(static_cast<std::size_t>(len),
                                     static_cast<unsigned char>(seed + t));
    if (rig.tx_app.Write(src, payload) != AccessResult::kOk) {
      ++out.skipped_fills;
      continue;
    }

    const SimTime window_end = rig.engine.now() + MicrosToSimTime(400);
    SchedulePageoutPressure(rig.engine, rig.sender.pageout(), rig.plan,
                            MicrosToSimTime(17), window_end);
    SchedulePageoutPressure(rig.engine, rig.receiver.pageout(), rig.plan,
                            MicrosToSimTime(23), window_end);
    ScheduleInvariantSweep(rig.engine, rig.sender.vm(), rig.tx_app, MicrosToSimTime(31),
                           window_end, &out.violations);
    ScheduleInvariantSweep(rig.engine, rig.receiver.vm(), rig.rx_app, MicrosToSimTime(37),
                           window_end, &out.violations);

    // Unlike the ARQ-off harness, no flush datagrams are ever needed: the
    // retransmit path or the transfer watchdog completes every input, so a
    // transfer that stays stuck after Engine::Run drains is a real bug.
    InputResult result;
    bool done = false;
    auto input_driver = [](Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t n,
                           Semantics s, InputResult* res, bool* flag) -> Task<void> {
      if (IsSystemAllocated(s)) {
        *res = co_await ep.InputSystemAllocated(app, n, s);
      } else {
        *res = co_await ep.Input(app, va, n, s);
      }
      *flag = true;
    };
    std::move(input_driver(rig.rx_ep, rig.rx_app, dst, len, sem, &result, &done)).Detach();
    std::move(rig.tx_ep.Output(rig.tx_app, src, len, sem)).Detach();
    rig.engine.Run();
    GENIE_CHECK(done) << "seed " << seed << " transfer " << t
                      << ": input never completed despite ARQ + watchdog";

    if (result.ok) {
      ++out.ok_transfers;
      const std::uint64_t delivered = result.bytes;
      if (delivered > len) {
        std::ostringstream msg;
        msg << "seed " << seed << " transfer " << t << ": delivered " << delivered
            << " > sent " << len;
        out.violations.push_back(msg.str());
      } else if (delivered > 0) {
        const auto got = rig.TryReadBack(result.addr, delivered);
        if (!got.has_value()) {
          ++out.skipped_verifies;
        } else if (std::memcmp(got->data(), payload.data(),
                               static_cast<std::size_t>(delivered)) != 0) {
          std::ostringstream msg;
          msg << "seed " << seed << " transfer " << t << " (" << SemanticsName(sem)
              << ", len " << len << "): payload mismatch in first " << delivered << " bytes";
          out.violations.push_back(msg.str());
        }
      }
    } else {
      ++out.failed_transfers;
    }

    const InvariantReport mid = rig.CheckInvariants(/*expect_quiescent=*/false);
    for (const std::string& v : mid.violations) {
      out.violations.push_back("seed " + std::to_string(seed) + " transfer " +
                               std::to_string(t) + ": " + v);
    }
  }

  rig.plan.Clear();
  if (rig.tx_ep.pending_operations() != 0 || rig.rx_ep.pending_operations() != 0) {
    out.violations.push_back("seed " + std::to_string(seed) +
                             ": pending operations leaked past the iteration");
  }
  const InvariantReport final_report = rig.CheckInvariants(/*expect_quiescent=*/true);
  for (const std::string& v : final_report.violations) {
    out.violations.push_back("seed " + std::to_string(seed) + " quiescent: " + v);
  }

  VmInvariants::SetViolationHook(nullptr);
  rig.sender.reliable().set_cancel_hook(nullptr);
  rig.receiver.reliable().set_cancel_hook(nullptr);
  if (!out.violations.empty() && recorder.dumps_written() == 0) {
    const std::string path = recorder.DumpToFile(out.violations.front());
    if (!path.empty()) {
      std::printf("[reliable-stress] flight recorder dump: %s\n", path.c_str());
    }
  }
  rig.sender.set_trace(nullptr);
  rig.receiver.set_trace(nullptr);

  out.digest = rig.engine.event_digest();
  out.events = rig.engine.events_executed();
  out.injected = rig.plan.total_injected();
  const ReliableDelivery::Stats& tx_rel = rig.sender.reliable().stats();
  const ReliableDelivery::Stats& rx_rel = rig.receiver.reliable().stats();
  out.retransmits = tx_rel.retransmits + rx_rel.retransmits;
  out.fallbacks = tx_rel.fallbacks + rx_rel.fallbacks;
  out.watchdog_cancels = tx_rel.watchdog_cancels + rx_rel.watchdog_cancels;
  out.duplicates_suppressed =
      rig.sender.adapter().rx_duplicate_frames() + rig.receiver.adapter().rx_duplicate_frames();
  return out;
}

TEST(ReliableStressTest, SeededFaultSweepsDeliverExactlyOnce) {
  std::uint64_t first = kFirstSeed;
  int count = kSeedCount;
  if (const char* env = std::getenv("GENIE_RELIABLE_SEED"); env != nullptr) {
    first = std::strtoull(env, nullptr, 0);
    count = 1;
    std::printf("[reliable-stress] replaying single seed %llu\n",
                static_cast<unsigned long long>(first));
  }

  std::uint64_t total_injected = 0;
  std::uint64_t total_retransmits = 0;
  std::uint64_t total_fallbacks = 0;
  std::uint64_t total_dups = 0;
  std::uint64_t total_watchdog_cancels = 0;
  int total_ok = 0;
  int total_failed = 0;
  int total_skipped = 0;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = first + static_cast<std::uint64_t>(i);
    const IterationOutcome out = RunIteration(seed);
    ASSERT_TRUE(out.violations.empty())
        << "replay with GENIE_RELIABLE_SEED=" << seed << "\n"
        << [&] {
             std::ostringstream all;
             for (const std::string& v : out.violations) {
               all << "  " << v << "\n";
             }
             return all.str();
           }();
    total_injected += out.injected;
    total_retransmits += out.retransmits;
    total_fallbacks += out.fallbacks;
    total_dups += out.duplicates_suppressed;
    total_watchdog_cancels += out.watchdog_cancels;
    total_ok += out.ok_transfers;
    total_failed += out.failed_transfers;
    total_skipped += out.skipped_fills + out.skipped_verifies;
  }
  std::printf(
      "[reliable-stress] window=%u seeds=%d ok=%d failed=%d skipped=%d injected=%llu "
      "retransmits=%llu fallbacks=%llu dups_suppressed=%llu watchdog_cancels=%llu\n",
      StressWindow(), count, total_ok, total_failed, total_skipped,
      static_cast<unsigned long long>(total_injected),
      static_cast<unsigned long long>(total_retransmits),
      static_cast<unsigned long long>(total_fallbacks),
      static_cast<unsigned long long>(total_dups),
      static_cast<unsigned long long>(total_watchdog_cancels));

  if (count > 1) {
    // The sweep must exercise the recovery machinery, not just survive it:
    // faults were injected, frames were retransmitted, semantics degraded,
    // and wire-level duplicates were absorbed.
    EXPECT_GT(total_injected, 0u);
    EXPECT_GT(total_retransmits, 0u);
    EXPECT_GT(total_fallbacks, 0u);
    EXPECT_GT(total_dups, 0u);
    EXPECT_GT(total_ok, 0);
  }
}

// The acceptance scenario: a sustained 10% frame-loss wire with duplicates
// and one delayed completion. Every transfer must still be delivered exactly
// once with golden bytes — loss at this rate is fully absorbed by ARQ (the
// odds of exhausting 8 retries are 1e-9 per transfer).
TEST(ReliableStressTest, TenPercentLossDeliversEveryTransfer) {
  constexpr int kTransfers = 40;
  SplitMix64 rng(0x10553);

  GenieOptions options;
  options.enable_semantics_fallback = true;
  FaultRig rig(/*seed=*/0x10553, InputBuffering::kEarlyDemux, options, /*mem_frames=*/384);
  rig.sender.EnableReliableDelivery(StressReliableOptions(0x10553));
  rig.receiver.EnableReliableDelivery(StressReliableOptions(0x10554));

  FaultRule drop;
  drop.site = FaultSite::kLinkDrop;
  drop.probability = 0.10;
  rig.plan.AddRule(drop);
  FaultRule dup;
  dup.site = FaultSite::kLinkDuplicate;
  dup.probability = 0.05;
  rig.plan.AddRule(dup);
  FaultRule delay;
  delay.site = FaultSite::kDeviceDelay;
  delay.nth = 3;
  delay.max_fires = 1;
  delay.arg = 120000;  // one completion interrupt held off 120 us
  rig.plan.AddRule(delay);

  std::vector<std::string> violations;
  for (int t = 0; t < kTransfers; ++t) {
    const Semantics sem = kAllSemantics[rng.Below(kAllSemantics.size())];
    const std::uint64_t len = 1 + rng.Below(4 * kPage);
    const Vaddr src_region = kSrcBase + static_cast<Vaddr>(t) * 8 * kPage;
    const Vaddr dst_region = kDstBase + static_cast<Vaddr>(t) * 8 * kPage;
    rig.tx_app.CreateRegion(src_region, 8 * kPage,
                            IsSystemAllocated(sem) ? RegionState::kMovedIn
                                                   : RegionState::kUnmovable);
    Vaddr dst = 0;
    if (IsApplicationAllocated(sem)) {
      rig.rx_app.CreateRegion(dst_region, 8 * kPage);
      dst = dst_region;
    }
    const auto payload = TestPattern(static_cast<std::size_t>(len),
                                     static_cast<unsigned char>(41 + t));
    ASSERT_EQ(rig.tx_app.Write(src_region, payload), AccessResult::kOk);

    ScheduleInvariantSweep(rig.engine, rig.sender.vm(), rig.tx_app, MicrosToSimTime(31),
                           rig.engine.now() + MicrosToSimTime(400), &violations);
    ScheduleInvariantSweep(rig.engine, rig.receiver.vm(), rig.rx_app, MicrosToSimTime(37),
                           rig.engine.now() + MicrosToSimTime(400), &violations);

    // Driven directly (not via DriveTransfer, whose stuck-input fallback
    // would silently Clear() the loss rules): ARQ must complete every
    // transfer on its own.
    InputResult result;
    bool done = false;
    auto input_driver = [](Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t n,
                           Semantics s, InputResult* res, bool* flag) -> Task<void> {
      if (IsSystemAllocated(s)) {
        *res = co_await ep.InputSystemAllocated(app, n, s);
      } else {
        *res = co_await ep.Input(app, va, n, s);
      }
      *flag = true;
    };
    std::move(input_driver(rig.rx_ep, rig.rx_app, dst, len, sem, &result, &done)).Detach();
    std::move(rig.tx_ep.Output(rig.tx_app, src_region, len, sem)).Detach();
    rig.engine.Run();
    ASSERT_TRUE(done) << "transfer " << t << " stuck under 10% loss";
    ASSERT_TRUE(result.ok) << "transfer " << t << " (" << SemanticsName(sem)
                           << ") failed under 10% loss";
    ASSERT_EQ(result.bytes, len) << "transfer " << t << " delivered short";
    const auto got = rig.TryReadBack(result.addr, len);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(std::memcmp(got->data(), payload.data(), static_cast<std::size_t>(len)), 0)
        << "transfer " << t << " (" << SemanticsName(sem) << "): payload mismatch";
  }
  EXPECT_TRUE(violations.empty()) << violations.size() << " invariant violations";
  rig.ExpectQuiescent();
  const InvariantReport final_report = rig.CheckInvariants(/*expect_quiescent=*/true);
  EXPECT_TRUE(final_report.violations.empty());

  // The loss rate guarantees recovery work happened, and the metrics registry
  // exposes it (the observability contract for the reliable layer).
  const MetricsSnapshot snap = rig.sender.metrics().Snapshot();
  EXPECT_GT(snap.Value("reliable.retransmits"), 0u);
  EXPECT_GT(snap.Value("reliable.sequenced_frames"), 0u);
  EXPECT_GT(snap.Value("nic.link_frames_dropped"), 0u);
  EXPECT_EQ(snap.Value("reliable.giveups"), 0u);
  EXPECT_GT(rig.receiver.adapter().rx_duplicate_frames() +
                rig.sender.adapter().rx_duplicate_frames(),
            0u);
  std::printf(
      "[reliable-stress] 10%%-loss soak: window=%u, %d transfers, %llu drops, "
      "%llu retransmits, %llu dups suppressed\n",
      StressWindow(), kTransfers,
      static_cast<unsigned long long>(rig.sender.adapter().link_frames_dropped()),
      static_cast<unsigned long long>(snap.Value("reliable.retransmits")),
      static_cast<unsigned long long>(rig.receiver.adapter().rx_duplicate_frames()));
}

// Pipelined soak: bursts of concurrent transfers share one deep
// selective-repeat window (16) over a 10%-loss + 5%-duplicate wire. This is
// the configuration where admission stalls, out-of-order SACK holes, and
// per-entry retransmit timers all interleave; every transfer must still land
// exactly once with golden bytes and zero giveups. Runs at window 16
// regardless of GENIE_RELIABLE_WINDOW so the deep pipeline is always covered.
TEST(ReliableStressTest, WindowedLossSoakPipelinesConcurrentBursts) {
  constexpr int kRounds = 6;
  constexpr int kBurst = 4;
  SplitMix64 rng(0x51d0);

  GenieOptions options;
  options.enable_semantics_fallback = true;
  FaultRig rig(/*seed=*/0x16161616, InputBuffering::kEarlyDemux, options,
               /*mem_frames=*/384);
  ReliableOptions tx_opts = StressReliableOptions(0x16161616);
  tx_opts.window = 16;
  ReliableOptions rx_opts = StressReliableOptions(0x16161617);
  rx_opts.window = 16;
  rig.sender.EnableReliableDelivery(tx_opts);
  rig.receiver.EnableReliableDelivery(rx_opts);

  FaultRule drop;
  drop.site = FaultSite::kLinkDrop;
  drop.probability = 0.10;
  rig.plan.AddRule(drop);
  FaultRule dup;
  dup.site = FaultSite::kLinkDuplicate;
  dup.probability = 0.05;
  rig.plan.AddRule(dup);

  auto input_driver = [](Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t n,
                         Semantics s, InputResult* res, bool* flag) -> Task<void> {
    *res = co_await ep.Input(app, va, n, s);
    *flag = true;
  };
  for (int round = 0; round < kRounds; ++round) {
    std::array<InputResult, kBurst> results;
    std::array<bool, kBurst> done{};
    std::array<std::vector<std::byte>, kBurst> payloads;
    std::array<std::uint64_t, kBurst> lens;
    // One length per round: posted receives are a FIFO mailbox, so with a
    // deep window reordering arrivals across transfers, a datagram can land
    // in any concurrently-posted buffer — the buffers must all fit it.
    const std::uint64_t round_len = 1 + rng.Below(3 * kPage);
    for (int i = 0; i < kBurst; ++i) {
      const int t = round * kBurst + i;
      const std::uint64_t len = round_len;
      const Vaddr src_region = kSrcBase + static_cast<Vaddr>(t) * 8 * kPage;
      const Vaddr dst_region = kDstBase + static_cast<Vaddr>(t) * 8 * kPage;
      rig.tx_app.CreateRegion(src_region, 8 * kPage, RegionState::kUnmovable);
      rig.rx_app.CreateRegion(dst_region, 8 * kPage);
      payloads[i] = TestPattern(static_cast<std::size_t>(len),
                                static_cast<unsigned char>(17 + t));
      lens[i] = len;
      ASSERT_EQ(rig.tx_app.Write(src_region, payloads[i]), AccessResult::kOk);
      std::move(input_driver(rig.rx_ep, rig.rx_app, dst_region, len, Semantics::kCopy,
                             &results[i], &done[i]))
          .Detach();
      std::move(rig.tx_ep.Output(rig.tx_app, src_region, len, Semantics::kCopy)).Detach();
    }
    rig.engine.Run();
    // Posted inputs are a shared mailbox: with a deep window reordering
    // retransmitted datagrams across transfers, the i-th input may complete
    // with the j-th payload. Exactly-once delivery means the multiset of
    // delivered payloads equals the multiset sent — each golden payload is
    // claimed by exactly one completion.
    std::array<bool, kBurst> claimed{};
    for (int i = 0; i < kBurst; ++i) {
      const int t = round * kBurst + i;
      ASSERT_TRUE(done[i]) << "transfer " << t << " stuck in windowed burst";
      ASSERT_TRUE(results[i].ok) << "transfer " << t << " failed in windowed burst";
      const auto got = rig.TryReadBack(results[i].addr, results[i].bytes);
      ASSERT_TRUE(got.has_value());
      bool matched = false;
      for (int j = 0; j < kBurst; ++j) {
        if (claimed[j] || lens[j] != results[i].bytes) {
          continue;
        }
        if (std::memcmp(got->data(), payloads[j].data(),
                        static_cast<std::size_t>(lens[j])) == 0) {
          claimed[j] = true;
          matched = true;
          break;
        }
      }
      ASSERT_TRUE(matched) << "transfer " << t
                           << ": delivered bytes match no outstanding payload";
    }
  }
  rig.ExpectQuiescent();
  const InvariantReport final_report = rig.CheckInvariants(/*expect_quiescent=*/true);
  EXPECT_TRUE(final_report.violations.empty());

  const MetricsSnapshot snap = rig.sender.metrics().Snapshot();
  EXPECT_GT(snap.Value("reliable.retransmits"), 0u);
  EXPECT_EQ(snap.Value("reliable.giveups"), 0u);
  std::printf(
      "[reliable-stress] windowed burst soak: window=16, %d transfers, "
      "%llu retransmits, %llu dups suppressed\n",
      kRounds * kBurst, static_cast<unsigned long long>(snap.Value("reliable.retransmits")),
      static_cast<unsigned long long>(rig.receiver.adapter().rx_duplicate_frames()));
}

// A failing seed is only a complete bug report if the schedule is bit-for-bit
// reproducible — with ARQ timers, jittered backoff, and watchdog scans in
// the event mix.
TEST(ReliableStressTest, SameSeedReplaysIdenticalSchedule) {
  const IterationOutcome a = RunIteration(kFirstSeed + 11);
  const IterationOutcome b = RunIteration(kFirstSeed + 11);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.ok_transfers, b.ok_transfers);
  EXPECT_EQ(a.failed_transfers, b.failed_transfers);
}

}  // namespace
}  // namespace genie
