// Mechanism-level behavior: copy-conversion thresholds, reverse copyout
// rule, input alignment, optimization ablation toggles, pooled-pool
// accounting, and resource hygiene under churn.
#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;

struct PreparedRig : Rig {
  explicit PreparedRig(InputBuffering rx = InputBuffering::kEarlyDemux,
                       GenieOptions options = GenieOptions{})
      : Rig(rx, options) {
    tx_app.CreateRegion(kSrc, 32 * kPage);
    rx_app.CreateRegion(kDst, 32 * kPage);
  }

  InputResult Send(std::uint64_t len, Semantics sem, Vaddr src_off = 0, Vaddr dst_off = 0) {
    const auto payload = TestPattern(len, static_cast<unsigned char>(len % 251));
    GENIE_CHECK(tx_app.Write(kSrc + src_off, payload) == AccessResult::kOk);
    const InputResult r = Transfer(kSrc + src_off, kDst + dst_off, len, sem);
    if (r.ok) {
      const auto got = ReadBack(r.addr, len);
      GENIE_CHECK_EQ(std::memcmp(got.data(), payload.data(), len), 0);
    }
    return r;
  }
};

// --- Copy conversion thresholds (Section 6 / Figure 5) ---

TEST(ThresholdTest, ShortEmulatedCopyOutputConvertsToCopy) {
  PreparedRig rig;
  rig.Send(1665, Semantics::kEmulatedCopy);
  EXPECT_EQ(rig.tx_ep.stats().outputs_converted_to_copy, 1u);
  rig.Send(1666, Semantics::kEmulatedCopy);
  EXPECT_EQ(rig.tx_ep.stats().outputs_converted_to_copy, 1u);  // Not converted.
}

TEST(ThresholdTest, ShortEmulatedShareOutputConvertsToCopy) {
  PreparedRig rig;
  rig.Send(279, Semantics::kEmulatedShare);
  EXPECT_EQ(rig.tx_ep.stats().outputs_converted_to_copy, 1u);
  rig.Send(280, Semantics::kEmulatedShare);
  EXPECT_EQ(rig.tx_ep.stats().outputs_converted_to_copy, 1u);
}

TEST(ThresholdTest, ConversionDisabledByOption) {
  GenieOptions options;
  options.enable_copy_conversion = false;
  PreparedRig rig(InputBuffering::kEarlyDemux, options);
  rig.Send(100, Semantics::kEmulatedCopy);
  EXPECT_EQ(rig.tx_ep.stats().outputs_converted_to_copy, 0u);
}

TEST(ThresholdTest, ConvertedOutputStillStrongIntegrity) {
  // The conversion is transparent: overwriting right after output must not
  // affect the data (copy semantics guarantees).
  PreparedRig rig;
  const std::uint64_t len = 1000;  // Below threshold: converted.
  const auto payload = TestPattern(len, 7);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);
  rig.engine.ScheduleAt(MicrosToSimTime(50), [&] {
    // Mid-flight overwrite.
    auto junk = TestPattern(len, 200);
    ASSERT_EQ(rig.tx_app.Write(kSrc, junk), AccessResult::kOk);
  });
  const InputResult r = rig.Transfer(kSrc, kDst, len, Semantics::kEmulatedCopy);
  ASSERT_TRUE(r.ok);
  const auto got = rig.ReadBack(kDst, len);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), len), 0);
}

// --- Reverse copyout rule (Section 5.2) ---

TEST(ReverseCopyoutTest, ShortPartialPageIsCopiedOut) {
  PreparedRig rig;
  // 2178-byte threshold: a final page filled with 2000 bytes is copied.
  const std::uint64_t len = kPage + 2000;
  rig.Send(len, Semantics::kEmulatedCopy);
  EXPECT_EQ(rig.rx_ep.stats().reverse_copyouts, 0u);
  EXPECT_EQ(rig.rx_ep.stats().bytes_copied, 2000u);
  EXPECT_EQ(rig.rx_ep.stats().pages_swapped, 1u);  // The full first page.
}

TEST(ReverseCopyoutTest, LongPartialPageIsCompletedAndSwapped) {
  PreparedRig rig;
  const std::uint64_t len = kPage + 3000;  // 3000 > 2178.
  rig.Send(len, Semantics::kEmulatedCopy);
  EXPECT_EQ(rig.rx_ep.stats().reverse_copyouts, 1u);
  EXPECT_EQ(rig.rx_ep.stats().pages_swapped, 2u);
  EXPECT_EQ(rig.rx_ep.stats().bytes_copied, kPage - 3000u);  // Completion bytes.
}

TEST(ReverseCopyoutTest, PageMultipleSwapsEverything) {
  PreparedRig rig;
  rig.Send(4 * kPage, Semantics::kEmulatedCopy);
  EXPECT_EQ(rig.rx_ep.stats().pages_swapped, 4u);
  EXPECT_EQ(rig.rx_ep.stats().bytes_copied, 0u);
  EXPECT_EQ(rig.rx_ep.stats().bytes_swapped, 4 * kPage);
}

// --- Input alignment (Section 5.2) ---

TEST(InputAlignmentTest, UnalignedBufferStillSwapsWithSystemAlignment) {
  PreparedRig rig;
  // Buffer at odd offset: system alignment lets interior pages swap.
  rig.Send(6 * kPage, Semantics::kEmulatedCopy, /*src_off=*/0, /*dst_off=*/100);
  EXPECT_GT(rig.rx_ep.stats().pages_swapped, 3u);
}

TEST(InputAlignmentTest, DisabledAlignmentFallsBackToCopyout) {
  GenieOptions options;
  options.enable_input_alignment = false;
  PreparedRig rig(InputBuffering::kEarlyDemux, options);
  rig.Send(6 * kPage, Semantics::kEmulatedCopy, 0, /*dst_off=*/100);
  EXPECT_EQ(rig.rx_ep.stats().pages_swapped, 0u);
  EXPECT_EQ(rig.rx_ep.stats().bytes_copied, 6 * kPage);
}

TEST(InputAlignmentTest, AlignedBufferUnaffectedByOption) {
  GenieOptions options;
  options.enable_input_alignment = false;
  PreparedRig rig(InputBuffering::kEarlyDemux, options);
  rig.Send(4 * kPage, Semantics::kEmulatedCopy);  // Page-aligned anyway.
  EXPECT_EQ(rig.rx_ep.stats().pages_swapped, 4u);
}

// --- Region hiding ablation (Section 4) ---

TEST(RegionHidingTest, DisabledHidingRemovesAndRecreatesRegions) {
  GenieOptions options;
  options.enable_region_hiding = false;
  Rig rig(InputBuffering::kEarlyDemux, options);
  const std::uint64_t len = 2 * kPage;
  Vaddr buf = rig.tx_ep.AllocateIoBuffer(rig.tx_app, len);
  ASSERT_EQ(rig.tx_app.Write(buf, TestPattern(len, 1)), AccessResult::kOk);
  const InputResult r = rig.Transfer(buf, 0, len, Semantics::kEmulatedMove);
  ASSERT_TRUE(r.ok);
  // Without hiding, the sender's region was fully removed at dispose.
  EXPECT_EQ(rig.tx_app.RegionAt(buf), nullptr);
  EXPECT_EQ(rig.rx_ep.stats().region_cache_hits, 0u);
}

TEST(RegionHidingTest, EnabledHidingKeepsAndReusesRegion) {
  Rig rig;
  const std::uint64_t len = 2 * kPage;
  Vaddr buf = rig.tx_ep.AllocateIoBuffer(rig.tx_app, len);
  ASSERT_EQ(rig.tx_app.Write(buf, TestPattern(len, 1)), AccessResult::kOk);
  const InputResult r = rig.Transfer(buf, 0, len, Semantics::kEmulatedMove);
  ASSERT_TRUE(r.ok);
  // Hidden, not removed.
  Region* region = rig.tx_app.RegionAt(buf);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->state, RegionState::kMovedOut);
  EXPECT_EQ(rig.tx_app.cached_regions(RegionState::kMovedOut), 1u);
}

// --- Input-disabled pageout ablation wiring ---

TEST(WiringAblationTest, EmulatedSemanticsWireWhenOptimizationOff) {
  GenieOptions options;
  options.enable_input_disabled_pageout = false;
  PreparedRig rig(InputBuffering::kEarlyDemux, options);

  // Mid-transfer, the source pages must be wired (share-style protection).
  bool checked = false;
  rig.engine.ScheduleAt(MicrosToSimTime(200), [&] {
    Pte* pte = rig.tx_app.FindPte(kSrc);
    if (pte != nullptr) {
      EXPECT_GT(rig.sender.vm().pm().info(pte->frame).wire_count, 0);
      checked = true;
    }
  });
  rig.Send(4 * kPage, Semantics::kEmulatedShare);
  EXPECT_TRUE(checked);
  // And unwired afterwards.
  Pte* pte = rig.tx_app.FindPte(kSrc);
  ASSERT_NE(pte, nullptr);
  EXPECT_EQ(rig.sender.vm().pm().info(pte->frame).wire_count, 0);
}

TEST(WiringAblationTest, EmulatedSemanticsDoNotWireByDefault) {
  PreparedRig rig;
  bool checked = false;
  rig.engine.ScheduleAt(MicrosToSimTime(200), [&] {
    Pte* pte = rig.tx_app.FindPte(kSrc);
    if (pte != nullptr) {
      EXPECT_EQ(rig.sender.vm().pm().info(pte->frame).wire_count, 0);
      checked = true;
    }
  });
  rig.Send(4 * kPage, Semantics::kEmulatedShare);
  EXPECT_TRUE(checked);
}

// --- Pooled buffering accounting ---

TEST(PooledAccountingTest, PoolLevelRestoredAfterEachSemantics) {
  for (const Semantics sem : kAllSemantics) {
    PreparedRig rig(InputBuffering::kPooled);
    BufferPool* pool = rig.receiver.adapter().pool();
    const std::size_t before = pool->available();
    if (IsSystemAllocated(sem)) {
      Vaddr buf = rig.tx_ep.AllocateIoBuffer(rig.tx_app, 4 * kPage);
      ASSERT_EQ(rig.tx_app.Write(buf, TestPattern(4 * kPage, 3)), AccessResult::kOk);
      ASSERT_TRUE(rig.Transfer(buf, 0, 4 * kPage, sem).ok);
    } else {
      rig.Send(4 * kPage, sem);
    }
    EXPECT_EQ(pool->available(), before) << SemanticsName(sem);
  }
}

TEST(PooledAccountingTest, MoveRefillsPoolAfterDonatingPages) {
  PreparedRig rig(InputBuffering::kPooled);
  BufferPool* pool = rig.receiver.adapter().pool();
  const std::size_t before = pool->available();
  Vaddr buf = rig.tx_ep.AllocateIoBuffer(rig.tx_app, 4 * kPage);
  ASSERT_EQ(rig.tx_app.Write(buf, TestPattern(4 * kPage, 3)), AccessResult::kOk);
  ASSERT_TRUE(rig.Transfer(buf, 0, 4 * kPage, Semantics::kMove).ok);
  EXPECT_EQ(pool->available(), before);  // Refilled with fresh frames.
}

// --- Churn: repeated transfers leak nothing ---

TEST(ChurnTest, HundredTransfersConserveMemory) {
  PreparedRig rig;
  // Pre-touch both buffers so the baseline includes their resident pages.
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(8 * kPage, 1)), AccessResult::kOk);
  ASSERT_EQ(rig.rx_app.Write(kDst, TestPattern(8 * kPage, 1)), AccessResult::kOk);
  const std::size_t frames_before =
      rig.sender.vm().pm().free_frames() + rig.receiver.vm().pm().free_frames();
  for (int i = 0; i < 50; ++i) {
    rig.Send(3 * kPage + (i * 97) % kPage + 1, Semantics::kEmulatedCopy);
    rig.Send(2 * kPage, Semantics::kEmulatedShare, 0, 64);
  }
  rig.ExpectQuiescent();
  const std::size_t frames_after =
      rig.sender.vm().pm().free_frames() + rig.receiver.vm().pm().free_frames();
  EXPECT_EQ(frames_before, frames_after);
  EXPECT_EQ(rig.sender.vm().pm().zombie_frames(), 0u);
  EXPECT_EQ(rig.receiver.vm().pm().zombie_frames(), 0u);
}

TEST(ChurnTest, SystemAllocatedChurnReusesRegionsWithoutGrowth) {
  Rig rig;
  const std::uint64_t len = 2 * kPage;
  Vaddr buf = rig.tx_ep.AllocateIoBuffer(rig.tx_app, len);
  ASSERT_EQ(rig.tx_app.Write(buf, TestPattern(len, 1)), AccessResult::kOk);
  for (int i = 0; i < 20; ++i) {
    const InputResult in = rig.Transfer(buf, 0, len, Semantics::kEmulatedWeakMove);
    ASSERT_TRUE(in.ok);
    // Echo back to keep the ping-pong going.
    InputResult back;
    auto input_driver = [](Endpoint& ep, AddressSpace& app, std::uint64_t n,
                           InputResult* out) -> Task<void> {
      *out = co_await ep.InputSystemAllocated(app, n, Semantics::kEmulatedWeakMove);
    };
    std::move(input_driver(rig.tx_ep, rig.tx_app, len, &back)).Detach();
    std::move(rig.rx_ep.Output(rig.rx_app, in.addr, len, Semantics::kEmulatedWeakMove))
        .Detach();
    rig.engine.Run();
    ASSERT_TRUE(back.ok);
    buf = back.addr;
  }
  // Steady state: at most a couple of regions per side.
  EXPECT_LE(rig.tx_app.region_count(), 3u);
  EXPECT_LE(rig.rx_app.region_count(), 3u);
  EXPECT_GE(rig.rx_ep.stats().region_cache_hits + rig.tx_ep.stats().region_cache_hits, 30u);
}

// --- Pageout interaction: input buffers survive memory pressure ---

TEST(PageoutInteractionTest, PendingInputSurvivesPageoutPressure) {
  PreparedRig rig;
  const std::uint64_t len = 4 * kPage;
  const auto payload = TestPattern(len, 0x66);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);

  // Run the receiver's pageout daemon aggressively mid-transfer.
  rig.engine.ScheduleAt(MicrosToSimTime(150), [&] {
    rig.receiver.pageout().ScanOnce(1000);
  });
  const InputResult r = rig.Transfer(kSrc, kDst, len, Semantics::kEmulatedShare);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(rig.receiver.pageout().skipped_input_referenced(), 0u);
  const auto got = rig.ReadBack(kDst, len);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), len), 0);
}

}  // namespace
}  // namespace genie
