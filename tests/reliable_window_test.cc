// Selective-repeat windowed ARQ tests: pipelined delivery, admission stalls
// when the window fills, per-entry retransmit timers under loss, nack fast
// retransmit, bounded give-up, out-of-order SACK resolution, cancellation
// under a partially-acked window, and schedule determinism. The rig mirrors
// reliable_backoff_test's: two adapters wired bidirectionally, the receive
// side configured for the same window as the sender.
#include "src/genie/reliable.h"

#include <algorithm>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/net/iovec_io.h"
#include "src/sim/engine.h"
#include "src/sim/resource.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
// One page-frame's wire time at OC-3 (matches the adapter timing tests).
const SimTime kWire = MicrosToSimTime(kPage * 0.0598);
const SimTime kCtl = 5 * kMicrosecond;  // control-cell (ack/credit) latency

class WindowRig {
 public:
  WindowRig()
      : cost_(MachineProfile::MicronP166()),
        pm_(192, kPage),
        fwd_(eng_, "fwd"),
        back_(eng_, "back"),
        tx_(eng_, pm_, cost_, "tx", Adapter::Config{}),
        rx_(eng_, pm_, cost_, "rx", Adapter::Config{}),
        rel_(eng_, tx_, "tx.xfer") {
    tx_.ConnectTo(&rx_, &fwd_);
    rx_.ConnectTo(&tx_, &back_);
    plan_.set_clock([this] { return eng_.now(); });
    tx_.set_fault_plan(&plan_);
    rel_.set_metrics(&metrics_);
  }

  ~WindowRig() {
    for (const FrameId f : frames_) {
      pm_.Free(f);
    }
  }

  void Configure(ReliableOptions opts) {
    rel_.Configure(opts);
    tx_.set_arq_window(opts.window);
    rx_.set_arq_window(opts.window);
  }

  IoVec MakeBuffer(std::size_t bytes, unsigned char seed) {
    IoVec iov;
    std::size_t remaining = bytes;
    std::size_t produced = 0;
    while (remaining > 0) {
      const FrameId f = pm_.Allocate();
      frames_.push_back(f);
      const std::uint32_t n = static_cast<std::uint32_t>(std::min<std::size_t>(kPage, remaining));
      auto data = pm_.Data(f);
      for (std::uint32_t i = 0; i < n; ++i) {
        data[i] = static_cast<std::byte>((seed + produced + i) & 0xFF);
      }
      iov.segments.push_back(IoSegment{f, 0, n});
      remaining -= n;
      produced += n;
    }
    return iov;
  }

  // Launches `count` concurrent reliable transmissions on `channel` (each
  // into its own pre-posted receive buffer) and runs the engine dry.
  // Returns the reports in launch order.
  std::vector<ReliableDelivery::TxReport> TransmitBurst(std::uint64_t channel, int count,
                                                        std::vector<std::uint64_t>* rx_seqs) {
    std::vector<std::optional<ReliableDelivery::TxReport>> reports(count);
    const IoVec src = MakeBuffer(kPage, 9);
    for (int i = 0; i < count; ++i) {
      const IoVec dst = MakeBuffer(kPage, 0);
      rx_.PostReceive(channel, Adapter::PostedReceive{dst, [rx_seqs](const RxCompletion& c) {
                                                       if (rx_seqs != nullptr) {
                                                         rx_seqs->push_back(c.seq);
                                                       }
                                                     }});
    }
    auto drive = [](WindowRig* rig, std::uint64_t ch, IoVec frame,
                    std::optional<ReliableDelivery::TxReport>* out) -> Task<void> {
      *out = co_await rig->rel_.TransmitReliably(ch, frame, 0, 0, "xfer", nullptr);
      rig->last_done_ = std::max(rig->last_done_, rig->eng_.now());
    };
    for (int i = 0; i < count; ++i) {
      std::move(drive(this, channel, src, &reports[i])).Detach();
    }
    eng_.Run();
    std::vector<ReliableDelivery::TxReport> out;
    for (auto& r : reports) {
      GENIE_CHECK(r.has_value()) << "transmission never completed";
      out.push_back(*r);
    }
    return out;
  }

  Engine eng_;
  // Wall-clock of the last transmission's completion. Timing assertions use
  // this, not eng_.now() after Run(): cancelled retransmit timers still pop
  // as no-op engine events (see TimerSet), so quiescence time trails the
  // last armed timeout rather than the last useful event.
  SimTime last_done_ = 0;
  CostModel cost_;
  PhysicalMemory pm_;
  Resource fwd_;
  Resource back_;
  Adapter tx_;
  Adapter rx_;
  ReliableDelivery rel_;
  MetricsRegistry metrics_;
  FaultPlan plan_{1};
  std::vector<FrameId> frames_;
};

ReliableOptions WindowedNoJitter(std::uint32_t window) {
  ReliableOptions opts;
  opts.arq = true;
  opts.window = window;
  opts.initial_timeout = 1 * kMillisecond;
  opts.max_timeout = 8 * kMillisecond;
  opts.backoff_factor = 2.0;
  opts.jitter_frac = 0.0;
  opts.nack_delay = 100 * kMicrosecond;
  return opts;
}

void AddDropRule(FaultPlan& plan, std::uint64_t nth) {
  FaultRule rule;
  rule.site = FaultSite::kLinkDrop;
  rule.nth = nth;
  plan.AddRule(rule);
}

TEST(ReliableWindowTest, PipelinesFramesBackToBack) {
  WindowRig rig;
  rig.Configure(WindowedNoJitter(8));
  std::vector<std::uint64_t> rx_seqs;
  const auto reports = rig.TransmitBurst(1, 4, &rx_seqs);
  for (const auto& r : reports) {
    EXPECT_EQ(r.outcome, ReliableDelivery::TxOutcome::kDelivered);
    EXPECT_EQ(r.attempts, 1u);
  }
  EXPECT_EQ(rx_seqs, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(rig.rel_.stats().retransmits, 0u);
  EXPECT_EQ(rig.rel_.stats().giveups, 0u);
  // Pipelined: all four frames clock out back to back, and the last SACK
  // flush lands one control-cell latency after the last frame. A
  // stop-and-wait sender would have taken 4 * (kWire + kCtl).
  EXPECT_LE(rig.last_done_, 4 * kWire + 2 * kCtl);
  // Every resolution came from a SACK train (page frames are wider than the
  // 5 us accumulation window, so here each accept gets its own flush; the
  // batching win for short frames is covered in net_adapter_test).
  EXPECT_LE(rig.rx_.sack_flushes(), 4u);
  EXPECT_GE(rig.rel_.stats().acks, 4u);
}

TEST(ReliableWindowTest, AdmissionStallsWhenWindowFull) {
  WindowRig rig;
  rig.Configure(WindowedNoJitter(2));
  std::vector<std::uint64_t> rx_seqs;
  const auto reports = rig.TransmitBurst(1, 5, &rx_seqs);
  for (const auto& r : reports) {
    EXPECT_EQ(r.outcome, ReliableDelivery::TxOutcome::kDelivered);
  }
  // Exactly once, in order (the wire is clean and the link is FIFO).
  EXPECT_EQ(rx_seqs, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(rig.rel_.stats().sequenced_frames, 5u);
  // With a window of 2 the fifth frame cannot leave before the third's ack:
  // the total run is longer than the fully-pipelined case but far shorter
  // than stop-and-wait.
  EXPECT_GT(rig.last_done_, 5 * kWire);
  EXPECT_LT(rig.last_done_, 5 * (kWire + 2 * kCtl));
}

TEST(ReliableWindowTest, LostFrameResolvedSelectively) {
  WindowRig rig;
  rig.Configure(WindowedNoJitter(8));
  AddDropRule(rig.plan_, 2);  // second frame vanishes on the wire
  std::vector<std::uint64_t> rx_seqs;
  const auto reports = rig.TransmitBurst(1, 4, &rx_seqs);
  for (const auto& r : reports) {
    EXPECT_EQ(r.outcome, ReliableDelivery::TxOutcome::kDelivered);
  }
  // Frames 1, 3, 4 deliver on the first attempt and are acked out of order
  // past the hole; only frame 2 is retransmitted, on its own timer.
  EXPECT_EQ(reports[0].attempts, 1u);
  EXPECT_EQ(reports[1].attempts, 2u);
  EXPECT_EQ(reports[2].attempts, 1u);
  EXPECT_EQ(reports[3].attempts, 1u);
  EXPECT_EQ(rig.rel_.stats().retransmits, 1u);
  EXPECT_EQ(rig.rel_.stats().timeouts, 1u);
  EXPECT_EQ(rig.rel_.stats().giveups, 0u);
  ASSERT_EQ(rx_seqs.size(), 4u);
  EXPECT_EQ(rx_seqs, (std::vector<std::uint64_t>{1, 3, 4, 2}));
  // The retransmission waited out the initial timeout, so the run finishes
  // shortly after it: timeout + retransmitted wire + ack train.
  EXPECT_GT(rig.last_done_, 1 * kMillisecond);
  EXPECT_LT(rig.last_done_, 2 * kMillisecond);
}

TEST(ReliableWindowTest, CorruptedFrameNackFastRetransmit) {
  WindowRig rig;
  rig.Configure(WindowedNoJitter(4));
  FaultRule rule;
  rule.site = FaultSite::kDeviceError;
  rule.nth = 2;
  rig.plan_.AddRule(rule);
  std::vector<std::uint64_t> rx_seqs;
  const auto reports = rig.TransmitBurst(1, 3, &rx_seqs);
  for (const auto& r : reports) {
    EXPECT_EQ(r.outcome, ReliableDelivery::TxOutcome::kDelivered);
  }
  EXPECT_EQ(reports[1].attempts, 2u);
  EXPECT_EQ(rig.rel_.stats().nacks, 1u);
  EXPECT_EQ(rig.rel_.stats().retransmits, 1u);
  EXPECT_EQ(rig.rel_.stats().timeouts, 0u);  // the nack beat the timer
  // Nack fast path: finished long before the 1 ms retransmit timeout.
  EXPECT_LT(rig.last_done_, 1 * kMillisecond);
  ASSERT_EQ(rx_seqs.size(), 3u);
}

TEST(ReliableWindowTest, GivesUpPerEntryAfterMaxRetransmits) {
  WindowRig rig;
  ReliableOptions opts = WindowedNoJitter(4);
  opts.max_retransmits = 2;
  rig.Configure(opts);
  // Frame 2 is dropped on every attempt (original + both retries); the rest
  // of the window is untouched and delivers normally.
  AddDropRule(rig.plan_, 2);
  AddDropRule(rig.plan_, 4);
  AddDropRule(rig.plan_, 5);
  std::vector<std::uint64_t> rx_seqs;
  const auto reports = rig.TransmitBurst(1, 3, &rx_seqs);
  EXPECT_EQ(reports[0].outcome, ReliableDelivery::TxOutcome::kDelivered);
  EXPECT_EQ(reports[1].outcome, ReliableDelivery::TxOutcome::kGiveUp);
  EXPECT_EQ(reports[1].attempts, 3u);  // original + 2 retries
  EXPECT_EQ(reports[2].outcome, ReliableDelivery::TxOutcome::kDelivered);
  EXPECT_EQ(rig.rel_.stats().giveups, 1u);
  EXPECT_EQ(rx_seqs, (std::vector<std::uint64_t>{1, 3}));
}

TEST(ReliableWindowTest, WindowedScheduleIsDeterministic) {
  auto run = [](std::uint64_t* digest) {
    WindowRig rig;
    ReliableOptions opts = WindowedNoJitter(8);
    opts.jitter_frac = 0.25;
    opts.seed = 7;
    rig.Configure(opts);
    FaultRule rule;
    rule.site = FaultSite::kLinkDrop;
    rule.probability = 0.3;
    rig.plan_.AddRule(rule);
    std::vector<std::uint64_t> rx_seqs;
    const auto reports = rig.TransmitBurst(1, 6, &rx_seqs);
    for (const auto& r : reports) {
      EXPECT_EQ(r.outcome, ReliableDelivery::TxOutcome::kDelivered);
    }
    EXPECT_EQ(rx_seqs.size(), 6u);
    *digest = rig.eng_.event_digest();
    return rig.rel_.stats();
  };
  std::uint64_t digest_a = 0;
  std::uint64_t digest_b = 0;
  const auto stats_a = run(&digest_a);
  const auto stats_b = run(&digest_b);
  EXPECT_EQ(digest_a, digest_b);
  EXPECT_EQ(stats_a.retransmits, stats_b.retransmits);
  EXPECT_EQ(stats_a.acks, stats_b.acks);
}

TEST(ReliableWindowTest, CancellationUnderPartiallyAckedWindow) {
  WindowRig rig;
  rig.Configure(WindowedNoJitter(4));
  // Frame 2 is lost on the wire; we cancel it via its token before its
  // retransmit timer (1 ms) fires, exercising the unwind path while the
  // window is partially acked (frames 1 and 3 resolved around it).
  AddDropRule(rig.plan_, 2);
  const IoVec src = rig.MakeBuffer(kPage, 3);
  for (int i = 0; i < 3; ++i) {
    const IoVec dst = rig.MakeBuffer(kPage, 0);
    rig.rx_.PostReceive(1, Adapter::PostedReceive{dst, nullptr});
  }
  auto token = std::make_shared<ReliableDelivery::CancelToken>();
  std::vector<std::optional<ReliableDelivery::TxReport>> reports(3);
  auto drive = [](WindowRig* rig_ptr, IoVec frame,
                  std::shared_ptr<ReliableDelivery::CancelToken> tok,
                  std::optional<ReliableDelivery::TxReport>* out) -> Task<void> {
    *out = co_await rig_ptr->rel_.TransmitReliably(1, frame, 0, 0, "xfer", std::move(tok));
  };
  std::move(drive(&rig, src, nullptr, &reports[0])).Detach();
  std::move(drive(&rig, src, token, &reports[1])).Detach();
  std::move(drive(&rig, src, nullptr, &reports[2])).Detach();
  // Cancel the stuck transfer at 0.5 ms — frames 1 and 3 are long since
  // acked, frame 2's first retransmit timer (1 ms) has not fired yet.
  rig.eng_.ScheduleAfter(500 * kMicrosecond, [&] {
    token->cancelled = true;
    if (token->ctl != nullptr) {
      rig.tx_.AbortCreditWait(1, token->ctl);
    }
    if (token->wake != nullptr) {
      token->wake->Set();
    }
  });
  rig.eng_.Run();
  ASSERT_TRUE(reports[0].has_value());
  ASSERT_TRUE(reports[1].has_value());
  ASSERT_TRUE(reports[2].has_value());
  EXPECT_EQ(reports[0]->outcome, ReliableDelivery::TxOutcome::kDelivered);
  EXPECT_EQ(reports[1]->outcome, ReliableDelivery::TxOutcome::kCancelled);
  EXPECT_EQ(reports[2]->outcome, ReliableDelivery::TxOutcome::kDelivered);
  EXPECT_EQ(rig.rel_.stats().cancelled_transmits, 1u);
  EXPECT_EQ(rig.rel_.stats().giveups, 0u);
  // The engine went quiescent: no timer left armed for the cancelled entry.
  EXPECT_LT(rig.eng_.now(), 2 * kMillisecond);
}

TEST(ReliableWindowTest, WindowOneMatchesStopAndWaitSchedule) {
  // window=1 must take the legacy stop-and-wait path: identical event
  // digests, identical stats, for the same scenario.
  auto run = [](std::uint32_t window, std::uint64_t* digest) {
    WindowRig rig;
    ReliableOptions opts;
    opts.arq = true;
    opts.window = window;
    opts.initial_timeout = 1 * kMillisecond;
    opts.jitter_frac = 0.25;
    opts.seed = 11;
    rig.Configure(opts);
    FaultRule rule;
    rule.site = FaultSite::kLinkDrop;
    rule.probability = 0.4;
    rig.plan_.AddRule(rule);
    std::vector<std::uint64_t> rx_seqs;
    const auto reports = rig.TransmitBurst(1, 3, &rx_seqs);
    for (const auto& r : reports) {
      EXPECT_EQ(r.outcome, ReliableDelivery::TxOutcome::kDelivered);
    }
    *digest = rig.eng_.event_digest();
  };
  std::uint64_t w1_a = 0;
  std::uint64_t w1_b = 0;
  run(1, &w1_a);
  run(1, &w1_b);
  EXPECT_EQ(w1_a, w1_b);
}

}  // namespace
}  // namespace genie
