// Randomized fault/pageout/transfer interleaving stress (seeded,
// deterministic). Each iteration builds a two-node rig with a seeded fault
// plan, draws 1-3 fault rules across every injection site, then drives six
// transfers with random semantics, lengths, and offsets while forced pageout
// pressure and periodic whole-VM invariant sweeps run underneath. Completed
// transfers must match the golden payload byte-for-byte; failed ones must
// unwind completely — invariants are checked between events during each
// transfer and in quiescent mode at the end of the iteration.
//
// Every failure message carries the iteration seed. Replay one seed with
//   GENIE_FAULT_SEED=<seed> ./fault_stress_test
// Determinism is enforced by a digest test: the same seed must execute the
// same event schedule bit-for-bit.
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "src/obs/flight_recorder.h"
#include "tests/fault_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrcBase = 0x20000000;
constexpr Vaddr kDstBase = 0x30000000;
constexpr int kTransfersPerSeed = 6;
constexpr std::uint64_t kFirstSeed = 1000;
constexpr int kSeedCount = 200;  // 200 seeds x 6 transfers = 1200 interleavings

struct IterationOutcome {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t injected = 0;
  int ok_transfers = 0;
  int failed_transfers = 0;
  int skipped_fills = 0;     // source fill itself hit an injected fault
  int skipped_verifies = 0;  // readback hit an injected fault
  std::vector<std::string> violations;
};

FaultRule RandomRule(SplitMix64& rng) {
  FaultRule rule;
  // Deliberately drawn from the legacy prefix only: the link-fault sites
  // (drop/duplicate/reorder) break at-most-once delivery, which this ARQ-off
  // harness assumes (a lost frame leaves its input waiting forever, a stale
  // reordered frame lands in a later transfer's buffer). The reliable stress
  // test exercises them with the ARQ layer on. Keeping the draw bound at the
  // prefix also preserves every pinned seed's RNG stream bit-for-bit.
  rule.site = static_cast<FaultSite>(rng.Below(kNumLegacyFaultSites));
  if (rng.Chance(0.6)) {
    rule.nth = 1 + rng.Below(6);
  } else {
    rule.probability = 0.02 + 0.13 * rng.NextDouble();
  }
  if (rng.Chance(0.3)) {
    rule.window_begin = MicrosToSimTime(static_cast<double>(rng.Below(300)));
    rule.window_end = rule.window_begin + MicrosToSimTime(static_cast<double>(50 + rng.Below(200)));
  }
  rule.max_fires = 1 + rng.Below(3);
  switch (rule.site) {
    case FaultSite::kDeviceShortTransfer:
      rule.arg = 1 + rng.Below(4000);  // bytes to keep
      break;
    case FaultSite::kDeviceDelay:
      rule.arg = rng.Range(1000, 150000);  // extra ns
      break;
    case FaultSite::kPageoutPressure:
      rule.arg = 1 + rng.Below(3);  // frames per tick
      break;
    default:
      break;
  }
  return rule;
}

IterationOutcome RunIteration(std::uint64_t seed) {
  IterationOutcome out;
  SplitMix64 rng(seed ^ 0x5eed5eed5eed5eedULL);

  const auto buffering = static_cast<InputBuffering>(rng.Below(3));
  GenieOptions options;
  options.checksum_mode = static_cast<ChecksumMode>(rng.Below(3));
  FaultRig rig(seed, buffering, options, /*mem_frames=*/384);

  // Always-on flight recorder: a bounded trace ring over both nodes, dumped
  // the instant any invariant sweep fails. Recording schedules no events and
  // draws no randomness, so the digest-replay test below stays bit-identical.
  TraceLog flight_trace;
  rig.sender.set_trace(&flight_trace);
  rig.receiver.set_trace(&flight_trace);
  FlightRecorder::Config recorder_cfg;
  recorder_cfg.capacity = 512;
  recorder_cfg.seed = seed;
  FlightRecorder recorder("seed" + std::to_string(seed), &flight_trace,
                          &rig.sender.metrics(), recorder_cfg);
  VmInvariants::SetViolationHook([&recorder](const InvariantReport& report) {
    const std::string path = recorder.DumpToFile("invariant violation: " +
                                                 report.violations.front());
    if (!path.empty()) {
      std::printf("[fault-stress] flight recorder dump: %s\n", path.c_str());
    }
  });

  const std::size_t num_rules = 1 + rng.Below(3);
  for (std::size_t i = 0; i < num_rules; ++i) {
    rig.plan.AddRule(RandomRule(rng));
  }

  for (int t = 0; t < kTransfersPerSeed; ++t) {
    const Semantics sem = kAllSemantics[rng.Below(kAllSemantics.size())];
    const std::uint64_t len = 1 + rng.Below(5 * kPage);
    const Vaddr src_region = kSrcBase + static_cast<Vaddr>(t) * 8 * kPage;
    const Vaddr dst_region = kDstBase + static_cast<Vaddr>(t) * 8 * kPage;
    rig.tx_app.CreateRegion(src_region, 8 * kPage,
                            IsSystemAllocated(sem) ? RegionState::kMovedIn
                                                   : RegionState::kUnmovable);
    const Vaddr src =
        IsSystemAllocated(sem) ? src_region : src_region + rng.Below(kPage);
    Vaddr dst = 0;
    if (IsApplicationAllocated(sem)) {
      rig.rx_app.CreateRegion(dst_region, 8 * kPage);
      dst = dst_region + rng.Below(kPage);
    }

    const auto payload = TestPattern(static_cast<std::size_t>(len),
                                     static_cast<unsigned char>(seed + t));
    if (rig.tx_app.Write(src, payload) != AccessResult::kOk) {
      // An injected allocation/page-in fault hit the source fill itself;
      // nothing was sent, so there is nothing to verify this round.
      ++out.skipped_fills;
      continue;
    }

    // Pressure ticks and invariant sweeps cover a bounded window around this
    // transfer (engine.Run drains the whole queue, so unbounded schedules
    // would never terminate).
    const SimTime window_end = rig.engine.now() + MicrosToSimTime(400);
    SchedulePageoutPressure(rig.engine, rig.sender.pageout(), rig.plan,
                            MicrosToSimTime(17), window_end);
    SchedulePageoutPressure(rig.engine, rig.receiver.pageout(), rig.plan,
                            MicrosToSimTime(23), window_end);
    ScheduleInvariantSweep(rig.engine, rig.sender.vm(), rig.tx_app, MicrosToSimTime(31),
                           window_end, &out.violations);
    ScheduleInvariantSweep(rig.engine, rig.receiver.vm(), rig.rx_app, MicrosToSimTime(37),
                           window_end, &out.violations);

    const InputResult result = rig.DriveTransfer(src, dst, len, sem);

    if (result.ok) {
      ++out.ok_transfers;
      // Byte integrity against the golden payload. A short transfer without
      // checksums can deliver a clean prefix (result.bytes < len); whatever
      // was reported delivered must match the source exactly.
      const std::uint64_t delivered = result.bytes;
      if (delivered > len) {
        std::ostringstream msg;
        msg << "seed " << seed << " transfer " << t << ": delivered " << delivered
            << " > sent " << len;
        out.violations.push_back(msg.str());
      } else if (delivered > 0) {
        const auto got = rig.TryReadBack(result.addr, delivered);
        if (!got.has_value()) {
          ++out.skipped_verifies;  // readback itself hit an injected fault
        } else if (std::memcmp(got->data(), payload.data(),
                               static_cast<std::size_t>(delivered)) != 0) {
          std::ostringstream msg;
          msg << "seed " << seed << " transfer " << t << " ("
              << SemanticsName(sem) << ", len " << len << "): payload mismatch in first "
              << delivered << " bytes";
          out.violations.push_back(msg.str());
        }
      }
    } else {
      ++out.failed_transfers;
    }

    // Between transfers the kernel may still hold zombies for delayed
    // completions already drained by engine.Run; non-quiescent invariants
    // must hold regardless of how the transfer ended.
    const InvariantReport mid = rig.CheckInvariants(/*expect_quiescent=*/false);
    for (const std::string& v : mid.violations) {
      out.violations.push_back("seed " + std::to_string(seed) + " transfer " +
                               std::to_string(t) + ": " + v);
    }
  }

  // End of iteration: no injection, everything must have unwound completely.
  rig.plan.Clear();
  if (rig.tx_ep.pending_operations() != 0 || rig.rx_ep.pending_operations() != 0) {
    out.violations.push_back("seed " + std::to_string(seed) +
                             ": pending operations leaked past the iteration");
  }
  const InvariantReport final_report = rig.CheckInvariants(/*expect_quiescent=*/true);
  for (const std::string& v : final_report.violations) {
    out.violations.push_back("seed " + std::to_string(seed) + " quiescent: " + v);
  }

  VmInvariants::SetViolationHook(nullptr);
  // Violations that are not invariant-check failures (payload mismatches,
  // leaked operations) still deserve a dump of the final ring state.
  if (!out.violations.empty() && recorder.dumps_written() == 0) {
    const std::string path = recorder.DumpToFile(out.violations.front());
    if (!path.empty()) {
      std::printf("[fault-stress] flight recorder dump: %s\n", path.c_str());
    }
  }
  rig.sender.set_trace(nullptr);
  rig.receiver.set_trace(nullptr);

  out.digest = rig.engine.event_digest();
  out.events = rig.engine.events_executed();
  out.injected = rig.plan.total_injected();
  return out;
}

TEST(FaultStressTest, SeededInterleavingsKeepInvariantsAndBytes) {
  std::uint64_t first = kFirstSeed;
  int count = kSeedCount;
  if (const char* env = std::getenv("GENIE_FAULT_SEED"); env != nullptr) {
    first = std::strtoull(env, nullptr, 0);
    count = 1;
    std::printf("[fault-stress] replaying single seed %llu\n",
                static_cast<unsigned long long>(first));
  }

  std::uint64_t total_injected = 0;
  int total_ok = 0;
  int total_failed = 0;
  int total_skipped = 0;
  const std::uint64_t checks_before = VmInvariants::total_checks();
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = first + static_cast<std::uint64_t>(i);
    const IterationOutcome out = RunIteration(seed);
    ASSERT_TRUE(out.violations.empty())
        << "replay with GENIE_FAULT_SEED=" << seed << "\n"
        << [&] {
             std::ostringstream all;
             for (const std::string& v : out.violations) {
               all << "  " << v << "\n";
             }
             return all.str();
           }();
    total_injected += out.injected;
    total_ok += out.ok_transfers;
    total_failed += out.failed_transfers;
    total_skipped += out.skipped_fills + out.skipped_verifies;
  }
  std::printf(
      "[fault-stress] seeds=%d transfers_ok=%d transfers_failed=%d skipped=%d "
      "injected_faults=%llu invariant_checks=%llu\n",
      count, total_ok, total_failed, total_skipped,
      static_cast<unsigned long long>(total_injected),
      static_cast<unsigned long long>(VmInvariants::total_checks() - checks_before));

  EXPECT_GT(VmInvariants::total_checks(), checks_before);
  if (count > 1) {
    // The sweep must actually exercise the machinery: faults were injected,
    // some transfers survived them, and some were (cleanly) failed.
    EXPECT_GT(total_injected, 0u);
    EXPECT_GT(total_ok, 0);
    EXPECT_GT(total_failed, 0);
  }
}

// Same seed, same schedule: a failing seed is a complete, replayable bug
// report only if the simulation is bit-for-bit deterministic.
TEST(FaultStressTest, SameSeedReplaysIdenticalSchedule) {
  const IterationOutcome a = RunIteration(kFirstSeed + 7);
  const IterationOutcome b = RunIteration(kFirstSeed + 7);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.ok_transfers, b.ok_transfers);
  EXPECT_EQ(a.failed_transfers, b.failed_transfers);
}

}  // namespace
}  // namespace genie
