#include "src/analysis/linear_fit.h"

#include <vector>

#include <gtest/gtest.h>

namespace genie {
namespace {

TEST(LinearFitTest, ExactLine) {
  std::vector<std::pair<double, double>> pts;
  for (int x = 0; x <= 10; ++x) {
    pts.emplace_back(x, 3.0 * x + 7.0);
  }
  const LinearFit fit = FitLine(pts);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, NegativeInterceptAndSlope) {
  std::vector<std::pair<double, double>> pts;
  for (int x = 1; x <= 5; ++x) {
    pts.emplace_back(x, -2.0 * x - 3.0);
  }
  const LinearFit fit = FitLine(pts);
  EXPECT_NEAR(fit.slope, -2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -3.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineHasGoodR2) {
  std::vector<std::pair<double, double>> pts;
  for (int x = 0; x < 20; ++x) {
    const double noise = (x % 2 == 0) ? 0.5 : -0.5;
    pts.emplace_back(x, 2.0 * x + 1.0 + noise);
  }
  const LinearFit fit = FitLine(pts);
  EXPECT_NEAR(fit.slope, 2.0, 0.02);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(LinearFitTest, ConstantDataFitsWithZeroSlope) {
  std::vector<std::pair<double, double>> pts = {{1, 5}, {2, 5}, {3, 5}};
  const LinearFit fit = FitLine(pts);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);
}

TEST(LinearFitTest, SingleXValueFallsBackToMean) {
  std::vector<std::pair<double, double>> pts = {{4, 2}, {4, 6}};
  const LinearFit fit = FitLine(pts);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 4.0);
}

TEST(LinearFitTest, EmptyInput) {
  const LinearFit fit = FitLine({});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 0.0);
}

}  // namespace
}  // namespace genie
