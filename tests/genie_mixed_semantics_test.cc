// Mixed semantics at the two ends (paper Section 8: "the end-to-end latency
// when sender and receiver use different semantics can be expected to be
// equal to the sum of the base latency plus sender-side latencies of the
// semantics used by the sender plus receiver-side latencies of the
// semantics used by the receiver").
#include <tuple>

#include <gtest/gtest.h>

#include "src/analysis/latency_model.h"
#include "src/harness/experiment.h"

namespace genie {
namespace {

using MixedParam = std::tuple<Semantics, Semantics>;

class MixedSemanticsTest : public ::testing::TestWithParam<MixedParam> {};

TEST_P(MixedSemanticsTest, PayloadIntactAndLatencyComposes) {
  const Semantics out_sem = std::get<0>(GetParam());
  const Semantics in_sem = std::get<1>(GetParam());
  ExperimentConfig config;
  Testbed bed(config);
  const std::uint64_t len = 32768;

  // Warm-up, then measure.
  bed.TransferOnceMixed(len, out_sem, in_sem);
  const InputResult r = bed.TransferOnceMixed(len, out_sem, in_sem);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.bytes, len);

  // Payload is intact.
  std::vector<std::byte> got(len);
  ASSERT_EQ(bed.rx_app().Read(r.addr, got), AccessResult::kOk);
  for (std::size_t i = 0; i < len; i += 4096) {
    EXPECT_EQ(static_cast<unsigned char>(got[i]), (i * 31 + 7) & 0xFF) << "offset " << i;
  }

  // The composition claim holds in the simulator.
  const CostModel cost(config.profile);
  const double measured = SimTimeToMicros(r.completed_at - bed.last_send_time());
  const double estimated = EstimateMixedLatencyUs(cost, config.options, out_sem, in_sem,
                                                  InputBuffering::kEarlyDemux, 0, len);
  EXPECT_NEAR(measured, estimated, estimated * 0.02 + 2.0)
      << SemanticsName(out_sem) << " -> " << SemanticsName(in_sem);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, MixedSemanticsTest,
    ::testing::Combine(::testing::ValuesIn(kAllSemantics), ::testing::ValuesIn(kAllSemantics)),
    [](const ::testing::TestParamInfo<MixedParam>& param_info) {
      std::string name(SemanticsName(std::get<0>(param_info.param)));
      name += "_to_" + std::string(SemanticsName(std::get<1>(param_info.param)));
      for (char& c : name) {
        if (c == ' ') {
          c = '_';
        }
      }
      return name;
    });

// The practically interesting combination: a legacy copy-semantics sender
// talking to an upgraded emulated-copy receiver (transparent conversion one
// side at a time).
TEST(MixedSemanticsTest, IncrementalUpgradeScenario) {
  ExperimentConfig config;
  Testbed bed(config);
  const std::uint64_t len = 61440;
  bed.TransferOnceMixed(len, Semantics::kCopy, Semantics::kEmulatedCopy);
  InputResult r = bed.TransferOnceMixed(len, Semantics::kCopy, Semantics::kEmulatedCopy);
  const double legacy_tx = SimTimeToMicros(r.completed_at - bed.last_send_time());

  r = bed.TransferOnceMixed(len, Semantics::kEmulatedCopy, Semantics::kEmulatedCopy);
  const double both_upgraded = SimTimeToMicros(r.completed_at - bed.last_send_time());

  r = bed.TransferOnceMixed(len, Semantics::kCopy, Semantics::kCopy);
  const double legacy_both = SimTimeToMicros(r.completed_at - bed.last_send_time());

  // Upgrading either side helps; upgrading both helps most.
  EXPECT_LT(legacy_tx, legacy_both);
  EXPECT_LT(both_upgraded, legacy_tx);
}

}  // namespace
}  // namespace genie
