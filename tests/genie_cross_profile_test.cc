// Cross-platform behavior: the whole stack must work with the AlphaStation's
// 8 KB pages and the Gateway's slower memory system, and the paper's
// qualitative results ("results for the other platforms were similar") must
// hold on every profile.
#include <gtest/gtest.h>

#include "src/analysis/latency_model.h"
#include "src/harness/experiment.h"

namespace genie {
namespace {

class CrossProfileTest : public ::testing::TestWithParam<int> {
 protected:
  static MachineProfile Profile(int index) {
    switch (index) {
      case 0:
        return MachineProfile::MicronP166();
      case 1:
        return MachineProfile::GatewayP5_90();
      default:
        return MachineProfile::AlphaStation255();
    }
  }
};

TEST_P(CrossProfileTest, AllSemanticsTransferCorrectly) {
  ExperimentConfig config;
  config.profile = Profile(GetParam());
  config.repetitions = 1;
  // 8 KB pages on the Alpha: use a page multiple of both 4 K and 8 K, plus
  // an unaligned odd length.
  const std::uint32_t psz = config.profile.page_size;
  const std::vector<std::uint64_t> lengths = {psz, 3 * psz, 3 * psz + 123};
  for (const Semantics sem : kAllSemantics) {
    Experiment experiment(config);
    const RunResult run = experiment.Run(sem, lengths);
    ASSERT_EQ(run.samples.size(), lengths.size()) << SemanticsName(sem);
    for (const LatencySample& s : run.samples) {
      EXPECT_GT(s.latency_us, 0.0);
    }
  }
}

TEST_P(CrossProfileTest, MeasuredMatchesModelOnEveryProfile) {
  ExperimentConfig config;
  config.profile = Profile(GetParam());
  config.repetitions = 2;
  const CostModel cost(config.profile);
  const std::uint32_t psz = config.profile.page_size;
  const std::vector<std::uint64_t> lengths = {4 * psz, 56 * 1024 / psz * psz};
  for (const Semantics sem :
       {Semantics::kCopy, Semantics::kEmulatedCopy, Semantics::kEmulatedMove}) {
    Experiment experiment(config);
    const RunResult run = experiment.Run(sem, lengths);
    for (const LatencySample& s : run.samples) {
      const double estimated = EstimateLatencyUs(cost, config.options, sem,
                                                 InputBuffering::kEarlyDemux, 0, s.bytes);
      EXPECT_NEAR(s.latency_us, estimated, estimated * 0.02 + 2.0)
          << config.profile.name << " " << SemanticsName(sem) << " B=" << s.bytes;
    }
  }
}

TEST_P(CrossProfileTest, CopyDistinctlyWorstEverywhere) {
  ExperimentConfig config;
  config.profile = Profile(GetParam());
  config.repetitions = 1;
  const std::uint32_t psz = config.profile.page_size;
  const std::vector<std::uint64_t> lengths = {56 * 1024 / psz * psz};
  double copy = 0;
  double best_other = 1e18;
  for (const Semantics sem : kAllSemantics) {
    Experiment experiment(config);
    const double l = experiment.Run(sem, lengths).samples[0].latency_us;
    if (sem == Semantics::kCopy) {
      copy = l;
    } else {
      best_other = std::min(best_other, l);
    }
  }
  EXPECT_GT(copy, best_other * 1.2) << config.profile.name;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, CrossProfileTest, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           switch (param_info.param) {
                             case 0:
                               return std::string("MicronP166");
                             case 1:
                               return std::string("GatewayP5_90");
                             default:
                               return std::string("AlphaStation255");
                           }
                         });

TEST(AlphaPageSizeTest, ReverseCopyoutThresholdRegimeWith8KPages) {
  // The reverse-copyout threshold (2178 B) is far below half of an 8 KB
  // page; partial 8 K pages with more data than the threshold still swap.
  ExperimentConfig config;
  config.profile = MachineProfile::AlphaStation255();
  config.repetitions = 1;
  Testbed bed(config);
  const std::uint64_t len = 8192 + 5000;  // Partial second page: 5000 B.
  const InputResult r = bed.TransferOnceMixed(len, Semantics::kEmulatedCopy,
                                              Semantics::kEmulatedCopy);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(bed.rx().stats().reverse_copyouts, 1u);
  EXPECT_EQ(bed.rx().stats().pages_swapped, 2u);
}

TEST(AlphaPageSizeTest, SixtyKBIsNotAPageMultipleOn8K) {
  // 60 KB = 7.5 Alpha pages; an unaligned tail must still round-trip.
  ExperimentConfig config;
  config.profile = MachineProfile::AlphaStation255();
  Testbed bed(config);
  const InputResult r =
      bed.TransferOnceMixed(60 * 1024, Semantics::kEmulatedCopy, Semantics::kEmulatedCopy);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.bytes, 60u * 1024);
}

}  // namespace
}  // namespace genie
