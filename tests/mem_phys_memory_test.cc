#include "src/mem/phys_memory.h"

#include <cstring>
#include <set>

#include <gtest/gtest.h>

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;

TEST(PhysMemoryTest, InitialStateAllFree) {
  PhysicalMemory pm(8, kPage);
  EXPECT_EQ(pm.num_frames(), 8u);
  EXPECT_EQ(pm.free_frames(), 8u);
  EXPECT_EQ(pm.allocated_frames(), 0u);
  EXPECT_EQ(pm.page_size(), kPage);
}

TEST(PhysMemoryTest, AllocateReturnsDistinctFrames) {
  PhysicalMemory pm(8, kPage);
  std::set<FrameId> frames;
  for (int i = 0; i < 8; ++i) {
    frames.insert(pm.Allocate());
  }
  EXPECT_EQ(frames.size(), 8u);
  EXPECT_EQ(pm.free_frames(), 0u);
}

TEST(PhysMemoryTest, TryAllocateReturnsInvalidWhenExhausted) {
  PhysicalMemory pm(1, kPage);
  EXPECT_NE(pm.TryAllocate(), kInvalidFrame);
  EXPECT_EQ(pm.TryAllocate(), kInvalidFrame);
}

TEST(PhysMemoryDeathTest, AllocateAbortsWhenExhausted) {
  PhysicalMemory pm(1, kPage);
  pm.Allocate();
  EXPECT_DEATH(pm.Allocate(), "out of physical memory");
}

TEST(PhysMemoryTest, FreeReturnsFrameToFreeList) {
  PhysicalMemory pm(2, kPage);
  const FrameId f = pm.Allocate();
  pm.Free(f);
  EXPECT_EQ(pm.free_frames(), 2u);
}

TEST(PhysMemoryDeathTest, DoubleFreeAborts) {
  PhysicalMemory pm(2, kPage);
  const FrameId f = pm.Allocate();
  pm.Free(f);
  EXPECT_DEATH(pm.Free(f), "double free");
}

TEST(PhysMemoryTest, DataSpansAreDisjointAndPageSized) {
  PhysicalMemory pm(4, kPage);
  const FrameId a = pm.Allocate();
  const FrameId b = pm.Allocate();
  auto da = pm.Data(a);
  auto db = pm.Data(b);
  EXPECT_EQ(da.size(), kPage);
  EXPECT_EQ(db.size(), kPage);
  std::memset(da.data(), 0xAA, da.size());
  std::memset(db.data(), 0x55, db.size());
  EXPECT_EQ(static_cast<unsigned char>(da[0]), 0xAA);
  EXPECT_EQ(static_cast<unsigned char>(db[0]), 0x55);
}

TEST(PhysMemoryTest, AllocateZeroedClearsResidue) {
  PhysicalMemory pm(1, kPage);
  FrameId f = pm.Allocate();
  std::memset(pm.Data(f).data(), 0xFF, kPage);
  pm.Free(f);
  f = pm.AllocateZeroed();
  for (std::size_t i = 0; i < kPage; i += 512) {
    EXPECT_EQ(static_cast<unsigned char>(pm.Data(f)[i]), 0);
  }
}

TEST(PhysMemoryTest, PlainAllocateLeavesResidue) {
  // Documents that a recycled frame carries the previous owner's data —
  // why move semantics must zero-complete pages before mapping them.
  PhysicalMemory pm(1, kPage);
  FrameId f = pm.Allocate();
  std::memset(pm.Data(f).data(), 0xFF, kPage);
  pm.Free(f);
  f = pm.Allocate();
  EXPECT_EQ(static_cast<unsigned char>(pm.Data(f)[100]), 0xFF);
}

// --- I/O-deferred page deallocation (paper Section 3.1) ---

TEST(PhysMemoryTest, FreeWithPendingOutputRefDefers) {
  PhysicalMemory pm(2, kPage);
  const FrameId f = pm.Allocate();
  pm.AddOutputRef(f);
  pm.Free(f);
  EXPECT_EQ(pm.free_frames(), 1u);  // Not reusable yet.
  EXPECT_EQ(pm.zombie_frames(), 1u);
  EXPECT_EQ(pm.deferred_frees(), 1u);
  pm.DropOutputRef(f);
  EXPECT_EQ(pm.free_frames(), 2u);  // Reclaimed on last unref.
  EXPECT_EQ(pm.zombie_frames(), 0u);
  EXPECT_EQ(pm.completed_deferred_frees(), 1u);
}

TEST(PhysMemoryTest, FreeWithPendingInputRefDefers) {
  PhysicalMemory pm(2, kPage);
  const FrameId f = pm.Allocate();
  pm.AddInputRef(f);
  pm.Free(f);
  EXPECT_EQ(pm.free_frames(), 1u);
  pm.DropInputRef(f);
  EXPECT_EQ(pm.free_frames(), 2u);
}

TEST(PhysMemoryTest, ZombieFrameNotHandedToNewAllocations) {
  // The dangerous scenario of Section 3.1: a page freed during pending
  // output must not be allocated to another process while the device still
  // reads it.
  PhysicalMemory pm(2, kPage);
  const FrameId f = pm.Allocate();
  pm.AddOutputRef(f);
  std::memset(pm.Data(f).data(), 0x42, kPage);
  pm.Free(f);
  const FrameId g = pm.TryAllocate();
  EXPECT_NE(g, f);  // Got the other frame, never the zombie.
  EXPECT_EQ(pm.TryAllocate(), kInvalidFrame);
  // Device can still read the original data.
  EXPECT_EQ(static_cast<unsigned char>(pm.Data(f)[0]), 0x42);
  pm.DropOutputRef(f);
  EXPECT_EQ(pm.TryAllocate(), f);  // Now reusable.
}

TEST(PhysMemoryTest, MultipleRefsDeferUntilLastDrop) {
  PhysicalMemory pm(1, kPage);
  const FrameId f = pm.Allocate();
  pm.AddOutputRef(f);
  pm.AddOutputRef(f);
  pm.AddInputRef(f);
  pm.Free(f);
  pm.DropOutputRef(f);
  EXPECT_EQ(pm.free_frames(), 0u);
  pm.DropInputRef(f);
  EXPECT_EQ(pm.free_frames(), 0u);
  pm.DropOutputRef(f);
  EXPECT_EQ(pm.free_frames(), 1u);
}

TEST(PhysMemoryTest, HasIoRefs) {
  PhysicalMemory pm(1, kPage);
  const FrameId f = pm.Allocate();
  EXPECT_FALSE(pm.HasIoRefs(f));
  pm.AddInputRef(f);
  EXPECT_TRUE(pm.HasIoRefs(f));
  pm.DropInputRef(f);
  EXPECT_FALSE(pm.HasIoRefs(f));
}

TEST(PhysMemoryDeathTest, DropRefBelowZeroAborts) {
  PhysicalMemory pm(1, kPage);
  const FrameId f = pm.Allocate();
  EXPECT_DEATH(pm.DropInputRef(f), "");
}

TEST(PhysMemoryTest, WireCountTracked) {
  PhysicalMemory pm(1, kPage);
  const FrameId f = pm.Allocate();
  pm.Wire(f);
  pm.Wire(f);
  EXPECT_EQ(pm.info(f).wire_count, 2);
  pm.Unwire(f);
  pm.Unwire(f);
  EXPECT_EQ(pm.info(f).wire_count, 0);
}

TEST(PhysMemoryDeathTest, FreeingWiredFrameAborts) {
  PhysicalMemory pm(1, kPage);
  const FrameId f = pm.Allocate();
  pm.Wire(f);
  EXPECT_DEATH(pm.Free(f), "wired");
}

TEST(PhysMemoryTest, OwnerBookkeeping) {
  PhysicalMemory pm(1, kPage);
  const FrameId f = pm.Allocate();
  EXPECT_EQ(pm.info(f).owner_object, kNoOwner);
  pm.SetOwner(f, 7, 3);
  EXPECT_EQ(pm.info(f).owner_object, 7u);
  EXPECT_EQ(pm.info(f).owner_page, 3u);
  pm.ClearOwner(f);
  EXPECT_EQ(pm.info(f).owner_object, kNoOwner);
}

TEST(PhysMemoryTest, FreeClearsOwner) {
  PhysicalMemory pm(1, kPage);
  const FrameId f = pm.Allocate();
  pm.SetOwner(f, 7, 3);
  pm.AddOutputRef(f);
  pm.Free(f);
  // Zombie frame is ownerless: paper's unreference path checks "still
  // allocated to a memory object?" to decide reclamation.
  EXPECT_EQ(pm.info(f).owner_object, kNoOwner);
  pm.DropOutputRef(f);
}

TEST(PhysMemoryTest, AllocationCounterAdvances) {
  PhysicalMemory pm(2, kPage);
  pm.Free(pm.Allocate());
  pm.Free(pm.Allocate());
  EXPECT_EQ(pm.total_allocations(), 2u);
}

// --- Contiguous runs ---

TEST(PhysMemoryTest, AllocateRunIsContiguousAndLowestFirst) {
  PhysicalMemory pm(8, kPage);
  const FrameId run = pm.TryAllocateRun(4);
  EXPECT_EQ(run, 0u);
  for (FrameId f = run; f < run + 4; ++f) {
    EXPECT_TRUE(pm.info(f).allocated);
  }
  EXPECT_EQ(pm.free_frames(), 4u);
}

TEST(PhysMemoryTest, AllocateRunSkipsFragmentedGaps) {
  PhysicalMemory pm(8, kPage);
  const FrameId a = pm.Allocate();  // frame 0
  const FrameId b = pm.Allocate();  // frame 1
  pm.Free(a);                       // free: {0} and {2..7}
  const FrameId run = pm.TryAllocateRun(3);
  EXPECT_EQ(run, 2u);  // First fit past the single-frame hole.
  const FrameId single = pm.TryAllocate();
  EXPECT_EQ(single, 0u);  // The hole still serves single-frame requests.
  pm.Free(b);
  pm.Free(single);
  for (FrameId f = run; f < run + 3; ++f) {
    pm.Free(f);
  }
  EXPECT_EQ(pm.free_frames(), 8u);
}

TEST(PhysMemoryTest, FreeingMergesAdjacentRuns) {
  PhysicalMemory pm(8, kPage);
  std::vector<FrameId> all;
  for (int i = 0; i < 8; ++i) {
    all.push_back(pm.Allocate());
  }
  // Free in an order that exercises both-sided merging: 3 then 5 then 4.
  pm.Free(3);
  pm.Free(5);
  EXPECT_EQ(pm.free_runs(), 2u);
  pm.Free(4);
  EXPECT_EQ(pm.free_runs(), 1u);  // {3,4,5} merged into one run.
  EXPECT_EQ(pm.TryAllocateRun(3), 3u);
}

TEST(PhysMemoryTest, TryAllocateRunFailsWithoutContiguousSpace) {
  PhysicalMemory pm(4, kPage);
  pm.Allocate();  // 0
  const FrameId f1 = pm.Allocate();
  pm.Allocate();  // 2
  const FrameId f3 = pm.Allocate();
  pm.Free(f1);
  pm.Free(f3);  // free: {1} and {3}: two frames, but no pair.
  EXPECT_EQ(pm.free_frames(), 2u);
  EXPECT_EQ(pm.TryAllocateRun(2), kInvalidFrame);
}

TEST(PhysMemoryTest, DataRunSpansFrames) {
  PhysicalMemory pm(4, kPage);
  const FrameId run = pm.TryAllocateRun(3);
  ASSERT_NE(run, kInvalidFrame);
  auto span = pm.DataRun(run, 100, 2 * kPage);
  EXPECT_EQ(span.size(), 2 * kPage);
  EXPECT_EQ(span.data(), pm.Data(run).data() + 100);
  // Bytes stored through a whole-run span read back through per-frame spans.
  span[kPage] = std::byte{0x5A};
  EXPECT_EQ(pm.Data(run + 1)[100], std::byte{0x5A});
}

TEST(PhysMemoryDeathTest, DataRunPastArenaAborts) {
  PhysicalMemory pm(2, kPage);
  pm.Allocate();
  pm.Allocate();
  EXPECT_DEATH(pm.DataRun(1, 0, 2 * kPage), "out of bounds");
}

// Property: alloc/free churn conserves frames (no leaks, no duplication).
TEST(PhysMemoryTest, ChurnConservesFrames) {
  PhysicalMemory pm(16, kPage);
  std::vector<FrameId> held;
  for (int round = 0; round < 100; ++round) {
    if ((round % 3) != 0 && pm.free_frames() > 0) {
      held.push_back(pm.Allocate());
    } else if (!held.empty()) {
      pm.Free(held.back());
      held.pop_back();
    }
    EXPECT_EQ(pm.free_frames() + pm.allocated_frames() + pm.zombie_frames(), 16u);
  }
}

}  // namespace
}  // namespace genie
