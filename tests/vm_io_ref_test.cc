// Page referencing (paper Section 3.1): descriptor preparation, access
// verification, reference counting, and safety against malicious
// deallocation during I/O.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/vm/address_space.h"
#include "src/vm/io_ref.h"
#include "src/vm/vm.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kBase = 0x10000000;

class IoRefTest : public ::testing::Test {
 protected:
  void SetUp() override { as_.CreateRegion(kBase, 8 * kPage); }

  Vm vm_{64, kPage};
  AddressSpace as_{vm_, "app"};
};

TEST_F(IoRefTest, PageAlignedBufferCoalescesContiguousFrames) {
  // Fresh zero-fill pages come from one contiguous frame run, so the DMA
  // list collapses to a single segment; reference accounting stays per page.
  IoReference ref;
  ASSERT_EQ(ReferenceRange(as_, kBase, 3 * kPage, IoDirection::kOutput, &ref),
            AccessResult::kOk);
  ASSERT_EQ(ref.frames.size(), 3u);
  ASSERT_EQ(ref.iovec.segments.size(), 1u);
  EXPECT_EQ(ref.iovec.segments[0].frame, ref.frames[0]);
  EXPECT_EQ(ref.iovec.segments[0].offset, 0u);
  EXPECT_EQ(ref.iovec.segments[0].length, 3 * kPage);
  EXPECT_EQ(ref.iovec.total_bytes(), 3 * kPage);
  Unreference(vm_, ref);
}

TEST_F(IoRefTest, UnalignedBufferKeepsOffsetAndLength) {
  IoReference ref;
  const Vaddr va = kBase + 100;
  const std::uint64_t len = 2 * kPage;  // spans 3 pages
  ASSERT_EQ(ReferenceRange(as_, va, len, IoDirection::kOutput, &ref), AccessResult::kOk);
  ASSERT_EQ(ref.frames.size(), 3u);
  ASSERT_EQ(ref.iovec.segments.size(), 1u);
  EXPECT_EQ(ref.iovec.segments[0].offset, 100u);
  EXPECT_EQ(ref.iovec.total_bytes(), len);
  Unreference(vm_, ref);
}

TEST_F(IoRefTest, NonContiguousFramesYieldSeparateSegments) {
  // Force non-adjacent frames for adjacent pages: fault page 1 first, then
  // interpose an allocation, then fault page 0. The DMA list must not merge
  // across the physical gap.
  ASSERT_EQ(as_.Write(kBase + kPage, std::vector<std::byte>(1, std::byte{1})),
            AccessResult::kOk);
  const FrameId hole = vm_.pm().Allocate();
  ASSERT_EQ(as_.Write(kBase, std::vector<std::byte>(1, std::byte{1})), AccessResult::kOk);
  IoReference ref;
  ASSERT_EQ(ReferenceRange(as_, kBase, 2 * kPage, IoDirection::kOutput, &ref),
            AccessResult::kOk);
  ASSERT_EQ(ref.frames.size(), 2u);
  ASSERT_NE(ref.frames[0] + 1, ref.frames[1]);
  ASSERT_EQ(ref.iovec.segments.size(), 2u);
  EXPECT_EQ(ref.iovec.segments[0].length, kPage);
  EXPECT_EQ(ref.iovec.segments[1].length, kPage);
  EXPECT_EQ(ref.iovec.total_bytes(), 2 * kPage);
  Unreference(vm_, ref);
  vm_.pm().Free(hole);
}

TEST_F(IoRefTest, OutputReferencesCountOutputRefs) {
  IoReference ref;
  ASSERT_EQ(ReferenceRange(as_, kBase, 2 * kPage, IoDirection::kOutput, &ref),
            AccessResult::kOk);
  const std::vector<FrameId> frames = ref.frames;
  for (const FrameId f : frames) {
    EXPECT_EQ(vm_.pm().info(f).output_refs, 1);
    EXPECT_EQ(vm_.pm().info(f).input_refs, 0);
  }
  Unreference(vm_, ref);
  for (const FrameId f : frames) {
    EXPECT_EQ(vm_.pm().info(f).output_refs, 0);
  }
}

TEST_F(IoRefTest, InputReferencesCountInputRefsAndObjectRefs) {
  IoReference ref;
  ASSERT_EQ(ReferenceRange(as_, kBase, 2 * kPage, IoDirection::kInput, &ref),
            AccessResult::kOk);
  for (const FrameId f : ref.frames) {
    EXPECT_EQ(vm_.pm().info(f).input_refs, 1);
  }
  EXPECT_EQ(ref.object->input_refs(), 2);
  Unreference(vm_, ref);
  EXPECT_EQ(ref.object, nullptr);
}

TEST_F(IoRefTest, BufferOutsideRegionRejected) {
  IoReference ref;
  EXPECT_EQ(ReferenceRange(as_, 0x999000, kPage, IoDirection::kOutput, &ref),
            AccessResult::kUnrecoverableFault);
  EXPECT_FALSE(ref.active);
}

TEST_F(IoRefTest, BufferSpanningRegionEndRejected) {
  IoReference ref;
  EXPECT_EQ(ReferenceRange(as_, kBase + 7 * kPage, 2 * kPage, IoDirection::kOutput, &ref),
            AccessResult::kUnrecoverableFault);
}

TEST_F(IoRefTest, MaliciousRegionRemovalDuringOutputIsSafe) {
  // The paper's Section 3.1 scenario: the application deallocates its buffer
  // while the device still reads it. Deferred deallocation plus the object
  // reference held by the IoReference keep the frames intact.
  ASSERT_EQ(as_.Write(kBase, std::vector<std::byte>(kPage, std::byte{0x77})),
            AccessResult::kOk);
  IoReference ref;
  ASSERT_EQ(ReferenceRange(as_, kBase, kPage, IoDirection::kOutput, &ref), AccessResult::kOk);
  const FrameId frame = ref.iovec.segments[0].frame;

  as_.RemoveRegion(kBase);  // Malicious free during I/O.

  // Frame not reusable by others...
  const std::size_t free_before = vm_.pm().free_frames();
  std::vector<FrameId> got;
  for (std::size_t i = 0; i < free_before; ++i) {
    got.push_back(vm_.pm().Allocate());
  }
  for (const FrameId g : got) {
    EXPECT_NE(g, frame);
    vm_.pm().Free(g);
  }
  // ...and the device still reads the original data.
  EXPECT_EQ(static_cast<unsigned char>(vm_.pm().Data(frame)[0]), 0x77);
  Unreference(vm_, ref);
}

TEST_F(IoRefTest, InputIntoRemovedRegionKeepsObjectAlive) {
  IoReference ref;
  ASSERT_EQ(ReferenceRange(as_, kBase, kPage, IoDirection::kInput, &ref), AccessResult::kOk);
  std::shared_ptr<MemoryObject> object = ref.object;
  as_.RemoveRegion(kBase);
  // Object survives via the I/O reference; DMA target frame is intact.
  EXPECT_EQ(vm_.FindObject(object->id()), object.get());
  std::memset(vm_.pm().Data(ref.iovec.segments[0].frame).data(), 0x5A, kPage);
  Unreference(vm_, ref);
  object.reset();
}

TEST_F(IoRefTest, SameFrameCanCarrySimultaneousInputAndOutput) {
  IoReference out_ref;
  IoReference in_ref;
  ASSERT_EQ(ReferenceRange(as_, kBase, kPage, IoDirection::kOutput, &out_ref),
            AccessResult::kOk);
  as_.RemoveWrite(kBase, kPage);  // Emulated-copy output prepare (Table 2).
  // Input referencing write-faults; with pending output this TCOW-copies
  // the page, so input lands on a different frame — exactly what strong
  // integrity requires.
  ASSERT_EQ(ReferenceRange(as_, kBase, kPage, IoDirection::kInput, &in_ref),
            AccessResult::kOk);
  EXPECT_NE(out_ref.iovec.segments[0].frame, in_ref.iovec.segments[0].frame);
  Unreference(vm_, out_ref);
  Unreference(vm_, in_ref);
}

TEST_F(IoRefTest, ZeroLengthRejected) {
  IoReference ref;
  EXPECT_DEATH(ReferenceRange(as_, kBase, 0, IoDirection::kOutput, &ref), "");
}

TEST_F(IoRefTest, SingleByteBuffer) {
  IoReference ref;
  ASSERT_EQ(ReferenceRange(as_, kBase + 17, 1, IoDirection::kOutput, &ref), AccessResult::kOk);
  ASSERT_EQ(ref.iovec.segments.size(), 1u);
  EXPECT_EQ(ref.iovec.segments[0].offset, 17u);
  EXPECT_EQ(ref.iovec.segments[0].length, 1u);
  Unreference(vm_, ref);
}

TEST_F(IoRefTest, DoubleUnreferenceAborts) {
  IoReference ref;
  ASSERT_EQ(ReferenceRange(as_, kBase, kPage, IoDirection::kOutput, &ref), AccessResult::kOk);
  Unreference(vm_, ref);
  EXPECT_DEATH(Unreference(vm_, ref), "inactive");
}

}  // namespace
}  // namespace genie
