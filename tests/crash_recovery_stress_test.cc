// Deterministic crash/partition soak: 200 seeds of mixed closed/open-loop
// traffic over a lossy 4-node fabric while seeded crash injection reboots
// nodes mid-traffic and a seeded flap schedule partitions and heals links.
// Every seed must keep closed-loop accounting exact (every transfer either
// completes with golden bytes or fails loudly — give-up, watchdog cancel, or
// kPeerCrashed; none may vanish), and leave every node's VM quiescently
// clean, including nodes that crash-stopped and restarted during the run.
//
// Replay one seed with
//   GENIE_CRASH_SEED=<seed> ./crash_recovery_stress_test
// Sweep the selective-repeat window (CI runs {1, 16}) with
//   GENIE_RELIABLE_WINDOW=<w> ./crash_recovery_stress_test
#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "src/harness/workload.h"
#include "src/mem/fault_plan.h"
#include "src/util/units.h"

namespace genie {
namespace {

constexpr std::uint64_t kFirstSeed = 11000;
constexpr int kSeedCount = 200;
// Crash/flap chaos is confined to the first 6 ms; injected restarts land by
// 6.5 ms, so traffic started after the window completes cleanly and the
// deadline only backstops a genuine stall.
constexpr SimTime kChaosHorizon = 6 * kMillisecond;
constexpr SimTime kRestartDelay = 500 * kMicrosecond;

std::uint32_t SoakWindow() {
  static const std::uint32_t window = [] {
    if (const char* env = std::getenv("GENIE_RELIABLE_WINDOW"); env != nullptr) {
      const unsigned long v = std::strtoul(env, nullptr, 0);
      if (v > 0) {
        return static_cast<std::uint32_t>(v);
      }
    }
    return 1u;
  }();
  return window;
}

WorkloadConfig SoakConfig(std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.nodes = 4;
  // Alternate topologies so trunk outages (dumbbell) and per-port outages
  // (star) both see crash traffic across the sweep.
  cfg.fabric.topology =
      (seed % 2 == 0) ? Fabric::Topology::kStar : Fabric::Topology::kDumbbell;
  cfg.deadline = 100 * kMillisecond;

  ReliableOptions rel;
  rel.arq = true;
  rel.window = SoakWindow();
  rel.seed = seed ^ 0xa5c3a5c3a5c3a5c3ULL;
  // A real watchdog: inputs orphaned by a peer crash or a partition that
  // outlasts the retry budget must be reclaimed, not parked forever.
  rel.initial_timeout = 300 * kMicrosecond;
  rel.max_timeout = 2 * kMillisecond;
  rel.watchdog_timeout = 5 * kMillisecond;
  cfg.reliable = rel;

  cfg.endpoint_options.enable_semantics_fallback = true;

  // Closed-loop tenants: retried on recoverable failure (including
  // kPeerCrashed — crash-caused attempts roll up as crash_retries).
  TenantClassConfig closed;
  closed.name = "closed";
  closed.tenants = 6;
  closed.transfers_per_tenant = 4;
  closed.min_bytes = 256;
  closed.max_bytes = 6000;
  closed.semantics_mix.assign(kAllSemantics.begin(), kAllSemantics.end());
  closed.max_retries = 4;
  cfg.classes.push_back(closed);

  // Open-loop tenants with tenant_restart: a transfer killed by a peer
  // crash-stop is re-issued after backoff instead of dropped.
  TenantClassConfig open;
  open.name = "open";
  open.tenants = 2;
  open.open_loop = true;
  open.transfers_per_tenant = 10;
  open.mean_interarrival = 300 * kMicrosecond;
  open.max_in_flight = 4;
  open.min_bytes = 512;
  open.max_bytes = 4096;
  open.semantics_mix = {Semantics::kEmulatedCopy};
  open.tenant_restart = true;
  cfg.classes.push_back(open);
  return cfg;
}

struct SoakOutcome {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t giveups = 0;
  std::uint64_t crashes = 0;
  std::uint64_t link_flaps = 0;
  std::uint64_t epoch_bumps = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t peer_crash_aborts = 0;
  std::uint64_t crash_frame_drops = 0;
  std::uint64_t stale_epoch_drops = 0;
  std::uint64_t crash_retries = 0;
  std::vector<std::string> violations;
};

SoakOutcome RunSoak(std::uint64_t seed) {
  SoakOutcome out;
  Engine engine;
  const WorkloadConfig cfg = SoakConfig(seed);
  Workload wl(engine, cfg);

  // One deterministic fault plan shared by every node: background link loss
  // keeps ARQ busy, and every 250 us each node's crash tick rolls a 2%
  // chance of a crash-stop (restarting kRestartDelay later).
  FaultPlan plan(seed ^ 0x4e11ab1e4e11ab1eULL);
  FaultRule drop;
  drop.site = FaultSite::kLinkDrop;
  drop.probability = 0.005;
  plan.AddRule(drop);
  FaultRule crash;
  crash.site = FaultSite::kNodeCrash;
  crash.probability = 0.02;
  plan.AddRule(crash);
  for (std::size_t i = 0; i < wl.node_count(); ++i) {
    wl.node(i).AttachFaultPlan(&plan);
    wl.node(i).ArmCrashInjection(&plan, 250 * kMicrosecond, kChaosHorizon, kRestartDelay);
  }
  // Seeded link flaps over the same window: partitions that heal.
  wl.fabric().ScheduleFlaps(seed ^ 0xf1af5c7ef1af5c7eULL, kChaosHorizon,
                            /*mean_period=*/2 * kMillisecond,
                            /*mean_outage=*/300 * kMicrosecond);

  wl.Run();
  out.violations = wl.violations();

  // Closed-loop accounting stays exact under crash-stop chaos: every
  // transfer either completed (byte-verified) or failed with a verdict.
  for (const TenantStats& t : wl.tenant_stats()) {
    if (t.class_index == 0 && t.completed + t.failed != 4) {
      std::ostringstream msg;
      msg << "seed " << seed << " channel " << t.channel << ": " << t.completed
          << " completed + " << t.failed << " failed != 4 issued";
      out.violations.push_back(msg.str());
    }
    out.completed += t.completed;
    out.failed += t.failed;
    out.crash_retries += t.crash_retries;
  }

  // Every node — including every rebooted incarnation — must be quiescently
  // clean: no leaked I/O refs, wired pages, hidden regions, or zombie frames.
  const InvariantReport quiescent = wl.CheckInvariants(/*expect_quiescent=*/true);
  for (const std::string& v : quiescent.violations) {
    out.violations.push_back("seed " + std::to_string(seed) + " quiescent: " + v);
  }

  for (std::size_t i = 0; i < wl.node_count(); ++i) {
    Node& node = wl.node(i);
    const ReliableDelivery::Stats& rel = node.reliable().stats();
    out.retransmits += rel.retransmits;
    out.giveups += rel.giveups;
    out.epoch_bumps += rel.epoch_bumps;
    out.resyncs += rel.resyncs;
    out.peer_crash_aborts += rel.peer_crash_aborts;
    out.crashes += node.crashes();
    out.crash_frame_drops += node.adapter().crash_frame_drops();
    out.stale_epoch_drops += node.adapter().stale_epoch_drops();
    if (node.crashed()) {
      out.violations.push_back("seed " + std::to_string(seed) + " node " +
                               std::to_string(i) + " still crashed at quiescence");
    }
  }
  out.link_flaps = wl.fabric().link_flaps();
  out.digest = engine.event_digest();
  out.events = engine.events_executed();
  return out;
}

TEST(CrashRecoveryStressTest, CrashAndPartitionSoakKeepsAccountingExactAcrossSeeds) {
  std::uint64_t first = kFirstSeed;
  int count = kSeedCount;
  if (const char* env = std::getenv("GENIE_CRASH_SEED"); env != nullptr) {
    first = std::strtoull(env, nullptr, 0);
    count = 1;
    std::printf("[crash-stress] replaying single seed %llu\n",
                static_cast<unsigned long long>(first));
  }

  SoakOutcome total;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = first + static_cast<std::uint64_t>(i);
    const SoakOutcome out = RunSoak(seed);
    ASSERT_TRUE(out.violations.empty())
        << "replay with GENIE_CRASH_SEED=" << seed << "\n"
        << [&] {
             std::ostringstream all;
             for (const std::string& v : out.violations) {
               all << "  " << v << "\n";
             }
             return all.str();
           }();
    total.completed += out.completed;
    total.failed += out.failed;
    total.retransmits += out.retransmits;
    total.giveups += out.giveups;
    total.crashes += out.crashes;
    total.link_flaps += out.link_flaps;
    total.epoch_bumps += out.epoch_bumps;
    total.resyncs += out.resyncs;
    total.peer_crash_aborts += out.peer_crash_aborts;
    total.crash_frame_drops += out.crash_frame_drops;
    total.stale_epoch_drops += out.stale_epoch_drops;
    total.crash_retries += out.crash_retries;
  }
  std::printf(
      "[crash-stress] window=%u seeds=%d completed=%llu failed=%llu crashes=%llu "
      "flaps=%llu epoch_bumps=%llu resyncs=%llu crash_aborts=%llu "
      "crash_drops=%llu stale_drops=%llu crash_retries=%llu retransmits=%llu "
      "giveups=%llu\n",
      SoakWindow(), count, static_cast<unsigned long long>(total.completed),
      static_cast<unsigned long long>(total.failed),
      static_cast<unsigned long long>(total.crashes),
      static_cast<unsigned long long>(total.link_flaps),
      static_cast<unsigned long long>(total.epoch_bumps),
      static_cast<unsigned long long>(total.resyncs),
      static_cast<unsigned long long>(total.peer_crash_aborts),
      static_cast<unsigned long long>(total.crash_frame_drops),
      static_cast<unsigned long long>(total.stale_epoch_drops),
      static_cast<unsigned long long>(total.crash_retries),
      static_cast<unsigned long long>(total.retransmits),
      static_cast<unsigned long long>(total.giveups));

  if (count > 1) {
    // The sweep must exercise the whole recovery machine, not just survive
    // it: nodes actually crashed and restarted, links flapped, dead-node and
    // dead-epoch frames were dropped, fences drove resyncs, and traffic
    // still flowed. (Give-ups are legal here — a partition can outlast the
    // retry budget — so unlike the lossy soak they are reported, not zero.)
    EXPECT_GT(total.completed, 0u);
    EXPECT_GT(total.crashes, 0u);
    EXPECT_GT(total.link_flaps, 0u);
    EXPECT_GT(total.retransmits, 0u);
    EXPECT_GT(total.peer_crash_aborts, 0u);
    EXPECT_GT(total.crash_frame_drops, 0u);
    EXPECT_GT(total.epoch_bumps, 0u);
    EXPECT_GT(total.resyncs, 0u);
    EXPECT_GT(total.stale_epoch_drops, 0u);
    // Chaos is bounded: most transfers still complete across the sweep.
    EXPECT_GT(total.completed, total.failed);
  }
}

// A crash seed is only a usable bug report if the whole schedule — arrival
// processes, crash ticks, flap outages, ARQ timers, resync handshakes —
// replays bit-for-bit.
TEST(CrashRecoveryStressTest, SameSeedReplaysIdenticalSchedule) {
  const SoakOutcome a = RunSoak(kFirstSeed + 13);
  const SoakOutcome b = RunSoak(kFirstSeed + 13);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.link_flaps, b.link_flaps);
  EXPECT_EQ(a.epoch_bumps, b.epoch_bumps);
  EXPECT_EQ(a.retransmits, b.retransmits);
}

}  // namespace
}  // namespace genie
