#include "src/mem/backing_store.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace genie {
namespace {

std::vector<std::byte> Pattern(std::size_t n, unsigned char seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + i) & 0xFF);
  }
  return v;
}

TEST(BackingStoreTest, SaveRestoreRoundTrip) {
  BackingStore bs;
  const auto data = Pattern(4096, 7);
  bs.Save(1, 2, data);
  EXPECT_TRUE(bs.Contains(1, 2));
  std::vector<std::byte> out(4096);
  bs.Restore(1, 2, out);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 4096), 0);
  EXPECT_FALSE(bs.Contains(1, 2));  // Restore consumes the slot.
}

TEST(BackingStoreTest, KeysAreObjectAndPage) {
  BackingStore bs;
  bs.Save(1, 0, Pattern(64, 1));
  bs.Save(1, 1, Pattern(64, 2));
  bs.Save(2, 0, Pattern(64, 3));
  EXPECT_TRUE(bs.Contains(1, 0));
  EXPECT_TRUE(bs.Contains(1, 1));
  EXPECT_TRUE(bs.Contains(2, 0));
  EXPECT_FALSE(bs.Contains(2, 1));
  EXPECT_EQ(bs.stored_pages(), 3u);
}

TEST(BackingStoreTest, SaveOverwrites) {
  BackingStore bs;
  bs.Save(1, 0, Pattern(16, 1));
  bs.Save(1, 0, Pattern(16, 9));
  std::vector<std::byte> out(16);
  bs.Restore(1, 0, out);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 9);
}

TEST(BackingStoreTest, EraseDropsPage) {
  BackingStore bs;
  bs.Save(3, 4, Pattern(16, 1));
  bs.Erase(3, 4);
  EXPECT_FALSE(bs.Contains(3, 4));
  bs.Erase(3, 4);  // Idempotent.
}

TEST(BackingStoreTest, CountersTrackTraffic) {
  BackingStore bs;
  bs.Save(1, 0, Pattern(16, 1));
  bs.Save(1, 1, Pattern(16, 2));
  std::vector<std::byte> out(16);
  bs.Restore(1, 0, out);
  EXPECT_EQ(bs.total_pageouts(), 2u);
  EXPECT_EQ(bs.total_pageins(), 1u);
}

TEST(BackingStoreDeathTest, RestoreMissingAborts) {
  BackingStore bs;
  std::vector<std::byte> out(16);
  EXPECT_DEATH(bs.Restore(9, 9, out), "not in backing store");
}

}  // namespace
}  // namespace genie
