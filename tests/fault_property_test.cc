// Property (paper-level safety claim): an injected device error, for every
// semantics and every device buffering scheme, must leave the preposted
// destination buffer either untouched or holding exactly the sent payload —
// never a mix — and must return every kernel counter to its pre-transfer
// value. Strong-integrity semantics additionally guarantee "untouched":
// nothing reaches the application buffer before verification.
#include <cstring>
#include <tuple>

#include <gtest/gtest.h>

#include "tests/fault_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;

using DeviceErrorParam = std::tuple<Semantics, InputBuffering>;

class DeviceErrorPropertyTest : public ::testing::TestWithParam<DeviceErrorParam> {};

TEST_P(DeviceErrorPropertyTest, DestinationUntouchedOrWholeAndCountersRestored) {
  const auto [sem, buffering] = GetParam();
  const std::uint64_t len = 3 * kPage + 123;  // above every copy-conversion threshold
  constexpr Vaddr kWarmSrc = 0x28000000;
  FaultRig rig(/*seed=*/77, buffering);

  const RegionState src_state = IsSystemAllocated(sem) ? RegionState::kMovedIn
                                                       : RegionState::kUnmovable;
  rig.tx_app.CreateRegion(kSrc, 8 * kPage, src_state);
  rig.tx_app.CreateRegion(kWarmSrc, 8 * kPage, src_state);
  const auto payload = TestPattern(static_cast<std::size_t>(len), 3);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);
  ASSERT_EQ(rig.tx_app.Write(kWarmSrc, payload), AccessResult::kOk);
  if (IsApplicationAllocated(sem)) {
    rig.rx_app.CreateRegion(kDst, 8 * kPage);
  }

  // Every datagram on this rig is delivered with a device error.
  FaultRule rule;
  rule.site = FaultSite::kDeviceError;
  rule.probability = 1.0;
  rig.plan.AddRule(rule);

  // Warm-up: a first failing transfer brings the kernel to its steady state
  // (for the system-allocated semantics a failed input parks its prepared
  // region in the hidden-region cache — retained capacity, not a leak). The
  // measured transfer below must restore every counter from this baseline.
  const InputResult warm = rig.DriveTransfer(kWarmSrc, kDst, len, sem);
  ASSERT_FALSE(warm.ok);

  const auto sentinel = TestPattern(static_cast<std::size_t>(len), 200);
  if (IsApplicationAllocated(sem)) {
    // (Re-)fill so the destination pages are resident before the snapshot and
    // a later byte can be attributed to either the sentinel or the payload.
    ASSERT_EQ(rig.rx_app.Write(kDst, sentinel), AccessResult::kOk);
  }

  const std::size_t rx_free_before = rig.receiver.vm().pm().free_frames();
  const std::size_t tx_free_before = rig.sender.vm().pm().free_frames();

  const InputResult result = rig.DriveTransfer(kSrc, kDst, len, sem);

  EXPECT_GE(rig.plan.injected(FaultSite::kDeviceError), 2u);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.crc_ok);
  EXPECT_EQ(rig.rx_ep.stats().failed_inputs, 2u);
  EXPECT_GE(rig.rx_ep.stats().recovered_transfers, 1u);

  if (IsApplicationAllocated(sem)) {
    const auto got = rig.ReadBack(kDst, len);
    const bool untouched = std::memcmp(got.data(), sentinel.data(), len) == 0;
    const bool whole = std::memcmp(got.data(), payload.data(), len) == 0;
    EXPECT_TRUE(untouched || whole)
        << SemanticsName(sem) << "/" << InputBufferingName(buffering)
        << ": destination holds a mix of sentinel and payload bytes";
    if (IsStrongIntegrity(sem)) {
      // Strong integrity: the failure was detected before anything reached
      // the application buffer.
      EXPECT_TRUE(untouched) << SemanticsName(sem)
                             << ": strong-integrity destination was written";
    }
  }

  // Every receiver-side resource acquired for the failed input is back:
  // frames, references, zombies, pending operations.
  EXPECT_EQ(rig.receiver.vm().pm().free_frames(), rx_free_before);
  EXPECT_EQ(rig.receiver.vm().pm().zombie_frames(), 0u);
  EXPECT_EQ(rig.sender.vm().pm().zombie_frames(), 0u);
  EXPECT_EQ(rig.tx_ep.pending_operations(), 0u);
  EXPECT_EQ(rig.rx_ep.pending_operations(), 0u);
  if (IsApplicationAllocated(sem)) {
    // The sender's staging resources are also exactly restored. (For the
    // system-allocated semantics the output deallocates the source region by
    // contract, so the sender legitimately ends with more free frames.)
    EXPECT_EQ(rig.sender.vm().pm().free_frames(), tx_free_before);
  } else {
    EXPECT_GE(rig.sender.vm().pm().free_frames(), tx_free_before);
  }

  const InvariantReport report = rig.CheckInvariants(/*expect_quiescent=*/true);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllSemanticsAllBuffering, DeviceErrorPropertyTest,
    ::testing::Combine(::testing::ValuesIn(kAllSemantics),
                       ::testing::Values(InputBuffering::kEarlyDemux, InputBuffering::kPooled,
                                         InputBuffering::kOutboard)),
    [](const ::testing::TestParamInfo<DeviceErrorParam>& param_info) {
      std::string name(SemanticsName(std::get<0>(param_info.param)));
      name += "_" + std::string(InputBufferingName(std::get<1>(param_info.param)));
      for (char& c : name) {
        if (c == '-' || c == ' ') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace genie
