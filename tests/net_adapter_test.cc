// Adapter + link tests: timing, three receive-buffering schemes, streaming
// visibility of racing stores, drops, and fault injection.
#include "src/net/adapter.h"

#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/net/iovec_io.h"
#include "src/sim/engine.h"
#include "src/sim/resource.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;

class AdapterTest : public ::testing::Test {
 protected:
  AdapterTest() : cost_(MachineProfile::MicronP166()), pm_(128, kPage), link_(eng_, "link") {}

  std::unique_ptr<Adapter> MakeTx() {
    return std::make_unique<Adapter>(eng_, pm_, cost_, "tx", Adapter::Config{});
  }
  std::unique_ptr<Adapter> MakeRx(InputBuffering mode, std::size_t pool_pages = 16) {
    Adapter::Config cfg;
    cfg.rx_buffering = mode;
    cfg.pool_pages = pool_pages;
    return std::make_unique<Adapter>(eng_, pm_, cost_, "rx", cfg);
  }

  // Builds an iovec over freshly allocated frames filled with a pattern.
  IoVec MakeBuffer(std::size_t bytes, unsigned char seed) {
    IoVec iov;
    std::size_t remaining = bytes;
    std::size_t produced = 0;
    while (remaining > 0) {
      const FrameId f = pm_.Allocate();
      frames_.push_back(f);
      const std::uint32_t n = static_cast<std::uint32_t>(std::min<std::size_t>(kPage, remaining));
      auto data = pm_.Data(f);
      for (std::uint32_t i = 0; i < n; ++i) {
        data[i] = static_cast<std::byte>((seed + produced + i) & 0xFF);
      }
      iov.segments.push_back(IoSegment{f, 0, n});
      remaining -= n;
      produced += n;
    }
    return iov;
  }

  void TearDown() override {
    for (const FrameId f : frames_) {
      pm_.Free(f);
    }
  }

  Engine eng_;
  CostModel cost_;
  PhysicalMemory pm_;
  Resource link_;
  std::vector<FrameId> frames_;
};

TEST_F(AdapterTest, EarlyDemuxDeliversIntoPostedBuffer) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);

  const IoVec src = MakeBuffer(2 * kPage, 10);
  const IoVec dst = MakeBuffer(2 * kPage, 0);
  std::optional<RxCompletion> completion;
  rx->PostReceive(7, Adapter::PostedReceive{dst, [&](const RxCompletion& c) { completion = c; }});

  std::move(tx->TransmitFrame(7, src)).Detach();
  eng_.Run();

  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(completion->channel, 7u);
  EXPECT_EQ(completion->bytes, 2 * kPage);
  EXPECT_TRUE(completion->crc_ok);
  EXPECT_FALSE(completion->truncated);

  std::vector<std::byte> sent(2 * kPage);
  std::vector<std::byte> got(2 * kPage);
  ReadFromIoVec(pm_, src, 0, sent);
  ReadFromIoVec(pm_, dst, 0, got);
  EXPECT_EQ(std::memcmp(sent.data(), got.data(), sent.size()), 0);
  EXPECT_EQ(tx->frames_sent(), 1u);
  EXPECT_EQ(rx->frames_received(), 1u);
}

TEST_F(AdapterTest, TransferTimeMatchesLinkRate) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  const std::size_t bytes = 8 * kPage;
  const IoVec src = MakeBuffer(bytes, 1);
  const IoVec dst = MakeBuffer(bytes, 0);
  SimTime done_at = -1;
  rx->PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion&) {
                                              done_at = eng_.now();
                                            }});
  std::move(tx->TransmitFrame(1, src)).Detach();
  eng_.Run();
  // 0.0598 us/B at OC-3, chunked per page.
  const SimTime expected = 8 * MicrosToSimTime(kPage * 0.0598);
  EXPECT_EQ(done_at, expected);
}

TEST_F(AdapterTest, UnalignedScatterGather) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  // Source: offset segments; destination offset differently.
  IoVec src = MakeBuffer(2 * kPage, 42);
  src.segments[0].offset = 100;
  src.segments[0].length = kPage - 100;
  IoVec dst = MakeBuffer(2 * kPage, 0);
  dst.segments[1].offset = 50;
  dst.segments[1].length = kPage - 50;
  const std::uint64_t n = std::min(src.total_bytes(), dst.total_bytes());

  std::optional<RxCompletion> completion;
  rx->PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion& c) { completion = c; }});
  std::move(tx->TransmitFrame(1, src)).Detach();
  eng_.Run();

  ASSERT_TRUE(completion.has_value());
  std::vector<std::byte> sent(n);
  std::vector<std::byte> got(n);
  ReadFromIoVec(pm_, src, 0, sent);
  ReadFromIoVec(pm_, dst, 0, got);
  EXPECT_EQ(std::memcmp(sent.data(), got.data(), n), 0);
}

TEST_F(AdapterTest, NoPostedBufferDropsFrame) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  const IoVec src = MakeBuffer(kPage, 1);
  std::move(tx->TransmitFrame(9, src)).Detach();
  eng_.Run();
  EXPECT_EQ(rx->frames_dropped_no_buffer(), 1u);
  EXPECT_EQ(rx->drops_no_posted_buffer(), 1u);  // attributed to its cause
  EXPECT_EQ(rx->frames_received(), 0u);
}

TEST_F(AdapterTest, PostedBuffersConsumedFifoPerChannel) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  const IoVec dst1 = MakeBuffer(kPage, 0);
  const IoVec dst2 = MakeBuffer(kPage, 0);
  std::vector<int> order;
  rx->PostReceive(3, Adapter::PostedReceive{dst1, [&](const RxCompletion&) { order.push_back(1); }});
  rx->PostReceive(3, Adapter::PostedReceive{dst2, [&](const RxCompletion&) { order.push_back(2); }});
  EXPECT_EQ(rx->posted_receives(3), 2u);
  const IoVec src = MakeBuffer(kPage, 5);
  std::move(tx->TransmitFrame(3, src)).Detach();
  std::move(tx->TransmitFrame(3, src)).Detach();
  eng_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(rx->posted_receives(3), 0u);
}

TEST_F(AdapterTest, LongerFrameThanBufferTruncates) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  const IoVec src = MakeBuffer(2 * kPage, 1);
  const IoVec dst = MakeBuffer(kPage, 0);
  std::optional<RxCompletion> completion;
  rx->PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion& c) { completion = c; }});
  std::move(tx->TransmitFrame(1, src)).Detach();
  eng_.Run();
  ASSERT_TRUE(completion.has_value());
  EXPECT_TRUE(completion->truncated);
  EXPECT_EQ(completion->bytes, kPage);
}

TEST_F(AdapterTest, MidTransmissionStoreVisibleOnLaterPagesOnly) {
  // Cut-through hazard: a store racing with the DMA corrupts pages not yet
  // transmitted but never pages already on the wire.
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  const IoVec src = MakeBuffer(4 * kPage, 0x00);
  const IoVec dst = MakeBuffer(4 * kPage, 0x00);
  rx->PostReceive(1, Adapter::PostedReceive{dst, nullptr});

  std::move(tx->TransmitFrame(1, src)).Detach();
  // Tamper all four source pages midway through the transfer (after two
  // page-times).
  const SimTime page_time = MicrosToSimTime(kPage * 0.0598);
  eng_.ScheduleAt(2 * page_time + 1, [&] {
    for (const IoSegment& seg : src.segments) {
      std::memset(pm_.Data(seg.frame).data(), 0xEE, kPage);
    }
  });
  eng_.Run();

  std::vector<std::byte> got(4 * kPage);
  ReadFromIoVec(pm_, dst, 0, got);
  // Pages 0-2 were snapshotted by the DMA engine at 0, 1 and 2 page-times —
  // all before the store; original pattern (not 0xEE).
  EXPECT_NE(static_cast<unsigned char>(got[0]), 0xEE);
  EXPECT_NE(static_cast<unsigned char>(got[kPage]), 0xEE);
  EXPECT_NE(static_cast<unsigned char>(got[2 * kPage]), 0xEE);
  // Page 3 was still in host memory when the store landed: corrupted.
  EXPECT_EQ(static_cast<unsigned char>(got[3 * kPage]), 0xEE);
}

TEST_F(AdapterTest, PooledReceiveFillsOverlayPages) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kPooled, 8);
  tx->ConnectTo(rx.get(), &link_);
  const IoVec src = MakeBuffer(2 * kPage + 100, 3);
  std::optional<PooledFrame> got;
  rx->set_pooled_handler([&](PooledFrame f) { got = std::move(f); });
  std::move(tx->TransmitFrame(4, src)).Detach();
  eng_.Run();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->bytes, 2 * kPage + 100);
  ASSERT_EQ(got->overlay_pages.size(), 3u);
  EXPECT_EQ(rx->pool()->available(), 8u - 3u);
  // Verify content.
  std::vector<std::byte> sent(got->bytes);
  ReadFromIoVec(pm_, src, 0, sent);
  EXPECT_EQ(std::memcmp(pm_.Data(got->overlay_pages[0]).data(), sent.data(), kPage), 0);
  EXPECT_EQ(std::memcmp(pm_.Data(got->overlay_pages[2]).data(), sent.data() + 2 * kPage, 100), 0);
  for (const FrameId f : got->overlay_pages) {
    rx->pool()->Free(f);
  }
  EXPECT_EQ(rx->pool()->available(), 8u);
}

TEST_F(AdapterTest, PoolDepletionDropsFrameAndRecyclesPages) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kPooled, 2);
  tx->ConnectTo(rx.get(), &link_);
  const IoVec src = MakeBuffer(4 * kPage, 3);  // Needs 4 overlay pages; pool has 2.
  bool handler_called = false;
  rx->set_pooled_handler([&](PooledFrame) { handler_called = true; });
  std::move(tx->TransmitFrame(4, src)).Detach();
  eng_.Run();
  EXPECT_FALSE(handler_called);
  EXPECT_EQ(rx->frames_dropped_no_buffer(), 1u);
  EXPECT_EQ(rx->drops_pool_exhausted(), 1u);
  EXPECT_EQ(rx->pool()->available(), 2u);  // Pages returned.
}

TEST_F(AdapterTest, OutboardReceiveStagesFrame) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kOutboard);
  tx->ConnectTo(rx.get(), &link_);
  const IoVec src = MakeBuffer(kPage + 17, 9);
  std::optional<OutboardFrame> got;
  rx->set_outboard_handler([&](OutboardFrame f) { got = f; });
  std::move(tx->TransmitFrame(2, src)).Detach();
  eng_.Run();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->bytes, kPage + 17);
  std::vector<std::byte> sent(kPage + 17);
  ReadFromIoVec(pm_, src, 0, sent);
  auto data = rx->OutboardData(got->handle);
  ASSERT_EQ(data.size(), sent.size());
  EXPECT_EQ(std::memcmp(data.data(), sent.data(), sent.size()), 0);
  rx->FreeOutboard(got->handle);
  EXPECT_EQ(rx->outboard_frames_held(), 0u);
}

TEST_F(AdapterTest, CrcErrorInjectionReported) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kDeviceError;
  rule.nth = 1;
  rule.max_fires = 1;
  plan.AddRule(rule);
  tx->set_fault_plan(&plan);
  const IoVec src = MakeBuffer(kPage, 1);
  const IoVec dst = MakeBuffer(kPage, 0);
  std::optional<RxCompletion> c1;
  std::optional<RxCompletion> c2;
  rx->PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion& c) { c1 = c; }});
  rx->PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion& c) { c2 = c; }});
  std::move(tx->TransmitFrame(1, src)).Detach();
  std::move(tx->TransmitFrame(1, src)).Detach();
  eng_.Run();
  ASSERT_TRUE(c1.has_value());
  ASSERT_TRUE(c2.has_value());
  EXPECT_FALSE(c1->crc_ok);  // Only the first frame is corrupted.
  EXPECT_TRUE(c2->crc_ok);
}

TEST_F(AdapterTest, FramesSerializeOnLink) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  const IoVec src = MakeBuffer(kPage, 1);
  const IoVec dst = MakeBuffer(kPage, 0);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    rx->PostReceive(1, Adapter::PostedReceive{
                           dst, [&](const RxCompletion&) { completions.push_back(eng_.now()); }});
    std::move(tx->TransmitFrame(1, src)).Detach();
  }
  eng_.Run();
  ASSERT_EQ(completions.size(), 3u);
  const SimTime page_time = MicrosToSimTime(kPage * 0.0598);
  EXPECT_EQ(completions[0], page_time);
  EXPECT_EQ(completions[1], 2 * page_time);
  EXPECT_EQ(completions[2], 3 * page_time);
}

TEST_F(AdapterTest, OutboardCapacityOverflowDropsFrame) {
  Adapter::Config cfg;
  cfg.rx_buffering = InputBuffering::kOutboard;
  cfg.outboard_capacity_bytes = 3 * kPage;  // Tiny staging RAM.
  auto tx = MakeTx();
  auto rx = std::make_unique<Adapter>(eng_, pm_, cost_, "rx", cfg);
  tx->ConnectTo(rx.get(), &link_);
  int delivered = 0;
  std::vector<std::uint32_t> handles;
  rx->set_outboard_handler([&](OutboardFrame f) {
    ++delivered;
    handles.push_back(f.handle);
  });
  const IoVec two_pages = MakeBuffer(2 * kPage, 1);
  // First frame fits (2 pages <= 3); second would exceed held+incoming.
  std::move(tx->TransmitFrame(1, two_pages)).Detach();
  std::move(tx->TransmitFrame(1, two_pages)).Detach();
  eng_.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(rx->frames_dropped_no_buffer(), 1u);
  EXPECT_EQ(rx->drops_outboard_overflow(), 1u);
  // Freeing the staged frame makes room again.
  rx->FreeOutboard(handles[0]);
  std::move(tx->TransmitFrame(1, two_pages)).Detach();
  eng_.Run();
  EXPECT_EQ(delivered, 2);
  rx->FreeOutboard(handles[1]);
}

TEST_F(AdapterTest, OversizedFrameRejected) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  const IoVec src = MakeBuffer(16 * kPage, 1);  // 64 KB > AAL5 max.
  EXPECT_DEATH(std::move(tx->TransmitFrame(1, src)).Detach(), "");
}

TEST_F(AdapterTest, CrcErrorViaFaultPlanRule) {
  // The supported injection path: a kDeviceError rule on the transmit-side
  // plan corrupts exactly the scheduled frame.
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kDeviceError;
  rule.nth = 2;
  plan.AddRule(rule);
  tx->set_fault_plan(&plan);

  const IoVec src = MakeBuffer(kPage, 1);
  const IoVec dst = MakeBuffer(kPage, 0);
  std::vector<bool> crc;
  for (int i = 0; i < 3; ++i) {
    rx->PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion& c) {
                                                crc.push_back(c.crc_ok);
                                              }});
    std::move(tx->TransmitFrame(1, src)).Detach();
  }
  eng_.Run();
  EXPECT_EQ(crc, (std::vector<bool>{true, false, true}));
  EXPECT_EQ(rx->rx_crc_errors(), 1u);
  EXPECT_EQ(plan.injected(FaultSite::kDeviceError), 1u);
}

TEST_F(AdapterTest, CrcErrorRulesQueueConsecutiveFrames) {
  // Two single-shot kDeviceError rules on consecutive frames corrupt exactly
  // the next two arrivals (the idiom the removed InjectCrcError shim offered).
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  FaultPlan plan(1);
  for (std::uint64_t nth = 1; nth <= 2; ++nth) {
    FaultRule rule;
    rule.site = FaultSite::kDeviceError;
    rule.nth = nth;
    rule.max_fires = 1;
    plan.AddRule(rule);
  }
  tx->set_fault_plan(&plan);
  const IoVec src = MakeBuffer(kPage, 1);
  const IoVec dst = MakeBuffer(kPage, 0);
  std::vector<bool> crc;
  for (int i = 0; i < 3; ++i) {
    rx->PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion& c) {
                                                crc.push_back(c.crc_ok);
                                              }});
    std::move(tx->TransmitFrame(1, src)).Detach();
  }
  eng_.Run();
  EXPECT_EQ(crc, (std::vector<bool>{false, false, true}));
  EXPECT_EQ(rx->rx_crc_errors(), 2u);
}

struct AckRecord {
  std::uint64_t channel;
  std::uint64_t seq;
  bool ok;
};

TEST_F(AdapterTest, SequencedFrameAckedAndDuplicateSuppressed) {
  Resource back(eng_, "back");
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  rx->ConnectTo(tx.get(), &back);  // control-cell return path for acks

  std::vector<AckRecord> acks;
  tx->set_ack_handler([&](std::uint64_t ch, std::uint64_t seq, bool ok) {
    acks.push_back({ch, seq, ok});
  });

  const IoVec src = MakeBuffer(kPage, 7);
  const IoVec dst1 = MakeBuffer(kPage, 0);
  const IoVec dst2 = MakeBuffer(kPage, 0);
  int completions = 0;
  rx->PostReceive(5, Adapter::PostedReceive{dst1, [&](const RxCompletion& c) {
                                              ++completions;
                                              EXPECT_EQ(c.seq, 1u);
                                            }});
  rx->PostReceive(5, Adapter::PostedReceive{dst2, [&](const RxCompletion&) { ++completions; }});

  auto ctl = std::make_shared<TxControl>();
  ctl->seq = 1;
  std::move(tx->TransmitFrame(5, src, 0, 0, ctl)).Detach();
  eng_.Run();
  EXPECT_EQ(completions, 1);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].ok);
  EXPECT_EQ(acks[0].seq, 1u);

  // Retransmission of the same sequence number (as after a lost ack): the
  // receive side suppresses it without consuming the second posted buffer,
  // and re-acks so the sender can stop.
  auto ctl2 = std::make_shared<TxControl>();
  ctl2->seq = 1;
  ctl2->skip_credit = true;
  std::move(tx->TransmitFrame(5, src, 0, 0, ctl2)).Detach();
  eng_.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(rx->rx_duplicate_frames(), 1u);
  EXPECT_EQ(rx->posted_receives(5), 1u);
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_TRUE(acks[1].ok);
  EXPECT_EQ(rx->acks_sent(), 2u);
}

TEST_F(AdapterTest, CorruptedSequencedFrameNackedAndBufferRestored) {
  Resource back(eng_, "back");
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  rx->ConnectTo(tx.get(), &back);

  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kDeviceError;
  rule.nth = 1;
  plan.AddRule(rule);
  tx->set_fault_plan(&plan);

  std::vector<AckRecord> acks;
  tx->set_ack_handler([&](std::uint64_t ch, std::uint64_t seq, bool ok) {
    acks.push_back({ch, seq, ok});
  });

  const IoVec src = MakeBuffer(kPage, 3);
  const IoVec dst = MakeBuffer(kPage, 0);
  std::optional<RxCompletion> completion;
  rx->PostReceive(2, Adapter::PostedReceive{dst, [&](const RxCompletion& c) { completion = c; }});

  auto ctl = std::make_shared<TxControl>();
  ctl->seq = 1;
  std::move(tx->TransmitFrame(2, src, 0, 0, ctl)).Detach();
  eng_.Run();
  // Link layer owns recovery: the host never sees the damaged frame, the
  // consumed posted buffer is back at the front of the queue, and a nack
  // went out.
  EXPECT_FALSE(completion.has_value());
  EXPECT_EQ(rx->rx_crc_errors(), 1u);
  EXPECT_EQ(rx->posted_receives(2), 1u);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_FALSE(acks[0].ok);
  EXPECT_EQ(rx->nacks_sent(), 1u);

  // Retransmission (same seq, clean wire) lands in the restored buffer.
  auto ctl2 = std::make_shared<TxControl>();
  ctl2->seq = 1;
  ctl2->skip_credit = true;
  std::move(tx->TransmitFrame(2, src, 0, 0, ctl2)).Detach();
  eng_.Run();
  ASSERT_TRUE(completion.has_value());
  EXPECT_TRUE(completion->crc_ok);
  EXPECT_EQ(completion->seq, 1u);
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_TRUE(acks[1].ok);

  std::vector<std::byte> sent(kPage);
  std::vector<std::byte> got(kPage);
  ReadFromIoVec(pm_, src, 0, sent);
  ReadFromIoVec(pm_, dst, 0, got);
  EXPECT_EQ(std::memcmp(sent.data(), got.data(), sent.size()), 0);
}

TEST_F(AdapterTest, LinkDropLosesFrameWithoutConsumingBuffer) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);

  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kLinkDrop;
  rule.nth = 1;
  plan.AddRule(rule);
  tx->set_fault_plan(&plan);

  const IoVec src = MakeBuffer(kPage, 4);
  const IoVec dst = MakeBuffer(kPage, 0);
  int completions = 0;
  rx->PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion&) { ++completions; }});

  std::move(tx->TransmitFrame(1, src)).Detach();
  eng_.Run();
  // The frame occupied the wire but never reached the peer.
  EXPECT_EQ(tx->frames_sent(), 1u);
  EXPECT_EQ(tx->link_frames_dropped(), 1u);
  EXPECT_EQ(rx->frames_received(), 0u);
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(rx->posted_receives(1), 1u);

  // The next frame goes through into the untouched buffer.
  std::move(tx->TransmitFrame(1, src)).Detach();
  eng_.Run();
  EXPECT_EQ(completions, 1);
}

TEST_F(AdapterTest, LinkDuplicateDeliversUnsequencedFrameTwice) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);

  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kLinkDuplicate;
  rule.nth = 1;
  plan.AddRule(rule);
  tx->set_fault_plan(&plan);

  const IoVec src = MakeBuffer(kPage, 6);
  const IoVec dst1 = MakeBuffer(kPage, 0);
  const IoVec dst2 = MakeBuffer(kPage, 0);
  int completions = 0;
  rx->PostReceive(1, Adapter::PostedReceive{dst1, [&](const RxCompletion&) { ++completions; }});
  rx->PostReceive(1, Adapter::PostedReceive{dst2, [&](const RxCompletion&) { ++completions; }});

  std::move(tx->TransmitFrame(1, src)).Detach();
  eng_.Run();
  // Without a sequence number there is no dedup: both copies land, each
  // consuming a posted buffer — exactly the hazard the ARQ layer removes.
  EXPECT_EQ(tx->link_frames_duplicated(), 1u);
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(rx->frames_received(), 2u);

  // Both copies carry the same bytes (snapshotted at the DMA instants).
  std::vector<std::byte> sent(kPage);
  std::vector<std::byte> got(kPage);
  ReadFromIoVec(pm_, src, 0, sent);
  ReadFromIoVec(pm_, dst2, 0, got);
  EXPECT_EQ(std::memcmp(sent.data(), got.data(), sent.size()), 0);
}

TEST_F(AdapterTest, LinkDuplicateOfSequencedFrameSuppressed) {
  Resource back(eng_, "back");
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  rx->ConnectTo(tx.get(), &back);

  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kLinkDuplicate;
  rule.nth = 1;
  plan.AddRule(rule);
  tx->set_fault_plan(&plan);

  const IoVec src = MakeBuffer(kPage, 6);
  const IoVec dst1 = MakeBuffer(kPage, 0);
  const IoVec dst2 = MakeBuffer(kPage, 0);
  int completions = 0;
  rx->PostReceive(1, Adapter::PostedReceive{dst1, [&](const RxCompletion&) { ++completions; }});
  rx->PostReceive(1, Adapter::PostedReceive{dst2, [&](const RxCompletion&) { ++completions; }});

  auto ctl = std::make_shared<TxControl>();
  ctl->seq = 1;
  std::move(tx->TransmitFrame(1, src, 0, 0, ctl)).Detach();
  eng_.Run();
  // The dedup window absorbs the wire-level duplicate: one host delivery,
  // one spare buffer, and a re-ack for the suppressed copy.
  EXPECT_EQ(tx->link_frames_duplicated(), 1u);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(rx->rx_duplicate_frames(), 1u);
  EXPECT_EQ(rx->posted_receives(1), 1u);
  EXPECT_EQ(rx->acks_sent(), 2u);
}

TEST_F(AdapterTest, LinkReorderDeliversHeldFrameBehindYounger) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);

  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kLinkReorder;
  rule.nth = 1;
  plan.AddRule(rule);
  tx->set_fault_plan(&plan);

  const IoVec src_a = MakeBuffer(kPage, 0x11);
  const IoVec src_b = MakeBuffer(kPage, 0x22);
  const IoVec dst1 = MakeBuffer(kPage, 0);
  const IoVec dst2 = MakeBuffer(kPage, 0);
  std::vector<std::uint32_t> arrival_headers;
  auto note = [&](const RxCompletion& c) { arrival_headers.push_back(c.header); };
  rx->PostReceive(1, Adapter::PostedReceive{dst1, note});
  rx->PostReceive(1, Adapter::PostedReceive{dst2, note});

  std::move(tx->TransmitFrame(1, src_a, /*header=*/0xA)).Detach();
  std::move(tx->TransmitFrame(1, src_b, /*header=*/0xB)).Detach();
  eng_.Run();
  // Frame A was held back and delivered late, behind the younger frame B.
  EXPECT_EQ(tx->link_frames_reordered(), 1u);
  EXPECT_EQ(arrival_headers, (std::vector<std::uint32_t>{0xB, 0xA}));

  // The late copy carries A's bytes even though it landed second.
  std::vector<std::byte> sent(kPage);
  std::vector<std::byte> got(kPage);
  ReadFromIoVec(pm_, src_a, 0, sent);
  ReadFromIoVec(pm_, dst2, 0, got);
  EXPECT_EQ(std::memcmp(sent.data(), got.data(), sent.size()), 0);
}

TEST_F(AdapterTest, LinkReorderFlushTimerDeliversLoneHeldFrame) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);

  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kLinkReorder;
  rule.nth = 1;
  rule.arg = 30'000;  // flush after 30 us if no younger frame shows up
  plan.AddRule(rule);
  tx->set_fault_plan(&plan);

  const IoVec src = MakeBuffer(kPage, 5);
  const IoVec dst = MakeBuffer(kPage, 0);
  SimTime done_at = -1;
  rx->PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion&) {
                                              done_at = eng_.now();
                                            }});
  std::move(tx->TransmitFrame(1, src)).Detach();
  eng_.Run();
  // Delivered by the flush timer: wire time + the injected hold delay.
  const SimTime wire = MicrosToSimTime(kPage * 0.0598);
  EXPECT_EQ(done_at, wire + 30'000);
  EXPECT_EQ(rx->frames_received(), 1u);
}

TEST_F(AdapterTest, CancelPostedReceiveRemovesQueuedBuffer) {
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  const IoVec dst1 = MakeBuffer(kPage, 0);
  const IoVec dst2 = MakeBuffer(kPage, 0);
  std::vector<int> order;
  rx->PostReceive(3, Adapter::PostedReceive{dst1, [&](const RxCompletion&) { order.push_back(1); },
                                            /*cancel_id=*/11});
  rx->PostReceive(3, Adapter::PostedReceive{dst2, [&](const RxCompletion&) { order.push_back(2); },
                                            /*cancel_id=*/22});

  EXPECT_FALSE(rx->CancelPostedReceive(3, 0));   // 0 is never a valid id
  EXPECT_FALSE(rx->CancelPostedReceive(9, 11));  // wrong channel
  EXPECT_TRUE(rx->CancelPostedReceive(3, 11));
  EXPECT_FALSE(rx->CancelPostedReceive(3, 11));  // idempotent: already gone
  EXPECT_EQ(rx->posted_receives(3), 1u);

  // The next frame lands in the surviving buffer, not the cancelled one.
  const IoVec src = MakeBuffer(kPage, 8);
  std::move(tx->TransmitFrame(3, src)).Detach();
  eng_.Run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST_F(AdapterTest, AbortCreditWaitBreaksCreditDeadlock) {
  Adapter::Config tx_cfg;
  tx_cfg.flow_control = true;
  auto tx = std::make_unique<Adapter>(eng_, pm_, cost_, "tx", tx_cfg);
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);

  // No posted buffer -> no credit -> the transmission parks forever. This is
  // the credit deadlock the transfer watchdog breaks.
  const IoVec src = MakeBuffer(kPage, 2);
  auto ctl = std::make_shared<TxControl>();
  ctl->seq = 1;
  std::move(tx->TransmitFrame(4, src, 0, 0, ctl)).Detach();
  eng_.Run();
  EXPECT_EQ(tx->frames_sent(), 0u);
  EXPECT_EQ(tx->credit_waiters(4), 1u);

  EXPECT_FALSE(tx->AbortCreditWait(4, nullptr));  // must name the waiter
  EXPECT_TRUE(tx->AbortCreditWait(4, ctl));
  eng_.Run();
  EXPECT_TRUE(ctl->aborted);
  EXPECT_EQ(tx->credit_waiters(4), 0u);
  EXPECT_EQ(tx->frames_sent(), 0u);  // nothing ever went out
  EXPECT_FALSE(tx->AbortCreditWait(4, ctl));  // idempotent: waiter gone
}

TEST_F(AdapterTest, WideWindowDuplicateStillSuppressed) {
  // Regression: the legacy dedup pruned its seen-set below max_seq - 128
  // regardless of the configured window, so with a window wider than 128 a
  // laggard retransmission of an old frame was re-delivered to the host.
  // The windowed receiver keeps a cumulative mark instead: anything at or
  // below it is recognized as a duplicate no matter how far the window has
  // advanced.
  Resource back(eng_, "back");
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  rx->ConnectTo(tx.get(), &back);
  tx->set_arq_window(256);
  rx->set_arq_window(256);

  const IoVec src = MakeBuffer(kPage, 7);
  const IoVec dst = MakeBuffer(kPage, 0);
  int completions = 0;
  auto note = [&](const RxCompletion&) { ++completions; };
  // Advance the receive window far past the legacy 128-deep prune horizon.
  constexpr std::uint64_t kFrames = 200;
  for (std::uint64_t seq = 1; seq <= kFrames; ++seq) {
    rx->PostReceive(3, Adapter::PostedReceive{dst, note});
    auto ctl = std::make_shared<TxControl>();
    ctl->seq = seq;
    std::move(tx->TransmitFrame(3, src, 0, 0, ctl)).Detach();
    eng_.Run();
  }
  EXPECT_EQ(completions, static_cast<int>(kFrames));
  EXPECT_EQ(rx->rx_duplicate_frames(), 0u);

  // A very late retransmission of seq 1 (as after a lost ack plus maximal
  // backoff) must be suppressed, not delivered into the posted buffer.
  rx->PostReceive(3, Adapter::PostedReceive{dst, note});
  auto replay = std::make_shared<TxControl>();
  replay->seq = 1;
  replay->skip_credit = true;
  std::move(tx->TransmitFrame(3, src, 0, 0, replay)).Detach();
  eng_.Run();
  EXPECT_EQ(completions, static_cast<int>(kFrames));  // no re-delivery
  EXPECT_EQ(rx->rx_duplicate_frames(), 1u);
  EXPECT_EQ(rx->posted_receives(3), 1u);  // buffer not consumed
}

TEST_F(AdapterTest, WindowedReceiverBatchesSackAcks) {
  // With a window configured, per-frame ack cells are replaced by batched
  // SACK trains: frames accepted within one control-cell latency of each
  // other share a single flush.
  Resource back(eng_, "back");
  auto tx = MakeTx();
  auto rx = MakeRx(InputBuffering::kEarlyDemux);
  tx->ConnectTo(rx.get(), &link_);
  rx->ConnectTo(tx.get(), &back);
  tx->set_arq_window(8);
  rx->set_arq_window(8);

  std::vector<SackCell> last_train;
  int trains = 0;
  tx->set_sack_handler([&](std::uint64_t channel, std::vector<SackCell> cells) {
    EXPECT_EQ(channel, 2u);
    last_train = std::move(cells);
    ++trains;
  });

  // Frames short enough that several clear the wire within one control-cell
  // latency (5 us ~ 83 wire-bytes at OC-3): they must share a flush.
  const IoVec src = MakeBuffer(64, 5);
  const IoVec dst = MakeBuffer(64, 0);
  for (int i = 0; i < 4; ++i) {
    rx->PostReceive(2, Adapter::PostedReceive{dst, nullptr});
  }
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    auto ctl = std::make_shared<TxControl>();
    ctl->seq = seq;
    std::move(tx->TransmitFrame(2, src, 0, 0, ctl)).Detach();
  }
  eng_.Run();
  // Four frames, but far fewer flushes than frames (back-to-back arrivals
  // accumulate under the armed flush); the final train covers all of them.
  EXPECT_EQ(rx->frames_received(), 4u);
  EXPECT_GE(trains, 1);
  EXPECT_LT(trains, 4);
  EXPECT_EQ(rx->sack_flushes(), static_cast<std::uint64_t>(trains));
  ASSERT_FALSE(last_train.empty());
  EXPECT_EQ(last_train.back().cum, 4u);
}

}  // namespace
}  // namespace genie
