// The latency estimator must reproduce the paper's Table 7 "E" rows on the
// Micron P166 (within small tolerances: our model charges a 7 us system
// buffer allocation the paper folds away, and the paper's published
// coefficients are rounded).
#include "src/analysis/latency_model.h"

#include <gtest/gtest.h>

namespace genie {
namespace {

struct PaperRow {
  Semantics sem;
  double slope;      // us/B
  double intercept;  // us
};

constexpr double kSlopeTol = 3e-4;
constexpr double kInterceptTol = 12.0;

class EarlyDemuxERows : public ::testing::TestWithParam<PaperRow> {};

TEST_P(EarlyDemuxERows, MatchesPaperTable7) {
  const CostModel cost(MachineProfile::MicronP166());
  const PaperRow row = GetParam();
  const LatencyLine line =
      EstimateLatencyLine(cost, row.sem, InputBuffering::kEarlyDemux, true);
  EXPECT_NEAR(line.slope_us_per_byte, row.slope, kSlopeTol) << SemanticsName(row.sem);
  EXPECT_NEAR(line.intercept_us, row.intercept, kInterceptTol) << SemanticsName(row.sem);
}

INSTANTIATE_TEST_SUITE_P(Table7, EarlyDemuxERows,
                         ::testing::Values(PaperRow{Semantics::kCopy, 0.0997, 141},
                                           PaperRow{Semantics::kEmulatedCopy, 0.0621, 153},
                                           PaperRow{Semantics::kShare, 0.0619, 165},
                                           PaperRow{Semantics::kEmulatedShare, 0.0602, 137},
                                           PaperRow{Semantics::kMove, 0.0628, 197},
                                           PaperRow{Semantics::kEmulatedMove, 0.0610, 151},
                                           PaperRow{Semantics::kWeakMove, 0.0620, 173},
                                           PaperRow{Semantics::kEmulatedWeakMove, 0.0603, 144}));

class AlignedPooledERows : public ::testing::TestWithParam<PaperRow> {};

TEST_P(AlignedPooledERows, MatchesPaperTable7) {
  const CostModel cost(MachineProfile::MicronP166());
  const PaperRow row = GetParam();
  const LatencyLine line = EstimateLatencyLine(cost, row.sem, InputBuffering::kPooled, true);
  EXPECT_NEAR(line.slope_us_per_byte, row.slope, kSlopeTol) << SemanticsName(row.sem);
  EXPECT_NEAR(line.intercept_us, row.intercept, kInterceptTol) << SemanticsName(row.sem);
}

INSTANTIATE_TEST_SUITE_P(Table7, AlignedPooledERows,
                         ::testing::Values(PaperRow{Semantics::kCopy, 0.100, 166},
                                           PaperRow{Semantics::kEmulatedCopy, 0.0625, 178},
                                           PaperRow{Semantics::kShare, 0.0637, 204},
                                           PaperRow{Semantics::kEmulatedShare, 0.0621, 175},
                                           PaperRow{Semantics::kMove, 0.0634, 224},
                                           PaperRow{Semantics::kEmulatedMove, 0.0625, 185},
                                           PaperRow{Semantics::kWeakMove, 0.0637, 212},
                                           PaperRow{Semantics::kEmulatedWeakMove, 0.0621, 183}));

class UnalignedPooledERows : public ::testing::TestWithParam<PaperRow> {};

TEST_P(UnalignedPooledERows, MatchesPaperTable7) {
  const CostModel cost(MachineProfile::MicronP166());
  const PaperRow row = GetParam();
  const LatencyLine line = EstimateLatencyLine(cost, row.sem, InputBuffering::kPooled, false);
  EXPECT_NEAR(line.slope_us_per_byte, row.slope, kSlopeTol) << SemanticsName(row.sem);
  EXPECT_NEAR(line.intercept_us, row.intercept, kInterceptTol) << SemanticsName(row.sem);
}

// Unaligned pooled buffering: application-allocated semantics pay a copyout;
// system-allocated semantics are unaffected (their buffers are page-aligned).
INSTANTIATE_TEST_SUITE_P(Table7, UnalignedPooledERows,
                         ::testing::Values(PaperRow{Semantics::kCopy, 0.100, 166},
                                           PaperRow{Semantics::kEmulatedCopy, 0.0828, 177},
                                           PaperRow{Semantics::kShare, 0.0841, 203},
                                           PaperRow{Semantics::kEmulatedShare, 0.0825, 175},
                                           PaperRow{Semantics::kMove, 0.0634, 224},
                                           PaperRow{Semantics::kEmulatedMove, 0.0625, 185},
                                           PaperRow{Semantics::kWeakMove, 0.0637, 212},
                                           PaperRow{Semantics::kEmulatedWeakMove, 0.0621, 183}));

// Headline numbers implied by the model.
TEST(LatencyModelTest, HeadlineResults) {
  const CostModel cost(MachineProfile::MicronP166());
  const GenieOptions opts;
  const std::uint64_t b = 60 * 1024;
  const double copy =
      EstimateLatencyUs(cost, opts, Semantics::kCopy, InputBuffering::kEarlyDemux, 0, b);
  const double ecopy =
      EstimateLatencyUs(cost, opts, Semantics::kEmulatedCopy, InputBuffering::kEarlyDemux, 0, b);
  // 37% latency reduction for 60 KB datagrams (paper Section 7).
  EXPECT_NEAR((copy - ecopy) / copy, 0.37, 0.02);
  // Equivalent throughputs: 78 Mbps copy, ~124 Mbps emulated copy.
  EXPECT_NEAR(static_cast<double>(b) * 8 / copy, 78.0, 2.0);
  EXPECT_NEAR(static_cast<double>(b) * 8 / ecopy, 124.0, 2.0);
}

TEST(LatencyModelTest, ShortDatagramRegime) {
  // Figure 5: below the conversion threshold emulated copy tracks copy;
  // the gap to emulated share is maximal around half a page.
  const CostModel cost(MachineProfile::MicronP166());
  const GenieOptions opts;
  const double copy_1k =
      EstimateLatencyUs(cost, opts, Semantics::kCopy, InputBuffering::kEarlyDemux, 0, 1024);
  const double ecopy_1k = EstimateLatencyUs(cost, opts, Semantics::kEmulatedCopy,
                                            InputBuffering::kEarlyDemux, 0, 1024);
  EXPECT_NEAR(copy_1k, ecopy_1k, 1.0);  // Converted: same path.

  const double ecopy_half = EstimateLatencyUs(cost, opts, Semantics::kEmulatedCopy,
                                              InputBuffering::kEarlyDemux, 0, 2048);
  const double eshare_half = EstimateLatencyUs(cost, opts, Semantics::kEmulatedShare,
                                               InputBuffering::kEarlyDemux, 0, 2048);
  // Paper: 325 vs 254 us at half a page.
  EXPECT_NEAR(ecopy_half, 325, 25);
  EXPECT_NEAR(eshare_half, 254, 25);

  // Move's zero-completion makes it by far the worst for short datagrams.
  const double move_short =
      EstimateLatencyUs(cost, opts, Semantics::kMove, InputBuffering::kEarlyDemux, 0, 64);
  const double emove_short = EstimateLatencyUs(cost, opts, Semantics::kEmulatedMove,
                                               InputBuffering::kEarlyDemux, 0, 64);
  EXPECT_GT(move_short, emove_short + 40);
}

TEST(LatencyModelTest, ReverseCopyoutCrossover) {
  // Just below the threshold the partial page is copied; above, completed
  // and swapped — cheaper for nearly-full pages.
  const CostModel cost(MachineProfile::MicronP166());
  const GenieOptions opts;
  const double below = EstimateLatencyUs(cost, opts, Semantics::kEmulatedCopy,
                                         InputBuffering::kEarlyDemux, 0, 4096 + 2178);
  const double above = EstimateLatencyUs(cost, opts, Semantics::kEmulatedCopy,
                                         InputBuffering::kEarlyDemux, 0, 4096 + 4000);
  // 4000-byte tail: completed with 96 bytes + swap, far cheaper than a
  // 4000-byte copyout would be.
  const double wire_delta = (4000 - 2178) * 0.0598;
  EXPECT_LT(above - below, wire_delta + 25.0);
}

TEST(LatencyModelTest, OutboardEmulatedCopyApproachesEmulatedShare) {
  // Section 6.2.3 / Section 7 expectation: with outboard buffering emulated
  // copy is implemented much like emulated share; other semantics pay the
  // same staging penalty.
  const CostModel cost(MachineProfile::MicronP166());
  const GenieOptions opts;
  const std::uint64_t b = 60 * 1024;
  const double ecopy =
      EstimateLatencyUs(cost, opts, Semantics::kEmulatedCopy, InputBuffering::kOutboard, 0, b);
  const double eshare =
      EstimateLatencyUs(cost, opts, Semantics::kEmulatedShare, InputBuffering::kOutboard, 0, b);
  const double ecopy_ed =
      EstimateLatencyUs(cost, opts, Semantics::kEmulatedCopy, InputBuffering::kEarlyDemux, 0, b);
  const double eshare_ed =
      EstimateLatencyUs(cost, opts, Semantics::kEmulatedShare, InputBuffering::kEarlyDemux, 0, b);
  // "Even closer to emulated share" than with early demultiplexing (no swap,
  // no aligned buffer).
  EXPECT_LT(ecopy - eshare, (ecopy_ed - eshare_ed) * 0.5);
  EXPECT_NEAR(ecopy, eshare, 60.0);
  // And both pay the store-and-forward staging vs early demux.
  EXPECT_GT(ecopy, ecopy_ed);
}

TEST(LatencyModelTest, CriticalPathOpsNonEmpty) {
  for (const Semantics sem : kAllSemantics) {
    for (const InputBuffering buf :
         {InputBuffering::kEarlyDemux, InputBuffering::kPooled, InputBuffering::kOutboard}) {
      const OpList ops = CriticalPathOps(sem, buf, true);
      EXPECT_GE(ops.sender_prepare.size(), 2u);
      EXPECT_GE(ops.receiver_critical.size(), 2u);
    }
  }
}

}  // namespace
}  // namespace genie
