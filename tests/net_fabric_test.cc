// Switched-fabric unit tests: DRR link arbitration, star/dumbbell routing,
// control-cell return paths, and end-to-end transfers across four nodes.
#include <gtest/gtest.h>

#include <vector>

#include "src/net/fabric.h"
#include "src/net/switch_link.h"
#include "tests/genie_test_util.h"

namespace genie {
namespace {

// --- SwitchLink arbitration ---

Task<void> HoldLink(Engine& engine, SwitchLink& link, std::uint64_t channel,
                    std::uint64_t bytes, SimTime hold, std::vector<std::uint64_t>* order) {
  struct Awaiter {
    SwitchLink& link;
    std::uint64_t channel;
    std::uint64_t bytes;
    bool await_ready() { return link.TryAcquire(channel, bytes); }
    void await_suspend(std::coroutine_handle<> h) { link.Enqueue(channel, bytes, h); }
    void await_resume() const noexcept {}
  };
  co_await Awaiter{link, channel, bytes};
  order->push_back(channel);
  co_await Delay(engine, hold);
  link.Release();
}

TEST(SwitchLinkTest, UncontendedAcquireIsSynchronousAndAddsNoEvents) {
  Engine engine;
  SwitchLink link(engine, "l", 4096);
  EXPECT_TRUE(link.TryAcquire(7, 100));
  EXPECT_TRUE(link.held());
  link.Release();
  EXPECT_FALSE(link.held());
  EXPECT_EQ(link.grants(), 1u);
  EXPECT_EQ(engine.events_executed(), 0u);
}

TEST(SwitchLinkTest, WaitersHavePriorityOverLateArrivals) {
  Engine engine;
  SwitchLink link(engine, "l", 4096);
  std::vector<std::uint64_t> order;
  std::move(HoldLink(engine, link, 1, 100, 10, &order)).Detach();
  std::move(HoldLink(engine, link, 2, 100, 10, &order)).Detach();
  // Channel 2 is queued; a TryAcquire while someone waits must fail even
  // though the holder released (the arbiter owns the hand-off).
  engine.Run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2}));
}

// Two channels with equal backlogs of very different frame sizes: DRR grants
// byte-proportional turns, so the small-frame channel gets several frames
// per jumbo frame instead of strict FIFO alternation.
TEST(SwitchLinkTest, DrrInterleavesByBytesNotArrivalOrder) {
  Engine engine;
  SwitchLink link(engine, "l", 4096);
  std::vector<std::uint64_t> order;
  // Channel 1: four 4096-byte frames queued first; channel 2: four
  // 1024-byte frames queued after. All enqueue at t=0 behind a holder.
  std::move(HoldLink(engine, link, 9, 1, 1, &order)).Detach();  // initial holder
  for (int i = 0; i < 4; ++i) {
    std::move(HoldLink(engine, link, 1, 4096, 1, &order)).Detach();
  }
  for (int i = 0; i < 4; ++i) {
    std::move(HoldLink(engine, link, 2, 1024, 1, &order)).Detach();
  }
  engine.Run();
  ASSERT_EQ(order.size(), 9u);
  // Every channel-1 grant costs a full quantum; channel 2's four frames fit
  // in one quantum. DRR must not leave channel 2 starving behind all four
  // jumbo frames (pure FIFO would give 9,1,1,1,1,2,2,2,2).
  std::size_t first_two = 0;
  while (first_two < order.size() && order[first_two] != 2) {
    ++first_two;
  }
  EXPECT_LT(first_two, 3u) << "small-frame channel starved behind jumbo backlog";
  EXPECT_EQ(link.bytes_granted(), 1u + 4u * 4096u + 4u * 1024u);
}

TEST(SwitchLinkTest, GrantOrderIsDeterministic) {
  auto run = [] {
    Engine engine;
    SwitchLink link(engine, "l", 2048);
    std::vector<std::uint64_t> order;
    std::move(HoldLink(engine, link, 5, 1, 3, &order)).Detach();
    for (std::uint64_t ch = 1; ch <= 4; ++ch) {
      for (int i = 0; i < 3; ++i) {
        std::move(HoldLink(engine, link, ch, 512 * ch, 2, &order)).Detach();
      }
    }
    engine.Run();
    return order;
  };
  EXPECT_EQ(run(), run());
}

// --- Fabric wiring ---

struct FabricRig {
  static constexpr std::size_t kNodes = 4;

  explicit FabricRig(Fabric::Topology topo = Fabric::Topology::kStar,
                     InputBuffering rx = InputBuffering::kEarlyDemux)
      : fabric(engine, Fabric::Config{topo, 4096}) {
    for (std::size_t i = 0; i < kNodes; ++i) {
      nodes.push_back(std::make_unique<Node>(
          engine, "n" + std::to_string(i),
          Node::Config{MachineProfile::MicronP166(), 512, rx, 64, true}));
      fabric.Attach(nodes[i]->adapter(), static_cast<int>(i % 2));
      apps.push_back(&nodes[i]->CreateProcess("app"));
    }
  }

  InputResult Transfer(std::size_t from, std::size_t to, std::uint64_t channel,
                       std::uint64_t len, Semantics sem) {
    Endpoint tx_ep(*nodes[from], channel);
    Endpoint rx_ep(*nodes[to], channel);
    fabric.OpenChannel(channel, nodes[from]->adapter(), nodes[to]->adapter());
    constexpr Vaddr kSrc = 0x100000;
    constexpr Vaddr kDst = 0x200000;
    const std::uint32_t page = nodes[from]->page_size();
    const std::uint64_t pages = (len + page - 1) / page;
    // System-allocated outputs consume a moved-in buffer; application-
    // allocated ones send from a plain region.
    const Vaddr src = IsSystemAllocated(sem) ? tx_ep.AllocateIoBuffer(*apps[from], len) : kSrc;
    if (!IsSystemAllocated(sem)) {
      apps[from]->CreateRegion(kSrc, pages * page);
    }
    apps[to]->CreateRegion(kDst, pages * page);
    const std::vector<std::byte> payload = TestPattern(len, static_cast<unsigned char>(channel));
    EXPECT_EQ(apps[from]->Write(src, payload), AccessResult::kOk);

    InputResult result;
    auto input_driver = [](Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t n,
                           Semantics s, InputResult* out) -> Task<void> {
      if (IsSystemAllocated(s)) {
        *out = co_await ep.InputSystemAllocated(app, n, s);
      } else {
        *out = co_await ep.Input(app, va, n, s);
      }
    };
    std::move(input_driver(rx_ep, *apps[to], kDst, len, sem, &result)).Detach();
    std::move(tx_ep.Output(*apps[from], src, len, sem)).Detach();
    engine.Run();
    if (result.ok) {
      std::vector<std::byte> got(len);
      EXPECT_EQ(apps[to]->Read(result.addr, got), AccessResult::kOk);
      EXPECT_EQ(got, payload);
      if (IsSystemAllocated(sem)) {
        rx_ep.FreeIoBuffer(*apps[to], result.addr);
      }
    }
    fabric.CloseChannel(channel);
    if (!IsSystemAllocated(sem)) {
      apps[from]->RemoveRegion(kSrc);
    }
    apps[to]->RemoveRegion(kDst);
    return result;
  }

  Engine engine;
  Fabric fabric;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<AddressSpace*> apps;
};

TEST(FabricTest, StarDeliversBetweenEveryNodePair) {
  FabricRig rig;
  std::uint64_t channel = 1;
  for (std::size_t from = 0; from < FabricRig::kNodes; ++from) {
    for (std::size_t to = 0; to < FabricRig::kNodes; ++to) {
      if (from == to) {
        continue;
      }
      const InputResult r =
          rig.Transfer(from, to, channel++, 3000, Semantics::kEmulatedCopy);
      EXPECT_TRUE(r.ok) << from << " -> " << to;
      EXPECT_EQ(r.bytes, 3000u);
    }
  }
  EXPECT_EQ(rig.fabric.frames_switched(), 12u);
}

TEST(FabricTest, AllSemanticsCrossTheFabric) {
  FabricRig rig;
  std::uint64_t channel = 1;
  for (const Semantics sem : kAllSemantics) {
    const InputResult r = rig.Transfer(0, 2, channel++, 5000, sem);
    EXPECT_TRUE(r.ok) << SemanticsName(sem);
    EXPECT_EQ(r.bytes, 5000u);
  }
}

TEST(FabricTest, DumbbellCrossSideTrafficUsesTrunk) {
  FabricRig rig(Fabric::Topology::kDumbbell);
  // Node 0 (side 0) -> node 1 (side 1): crosses the trunk.
  EXPECT_TRUE(rig.Transfer(0, 1, 1, 4096, Semantics::kCopy).ok);
  EXPECT_EQ(rig.fabric.trunk(0).grants(), 1u);
  EXPECT_EQ(rig.fabric.trunk(1).grants(), 0u);
  // Node 1 -> node 0 uses the opposite trunk.
  EXPECT_TRUE(rig.Transfer(1, 0, 2, 4096, Semantics::kCopy).ok);
  EXPECT_EQ(rig.fabric.trunk(1).grants(), 1u);
  // Node 0 (side 0) -> node 2 (side 0): same side, no trunk hop.
  EXPECT_TRUE(rig.Transfer(0, 2, 3, 4096, Semantics::kCopy).ok);
  EXPECT_EQ(rig.fabric.trunk(0).grants(), 1u);
}

TEST(FabricTest, PooledAndOutboardBufferingWorkAcrossFabric) {
  for (const InputBuffering rx : {InputBuffering::kPooled, InputBuffering::kOutboard}) {
    FabricRig rig(Fabric::Topology::kStar, rx);
    const InputResult r = rig.Transfer(1, 3, 1, 6000, Semantics::kCopy);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.bytes, 6000u);
  }
}

TEST(FabricTest, UnroutedChannelHasNoControlPath) {
  FabricRig rig;
  EXPECT_EQ(rig.fabric.RouteFor(rig.nodes[0]->adapter(), 99), nullptr);
  EXPECT_EQ(rig.fabric.ControlPeerFor(rig.nodes[0]->adapter(), 99), nullptr);
  rig.fabric.OpenChannel(99, rig.nodes[0]->adapter(), rig.nodes[1]->adapter());
  ASSERT_NE(rig.fabric.RouteFor(rig.nodes[0]->adapter(), 99), nullptr);
  EXPECT_EQ(rig.fabric.RouteFor(rig.nodes[0]->adapter(), 99)->dst,
            &rig.nodes[1]->adapter());
  EXPECT_EQ(rig.fabric.ControlPeerFor(rig.nodes[1]->adapter(), 99),
            &rig.nodes[0]->adapter());
  // A third party is not an end of the channel.
  EXPECT_EQ(rig.fabric.RouteFor(rig.nodes[2]->adapter(), 99), nullptr);
}

TEST(FabricTest, SameScheduleReplaysIdenticalDigest) {
  auto run = [] {
    FabricRig rig;
    for (std::uint64_t ch = 1; ch <= 6; ++ch) {
      rig.Transfer(ch % FabricRig::kNodes, (ch + 1) % FabricRig::kNodes, ch,
                   1000 + ch * 700, Semantics::kEmulatedCopy);
    }
    return rig.engine.event_digest();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace genie
