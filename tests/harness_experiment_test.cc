// Harness validation: the simulator's measured end-to-end latencies ("A")
// agree with the analytic breakdown model ("E") across semantics and
// buffering schemes — the paper's Table 7 claim — and the measured series
// have the qualitative properties of Figures 3-7.
#include "src/harness/experiment.h"

#include <gtest/gtest.h>

#include "src/analysis/latency_model.h"
#include "src/analysis/linear_fit.h"

namespace genie {
namespace {

std::vector<std::uint64_t> SparseLengths() { return {4096, 16384, 32768, 61440}; }

using AgreementParam = std::tuple<Semantics, InputBuffering>;

class ModelAgreementTest : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(ModelAgreementTest, MeasuredMatchesEstimated) {
  const Semantics sem = std::get<0>(GetParam());
  const InputBuffering buffering = std::get<1>(GetParam());
  ExperimentConfig config;
  config.buffering = buffering;
  config.repetitions = 3;
  Experiment experiment(config);
  const auto lengths = SparseLengths();
  const RunResult run = experiment.Run(sem, lengths);
  const CostModel cost(config.profile);

  ASSERT_EQ(run.samples.size(), lengths.size());
  for (const LatencySample& s : run.samples) {
    const double estimated = EstimateLatencyUs(cost, config.options, sem, buffering,
                                               /*dst_page_offset=*/0, s.bytes);
    // The DES and the closed-form model must agree closely: overlap of
    // dispose/prepare stages is an emergent property of the simulation.
    EXPECT_NEAR(s.latency_us, estimated, estimated * 0.02 + 2.0)
        << SemanticsName(sem) << " " << InputBufferingName(buffering) << " B=" << s.bytes;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSemantics, ModelAgreementTest,
    ::testing::Combine(::testing::ValuesIn(kAllSemantics),
                       ::testing::Values(InputBuffering::kEarlyDemux, InputBuffering::kPooled,
                                         InputBuffering::kOutboard)),
    [](const ::testing::TestParamInfo<AgreementParam>& param_info) {
      std::string name(SemanticsName(std::get<0>(param_info.param)));
      name += "_" + std::string(InputBufferingName(std::get<1>(param_info.param)));
      for (char& c : name) {
        if (c == ' ' || c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(HarnessTest, MeasuredSeriesFitsLineWithHighR2) {
  ExperimentConfig config;
  config.repetitions = 2;
  Experiment experiment(config);
  const auto lengths = PageMultipleLengths();
  const RunResult run = experiment.Run(Semantics::kEmulatedCopy, lengths);
  std::vector<std::pair<double, double>> pts;
  for (const LatencySample& s : run.samples) {
    pts.emplace_back(static_cast<double>(s.bytes), s.latency_us);
  }
  const LinearFit fit = FitLine(pts);
  EXPECT_GT(fit.r2, 0.9999);
  EXPECT_NEAR(fit.slope, 0.0622, 0.0005);  // Paper Table 7 A-row.
  EXPECT_NEAR(fit.intercept, 153, 12);
}

TEST(HarnessTest, Figure3Clustering) {
  // Copy distinctly worst; all non-copy semantics cluster (Figure 3).
  ExperimentConfig config;
  config.repetitions = 2;
  Experiment experiment(config);
  const std::vector<std::uint64_t> len = {61440};
  double copy_latency = 0;
  double non_copy_min = 1e18;
  double non_copy_max = 0;
  for (const Semantics sem : kAllSemantics) {
    const RunResult run = experiment.Run(sem, len);
    const double l = run.samples[0].latency_us;
    if (sem == Semantics::kCopy) {
      copy_latency = l;
    } else {
      non_copy_min = std::min(non_copy_min, l);
      non_copy_max = std::max(non_copy_max, l);
    }
  }
  // The non-copy cluster is tight (within ~6% of each other)...
  EXPECT_LT((non_copy_max - non_copy_min) / non_copy_min, 0.06);
  // ... and copy is far above it (paper: 37% above emulated copy).
  EXPECT_GT(copy_latency, non_copy_max * 1.3);
}

TEST(HarnessTest, Figure4UtilizationGap) {
  // Copy semantics leaves much less CPU available (Figure 4).
  ExperimentConfig config;
  config.repetitions = 3;
  Experiment experiment(config);
  const std::vector<std::uint64_t> len = {61440};
  const double copy_util =
      experiment.Run(Semantics::kCopy, len).samples[0].receiver_utilization;
  const double ecopy_util =
      experiment.Run(Semantics::kEmulatedCopy, len).samples[0].receiver_utilization;
  const double eshare_util =
      experiment.Run(Semantics::kEmulatedShare, len).samples[0].receiver_utilization;
  EXPECT_GT(copy_util, 0.2);                  // Paper: 26%.
  EXPECT_LT(ecopy_util, copy_util * 0.55);    // Paper: 10% vs 26%.
  EXPECT_LT(eshare_util, ecopy_util + 0.01);  // Emulated share lowest.
}

TEST(HarnessTest, Figure7UnalignedClusters) {
  // Unaligned pooled input splits semantics into 0/1/2-copy groups.
  ExperimentConfig config;
  config.buffering = InputBuffering::kPooled;
  config.dst_page_offset = 1000;
  config.repetitions = 2;
  Experiment experiment(config);
  const std::vector<std::uint64_t> len = {61440};
  auto tput = [&](Semantics s) {
    return experiment.Run(s, len).samples[0].throughput_mbps;
  };
  const double copy = tput(Semantics::kCopy);                  // 2 copies.
  const double ecopy = tput(Semantics::kEmulatedCopy);         // 1 copy.
  const double emove = tput(Semantics::kEmulatedMove);         // 0 copies.
  EXPECT_NEAR(copy, 77, 4);    // Paper: 77 Mbps.
  EXPECT_NEAR(ecopy, 92, 5);   // Paper: ~92 Mbps.
  EXPECT_NEAR(emove, 121, 6);  // Paper: ~121 Mbps (system-allocated).
}

TEST(HarnessTest, OpSamplesCollectedWhenRequested) {
  ExperimentConfig config;
  config.collect_op_samples = true;
  config.repetitions = 2;
  Experiment experiment(config);
  const std::vector<std::uint64_t> lengths = {4096, 8192};
  const RunResult run = experiment.Run(Semantics::kEmulatedCopy, lengths);
  EXPECT_TRUE(run.op_samples.contains(OpKind::kReference));
  EXPECT_TRUE(run.op_samples.contains(OpKind::kSwap));
  EXPECT_TRUE(run.op_samples.contains(OpKind::kReadOnly));
  // Fitting the reference samples recovers the Table 6 line.
  std::vector<std::pair<double, double>> pts;
  for (const auto& [bytes, us] : run.op_samples.at(OpKind::kReference)) {
    pts.emplace_back(static_cast<double>(bytes), us);
  }
  const LinearFit fit = FitLine(pts);
  EXPECT_NEAR(fit.slope, 0.000363, 1e-5);
  EXPECT_NEAR(fit.intercept, 5.0, 0.3);
}

TEST(HarnessTest, ThroughputHelper) {
  EXPECT_NEAR(ThroughputMbps(61440, 6267.0), 78.4, 0.1);
}

}  // namespace
}  // namespace genie
