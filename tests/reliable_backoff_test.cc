// ReliableDelivery unit tests: deterministic retransmit schedules (timeout,
// exponential backoff, cap, jitter), nack fast-retransmit, bounded give-up,
// and the transfer watchdog's verdict protocol. Two adapters are wired
// bidirectionally (the reverse link carries ack/nack control cells); all
// timings below are exact because the simulation is bit-for-bit
// deterministic and jitter is either disabled or drawn from a fixed seed.
#include "src/genie/reliable.h"

#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/net/iovec_io.h"
#include "src/sim/engine.h"
#include "src/sim/resource.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
// One page-frame's wire time at OC-3 (matches the adapter timing tests).
const SimTime kWire = MicrosToSimTime(kPage * 0.0598);
const SimTime kCtl = 5 * kMicrosecond;  // control-cell (ack/credit) latency

class ReliableRig {
 public:
  ReliableRig()
      : cost_(MachineProfile::MicronP166()),
        pm_(128, kPage),
        fwd_(eng_, "fwd"),
        back_(eng_, "back"),
        tx_(eng_, pm_, cost_, "tx", Adapter::Config{}),
        rx_(eng_, pm_, cost_, "rx", RxConfig()),
        rel_(eng_, tx_, "tx.xfer") {
    tx_.ConnectTo(&rx_, &fwd_);
    rx_.ConnectTo(&tx_, &back_);
    plan_.set_clock([this] { return eng_.now(); });
    tx_.set_fault_plan(&plan_);
    rel_.set_metrics(&metrics_);
  }

  ~ReliableRig() {
    for (const FrameId f : frames_) {
      pm_.Free(f);
    }
  }

  IoVec MakeBuffer(std::size_t bytes, unsigned char seed) {
    IoVec iov;
    std::size_t remaining = bytes;
    std::size_t produced = 0;
    while (remaining > 0) {
      const FrameId f = pm_.Allocate();
      frames_.push_back(f);
      const std::uint32_t n = static_cast<std::uint32_t>(std::min<std::size_t>(kPage, remaining));
      auto data = pm_.Data(f);
      for (std::uint32_t i = 0; i < n; ++i) {
        data[i] = static_cast<std::byte>((seed + produced + i) & 0xFF);
      }
      iov.segments.push_back(IoSegment{f, 0, n});
      remaining -= n;
      produced += n;
    }
    return iov;
  }

  // Drives one reliable transmission to completion and reports outcome and
  // finish time.
  ReliableDelivery::TxReport Transmit(std::uint64_t channel, const IoVec& iov,
                                      SimTime* done_at = nullptr) {
    std::optional<ReliableDelivery::TxReport> report;
    SimTime done = -1;
    auto drive = [](ReliableRig* rig, std::uint64_t ch, IoVec frame,
                    std::optional<ReliableDelivery::TxReport>* out,
                    SimTime* when) -> Task<void> {
      *out = co_await rig->rel_.TransmitReliably(ch, frame, 0, 0, "xfer", nullptr);
      *when = rig->eng_.now();
    };
    std::move(drive(this, channel, iov, &report, &done)).Detach();
    eng_.Run();
    GENIE_CHECK(report.has_value()) << "transmission never completed";
    if (done_at != nullptr) {
      *done_at = done;
    }
    return *report;
  }

  static Adapter::Config RxConfig() {
    Adapter::Config cfg;
    cfg.rx_buffering = InputBuffering::kEarlyDemux;
    return cfg;
  }

  Engine eng_;
  CostModel cost_;
  PhysicalMemory pm_;
  Resource fwd_;
  Resource back_;
  Adapter tx_;
  Adapter rx_;
  ReliableDelivery rel_;
  MetricsRegistry metrics_;
  FaultPlan plan_{1};
  std::vector<FrameId> frames_;
};

ReliableOptions ArqNoJitter() {
  ReliableOptions opts;
  opts.arq = true;
  opts.initial_timeout = 1 * kMillisecond;
  opts.max_timeout = 8 * kMillisecond;
  opts.backoff_factor = 2.0;
  opts.jitter_frac = 0.0;
  opts.nack_delay = 100 * kMicrosecond;
  return opts;
}

void AddDropRule(FaultPlan& plan, std::uint64_t nth) {
  FaultRule rule;
  rule.site = FaultSite::kLinkDrop;
  rule.nth = nth;
  plan.AddRule(rule);
}

TEST(ReliableBackoffTest, CleanWireDeliversFirstAttempt) {
  ReliableRig rig;
  rig.rel_.Configure(ArqNoJitter());
  const IoVec src = rig.MakeBuffer(kPage, 9);
  const IoVec dst = rig.MakeBuffer(kPage, 0);
  std::optional<RxCompletion> completion;
  rig.rx_.PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion& c) {
                                                  completion = c;
                                                }});
  SimTime done = -1;
  const auto report = rig.Transmit(1, src, &done);
  EXPECT_EQ(report.outcome, ReliableDelivery::TxOutcome::kDelivered);
  EXPECT_EQ(report.attempts, 1u);
  // Frame on the wire, then the ack control cell back; no timer ever fires.
  EXPECT_EQ(done, kWire + kCtl);
  EXPECT_EQ(rig.rel_.stats().sequenced_frames, 1u);
  EXPECT_EQ(rig.rel_.stats().retransmits, 0u);
  EXPECT_EQ(rig.rel_.stats().timeouts, 0u);
  EXPECT_EQ(rig.rel_.stats().acks, 1u);
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(completion->seq, 1u);

  // The ack-RTT histogram saw exactly the one control-cell round trip; a
  // single-sample histogram reports the sample itself at every quantile.
  const LatencyHistogram& rtt = rig.metrics_.Histogram("reliable.ack_rtt_us");
  EXPECT_EQ(rtt.count(), 1u);
  EXPECT_DOUBLE_EQ(rtt.Quantile(50), SimTimeToMicros(kCtl));
  EXPECT_DOUBLE_EQ(rtt.Quantile(99), SimTimeToMicros(kCtl));
  EXPECT_EQ(rig.metrics_.Histogram("reliable.retransmit_delay_us").count(), 0u);

  std::vector<std::byte> sent(kPage);
  std::vector<std::byte> got(kPage);
  ReadFromIoVec(rig.pm_, src, 0, sent);
  ReadFromIoVec(rig.pm_, dst, 0, got);
  EXPECT_EQ(std::memcmp(sent.data(), got.data(), sent.size()), 0);
}

TEST(ReliableBackoffTest, TimeoutScheduleBacksOffExponentially) {
  ReliableRig rig;
  rig.rel_.Configure(ArqNoJitter());
  AddDropRule(rig.plan_, 1);
  AddDropRule(rig.plan_, 2);
  const IoVec src = rig.MakeBuffer(kPage, 3);
  const IoVec dst = rig.MakeBuffer(kPage, 0);
  int completions = 0;
  rig.rx_.PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion&) { ++completions; }});

  SimTime done = -1;
  const auto report = rig.Transmit(1, src, &done);
  EXPECT_EQ(report.outcome, ReliableDelivery::TxOutcome::kDelivered);
  EXPECT_EQ(report.attempts, 3u);
  EXPECT_EQ(rig.rel_.stats().retransmits, 2u);
  EXPECT_EQ(rig.rel_.stats().timeouts, 2u);
  EXPECT_EQ(rig.tx_.link_frames_dropped(), 2u);
  EXPECT_EQ(completions, 1);
  // Attempt 1 dropped -> wait 1 ms; attempt 2 dropped -> wait 2 ms (doubled);
  // attempt 3 lands and is acked one control-cell latency later.
  EXPECT_EQ(done, 3 * kWire + 1 * kMillisecond + 2 * kMillisecond + kCtl);

  // Each timeout recorded its full backoff delay; quantiles resolve to the
  // log-bucket boundary, clamped to the observed [1 ms, 2 ms] range.
  const LatencyHistogram& delay = rig.metrics_.Histogram("reliable.retransmit_delay_us");
  EXPECT_EQ(delay.count(), 2u);
  EXPECT_DOUBLE_EQ(delay.min(), 1000.0);
  EXPECT_DOUBLE_EQ(delay.max(), 2000.0);
  EXPECT_GE(delay.Quantile(50), 1000.0);
  EXPECT_LE(delay.Quantile(50), 1200.0);
  EXPECT_DOUBLE_EQ(delay.Quantile(99), 2000.0);
  EXPECT_EQ(rig.metrics_.Histogram("reliable.ack_rtt_us").count(), 1u);
}

TEST(ReliableBackoffTest, BackoffCapsAtMaxTimeout) {
  ReliableRig rig;
  ReliableOptions opts = ArqNoJitter();
  opts.backoff_factor = 4.0;
  opts.max_timeout = 2 * kMillisecond;
  rig.rel_.Configure(opts);
  AddDropRule(rig.plan_, 1);
  AddDropRule(rig.plan_, 2);
  AddDropRule(rig.plan_, 3);
  const IoVec src = rig.MakeBuffer(kPage, 3);
  const IoVec dst = rig.MakeBuffer(kPage, 0);
  rig.rx_.PostReceive(1, Adapter::PostedReceive{dst, nullptr});

  SimTime done = -1;
  const auto report = rig.Transmit(1, src, &done);
  EXPECT_EQ(report.outcome, ReliableDelivery::TxOutcome::kDelivered);
  EXPECT_EQ(report.attempts, 4u);
  // 1 ms, then min(4 ms, cap) = 2 ms, then 2 ms again: the cap holds.
  EXPECT_EQ(done, 4 * kWire + (1 + 2 + 2) * kMillisecond + kCtl);
}

TEST(ReliableBackoffTest, JitterStretchesTimeoutsDeterministically) {
  auto run = [](double jitter) {
    ReliableRig rig;
    ReliableOptions opts = ArqNoJitter();
    opts.jitter_frac = jitter;
    opts.seed = 42;
    rig.rel_.Configure(opts);
    AddDropRule(rig.plan_, 1);
    const IoVec src = rig.MakeBuffer(kPage, 3);
    const IoVec dst = rig.MakeBuffer(kPage, 0);
    rig.rx_.PostReceive(1, Adapter::PostedReceive{dst, nullptr});
    SimTime done = -1;
    rig.Transmit(1, src, &done);
    return done;
  };
  const SimTime base = run(0.0);
  const SimTime jittered_a = run(0.5);
  const SimTime jittered_b = run(0.5);
  // Same seed, same stretch — and never more than jitter_frac of the timeout.
  EXPECT_EQ(jittered_a, jittered_b);
  EXPECT_GE(jittered_a, base);
  EXPECT_LT(jittered_a, base + kMillisecond / 2);
}

TEST(ReliableBackoffTest, NackTriggersFastRetransmit) {
  ReliableRig rig;
  rig.rel_.Configure(ArqNoJitter());
  FaultRule rule;
  rule.site = FaultSite::kDeviceError;
  rule.nth = 1;
  rig.plan_.AddRule(rule);
  const IoVec src = rig.MakeBuffer(kPage, 5);
  const IoVec dst = rig.MakeBuffer(kPage, 0);
  std::optional<RxCompletion> completion;
  rig.rx_.PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion& c) {
                                                  completion = c;
                                                }});

  SimTime done = -1;
  const auto report = rig.Transmit(1, src, &done);
  EXPECT_EQ(report.outcome, ReliableDelivery::TxOutcome::kDelivered);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(rig.rel_.stats().nacks, 1u);
  EXPECT_EQ(rig.rel_.stats().retransmits, 1u);
  EXPECT_EQ(rig.rel_.stats().timeouts, 0u);  // nack beat the timer
  // Corrupted frame arrives at kWire, nack lands kCtl later, retransmit goes
  // out after nack_delay — far sooner than the 1 ms timeout.
  EXPECT_EQ(done, 2 * kWire + 2 * kCtl + 100 * kMicrosecond);
  ASSERT_TRUE(completion.has_value());
  EXPECT_TRUE(completion->crc_ok);
}

TEST(ReliableBackoffTest, GivesUpAfterMaxRetransmits) {
  ReliableRig rig;
  ReliableOptions opts = ArqNoJitter();
  opts.max_retransmits = 2;
  rig.rel_.Configure(opts);
  FaultRule rule;
  rule.site = FaultSite::kLinkDrop;
  rule.probability = 1.0;  // black-hole wire
  rig.plan_.AddRule(rule);
  const IoVec src = rig.MakeBuffer(kPage, 5);
  const IoVec dst = rig.MakeBuffer(kPage, 0);
  int completions = 0;
  rig.rx_.PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion&) { ++completions; }});

  const auto report = rig.Transmit(1, src);
  EXPECT_EQ(report.outcome, ReliableDelivery::TxOutcome::kGiveUp);
  EXPECT_EQ(report.attempts, 3u);  // original + 2 retries
  EXPECT_EQ(rig.rel_.stats().giveups, 1u);
  EXPECT_EQ(rig.rel_.stats().retransmits, 2u);
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(rig.rx_.posted_receives(1), 1u);  // buffer untouched
}

TEST(ReliableBackoffTest, SequenceNumbersAdvancePerChannel) {
  ReliableRig rig;
  rig.rel_.Configure(ArqNoJitter());
  const IoVec src = rig.MakeBuffer(kPage, 1);
  const IoVec dst = rig.MakeBuffer(kPage, 0);
  std::vector<std::uint64_t> seqs;
  auto note = [&](const RxCompletion& c) { seqs.push_back(c.seq); };
  for (int i = 0; i < 3; ++i) {
    rig.rx_.PostReceive(1, Adapter::PostedReceive{dst, note});
    rig.Transmit(1, src);
  }
  // A second channel starts its own sequence space at 1.
  rig.rx_.PostReceive(2, Adapter::PostedReceive{dst, note});
  rig.Transmit(2, src);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3, 1}));
  EXPECT_EQ(rig.rel_.stats().sequenced_frames, 4u);
  EXPECT_EQ(rig.rel_.stats().retransmits, 0u);
}

TEST(ReliableBackoffTest, SameSeedReplaysIdenticalSchedule) {
  auto run = [](std::uint64_t* digest) {
    ReliableRig rig;
    ReliableOptions opts = ArqNoJitter();
    opts.jitter_frac = 0.25;
    opts.seed = 7;
    rig.rel_.Configure(opts);
    FaultRule rule;
    rule.site = FaultSite::kLinkDrop;
    rule.probability = 0.4;
    rig.plan_.AddRule(rule);
    const IoVec src = rig.MakeBuffer(kPage, 1);
    const IoVec dst = rig.MakeBuffer(kPage, 0);
    ReliableDelivery::Stats totals;
    for (int i = 0; i < 4; ++i) {
      rig.rx_.PostReceive(1, Adapter::PostedReceive{dst, nullptr});
      const auto report = rig.Transmit(1, src);
      EXPECT_EQ(report.outcome, ReliableDelivery::TxOutcome::kDelivered);
    }
    *digest = rig.eng_.event_digest();
    return rig.rel_.stats();
  };
  std::uint64_t digest_a = 0;
  std::uint64_t digest_b = 0;
  const auto stats_a = run(&digest_a);
  const auto stats_b = run(&digest_b);
  EXPECT_EQ(digest_a, digest_b);
  EXPECT_EQ(stats_a.retransmits, stats_b.retransmits);
  EXPECT_EQ(stats_a.timeouts, stats_b.timeouts);
  EXPECT_EQ(stats_a.acks, stats_b.acks);
}

TEST(ReliableBackoffTest, WatchdogVerdictProtocol) {
  ReliableRig rig;
  ReliableOptions opts;
  opts.watchdog_timeout = 1 * kMillisecond;  // period defaults to timeout/4
  rig.rel_.Configure(opts);
  EXPECT_TRUE(rig.rel_.watchdog_enabled());

  // kBusy pushes the deadline a full timeout out; the third expiry cancels.
  int calls = 0;
  rig.rel_.Watch("stuck-xfer", [&] {
    ++calls;
    return calls < 3 ? ReliableDelivery::WatchVerdict::kBusy
                     : ReliableDelivery::WatchVerdict::kCancelled;
  });
  EXPECT_EQ(rig.rel_.watched(), 1u);
  rig.eng_.Run();  // terminates: the scan re-arms only while entries remain
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(rig.rel_.watched(), 0u);
  EXPECT_EQ(rig.rel_.stats().watchdog_cancels, 1u);
  EXPECT_GE(rig.rel_.stats().watchdog_scans, 3u);
  // Expiries at 1, 2 and 3 ms of deadline; the last scan lands on a 250 us
  // grid tick at or after 3 ms.
  EXPECT_GE(rig.eng_.now(), 3 * kMillisecond);
}

TEST(ReliableBackoffTest, WatchdogCompletedVerdictRetiresQuietly) {
  ReliableRig rig;
  ReliableOptions opts;
  opts.watchdog_timeout = 1 * kMillisecond;
  rig.rel_.Configure(opts);
  rig.rel_.Watch("done-xfer", [] { return ReliableDelivery::WatchVerdict::kCompleted; });
  rig.eng_.Run();
  EXPECT_EQ(rig.rel_.watched(), 0u);
  EXPECT_EQ(rig.rel_.stats().watchdog_cancels, 0u);
}

TEST(ReliableBackoffTest, UnwatchRetiresEntryBeforeExpiry) {
  ReliableRig rig;
  ReliableOptions opts;
  opts.watchdog_timeout = 1 * kMillisecond;
  rig.rel_.Configure(opts);
  bool expired = false;
  const std::uint64_t id = rig.rel_.Watch("fast-xfer", [&] {
    expired = true;
    return ReliableDelivery::WatchVerdict::kCancelled;
  });
  rig.rel_.Unwatch(id);
  rig.rel_.Unwatch(id);  // idempotent
  rig.eng_.Run();
  EXPECT_FALSE(expired);
  EXPECT_EQ(rig.rel_.stats().watchdog_cancels, 0u);
}

TEST(ReliableBackoffTest, WatchIsNoOpWhenWatchdogOff) {
  ReliableRig rig;
  const std::uint64_t id = rig.rel_.Watch("ignored", [] {
    ADD_FAILURE() << "callback must never run with the watchdog off";
    return ReliableDelivery::WatchVerdict::kCancelled;
  });
  EXPECT_NE(id, 0u);
  EXPECT_EQ(rig.rel_.watched(), 0u);
  rig.eng_.Run();  // no scan timer was armed; returns immediately
  EXPECT_EQ(rig.rel_.stats().watchdog_scans, 0u);
}

}  // namespace
}  // namespace genie
