// Multi-packet messages (fragmentation/reassembly) and credit-based flow
// control (the Credit Net scheme, paper refs [2], [4], [14]).
#include "src/genie/message.h"

#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x40000000;

struct MessageRig {
  explicit MessageRig(bool flow_control, std::uint64_t buf_bytes = 2 * 1024 * 1024)
      : sender(engine, "tx", NodeConfig(flow_control)),
        receiver(engine, "rx", NodeConfig(flow_control)),
        network(engine, sender, receiver),
        tx_ep(sender, 1),
        rx_ep(receiver, 1),
        tx_app(sender.CreateProcess("app")),
        rx_app(receiver.CreateProcess("app")) {
    tx_app.CreateRegion(kSrc, buf_bytes);
    rx_app.CreateRegion(kDst, buf_bytes);
  }
  static Node::Config NodeConfig(bool flow_control) {
    Node::Config c;
    c.mem_frames = 2048;
    c.flow_control = flow_control;
    return c;
  }

  MessageResult Exchange(std::uint64_t len, Semantics sem, MessageChannel::Options options) {
    MessageChannel tx_chan(tx_ep, options);
    MessageChannel rx_chan(rx_ep, options);
    const auto payload = TestPattern(len, static_cast<unsigned char>(len % 251));
    GENIE_CHECK(tx_app.Write(kSrc, payload) == AccessResult::kOk);
    MessageResult result;
    auto recv = [](MessageChannel& chan, AddressSpace& app, std::uint64_t n, Semantics s,
                   MessageResult* out) -> Task<void> {
      *out = co_await chan.ReceiveMessage(app, kDst, n, s);
    };
    std::move(recv(rx_chan, rx_app, len, sem, &result)).Detach();
    std::move(tx_chan.SendMessage(tx_app, kSrc, len, sem)).Detach();
    engine.Run();
    if (result.ok) {
      std::vector<std::byte> got(static_cast<std::size_t>(len));
      GENIE_CHECK(rx_app.Read(kDst, got) == AccessResult::kOk);
      GENIE_CHECK_EQ(std::memcmp(got.data(), payload.data(), len), 0);
    }
    return result;
  }

  Engine engine;
  Node sender;
  Node receiver;
  Network network;
  Endpoint tx_ep;
  Endpoint rx_ep;
  AddressSpace& tx_app;
  AddressSpace& rx_app;
};

class MessageSemanticsTest : public ::testing::TestWithParam<Semantics> {};

TEST_P(MessageSemanticsTest, OneMegabyteMessageRoundTrips) {
  MessageRig rig(/*flow_control=*/true);
  const std::uint64_t len = 1024 * 1024 + 12345;  // 18 fragments, odd tail.
  const MessageResult r = rig.Exchange(len, GetParam(), MessageChannel::Options{});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.bytes, len);
  EXPECT_EQ(r.fragments, (len + 60 * 1024 - 1) / (60 * 1024));
}

INSTANTIATE_TEST_SUITE_P(AppAllocated, MessageSemanticsTest,
                         ::testing::Values(Semantics::kCopy, Semantics::kEmulatedCopy,
                                           Semantics::kShare, Semantics::kEmulatedShare),
                         [](const ::testing::TestParamInfo<Semantics>& param_info) {
                           std::string name(SemanticsName(param_info.param));
                           for (char& c : name) {
                             if (c == ' ') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(MessageTest, SingleFragmentMessage) {
  MessageRig rig(true);
  const MessageResult r = rig.Exchange(1000, Semantics::kEmulatedCopy, {});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.fragments, 1u);
}

TEST(MessageTest, ExactFragmentMultiple) {
  MessageRig rig(true);
  MessageChannel::Options options;
  options.fragment_bytes = 8 * kPage;
  const MessageResult r = rig.Exchange(32 * kPage, Semantics::kEmulatedCopy, options);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.fragments, 4u);
}

TEST(MessageTest, WindowOneWithFlowControlNeverDrops) {
  // Window 1: only one receive posted at a time. Without credits the sender
  // would overrun it; with credits it back-pressures. No drops, ever.
  MessageRig rig(/*flow_control=*/true);
  MessageChannel::Options options;
  options.window = 1;
  const MessageResult r = rig.Exchange(512 * 1024, Semantics::kEmulatedCopy, options);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(rig.receiver.adapter().frames_dropped_no_buffer(), 0u);
}

TEST(MessageTest, WindowOneWithoutFlowControlDropsFrames) {
  // The hazard credits exist to prevent: back-to-back fragments overrun a
  // single posted buffer and the device drops them.
  MessageRig rig(/*flow_control=*/false);
  MessageChannel::Options options;
  options.window = 1;
  const MessageResult r = rig.Exchange(512 * 1024, Semantics::kEmulatedCopy, options);
  EXPECT_FALSE(r.ok);  // The message cannot complete...
  EXPECT_GT(rig.receiver.adapter().frames_dropped_no_buffer(), 0u);  // ...frames died.
}

TEST(MessageTest, WiderWindowPipelinesFragments) {
  // With a window >= 2 the next fragment is on the wire while the previous
  // one disposes: total time approaches wire-limited.
  MessageRig rig_w1(true);
  MessageChannel::Options w1;
  w1.window = 1;
  rig_w1.Exchange(1024 * 1024, Semantics::kEmulatedCopy, w1);
  const double t_w1 = SimTimeToMicros(rig_w1.engine.now());

  MessageRig rig_w4(true);
  MessageChannel::Options w4;
  w4.window = 4;
  rig_w4.Exchange(1024 * 1024, Semantics::kEmulatedCopy, w4);
  const double t_w4 = SimTimeToMicros(rig_w4.engine.now());

  EXPECT_LT(t_w4, t_w1);
  // Window 4 is within 15% of the pure wire time for 1 MB.
  const double wire_us = 1024 * 1024 * 0.0598;
  EXPECT_LT(t_w4, wire_us * 1.15);
}

TEST(MessageTest, CrcFailureFailsTheMessageCleanly) {
  MessageRig rig(true);
  CrcErrorInjector crc(rig.sender.adapter());
  crc.CorruptNextFrame();  // First fragment dies.
  const MessageResult r = rig.Exchange(256 * 1024, Semantics::kEmulatedCopy, {});
  EXPECT_FALSE(r.ok);
  // No stuck operations or leaked frames; note in-flight preposted
  // fragments beyond the failure are still pending by design (a real
  // transport would cancel or reuse them).
  EXPECT_EQ(rig.receiver.vm().pm().zombie_frames(), 0u);
}

TEST(MessageTest, CreditAccountingVisible) {
  MessageRig rig(true);
  EXPECT_EQ(rig.sender.adapter().tx_credits(1), 0u);
  // Posting receives grants credits to the sender after the credit latency.
  MessageChannel rx_chan(rig.rx_ep, {});
  MessageResult result;
  auto recv = [](MessageChannel& chan, AddressSpace& app, MessageResult* out) -> Task<void> {
    *out = co_await chan.ReceiveMessage(app, kDst, 240 * 1024, Semantics::kEmulatedCopy);
  };
  std::move(recv(rx_chan, rig.rx_app, &result)).Detach();
  rig.engine.RunFor(100 * kMicrosecond);
  EXPECT_EQ(rig.sender.adapter().tx_credits(1), 4u);  // Window of 4 posted.
}

}  // namespace
}  // namespace genie
