#include "src/vm/address_space.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/vm/vm.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kBase = 0x10000000;

std::vector<std::byte> Pattern(std::size_t n, unsigned char seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 31 + i) & 0xFF);
  }
  return v;
}

class AddressSpaceTest : public ::testing::Test {
 protected:
  Vm vm_{64, kPage};
  AddressSpace as_{vm_, "proc"};
};

TEST_F(AddressSpaceTest, CreateAndFindRegion) {
  Region* r = as_.CreateRegion(kBase, 4 * kPage);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(as_.FindRegion(kBase), r);
  EXPECT_EQ(as_.FindRegion(kBase + 4 * kPage - 1), r);
  EXPECT_EQ(as_.FindRegion(kBase + 4 * kPage), nullptr);
  EXPECT_EQ(as_.FindRegion(kBase - 1), nullptr);
  EXPECT_EQ(as_.region_count(), 1u);
}

TEST_F(AddressSpaceTest, RegionOverlapRejected) {
  as_.CreateRegion(kBase, 4 * kPage);
  EXPECT_DEATH(as_.CreateRegion(kBase + kPage, kPage), "overlap");
  EXPECT_DEATH(as_.CreateRegion(kBase - kPage, 2 * kPage), "overlap");
}

TEST_F(AddressSpaceTest, AdjacentRegionsAllowed) {
  as_.CreateRegion(kBase, kPage);
  as_.CreateRegion(kBase + kPage, kPage);
  EXPECT_EQ(as_.region_count(), 2u);
}

TEST_F(AddressSpaceTest, UnalignedRegionRejected) {
  EXPECT_DEATH(as_.CreateRegion(kBase + 17, kPage), "aligned");
  EXPECT_DEATH(as_.CreateRegion(kBase, kPage + 17), "multiple");
}

TEST_F(AddressSpaceTest, FindFreeRangeAvoidsRegions) {
  const Vaddr a = as_.FindFreeRange(2 * kPage);
  as_.CreateRegion(a, 2 * kPage);
  const Vaddr b = as_.FindFreeRange(2 * kPage);
  EXPECT_TRUE(b >= a + 2 * kPage || b + 2 * kPage <= a);
  as_.CreateRegion(b, 2 * kPage);
}

TEST_F(AddressSpaceTest, WriteThenReadRoundTrip) {
  as_.CreateRegion(kBase, 4 * kPage);
  const auto data = Pattern(3 * kPage + 123);
  ASSERT_EQ(as_.Write(kBase + 5, data), AccessResult::kOk);
  std::vector<std::byte> out(data.size());
  ASSERT_EQ(as_.Read(kBase + 5, out), AccessResult::kOk);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
}

TEST_F(AddressSpaceTest, FreshPagesReadAsZero) {
  as_.CreateRegion(kBase, kPage);
  std::vector<std::byte> out(kPage, std::byte{0xFF});
  ASSERT_EQ(as_.Read(kBase, out), AccessResult::kOk);
  for (std::size_t i = 0; i < kPage; i += 256) {
    EXPECT_EQ(static_cast<unsigned char>(out[i]), 0);
  }
  EXPECT_EQ(as_.counters().zero_fills, 1u);
}

TEST_F(AddressSpaceTest, AccessOutsideAnyRegionFaults) {
  std::vector<std::byte> buf(16);
  EXPECT_EQ(as_.Read(0x999000, buf), AccessResult::kUnrecoverableFault);
  EXPECT_EQ(as_.Write(0x999000, buf), AccessResult::kUnrecoverableFault);
  EXPECT_EQ(as_.counters().unrecoverable_faults, 2u);
}

TEST_F(AddressSpaceTest, AccessSpanningRegionEndFaults) {
  as_.CreateRegion(kBase, kPage);
  std::vector<std::byte> buf(2 * kPage);
  EXPECT_EQ(as_.Write(kBase + kPage / 2, buf), AccessResult::kUnrecoverableFault);
}

TEST_F(AddressSpaceTest, LazyAllocationOnlyTouchedPages) {
  as_.CreateRegion(kBase, 8 * kPage);
  const std::size_t before = vm_.pm().free_frames();
  std::vector<std::byte> buf(16);
  ASSERT_EQ(as_.Write(kBase + 3 * kPage, buf), AccessResult::kOk);
  EXPECT_EQ(before - vm_.pm().free_frames(), 1u);
}

TEST_F(AddressSpaceTest, RemoveRegionFreesFrames) {
  as_.CreateRegion(kBase, 2 * kPage);
  std::vector<std::byte> buf(2 * kPage, std::byte{1});
  ASSERT_EQ(as_.Write(kBase, buf), AccessResult::kOk);
  const std::size_t used = vm_.pm().allocated_frames();
  EXPECT_EQ(used, 2u);
  as_.RemoveRegion(kBase);
  EXPECT_EQ(vm_.pm().allocated_frames(), 0u);
  EXPECT_EQ(as_.region_count(), 0u);
  EXPECT_EQ(as_.FindRegion(kBase), nullptr);
}

TEST_F(AddressSpaceTest, DestructorReleasesEverything) {
  {
    AddressSpace other(vm_, "other");
    other.CreateRegion(kBase, 4 * kPage);
    std::vector<std::byte> buf(4 * kPage, std::byte{1});
    ASSERT_EQ(other.Write(kBase, buf), AccessResult::kOk);
    EXPECT_EQ(vm_.pm().allocated_frames(), 4u);
  }
  EXPECT_EQ(vm_.pm().allocated_frames(), 0u);
  EXPECT_EQ(vm_.live_objects(), 0u);
}

// --- Protection manipulation ---

TEST_F(AddressSpaceTest, RemoveWriteMakesPagesReadOnly) {
  as_.CreateRegion(kBase, 2 * kPage);
  std::vector<std::byte> buf(2 * kPage, std::byte{1});
  ASSERT_EQ(as_.Write(kBase, buf), AccessResult::kOk);
  as_.RemoveWrite(kBase, 2 * kPage);
  EXPECT_EQ(as_.FindPte(kBase)->prot, Prot::kRead);
  // Reads still fine.
  EXPECT_EQ(as_.Read(kBase, buf), AccessResult::kOk);
}

TEST_F(AddressSpaceTest, RemoveAllBlocksReadsUntilFaulted) {
  Region* r = as_.CreateRegion(kBase, kPage, RegionState::kMovedIn);
  std::vector<std::byte> buf(kPage, std::byte{1});
  ASSERT_EQ(as_.Write(kBase, buf), AccessResult::kOk);
  as_.RemoveAll(kBase, kPage);
  EXPECT_EQ(as_.FindPte(kBase)->prot, Prot::kNone);
  // Region hidden: simulate move-out; access is unrecoverable.
  r->state = RegionState::kMovedOut;
  EXPECT_EQ(as_.Read(kBase, buf), AccessResult::kUnrecoverableFault);
  // Un-hide: access recovers via fault (page still resident in object).
  r->state = RegionState::kMovedIn;
  EXPECT_EQ(as_.Read(kBase, buf), AccessResult::kOk);
}

TEST_F(AddressSpaceTest, ReinstateRestoresWrite) {
  as_.CreateRegion(kBase, kPage);
  std::vector<std::byte> buf(kPage, std::byte{1});
  ASSERT_EQ(as_.Write(kBase, buf), AccessResult::kOk);
  as_.RemoveAll(kBase, kPage);
  as_.Reinstate(kBase, kPage);
  EXPECT_EQ(as_.FindPte(kBase)->prot, Prot::kReadWrite);
}

// --- Fault semantics in region states (paper Section 4, region hiding) ---

TEST_F(AddressSpaceTest, FaultInMovedOutRegionIsUnrecoverable) {
  Region* r = as_.CreateRegion(kBase, kPage, RegionState::kMovedIn);
  std::vector<std::byte> buf(16, std::byte{1});
  ASSERT_EQ(as_.Write(kBase, buf), AccessResult::kOk);
  as_.RemoveAll(kBase, kPage);
  r->state = RegionState::kMovedOut;
  EXPECT_EQ(as_.Write(kBase, buf), AccessResult::kUnrecoverableFault);
  EXPECT_EQ(as_.counters().unrecoverable_faults, 1u);
}

TEST_F(AddressSpaceTest, WeaklyMovedOutRemainsAccessibleWithoutFault) {
  // Weak move: buffers stay mapped; the application "should not" access them
  // but doing so does not crash (weak integrity).
  Region* r = as_.CreateRegion(kBase, kPage, RegionState::kMovedIn);
  std::vector<std::byte> buf(16, std::byte{1});
  ASSERT_EQ(as_.Write(kBase, buf), AccessResult::kOk);
  r->state = RegionState::kWeaklyMovedOut;  // Pages stay mapped RW.
  EXPECT_EQ(as_.Write(kBase, buf), AccessResult::kOk);
  EXPECT_EQ(as_.counters().unrecoverable_faults, 0u);
}

TEST_F(AddressSpaceTest, FaultInMovingRegionIsUnrecoverable) {
  Region* r = as_.CreateRegion(kBase, kPage, RegionState::kMovedIn);
  r->state = RegionState::kMovingOut;
  std::vector<std::byte> buf(16);
  EXPECT_EQ(as_.Read(kBase, buf), AccessResult::kUnrecoverableFault);
  r->state = RegionState::kMovingIn;
  EXPECT_EQ(as_.Read(kBase, buf), AccessResult::kUnrecoverableFault);
}

// --- Wiring ---

TEST_F(AddressSpaceTest, WireRangeFaultsInAndWires) {
  as_.CreateRegion(kBase, 3 * kPage);
  ASSERT_EQ(as_.WireRange(kBase, 3 * kPage, /*for_write=*/true), AccessResult::kOk);
  for (int i = 0; i < 3; ++i) {
    Pte* pte = as_.FindPte(kBase + i * kPage);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(vm_.pm().info(pte->frame).wire_count, 1);
  }
  as_.UnwireRange(kBase, 3 * kPage);
  EXPECT_EQ(vm_.pm().info(as_.FindPte(kBase)->frame).wire_count, 0);
}

TEST_F(AddressSpaceTest, WireOutsideRegionFails) {
  EXPECT_EQ(as_.WireRange(0x999000, kPage, false), AccessResult::kUnrecoverableFault);
}

// --- Region caching (weak move / emulated move reuse) ---

TEST_F(AddressSpaceTest, CachedRegionRoundTrip) {
  Region* r = as_.CreateRegion(kBase, 2 * kPage, RegionState::kMovedIn);
  r->state = RegionState::kWeaklyMovedOut;
  as_.EnqueueCachedRegion(kBase);
  EXPECT_EQ(as_.cached_regions(RegionState::kWeaklyMovedOut), 1u);
  Region* got = as_.DequeueCachedRegion(2 * kPage, RegionState::kWeaklyMovedOut);
  EXPECT_EQ(got, r);
  EXPECT_EQ(as_.cached_regions(RegionState::kWeaklyMovedOut), 0u);
}

TEST_F(AddressSpaceTest, CachedRegionLengthMustMatch) {
  Region* r = as_.CreateRegion(kBase, 2 * kPage, RegionState::kMovedIn);
  r->state = RegionState::kMovedOut;
  as_.EnqueueCachedRegion(kBase);
  EXPECT_EQ(as_.DequeueCachedRegion(4 * kPage, RegionState::kMovedOut), nullptr);
  EXPECT_EQ(as_.DequeueCachedRegion(2 * kPage, RegionState::kMovedOut), r);
}

TEST_F(AddressSpaceTest, StaleCacheEntriesSkipped) {
  Region* r = as_.CreateRegion(kBase, kPage, RegionState::kMovedIn);
  r->state = RegionState::kMovedOut;
  as_.EnqueueCachedRegion(kBase);
  as_.RemoveRegion(kBase);  // Application (maliciously) removed it.
  EXPECT_EQ(as_.DequeueCachedRegion(kPage, RegionState::kMovedOut), nullptr);
}

TEST_F(AddressSpaceTest, CacheIsFifo) {
  Region* r1 = as_.CreateRegion(kBase, kPage, RegionState::kMovedIn);
  Region* r2 = as_.CreateRegion(kBase + 4 * kPage, kPage, RegionState::kMovedIn);
  r1->state = RegionState::kWeaklyMovedOut;
  r2->state = RegionState::kWeaklyMovedOut;
  as_.EnqueueCachedRegion(kBase);
  as_.EnqueueCachedRegion(kBase + 4 * kPage);
  EXPECT_EQ(as_.DequeueCachedRegion(kPage, RegionState::kWeaklyMovedOut), r1);
  EXPECT_EQ(as_.DequeueCachedRegion(kPage, RegionState::kWeaklyMovedOut), r2);
}

// --- Sharing an object between address spaces ---

TEST_F(AddressSpaceTest, SharedObjectVisibleInBothSpaces) {
  AddressSpace other(vm_, "other");
  Region* r = as_.CreateRegion(kBase, kPage);
  const auto data = Pattern(64);
  ASSERT_EQ(as_.Write(kBase, data), AccessResult::kOk);
  other.CreateRegionWithObject(kBase, kPage, r->object, RegionState::kUnmovable);
  std::vector<std::byte> out(64);
  ASSERT_EQ(other.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 64), 0);
}

// Property sweep: round-trip writes at many offsets/lengths, including page
// boundaries.
class AddressSpaceRoundTripTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AddressSpaceRoundTripTest, RoundTrip) {
  Vm vm(64, kPage);
  AddressSpace as(vm, "proc");
  as.CreateRegion(kBase, 8 * kPage);
  const auto [offset, length] = GetParam();
  const auto data = Pattern(length, static_cast<unsigned char>(offset & 0xFF));
  ASSERT_EQ(as.Write(kBase + offset, data), AccessResult::kOk);
  std::vector<std::byte> out(length);
  ASSERT_EQ(as.Read(kBase + offset, out), AccessResult::kOk);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), length), 0);
}

INSTANTIATE_TEST_SUITE_P(OffsetsAndLengths, AddressSpaceRoundTripTest,
                         ::testing::Values(std::pair{0, 1}, std::pair{0, kPage},
                                           std::pair{1, kPage}, std::pair{kPage - 1, 2},
                                           std::pair{kPage - 1, kPage + 2},
                                           std::pair{123, 3 * kPage},
                                           std::pair{kPage / 2, kPage / 2},
                                           std::pair{2 * kPage + 7, 4 * kPage},
                                           std::pair{0, 8 * kPage}));

}  // namespace
}  // namespace genie
