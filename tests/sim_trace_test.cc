// Execution tracing: span/instant recording and Chrome trace-event JSON
// export, plus the Genie hooks (CPU operation spans, wire frame spans).
#include "src/sim/trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

TEST(TraceLogTest, RecordsSpansAndInstants) {
  TraceLog trace;
  trace.Span("cpu", "copyin", "genie", 100, 500);
  trace.Instant("wire", "frame-start", "net", 250);
  EXPECT_EQ(trace.event_count(), 2u);
  trace.Clear();
  EXPECT_EQ(trace.event_count(), 0u);
}

TEST(TraceLogTest, JsonShapeIsValid) {
  TraceLog trace;
  trace.Span("tx.cpu", "reference", "genie", 0, 5000);
  trace.Span("wire", "frame 4096B", "net", 5000, 250000);
  trace.Instant("rx.cpu", "interrupt", "genie", 250000);
  std::ostringstream os;
  trace.WriteJson(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');  // Trailing newline after ']'.
  // Metadata rows name the tracks; spans carry ph:X with durations in us.
  EXPECT_NE(json.find(R"("name":"thread_name")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X","dur":245)"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"i")"), std::string::npos);
  // Balanced braces (crude well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceLogTest, EscapesSpecialCharacters) {
  TraceLog trace;
  trace.Instant("t", "quote\"back\\slash", "c", 0);
  std::ostringstream os;
  trace.WriteJson(os);
  EXPECT_NE(os.str().find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(TraceLogTest, EscapesAllControlCharacters) {
  TraceLog trace;
  // Every kind of character JSON forbids raw inside a string: the named
  // short escapes and an arbitrary control byte (0x01) that needs \u00XX.
  trace.Instant("t", std::string("a\nb\rc\td\be\ff") + '\x01' + "g", "c", 0);
  std::ostringstream os;
  trace.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("a\\nb\\rc\\td\\be\\ff\\u0001g"), std::string::npos);
  // None of the raw bytes may survive into the output (newlines between
  // rows are structural; the payload's would appear glued to 'a'..'f').
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_EQ(json.find("a\nb"), std::string::npos);
  EXPECT_EQ(json.find("c\td"), std::string::npos);
}

TEST(TraceLogTest, EscapesTrackNamesInMetadata) {
  TraceLog trace;
  trace.Instant("tr\"ack\n1", "event", "c", 0);
  std::ostringstream os;
  trace.WriteJson(os);
  const std::string json = os.str();
  // The track name appears (escaped) in the thread_name metadata row.
  EXPECT_NE(json.find("tr\\\"ack\\n1"), std::string::npos);
  EXPECT_EQ(json.find("ack\n1"), std::string::npos);
}

TEST(TraceLogTest, ClockDefaultsToZeroAndFollowsInstalledCallback) {
  TraceLog trace;
  EXPECT_EQ(trace.Now(), 0);
  SimTime t = 42 * kMicrosecond;
  trace.set_clock([&t] { return t; });
  EXPECT_EQ(trace.Now(), 42 * kMicrosecond);
  t = 99 * kMicrosecond;
  EXPECT_EQ(trace.Now(), 99 * kMicrosecond);
}

TEST(TraceLogTest, ContextIsEmptyByDefaultAndSettable) {
  TraceLog trace;
  EXPECT_TRUE(trace.context().empty());
  trace.set_context("out#1[copy]");
  EXPECT_EQ(trace.context(), "out#1[copy]");
  trace.set_context("");
  EXPECT_TRUE(trace.context().empty());
}

TEST(TraceLogTest, RingCapacityBoundsLogAndCountsDrops) {
  TraceLog trace;
  trace.set_capacity(8);
  EXPECT_EQ(trace.capacity(), 8u);
  for (int i = 0; i < 100; ++i) {
    trace.Instant("t", "e" + std::to_string(i), "c", i * kMicrosecond);
  }
  // Amortized eviction: the buffer never exceeds 2x capacity and at least the
  // last `capacity` events survive, in order, with the drop count exact.
  EXPECT_LE(trace.event_count(), 16u);
  EXPECT_GE(trace.event_count(), 8u);
  EXPECT_EQ(trace.dropped_events() + trace.event_count(), 100u);
  EXPECT_EQ(trace.events().back().name, "e99");
  const std::size_t first_kept = 100 - trace.event_count();
  EXPECT_EQ(trace.events().front().name, "e" + std::to_string(first_kept));
  trace.Clear();
  EXPECT_EQ(trace.dropped_events(), 0u);
}

TEST(TraceLogTest, UnboundedByDefault) {
  TraceLog trace;
  for (int i = 0; i < 5000; ++i) {
    trace.Instant("t", "e", "c", 0);
  }
  EXPECT_EQ(trace.event_count(), 5000u);
  EXPECT_EQ(trace.dropped_events(), 0u);
}

TEST(TraceLogTest, RegisterNodeIsIdempotentPerOwner) {
  TraceLog trace;
  int owner_a = 0;
  trace.RegisterNode(&owner_a, "node.cpu");
  trace.RegisterNode(&owner_a, "node.cpu");  // re-claiming one's own is fine
  trace.UnregisterNode(&owner_a);
  // After unregistration another owner may claim the freed name.
  int owner_b = 0;
  trace.RegisterNode(&owner_b, "node.cpu");
  trace.UnregisterNode(&owner_b);
}

TEST(TraceLogDeathTest, ForeignTrackClaimAborts) {
  TraceLog trace;
  int owner_a = 0;
  int owner_b = 0;
  trace.RegisterNode(&owner_a, "node.cpu");
  EXPECT_DEATH(trace.RegisterNode(&owner_b, "node.cpu"), "already registered");
}

TEST(TraceLogTest, TwoNodesSharingOneLogKeepDistinctTracks) {
  // The regression the (node, name) dedup exists for: two Nodes attached to
  // one process-wide TraceLog must not collide on track names.
  TraceLog trace;
  Engine engine;
  Node a(engine, "alpha", Node::Config{});
  Node b(engine, "beta", Node::Config{});
  a.set_trace(&trace);
  b.set_trace(&trace);  // distinct names ("alpha.*" vs "beta.*"): no abort
  a.set_trace(nullptr);
  b.set_trace(nullptr);
}

TEST(TraceLogTest, FlowSpansCarryBindId) {
  TraceLog trace;
  trace.Span("tx.xfer", "out#1[copy].transmit", "xfer", 0, 1000, /*flow=*/0x2a);
  trace.Span("wire", "frame 4096B", "net", 1000, 2000, /*flow=*/0x2a);
  trace.Span("rx.cpu", "plain", "genie", 0, 500);  // flow 0: no arrow
  trace.Instant("rx.xfer", "rx_complete", "net", 2000, /*flow=*/0x2a);
  std::ostringstream os;
  trace.WriteJson(os);
  const std::string json = os.str();
  // Both flow-stamped spans chain through the same bind_id.
  std::size_t arrows = 0;
  for (std::size_t at = json.find(R"("bind_id":"0x2a")"); at != std::string::npos;
       at = json.find(R"("bind_id":"0x2a")", at + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, 2u);
  EXPECT_NE(json.find(R"("flow_in":true,"flow_out":true)"), std::string::npos);
  // The flow-0 span must not grow an arrow.
  const std::size_t plain = json.find(R"("name":"plain")");
  ASSERT_NE(plain, std::string::npos);
  const std::size_t plain_end = json.find('\n', plain);
  EXPECT_EQ(json.substr(plain, plain_end - plain).find("bind_id"), std::string::npos);
}

TEST(TraceLogTest, GenieTransferProducesStructuredTrace) {
  TraceLog trace;
  Rig rig;
  rig.sender.set_trace(&trace);
  rig.receiver.set_trace(&trace);
  constexpr Vaddr kBuf = 0x20000000;
  rig.tx_app.CreateRegion(kBuf, 16 * 4096);
  rig.rx_app.CreateRegion(kBuf, 16 * 4096);
  ASSERT_EQ(rig.tx_app.Write(kBuf, TestPattern(8 * 4096, 1)), AccessResult::kOk);
  const InputResult r = rig.Transfer(kBuf, kBuf, 8 * 4096, Semantics::kEmulatedCopy);
  ASSERT_TRUE(r.ok);

  EXPECT_GT(trace.event_count(), 5u);
  std::ostringstream os;
  trace.WriteJson(os);
  const std::string json = os.str();
  // The emulated-copy critical path shows up by name on the right tracks.
  EXPECT_NE(json.find("tx.cpu"), std::string::npos);
  EXPECT_NE(json.find("rx.cpu"), std::string::npos);
  EXPECT_NE(json.find("Reference"), std::string::npos);
  EXPECT_NE(json.find("Swap"), std::string::npos);
  EXPECT_NE(json.find(".wire"), std::string::npos);
  EXPECT_NE(json.find("frame 32768B"), std::string::npos);
}

TEST(TraceLogTest, DisabledTraceCostsNothing) {
  Rig rig;  // No set_trace: all hooks are no-ops.
  constexpr Vaddr kBuf = 0x20000000;
  rig.tx_app.CreateRegion(kBuf, 16 * 4096);
  rig.rx_app.CreateRegion(kBuf, 16 * 4096);
  ASSERT_EQ(rig.tx_app.Write(kBuf, TestPattern(4096, 1)), AccessResult::kOk);
  EXPECT_TRUE(rig.Transfer(kBuf, kBuf, 4096, Semantics::kEmulatedCopy).ok);
}

}  // namespace
}  // namespace genie
