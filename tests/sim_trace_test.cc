// Execution tracing: span/instant recording and Chrome trace-event JSON
// export, plus the Genie hooks (CPU operation spans, wire frame spans).
#include "src/sim/trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

TEST(TraceLogTest, RecordsSpansAndInstants) {
  TraceLog trace;
  trace.Span("cpu", "copyin", "genie", 100, 500);
  trace.Instant("wire", "frame-start", "net", 250);
  EXPECT_EQ(trace.event_count(), 2u);
  trace.Clear();
  EXPECT_EQ(trace.event_count(), 0u);
}

TEST(TraceLogTest, JsonShapeIsValid) {
  TraceLog trace;
  trace.Span("tx.cpu", "reference", "genie", 0, 5000);
  trace.Span("wire", "frame 4096B", "net", 5000, 250000);
  trace.Instant("rx.cpu", "interrupt", "genie", 250000);
  std::ostringstream os;
  trace.WriteJson(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');  // Trailing newline after ']'.
  // Metadata rows name the tracks; spans carry ph:X with durations in us.
  EXPECT_NE(json.find(R"("name":"thread_name")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X","dur":245)"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"i")"), std::string::npos);
  // Balanced braces (crude well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceLogTest, EscapesSpecialCharacters) {
  TraceLog trace;
  trace.Instant("t", "quote\"back\\slash", "c", 0);
  std::ostringstream os;
  trace.WriteJson(os);
  EXPECT_NE(os.str().find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(TraceLogTest, EscapesAllControlCharacters) {
  TraceLog trace;
  // Every kind of character JSON forbids raw inside a string: the named
  // short escapes and an arbitrary control byte (0x01) that needs \u00XX.
  trace.Instant("t", std::string("a\nb\rc\td\be\ff") + '\x01' + "g", "c", 0);
  std::ostringstream os;
  trace.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("a\\nb\\rc\\td\\be\\ff\\u0001g"), std::string::npos);
  // None of the raw bytes may survive into the output (newlines between
  // rows are structural; the payload's would appear glued to 'a'..'f').
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_EQ(json.find("a\nb"), std::string::npos);
  EXPECT_EQ(json.find("c\td"), std::string::npos);
}

TEST(TraceLogTest, EscapesTrackNamesInMetadata) {
  TraceLog trace;
  trace.Instant("tr\"ack\n1", "event", "c", 0);
  std::ostringstream os;
  trace.WriteJson(os);
  const std::string json = os.str();
  // The track name appears (escaped) in the thread_name metadata row.
  EXPECT_NE(json.find("tr\\\"ack\\n1"), std::string::npos);
  EXPECT_EQ(json.find("ack\n1"), std::string::npos);
}

TEST(TraceLogTest, ClockDefaultsToZeroAndFollowsInstalledCallback) {
  TraceLog trace;
  EXPECT_EQ(trace.Now(), 0);
  SimTime t = 42 * kMicrosecond;
  trace.set_clock([&t] { return t; });
  EXPECT_EQ(trace.Now(), 42 * kMicrosecond);
  t = 99 * kMicrosecond;
  EXPECT_EQ(trace.Now(), 99 * kMicrosecond);
}

TEST(TraceLogTest, ContextIsEmptyByDefaultAndSettable) {
  TraceLog trace;
  EXPECT_TRUE(trace.context().empty());
  trace.set_context("out#1[copy]");
  EXPECT_EQ(trace.context(), "out#1[copy]");
  trace.set_context("");
  EXPECT_TRUE(trace.context().empty());
}

TEST(TraceLogTest, GenieTransferProducesStructuredTrace) {
  TraceLog trace;
  Rig rig;
  rig.sender.set_trace(&trace);
  rig.receiver.set_trace(&trace);
  constexpr Vaddr kBuf = 0x20000000;
  rig.tx_app.CreateRegion(kBuf, 16 * 4096);
  rig.rx_app.CreateRegion(kBuf, 16 * 4096);
  ASSERT_EQ(rig.tx_app.Write(kBuf, TestPattern(8 * 4096, 1)), AccessResult::kOk);
  const InputResult r = rig.Transfer(kBuf, kBuf, 8 * 4096, Semantics::kEmulatedCopy);
  ASSERT_TRUE(r.ok);

  EXPECT_GT(trace.event_count(), 5u);
  std::ostringstream os;
  trace.WriteJson(os);
  const std::string json = os.str();
  // The emulated-copy critical path shows up by name on the right tracks.
  EXPECT_NE(json.find("tx.cpu"), std::string::npos);
  EXPECT_NE(json.find("rx.cpu"), std::string::npos);
  EXPECT_NE(json.find("Reference"), std::string::npos);
  EXPECT_NE(json.find("Swap"), std::string::npos);
  EXPECT_NE(json.find(".wire"), std::string::npos);
  EXPECT_NE(json.find("frame 32768B"), std::string::npos);
}

TEST(TraceLogTest, DisabledTraceCostsNothing) {
  Rig rig;  // No set_trace: all hooks are no-ops.
  constexpr Vaddr kBuf = 0x20000000;
  rig.tx_app.CreateRegion(kBuf, 16 * 4096);
  rig.rx_app.CreateRegion(kBuf, 16 * 4096);
  ASSERT_EQ(rig.tx_app.Write(kBuf, TestPattern(4096, 1)), AccessResult::kOk);
  EXPECT_TRUE(rig.Transfer(kBuf, kBuf, 4096, Semantics::kEmulatedCopy).ok);
}

}  // namespace
}  // namespace genie
