// Section 8 scaling model (Table 8 and the OC-12 extrapolation).
#include "src/analysis/scaling_model.h"

#include <gtest/gtest.h>

#include "src/analysis/latency_model.h"

namespace genie {
namespace {

TEST(ScalingTest, GatewayMemoryAndCacheRatios) {
  const CostModel base(MachineProfile::MicronP166());
  const CostModel target(MachineProfile::GatewayP5_90());
  const ScalingReport report = ComputeScaling(base, target);
  // Paper Table 8: memory-dominated 2.43, cache-dominated 2.46.
  EXPECT_NEAR(report.memory_dominated.geometric_mean, 2.43, 0.05);
  EXPECT_NEAR(report.cache_dominated.geometric_mean, 2.46, 0.01);
}

TEST(ScalingTest, GatewayCpuRatiosExceedSpecintEstimate) {
  const CostModel base(MachineProfile::MicronP166());
  const CostModel target(MachineProfile::GatewayP5_90());
  const ScalingReport report = ComputeScaling(base, target);
  const EstimatedScaling est =
      EstimateScalingBounds(MachineProfile::MicronP166(), MachineProfile::GatewayP5_90());
  EXPECT_NEAR(est.cpu_low, 1.57, 0.01);
  // Measured ratios exceed the lower bound (the rating was an upper bound).
  EXPECT_GE(report.cpu_mult_factor.min, est.cpu_low * 0.99);
  EXPECT_NEAR(report.cpu_mult_factor.geometric_mean, 1.79, 0.08);
  EXPECT_NEAR(report.cpu_fixed_term.geometric_mean, 1.83, 0.12);
}

TEST(ScalingTest, AlphaCpuRatiosHaveWideVariance) {
  const CostModel base(MachineProfile::MicronP166());
  const CostModel target(MachineProfile::AlphaStation255());
  const ScalingReport report = ComputeScaling(base, target);
  // Paper: GM ~1.64 for slopes with min 0.75 / max 3.77 (page-table update
  // costs diverge on a different architecture).
  EXPECT_NEAR(report.cpu_mult_factor.geometric_mean, 1.64, 0.15);
  EXPECT_NEAR(report.cpu_mult_factor.min, 0.75, 0.05);
  EXPECT_NEAR(report.cpu_mult_factor.max, 3.77, 0.05);
  // Fixed terms: GM ~1.54, min 0.47, max 3.74.
  EXPECT_NEAR(report.cpu_fixed_term.min, 0.47, 0.05);
  EXPECT_NEAR(report.cpu_fixed_term.max, 3.74, 0.05);
  // Memory/cache: 0.83 / 0.54.
  EXPECT_NEAR(report.memory_dominated.geometric_mean, 0.83, 0.03);
  EXPECT_NEAR(report.cache_dominated.geometric_mean, 0.54, 0.01);
}

TEST(ScalingTest, EstimatedBoundsMatchPaper) {
  const EstimatedScaling gw =
      EstimateScalingBounds(MachineProfile::MicronP166(), MachineProfile::GatewayP5_90());
  EXPECT_NEAR(gw.memory, 2.40, 0.02);     // Paper "Estimated" 2.40.
  EXPECT_NEAR(gw.cache_low, 1.44, 0.01);  // > 1.44
  EXPECT_NEAR(gw.cache_high, 3.33, 0.01);  // < 3.33
  const EstimatedScaling alpha =
      EstimateScalingBounds(MachineProfile::MicronP166(), MachineProfile::AlphaStation255());
  EXPECT_NEAR(alpha.memory, 1.00, 0.01);
  EXPECT_NEAR(alpha.cache_low, 0.26, 0.01);
  EXPECT_NEAR(alpha.cache_high, 1.39, 0.01);
  EXPECT_NEAR(alpha.cpu_low, 1.30, 0.01);
}

TEST(ScalingTest, Oc12Extrapolation) {
  // Paper Section 8: at OC-12, 60 KB single-datagram throughput close to
  // 140 Mbps copy, 404 emulated copy, 463 emulated share, 380 move.
  const MachineProfile oc12 =
      MachineProfile::MicronP166().WithEffectiveLinkMbps(4 * MachineProfile().effective_link_mbps());
  const CostModel cost(oc12);
  const GenieOptions opts;
  const std::uint64_t b = 60 * 1024;
  auto tput = [&](Semantics s) {
    return static_cast<double>(b) * 8 /
           EstimateLatencyUs(cost, opts, s, InputBuffering::kEarlyDemux, 0, b);
  };
  EXPECT_NEAR(tput(Semantics::kCopy), 140, 5);
  EXPECT_NEAR(tput(Semantics::kEmulatedCopy), 404, 12);
  EXPECT_NEAR(tput(Semantics::kEmulatedShare), 463, 15);
  EXPECT_NEAR(tput(Semantics::kMove), 380, 12);
}

TEST(ScalingTest, TrendsWidenTheCopyGap) {
  // "If CPU speeds continue to increase faster than main memory bandwidth,
  // the performance difference between copy and other semantics will
  // increase."
  MachineProfile future = MachineProfile::MicronP166();
  future.spec_int *= 10;       // CPU 10x.
  future.memory_factor = 0.5;  // Memory copy only 2x.
  future.cache_factor = 0.5;
  future.link_us_per_byte /= 10;  // Devices keep pace with the CPU.
  const CostModel now(MachineProfile::MicronP166());
  const CostModel later(future);
  const GenieOptions opts;
  const std::uint64_t b = 60 * 1024;
  auto gap = [&](const CostModel& cm) {
    const double copy =
        EstimateLatencyUs(cm, opts, Semantics::kCopy, InputBuffering::kEarlyDemux, 0, b);
    const double ecopy =
        EstimateLatencyUs(cm, opts, Semantics::kEmulatedCopy, InputBuffering::kEarlyDemux, 0, b);
    return copy / ecopy;
  };
  EXPECT_GT(gap(later), gap(now));
}

TEST(ScalingTest, TrendsShrinkNonCopyDifferences) {
  // "Performance differences between semantics other than copy will tend to
  // decrease" as CPU speeds outpace transmission rates.
  MachineProfile future = MachineProfile::MicronP166();
  future.spec_int *= 10;  // CPU 10x, same link.
  const CostModel now(MachineProfile::MicronP166());
  const CostModel later(future);
  const GenieOptions opts;
  const std::uint64_t b = 60 * 1024;
  auto spread = [&](const CostModel& cm) {
    double lo = 1e18;
    double hi = 0;
    for (const Semantics s : kAllSemantics) {
      if (s == Semantics::kCopy) {
        continue;
      }
      const double v = EstimateLatencyUs(cm, opts, s, InputBuffering::kEarlyDemux, 0, b);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return (hi - lo) / lo;
  };
  EXPECT_LT(spread(later), spread(now));
}

}  // namespace
}  // namespace genie
