// Endpoint bulk lifecycle: a fabric workload creates endpoints by the
// thousand, so (a) construction must be cheap — GenieOptions::register_metrics
// = false adds nothing to the node's metrics registry — and (b) destruction
// must leave every per-channel table empty: gauges, pooled/outboard fan-out
// handlers, and fabric routes. A single stale entry here is a dangling `this`
// capture waiting for the next snapshot or frame arrival.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/fabric.h"
#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::size_t kNodes = 4;
constexpr std::uint64_t kChannels = 1000;  // 2 endpoints each

TEST(EndpointScaleTest, RegisterMetricsOffAddsNoGauges) {
  Engine engine;
  Node node(engine, "n", Node::Config{});
  const std::size_t baseline = node.metrics().gauge_count();

  GenieOptions quiet;
  quiet.register_metrics = false;
  {
    Endpoint ep(node, 1, quiet);
    EXPECT_EQ(node.metrics().gauge_count(), baseline);
  }
  // The default still registers per-endpoint gauges — and removes them.
  {
    Endpoint ep(node, 2);
    EXPECT_GT(node.metrics().gauge_count(), baseline);
  }
  EXPECT_EQ(node.metrics().gauge_count(), baseline);
}

TEST(EndpointScaleTest, BulkQuietEndpointsRegisterNothingWhileAlive) {
  Engine engine;
  Fabric fabric(engine, Fabric::Config{});
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<Node>(engine, "n" + std::to_string(i), Node::Config{}));
    fabric.Attach(nodes.back()->adapter());
  }
  std::vector<std::size_t> baseline;
  for (const auto& n : nodes) {
    baseline.push_back(n->metrics().gauge_count());
  }

  GenieOptions quiet;
  quiet.register_metrics = false;
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  for (std::uint64_t ch = 1; ch <= kChannels; ++ch) {
    Node& tx = *nodes[ch % kNodes];
    Node& rx = *nodes[(ch + 1) % kNodes];
    fabric.OpenChannel(ch, tx.adapter(), rx.adapter());
    endpoints.push_back(std::make_unique<Endpoint>(tx, ch, quiet));
    endpoints.push_back(std::make_unique<Endpoint>(rx, ch, quiet));
  }
  ASSERT_EQ(endpoints.size(), 2 * kChannels);
  for (std::size_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(nodes[i]->metrics().gauge_count(), baseline[i]) << "node " << i;
  }
  EXPECT_EQ(fabric.channels(), kChannels);
}

// The full teardown property, per input-buffering mode: populate a 4-node
// fabric with 2000 endpoints, pass live traffic through a sample of them,
// destroy everything, and count the registry entries left behind.
TEST(EndpointScaleTest, ThousandsOfEndpointsTearDownClean) {
  for (const InputBuffering mode :
       {InputBuffering::kEarlyDemux, InputBuffering::kPooled, InputBuffering::kOutboard}) {
    Engine engine;
    Fabric fabric(engine, Fabric::Config{});
    Node::Config node_cfg;
    node_cfg.rx_buffering = mode;
    std::vector<std::unique_ptr<Node>> nodes;
    std::vector<AddressSpace*> apps;
    for (std::size_t i = 0; i < kNodes; ++i) {
      nodes.push_back(
          std::make_unique<Node>(engine, "n" + std::to_string(i), node_cfg));
      fabric.Attach(nodes.back()->adapter());
      apps.push_back(&nodes.back()->CreateProcess("app"));
    }
    std::vector<std::size_t> baseline;
    for (const auto& n : nodes) {
      baseline.push_back(n->metrics().gauge_count());
    }

    std::vector<std::unique_ptr<Endpoint>> endpoints;
    for (std::uint64_t ch = 1; ch <= kChannels; ++ch) {
      Node& tx = *nodes[ch % kNodes];
      Node& rx = *nodes[(ch + 1) % kNodes];
      fabric.OpenChannel(ch, tx.adapter(), rx.adapter());
      endpoints.push_back(std::make_unique<Endpoint>(tx, ch));
      endpoints.push_back(std::make_unique<Endpoint>(rx, ch));
    }
    // Every endpoint hooked its channel into its node's fan-out table.
    if (mode == InputBuffering::kPooled) {
      std::size_t handlers = 0;
      for (const auto& n : nodes) {
        handlers += n->pooled_handler_count();
      }
      EXPECT_EQ(handlers, 2 * kChannels);
    }

    // The population is live, not inert: drive golden transfers through a
    // sample of channels spread across the id space.
    constexpr std::uint64_t kLen = 3000;
    constexpr Vaddr kSrc = 0x100000;
    constexpr Vaddr kDst = 0x200000;
    auto input_driver = [](Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t n,
                           InputResult* out) -> Task<void> {
      *out = co_await ep.Input(app, va, n, Semantics::kCopy);
    };
    for (const std::uint64_t ch : {std::uint64_t{1}, kChannels / 2, kChannels}) {
      Endpoint& tx_ep = *endpoints[2 * (ch - 1)];
      Endpoint& rx_ep = *endpoints[2 * (ch - 1) + 1];
      AddressSpace& tx_app = *apps[ch % kNodes];
      AddressSpace& rx_app = *apps[(ch + 1) % kNodes];
      tx_app.CreateRegion(kSrc, 4096);
      rx_app.CreateRegion(kDst, 4096);
      const auto payload = TestPattern(kLen, static_cast<unsigned char>(ch));
      ASSERT_EQ(tx_app.Write(kSrc, payload), AccessResult::kOk);
      InputResult result;
      std::move(input_driver(rx_ep, rx_app, kDst, kLen, &result)).Detach();
      std::move(tx_ep.Output(tx_app, kSrc, kLen, Semantics::kCopy)).Detach();
      engine.Run();
      ASSERT_TRUE(result.ok) << "channel " << ch;
      std::vector<std::byte> got(kLen);
      ASSERT_EQ(rx_app.Read(result.addr, got), AccessResult::kOk);
      EXPECT_EQ(got, payload) << "channel " << ch;
      tx_app.RemoveRegion(kSrc);
      rx_app.RemoveRegion(kDst);
    }

    // Teardown: destroy all 2000 endpoints and close every route.
    endpoints.clear();
    for (std::uint64_t ch = 1; ch <= kChannels; ++ch) {
      fabric.CloseChannel(ch);
    }
    for (std::size_t i = 0; i < kNodes; ++i) {
      EXPECT_EQ(nodes[i]->metrics().gauge_count(), baseline[i])
          << "node " << i << " mode " << static_cast<int>(mode);
      EXPECT_EQ(nodes[i]->pooled_handler_count(), 0u) << "node " << i;
      EXPECT_EQ(nodes[i]->outboard_handler_count(), 0u) << "node " << i;
      // A snapshot after teardown must not touch freed endpoints.
      (void)nodes[i]->metrics().Snapshot();
    }
    EXPECT_EQ(fabric.channels(), 0u);
  }
}

}  // namespace
}  // namespace genie
