#include "src/sim/task.h"

#include <gtest/gtest.h>

#include "src/sim/awaitable.h"
#include "src/sim/engine.h"

namespace genie {
namespace {

Task<void> SetFlag(bool& flag) {
  flag = true;
  co_return;
}

TEST(TaskTest, LazyStart) {
  bool ran = false;
  Task<void> t = SetFlag(ran);
  EXPECT_FALSE(ran);  // Not started until detached or awaited.
  std::move(t).Detach();
  EXPECT_TRUE(ran);
}

TEST(TaskTest, DestroyingUnstartedTaskIsSafe) {
  bool ran = false;
  {
    Task<void> t = SetFlag(ran);
    (void)t;
  }
  EXPECT_FALSE(ran);
}

Task<int> FortyTwo() { co_return 42; }

Task<void> AwaitValue(int& out) {
  out = co_await FortyTwo();
  co_return;
}

TEST(TaskTest, AwaitReturnsValue) {
  int out = 0;
  std::move(AwaitValue(out)).Detach();
  EXPECT_EQ(out, 42);
}

Task<void> Sleeper(Engine& eng, SimTime d, SimTime& woke_at) {
  co_await Delay(eng, d);
  woke_at = eng.now();
}

TEST(TaskTest, DelaySuspendsUntilScheduledTime) {
  Engine eng;
  SimTime woke_at = -1;
  std::move(Sleeper(eng, 500, woke_at)).Detach();
  EXPECT_EQ(woke_at, -1);  // Suspended.
  eng.Run();
  EXPECT_EQ(woke_at, 500);
}

TEST(TaskTest, ZeroDelayDoesNotSuspend) {
  Engine eng;
  SimTime woke_at = -1;
  std::move(Sleeper(eng, 0, woke_at)).Detach();
  EXPECT_EQ(woke_at, 0);  // Ran through synchronously.
}

Task<int> DelayedValue(Engine& eng, SimTime d, int v) {
  co_await Delay(eng, d);
  co_return v;
}

Task<void> ChainOfAwaits(Engine& eng, int& total) {
  total += co_await DelayedValue(eng, 10, 1);
  total += co_await DelayedValue(eng, 10, 2);
  total += co_await DelayedValue(eng, 10, 3);
}

TEST(TaskTest, SequentialChildTasksAccumulateDelays) {
  Engine eng;
  int total = 0;
  std::move(ChainOfAwaits(eng, total)).Detach();
  eng.Run();
  EXPECT_EQ(total, 6);
  EXPECT_EQ(eng.now(), 30);
}

TEST(TaskTest, ConcurrentDetachedTasksInterleave) {
  Engine eng;
  SimTime a = -1;
  SimTime b = -1;
  std::move(Sleeper(eng, 100, a)).Detach();
  std::move(Sleeper(eng, 50, b)).Detach();
  eng.Run();
  EXPECT_EQ(a, 100);
  EXPECT_EQ(b, 50);
}

Task<void> WaitOn(SimEvent& ev, int& order, int id) {
  co_await ev.Wait();
  order = id;
}

TEST(TaskTest, SimEventReleasesWaiter) {
  Engine eng;
  SimEvent ev(eng);
  int order = 0;
  std::move(WaitOn(ev, order, 7)).Detach();
  eng.Run();
  EXPECT_EQ(order, 0);  // Still waiting; queue drained.
  ev.Set();
  eng.Run();
  EXPECT_EQ(order, 7);
}

TEST(TaskTest, SimEventAlreadySetDoesNotSuspend) {
  Engine eng;
  SimEvent ev(eng);
  ev.Set();
  int order = 0;
  std::move(WaitOn(ev, order, 9)).Detach();
  EXPECT_EQ(order, 9);
}

TEST(TaskTest, SimEventResetBlocksAgain) {
  Engine eng;
  SimEvent ev(eng);
  ev.Set();
  ev.Reset();
  int order = 0;
  std::move(WaitOn(ev, order, 3)).Detach();
  eng.Run();
  EXPECT_EQ(order, 0);
  ev.Set();
  eng.Run();
  EXPECT_EQ(order, 3);
}

TEST(TaskTest, SimEventWakesAllWaiters) {
  Engine eng;
  SimEvent ev(eng);
  int o1 = 0;
  int o2 = 0;
  std::move(WaitOn(ev, o1, 1)).Detach();
  std::move(WaitOn(ev, o2, 2)).Detach();
  EXPECT_EQ(ev.waiter_count(), 2u);
  ev.Set();
  eng.Run();
  EXPECT_EQ(o1, 1);
  EXPECT_EQ(o2, 2);
}

struct MoveOnly {
  explicit MoveOnly(int v) : value(v) {}
  MoveOnly(MoveOnly&&) = default;
  MoveOnly& operator=(MoveOnly&&) = default;
  int value;
};

Task<MoveOnly> MakeMoveOnly() { co_return MoveOnly(5); }

Task<void> AwaitMoveOnly(int& out) {
  MoveOnly m = co_await MakeMoveOnly();
  out = m.value;
}

TEST(TaskTest, MoveOnlyResultType) {
  int out = 0;
  std::move(AwaitMoveOnly(out)).Detach();
  EXPECT_EQ(out, 5);
}

Task<int> Thrower() {
  throw std::runtime_error("boom");
  co_return 0;  // Unreachable; makes this a coroutine.
}

Task<void> CatchFromChild(bool& caught) {
  try {
    (void)co_await Thrower();
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(TaskTest, ExceptionPropagatesToAwaiter) {
  bool caught = false;
  std::move(CatchFromChild(caught)).Detach();
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace genie
