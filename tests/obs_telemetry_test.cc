// Continuous telemetry plane: counter/histogram window-delta math, the
// probe-driven sampler's seeded cadence and zero-perturbation guarantee,
// Perfetto counter-track emission, SLO burn-rate alerting, and the
// partition-flap soak (an alert fires inside the outage window and the
// flight-recorder dump names the violating tenant).
#include "src/obs/telemetry.h"

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/genie/node.h"
#include "src/harness/workload.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/sim/engine.h"
#include "src/sim/trace.h"

namespace genie {
namespace {

// DumpToFile consults GENIE_FLIGHT_DIR before Config::dir; pin it unset for
// the soak test so dumps land in the test's TempDir.
class ScopedFlightDirEnv {
 public:
  explicit ScopedFlightDirEnv(const char* value) {
    const char* prev = std::getenv("GENIE_FLIGHT_DIR");
    had_prev_ = prev != nullptr;
    if (had_prev_) {
      prev_ = prev;
    }
    if (value == nullptr) {
      unsetenv("GENIE_FLIGHT_DIR");
    } else {
      setenv("GENIE_FLIGHT_DIR", value, 1);
    }
  }
  ~ScopedFlightDirEnv() {
    if (had_prev_) {
      setenv("GENIE_FLIGHT_DIR", prev_.c_str(), 1);
    } else {
      unsetenv("GENIE_FLIGHT_DIR");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(CounterDeltaTest, MonotonicCountersAndResetClamp) {
  EXPECT_EQ(CounterDelta(0, 0), 0u);
  EXPECT_EQ(CounterDelta(3, 10), 7u);
  // A decrease means the source was reset (node restart); the window reports
  // 0, never an unsigned wraparound.
  EXPECT_EQ(CounterDelta(10, 3), 0u);
  EXPECT_EQ(CounterDelta(~0ull, 0), 0u);
}

TEST(HistogramDeltaTest, IntervalDifferenceMatchesDirectlyCollectedHistogram) {
  LatencyHistogram cumulative;
  for (int i = 0; i < 50; ++i) {
    cumulative.Add(10.0 + i);  // phase 1: 50 samples in the tens
  }
  const LatencyHistogram start = cumulative;

  LatencyHistogram direct;  // collects only the window's samples
  for (int i = 0; i < 80; ++i) {
    const double v = 300.0 + 5 * i;  // phase 2: distinct range
    cumulative.Add(v);
    direct.Add(v);
  }

  const HistogramDelta delta = DiffHistograms(cumulative, start);
  EXPECT_EQ(delta.count, direct.count());
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(delta.buckets[i], direct.bucket(i)) << "bucket " << i;
  }
  // Mid-range quantiles resolve to the same bucket boundary as a histogram
  // that only ever saw the window (no min/max clamping in play at p50).
  EXPECT_DOUBLE_EQ(delta.Quantile(50), direct.Quantile(50));
  // Near the top the direct histogram clamps its answer to the observed max,
  // which a window delta cannot know; the delta must still agree to within
  // one bucket (the boundary ratio, 2^(1/4)).
  EXPECT_GE(delta.Quantile(90), direct.Quantile(90));
  EXPECT_LE(delta.Quantile(90), direct.Quantile(90) * 1.1892071150027210667);
}

TEST(HistogramDeltaTest, OverflowBucketQuantileReportsEndMax) {
  LatencyHistogram cumulative;
  cumulative.Add(5.0);
  const LatencyHistogram start = cumulative;
  const double huge = 1e15;  // far past the last finite bucket boundary
  cumulative.Add(huge);
  const HistogramDelta delta = DiffHistograms(cumulative, start);
  ASSERT_EQ(delta.count, 1u);
  EXPECT_EQ(delta.buckets[LatencyHistogram::kBuckets - 1], 1u);
  // The overflow bucket has no finite upper bound; the cumulative max is the
  // best available answer for any rank that lands there.
  EXPECT_DOUBLE_EQ(delta.Quantile(99), huge);
}

TEST(HistogramDeltaTest, SourceResetMidWindowClampsBucketsToZero) {
  LatencyHistogram before_reset;
  for (int i = 0; i < 20; ++i) {
    before_reset.Add(100.0);
  }
  LatencyHistogram after_reset;  // fresh: the source was reset mid-window
  after_reset.Add(100.0);
  const HistogramDelta delta = DiffHistograms(after_reset, before_reset);
  EXPECT_EQ(delta.count, 0u);  // clamped, not 1 - 20 underflowed
}

TEST(TelemetrySamplerTest, SeededCadenceStampsBoundariesAndDerivesRates) {
  Engine engine;
  MetricsRegistry reg;
  TelemetrySampler::Config cfg;
  cfg.period = 100 * kMicrosecond;  // seed 0: boundaries at 100us, 200us, ...
  cfg.rate_counters = {"c"};
  TelemetrySampler sampler(&engine, cfg);
  sampler.AddSource("src", &reg);

  engine.ScheduleAt(50 * kMicrosecond, [&] { reg.Add("c", 5); });
  engine.ScheduleAt(150 * kMicrosecond, [&] { reg.Add("c", 7); });
  engine.ScheduleAt(460 * kMicrosecond, [&] { reg.Add("c", 9); });
  engine.Run();
  sampler.Finish();

  const TelemetrySeries* s = sampler.FindSeries("src");
  ASSERT_NE(s, nullptr);
  // Three samples: the 150us event crosses the 100us boundary (value: the
  // 50us event only — probes run before the crossing event's callback); the
  // 460us event jumps two periods and lands ONE sample at the 400us
  // boundary; Finish() flushes the final partial window at 460us.
  ASSERT_EQ(s->samples.size(), 3u);
  EXPECT_EQ(s->samples[0].t, 100 * kMicrosecond);
  EXPECT_EQ(s->samples[0].interval, 100 * kMicrosecond);
  EXPECT_EQ(s->samples[0].values.at("c"), 5u);
  EXPECT_DOUBLE_EQ(s->samples[0].rates.at("c.rate_per_s"), 5e9 / 100000.0);

  EXPECT_EQ(s->samples[1].t, 400 * kMicrosecond);
  EXPECT_EQ(s->samples[1].interval, 300 * kMicrosecond);
  EXPECT_EQ(s->samples[1].values.at("c"), 12u);
  EXPECT_DOUBLE_EQ(s->samples[1].rates.at("c.rate_per_s"), 7e9 / 300000.0);

  EXPECT_EQ(s->samples[2].t, 460 * kMicrosecond);
  EXPECT_EQ(s->samples[2].interval, 60 * kMicrosecond);
  EXPECT_EQ(s->samples[2].values.at("c"), 21u);
  EXPECT_DOUBLE_EQ(s->samples[2].rates.at("c.rate_per_s"), 9e9 / 60000.0);
  EXPECT_EQ(sampler.samples_taken(), 3u);
}

TEST(TelemetrySamplerTest, SeedOffsetsThePhaseGrid) {
  Engine engine;
  MetricsRegistry reg;
  TelemetrySampler::Config cfg;
  cfg.period = 100 * kMicrosecond;
  cfg.seed = 30 * kMicrosecond;  // boundaries at 30us, 130us, ...
  TelemetrySampler sampler(&engine, cfg);
  sampler.AddSource("src", &reg);
  engine.ScheduleAt(50 * kMicrosecond, [] {});
  engine.Run();
  const TelemetrySeries* s = sampler.FindSeries("src");
  ASSERT_EQ(s->samples.size(), 1u);
  EXPECT_EQ(s->samples[0].t, 30 * kMicrosecond);
}

TEST(TelemetrySamplerTest, AttachedSamplerAddsNoEventsAndPreservesDigest) {
  // The whole point of the probe design: a run with a sampler attached
  // executes the identical event sequence (digest and count) as without.
  const auto run = [](bool with_sampler) {
    Engine engine;
    MetricsRegistry reg;
    std::unique_ptr<TelemetrySampler> sampler;
    if (with_sampler) {
      TelemetrySampler::Config cfg;
      cfg.period = 50 * kMicrosecond;
      cfg.rate_counters = {"c"};
      sampler = std::make_unique<TelemetrySampler>(&engine, cfg);
      sampler->AddSource("src", &reg);
    }
    // A self-rescheduling chain: 40 events at 30us strides.
    std::function<void(int)> tick = [&](int remaining) {
      reg.Add("c", 1);
      if (remaining > 0) {
        engine.ScheduleAt(engine.now() + 30 * kMicrosecond,
                          [&tick, remaining] { tick(remaining - 1); });
      }
    };
    engine.ScheduleAt(0, [&tick] { tick(39); });
    engine.Run();
    if (sampler != nullptr) {
      sampler->Finish();
      EXPECT_GT(sampler->samples_taken(), 10u);
    }
    return std::pair<std::uint64_t, std::uint64_t>(engine.event_digest(),
                                                   engine.events_executed());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(TelemetrySamplerTest, RingCapacityEvictsOldestAndCountsDrops) {
  Engine engine;
  MetricsRegistry reg;
  TelemetrySampler::Config cfg;
  cfg.period = 10 * kMicrosecond;
  cfg.ring_capacity = 2;
  TelemetrySampler sampler(&engine, cfg);
  sampler.AddSource("src", &reg);
  for (int i = 1; i <= 5; ++i) {
    engine.ScheduleAt(i * 10 * kMicrosecond + kMicrosecond, [] {});
  }
  engine.Run();
  const TelemetrySeries* s = sampler.FindSeries("src");
  ASSERT_EQ(s->samples.size(), 2u);
  EXPECT_EQ(s->dropped, sampler.samples_taken() - 2);
  EXPECT_GT(s->dropped, 0u);
  // The retained tail is the newest samples.
  EXPECT_LT(s->samples[0].t, s->samples[1].t);
  EXPECT_EQ(s->samples[1].t, 50 * kMicrosecond);
}

TEST(TelemetrySamplerTest, CounterTracksEmitContinuousSeriesToTrace) {
  Engine engine;
  MetricsRegistry reg;
  TraceLog trace;
  TelemetrySampler::Config cfg;
  cfg.period = 100 * kMicrosecond;
  cfg.rate_counters = {"c"};
  cfg.counter_tracks = {"src/c", "src/c.rate_per_s", "src/absent"};
  TelemetrySampler sampler(&engine, cfg);
  sampler.AddSource("src", &reg);
  sampler.set_trace(&trace);
  engine.ScheduleAt(50 * kMicrosecond, [&] { reg.Add("c", 4); });
  engine.ScheduleAt(150 * kMicrosecond, [] {});
  engine.ScheduleAt(250 * kMicrosecond, [] {});
  engine.Run();

  // Two samples (100us, 200us) x three configured selectors, every sample —
  // even an all-zero one — so Perfetto draws continuous lines.
  std::vector<TraceLog::Event> counters;
  for (const TraceLog::Event& e : trace.events()) {
    if (e.counter) {
      counters.push_back(e);
    }
  }
  ASSERT_EQ(counters.size(), 6u);
  for (const TraceLog::Event& e : counters) {
    EXPECT_EQ(e.track, "telemetry");
    EXPECT_EQ(e.flow, 0u);  // invisible to the causal-graph analyzers
  }
  EXPECT_EQ(counters[0].name, "src/c");
  EXPECT_DOUBLE_EQ(counters[0].value, 4.0);
  EXPECT_EQ(counters[1].name, "src/c.rate_per_s");
  EXPECT_DOUBLE_EQ(counters[1].value, 4e9 / 100000.0);
  EXPECT_EQ(counters[2].name, "src/absent");
  EXPECT_DOUBLE_EQ(counters[2].value, 0.0);
  // Second window: no new increments — raw value holds, rate drops to 0.
  EXPECT_DOUBLE_EQ(counters[3].value, 4.0);
  EXPECT_DOUBLE_EQ(counters[4].value, 0.0);

  // The counter JSON is the Perfetto "ph":"C" form.
  std::ostringstream os;
  trace.WriteJson(os);
  EXPECT_NE(os.str().find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(os.str().find(R"("args":{"value":)"), std::string::npos);
}

TEST(TelemetrySamplerTest, GaugeResetAcrossNodeRestartClampsRateToZero) {
  // A gauge-backed counter that resets when its node crash-restarts must
  // yield a zero-rate window, not an unsigned-wraparound spike.
  Engine engine;
  Node node(engine, "n0", Node::Config{});
  std::uint64_t ops = 0;
  node.metrics().RegisterGauge("test.ops", [&ops] { return ops; });

  TelemetrySampler::Config cfg;
  cfg.period = 100 * kMicrosecond;
  cfg.rate_counters = {"test.ops"};
  TelemetrySampler sampler(&engine, cfg);
  sampler.AddSource("n0", &node.metrics());

  engine.ScheduleAt(50 * kMicrosecond, [&] { ops = 40; });
  engine.ScheduleAt(150 * kMicrosecond, [&] {
    node.Crash();
    ops = 0;  // incarnation state lost with the crash
  });
  engine.ScheduleAt(180 * kMicrosecond, [&] { node.Restart(); });
  engine.ScheduleAt(250 * kMicrosecond, [&] { ops = 10; });
  engine.ScheduleAt(350 * kMicrosecond, [] {});
  engine.Run();

  const TelemetrySeries* s = sampler.FindSeries("n0");
  ASSERT_EQ(s->samples.size(), 3u);
  EXPECT_DOUBLE_EQ(s->samples[0].rates.at("test.ops.rate_per_s"), 40e9 / 100000.0);
  // Window 2 saw the reset (40 -> 0): clamped delta, zero rate.
  EXPECT_DOUBLE_EQ(s->samples[1].rates.at("test.ops.rate_per_s"), 0.0);
  EXPECT_EQ(s->samples[1].values.count("test.ops"), 0u);  // zero omitted
  // Window 3 resumes from the post-reset baseline.
  EXPECT_DOUBLE_EQ(s->samples[2].rates.at("test.ops.rate_per_s"), 10e9 / 100000.0);
  EXPECT_EQ(s->samples[2].values.at("node.crashes"), 1u);
}

TEST(SloTrackerTest, BurnRateFiresOncePerEpisodeAndGoodWindowResets) {
  Engine engine;
  MetricsRegistry metrics;
  TelemetrySampler::Config cfg;
  cfg.period = 100 * kMicrosecond;
  TelemetrySampler sampler(&engine, cfg);
  MetricsRegistry src;
  sampler.AddSource("src", &src);

  SloTracker slo(&sampler);
  slo.set_metrics(&metrics);
  SloObjective obj;
  obj.name = "tenant0";
  obj.giveups_zero = true;
  obj.short_windows = 2;
  obj.long_windows = 4;
  obj.long_burn_threshold = 0.5;
  std::uint64_t giveups = 0;
  SloInputs in;
  in.giveups = [&giveups] { return giveups; };
  in.active = [] { return true; };
  slo.AddObjective(obj, in);

  // One giveup per window for windows 1..4 (bad), then two clean windows,
  // then bad again for windows 7..8: two episodes, two alerts.
  for (int w = 1; w <= 8; ++w) {
    const bool bad = w <= 4 || w >= 7;
    engine.ScheduleAt(w * 100 * kMicrosecond - 50 * kMicrosecond, [&giveups, bad] {
      if (bad) {
        ++giveups;
      }
    });
  }
  engine.ScheduleAt(850 * kMicrosecond, [] {});  // close window 8
  engine.Run();

  ASSERT_EQ(slo.alerts().size(), 2u);
  // First alert: at window 2 (short_windows=2 consecutive bad, burn 2/2).
  EXPECT_EQ(slo.alerts()[0].objective, "tenant0");
  EXPECT_EQ(slo.alerts()[0].window_end, 200 * kMicrosecond);
  EXPECT_EQ(slo.alerts()[0].bad_short, 2);
  EXPECT_NE(slo.alerts()[0].reason.find("giveups"), std::string::npos);
  // Windows 3-4 stay inside the first episode (no re-fire); windows 5-6 are
  // good and reset it; the second bad run fires again at window 8.
  EXPECT_EQ(slo.alerts()[1].window_end, 800 * kMicrosecond);

  const auto verdicts = slo.Verdicts();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].objective, "tenant0");
  EXPECT_EQ(verdicts[0].windows, 8u);
  EXPECT_EQ(verdicts[0].bad_windows, 6u);
  EXPECT_EQ(verdicts[0].alerts, 2u);
  EXPECT_FALSE(verdicts[0].ok());
  EXPECT_EQ(metrics.Counter("slo.alerts"), 2u);
  EXPECT_EQ(metrics.Counter("slo.tenant0.bad_windows"), 6u);
}

TEST(SloTrackerTest, IdleWindowsAreSkippedAndGoodputArmsOnFirstBytes) {
  Engine engine;
  TelemetrySampler::Config cfg;
  cfg.period = 100 * kMicrosecond;
  TelemetrySampler sampler(&engine, cfg);
  MetricsRegistry src;
  sampler.AddSource("src", &src);

  SloTracker slo(&sampler);
  SloObjective obj;
  obj.name = "t";
  obj.goodput_floor_bytes_per_s = 1e6;
  obj.short_windows = 1;
  obj.long_windows = 1;
  std::uint64_t bytes = 0;
  bool active = false;
  SloInputs in;
  in.completed_bytes = [&bytes] { return bytes; };
  in.active = [&active] { return active; };
  slo.AddObjective(obj, in);

  // Windows 1-2: inactive, no bytes — skipped entirely (no budget burned).
  // Window 3: first bytes move (arms the goodput clause). Window 4: active
  // but starved — the clause now fails and fires.
  engine.ScheduleAt(250 * kMicrosecond, [&] {
    active = true;
    bytes = 1 << 20;
  });
  engine.ScheduleAt(450 * kMicrosecond, [] {});
  engine.Run();
  sampler.Finish();

  const auto verdicts = slo.Verdicts();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].windows, 2u);  // idle windows never counted
  EXPECT_EQ(verdicts[0].bad_windows, 1u);
  ASSERT_EQ(slo.alerts().size(), 1u);
  EXPECT_NE(slo.alerts()[0].reason.find("goodput"), std::string::npos);
}

// --- Partition-flap soak: the acceptance scenario ---
//
// A dumbbell workload with per-tenant SLOs runs through a trunk outage that
// the ARQ budget can ride out. The burn-rate alert must fire INSIDE the
// outage window, dump the flight recorder with the violating tenant named,
// and the trace must carry the counter tracks. Two same-seed runs must
// produce byte-identical run reports.
struct SoakResult {
  std::string report;
  std::uint64_t digest = 0;
  std::vector<SloAlert> alerts;
  std::string dump_path;
  std::set<std::string> counter_names;
};

SoakResult RunPartitionSoak(bool with_telemetry, const std::string& flight_dir) {
  constexpr SimTime kPartitionStart = 1 * kMillisecond;
  constexpr SimTime kHeal = 6 * kMillisecond;

  WorkloadConfig cfg;
  cfg.seed = 4242;
  cfg.nodes = 2;
  cfg.fabric.topology = Fabric::Topology::kDumbbell;
  cfg.deadline = 10 * kMillisecond;
  ReliableOptions rel;
  rel.arq = true;
  rel.window = 4;
  rel.jitter_frac = 0.0;
  rel.max_retransmits = 10;
  rel.initial_timeout = 300 * kMicrosecond;
  rel.max_timeout = 2400 * kMicrosecond;
  cfg.reliable = rel;
  TenantClassConfig closed;
  closed.name = "closed";
  closed.tenants = 2;  // one per side; every transfer crosses the trunk
  closed.transfers_per_tenant = 0;  // offered load until the deadline
  closed.min_bytes = 4096;
  closed.max_bytes = 4096;
  closed.slo_goodput_floor_bps = 64 * 1024;  // healthy rate is megabytes/s
  closed.slo_giveups_zero = true;
  closed.slo_short_windows = 2;
  closed.slo_long_windows = 4;
  cfg.classes.push_back(closed);

  // Order matters: the workload's sampler/SLO tracker unregister from the
  // trace log in their destructors, so the log must outlive the workload.
  Engine engine;
  TraceLog trace;
  Workload wl(engine, cfg);
  FlightRecorder::Config fcfg;
  fcfg.capacity = 512;
  fcfg.seed = cfg.seed;
  fcfg.dir = flight_dir;
  FlightRecorder flight("wl", &trace, nullptr, fcfg);
  if (with_telemetry) {
    Workload::TelemetryOptions topts;
    topts.sampler.period = 500 * kMicrosecond;
    topts.trace = &trace;
    topts.flight = &flight;
    wl.EnableTelemetry(topts);
  }

  engine.ScheduleAt(kPartitionStart, [&] {
    wl.fabric().SetTrunkDown(0);
    wl.fabric().SetTrunkDown(1);
  });
  engine.ScheduleAt(kHeal, [&] { wl.fabric().HealAll(); });
  wl.Run();
  EXPECT_TRUE(wl.violations().empty());

  SoakResult r;
  r.digest = engine.event_digest();
  if (with_telemetry) {
    std::ostringstream os;
    wl.WriteRunReport(os);
    r.report = os.str();
    r.alerts = wl.slo()->alerts();
    for (const TraceLog::Event& e : trace.events()) {
      if (e.counter) {
        r.counter_names.insert(e.name);
      }
    }
    // Dumps number from 1; the first alert's dump is "flight_wl_1.json".
    if (flight.dumps_written() > 0) {
      r.dump_path = flight_dir + "/flight_wl_1.json";
    }
  }
  return r;
}

TEST(TelemetrySoakTest, PartitionFlapFiresBurnRateAlertInsideOutageWindow) {
  ScopedFlightDirEnv env(nullptr);
  const SoakResult r = RunPartitionSoak(true, ::testing::TempDir());

  // The alert fires while the trunk is down — not after the heal.
  ASSERT_FALSE(r.alerts.empty());
  const SloAlert& first = r.alerts.front();
  EXPECT_GT(first.window_end, 1 * kMillisecond);
  EXPECT_LE(first.window_end, 6 * kMillisecond);
  EXPECT_NE(first.objective.find("closed.t"), std::string::npos)
      << "alert must pin the violating tenant, got " << first.objective;
  EXPECT_GE(first.bad_short, 2);

  // The flight-recorder dump exists and its reason names tenant and window.
  ASSERT_FALSE(r.dump_path.empty());
  std::ifstream dump(r.dump_path);
  ASSERT_TRUE(dump.good()) << r.dump_path;
  std::stringstream buf;
  buf << dump.rdbuf();
  EXPECT_NE(buf.str().find("slo_alert closed.t"), std::string::npos);
  EXPECT_NE(buf.str().find("window ["), std::string::npos);

  // The default track set renders at least 5 distinct counter series.
  EXPECT_GE(r.counter_names.size(), 5u);
  EXPECT_EQ(r.counter_names.count("fabric/fabric.down_links"), 1u);
  EXPECT_EQ(r.counter_names.count("wl/wl.closed.completed_bytes.rate_per_s"), 1u);

  // The run report is present and self-consistent.
  EXPECT_NE(r.report.find("\"slo\""), std::string::npos);
  EXPECT_NE(r.report.find("closed.t"), std::string::npos);
}

TEST(TelemetrySoakTest, SameSeedRunsProduceByteIdenticalReportsAndTelemetryIsFree) {
  ScopedFlightDirEnv env(nullptr);
  const SoakResult a = RunPartitionSoak(true, ::testing::TempDir());
  const SoakResult b = RunPartitionSoak(true, ::testing::TempDir());
  EXPECT_FALSE(a.report.empty());
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.digest, b.digest);

  // Telemetry adds zero events and zero RNG draws: the bare run's digest is
  // bit-identical to the instrumented runs'.
  const SoakResult bare = RunPartitionSoak(false, ::testing::TempDir());
  EXPECT_EQ(bare.digest, a.digest);
}

}  // namespace
}  // namespace genie
