// Golden per-transfer traces: for every semantics x device input-buffering
// scheme, one end-to-end datagram must emit exactly the expected sequence of
// per-transfer spans (prepare / transmit / dispose plus transfer-keyed VM
// instants), and the exported JSON must be byte-identical across two
// identically-seeded runs.
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/trace.h"
#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;
constexpr std::uint64_t kLen = 2 * kPage;

using TrackAndName = std::pair<std::string, std::string>;

// Runs one transfer (same setup as the transfer tests) with tracing attached;
// `trace` accumulates the full event stream.
InputResult TracedTransfer(Rig& rig, TraceLog& trace, Semantics sem) {
  rig.sender.set_trace(&trace);
  rig.receiver.set_trace(&trace);
  rig.tx_app.CreateRegion(kSrc, 16 * kPage,
                          IsSystemAllocated(sem) ? RegionState::kMovedIn
                                                 : RegionState::kUnmovable);
  if (IsApplicationAllocated(sem)) {
    rig.rx_app.CreateRegion(kDst, 16 * kPage);
  }
  const auto payload = TestPattern(kLen, 1);
  GENIE_CHECK(rig.tx_app.Write(kSrc, payload) == AccessResult::kOk);
  return rig.Transfer(kSrc, kDst, kLen, sem);
}

// The transfer-keyed events: per-transfer spans and context-prefixed VM
// instants (name carries "#<id>"), plus the adapter's receive-complete mark.
std::vector<TrackAndName> TransferEvents(const TraceLog& trace) {
  std::vector<TrackAndName> out;
  for (const TraceLog::Event& e : trace.events()) {
    if (e.name.find('#') != std::string::npos || e.name.rfind("rx_complete", 0) == 0) {
      out.emplace_back(e.track, e.name);
    }
  }
  return out;
}

// The golden sequence. Identical for all three buffering schemes: buffering
// changes *when* work happens and how much, never the span structure of a
// single preposted transfer.
std::vector<TrackAndName> ExpectedSequence(Semantics sem) {
  const std::string s(SemanticsName(sem));
  std::vector<TrackAndName> v = {
      {"rx.xfer", "in#1[" + s + "].prepare"},
      {"tx.xfer", "out#1[" + s + "].prepare"},
      {"rx.nic.wire", "rx_complete " + std::to_string(kLen) + "B"},
      {"tx.xfer", "out#1[" + s + "].transmit"},
      {"tx.xfer", "out#1[" + s + "].dispose"},
  };
  if (sem == Semantics::kCopy) {
    // Copy semantics is the only scheme whose dispose copies into a
    // never-touched application buffer: the copyout faults both destination
    // pages in, keyed to the transfer that caused them.
    v.emplace_back("rx.app.vm", "in#1[" + s + "].zero_fill");
    v.emplace_back("rx.app.vm", "in#1[" + s + "].zero_fill");
  }
  v.emplace_back("rx.xfer", "in#1[" + s + "].dispose");
  return v;
}

using GoldenParam = std::tuple<Semantics, InputBuffering>;

class GoldenTraceTest : public ::testing::TestWithParam<GoldenParam> {};

TEST_P(GoldenTraceTest, EmitsExactSpanSequence) {
  const auto [sem, buffering] = GetParam();
  Rig rig(buffering);
  TraceLog trace;
  const InputResult r = TracedTransfer(rig, trace, sem);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(TransferEvents(trace), ExpectedSequence(sem));
}

TEST_P(GoldenTraceTest, JsonIsByteIdenticalAcrossRuns) {
  const auto [sem, buffering] = GetParam();
  std::string runs[2];
  for (std::string& json : runs) {
    Rig rig(buffering);
    TraceLog trace;
    ASSERT_TRUE(TracedTransfer(rig, trace, sem).ok);
    std::ostringstream os;
    trace.WriteJson(os);
    json = os.str();
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_FALSE(runs[0].empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllSemanticsAllBuffering, GoldenTraceTest,
    ::testing::Combine(::testing::ValuesIn(kAllSemantics),
                       ::testing::Values(InputBuffering::kEarlyDemux, InputBuffering::kPooled,
                                         InputBuffering::kOutboard)),
    [](const ::testing::TestParamInfo<GoldenParam>& param_info) {
      std::string name(SemanticsName(std::get<0>(param_info.param)));
      name += std::string("_") + std::string(InputBufferingName(std::get<1>(param_info.param)));
      for (char& c : name) {
        if (c == '-' || c == ' ') {
          c = '_';
        }
      }
      return name;
    });

// A write racing an emulated-copy output hits the TCOW-protected source page;
// the fault's instant lands on the sender's VM track.
TEST(TraceInstantTest, RacingWriteEmitsTcowCopyInstant) {
  Rig rig;
  TraceLog trace;
  rig.sender.set_trace(&trace);
  rig.receiver.set_trace(&trace);
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);
  const auto payload = TestPattern(kLen, 1);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);

  InputResult result;
  auto input_driver = [](Endpoint& ep, AddressSpace& app, InputResult* out) -> Task<void> {
    *out = co_await ep.Input(app, kDst, kLen, Semantics::kEmulatedCopy);
  };
  std::move(input_driver(rig.rx_ep, rig.rx_app, &result)).Detach();
  std::move(rig.tx_ep.Output(rig.tx_app, kSrc, kLen, Semantics::kEmulatedCopy)).Detach();
  // Pause mid-flight: after the sender's prepare (TCOW armed), before the
  // receive completes and disposal disarms it.
  ASSERT_TRUE(rig.engine.RunUntil([&] { return rig.engine.now() >= 100 * kMicrosecond; }));
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(64, 9)), AccessResult::kOk);
  rig.engine.Run();
  ASSERT_TRUE(result.ok);

  bool saw_tcow = false;
  for (const TraceLog::Event& e : trace.events()) {
    if (e.track == "tx.app.vm" && e.name == "tcow_copy") {
      saw_tcow = true;
      EXPECT_TRUE(e.instant);
    }
  }
  EXPECT_TRUE(saw_tcow);
}

// A source page evicted to backing store before the output is paged back in
// by the prepare's copyin — and the page-in instant is keyed to the transfer.
TEST(TraceInstantTest, PageinDuringPrepareIsTransferKeyed) {
  Rig rig;
  TraceLog trace;
  rig.sender.set_trace(&trace);
  rig.receiver.set_trace(&trace);
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);
  const auto payload = TestPattern(kLen, 1);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);
  // Force the freshly written source pages out to backing store.
  ASSERT_GT(rig.sender.pageout().EvictUntilFree(512), 0u);

  const InputResult r = rig.Transfer(kSrc, kDst, kLen, Semantics::kCopy);
  ASSERT_TRUE(r.ok);

  std::size_t keyed_pageins = 0;
  for (const TraceLog::Event& e : trace.events()) {
    if (e.track == "tx.app.vm" && e.name == "out#1[copy].pagein") {
      ++keyed_pageins;
    }
  }
  // Both source pages were evicted and both fault back in under the
  // transfer's context.
  EXPECT_EQ(keyed_pageins, 2u);
}

}  // namespace
}  // namespace genie
