// Crash-time flight recorder: ring-mode installation, dump document content,
// file naming, the GENIE_FLIGHT_DIR override, and the wiring to
// VmInvariants::SetViolationHook (a planted violation dumps the ring).
#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/vm/invariants.h"
#include "tests/genie_test_util.h"

namespace genie {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// DumpToFile consults GENIE_FLIGHT_DIR before Config::dir, and CI exports it
// for the whole suite. Pin the variable for the test's duration (nullptr =
// unset) and restore whatever the harness had, so these tests exercise the
// documented precedence instead of the ambient environment.
class ScopedFlightDirEnv {
 public:
  explicit ScopedFlightDirEnv(const char* value) {
    const char* old = std::getenv("GENIE_FLIGHT_DIR");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      setenv("GENIE_FLIGHT_DIR", value, 1);
    } else {
      unsetenv("GENIE_FLIGHT_DIR");
    }
  }
  ~ScopedFlightDirEnv() {
    if (had_old_) {
      setenv("GENIE_FLIGHT_DIR", old_.c_str(), 1);
    } else {
      unsetenv("GENIE_FLIGHT_DIR");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(FlightRecorderTest, InstallsRingAndDumpsRecentEvents) {
  TraceLog trace;
  MetricsRegistry metrics;
  metrics.Counter("test.counter") = 7;
  FlightRecorder::Config cfg;
  cfg.capacity = 8;
  cfg.seed = 1234;
  FlightRecorder recorder("tx", &trace, &metrics, cfg);
  EXPECT_EQ(trace.capacity(), 8u);  // the log is now a ring

  for (int i = 0; i < 40; ++i) {
    trace.Instant("tx.xfer", "e" + std::to_string(i), "c", i * kMicrosecond, /*flow=*/5);
  }
  std::ostringstream os;
  recorder.Dump(os, "planted failure");
  const std::string dump = os.str();
  EXPECT_NE(dump.find(R"("reason":"planted failure")"), std::string::npos);
  EXPECT_NE(dump.find(R"("node":"tx")"), std::string::npos);
  EXPECT_NE(dump.find(R"("seed":1234)"), std::string::npos);
  EXPECT_NE(dump.find(R"("test.counter": 7)"), std::string::npos);
  EXPECT_NE(dump.find(R"("flow":5)"), std::string::npos);
  // The ring kept the most recent events and the dump says what it dropped.
  EXPECT_NE(dump.find(R"("name":"e39")"), std::string::npos);
  EXPECT_EQ(dump.find(R"("name":"e0")"), std::string::npos);
  EXPECT_NE(dump.find("\"dropped_events\":" + std::to_string(trace.dropped_events())),
            std::string::npos);
  EXPECT_GT(trace.dropped_events(), 0u);
  // Crude well-formedness: balanced braces/brackets, one trailing newline.
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '{'),
            std::count(dump.begin(), dump.end(), '}'));
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '['),
            std::count(dump.begin(), dump.end(), ']'));
}

TEST(FlightRecorderTest, NullMetricsOmitsSnapshot) {
  TraceLog trace;
  FlightRecorder recorder("rx", &trace, /*metrics=*/nullptr);
  EXPECT_EQ(trace.capacity(), 256u);  // default ring size
  std::ostringstream os;
  recorder.Dump(os, "r");
  EXPECT_EQ(os.str().find("\"metrics\""), std::string::npos);
}

TEST(FlightRecorderTest, DumpToFileNamesSequentially) {
  ScopedFlightDirEnv env(nullptr);  // Config::dir must govern
  TraceLog trace;
  trace.Instant("t", "last-event", "c", 0);
  FlightRecorder::Config cfg;
  cfg.dir = ::testing::TempDir();
  FlightRecorder recorder("txnode", &trace, nullptr, cfg);

  const std::string p1 = recorder.DumpToFile("first");
  const std::string p2 = recorder.DumpToFile("second");
  ASSERT_FALSE(p1.empty());
  ASSERT_FALSE(p2.empty());
  EXPECT_NE(p1.find("flight_txnode_1.json"), std::string::npos);
  EXPECT_NE(p2.find("flight_txnode_2.json"), std::string::npos);
  EXPECT_EQ(recorder.dumps_written(), 2u);
  EXPECT_NE(Slurp(p1).find(R"("reason":"first")"), std::string::npos);
  EXPECT_NE(Slurp(p2).find("last-event"), std::string::npos);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(FlightRecorderTest, EnvironmentOverridesDumpDirectory) {
  TraceLog trace;
  FlightRecorder::Config cfg;
  cfg.dir = "/nonexistent-dir-ignored";
  FlightRecorder recorder("env", &trace, nullptr, cfg);
  ScopedFlightDirEnv env(::testing::TempDir().c_str());
  const std::string path = recorder.DumpToFile("env-routed");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.find("/nonexistent-dir-ignored"), std::string::npos);
  EXPECT_NE(Slurp(path).find(R"("reason":"env-routed")"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, InvariantViolationHookDumpsTheRing) {
  // The acceptance scenario: a planted invariant violation must leave a
  // flight-recorder dump behind with the recent events and the replay seed.
  ScopedFlightDirEnv env(nullptr);  // dump into Config::dir (TempDir)
  TraceLog trace;
  Rig rig;
  rig.sender.set_trace(&trace);
  FlightRecorder::Config cfg;
  cfg.seed = 77;
  cfg.dir = ::testing::TempDir();
  FlightRecorder recorder("tx", &trace, &rig.sender.metrics(), cfg);
  trace.Instant("tx.xfer", "before-violation", "c", 0);

  std::string dump_path;
  VmInvariants::SetViolationHook([&](const InvariantReport& report) {
    ASSERT_FALSE(report.violations.empty());
    dump_path = recorder.DumpToFile("invariant: " + report.violations.front());
  });

  // Plant: a quiescent check with an input reference still outstanding.
  PhysicalMemory& pm = rig.sender.vm().pm();
  const FrameId frame = pm.Allocate();
  pm.AddInputRef(frame);
  const InvariantReport report =
      VmInvariants::CheckAll(rig.sender.vm(), rig.tx_app, /*expect_quiescent=*/true);
  EXPECT_FALSE(report.ok());
  VmInvariants::SetViolationHook(nullptr);
  pm.DropInputRef(frame);
  pm.Free(frame);

  ASSERT_FALSE(dump_path.empty()) << "violation hook never fired";
  EXPECT_EQ(recorder.dumps_written(), 1u);
  const std::string dump = Slurp(dump_path);
  EXPECT_NE(dump.find(R"("seed":77)"), std::string::npos);
  EXPECT_NE(dump.find("before-violation"), std::string::npos);
  EXPECT_NE(dump.find(R"("reason":"invariant: )"), std::string::npos);
  std::remove(dump_path.c_str());

  // A healthy check must not fire the (now cleared) hook.
  const InvariantReport clean =
      VmInvariants::CheckAll(rig.sender.vm(), rig.tx_app, /*expect_quiescent=*/true);
  EXPECT_TRUE(clean.ok()) << clean.ToString();
  EXPECT_EQ(recorder.dumps_written(), 1u);
  rig.sender.set_trace(nullptr);
}

TEST(FlightRecorderTest, CrashRestartCyclesDumpPerIncarnationAndResetTheRing) {
  // Repeated crash/restart cycles: each crash dumps the dying incarnation's
  // ring (with its last events intact — the observer runs before state is
  // discarded), restart stamps subsequent dumps with the new epoch and
  // clears the ring so incarnations never bleed into each other's dumps.
  ScopedFlightDirEnv env(nullptr);
  TraceLog trace;
  Rig rig;
  rig.sender.set_trace(&trace);
  FlightRecorder::Config cfg;
  cfg.dir = ::testing::TempDir();
  FlightRecorder recorder("crashnode", &trace, &rig.sender.metrics(), cfg);

  std::vector<std::string> dump_paths;
  std::vector<std::uint32_t> crash_epochs;
  rig.sender.set_crash_observer([&](std::uint32_t epoch) {
    crash_epochs.push_back(epoch);
    dump_paths.push_back(recorder.DumpToFile("crash into e" + std::to_string(epoch)));
  });
  rig.sender.set_restart_observer([&](std::uint32_t epoch) {
    recorder.set_epoch(epoch);
    trace.Clear();
  });

  // Incarnation 1 (epoch field 0 = legacy filename, no "epoch" key).
  trace.Instant("tx.xfer", "incarnation-1-event", "c", 0);
  rig.sender.Crash();
  rig.sender.Restart();
  // Incarnation 2: its dump carries only its own events, under the new name.
  trace.Instant("tx.xfer", "incarnation-2-event", "c", 0);
  rig.sender.Crash();
  rig.sender.Restart();

  ASSERT_EQ(dump_paths.size(), 2u);
  EXPECT_EQ(crash_epochs, (std::vector<std::uint32_t>{2, 3}));
  EXPECT_NE(dump_paths[0].find("flight_crashnode_1.json"), std::string::npos);
  EXPECT_NE(dump_paths[1].find("flight_crashnode_e2_2.json"), std::string::npos);

  const std::string first = Slurp(dump_paths[0]);
  EXPECT_NE(first.find("incarnation-1-event"), std::string::npos);
  EXPECT_EQ(first.find("\"epoch\":"), std::string::npos);
  const std::string second = Slurp(dump_paths[1]);
  EXPECT_NE(second.find("incarnation-2-event"), std::string::npos);
  EXPECT_EQ(second.find("incarnation-1-event"), std::string::npos);  // ring reset
  EXPECT_NE(second.find(R"("epoch":2)"), std::string::npos);
  EXPECT_NE(second.find(R"("reason":"crash into e3")"), std::string::npos);

  // The healthy incarnation 3 writes nothing on its own.
  EXPECT_EQ(recorder.dumps_written(), 2u);
  EXPECT_EQ(rig.sender.epoch(), 3u);
  EXPECT_FALSE(rig.sender.crashed());
  for (const std::string& p : dump_paths) {
    std::remove(p.c_str());
  }
  rig.sender.set_trace(nullptr);
}

}  // namespace
}  // namespace genie
