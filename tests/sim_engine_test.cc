#include "src/sim/engine.h"

#include <vector>

#include <gtest/gtest.h>

namespace genie {
namespace {

TEST(EngineTest, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0);
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(EngineTest, StepOnEmptyQueueReturnsFalse) {
  Engine eng;
  EXPECT_FALSE(eng.Step());
}

TEST(EngineTest, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.ScheduleAt(30, [&] { order.push_back(3); });
  eng.ScheduleAt(10, [&] { order.push_back(1); });
  eng.ScheduleAt(20, [&] { order.push_back(2); });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30);
}

TEST(EngineTest, SimultaneousEventsRunFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.ScheduleAt(100, [&order, i] { order.push_back(i); });
  }
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, ScheduleAfterUsesCurrentTime) {
  Engine eng;
  SimTime observed = -1;
  eng.ScheduleAt(50, [&] { eng.ScheduleAfter(25, [&] { observed = eng.now(); }); });
  eng.Run();
  EXPECT_EQ(observed, 75);
}

TEST(EngineTest, EventsScheduledDuringRunAreExecuted) {
  Engine eng;
  int count = 0;
  eng.ScheduleAt(1, [&] {
    ++count;
    eng.ScheduleAfter(1, [&] { ++count; });
  });
  eng.Run();
  EXPECT_EQ(count, 2);
}

TEST(EngineTest, RunForStopsAtDeadline) {
  Engine eng;
  int count = 0;
  eng.ScheduleAt(10, [&] { ++count; });
  eng.ScheduleAt(20, [&] { ++count; });
  eng.ScheduleAt(30, [&] { ++count; });
  eng.RunFor(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(eng.now(), 20);
  eng.Run();
  EXPECT_EQ(count, 3);
}

TEST(EngineTest, RunForAdvancesClockEvenWithoutEvents) {
  Engine eng;
  eng.RunFor(1000);
  EXPECT_EQ(eng.now(), 1000);
}

TEST(EngineTest, RunUntilPredicate) {
  Engine eng;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    eng.ScheduleAt(i, [&] { ++count; });
  }
  EXPECT_TRUE(eng.RunUntil([&] { return count == 4; }));
  EXPECT_EQ(count, 4);
  EXPECT_EQ(eng.now(), 4);
}

TEST(EngineTest, RunUntilReturnsFalseIfQueueDrains) {
  Engine eng;
  eng.ScheduleAt(1, [] {});
  EXPECT_FALSE(eng.RunUntil([] { return false; }));
}

TEST(EngineTest, EventsExecutedCounter) {
  Engine eng;
  eng.ScheduleAt(1, [] {});
  eng.ScheduleAt(2, [] {});
  eng.Run();
  EXPECT_EQ(eng.events_executed(), 2u);
}

TEST(EngineDeathTest, SchedulingInThePastAborts) {
  Engine eng;
  eng.ScheduleAt(100, [] {});
  eng.Run();
  EXPECT_DEATH(eng.ScheduleAt(50, [] {}), "cannot schedule in the past");
}

}  // namespace
}  // namespace genie
