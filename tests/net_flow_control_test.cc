// Credit-based flow control at the adapter level (Credit Net, refs [2],[14]).
#include <optional>

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/net/adapter.h"
#include "src/sim/engine.h"
#include "src/sim/resource.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;

class FlowControlTest : public ::testing::Test {
 protected:
  FlowControlTest() : cost_(MachineProfile::MicronP166()), pm_(64, kPage), link_(eng_, "link") {
    Adapter::Config cfg;
    cfg.flow_control = true;
    tx_ = std::make_unique<Adapter>(eng_, pm_, cost_, "tx", cfg);
    rx_ = std::make_unique<Adapter>(eng_, pm_, cost_, "rx", cfg);
    tx_->ConnectTo(rx_.get(), &link_);
    rx_->ConnectTo(tx_.get(), &link_);  // Symmetric so credits can return.
  }

  IoVec MakeBuffer(std::size_t bytes) {
    IoVec iov;
    std::size_t remaining = bytes;
    while (remaining > 0) {
      const FrameId f = pm_.Allocate();
      frames_.push_back(f);
      const std::uint32_t n = static_cast<std::uint32_t>(std::min<std::size_t>(kPage, remaining));
      iov.segments.push_back(IoSegment{f, 0, n});
      remaining -= n;
    }
    return iov;
  }

  void TearDown() override {
    for (const FrameId f : frames_) {
      pm_.Free(f);
    }
  }

  Engine eng_;
  CostModel cost_;
  PhysicalMemory pm_;
  Resource link_;
  std::unique_ptr<Adapter> tx_;
  std::unique_ptr<Adapter> rx_;
  std::vector<FrameId> frames_;
};

TEST_F(FlowControlTest, TransmissionBlocksWithoutCredit) {
  const IoVec src = MakeBuffer(kPage);
  std::move(tx_->TransmitFrame(1, src)).Detach();
  eng_.Run();
  // No posted buffer, no credit: the frame never left and was not dropped.
  EXPECT_EQ(tx_->frames_sent(), 0u);
  EXPECT_EQ(rx_->frames_dropped_no_buffer(), 0u);
  EXPECT_EQ(tx_->credit_waiters(1), 1u);
}

TEST_F(FlowControlTest, PostingABufferUnblocksTheSender) {
  const IoVec src = MakeBuffer(kPage);
  const IoVec dst = MakeBuffer(kPage);
  std::move(tx_->TransmitFrame(1, src)).Detach();
  eng_.Run();
  ASSERT_EQ(tx_->credit_waiters(1), 1u);

  std::optional<RxCompletion> completion;
  rx_->PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion& c) { completion = c; }});
  eng_.Run();
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(tx_->frames_sent(), 1u);
  EXPECT_EQ(tx_->credit_waiters(1), 0u);
  EXPECT_EQ(tx_->tx_credits(1), 0u);  // Credit consumed by the send.
}

TEST_F(FlowControlTest, CreditsAccumulatePerChannel) {
  const IoVec dst = MakeBuffer(kPage);
  rx_->PostReceive(1, Adapter::PostedReceive{dst, nullptr});
  rx_->PostReceive(1, Adapter::PostedReceive{dst, nullptr});
  rx_->PostReceive(2, Adapter::PostedReceive{dst, nullptr});
  eng_.Run();  // Credit latency elapses.
  EXPECT_EQ(tx_->tx_credits(1), 2u);
  EXPECT_EQ(tx_->tx_credits(2), 1u);
  EXPECT_EQ(tx_->tx_credits(3), 0u);
}

TEST_F(FlowControlTest, CreditReturnTakesControlCellLatency) {
  const IoVec dst = MakeBuffer(kPage);
  rx_->PostReceive(1, Adapter::PostedReceive{dst, nullptr});
  // Before the credit latency elapses, the sender has no credit.
  eng_.RunFor(4 * kMicrosecond);
  EXPECT_EQ(tx_->tx_credits(1), 0u);
  eng_.RunFor(2 * kMicrosecond);  // Past the 5 us default.
  EXPECT_EQ(tx_->tx_credits(1), 1u);
}

TEST_F(FlowControlTest, BlockedSendersServedFifo) {
  const IoVec src = MakeBuffer(kPage);
  const IoVec dst = MakeBuffer(kPage);
  std::vector<int> order;
  // Two sends block; completions must come back in submission order.
  std::move(tx_->TransmitFrame(1, src)).Detach();
  std::move(tx_->TransmitFrame(1, src)).Detach();
  eng_.Run();
  EXPECT_EQ(tx_->credit_waiters(1), 2u);
  rx_->PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion&) { order.push_back(1); }});
  rx_->PostReceive(1, Adapter::PostedReceive{dst, [&](const RxCompletion&) { order.push_back(2); }});
  eng_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(FlowControlTest, TaggedFramesBypassCredits) {
  // Sender-managed buffers are persistent: tagged frames need no credit.
  const IoVec src = MakeBuffer(kPage);
  const IoVec named = MakeBuffer(kPage);
  std::optional<RxCompletion> completion;
  rx_->RegisterNamedBuffer(1, 7,
                           Adapter::PostedReceive{named, [&](const RxCompletion& c) {
                                                    completion = c;
                                                  }});
  std::move(tx_->TransmitFrame(1, src, 0, /*tag=*/7)).Detach();
  eng_.Run();
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(completion->tag, 7u);
  rx_->UnregisterNamedBuffer(1, 7);
}

TEST_F(FlowControlTest, DuplicateNamedTagAborts) {
  const IoVec named = MakeBuffer(kPage);
  rx_->RegisterNamedBuffer(1, 9, Adapter::PostedReceive{named, nullptr});
  EXPECT_DEATH(rx_->RegisterNamedBuffer(1, 9, Adapter::PostedReceive{named, nullptr}),
               "already registered");
  rx_->UnregisterNamedBuffer(1, 9);
}

}  // namespace
}  // namespace genie
