// The taxonomy's dimensions (paper Figure 1 / Section 2).
#include "src/genie/semantics.h"

#include <set>

#include <gtest/gtest.h>

namespace genie {
namespace {

TEST(SemanticsTest, EightDistinctSemantics) {
  std::set<Semantics> all(kAllSemantics.begin(), kAllSemantics.end());
  EXPECT_EQ(all.size(), 8u);
}

TEST(SemanticsTest, AllocationDimension) {
  EXPECT_TRUE(IsApplicationAllocated(Semantics::kCopy));
  EXPECT_TRUE(IsApplicationAllocated(Semantics::kEmulatedCopy));
  EXPECT_TRUE(IsApplicationAllocated(Semantics::kShare));
  EXPECT_TRUE(IsApplicationAllocated(Semantics::kEmulatedShare));
  EXPECT_TRUE(IsSystemAllocated(Semantics::kMove));
  EXPECT_TRUE(IsSystemAllocated(Semantics::kEmulatedMove));
  EXPECT_TRUE(IsSystemAllocated(Semantics::kWeakMove));
  EXPECT_TRUE(IsSystemAllocated(Semantics::kEmulatedWeakMove));
}

TEST(SemanticsTest, IntegrityDimension) {
  EXPECT_TRUE(IsStrongIntegrity(Semantics::kCopy));
  EXPECT_TRUE(IsStrongIntegrity(Semantics::kEmulatedCopy));
  EXPECT_TRUE(IsStrongIntegrity(Semantics::kMove));
  EXPECT_TRUE(IsStrongIntegrity(Semantics::kEmulatedMove));
  EXPECT_TRUE(IsWeakIntegrity(Semantics::kShare));
  EXPECT_TRUE(IsWeakIntegrity(Semantics::kEmulatedShare));
  EXPECT_TRUE(IsWeakIntegrity(Semantics::kWeakMove));
  EXPECT_TRUE(IsWeakIntegrity(Semantics::kEmulatedWeakMove));
}

TEST(SemanticsTest, OptimizationDimension) {
  int emulated = 0;
  for (const Semantics s : kAllSemantics) {
    if (IsEmulated(s)) {
      ++emulated;
      EXPECT_FALSE(IsEmulated(BasicOf(s)));
      // An emulated semantics shares the other two dimensions with its basic
      // counterpart (compatible behavior, Section 2.3).
      EXPECT_EQ(IsSystemAllocated(s), IsSystemAllocated(BasicOf(s)));
      EXPECT_EQ(IsWeakIntegrity(s), IsWeakIntegrity(BasicOf(s)));
    } else {
      EXPECT_EQ(BasicOf(s), s);
    }
  }
  EXPECT_EQ(emulated, 4);
}

TEST(SemanticsTest, EveryCellOfTheCubeIsCovered) {
  // 2 allocation schemes x 2 integrity levels x 2 optimization levels.
  std::set<std::tuple<bool, bool, bool>> cells;
  for (const Semantics s : kAllSemantics) {
    cells.insert({IsSystemAllocated(s), IsWeakIntegrity(s), IsEmulated(s)});
  }
  EXPECT_EQ(cells.size(), 8u);
}

TEST(SemanticsTest, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (const Semantics s : kAllSemantics) {
    const std::string_view name = SemanticsName(s);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), 8u);
}

}  // namespace
}  // namespace genie
