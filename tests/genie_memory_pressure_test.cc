// Memory-pressure behavior of the data path: system-buffer allocation under
// low free memory triggers the pageout daemon instead of failing, and
// transfers keep working while an idle process's pages get evicted.
#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;
constexpr Vaddr kHog = 0x70000000;

TEST(MemoryPressureTest, CopySemanticsTransfersSurviveLowMemory) {
  // 96 frames total; a memory hog dirties most of them; copy semantics needs
  // two 60 KB system buffers (sender + receiver) per transfer.
  Rig rig(InputBuffering::kEarlyDemux, GenieOptions{}, MachineProfile::MicronP166(),
          /*mem_frames=*/72);
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);

  // Hog most of each node's memory with an idle process.
  AddressSpace& tx_hog = rig.sender.CreateProcess("hog");
  AddressSpace& rx_hog = rig.receiver.CreateProcess("hog");
  tx_hog.CreateRegion(kHog, 48 * kPage);
  rx_hog.CreateRegion(kHog, 48 * kPage);
  const auto hog_data = TestPattern(48 * kPage, 0x42);
  ASSERT_EQ(tx_hog.Write(kHog, hog_data), AccessResult::kOk);
  ASSERT_EQ(rx_hog.Write(kHog, hog_data), AccessResult::kOk);

  const std::uint64_t len = 15 * kPage;
  const auto payload = TestPattern(len, 3);
  for (int round = 0; round < 4; ++round) {
    ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);
    const InputResult r = rig.Transfer(kSrc, kDst, len, Semantics::kCopy);
    ASSERT_TRUE(r.ok) << round;
    const auto got = rig.ReadBack(kDst, len);
    ASSERT_EQ(std::memcmp(got.data(), payload.data(), len), 0) << round;
  }
  // The daemons had to evict to make room for the system buffers.
  EXPECT_GT(rig.sender.pageout().total_evictions() + rig.receiver.pageout().total_evictions(),
            0u);

  // The hog's data survived eviction (pages back in from swap on demand).
  std::vector<std::byte> check(kPage);
  for (int i = 0; i < 48; i += 7) {
    rig.sender.EnsureFreeFrames(2);
    ASSERT_EQ(tx_hog.Read(kHog + i * kPage, check), AccessResult::kOk);
    ASSERT_EQ(std::memcmp(check.data(), hog_data.data() + i * kPage, kPage), 0) << i;
  }
}

TEST(MemoryPressureTest, EmulatedCopyNeedsFewerFramesUnderPressure) {
  // Emulated copy allocates an aligned system buffer only at the receiver;
  // the sender side is in place. It must work where memory is even tighter.
  Rig rig(InputBuffering::kEarlyDemux, GenieOptions{}, MachineProfile::MicronP166(),
          /*mem_frames=*/52);
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);
  AddressSpace& rx_hog = rig.receiver.CreateProcess("hog");
  rx_hog.CreateRegion(kHog, 40 * kPage);
  ASSERT_EQ(rx_hog.Write(kHog, TestPattern(40 * kPage, 1)), AccessResult::kOk);

  const std::uint64_t len = 15 * kPage;
  const auto payload = TestPattern(len, 5);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);
  const InputResult r = rig.Transfer(kSrc, kDst, len, Semantics::kEmulatedCopy);
  ASSERT_TRUE(r.ok);
  const auto got = rig.ReadBack(kDst, len);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), len), 0);
  EXPECT_GT(rig.receiver.pageout().total_evictions(), 0u);
}

TEST(MemoryPressureTest, EnsureFreeFramesAbortsOnlyWhenNothingEvictable) {
  Engine engine;
  Node::Config cfg;
  cfg.mem_frames = 8;
  Node node(engine, "n", cfg);
  AddressSpace& app = node.CreateProcess("app");
  app.CreateRegion(kHog, 6 * kPage);
  ASSERT_EQ(app.WireRange(kHog, 6 * kPage, true), AccessResult::kOk);  // Unevictable.
  EXPECT_DEATH(node.EnsureFreeFrames(5), "out of memory");
  app.UnwireRange(kHog, 6 * kPage);
  node.EnsureFreeFrames(7);  // Now the daemon can evict.
  EXPECT_GE(node.vm().pm().free_frames(), 7u);
}

}  // namespace
}  // namespace genie
