// Determinism: identical simulations produce bit-for-bit identical event
// sequences, timings, and measured results — the property that makes every
// experiment in this repository exactly reproducible.
#include <sstream>

#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/sim/trace.h"
#include "tests/genie_test_util.h"

namespace genie {
namespace {

struct RunSignature {
  std::uint64_t events = 0;
  SimTime final_time = 0;
  SimTime completed_at = 0;
  std::string trace_json;
};

RunSignature RunOnce() {
  TraceLog trace;
  Rig rig(InputBuffering::kPooled);
  rig.sender.set_trace(&trace);
  rig.receiver.set_trace(&trace);
  constexpr Vaddr kBuf = 0x20000000;
  rig.tx_app.CreateRegion(kBuf, 32 * 4096);
  rig.rx_app.CreateRegion(kBuf, 32 * 4096);
  GENIE_CHECK(rig.tx_app.Write(kBuf, TestPattern(10 * 4096, 3)) == AccessResult::kOk);
  InputResult last;
  for (int i = 0; i < 3; ++i) {
    last = rig.Transfer(kBuf + 100, kBuf + 100, 10 * 4096 + 77, Semantics::kEmulatedCopy);
    GENIE_CHECK(last.ok);
  }
  RunSignature sig;
  sig.events = rig.engine.events_executed();
  sig.final_time = rig.engine.now();
  sig.completed_at = last.completed_at;
  std::ostringstream os;
  trace.WriteJson(os);
  sig.trace_json = os.str();
  return sig;
}

TEST(DeterminismTest, IdenticalRunsAreBitForBitIdentical) {
  const RunSignature a = RunOnce();
  const RunSignature b = RunOnce();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.completed_at, b.completed_at);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(DeterminismTest, HarnessSweepsAreReproducible) {
  ExperimentConfig config;
  config.repetitions = 2;
  const std::vector<std::uint64_t> lengths = {4096, 61440};
  Experiment e1(config);
  Experiment e2(config);
  const RunResult r1 = e1.Run(Semantics::kWeakMove, lengths);
  const RunResult r2 = e2.Run(Semantics::kWeakMove, lengths);
  ASSERT_EQ(r1.samples.size(), r2.samples.size());
  for (std::size_t i = 0; i < r1.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.samples[i].latency_us, r2.samples[i].latency_us);
    EXPECT_DOUBLE_EQ(r1.samples[i].sender_utilization, r2.samples[i].sender_utilization);
    EXPECT_DOUBLE_EQ(r1.samples[i].receiver_utilization, r2.samples[i].receiver_utilization);
  }
}

}  // namespace
}  // namespace genie
