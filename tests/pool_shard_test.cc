// Concurrency and conservation properties of the parallel host-path
// allocators: ShardedBufferPool (per-thread shards, bounded stealing) and
// AllocationPoint (bump-pointer arenas over MT-safe PhysicalMemory).
//
// The load tests run real std::threads with seeded per-thread RNGs so a run
// is reproducible in distribution (the interleaving itself varies — that is
// the point under TSan). Every assertion is schedule-independent:
// conservation (each frame freed exactly once, shard populations sum to
// capacity at quiescence), uniqueness (no frame handed to two owners), and
// bounds (steal batches never exceed kStealBatch).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/mem/alloc_point.h"
#include "src/mem/phys_memory.h"
#include "src/net/buffer_pool.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;

// ---------------------------------------------------------------------------
// ShardedBufferPool: single-thread semantics
// ---------------------------------------------------------------------------

TEST(ShardedPoolTest, ConstructionSplitsCapacityRoundRobin) {
  PhysicalMemory pm(64, kPage);
  ShardedBufferPool pool(pm, 10, 4);
  EXPECT_EQ(pool.capacity(), 10u);
  EXPECT_EQ(pool.shard_count(), 4u);
  // 10 frames over 4 shards round-robin: 3, 3, 2, 2.
  EXPECT_EQ(pool.shard_capacity(0), 3u);
  EXPECT_EQ(pool.shard_capacity(1), 3u);
  EXPECT_EQ(pool.shard_capacity(2), 2u);
  EXPECT_EQ(pool.shard_capacity(3), 2u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < pool.shard_count(); ++i) {
    EXPECT_EQ(pool.shard_available(i), pool.shard_capacity(i));
    total += pool.shard_available(i);
  }
  EXPECT_EQ(total, pool.capacity());
  EXPECT_EQ(pm.allocated_frames(), 10u);
}

TEST(ShardedPoolTest, AllocatePrefersOwnShardAndFreeGoesHome) {
  PhysicalMemory pm(64, kPage);
  ShardedBufferPool pool(pm, 8, 2);
  const FrameId f = pool.Allocate(/*shard_hint=*/1);
  ASSERT_NE(f, kInvalidFrame);
  EXPECT_EQ(pool.shard_available(1), pool.shard_capacity(1) - 1);
  EXPECT_EQ(pool.shard_available(0), pool.shard_capacity(0));
  pool.Free(f);
  EXPECT_EQ(pool.shard_available(1), pool.shard_capacity(1));
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(ShardedPoolTest, DrainedShardStealsBoundedBatchFromSibling) {
  PhysicalMemory pm(128, kPage);
  ShardedBufferPool pool(pm, 40, 2);  // 20 frames per shard
  std::vector<FrameId> held;
  // Drain shard 0 completely.
  for (std::size_t i = 0; i < pool.shard_capacity(0); ++i) {
    held.push_back(pool.Allocate(0));
  }
  EXPECT_EQ(pool.shard_available(0), 0u);
  EXPECT_EQ(pool.steals(), 0u);
  // Next allocation must steal from shard 1: one frame returned, the rest of
  // the batch parked in shard 0.
  const std::size_t before = pool.shard_available(1);
  held.push_back(pool.Allocate(0));
  ASSERT_NE(held.back(), kInvalidFrame);
  const std::size_t taken = before - pool.shard_available(1);
  EXPECT_GE(taken, 1u);
  EXPECT_LE(taken, ShardedBufferPool::kStealBatch);
  EXPECT_EQ(pool.shard_available(0), taken - 1);
  EXPECT_EQ(pool.steals(), 1u);
  for (const FrameId f : held) {
    pool.Free(f);
  }
  // Frees went to each frame's home shard; the (taken-1) stolen frames that
  // were parked in shard 0 but never allocated stay parked there. Total
  // conservation holds exactly.
  EXPECT_EQ(pool.shard_available(0), pool.shard_capacity(0) + taken - 1);
  EXPECT_EQ(pool.shard_available(1), pool.shard_capacity(1) - (taken - 1));
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST(ShardedPoolTest, DepletionReturnsInvalidAndCounts) {
  PhysicalMemory pm(16, kPage);
  ShardedBufferPool pool(pm, 4, 2);
  std::vector<FrameId> held;
  for (int i = 0; i < 4; ++i) {
    held.push_back(pool.Allocate(static_cast<std::size_t>(i)));
  }
  EXPECT_EQ(pool.Allocate(0), kInvalidFrame);
  EXPECT_EQ(pool.Allocate(1), kInvalidFrame);
  EXPECT_EQ(pool.depletion_events(), 2u);
  for (const FrameId f : held) {
    pool.Free(f);
  }
}

// ---------------------------------------------------------------------------
// ShardedBufferPool: seeded multi-thread churn
// ---------------------------------------------------------------------------

// K threads hammer one pool with alloc/free churn; some iterations free a
// frame allocated by *another* thread (handed over via a mutex-guarded
// mailbox) to exercise cross-thread home-shard frees. At quiescence every
// frame is back in exactly one shard list and the per-shard populations sum
// to capacity — i.e. nothing leaked, nothing double-freed, nothing is
// parked in a closure somewhere.
TEST(ShardedPoolStressTest, SeededChurnConservesEveryFrame) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPoolPages = 48;
  constexpr int kOpsPerThread = 20000;
  PhysicalMemory pm(256, kPage);
  {
    ShardedBufferPool pool(pm, kPoolPages, kThreads);
    for (std::size_t i = 0; i < pool.shard_count(); ++i) {
      EXPECT_EQ(pool.shard_available(i), pool.shard_capacity(i));
    }

    std::mutex mailbox_mu;
    std::vector<FrameId> mailbox;  // frames donated for cross-thread free

    auto worker = [&](std::size_t tid) {
      std::mt19937_64 rng(0x9E3779B97F4A7C15ull ^ (tid * 0xBF58476D1CE4E5B9ull));
      std::vector<FrameId> mine;
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::uint64_t r = rng();
        const unsigned action = static_cast<unsigned>(r % 100);
        if (action < 55) {  // allocate (keep pressure high but not saturating)
          const FrameId f = pool.Allocate(tid);
          if (f != kInvalidFrame) {
            mine.push_back(f);
          }
        } else if (action < 85) {  // free one of ours
          if (!mine.empty()) {
            const std::size_t i = static_cast<std::size_t>(r >> 32) % mine.size();
            std::swap(mine[i], mine.back());
            pool.Free(mine.back());
            mine.pop_back();
          }
        } else if (action < 93) {  // donate a frame for someone else to free
          if (!mine.empty()) {
            const std::lock_guard<std::mutex> lock(mailbox_mu);
            mailbox.push_back(mine.back());
            mine.pop_back();
          }
        } else {  // adopt a donated frame and free it (cross-thread free)
          FrameId f = kInvalidFrame;
          {
            const std::lock_guard<std::mutex> lock(mailbox_mu);
            if (!mailbox.empty()) {
              f = mailbox.back();
              mailbox.pop_back();
            }
          }
          if (f != kInvalidFrame) {
            pool.Free(f);
          }
        }
      }
      for (const FrameId f : mine) {
        pool.Free(f);
      }
    };

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back(worker, t);
    }
    for (std::thread& t : threads) {
      t.join();
    }
    for (const FrameId f : mailbox) {  // drain any leftover donations
      pool.Free(f);
    }

    // Quiescence: total conservation. Stolen-but-unused frames may sit
    // parked away from home, but every frame is in exactly one list and the
    // lists sum to capacity — nothing leaked, nothing double-freed.
    EXPECT_EQ(pool.available(), pool.capacity());
  }
  // Pool destructor returned every frame to PhysicalMemory (it CHECKs the
  // count itself; verify the other side of the ledger here).
  EXPECT_EQ(pm.allocated_frames(), 0u);
  EXPECT_EQ(pm.free_frames(), pm.num_frames());
}

// Every frame handed out is held by exactly one owner at a time: threads
// record (frame, generation) pairs and a post-hoc scan asserts no frame was
// concurrently held twice. Uses per-thread logs merged at the end, so the
// detection itself needs no synchronization on the hot path.
TEST(ShardedPoolStressTest, NoFrameHandedToTwoOwners) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPoolPages = 12;  // small pool: constant steal traffic
  constexpr int kOpsPerThread = 8000;
  PhysicalMemory pm(64, kPage);
  ShardedBufferPool pool(pm, kPoolPages, kThreads);

  // Shared ownership bitmap guarded per-frame by atomic flags. If Allocate
  // ever returns a frame that is already marked owned, the exchange trips.
  std::vector<std::atomic<int>> owned(pm.num_frames());
  for (auto& o : owned) {
    o.store(0);
  }
  std::atomic<int> double_grants{0};

  auto worker = [&](std::size_t tid) {
    std::mt19937_64 rng(0xD1B54A32D192ED03ull + tid);
    std::vector<FrameId> mine;
    for (int op = 0; op < kOpsPerThread; ++op) {
      if ((rng() & 1) == 0 || mine.empty()) {
        const FrameId f = pool.Allocate(tid);
        if (f != kInvalidFrame) {
          if (owned[f].exchange(1) != 0) {
            double_grants.fetch_add(1);
          }
          mine.push_back(f);
        }
      } else {
        const FrameId f = mine.back();
        mine.pop_back();
        owned[f].store(0);
        pool.Free(f);
      }
    }
    for (const FrameId f : mine) {
      owned[f].store(0);
      pool.Free(f);
    }
  };

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(worker, t);
  }
  for (std::thread& t : threads) {
    t.join();
  }

  EXPECT_EQ(double_grants.load(), 0);
  EXPECT_EQ(pool.available(), pool.capacity());
  // Tiny pool across 4 threads: stealing must actually have happened, or the
  // test is not exercising the cross-shard path at all.
  EXPECT_GT(pool.steals(), 0u);
}

// ---------------------------------------------------------------------------
// AllocationPoint: single-thread semantics
// ---------------------------------------------------------------------------

TEST(AllocPointTest, BumpPathNeverTouchesSharedAllocatorInSteadyState) {
  PhysicalMemory pm(64, kPage);
  AllocationPoint ap(pm, /*arena_frames=*/8);
  // First allocation traps and fills one arena.
  const FrameId a = ap.TryAllocateRun(2);
  ASSERT_NE(a, kInvalidFrame);
  EXPECT_EQ(ap.stats().refills, 1u);
  EXPECT_EQ(pm.allocated_frames(), 8u);  // one whole arena, not two frames
  // Alloc/free at <= arena size in steady state: live count hits zero at
  // each free, the arena rewinds in place, and PhysicalMemory is never
  // consulted again.
  ap.FreeRun(a, 2);
  for (int i = 0; i < 100; ++i) {
    const FrameId f = ap.TryAllocateRun(4);
    ASSERT_NE(f, kInvalidFrame);
    ap.FreeRun(f, 4);
  }
  EXPECT_EQ(ap.stats().refills, 1u);  // still just the first fill
  EXPECT_GT(ap.stats().rewinds, 0u);
  EXPECT_EQ(pm.allocated_frames(), 8u);
  EXPECT_EQ(ap.live_frames(), 0u);
}

TEST(AllocPointTest, RunsFromOneArenaAreContiguousAndDisjoint) {
  PhysicalMemory pm(64, kPage);
  AllocationPoint ap(pm, 16);
  const FrameId a = ap.TryAllocateRun(3);
  const FrameId b = ap.TryAllocateRun(5);
  ASSERT_NE(a, kInvalidFrame);
  ASSERT_NE(b, kInvalidFrame);
  // Bump allocation: b starts exactly where a ended.
  EXPECT_EQ(b, a + 3);
  ap.FreeRun(a, 3);
  ap.FreeRun(b, 5);
  EXPECT_EQ(ap.live_frames(), 0u);
}

TEST(AllocPointTest, OversizeRequestBypassesArena) {
  PhysicalMemory pm(64, kPage);
  AllocationPoint ap(pm, 4);
  const FrameId big = ap.TryAllocateRun(10);
  ASSERT_NE(big, kInvalidFrame);
  EXPECT_EQ(ap.stats().oversize_allocations, 1u);
  EXPECT_EQ(ap.live_frames(), 10u);
  ap.FreeRun(big, 10);
  EXPECT_EQ(ap.live_frames(), 0u);
  // The oversize run was reaped straight back to PhysicalMemory.
  EXPECT_LE(pm.allocated_frames(), 4u);
}

TEST(AllocPointTest, ExhaustionFailsCleanlyAndRecovers) {
  PhysicalMemory pm(8, kPage);
  AllocationPoint ap(pm, 8);
  const FrameId a = ap.TryAllocateRun(8);  // takes the whole memory
  ASSERT_NE(a, kInvalidFrame);
  // A second arena cannot be filled: allocation fails, nothing leaks.
  EXPECT_EQ(ap.TryAllocateRun(1), kInvalidFrame);
  EXPECT_GE(ap.stats().failed_refills, 1u);
  ap.FreeRun(a, 8);
  // After the free the (rewound) arena serves again.
  const FrameId b = ap.TryAllocateRun(4);
  EXPECT_NE(b, kInvalidFrame);
  ap.FreeRun(b, 4);
}

TEST(AllocPointTest, DestructorReturnsArenasToPhysicalMemory) {
  PhysicalMemory pm(64, kPage);
  {
    AllocationPoint ap(pm, 8);
    const FrameId f = ap.TryAllocateRun(6);
    ap.FreeRun(f, 6);
    EXPECT_EQ(pm.allocated_frames(), 8u);
  }
  EXPECT_EQ(pm.allocated_frames(), 0u);
}

// ---------------------------------------------------------------------------
// AllocationPoint: many threads over one PhysicalMemory
// ---------------------------------------------------------------------------

// Each thread owns a private AllocationPoint over the same PhysicalMemory
// and runs seeded alloc/free churn with a bounded number of outstanding
// runs. Runs handed out by different threads must never overlap (checked
// with an atomic per-frame claim map), and at quiescence all frames are
// back in PhysicalMemory.
TEST(AllocPointStressTest, ThreadsNeverReceiveOverlappingRuns) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kArena = 16;
  constexpr int kOpsPerThread = 12000;
  PhysicalMemory pm(kThreads * kArena * 3, kPage);

  std::vector<std::atomic<int>> claimed(pm.num_frames());
  for (auto& c : claimed) {
    c.store(0);
  }
  std::atomic<int> overlaps{0};

  auto worker = [&](std::size_t tid) {
    std::mt19937_64 rng(0x2545F4914F6CDD1Dull * (tid + 1));
    AllocationPoint ap(pm, kArena);
    struct Run {
      FrameId first;
      std::size_t count;
    };
    std::vector<Run> held;
    for (int op = 0; op < kOpsPerThread; ++op) {
      const std::uint64_t r = rng();
      if ((r % 100) < 60 && held.size() < 8) {
        const std::size_t count = 1 + static_cast<std::size_t>(r >> 32) % 6;
        const FrameId first = ap.TryAllocateRun(count);
        if (first == kInvalidFrame) {
          continue;  // transient exhaustion under churn is legal
        }
        for (std::size_t i = 0; i < count; ++i) {
          if (claimed[first + i].exchange(1) != 0) {
            overlaps.fetch_add(1);
          }
        }
        held.push_back(Run{first, count});
      } else if (!held.empty()) {
        const std::size_t i = static_cast<std::size_t>(r >> 16) % held.size();
        std::swap(held[i], held.back());
        const Run run = held.back();
        held.pop_back();
        for (std::size_t j = 0; j < run.count; ++j) {
          claimed[run.first + j].store(0);
        }
        ap.FreeRun(run.first, run.count);
      }
    }
    for (const Run& run : held) {
      for (std::size_t j = 0; j < run.count; ++j) {
        claimed[run.first + j].store(0);
      }
      ap.FreeRun(run.first, run.count);
    }
    // ap destructor checks live==0 and returns its arenas under the lock.
  };

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(worker, t);
  }
  for (std::thread& t : threads) {
    t.join();
  }

  EXPECT_EQ(overlaps.load(), 0);
  EXPECT_EQ(pm.allocated_frames(), 0u);
  EXPECT_EQ(pm.free_frames(), pm.num_frames());
}

// Allocation points and a sharded pool sharing one PhysicalMemory — the
// full parallel-host-path allocator stack — leave memory exactly as found.
TEST(AllocPointStressTest, MixedPoolAndArenaChurnConservesPhysicalMemory) {
  constexpr std::size_t kThreads = 3;
  PhysicalMemory pm(256, kPage);
  {
    ShardedBufferPool pool(pm, 32, kThreads);
    auto worker = [&](std::size_t tid) {
      std::mt19937_64 rng(0xA0761D6478BD642Full + tid);
      AllocationPoint ap(pm, 8);
      for (int op = 0; op < 5000; ++op) {
        const std::uint64_t r = rng();
        if ((r & 1) == 0) {
          const FrameId f = pool.Allocate(tid);
          if (f != kInvalidFrame) {
            pool.Free(f);
          }
        } else {
          const std::size_t count = 1 + static_cast<std::size_t>(r >> 8) % 4;
          const FrameId first = ap.TryAllocateRun(count);
          if (first != kInvalidFrame) {
            ap.FreeRun(first, count);
          }
        }
      }
    };
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back(worker, t);
    }
    for (std::thread& t : threads) {
      t.join();
    }
    EXPECT_EQ(pool.available(), pool.capacity());
  }
  EXPECT_EQ(pm.allocated_frames(), 0u);
}

}  // namespace
}  // namespace genie
