// Targeted regressions for stale-state and error-path bugs the fault layer
// can now reach deterministically:
//   * a warm software TLB must not survive an injected pageout eviction;
//   * a TCOW write fault racing a delayed output completion must not leak
//     modified bytes to the receiver;
//   * DisposeCopyOutIntoApp / DisposeAlignedIntoApp must fail an input softly
//     when the application buffer is removed mid-flight (used to abort);
//   * ReferenceRange must roll back cleanly when page-in fails mid-run.
#include <cstring>

#include <gtest/gtest.h>

#include "src/vm/io_ref.h"
#include "tests/fault_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;

// Warm the receiver's software TLB on a resident buffer, then force the
// pageout daemon to evict those pages at an injected pressure tick. Stale
// TLB entries would let the next access hit a freed frame; the per-aspace
// invariants (and the restored bytes) prove the eviction invalidated them.
TEST(FaultRegressionTest, WarmTlbInvalidatedByInjectedEviction) {
  FaultRig rig(/*seed=*/11);
  rig.rx_app.CreateRegion(kDst, 4 * kPage);
  const auto payload = TestPattern(4 * kPage, 21);
  ASSERT_EQ(rig.rx_app.Write(kDst, payload), AccessResult::kOk);
  // Touch every page again so the TLB is warm for all of them.
  std::vector<std::byte> warm(4 * kPage);
  ASSERT_EQ(rig.rx_app.Read(kDst, warm), AccessResult::kOk);

  FaultRule rule;
  rule.site = FaultSite::kPageoutPressure;
  rule.nth = 1;
  rule.arg = 8;  // force up to 8 evictions at the first tick
  rig.plan.AddRule(rule);
  SchedulePageoutPressure(rig.engine, rig.receiver.pageout(), rig.plan,
                          MicrosToSimTime(10), MicrosToSimTime(60));
  rig.engine.Run();

  EXPECT_EQ(rig.plan.injected(FaultSite::kPageoutPressure), 1u);
  EXPECT_GT(rig.receiver.pageout().total_evictions(), 0u);
  const InvariantReport mid = rig.CheckInvariants(/*expect_quiescent=*/true);
  EXPECT_TRUE(mid.ok()) << mid.ToString();

  // The evicted pages fault back in from the backing store with the same
  // contents — through fresh translations, not the stale ones.
  const auto got = rig.ReadBack(kDst, 4 * kPage);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), payload.size()), 0);
  const InvariantReport final_report = rig.CheckInvariants(/*expect_quiescent=*/true);
  EXPECT_TRUE(final_report.ok()) << final_report.ToString();
}

// TCOW race: emulated-copy output protects the source TCOW; an injected
// device delay stretches the in-flight window and the application writes the
// buffer inside it. Strong integrity requires the receiver to see the
// output-call snapshot while the application keeps its modified copy.
TEST(FaultRegressionTest, TcowWriteFaultDuringDelayedOutputCompletion) {
  FaultRig rig(/*seed=*/12);
  rig.tx_app.CreateRegion(kSrc, 8 * kPage);
  rig.rx_app.CreateRegion(kDst, 8 * kPage);
  const std::uint64_t len = 4 * kPage;
  const auto original = TestPattern(static_cast<std::size_t>(len), 7);
  ASSERT_EQ(rig.tx_app.Write(kSrc, original), AccessResult::kOk);

  FaultRule rule;
  rule.site = FaultSite::kDeviceDelay;
  rule.nth = 1;
  rule.arg = 300000;  // +300us of in-flight window
  rig.plan.AddRule(rule);

  const auto modified = TestPattern(static_cast<std::size_t>(len), 99);
  rig.engine.ScheduleAt(MicrosToSimTime(300), [&] {
    ASSERT_EQ(rig.tx_app.Write(kSrc, modified), AccessResult::kOk);
  });

  const InputResult result =
      rig.DriveTransfer(kSrc, kDst, len, Semantics::kEmulatedCopy);

  EXPECT_EQ(rig.plan.injected(FaultSite::kDeviceDelay), 1u);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.bytes, len);
  const auto received = rig.ReadBack(kDst, len);
  EXPECT_EQ(std::memcmp(received.data(), original.data(), len), 0)
      << "receiver saw bytes written after the output call";
  std::vector<std::byte> sender_now(static_cast<std::size_t>(len));
  ASSERT_EQ(rig.tx_app.Read(kSrc, sender_now), AccessResult::kOk);
  EXPECT_EQ(std::memcmp(sender_now.data(), modified.data(), len), 0)
      << "application lost its own write";

  const InvariantReport report = rig.CheckInvariants(/*expect_quiescent=*/true);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// The application removes the destination region while the datagram is in
// flight (stretched by an injected device delay, so the removal lands between
// the prepare and the dispose). The dispose used to abort the kernel; it must
// now fail the input with kIoError and leave both nodes spotless. Exercises
// DisposeCopyOutIntoApp (early demux) and DisposeAlignedIntoApp's
// region-vanished path (pooled, outboard).
TEST(FaultRegressionTest, RegionRemovedMidFlightFailsInputSoftly) {
  for (const InputBuffering buffering :
       {InputBuffering::kEarlyDemux, InputBuffering::kPooled, InputBuffering::kOutboard}) {
    SCOPED_TRACE(InputBufferingName(buffering));
    FaultRig rig(/*seed=*/13, buffering);
    rig.tx_app.CreateRegion(kSrc, 8 * kPage);
    rig.rx_app.CreateRegion(kDst, 8 * kPage);
    const std::uint64_t len = 4 * kPage;
    const auto payload = TestPattern(static_cast<std::size_t>(len), 31);
    ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);

    FaultRule rule;
    rule.site = FaultSite::kDeviceDelay;
    rule.nth = 1;
    rule.arg = 500000;  // hold the frame in flight past the removal below
    rig.plan.AddRule(rule);
    rig.engine.ScheduleAt(MicrosToSimTime(400), [&] { rig.rx_app.RemoveRegion(kDst); });

    const InputResult result = rig.DriveTransfer(kSrc, kDst, len, Semantics::kCopy);

    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.status, IoStatus::kIoError);
    EXPECT_TRUE(result.crc_ok);
    EXPECT_EQ(rig.rx_ep.stats().failed_inputs, 1u);
    EXPECT_EQ(rig.tx_ep.pending_operations(), 0u);
    EXPECT_EQ(rig.rx_ep.pending_operations(), 0u);
    const InvariantReport report = rig.CheckInvariants(/*expect_quiescent=*/true);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

// ReferenceRange hits an injected allocation failure on its second page:
// the reference it already took on the first page must be dropped and the
// object/frame input-reference pairing restored (a one-sided unwind is
// exactly what the pairing invariant detects).
TEST(FaultRegressionTest, ReferenceRangeRollsBackOnMidRunPageInFailure) {
  Vm vm(32, kPage);
  AddressSpace as(vm, "app");
  as.CreateRegion(kSrc, 4 * kPage);

  FaultPlan plan(14);
  FaultRule rule;
  rule.site = FaultSite::kFrameAllocate;
  rule.nth = 2;  // first page faults in fine, second allocation fails
  plan.AddRule(rule);
  vm.pm().set_fault_plan(&plan);

  IoReference ref;
  const AccessResult res = ReferenceRange(as, kSrc, 3 * kPage, IoDirection::kInput, &ref);
  vm.pm().set_fault_plan(nullptr);

  EXPECT_EQ(res, AccessResult::kUnrecoverableFault);
  EXPECT_EQ(plan.injected(FaultSite::kFrameAllocate), 1u);
  EXPECT_FALSE(ref.active);
  const InvariantReport report = VmInvariants::CheckAll(vm, as, /*expect_quiescent=*/true);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace genie
