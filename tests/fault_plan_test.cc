// FaultPlan addressing modes (nth / probability / window / max_fires) and
// the invariant checker's ability to actually detect a planted violation.
#include <gtest/gtest.h>

#include "src/mem/fault_plan.h"
#include "src/vm/invariants.h"
#include "src/vm/vm.h"

namespace genie {
namespace {

TEST(FaultPlanTest, NthRuleFiresOnExactlyTheNthOp) {
  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kFrameAllocate;
  rule.nth = 3;
  plan.AddRule(rule);
  for (int op = 1; op <= 6; ++op) {
    EXPECT_EQ(plan.ShouldFail(FaultSite::kFrameAllocate), op == 3) << "op " << op;
  }
  EXPECT_EQ(plan.site_ops(FaultSite::kFrameAllocate), 6u);
  EXPECT_EQ(plan.injected(FaultSite::kFrameAllocate), 1u);
  EXPECT_EQ(plan.total_injected(), 1u);
}

TEST(FaultPlanTest, SitesAreIndependent) {
  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kBackingRead;
  rule.nth = 1;
  plan.AddRule(rule);
  EXPECT_FALSE(plan.ShouldFail(FaultSite::kBackingWrite));
  EXPECT_FALSE(plan.ShouldFail(FaultSite::kDeviceError));
  EXPECT_TRUE(plan.ShouldFail(FaultSite::kBackingRead));
  EXPECT_EQ(plan.site_ops(FaultSite::kBackingWrite), 1u);
  EXPECT_EQ(plan.site_ops(FaultSite::kBackingRead), 1u);
  EXPECT_EQ(plan.injected(FaultSite::kBackingWrite), 0u);
}

TEST(FaultPlanTest, ProbabilityIsDeterministicInSeed) {
  const auto run = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    FaultRule rule;
    rule.site = FaultSite::kDeviceError;
    rule.probability = 0.3;
    plan.AddRule(rule);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(plan.ShouldFail(FaultSite::kDeviceError));
    }
    return fires;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // astronomically unlikely to collide
  // Certainty and impossibility behave as advertised.
  FaultPlan always(7);
  FaultRule sure;
  sure.site = FaultSite::kDeviceError;
  sure.probability = 1.0;
  always.AddRule(sure);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(always.ShouldFail(FaultSite::kDeviceError));
  }
}

TEST(FaultPlanTest, WindowGatesRuleOnSimClock) {
  FaultPlan plan(1);
  SimTime now = 0;
  plan.set_clock([&now] { return now; });
  FaultRule rule;
  rule.site = FaultSite::kPageoutPressure;
  rule.probability = 1.0;
  rule.window_begin = 100;
  rule.window_end = 200;
  plan.AddRule(rule);
  now = 50;
  EXPECT_FALSE(plan.ShouldFail(FaultSite::kPageoutPressure));
  now = 100;
  EXPECT_TRUE(plan.ShouldFail(FaultSite::kPageoutPressure));
  now = 199;
  EXPECT_TRUE(plan.ShouldFail(FaultSite::kPageoutPressure));
  now = 200;  // half-open interval
  EXPECT_FALSE(plan.ShouldFail(FaultSite::kPageoutPressure));
}

TEST(FaultPlanTest, MaxFiresCapsARule) {
  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kBackingWrite;
  rule.probability = 1.0;
  rule.max_fires = 2;
  plan.AddRule(rule);
  EXPECT_TRUE(plan.ShouldFail(FaultSite::kBackingWrite));
  EXPECT_TRUE(plan.ShouldFail(FaultSite::kBackingWrite));
  EXPECT_FALSE(plan.ShouldFail(FaultSite::kBackingWrite));
  EXPECT_EQ(plan.injected(FaultSite::kBackingWrite), 2u);
}

TEST(FaultPlanTest, ArgIsHandedToTheInjectionPoint) {
  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kDeviceShortTransfer;
  rule.nth = 1;
  rule.arg = 1234;
  plan.AddRule(rule);
  std::uint64_t arg = 0;
  EXPECT_TRUE(plan.ShouldFail(FaultSite::kDeviceShortTransfer, &arg));
  EXPECT_EQ(arg, 1234u);
}

TEST(FaultPlanTest, ClearRemovesRulesButKeepsHistory) {
  FaultPlan plan(1);
  FaultRule rule;
  rule.site = FaultSite::kFrameAllocate;
  rule.probability = 1.0;
  plan.AddRule(rule);
  EXPECT_TRUE(plan.ShouldFail(FaultSite::kFrameAllocate));
  plan.Clear();
  EXPECT_FALSE(plan.ShouldFail(FaultSite::kFrameAllocate));
  // Counters survive: the run's history stays coherent across rule swaps.
  EXPECT_EQ(plan.total_injected(), 1u);
  EXPECT_EQ(plan.site_ops(FaultSite::kFrameAllocate), 2u);
}

TEST(FaultPlanTest, EverySiteHasAName) {
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    EXPECT_STRNE(FaultSiteName(static_cast<FaultSite>(i)), "unknown");
  }
}

// The stress harness is only as good as its checker: plant a real
// bookkeeping imbalance and make sure CheckAll reports it, then goes quiet
// once the imbalance is repaired.
TEST(InvariantSelfTest, DetectsPlantedReferenceImbalance) {
  Vm vm(16, 4096);
  AddressSpace as(vm, "app");
  const InvariantReport clean = VmInvariants::CheckAll(vm, as, /*expect_quiescent=*/true);
  EXPECT_TRUE(clean.ok()) << clean.ToString();
  EXPECT_GT(clean.checks, 0u);

  // A frame input reference with no matching object input reference is the
  // signature of a half-unwound DMA (the bug class the harness hunts).
  const FrameId frame = vm.pm().Allocate();
  vm.pm().AddInputRef(frame);
  const InvariantReport planted = VmInvariants::CheckAll(vm, as, /*expect_quiescent=*/false);
  EXPECT_FALSE(planted.ok());

  vm.pm().DropInputRef(frame);
  vm.pm().Free(frame);
  const InvariantReport repaired = VmInvariants::CheckAll(vm, as, /*expect_quiescent=*/true);
  EXPECT_TRUE(repaired.ok()) << repaired.ToString();
}

TEST(InvariantSelfTest, TotalChecksCountsEveryPredicate) {
  Vm vm(16, 4096);
  AddressSpace as(vm, "app");
  const std::uint64_t before = VmInvariants::total_checks();
  const InvariantReport report = VmInvariants::CheckAll(vm, as, /*expect_quiescent=*/true);
  EXPECT_EQ(VmInvariants::total_checks(), before + report.checks);
}

}  // namespace
}  // namespace genie
