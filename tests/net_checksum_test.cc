#include "src/net/checksum.h"

#include <algorithm>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace genie {
namespace {

// Scalar big-endian-word reference (RFC 1071 as usually written): the
// word-at-a-time implementation must be bit-identical to this.
std::uint16_t ReferenceChecksum(std::span<const std::byte> data) {
  std::uint64_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::to_integer<std::uint32_t>(data[i]) << 8) |
           std::to_integer<std::uint32_t>(data[i + 1]);
  }
  if (i < data.size()) {
    sum += std::to_integer<std::uint32_t>(data[i]) << 8;
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::vector<std::byte> Bytes(std::initializer_list<unsigned char> list) {
  std::vector<std::byte> v;
  for (unsigned char c : list) {
    v.push_back(static_cast<std::byte>(c));
  }
  return v;
}

TEST(InternetChecksumTest, Rfc1071Example) {
  // RFC 1071's worked example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2
  // (before complement); checksum = ~ddf2 = 220d.
  const auto data = Bytes({0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7});
  EXPECT_EQ(ChecksumOf(data), 0x220D);
}

TEST(InternetChecksumTest, EmptyData) {
  EXPECT_EQ(ChecksumOf({}), 0xFFFF);  // ~0.
}

TEST(InternetChecksumTest, OddLength) {
  // Odd final byte is padded with zero: 0xAB00 -> ~0xAB00 = 0x54FF.
  const auto data = Bytes({0xAB});
  EXPECT_EQ(ChecksumOf(data), 0x54FF);
}

TEST(InternetChecksumTest, IncrementalMatchesOneShotEvenSplits) {
  std::vector<std::byte> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 13 + 7) & 0xFF);
  }
  InternetChecksum c;
  c.Update(std::span<const std::byte>(data).subspan(0, 400));
  c.Update(std::span<const std::byte>(data).subspan(400));
  EXPECT_EQ(c.value(), ChecksumOf(data));
}

TEST(InternetChecksumTest, IncrementalMatchesOneShotOddSplits) {
  std::vector<std::byte> data(999);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 31 + 3) & 0xFF);
  }
  InternetChecksum c;
  c.Update(std::span<const std::byte>(data).subspan(0, 333));  // Odd chunk.
  c.Update(std::span<const std::byte>(data).subspan(333, 111));  // Odd chunk.
  c.Update(std::span<const std::byte>(data).subspan(444));
  EXPECT_EQ(c.value(), ChecksumOf(data));
}

TEST(InternetChecksumTest, DetectsSingleBitFlip) {
  std::vector<std::byte> data(64, std::byte{0x42});
  const std::uint16_t before = ChecksumOf(data);
  data[17] = std::byte{0x43};
  EXPECT_NE(ChecksumOf(data), before);
}

// --- Property tests: random buffers, arbitrary split points ---

TEST(InternetChecksumTest, MatchesScalarReferenceOnRandomBuffers) {
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> size(0, 8192);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::byte> data(size(rng));
    for (auto& b : data) {
      b = static_cast<std::byte>(byte(rng));
    }
    ASSERT_EQ(ChecksumOf(data), ReferenceChecksum(data)) << "len=" << data.size();
  }
}

TEST(InternetChecksumTest, ArbitrarySplitSequencesMatchOneShot) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 100; ++round) {
    std::uniform_int_distribution<std::size_t> size(1, 4096);
    std::vector<std::byte> data(size(rng));
    for (auto& b : data) {
      b = static_cast<std::byte>(byte(rng));
    }
    const std::uint16_t expect = ChecksumOf(data);
    InternetChecksum c;
    std::size_t pos = 0;
    while (pos < data.size()) {
      // Heavily biased toward tiny (incl. odd and zero-length) chunks so
      // the dangling-byte carry path is exercised at every alignment.
      std::uniform_int_distribution<std::size_t> step(0, 1 + (round % 37));
      const std::size_t n = std::min(step(rng), data.size() - pos);
      c.Update(std::span<const std::byte>(data).subspan(pos, n));
      pos += n;
    }
    ASSERT_EQ(c.value(), expect) << "len=" << data.size() << " round=" << round;
  }
}

TEST(InternetChecksumTest, CopyAndChecksumMatchesMemcpyPlusChecksum) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> size(0, 10000);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::byte> src(size(rng));
    for (auto& b : src) {
      b = static_cast<std::byte>(byte(rng));
    }
    std::vector<std::byte> dst(src.size(), std::byte{0xEE});
    const std::uint16_t sum = CopyAndChecksum(src, dst);
    EXPECT_EQ(sum, ChecksumOf(src));
    ASSERT_TRUE(std::equal(src.begin(), src.end(), dst.begin()));
  }
}

TEST(InternetChecksumTest, UpdateWithCopySplitSequencesCopyAndSum) {
  // Split fused updates at arbitrary odd points: both the checksum and the
  // copied bytes must match the one-shot versions.
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 50; ++round) {
    std::uniform_int_distribution<std::size_t> size(1, 3000);
    std::vector<std::byte> src(size(rng));
    for (auto& b : src) {
      b = static_cast<std::byte>(byte(rng));
    }
    std::vector<std::byte> dst(src.size(), std::byte{0});
    InternetChecksum c;
    std::size_t pos = 0;
    while (pos < src.size()) {
      std::uniform_int_distribution<std::size_t> step(1, 61);
      const std::size_t n = std::min(step(rng), src.size() - pos);
      c.UpdateWithCopy(std::span<const std::byte>(src).subspan(pos, n), dst.data() + pos);
      pos += n;
    }
    ASSERT_EQ(c.value(), ChecksumOf(src));
    ASSERT_TRUE(std::equal(src.begin(), src.end(), dst.begin()));
  }
}

// --- SIMD differential tests: the dispatched kernel (AVX2/NEON when the
// host has one; otherwise these reduce to scalar-vs-scalar and pass
// trivially) must be bit-identical to the scalar reference path, which
// set_use_simd(false) pins. ---

TEST(ChecksumSimdTest, IsaNameIsConsistentWithAvailability) {
  if (ChecksumSimdAvailable()) {
    EXPECT_STRNE(ChecksumIsaName(), "scalar");
    EXPECT_GT(internal::SimdBlockBytes(), 0u);
  } else {
    EXPECT_STREQ(ChecksumIsaName(), "scalar");
    EXPECT_EQ(internal::SimdBlockBytes(), 0u);
  }
}

TEST(ChecksumSimdTest, MatchesScalarOverRandomLengths) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> byte(0, 255);
  // Lengths straddling every dispatch boundary: below the 64-byte SIMD
  // threshold, one block, block+tail, and multi-KiB bulk.
  std::uniform_int_distribution<std::size_t> size(0, 16384);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::byte> data(round < 128 ? static_cast<std::size_t>(round) : size(rng));
    for (auto& b : data) {
      b = static_cast<std::byte>(byte(rng));
    }
    InternetChecksum simd;
    simd.Update(data);
    InternetChecksum scalar;
    scalar.set_use_simd(false);
    scalar.Update(data);
    ASSERT_EQ(simd.value(), scalar.value()) << "len=" << data.size();
    ASSERT_EQ(simd.value(), ReferenceChecksum(data)) << "len=" << data.size();
  }
}

TEST(ChecksumSimdTest, AllSourceAndDestinationMisalignments) {
  // A 64-byte-aligned backing store, then every (src, dst) misalignment in
  // 0..63: unaligned loads/stores in the kernel must neither fault nor
  // change the folded value or the copied bytes.
  constexpr std::size_t kLen = 2048 + 7;  // odd length: scalar tail + carry
  alignas(64) static std::byte src_store[kLen + 64];
  alignas(64) static std::byte dst_store[kLen + 64];
  std::mt19937 rng(424242);
  std::uniform_int_distribution<int> byte(0, 255);
  for (auto& b : src_store) {
    b = static_cast<std::byte>(byte(rng));
  }
  for (std::size_t src_off = 0; src_off < 64; ++src_off) {
    const std::span<const std::byte> src(src_store + src_off, kLen);
    InternetChecksum scalar;
    scalar.set_use_simd(false);
    scalar.Update(src);
    const std::uint16_t expect = scalar.value();
    for (std::size_t dst_off = 0; dst_off < 64; ++dst_off) {
      const std::span<std::byte> dst(dst_store + dst_off, kLen);
      std::memset(dst_store, 0xEE, sizeof dst_store);
      ASSERT_EQ(CopyAndChecksum(src, dst), expect)
          << "src_off=" << src_off << " dst_off=" << dst_off;
      ASSERT_TRUE(std::equal(src.begin(), src.end(), dst.begin()))
          << "src_off=" << src_off << " dst_off=" << dst_off;
    }
  }
}

TEST(ChecksumSimdTest, FusedSplitSequencesMatchScalarAcrossOddCarries) {
  // Arbitrary (odd, tiny, huge) Update splits drive the dangling-byte carry
  // through the SIMD entry: after an odd chunk every later chunk enters the
  // kernel mid-stream. SIMD and forced-scalar runs must agree at every
  // intermediate value() observation, not just the final one.
  std::mt19937 rng(777);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 60; ++round) {
    std::uniform_int_distribution<std::size_t> size(1, 9000);
    std::vector<std::byte> src(size(rng));
    for (auto& b : src) {
      b = static_cast<std::byte>(byte(rng));
    }
    std::vector<std::byte> dst_simd(src.size(), std::byte{0});
    std::vector<std::byte> dst_scalar(src.size(), std::byte{0});
    InternetChecksum simd;
    InternetChecksum scalar;
    scalar.set_use_simd(false);
    std::size_t pos = 0;
    while (pos < src.size()) {
      std::uniform_int_distribution<std::size_t> step(1, 1 + (round % 2 ? 63 : 1500));
      const std::size_t n = std::min(step(rng), src.size() - pos);
      const auto chunk = std::span<const std::byte>(src).subspan(pos, n);
      simd.UpdateWithCopy(chunk, dst_simd.data() + pos);
      scalar.UpdateWithCopy(chunk, dst_scalar.data() + pos);
      ASSERT_EQ(simd.value(), scalar.value())
          << "round=" << round << " pos=" << pos << " n=" << n;
      pos += n;
    }
    ASSERT_EQ(simd.value(), ChecksumOf(src));
    ASSERT_TRUE(std::equal(src.begin(), src.end(), dst_simd.begin()));
    ASSERT_TRUE(std::equal(src.begin(), src.end(), dst_scalar.begin()));
  }
}

TEST(InternetChecksumTest, ResetClearsDanglingByte) {
  InternetChecksum c;
  c.Update(Bytes({0x01, 0x02, 0x03}));  // Leaves a dangling odd byte.
  c.Reset();
  EXPECT_EQ(c.value(), 0xFFFF);
  c.Update(Bytes({0xAB}));
  EXPECT_EQ(c.value(), 0x54FF);
}

TEST(InternetChecksumTest, IoVecMatchesLinear) {
  PhysicalMemory pm(4, 4096);
  const FrameId a = pm.Allocate();
  const FrameId b = pm.Allocate();
  std::vector<std::byte> linear(6000);
  for (std::size_t i = 0; i < linear.size(); ++i) {
    linear[i] = static_cast<std::byte>((i * 7) & 0xFF);
  }
  std::memcpy(pm.Data(a).data() + 100, linear.data(), 3996);
  std::memcpy(pm.Data(b).data(), linear.data() + 3996, 2004);
  IoVec iov;
  iov.segments.push_back(IoSegment{a, 100, 3996});
  iov.segments.push_back(IoSegment{b, 0, 2004});
  EXPECT_EQ(ChecksumOfIoVec(pm, iov, 6000), ChecksumOf(linear));
  // Prefix checksum over a sub-range also matches.
  EXPECT_EQ(ChecksumOfIoVec(pm, iov, 1000),
            ChecksumOf(std::span<const std::byte>(linear).subspan(0, 1000)));
  pm.Free(a);
  pm.Free(b);
}

}  // namespace
}  // namespace genie
