#include "src/net/checksum.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace genie {
namespace {

std::vector<std::byte> Bytes(std::initializer_list<unsigned char> list) {
  std::vector<std::byte> v;
  for (unsigned char c : list) {
    v.push_back(static_cast<std::byte>(c));
  }
  return v;
}

TEST(InternetChecksumTest, Rfc1071Example) {
  // RFC 1071's worked example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2
  // (before complement); checksum = ~ddf2 = 220d.
  const auto data = Bytes({0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7});
  EXPECT_EQ(ChecksumOf(data), 0x220D);
}

TEST(InternetChecksumTest, EmptyData) {
  EXPECT_EQ(ChecksumOf({}), 0xFFFF);  // ~0.
}

TEST(InternetChecksumTest, OddLength) {
  // Odd final byte is padded with zero: 0xAB00 -> ~0xAB00 = 0x54FF.
  const auto data = Bytes({0xAB});
  EXPECT_EQ(ChecksumOf(data), 0x54FF);
}

TEST(InternetChecksumTest, IncrementalMatchesOneShotEvenSplits) {
  std::vector<std::byte> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 13 + 7) & 0xFF);
  }
  InternetChecksum c;
  c.Update(std::span<const std::byte>(data).subspan(0, 400));
  c.Update(std::span<const std::byte>(data).subspan(400));
  EXPECT_EQ(c.value(), ChecksumOf(data));
}

TEST(InternetChecksumTest, IncrementalMatchesOneShotOddSplits) {
  std::vector<std::byte> data(999);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 31 + 3) & 0xFF);
  }
  InternetChecksum c;
  c.Update(std::span<const std::byte>(data).subspan(0, 333));  // Odd chunk.
  c.Update(std::span<const std::byte>(data).subspan(333, 111));  // Odd chunk.
  c.Update(std::span<const std::byte>(data).subspan(444));
  EXPECT_EQ(c.value(), ChecksumOf(data));
}

TEST(InternetChecksumTest, DetectsSingleBitFlip) {
  std::vector<std::byte> data(64, std::byte{0x42});
  const std::uint16_t before = ChecksumOf(data);
  data[17] = std::byte{0x43};
  EXPECT_NE(ChecksumOf(data), before);
}

TEST(InternetChecksumTest, IoVecMatchesLinear) {
  PhysicalMemory pm(4, 4096);
  const FrameId a = pm.Allocate();
  const FrameId b = pm.Allocate();
  std::vector<std::byte> linear(6000);
  for (std::size_t i = 0; i < linear.size(); ++i) {
    linear[i] = static_cast<std::byte>((i * 7) & 0xFF);
  }
  std::memcpy(pm.Data(a).data() + 100, linear.data(), 3996);
  std::memcpy(pm.Data(b).data(), linear.data() + 3996, 2004);
  IoVec iov;
  iov.segments.push_back(IoSegment{a, 100, 3996});
  iov.segments.push_back(IoSegment{b, 0, 2004});
  EXPECT_EQ(ChecksumOfIoVec(pm, iov, 6000), ChecksumOf(linear));
  // Prefix checksum over a sub-range also matches.
  EXPECT_EQ(ChecksumOfIoVec(pm, iov, 1000),
            ChecksumOf(std::span<const std::byte>(linear).subspan(0, 1000)));
  pm.Free(a);
  pm.Free(b);
}

}  // namespace
}  // namespace genie
