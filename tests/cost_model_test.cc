#include "src/cost/cost_model.h"

#include <gtest/gtest.h>

#include "src/cost/machine_profile.h"
#include "src/cost/op_kind.h"
#include "src/util/units.h"

namespace genie {
namespace {

// On the Micron P166 baseline, the cost model must reproduce the paper's
// Table 6 fits exactly.
TEST(CostModelTest, P166MatchesTable6) {
  const CostModel m(MachineProfile::MicronP166());
  EXPECT_NEAR(m.CostUs(OpKind::kCopyin, 10000), 0.0180 * 10000 - 3, 1e-9);
  EXPECT_NEAR(m.CostUs(OpKind::kCopyout, 10000), 0.0220 * 10000 + 15, 1e-9);
  EXPECT_NEAR(m.CostUs(OpKind::kReference, 10000), 0.000363 * 10000 + 5, 1e-9);
  EXPECT_NEAR(m.CostUs(OpKind::kUnreference, 10000), 0.000100 * 10000 + 2, 1e-9);
  EXPECT_NEAR(m.CostUs(OpKind::kWire, 10000), 0.00141 * 10000 + 18, 1e-9);
  EXPECT_NEAR(m.CostUs(OpKind::kUnwire, 10000), 0.000237 * 10000 + 10, 1e-9);
  EXPECT_NEAR(m.CostUs(OpKind::kReadOnly, 10000), 0.000367 * 10000 + 2, 1e-9);
  EXPECT_NEAR(m.CostUs(OpKind::kInvalidate, 10000), 0.000373 * 10000 + 2, 1e-9);
  EXPECT_NEAR(m.CostUs(OpKind::kSwap, 10000), 0.00163 * 10000 + 15, 1e-9);
  EXPECT_NEAR(m.CostUs(OpKind::kRegionCreate, 10000), 24, 1e-9);
  EXPECT_NEAR(m.CostUs(OpKind::kRegionFill, 10000), 0.000398 * 10000 + 9, 1e-9);
  EXPECT_NEAR(m.CostUs(OpKind::kRegionMap, 10000), 0.000474 * 10000 + 6, 1e-9);
  EXPECT_NEAR(m.CostUs(OpKind::kOverlayDeallocate, 10000), 0.000344 * 10000 + 12, 1e-9);
}

// The base latency of Table 7 is 0.0598 B + 130 on the P166: network slope
// plus the three fixed components.
TEST(CostModelTest, BaseLatencyComponentsSumTo130) {
  const CostModel m(MachineProfile::MicronP166());
  const double fixed = m.CostUs(OpKind::kSenderKernelFixed, 0) +
                       m.CostUs(OpKind::kReceiverKernelFixed, 0) +
                       m.CostUs(OpKind::kHardwareFixed, 0);
  EXPECT_NEAR(fixed, 130.0, 1e-9);
  EXPECT_NEAR(m.Line(OpKind::kNetworkTransfer).slope_us_per_byte, 0.0598, 1e-9);
}

TEST(CostModelTest, NegativeCostClampedToZero) {
  const CostModel m(MachineProfile::MicronP166());
  // Copyin fit: 0.0180 B - 3, negative for tiny B.
  EXPECT_LT(m.CostUs(OpKind::kCopyin, 10), 0.0);
  EXPECT_EQ(m.Cost(OpKind::kCopyin, 10), 0);
}

TEST(CostModelTest, CostReturnsNanoseconds) {
  const CostModel m(MachineProfile::MicronP166());
  // Reference of 0 bytes: 5 us = 5000 ns.
  EXPECT_EQ(m.Cost(OpKind::kReference, 0), 5 * kMicrosecond);
}

TEST(CostModelTest, CpuDominatedScalesWithSpecInt) {
  const CostModel p166(MachineProfile::MicronP166());
  const CostModel p90(MachineProfile::GatewayP5_90());
  // Region create has arch factor 1.17 intercept on the Gateway.
  const double ratio =
      p90.CostUs(OpKind::kRegionCreate, 0) / p166.CostUs(OpKind::kRegionCreate, 0);
  EXPECT_NEAR(ratio, 4.52 / 2.88 * 1.17, 1e-6);
}

TEST(CostModelTest, MemoryDominatedUsesMemoryFactor) {
  const CostModel p166(MachineProfile::MicronP166());
  const CostModel p90(MachineProfile::GatewayP5_90());
  const double ratio = p90.Line(OpKind::kCopyout).slope_us_per_byte /
                       p166.Line(OpKind::kCopyout).slope_us_per_byte;
  EXPECT_NEAR(ratio, 2.43, 1e-9);
}

TEST(CostModelTest, CacheDominatedUsesCacheFactor) {
  const CostModel p166(MachineProfile::MicronP166());
  const CostModel alpha(MachineProfile::AlphaStation255());
  const double ratio = alpha.Line(OpKind::kCopyin).slope_us_per_byte /
                       p166.Line(OpKind::kCopyin).slope_us_per_byte;
  EXPECT_NEAR(ratio, 0.54, 1e-9);
}

TEST(CostModelTest, AlphaPageTableOpsScaleWorseThanCpuRatio) {
  const CostModel p166(MachineProfile::MicronP166());
  const CostModel alpha(MachineProfile::AlphaStation255());
  const double cpu_ratio = 4.52 / 3.48;
  const double swap_ratio =
      alpha.Line(OpKind::kSwap).slope_us_per_byte / p166.Line(OpKind::kSwap).slope_us_per_byte;
  EXPECT_GT(swap_ratio, cpu_ratio);  // Page-table updates diverge upward.
  const double fill_ratio = alpha.Line(OpKind::kRegionFill).slope_us_per_byte /
                            p166.Line(OpKind::kRegionFill).slope_us_per_byte;
  EXPECT_LT(fill_ratio, cpu_ratio);  // Bookkeeping diverges downward.
}

TEST(CostModelTest, NetworkSlopeFromProfileLinkRate) {
  const MachineProfile oc12 = MachineProfile::MicronP166().WithEffectiveLinkMbps(4 * 8.0 / 0.0598);
  const CostModel m(oc12);
  EXPECT_NEAR(m.Line(OpKind::kNetworkTransfer).slope_us_per_byte, 0.0598 / 4, 1e-9);
}

TEST(CostModelTest, EffectiveLinkMbpsRoundTrips) {
  const MachineProfile p = MachineProfile::MicronP166();
  EXPECT_NEAR(p.effective_link_mbps(), 8.0 / 0.0598, 1e-6);
  const MachineProfile q = p.WithEffectiveLinkMbps(500.0);
  EXPECT_NEAR(q.effective_link_mbps(), 500.0, 1e-9);
}

TEST(CostModelTest, AlphaPageSizeIs8K) {
  EXPECT_EQ(MachineProfile::AlphaStation255().page_size, 8192u);
  EXPECT_EQ(MachineProfile::MicronP166().page_size, 4096u);
}

TEST(CostModelTest, AllOpsHaveNamesAndBaselines) {
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    const OpKind op = static_cast<OpKind>(i);
    EXPECT_NE(OpKindName(op), "?");
    const OpCostLine line = BaselineCost(op);
    // Slopes and intercepts are sane magnitudes (microseconds).
    EXPECT_LT(line.slope_us_per_byte, 1.0);
    EXPECT_LT(line.intercept_us, 200.0);
  }
}

// Sanity: the paper's headline 37% latency reduction for 60 KB datagrams is
// implied by the Table 6 numbers this model encodes (copy vs emulated copy).
TEST(CostModelTest, HeadlineLatencyReductionImpliedByTable6) {
  const CostModel m(MachineProfile::MicronP166());
  const double b = 60.0 * 1024;
  const double base =
      m.CostUs(OpKind::kNetworkTransfer, static_cast<std::uint64_t>(b)) + 130.0;
  const double copy = base + m.CostUs(OpKind::kCopyin, static_cast<std::uint64_t>(b)) +
                      m.CostUs(OpKind::kCopyout, static_cast<std::uint64_t>(b));
  const double ecopy = base + m.CostUs(OpKind::kReference, static_cast<std::uint64_t>(b)) +
                       m.CostUs(OpKind::kReadOnly, static_cast<std::uint64_t>(b)) +
                       m.CostUs(OpKind::kSwap, static_cast<std::uint64_t>(b));
  EXPECT_NEAR((copy - ecopy) / copy, 0.37, 0.02);
}

}  // namespace
}  // namespace genie
