// Per-semantics primitive-operation counts: the Table 6 regression oracle.
//
// For one 8 KiB datagram under each of the eight semantics — aligned early-
// demux and page-offset pooled buffering — the exact multiset of charged
// primitive operations is pinned down, sender and receiver side, counts and
// bytes. These are the operations whose fitted costs reproduce the paper's
// Table 6; any change to a semantics' op sequence shows up here as an exact
// diff long before it shifts a latency curve.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;
constexpr std::uint64_t kLen = 2 * kPage;

struct OpExpectation {
  OpKind op;
  std::uint64_t tx_count;
  std::uint64_t rx_count;
  std::uint64_t tx_bytes;
  std::uint64_t rx_bytes;
};

struct Scenario {
  Semantics sem;
  InputBuffering buffering;
  std::uint32_t dst_offset;  // Applied to application-allocated semantics.
  std::vector<OpExpectation> ops;
};

// Aligned receive buffer, early-demux adapter (the Figure 3 setting).
const std::vector<Scenario>& AlignedEarlyDemux() {
  static const std::vector<Scenario> kScenarios = {
      {Semantics::kCopy,
       InputBuffering::kEarlyDemux,
       0,
       {
           {OpKind::kCopyin, 1, 0, 8192, 0},
           {OpKind::kCopyout, 0, 1, 0, 8192},
           {OpKind::kUnreference, 1, 0, 8192, 0},
           {OpKind::kOverlayAllocate, 1, 1, 0, 0},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kEmulatedCopy,
       InputBuffering::kEarlyDemux,
       0,
       {
           {OpKind::kReference, 1, 0, 8192, 0},
           {OpKind::kUnreference, 1, 0, 8192, 0},
           {OpKind::kReadOnly, 1, 0, 8192, 0},
           {OpKind::kSwap, 0, 1, 0, 8192},
           {OpKind::kOverlayAllocate, 0, 1, 0, 0},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kShare,
       InputBuffering::kEarlyDemux,
       0,
       {
           {OpKind::kReference, 1, 1, 8192, 8192},
           {OpKind::kUnreference, 1, 1, 8192, 8192},
           {OpKind::kWire, 1, 1, 8192, 8192},
           {OpKind::kUnwire, 1, 1, 8192, 8192},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kEmulatedShare,
       InputBuffering::kEarlyDemux,
       0,
       {
           {OpKind::kReference, 1, 1, 8192, 8192},
           {OpKind::kUnreference, 1, 1, 8192, 8192},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kMove,
       InputBuffering::kEarlyDemux,
       0,
       {
           {OpKind::kZeroFill, 0, 1, 0, 0},
           {OpKind::kReference, 1, 0, 8192, 0},
           {OpKind::kUnreference, 1, 0, 8192, 0},
           {OpKind::kWire, 1, 0, 8192, 0},
           {OpKind::kUnwire, 1, 0, 8192, 0},
           {OpKind::kInvalidate, 1, 0, 8192, 0},
           {OpKind::kRegionCreate, 0, 1, 0, 0},
           {OpKind::kRegionFill, 0, 1, 0, 8192},
           {OpKind::kRegionMap, 0, 1, 0, 8192},
           {OpKind::kRegionMarkOut, 1, 0, 0, 0},
           {OpKind::kRegionRemove, 1, 0, 0, 0},
           {OpKind::kOverlayAllocate, 0, 1, 0, 0},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kEmulatedMove,
       InputBuffering::kEarlyDemux,
       0,
       {
           {OpKind::kReference, 1, 1, 8192, 8192},
           {OpKind::kUnreference, 1, 0, 8192, 0},
           {OpKind::kInvalidate, 1, 0, 8192, 0},
           {OpKind::kRegionCreate, 0, 1, 0, 0},
           {OpKind::kRegionMarkOut, 2, 0, 0, 0},
           {OpKind::kRegionCheckUnrefReinstateMarkIn, 0, 1, 0, 8192},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kWeakMove,
       InputBuffering::kEarlyDemux,
       0,
       {
           {OpKind::kReference, 1, 1, 8192, 8192},
           {OpKind::kUnreference, 1, 1, 8192, 8192},
           {OpKind::kWire, 1, 1, 8192, 8192},
           {OpKind::kUnwire, 1, 1, 8192, 8192},
           {OpKind::kRegionCreate, 0, 1, 0, 0},
           {OpKind::kRegionMarkOut, 2, 0, 0, 0},
           {OpKind::kRegionMarkIn, 0, 1, 0, 0},
           {OpKind::kRegionCheck, 0, 1, 0, 0},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kEmulatedWeakMove,
       InputBuffering::kEarlyDemux,
       0,
       {
           {OpKind::kReference, 1, 1, 8192, 8192},
           {OpKind::kUnreference, 1, 0, 8192, 0},
           {OpKind::kRegionCreate, 0, 1, 0, 0},
           {OpKind::kRegionMarkOut, 2, 0, 0, 0},
           {OpKind::kRegionCheckUnrefMarkIn, 0, 1, 0, 8192},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
  };
  return kScenarios;
}

// Unaligned (page offset 1000) receive buffer, pooled adapter buffering (the
// Figure 7 setting): the overlay machinery appears, and misalignment forces
// the receive-side copyout for application-allocated semantics.
const std::vector<Scenario>& UnalignedPooled() {
  static const std::vector<Scenario> kScenarios = {
      {Semantics::kCopy,
       InputBuffering::kPooled,
       1000,
       {
           {OpKind::kCopyin, 1, 0, 8192, 0},
           {OpKind::kCopyout, 0, 1, 0, 8192},
           {OpKind::kUnreference, 1, 0, 8192, 0},
           {OpKind::kOverlayAllocate, 1, 1, 0, 0},
           {OpKind::kOverlay, 0, 1, 0, 0},
           {OpKind::kOverlayDeallocate, 0, 1, 0, 8192},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kEmulatedCopy,
       InputBuffering::kPooled,
       1000,
       {
           {OpKind::kCopyout, 0, 1, 0, 8192},
           {OpKind::kReference, 1, 0, 8192, 0},
           {OpKind::kUnreference, 1, 0, 8192, 0},
           {OpKind::kReadOnly, 1, 0, 8192, 0},
           {OpKind::kOverlayAllocate, 0, 1, 0, 0},
           {OpKind::kOverlay, 0, 1, 0, 0},
           {OpKind::kOverlayDeallocate, 0, 1, 0, 8192},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kShare,
       InputBuffering::kPooled,
       1000,
       {
           {OpKind::kCopyout, 0, 1, 0, 8192},
           {OpKind::kReference, 1, 1, 8192, 8192},
           {OpKind::kUnreference, 1, 1, 8192, 8192},
           {OpKind::kWire, 1, 1, 8192, 8192},
           {OpKind::kUnwire, 1, 1, 8192, 8192},
           {OpKind::kOverlayAllocate, 0, 1, 0, 0},
           {OpKind::kOverlay, 0, 1, 0, 0},
           {OpKind::kOverlayDeallocate, 0, 1, 0, 8192},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kEmulatedShare,
       InputBuffering::kPooled,
       1000,
       {
           {OpKind::kCopyout, 0, 1, 0, 8192},
           {OpKind::kReference, 1, 1, 8192, 8192},
           {OpKind::kUnreference, 1, 1, 8192, 8192},
           {OpKind::kOverlayAllocate, 0, 1, 0, 0},
           {OpKind::kOverlay, 0, 1, 0, 0},
           {OpKind::kOverlayDeallocate, 0, 1, 0, 8192},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kMove,
       InputBuffering::kPooled,
       1000,
       {
           {OpKind::kZeroFill, 0, 1, 0, 0},
           {OpKind::kReference, 1, 0, 8192, 0},
           {OpKind::kUnreference, 1, 0, 8192, 0},
           {OpKind::kWire, 1, 0, 8192, 0},
           {OpKind::kUnwire, 1, 0, 8192, 0},
           {OpKind::kInvalidate, 1, 0, 8192, 0},
           {OpKind::kRegionCreate, 0, 1, 0, 0},
           {OpKind::kRegionFillOverlayRefill, 0, 1, 0, 8192},
           {OpKind::kRegionMap, 0, 1, 0, 8192},
           {OpKind::kRegionMarkOut, 1, 0, 0, 0},
           {OpKind::kRegionRemove, 1, 0, 0, 0},
           {OpKind::kOverlayAllocate, 0, 1, 0, 0},
           {OpKind::kOverlay, 0, 1, 0, 0},
           {OpKind::kOverlayDeallocate, 0, 1, 0, 8192},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kEmulatedMove,
       InputBuffering::kPooled,
       1000,
       {
           {OpKind::kReference, 1, 1, 8192, 8192},
           {OpKind::kUnreference, 1, 1, 8192, 8192},
           {OpKind::kInvalidate, 1, 0, 8192, 0},
           {OpKind::kSwap, 0, 1, 0, 8192},
           {OpKind::kRegionCreate, 0, 1, 0, 0},
           {OpKind::kRegionMarkOut, 2, 0, 0, 0},
           {OpKind::kRegionMarkIn, 0, 1, 0, 0},
           {OpKind::kRegionCheck, 0, 1, 0, 0},
           {OpKind::kOverlayAllocate, 0, 1, 0, 0},
           {OpKind::kOverlay, 0, 1, 0, 0},
           {OpKind::kOverlayDeallocate, 0, 1, 0, 8192},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kWeakMove,
       InputBuffering::kPooled,
       1000,
       {
           {OpKind::kReference, 1, 1, 8192, 8192},
           {OpKind::kUnreference, 1, 1, 8192, 8192},
           {OpKind::kWire, 1, 1, 8192, 8192},
           {OpKind::kUnwire, 1, 1, 8192, 8192},
           {OpKind::kSwap, 0, 1, 0, 8192},
           {OpKind::kRegionCreate, 0, 1, 0, 0},
           {OpKind::kRegionMarkOut, 2, 0, 0, 0},
           {OpKind::kRegionMarkIn, 0, 1, 0, 0},
           {OpKind::kRegionCheck, 0, 1, 0, 0},
           {OpKind::kOverlayAllocate, 0, 1, 0, 0},
           {OpKind::kOverlay, 0, 1, 0, 0},
           {OpKind::kOverlayDeallocate, 0, 1, 0, 8192},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
      {Semantics::kEmulatedWeakMove,
       InputBuffering::kPooled,
       1000,
       {
           {OpKind::kReference, 1, 1, 8192, 8192},
           {OpKind::kUnreference, 1, 1, 8192, 8192},
           {OpKind::kSwap, 0, 1, 0, 8192},
           {OpKind::kRegionCreate, 0, 1, 0, 0},
           {OpKind::kRegionMarkOut, 2, 0, 0, 0},
           {OpKind::kRegionMarkIn, 0, 1, 0, 0},
           {OpKind::kRegionCheck, 0, 1, 0, 0},
           {OpKind::kOverlayAllocate, 0, 1, 0, 0},
           {OpKind::kOverlay, 0, 1, 0, 0},
           {OpKind::kOverlayDeallocate, 0, 1, 0, 8192},
           {OpKind::kSenderKernelFixed, 1, 0, 0, 0},
           {OpKind::kReceiverKernelFixed, 0, 1, 0, 0},
       }},
  };
  return kScenarios;
}

void CheckScenario(const Scenario& sc) {
  SCOPED_TRACE(std::string(SemanticsName(sc.sem)) + " / " +
               std::string(InputBufferingName(sc.buffering)) + " / offset " +
               std::to_string(sc.dst_offset));
  Rig rig(sc.buffering);
  rig.tx_app.CreateRegion(kSrc, 16 * kPage,
                          IsSystemAllocated(sc.sem) ? RegionState::kMovedIn
                                                    : RegionState::kUnmovable);
  Vaddr dst = kDst;
  if (IsApplicationAllocated(sc.sem)) {
    rig.rx_app.CreateRegion(kDst, 16 * kPage);
    dst += sc.dst_offset;
  }
  const auto payload = TestPattern(kLen, 1);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);
  const InputResult result = rig.Transfer(kSrc, dst, kLen, sc.sem);
  ASSERT_TRUE(result.ok);

  // Every op kind is checked: listed ones against their expectation, all
  // others against zero, on both sides, counts and bytes.
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    const OpKind op = static_cast<OpKind>(i);
    OpExpectation want{op, 0, 0, 0, 0};
    for (const OpExpectation& e : sc.ops) {
      if (e.op == op) {
        want = e;
        break;
      }
    }
    SCOPED_TRACE(std::string(OpKindName(op)));
    EXPECT_EQ(rig.tx_ep.op_count(op), want.tx_count);
    EXPECT_EQ(rig.rx_ep.op_count(op), want.rx_count);
    EXPECT_EQ(rig.tx_ep.op_bytes(op), want.tx_bytes);
    EXPECT_EQ(rig.rx_ep.op_bytes(op), want.rx_bytes);

    // The registry's gauge view must agree exactly with the accessors — the
    // bench gate reads these names.
    const std::string op_prefix = "ep1.op." + std::string(OpKindName(op)) + ".";
    EXPECT_EQ(rig.sender.metrics().Snapshot().Value(op_prefix + "count"), want.tx_count);
    EXPECT_EQ(rig.receiver.metrics().Snapshot().Value(op_prefix + "count"), want.rx_count);
  }
}

class OpCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OpCountTest, AlignedEarlyDemuxMatchesOracle) {
  CheckScenario(AlignedEarlyDemux()[GetParam()]);
}

TEST_P(OpCountTest, UnalignedPooledMatchesOracle) {
  CheckScenario(UnalignedPooled()[GetParam()]);
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, OpCountTest, ::testing::Range<std::size_t>(0, 8),
                         [](const ::testing::TestParamInfo<std::size_t>& param_info) {
                           std::string name(SemanticsName(kAllSemantics[param_info.param]));
                           for (char& c : name) {
                             if (c == ' ') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// Counts are per-endpoint and reset with it: a second identical transfer on a
// fresh rig reproduces the oracle bit-for-bit (determinism of the charge
// sequence itself).
TEST(OpCountTest, RepeatRunsAreBitIdentical) {
  auto run = [] {
    Rig rig;
    rig.tx_app.CreateRegion(kSrc, 16 * kPage);
    rig.rx_app.CreateRegion(kDst, 16 * kPage);
    (void)rig.tx_app.Write(kSrc, TestPattern(kLen, 1));
    GENIE_CHECK(rig.Transfer(kSrc, kDst, kLen, Semantics::kEmulatedCopy).ok);
    std::vector<std::uint64_t> v;
    for (std::size_t i = 0; i < kOpKindCount; ++i) {
      v.push_back(rig.tx_ep.op_count(static_cast<OpKind>(i)));
      v.push_back(rig.rx_ep.op_count(static_cast<OpKind>(i)));
      v.push_back(rig.tx_ep.op_bytes(static_cast<OpKind>(i)));
      v.push_back(rig.rx_ep.op_bytes(static_cast<OpKind>(i)));
    }
    return v;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace genie
