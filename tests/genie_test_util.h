// Shared fixture for Genie end-to-end tests: two nodes joined by a network,
// one endpoint and one application process on each side.
#ifndef GENIE_TESTS_GENIE_TEST_UTIL_H_
#define GENIE_TESTS_GENIE_TEST_UTIL_H_

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "src/genie/endpoint.h"
#include "src/genie/node.h"
#include "src/sim/engine.h"

namespace genie {

inline std::vector<std::byte> TestPattern(std::size_t n, unsigned char seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 131 + i * 7) & 0xFF);
  }
  return v;
}

struct Rig {
  explicit Rig(InputBuffering rx = InputBuffering::kEarlyDemux,
               GenieOptions options = GenieOptions{},
               MachineProfile profile = MachineProfile::MicronP166(),
               std::size_t mem_frames = 512)
      : sender(engine, "tx",
               Node::Config{profile, mem_frames, InputBuffering::kEarlyDemux, 64, true}),
        receiver(engine, "rx", Node::Config{profile, mem_frames, rx, 64, true}),
        network(engine, sender, receiver),
        tx_ep(sender, 1, options),
        rx_ep(receiver, 1, options),
        tx_app(sender.CreateProcess("app")),
        rx_app(receiver.CreateProcess("app")) {}

  // Runs one datagram: sender outputs [src_va, len) with `sem`; receiver
  // preposts a matching input. Returns the receiver-side result.
  InputResult Transfer(Vaddr src_va, Vaddr dst_va, std::uint64_t len, Semantics sem) {
    InputResult result;
    auto input_driver = [](Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t n,
                           Semantics s, InputResult* out) -> Task<void> {
      if (IsSystemAllocated(s)) {
        *out = co_await ep.InputSystemAllocated(app, n, s);
      } else {
        *out = co_await ep.Input(app, va, n, s);
      }
    };
    std::move(input_driver(rx_ep, rx_app, dst_va, len, sem, &result)).Detach();
    std::move(tx_ep.Output(tx_app, src_va, len, sem)).Detach();
    engine.Run();
    return result;
  }

  // Reads the received payload back out of the receiver application.
  std::vector<std::byte> ReadBack(Vaddr addr, std::uint64_t len) {
    std::vector<std::byte> out(static_cast<std::size_t>(len));
    const AccessResult res = rx_app.Read(addr, out);
    GENIE_CHECK(res == AccessResult::kOk);
    return out;
  }

  // No leaked I/O refs, zombie frames, or pending operations.
  void ExpectQuiescent() const;

  Engine engine;
  Node sender;
  Node receiver;
  Network network;
  Endpoint tx_ep;
  Endpoint rx_ep;
  AddressSpace& tx_app;
  AddressSpace& rx_app;
};

inline void Rig::ExpectQuiescent() const {
  GENIE_CHECK_EQ(tx_ep.pending_operations(), 0u);
  GENIE_CHECK_EQ(rx_ep.pending_operations(), 0u);
}

// Test helper replacing the removed Adapter::InjectCrcError() shim: attaches
// a private FaultPlan to the *transmitting* adapter and queues single-shot
// kDeviceError rules. Each CorruptNextFrame() call corrupts exactly one more
// frame (the next one not already scheduled for corruption) — the old shim's
// queueing semantics, expressed as the one supported injection mechanism.
// Detaches the plan on destruction; do not combine with another plan on the
// same adapter.
class CrcErrorInjector {
 public:
  explicit CrcErrorInjector(Adapter& tx) : tx_(&tx) { tx_->set_fault_plan(&plan_); }
  ~CrcErrorInjector() { tx_->set_fault_plan(nullptr); }
  CrcErrorInjector(const CrcErrorInjector&) = delete;
  CrcErrorInjector& operator=(const CrcErrorInjector&) = delete;

  void CorruptNextFrame() {
    next_ = std::max(next_, plan_.site_ops(FaultSite::kDeviceError)) + 1;
    FaultRule rule;
    rule.site = FaultSite::kDeviceError;
    rule.nth = next_;
    rule.max_fires = 1;
    plan_.AddRule(rule);
  }

 private:
  Adapter* tx_;
  FaultPlan plan_{1};
  std::uint64_t next_ = 0;
};

}  // namespace genie

#endif  // GENIE_TESTS_GENIE_TEST_UTIL_H_
