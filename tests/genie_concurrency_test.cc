// Concurrency: multiple channels sharing one adapter/CPU, bidirectional
// traffic, and overlapping in-flight operations on one endpoint.
#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kBufA = 0x20000000;
constexpr Vaddr kBufB = 0x28000000;

Task<void> DriveInput(Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t len,
                      Semantics sem, InputResult* out) {
  *out = co_await ep.Input(app, va, len, sem);
}

TEST(ConcurrencyTest, TwoChannelsShareOneLinkAndCpu) {
  Engine engine;
  Node a(engine, "a", Node::Config{});
  Node b(engine, "b", Node::Config{});
  Network net(engine, a, b);
  Endpoint tx1(a, 1);
  Endpoint tx2(a, 2);
  Endpoint rx1(b, 1);
  Endpoint rx2(b, 2);
  AddressSpace& app_a = a.CreateProcess("app");
  AddressSpace& app_b = b.CreateProcess("app");
  app_a.CreateRegion(kBufA, 16 * kPage);
  app_a.CreateRegion(kBufB, 16 * kPage);
  app_b.CreateRegion(kBufA, 16 * kPage);
  app_b.CreateRegion(kBufB, 16 * kPage);

  const auto p1 = TestPattern(8 * kPage, 1);
  const auto p2 = TestPattern(8 * kPage, 2);
  ASSERT_EQ(app_a.Write(kBufA, p1), AccessResult::kOk);
  ASSERT_EQ(app_a.Write(kBufB, p2), AccessResult::kOk);

  InputResult r1;
  InputResult r2;
  std::move(DriveInput(rx1, app_b, kBufA, 8 * kPage, Semantics::kEmulatedCopy, &r1)).Detach();
  std::move(DriveInput(rx2, app_b, kBufB, 8 * kPage, Semantics::kEmulatedShare, &r2)).Detach();
  std::move(tx1.Output(app_a, kBufA, 8 * kPage, Semantics::kEmulatedCopy)).Detach();
  std::move(tx2.Output(app_a, kBufB, 8 * kPage, Semantics::kEmulatedShare)).Detach();
  engine.Run();

  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);
  std::vector<std::byte> got(8 * kPage);
  ASSERT_EQ(app_b.Read(kBufA, got), AccessResult::kOk);
  EXPECT_EQ(std::memcmp(got.data(), p1.data(), got.size()), 0);
  ASSERT_EQ(app_b.Read(kBufB, got), AccessResult::kOk);
  EXPECT_EQ(std::memcmp(got.data(), p2.data(), got.size()), 0);
  // The two frames shared the link: the second completion is at least one
  // frame-time after the first.
  EXPECT_NE(r1.completed_at, r2.completed_at);
}

TEST(ConcurrencyTest, BidirectionalTransfersDoNotInterfere) {
  Rig rig;
  rig.tx_app.CreateRegion(kBufA, 16 * kPage);
  rig.rx_app.CreateRegion(kBufA, 16 * kPage);
  rig.tx_app.CreateRegion(kBufB, 16 * kPage);
  rig.rx_app.CreateRegion(kBufB, 16 * kPage);
  const auto forward = TestPattern(8 * kPage, 3);
  const auto backward = TestPattern(8 * kPage, 4);
  ASSERT_EQ(rig.tx_app.Write(kBufA, forward), AccessResult::kOk);
  ASSERT_EQ(rig.rx_app.Write(kBufB, backward), AccessResult::kOk);

  InputResult fwd;
  InputResult bwd;
  std::move(DriveInput(rig.rx_ep, rig.rx_app, kBufA, 8 * kPage, Semantics::kEmulatedCopy, &fwd))
      .Detach();
  std::move(DriveInput(rig.tx_ep, rig.tx_app, kBufB, 8 * kPage, Semantics::kEmulatedCopy, &bwd))
      .Detach();
  std::move(rig.tx_ep.Output(rig.tx_app, kBufA, 8 * kPage, Semantics::kEmulatedCopy)).Detach();
  std::move(rig.rx_ep.Output(rig.rx_app, kBufB, 8 * kPage, Semantics::kEmulatedCopy)).Detach();
  rig.engine.Run();

  ASSERT_TRUE(fwd.ok);
  ASSERT_TRUE(bwd.ok);
  std::vector<std::byte> got(8 * kPage);
  ASSERT_EQ(rig.rx_app.Read(kBufA, got), AccessResult::kOk);
  EXPECT_EQ(std::memcmp(got.data(), forward.data(), got.size()), 0);
  ASSERT_EQ(rig.tx_app.Read(kBufB, got), AccessResult::kOk);
  EXPECT_EQ(std::memcmp(got.data(), backward.data(), got.size()), 0);
  // Full-duplex links: the two directions overlap in time, so both finish
  // in well under two serialized frame-times.
  const SimTime frame_time = MicrosToSimTime(8 * kPage * 0.0598);
  EXPECT_LT(std::max(fwd.completed_at, bwd.completed_at), 2 * frame_time);
}

TEST(ConcurrencyTest, PipelinedReceivesOnOneChannel) {
  // Several preposted receives on one channel, filled by back-to-back sends.
  Rig rig;
  rig.tx_app.CreateRegion(kBufA, 16 * kPage);
  rig.rx_app.CreateRegion(kBufA, 16 * kPage);
  constexpr int kN = 4;
  const std::uint64_t len = 2 * kPage;
  InputResult results[kN];
  for (int i = 0; i < kN; ++i) {
    std::move(DriveInput(rig.rx_ep, rig.rx_app, kBufA + i * len, len,
                         Semantics::kEmulatedCopy, &results[i]))
        .Detach();
  }
  for (int i = 0; i < kN; ++i) {
    const auto payload = TestPattern(len, static_cast<unsigned char>(10 + i));
    ASSERT_EQ(rig.tx_app.Write(kBufA + i * len, payload), AccessResult::kOk);
    std::move(rig.tx_ep.Output(rig.tx_app, kBufA + i * len, len, Semantics::kEmulatedCopy))
        .Detach();
  }
  rig.engine.Run();
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(results[i].ok) << i;
    std::vector<std::byte> got(len);
    ASSERT_EQ(rig.rx_app.Read(kBufA + i * len, got), AccessResult::kOk);
    const auto expect = TestPattern(len, static_cast<unsigned char>(10 + i));
    EXPECT_EQ(std::memcmp(got.data(), expect.data(), len), 0) << i;
  }
  // Completions are ordered and pipelined (later ones don't wait for a full
  // round trip each).
  for (int i = 1; i < kN; ++i) {
    EXPECT_GT(results[i].completed_at, results[i - 1].completed_at);
  }
  rig.ExpectQuiescent();
}

TEST(ConcurrencyTest, ManySmallTransfersStress) {
  Rig rig;
  rig.tx_app.CreateRegion(kBufA, 16 * kPage);
  rig.rx_app.CreateRegion(kBufA, 16 * kPage);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t len = 64 + (round * 37) % 3000;
    const auto payload = TestPattern(len, static_cast<unsigned char>(round));
    ASSERT_EQ(rig.tx_app.Write(kBufA, payload), AccessResult::kOk);
    const Semantics sem = kAllSemantics[round % 4];  // App-allocated four.
    const InputResult r = rig.Transfer(kBufA, kBufA, len, sem);
    ASSERT_TRUE(r.ok) << round;
    const auto got = rig.ReadBack(kBufA, len);
    ASSERT_EQ(std::memcmp(got.data(), payload.data(), len), 0) << round;
  }
  rig.ExpectQuiescent();
  EXPECT_EQ(rig.sender.vm().pm().zombie_frames(), 0u);
  EXPECT_EQ(rig.receiver.vm().pm().zombie_frames(), 0u);
}

}  // namespace
}  // namespace genie
