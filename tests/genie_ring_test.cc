// Batched submission/completion ring API: outputs and inputs enqueued with
// Submit()/SubmitBatch(), drained through the kernel in one pass, completions
// (user_data, IoStatus) harvested from the completion ring. Covers depth
// enforcement, mixed batches, prepare-failure completions, WaitCompletions
// blocking, and the ring + windowed-ARQ pipeline working together.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;

using SubmitEntry = Endpoint::SubmitEntry;
using Completion = Endpoint::Completion;

Task<void> DriveDrain(Endpoint& ep, std::size_t* launched) {
  *launched = co_await ep.Drain();
}

Task<void> DriveWait(Endpoint& ep, std::size_t n, std::size_t* available) {
  *available = co_await ep.WaitCompletions(n);
}

Task<void> DriveInput(Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t len,
                      InputResult* out) {
  *out = co_await ep.Input(app, va, len, Semantics::kCopy);
}

SubmitEntry OutputEntry(AddressSpace& app, Vaddr va, std::uint64_t len,
                        std::uint64_t user_data) {
  SubmitEntry e;
  e.op = SubmitEntry::Op::kOutput;
  e.app = &app;
  e.va = va;
  e.len = len;
  e.sem = Semantics::kCopy;
  e.user_data = user_data;
  return e;
}

SubmitEntry InputEntry(AddressSpace& app, Vaddr va, std::uint64_t len,
                       std::uint64_t user_data) {
  SubmitEntry e;
  e.op = SubmitEntry::Op::kInput;
  e.app = &app;
  e.va = va;
  e.len = len;
  e.sem = Semantics::kCopy;
  e.user_data = user_data;
  return e;
}

TEST(RingTest, BatchedOutputsRoundTrip) {
  Rig rig;
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);
  constexpr int kN = 4;
  constexpr std::uint64_t kLen = 2048;
  std::vector<std::vector<std::byte>> payloads;
  std::vector<InputResult> inputs(kN);
  for (int i = 0; i < kN; ++i) {
    payloads.push_back(TestPattern(kLen, static_cast<unsigned char>(i + 1)));
    ASSERT_EQ(rig.tx_app.Write(kSrc + i * kPage, payloads[i]), AccessResult::kOk);
    std::move(DriveInput(rig.rx_ep, rig.rx_app, kDst + i * kPage, kLen, &inputs[i])).Detach();
    ASSERT_TRUE(rig.tx_ep.Submit(OutputEntry(rig.tx_app, kSrc + i * kPage, kLen, 100 + i)));
  }
  EXPECT_EQ(rig.tx_ep.submit_ring_size(), 4u);
  std::size_t launched = 0;
  std::move(DriveDrain(rig.tx_ep, &launched)).Detach();
  rig.engine.Run();
  EXPECT_EQ(launched, 4u);
  EXPECT_EQ(rig.tx_ep.submit_ring_size(), 0u);

  std::vector<Completion> done;
  EXPECT_EQ(rig.tx_ep.Harvest(&done), 4u);
  ASSERT_EQ(done.size(), 4u);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(done[i].user_data, 100u + i);
    EXPECT_EQ(done[i].op, SubmitEntry::Op::kOutput);
    EXPECT_EQ(done[i].status, IoStatus::kOk);
    EXPECT_EQ(done[i].bytes, kLen);
    ASSERT_TRUE(inputs[i].ok);
    const auto got = rig.ReadBack(kDst + i * kPage, kLen);
    EXPECT_EQ(std::memcmp(got.data(), payloads[i].data(), kLen), 0);
  }
  EXPECT_EQ(rig.tx_ep.stats().ring_submits, 4u);
  EXPECT_EQ(rig.tx_ep.stats().ring_drains, 1u);
  EXPECT_EQ(rig.tx_ep.stats().ring_completions, 4u);
  rig.ExpectQuiescent();
}

TEST(RingTest, BatchedInputsDeliver) {
  Rig rig;
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);
  constexpr int kN = 3;
  constexpr std::uint64_t kLen = 1024;
  std::vector<SubmitEntry> entries;
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(rig.tx_app.Write(kSrc + i * kPage,
                               TestPattern(kLen, static_cast<unsigned char>(7 + i))),
              AccessResult::kOk);
    entries.push_back(InputEntry(rig.rx_app, kDst + i * kPage, kLen, 200 + i));
  }
  EXPECT_EQ(rig.rx_ep.SubmitBatch(entries), 3u);
  std::size_t launched = 0;
  std::move(DriveDrain(rig.rx_ep, &launched)).Detach();
  for (int i = 0; i < kN; ++i) {
    std::move(rig.tx_ep.Output(rig.tx_app, kSrc + i * kPage, kLen, Semantics::kCopy)).Detach();
  }
  std::size_t available = 0;
  std::move(DriveWait(rig.rx_ep, kN, &available)).Detach();
  rig.engine.Run();
  EXPECT_EQ(launched, 3u);
  EXPECT_EQ(available, 3u);
  std::vector<Completion> done;
  EXPECT_EQ(rig.rx_ep.Harvest(&done), 3u);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(done[i].op, SubmitEntry::Op::kInput);
    EXPECT_EQ(done[i].status, IoStatus::kOk);
    EXPECT_EQ(done[i].bytes, kLen);
    EXPECT_EQ(done[i].addr, kDst + (done[i].user_data - 200) * kPage);
  }
  rig.ExpectQuiescent();
}

TEST(RingTest, SubmitRespectsRingDepth) {
  GenieOptions options;
  options.ring_depth = 2;
  Rig rig(InputBuffering::kEarlyDemux, options);
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  EXPECT_TRUE(rig.tx_ep.Submit(OutputEntry(rig.tx_app, kSrc, 512, 1)));
  EXPECT_TRUE(rig.tx_ep.Submit(OutputEntry(rig.tx_app, kSrc, 512, 2)));
  EXPECT_FALSE(rig.tx_ep.Submit(OutputEntry(rig.tx_app, kSrc, 512, 3)));
  std::vector<SubmitEntry> more(3, OutputEntry(rig.tx_app, kSrc, 512, 4));
  EXPECT_EQ(rig.tx_ep.SubmitBatch(more), 0u);
  EXPECT_EQ(rig.tx_ep.submit_ring_size(), 2u);
  EXPECT_EQ(rig.tx_ep.stats().ring_submits, 2u);
}

TEST(RingTest, PrepareFailureCompletesWithStatus) {
  Rig rig;
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  // Fault the source pages in first so the injected failure lands on the
  // sysbuf allocation, not the copyin's page-in.
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(2048, 1)), AccessResult::kOk);
  // Exhaust frame-run allocation at the sender: the copy-semantics sysbuf
  // allocation fails and the output completes kNoMemory without ever
  // reaching the wire.
  FaultPlan plan(1);
  rig.sender.AttachFaultPlan(&plan);
  // Both the contiguous-run attempt and its frame-at-a-time fallback must
  // fail for the sysbuf allocation to give up.
  FaultRule rule;
  rule.site = FaultSite::kFrameAllocateRun;
  rule.probability = 1.0;
  plan.AddRule(rule);
  rule.site = FaultSite::kFrameAllocate;
  plan.AddRule(rule);
  ASSERT_TRUE(rig.tx_ep.Submit(OutputEntry(rig.tx_app, kSrc, 2048, 42)));
  std::size_t launched = 0;
  std::move(DriveDrain(rig.tx_ep, &launched)).Detach();
  rig.engine.Run();
  rig.sender.AttachFaultPlan(nullptr);
  EXPECT_EQ(launched, 1u);
  std::vector<Completion> done;
  ASSERT_EQ(rig.tx_ep.Harvest(&done), 1u);
  EXPECT_EQ(done[0].user_data, 42u);
  EXPECT_EQ(done[0].status, IoStatus::kNoMemory);
  EXPECT_EQ(done[0].bytes, 0u);
  EXPECT_EQ(rig.tx_ep.stats().failed_outputs, 1u);
  rig.ExpectQuiescent();
}

TEST(RingTest, MixedBatchPreservesSubmissionOrder) {
  Rig rig;
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);
  constexpr std::uint64_t kLen = 1024;
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(kLen, 21)), AccessResult::kOk);
  // One ring on each endpoint: the receiver's ring posts the input, the
  // sender's ring sends into it.
  ASSERT_TRUE(rig.rx_ep.Submit(InputEntry(rig.rx_app, kDst, kLen, 7)));
  ASSERT_TRUE(rig.tx_ep.Submit(OutputEntry(rig.tx_app, kSrc, kLen, 8)));
  std::size_t rx_launched = 0;
  std::size_t tx_launched = 0;
  std::move(DriveDrain(rig.rx_ep, &rx_launched)).Detach();
  std::move(DriveDrain(rig.tx_ep, &tx_launched)).Detach();
  rig.engine.Run();
  EXPECT_EQ(rx_launched, 1u);
  EXPECT_EQ(tx_launched, 1u);
  std::vector<Completion> rx_done;
  std::vector<Completion> tx_done;
  EXPECT_EQ(rig.rx_ep.Harvest(&rx_done), 1u);
  EXPECT_EQ(rig.tx_ep.Harvest(&tx_done), 1u);
  EXPECT_EQ(rx_done[0].status, IoStatus::kOk);
  EXPECT_EQ(tx_done[0].status, IoStatus::kOk);
  const auto got = rig.ReadBack(kDst, kLen);
  const auto want = TestPattern(kLen, 21);
  EXPECT_EQ(std::memcmp(got.data(), want.data(), kLen), 0);
  rig.ExpectQuiescent();
}

TEST(RingTest, WindowedArqPipelinesRingBatch) {
  Rig rig;
  ReliableOptions ropts;
  ropts.arq = true;
  ropts.window = 8;
  ropts.jitter_frac = 0.0;
  rig.sender.EnableReliableDelivery(ropts);
  rig.receiver.EnableReliableDelivery(ropts);
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);
  constexpr int kN = 8;
  constexpr std::uint64_t kLen = kPage;
  std::vector<InputResult> inputs(kN);
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(rig.tx_app.Write(kSrc + i * kPage,
                               TestPattern(kLen, static_cast<unsigned char>(i + 1))),
              AccessResult::kOk);
    std::move(DriveInput(rig.rx_ep, rig.rx_app, kDst + i * kPage, kLen, &inputs[i])).Detach();
    ASSERT_TRUE(rig.tx_ep.Submit(OutputEntry(rig.tx_app, kSrc + i * kPage, kLen, i)));
  }
  std::size_t launched = 0;
  std::move(DriveDrain(rig.tx_ep, &launched)).Detach();
  rig.engine.Run();
  EXPECT_EQ(launched, 8u);
  std::vector<Completion> done;
  EXPECT_EQ(rig.tx_ep.Harvest(&done), 8u);
  for (const Completion& c : done) {
    EXPECT_EQ(c.status, IoStatus::kOk);
  }
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(inputs[i].ok);
    const auto got = rig.ReadBack(kDst + i * kPage, kLen);
    const auto want = TestPattern(kLen, static_cast<unsigned char>(i + 1));
    EXPECT_EQ(std::memcmp(got.data(), want.data(), kLen), 0);
  }
  // The whole batch rode the selective-repeat window: every frame was
  // sequenced and SACK-acked, nothing retransmitted on the clean wire.
  EXPECT_EQ(rig.sender.reliable().stats().sequenced_frames, 8u);
  EXPECT_GE(rig.sender.reliable().stats().acks, 8u);
  EXPECT_EQ(rig.sender.reliable().stats().retransmits, 0u);
  rig.ExpectQuiescent();
}

}  // namespace
}  // namespace genie
