// SACK codec edge cases: wraparound, full window, empty bitmap, and bitmaps
// wider than one control cell.
#include "src/net/sack.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace genie {
namespace {

std::vector<std::uint64_t> BitmapSeqs(const std::vector<SackCell>& cells) {
  std::vector<std::uint64_t> seqs;
  for (const auto& c : cells) DecodeSackBitmap(c, &seqs);
  return seqs;
}

TEST(SackCodec, EmptyBitmapIsPureCumulativeAck) {
  auto cells = EncodeSack(/*cum=*/42, {});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].cum, 42u);
  EXPECT_EQ(cells[0].bitmap, 0u);
  EXPECT_TRUE(BitmapSeqs(cells).empty());
  // Cumulative coverage: everything within the horizon below cum.
  EXPECT_TRUE(SackCovers(cells[0], 42, /*horizon=*/64));
  EXPECT_TRUE(SackCovers(cells[0], 40, 64));
  EXPECT_FALSE(SackCovers(cells[0], 43, 64));
}

TEST(SackCodec, SingleOutOfOrderSeq) {
  auto cells = EncodeSack(10, {13});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].cum, 10u);
  EXPECT_EQ(cells[0].base, 13u);
  EXPECT_EQ(cells[0].bitmap, 1u);
  EXPECT_TRUE(SackCovers(cells[0], 13, 64));
  EXPECT_FALSE(SackCovers(cells[0], 12, 1));  // gap: not cum, not bitmap
  EXPECT_FALSE(SackCovers(cells[0], 14, 64));
}

TEST(SackCodec, FullWindowFitsOneCell) {
  // A dense run of 64 out-of-order seqs packs into exactly one cell with a
  // saturated bitmap.
  std::set<std::uint64_t> above;
  for (std::uint64_t s = 101; s <= 164; ++s) above.insert(s);
  auto cells = EncodeSack(99, above);  // gap at 100 keeps them all "above"
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].base, 101u);
  EXPECT_EQ(cells[0].bitmap, ~0ull);
  auto seqs = BitmapSeqs(cells);
  ASSERT_EQ(seqs.size(), 64u);
  EXPECT_EQ(seqs.front(), 101u);
  EXPECT_EQ(seqs.back(), 164u);
}

TEST(SackCodec, BitmapWiderThanOneCellSplitsIntoTrain) {
  // 130 contiguous seqs above the gap need ceil(130/64) = 3 cells, each
  // repeating the cumulative field so any single cell is self-contained.
  std::set<std::uint64_t> above;
  for (std::uint64_t s = 1001; s <= 1130; ++s) above.insert(s);
  auto cells = EncodeSack(999, above);
  ASSERT_EQ(cells.size(), 3u);
  for (const auto& c : cells) EXPECT_EQ(c.cum, 999u);
  EXPECT_EQ(cells[0].base, 1001u);
  EXPECT_EQ(cells[1].base, 1065u);
  EXPECT_EQ(cells[2].base, 1129u);
  auto seqs = BitmapSeqs(cells);
  ASSERT_EQ(seqs.size(), 130u);
  EXPECT_EQ(seqs.front(), 1001u);
  EXPECT_EQ(seqs.back(), 1130u);
  // Sparse members land in the right cells too.
  auto sparse = EncodeSack(0, {5, 70, 200});
  ASSERT_EQ(sparse.size(), 3u);
  EXPECT_EQ(BitmapSeqs(sparse), (std::vector<std::uint64_t>{5, 70, 200}));
}

TEST(SackCodec, SequenceWraparound) {
  // Receiver state straddling 2^64: cum just below the wrap, out-of-order
  // members on both sides. Distance arithmetic must keep the train monotone
  // and coverage correct.
  const std::uint64_t near_max = ~0ull - 2;  // 2^64 - 3
  std::set<std::uint64_t> above = {near_max + 2, 1, 3};  // wraps to {0xFFFF..FF, 1, 3}
  auto cells = EncodeSack(near_max, above);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].base, near_max + 2);
  auto seqs = BitmapSeqs(cells);
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs[0], near_max + 2);
  EXPECT_EQ(seqs[1], 1u);
  EXPECT_EQ(seqs[2], 3u);
  EXPECT_TRUE(SackCovers(cells[0], near_max + 2, 64));
  EXPECT_TRUE(SackCovers(cells[0], 1, 64));
  EXPECT_FALSE(SackCovers(cells[0], 2, 64));
  // Cumulative coverage across the wrap: seq just below cum.
  EXPECT_TRUE(SackCovers(cells[0], near_max - 1, 64));
  EXPECT_FALSE(SackCovers(cells[0], near_max + 1, 64));  // the gap itself
}

TEST(SackCodec, CoverageHorizonBoundsCumulative) {
  SackCell c;
  c.cum = 1000;
  c.base = 1001;
  c.bitmap = 0;
  EXPECT_TRUE(SackCovers(c, 1000, /*horizon=*/4));
  EXPECT_TRUE(SackCovers(c, 997, 4));
  EXPECT_FALSE(SackCovers(c, 996, 4));  // below the live horizon
}

}  // namespace
}  // namespace genie
