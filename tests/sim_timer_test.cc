// TimerSet: cancellable one-shot timers over the (non-cancellable) engine
// queue. The contract the ARQ retransmit path depends on: Cancel() before the
// deadline means the callback never runs, the queued trampoline pops as a
// no-op, and engine event ordering is untouched either way.
#include "src/sim/timer.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/sim/engine.h"

namespace genie {
namespace {

TEST(TimerSetTest, FiresAtDeadline) {
  Engine eng;
  TimerSet timers(eng);
  SimTime fired_at = -1;
  timers.ScheduleAfter(1000, [&] { fired_at = eng.now(); });
  EXPECT_EQ(timers.pending(), 1u);
  eng.Run();
  EXPECT_EQ(fired_at, 1000);
  EXPECT_EQ(timers.pending(), 0u);
  EXPECT_EQ(timers.fired(), 1u);
  EXPECT_EQ(timers.cancelled(), 0u);
}

TEST(TimerSetTest, CancelSuppressesCallback) {
  Engine eng;
  TimerSet timers(eng);
  bool ran = false;
  const TimerSet::Handle h = timers.ScheduleAfter(1000, [&] { ran = true; });
  EXPECT_TRUE(timers.Cancel(h));
  EXPECT_EQ(timers.pending(), 0u);
  // The engine still holds the trampoline event; it must pop as a no-op.
  eng.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(timers.fired(), 0u);
  EXPECT_EQ(timers.cancelled(), 1u);
}

TEST(TimerSetTest, CancelAfterFireReturnsFalse) {
  Engine eng;
  TimerSet timers(eng);
  const TimerSet::Handle h = timers.ScheduleAfter(10, [] {});
  eng.Run();
  EXPECT_FALSE(timers.Cancel(h));  // already fired
  EXPECT_EQ(timers.cancelled(), 0u);
}

TEST(TimerSetTest, CancelIsIdempotent) {
  Engine eng;
  TimerSet timers(eng);
  const TimerSet::Handle h = timers.ScheduleAfter(10, [] {});
  EXPECT_TRUE(timers.Cancel(h));
  EXPECT_FALSE(timers.Cancel(h));
  EXPECT_EQ(timers.cancelled(), 1u);
  EXPECT_FALSE(timers.Cancel(0));  // 0 is never a valid handle
}

TEST(TimerSetTest, IndependentTimersInterleave) {
  Engine eng;
  TimerSet timers(eng);
  std::vector<int> order;
  timers.ScheduleAfter(300, [&] { order.push_back(3); });
  const TimerSet::Handle second = timers.ScheduleAfter(200, [&] { order.push_back(2); });
  timers.ScheduleAfter(100, [&] { order.push_back(1); });
  EXPECT_EQ(timers.pending(), 3u);
  EXPECT_TRUE(timers.Cancel(second));
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(timers.fired(), 2u);
  EXPECT_EQ(timers.cancelled(), 1u);
}

TEST(TimerSetTest, CallbackMayRearm) {
  // The retransmit loop arms the next timeout from inside timer context.
  Engine eng;
  TimerSet timers(eng);
  int fires = 0;
  std::function<void()> rearm = [&] {
    if (++fires < 3) {
      timers.ScheduleAfter(50, rearm);
    }
  };
  timers.ScheduleAfter(50, rearm);
  eng.Run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(eng.now(), 150);
  EXPECT_EQ(timers.pending(), 0u);
}

}  // namespace
}  // namespace genie
