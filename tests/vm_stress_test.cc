// Randomized VM stress: COW sharing, TCOW output protection, pageout
// pressure and reclaim, region churn — interleaved under a seeded PRNG.
// Invariants: data never corrupts, frames conserve, refcounts drain.
#include <map>
#include <random>

#include <gtest/gtest.h>

#include "src/vm/address_space.h"
#include "src/vm/cow.h"
#include "src/vm/io_ref.h"
#include "src/vm/pageout.h"
#include "src/vm/vm.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kBase = 0x10000000;

class VmStressSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmStressSeedTest, RandomOpsPreserveDataAndConserveFrames) {
  std::mt19937_64 rng(GetParam());
  Vm vm(96, kPage);
  PageoutDaemon daemon(vm);
  vm.set_low_memory_reclaimer([&daemon](std::size_t want) { daemon.EvictUntilFree(want); });

  AddressSpace parent(vm, "parent");
  constexpr std::uint64_t kRegionPages = 8;
  parent.CreateRegion(kBase, kRegionPages * kPage);

  // Model of what each byte of the parent's region should contain.
  std::vector<unsigned char> model(kRegionPages * kPage, 0);
  {
    std::vector<std::byte> zero(model.size(), std::byte{0});
    ASSERT_EQ(parent.Write(kBase, zero), AccessResult::kOk);
  }

  std::vector<std::unique_ptr<AddressSpace>> children;
  std::vector<std::pair<AddressSpace*, Vaddr>> child_regions;
  std::vector<IoReference> output_refs;

  std::uniform_int_distribution<int> op_dist(0, 5);
  std::uniform_int_distribution<std::uint64_t> off_dist(0, model.size() - 1);

  for (int step = 0; step < 1200; ++step) {
    switch (op_dist(rng)) {
      case 0: {  // Random write through the parent.
        const std::uint64_t off = off_dist(rng);
        const std::uint64_t len = std::min<std::uint64_t>(model.size() - off, 1 + off_dist(rng) % 6000);
        std::vector<std::byte> data(static_cast<std::size_t>(len));
        for (auto& b : data) {
          b = static_cast<std::byte>(step & 0xFF);
        }
        ASSERT_EQ(parent.Write(kBase + off, data), AccessResult::kOk);
        std::fill(model.begin() + static_cast<long>(off),
                  model.begin() + static_cast<long>(off + len),
                  static_cast<unsigned char>(step & 0xFF));
        break;
      }
      case 1: {  // COW-share into a new child (capped population).
        if (children.size() >= 4) {
          break;
        }
        children.push_back(std::make_unique<AddressSpace>(vm, "child"));
        const CowShareResult r = CowShareRegion(parent, kBase, *children.back());
        child_regions.emplace_back(children.back().get(), r.dst_start);
        break;
      }
      case 2: {  // Reference a range for output, protect it (TCOW arm).
        if (output_refs.size() >= 3) {
          break;
        }
        IoReference ref;
        const std::uint64_t off = (off_dist(rng) / kPage) * kPage;
        const std::uint64_t len = std::min<std::uint64_t>(model.size() - off, 2 * kPage);
        if (len == 0) {
          break;
        }
        ASSERT_EQ(ReferenceRange(parent, kBase + off, len, IoDirection::kOutput, &ref),
                  AccessResult::kOk);
        parent.RemoveWrite(kBase + off, len);
        output_refs.push_back(std::move(ref));
        break;
      }
      case 3: {  // Complete the oldest pending output.
        if (!output_refs.empty()) {
          Unreference(vm, output_refs.front());
          output_refs.erase(output_refs.begin());
        }
        break;
      }
      case 4: {  // Memory pressure sweep.
        daemon.ScanOnce(8);
        break;
      }
      case 5: {  // Verify a random slice of the parent against the model.
        const std::uint64_t off = off_dist(rng);
        const std::uint64_t len =
            std::min<std::uint64_t>(model.size() - off, 1 + off_dist(rng) % 3000);
        std::vector<std::byte> got(static_cast<std::size_t>(len));
        ASSERT_EQ(parent.Read(kBase + off, got), AccessResult::kOk);
        for (std::uint64_t i = 0; i < len; ++i) {
          ASSERT_EQ(static_cast<unsigned char>(got[static_cast<std::size_t>(i)]),
                    model[static_cast<std::size_t>(off + i)])
              << "step " << step << " offset " << off + i;
        }
        break;
      }
    }
    // Frame conservation every step.
    PhysicalMemory& pm = vm.pm();
    ASSERT_EQ(pm.free_frames() + pm.allocated_frames() + pm.zombie_frames(), pm.num_frames())
        << "step " << step;
  }

  // Drain: complete outputs, drop children, verify the parent fully.
  for (IoReference& ref : output_refs) {
    Unreference(vm, ref);
  }
  output_refs.clear();
  children.clear();
  std::vector<std::byte> got(model.size());
  ASSERT_EQ(parent.Read(kBase, got), AccessResult::kOk);
  for (std::size_t i = 0; i < model.size(); i += 113) {
    ASSERT_EQ(static_cast<unsigned char>(got[i]), model[i]) << "final offset " << i;
  }
  EXPECT_EQ(vm.pm().zombie_frames(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmStressSeedTest,
                         ::testing::Values(0x5EEDull, 0xA5A5ull, 0x1234ull, 0xFEEDull,
                                           0xC0DEull));

TEST(VmStressTest, ReclaimDuringFaultNeverCorruptsCowChildren) {
  // A child COW-shares the parent's data; then memory pressure forces
  // reclaim during the parent's subsequent write faults. The child's view
  // must stay frozen.
  std::mt19937_64 rng(0xFACE);
  Vm vm(24, kPage);
  PageoutDaemon daemon(vm);
  vm.set_low_memory_reclaimer([&daemon](std::size_t want) { daemon.EvictUntilFree(want); });

  AddressSpace parent(vm, "parent");
  parent.CreateRegion(kBase, 8 * kPage);
  std::vector<std::byte> original(8 * kPage);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<std::byte>((i / kPage + 1) & 0xFF);
  }
  ASSERT_EQ(parent.Write(kBase, original), AccessResult::kOk);

  AddressSpace child(vm, "child");
  const CowShareResult share = CowShareRegion(parent, kBase, child);
  ASSERT_FALSE(share.physically_copied);

  // Hog the remaining frames so the parent's COW copy-ups need reclaim.
  AddressSpace hog(vm, "hog");
  hog.CreateRegion(0x70000000, 8 * kPage);
  ASSERT_EQ(hog.Write(0x70000000, std::vector<std::byte>(8 * kPage, std::byte{9})),
            AccessResult::kOk);

  for (int page = 0; page < 8; ++page) {
    std::vector<std::byte> junk(kPage, std::byte{0xEE});
    ASSERT_EQ(parent.Write(kBase + page * kPage, junk), AccessResult::kOk) << page;
  }
  // Child still sees the pre-share snapshot, page by page.
  for (int page = 0; page < 8; ++page) {
    std::vector<std::byte> got(kPage);
    ASSERT_EQ(child.Read(share.dst_start + page * kPage, got), AccessResult::kOk);
    ASSERT_EQ(static_cast<unsigned char>(got[0]), page + 1) << page;
  }
  (void)rng;
}

}  // namespace
}  // namespace genie
