// Deterministic multi-tenant soak of the switched fabric: 200 seeds of mixed
// closed/open-loop traffic over a lossy 4-node fabric with ARQ enabled.
// Every seed must deliver exactly once with golden bytes (the workload's
// payload verifier), leave every node's VM quiescently clean, and never
// exhaust the reliable layer's retry budget (giveups == 0 — 1% loss is far
// inside what ARQ absorbs).
//
// Replay one seed with
//   GENIE_FABRIC_SEED=<seed> ./fabric_stress_test
// Sweep the selective-repeat window (CI runs {1, 16}) with
//   GENIE_RELIABLE_WINDOW=<w> ./fabric_stress_test
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/harness/workload.h"
#include "src/mem/fault_plan.h"
#include "src/util/units.h"

namespace genie {
namespace {

constexpr std::uint64_t kFirstSeed = 9000;
constexpr int kSeedCount = 200;

std::uint32_t SoakWindow() {
  static const std::uint32_t window = [] {
    if (const char* env = std::getenv("GENIE_RELIABLE_WINDOW"); env != nullptr) {
      const unsigned long v = std::strtoul(env, nullptr, 0);
      if (v > 0) {
        return static_cast<std::uint32_t>(v);
      }
    }
    return 1u;
  }();
  return window;
}

WorkloadConfig SoakConfig(std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.nodes = 4;
  // Alternate topologies across the sweep so trunk links see loss too.
  cfg.fabric.topology =
      (seed % 2 == 0) ? Fabric::Topology::kStar : Fabric::Topology::kDumbbell;
  cfg.deadline = 20 * kMillisecond;

  ReliableOptions rel;
  rel.arq = true;
  rel.window = SoakWindow();
  rel.seed = seed ^ 0xa5c3a5c3a5c3a5c3ULL;
  rel.watchdog_timeout = 400 * kMillisecond;
  cfg.reliable = rel;

  cfg.endpoint_options.enable_semantics_fallback = true;

  // Closed-loop tenants: one transfer in flight, so the full semantics
  // matrix can ride the lossy fabric with strict per-transfer golden checks.
  TenantClassConfig closed;
  closed.name = "closed";
  closed.tenants = 6;
  closed.transfers_per_tenant = 4;
  closed.min_bytes = 256;
  closed.max_bytes = 6000;
  closed.semantics_mix.assign(kAllSemantics.begin(), kAllSemantics.end());
  closed.max_retries = 4;
  cfg.classes.push_back(closed);

  // Open-loop tenants: several transfers in flight on one channel, where ARQ
  // retransmission can reorder datagrams across posted buffers. One
  // semantics per class — concurrent in-flight transfers on a channel share
  // the receiver's posted-buffer FIFO, so sender and receiver must agree.
  TenantClassConfig open;
  open.name = "open";
  open.tenants = 2;
  open.open_loop = true;
  open.transfers_per_tenant = 10;
  open.mean_interarrival = 300 * kMicrosecond;
  open.max_in_flight = 4;
  open.min_bytes = 512;
  open.max_bytes = 4096;
  open.semantics_mix = {Semantics::kEmulatedCopy};
  cfg.classes.push_back(open);
  return cfg;
}

struct SoakOutcome {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t giveups = 0;
  std::uint64_t link_drops = 0;
  std::uint64_t frames_switched = 0;
  std::vector<std::string> violations;
};

SoakOutcome RunSoak(std::uint64_t seed) {
  SoakOutcome out;
  Engine engine;
  const WorkloadConfig cfg = SoakConfig(seed);
  Workload wl(engine, cfg);

  // GENIE_RUN_REPORT=<prefix>: sample continuous telemetry during the soak
  // and leave "<prefix>.<seed>.json" behind for each replayed seed. The
  // sampler is probe-driven (no events, no RNG), so an instrumented replay
  // keeps the bare run's digest — the determinism assertions below hold
  // with or without the variable set.
  const char* report_prefix = std::getenv("GENIE_RUN_REPORT");
  if (report_prefix != nullptr) {
    Workload::TelemetryOptions topts;
    topts.sampler.period = 500 * kMicrosecond;
    wl.EnableTelemetry(topts);
  }

  // One deterministic fault plan shared by every node: 1% of frames vanish
  // on the wire, a sprinkle are duplicated. Uplink, trunk, and downlink hops
  // all feed the same adapter-level injection point.
  FaultPlan plan(seed ^ 0x4e11ab1e4e11ab1eULL);
  FaultRule drop;
  drop.site = FaultSite::kLinkDrop;
  drop.probability = 0.01;
  plan.AddRule(drop);
  FaultRule dup;
  dup.site = FaultSite::kLinkDuplicate;
  dup.probability = 0.005;
  plan.AddRule(dup);
  for (std::size_t i = 0; i < wl.node_count(); ++i) {
    wl.node(i).AttachFaultPlan(&plan);
  }

  wl.Run();
  if (report_prefix != nullptr) {
    const std::string path =
        std::string(report_prefix) + "." + std::to_string(seed) + ".json";
    std::ofstream report(path);
    if (report) {
      wl.WriteRunReport(report);
    }
  }
  out.violations = wl.violations();

  // Closed-loop accounting is exact: every transfer either completed (and
  // was byte-verified) or exhausted its retries; none may simply vanish.
  // (The deadline is generous — 20 ms for ~1 ms of traffic — so hitting it
  // would itself indicate a stall.)
  for (const TenantStats& t : wl.tenant_stats()) {
    if (t.class_index == 0 && t.completed + t.failed != 4) {
      std::ostringstream msg;
      msg << "seed " << seed << " channel " << t.channel << ": " << t.completed
          << " completed + " << t.failed << " failed != 4 issued";
      out.violations.push_back(msg.str());
    }
    out.completed += t.completed;
    out.failed += t.failed;
  }

  const InvariantReport quiescent = wl.CheckInvariants(/*expect_quiescent=*/true);
  for (const std::string& v : quiescent.violations) {
    out.violations.push_back("seed " + std::to_string(seed) + " quiescent: " + v);
  }

  for (std::size_t i = 0; i < wl.node_count(); ++i) {
    const ReliableDelivery::Stats& rel = wl.node(i).reliable().stats();
    out.retransmits += rel.retransmits;
    out.giveups += rel.giveups;
    out.link_drops += wl.node(i).adapter().link_frames_dropped();
  }
  out.digest = engine.event_digest();
  out.events = engine.events_executed();
  out.frames_switched = wl.fabric().frames_switched();
  return out;
}

TEST(FabricStressTest, LossySoakDeliversExactlyOnceAcrossSeeds) {
  std::uint64_t first = kFirstSeed;
  int count = kSeedCount;
  if (const char* env = std::getenv("GENIE_FABRIC_SEED"); env != nullptr) {
    first = std::strtoull(env, nullptr, 0);
    count = 1;
    std::printf("[fabric-stress] replaying single seed %llu\n",
                static_cast<unsigned long long>(first));
  }

  std::uint64_t total_completed = 0;
  std::uint64_t total_failed = 0;
  std::uint64_t total_retransmits = 0;
  std::uint64_t total_drops = 0;
  std::uint64_t total_switched = 0;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = first + static_cast<std::uint64_t>(i);
    const SoakOutcome out = RunSoak(seed);
    ASSERT_TRUE(out.violations.empty())
        << "replay with GENIE_FABRIC_SEED=" << seed << "\n"
        << [&] {
             std::ostringstream all;
             for (const std::string& v : out.violations) {
               all << "  " << v << "\n";
             }
             return all.str();
           }();
    // 1% loss must never exhaust the ARQ retry budget.
    EXPECT_EQ(out.giveups, 0u) << "seed " << seed;
    total_completed += out.completed;
    total_failed += out.failed;
    total_retransmits += out.retransmits;
    total_drops += out.link_drops;
    total_switched += out.frames_switched;
  }
  std::printf(
      "[fabric-stress] window=%u seeds=%d completed=%llu failed=%llu drops=%llu "
      "retransmits=%llu frames_switched=%llu\n",
      SoakWindow(), count, static_cast<unsigned long long>(total_completed),
      static_cast<unsigned long long>(total_failed),
      static_cast<unsigned long long>(total_drops),
      static_cast<unsigned long long>(total_retransmits),
      static_cast<unsigned long long>(total_switched));

  if (count > 1) {
    // The sweep must exercise the machinery, not just survive it: frames
    // crossed switch links, some were dropped, and ARQ recovered them.
    EXPECT_GT(total_completed, 0u);
    EXPECT_GT(total_drops, 0u);
    EXPECT_GT(total_retransmits, 0u);
    EXPECT_GT(total_switched, 0u);
    // With retries on top of 1% loss, failures should be essentially absent.
    EXPECT_LE(total_failed * 100, total_completed);
  }
}

// A soak seed is only a usable bug report if its whole schedule — arrival
// processes, DRR grants, loss injection, ARQ timers — replays bit-for-bit.
TEST(FabricStressTest, SameSeedReplaysIdenticalSchedule) {
  const SoakOutcome a = RunSoak(kFirstSeed + 7);
  const SoakOutcome b = RunSoak(kFirstSeed + 7);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.link_drops, b.link_drops);
  EXPECT_EQ(a.frames_switched, b.frames_switched);
}

}  // namespace
}  // namespace genie
