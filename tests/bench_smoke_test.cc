// bench_smoke: the tier-1 bench-regression gate (ctest label "bench", run in
// the optimized CI leg only).
//
// Three layers of protection, cheapest first:
//   1. Exact op-count metrics of one end-to-end transfer — deterministic in
//      the simulation, compared bit-for-bit via CheckExactMetrics.
//   2. Least-squares fits of charged per-op latencies over a short length
//      sweep must match the cost model's Table 6 lines — also deterministic.
//   3. Wall-clock throughput floors for the host data plane, set roughly an
//      order of magnitude under measured steady state (BENCH_hostpath.json)
//      so scheduler noise cannot trip them but a reverted fast path will.
//      Skipped under sanitizers, where wall-clock rates are meaningless.
//
// The gate's own failure mode is tested too: a perturbed expectation must
// produce a failing, named report.
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/linear_fit.h"
#include "src/cost/cost_model.h"
#include "src/genie/host_path.h"
#include "src/genie/sys_buffer.h"
#include "src/harness/experiment.h"
#include "src/net/checksum.h"
#include "src/obs/gate.h"
#include "src/obs/metrics.h"
#include "src/vm/address_space.h"
#include "src/vm/vm.h"
#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;
constexpr std::uint64_t kLen = 2 * kPage;

// --- Layer 1: exact op-count gate over one end-to-end transfer ---

// One 8 KiB emulated-copy datagram, early-demux buffering: the oracle values
// are the same ones genie_opcount_test pins down, read back here through the
// metrics registry exactly as CI tooling would.
TEST(BenchSmokeTest, EndToEndOpCountsMatchGate) {
  Rig rig;
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(kLen, 1)), AccessResult::kOk);
  ASSERT_TRUE(rig.Transfer(kSrc, kDst, kLen, Semantics::kEmulatedCopy).ok);

  const MetricsSnapshot tx = rig.sender.metrics().Snapshot();
  const MetricsSnapshot rx = rig.receiver.metrics().Snapshot();

  // Snapshot JSON for post-mortems: scripts/ci.sh prints this file when the
  // optimized ctest leg fails.
  std::ofstream out("bench_smoke_metrics.json");
  out << "{\"sender\": " << tx.ToJson() << ",\n \"receiver\": " << rx.ToJson() << "}\n";
  out.close();

  const MetricExpectation sender_expected[] = {
      {"ep1.outputs", 1},
      {"ep1.op.Reference.count", 1},
      {"ep1.op.Reference.bytes", kLen},
      {"ep1.op.Unreference.count", 1},
      {"ep1.op.Read only.count", 1},
      {"ep1.op.Sender kernel fixed.count", 1},
      {"ep1.op.Copyin.count", 0},  // Emulated copy moves no host bytes.
      {"ep1.failed_outputs", 0},
      {"nic.frames_sent", 1},
      {"nic.rx_crc_errors", 0},
  };
  const GateResult tx_gate = CheckExactMetrics(tx, sender_expected);
  EXPECT_TRUE(tx_gate.ok()) << tx_gate.ToString();

  const MetricExpectation receiver_expected[] = {
      {"ep1.inputs", 1},
      {"ep1.op.Swap.count", 1},
      {"ep1.op.Swap.bytes", kLen},
      {"ep1.op.Overlay allocate.count", 1},
      {"ep1.op.Receiver kernel fixed.count", 1},
      {"ep1.op.Copyout.count", 0},
      {"ep1.pages_swapped", 2},
      {"ep1.bytes_swapped", kLen},
      {"ep1.crc_failures", 0},
      {"nic.frames_received", 1},
      {"nic.frames_dropped_no_buffer", 0},
  };
  const GateResult rx_gate = CheckExactMetrics(rx, receiver_expected);
  EXPECT_TRUE(rx_gate.ok()) << rx_gate.ToString();
}

// The gate itself must fail loudly when an op count drifts: perturb one
// expectation and require a named, complete failure report.
TEST(BenchSmokeTest, GateDetectsPerturbedOpCounts) {
  Rig rig;
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(kLen, 1)), AccessResult::kOk);
  ASSERT_TRUE(rig.Transfer(kSrc, kDst, kLen, Semantics::kEmulatedCopy).ok);

  const MetricsSnapshot rx = rig.receiver.metrics().Snapshot();
  const MetricExpectation perturbed[] = {
      {"ep1.op.Swap.count", 2},      // actually 1
      {"ep1.pages_swapped", 2},      // correct — must NOT be reported
      {"ep1.op.Copyout.count", 1},   // actually 0 (absent)
  };
  const GateResult gate = CheckExactMetrics(rx, perturbed);
  ASSERT_FALSE(gate.ok());
  EXPECT_EQ(gate.failures.size(), 2u);
  EXPECT_NE(gate.ToString().find("ep1.op.Swap.count"), std::string::npos);
  EXPECT_NE(gate.ToString().find("expected 2, got 1"), std::string::npos);
  EXPECT_NE(gate.ToString().find("ep1.op.Copyout.count"), std::string::npos);
  EXPECT_EQ(gate.ToString().find("pages_swapped"), std::string::npos);
}

// --- Layer 2: short Table 6 fit (simulated time, deterministic) ---

// A cut-down bench_table6_primitive_ops: sweep a few lengths, fit the charged
// latencies, compare against the cost model's line. Deterministic, so the
// tolerance only covers the fit's own discretization (intercept clamping,
// page rounding), not run-to-run noise.
TEST(BenchSmokeTest, Table6FitsMatchCostModel) {
  ExperimentConfig config;
  config.collect_op_samples = true;
  config.repetitions = 1;
  const std::vector<std::uint64_t> lengths = {4096, 16384, 32768, 61440};

  const CostModel model(MachineProfile::MicronP166());
  struct FitCase {
    Semantics sem;
    OpKind op;
  };
  const FitCase cases[] = {
      {Semantics::kCopy, OpKind::kCopyin},
      {Semantics::kCopy, OpKind::kCopyout},
      {Semantics::kEmulatedCopy, OpKind::kSwap},
      {Semantics::kShare, OpKind::kWire},
  };
  for (const FitCase& fc : cases) {
    SCOPED_TRACE(std::string(SemanticsName(fc.sem)) + " / " + std::string(OpKindName(fc.op)));
    Experiment experiment(config);
    const RunResult run = experiment.Run(fc.sem, lengths);
    const auto it = run.op_samples.find(fc.op);
    ASSERT_NE(it, run.op_samples.end());
    std::vector<std::pair<double, double>> points;
    for (const auto& [bytes, us] : it->second) {
      points.emplace_back(static_cast<double>(bytes), us);
    }
    ASSERT_GE(points.size(), lengths.size());
    const LinearFit fit = FitLine(points);
    const OpCostLine line = model.Line(fc.op);
    EXPECT_NEAR(fit.slope, line.slope_us_per_byte, 0.1 * line.slope_us_per_byte);
    EXPECT_GT(fit.r2, 0.98);
  }
}

// --- Layer 3: wall-clock throughput floors (optimized builds only) ---

volatile std::uint16_t g_sink;

template <typename Fn>
double MeasureMbps(std::uint64_t bytes, Fn&& body) {
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < 3; ++i) {
    body();  // warm-up
  }
  std::uint64_t iters = 0;
  const Clock::time_point start = Clock::now();
  Clock::time_point now = start;
  do {
    body();
    ++iters;
    if ((iters & 7) == 0) {
      now = Clock::now();
    }
  } while (now - start < std::chrono::milliseconds(80) || iters < 8);
  now = Clock::now();
  const double seconds = std::chrono::duration<double>(now - start).count();
  return static_cast<double>(bytes) * static_cast<double>(iters) / seconds / 1e6;
}

TEST(BenchSmokeTest, HostPathThroughputFloors) {
#ifdef GENIE_ASAN_BUILD
  GTEST_SKIP() << "wall-clock throughput floors are meaningless under sanitizers";
#endif
  constexpr std::uint64_t kTransfer = 64 * 1024;
  std::vector<std::byte> payload(kTransfer);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>((i * 131 + 17) & 0xFF);
  }
  std::vector<std::byte> dst(kTransfer);

  // Floors sit ~8x under the steady-state numbers in BENCH_hostpath.json:
  // loose enough that a loaded CI machine passes, tight enough that a revert
  // to the seed's byte-at-a-time data plane (copy_semantics_64k 1093 MB/s)
  // or an accidental -O0 build fails.
  const double memcpy_mbps = MeasureMbps(kTransfer, [&] {
    std::memcpy(dst.data(), payload.data(), payload.size());
    g_sink = static_cast<std::uint16_t>(dst[0]);
  });
  const double checksum_mbps =
      MeasureMbps(kTransfer, [&] { g_sink = ChecksumOf(std::span<const std::byte>(payload)); });

  Vm vm(512, kPage);
  AddressSpace tx(vm, "sender-app");
  AddressSpace rx(vm, "receiver-app");
  tx.CreateRegion(0x10000000, kTransfer);
  rx.CreateRegion(0x20000000, kTransfer);
  (void)tx.Write(0x10000000, payload);
  (void)rx.Write(0x20000000, payload);
  const double copy_sem_mbps = MeasureMbps(kTransfer, [&] {
    SysBuffer sysbuf = AllocateSysBuffer(vm.pm(), 0, kTransfer);
    InternetChecksum sum;
    (void)CopyinToIoVec(tx, 0x10000000, kTransfer, sysbuf.iov, &sum);
    const std::uint16_t header = sum.value();
    const std::uint16_t verify = ChecksumOfIoVec(vm.pm(), sysbuf.iov, kTransfer);
    g_sink = static_cast<std::uint16_t>(header ^ verify);
    (void)DisposeCopyOutIntoApp(rx, 0x20000000, kTransfer, sysbuf.iov);
    FreeSysBuffer(vm.pm(), sysbuf);
  });

  for (const GateResult& gate :
       {CheckThroughputFloor("memcpy_64k", memcpy_mbps, 4000.0),
        CheckThroughputFloor("checksum_64k", checksum_mbps, 3000.0),
        CheckThroughputFloor("copy_semantics_64k", copy_sem_mbps, 1200.0)}) {
    EXPECT_TRUE(gate.ok()) << gate.ToString();
  }
}

// Parallel-mode tax gate: the single-threaded fused rate through the
// parallel harness (RunParallelFused at 1 thread: allocation-point sysbufs,
// one worker thread) must stay within a small factor of the same work done
// as a plain direct loop. Guards against the parallel plumbing (arena
// bookkeeping, the MT allocator entry points, thread spawn) quietly taxing
// the path everyone measures single-threaded.
TEST(BenchSmokeTest, ParallelModeOffEquivalenceFloor) {
#if defined(GENIE_ASAN_BUILD) || defined(GENIE_TSAN_BUILD)
  GTEST_SKIP() << "wall-clock throughput floors are meaningless under sanitizers";
#else
  constexpr std::uint64_t kTransfer = 64 * 1024;
  constexpr std::size_t kOps = 400;

  // Direct loop: same per-op work RunParallelFused's worker does (pattern
  // copyin with fused checksum into a fresh contiguous sysbuf), no threads,
  // no allocation point — the "parallel mode off" reference.
  std::vector<std::byte> pattern(kTransfer);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::byte>((i * 37 + 11) & 0xFF);
  }
  PhysicalMemory direct_pm(64, kPage);
  const double direct_mbps = MeasureMbps(kTransfer * kOps, [&] {
    for (std::size_t op = 0; op < kOps; ++op) {
      SysBuffer buf;
      ASSERT_TRUE(TryAllocateSysBuffer(direct_pm, 0, kTransfer, &buf));
      InternetChecksum sum;
      sum.UpdateWithCopy(pattern,
                         direct_pm.DataRun(buf.iov.segments[0].frame, 0, kTransfer).data());
      g_sink = sum.value();
      FreeSysBuffer(direct_pm, buf);
    }
  });

  // Harness at 1 thread, pool churn off: same op count per measurement.
  ParallelFusedConfig cfg;
  cfg.threads = 1;
  cfg.ops_per_thread = kOps;
  cfg.bytes_per_op = kTransfer;
  cfg.arena_frames = 64;
  cfg.seed = 11;
  PhysicalMemory mt_pm(cfg.arena_frames * 3 + 16, kPage);
  const double harness_mbps =
      MeasureMbps(kTransfer * kOps, [&] { (void)RunParallelFused(mt_pm, cfg); });

  // The harness pays one thread spawn+join per measurement body (~10 us)
  // against ~25 MB of copying, plus the arena bookkeeping; allow it to run
  // at half the direct rate before calling it a regression. In practice the
  // two are within a few percent — the floor is slack for loaded CI boxes.
  const GateResult gate =
      CheckThroughputFloor("hostpath_mt_1t_vs_direct", harness_mbps, 0.5 * direct_mbps);
  EXPECT_TRUE(gate.ok()) << gate.ToString() << " (direct=" << direct_mbps
                         << " MB/s, harness=" << harness_mbps << " MB/s)";
#endif
}

}  // namespace
}  // namespace genie
