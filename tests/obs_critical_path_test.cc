// Critical-path latency attribution: causal-graph reconstruction from a
// flow-stamped trace, deterministic per-stage breakdowns, and the golden
// property that loss recovery charges to "retransmit" while "wire" stays
// identical to the lossless run. The scenario drives all 8 semantics with
// ARQ on, lossless and with a deterministic first-frame drop per transfer.
#include "src/obs/critical_path.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/mem/fault_plan.h"
#include "src/net/fabric.h"
#include "src/obs/causal_graph.h"
#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrcBase = 0x20000000;
constexpr Vaddr kDstBase = 0x30000000;
constexpr std::uint64_t kLen = 3 * kPage + 100;

struct ScenarioResult {
  std::vector<FlowBreakdown> flows;
  std::string json;
  std::string table;
};

// Runs one transfer per semantics under ARQ (no jitter: every timing exact).
// With `lossy`, a single-shot link-drop rule swallows each transfer's first
// frame, forcing exactly one timeout retransmission per flow.
ScenarioResult RunScenario(bool lossy, TraceLog* trace_out = nullptr) {
  TraceLog local;
  TraceLog& trace = trace_out != nullptr ? *trace_out : local;
  trace.Clear();
  Rig rig;
  rig.sender.set_trace(&trace);
  rig.receiver.set_trace(&trace);
  ReliableOptions opts;
  opts.arq = true;
  opts.initial_timeout = 1 * kMillisecond;
  opts.jitter_frac = 0.0;
  rig.sender.EnableReliableDelivery(opts);

  FaultPlan plan(1);
  if (lossy) {
    rig.sender.AttachFaultPlan(&plan);
  }

  for (std::size_t i = 0; i < kAllSemantics.size(); ++i) {
    const Semantics sem = kAllSemantics[i];
    const Vaddr src_region = kSrcBase + static_cast<Vaddr>(i) * 8 * kPage;
    const Vaddr dst_region = kDstBase + static_cast<Vaddr>(i) * 8 * kPage;
    rig.tx_app.CreateRegion(src_region, 8 * kPage,
                            IsSystemAllocated(sem) ? RegionState::kMovedIn
                                                   : RegionState::kUnmovable);
    Vaddr dst = 0;
    if (IsApplicationAllocated(sem)) {
      rig.rx_app.CreateRegion(dst_region, 8 * kPage);
      dst = dst_region;
    }
    const auto payload = TestPattern(kLen, static_cast<unsigned char>(i + 1));
    GENIE_CHECK(rig.tx_app.Write(src_region, payload) == AccessResult::kOk);

    if (lossy) {
      FaultRule rule;
      rule.site = FaultSite::kLinkDrop;
      rule.nth = plan.site_ops(FaultSite::kLinkDrop) + 1;
      rule.max_fires = 1;
      plan.AddRule(rule);
    }
    const InputResult r = rig.Transfer(src_region, dst, kLen, sem);
    GENIE_CHECK(r.ok) << SemanticsName(sem) << (lossy ? " lossy" : " lossless");
  }
  if (lossy) {
    rig.sender.AttachFaultPlan(nullptr);
  }
  rig.sender.set_trace(nullptr);
  rig.receiver.set_trace(nullptr);

  ScenarioResult out;
  out.flows = AnalyzeTrace(trace);
  std::ostringstream js;
  WriteBreakdownJson(js, out.flows);
  out.json = js.str();
  std::ostringstream tb;
  WriteBreakdownTable(tb, out.flows);
  out.table = tb.str();
  return out;
}

TEST(CriticalPathTest, AnalyzerJsonIsByteIdenticalAcrossRuns) {
  // The golden determinism contract: re-running the identical deterministic
  // schedule reproduces the analyzer document byte for byte — lossless and
  // with retransmissions in the event mix.
  const ScenarioResult lossless_a = RunScenario(false);
  const ScenarioResult lossless_b = RunScenario(false);
  EXPECT_EQ(lossless_a.json, lossless_b.json);
  EXPECT_FALSE(lossless_a.json.empty());

  const ScenarioResult lossy_a = RunScenario(true);
  const ScenarioResult lossy_b = RunScenario(true);
  EXPECT_EQ(lossy_a.json, lossy_b.json);
  EXPECT_NE(lossy_a.json, lossless_a.json);
}

TEST(CriticalPathTest, StageTotalsSumExactlyToMakespan) {
  // Attribution is a partition of the flow's time range: the per-stage
  // totals reproduce the traced end-to-end latency exactly (the acceptance
  // bound is 1%; the sweep construction makes it 0).
  for (const bool lossy : {false, true}) {
    const ScenarioResult run = RunScenario(lossy);
    ASSERT_EQ(run.flows.size(), kAllSemantics.size());
    for (const FlowBreakdown& f : run.flows) {
      SimTime total = 0;
      for (const SimTime ns : f.stage_ns) {
        total += ns;
      }
      EXPECT_EQ(total, f.makespan) << "flow " << f.flow << " (" << f.semantics << ")";
      EXPECT_GT(f.makespan, 0);
    }
  }
}

TEST(CriticalPathTest, RetransmissionChargesToRetransmitNotWire) {
  const ScenarioResult lossless = RunScenario(false);
  const ScenarioResult lossy = RunScenario(true);
  ASSERT_EQ(lossless.flows.size(), kAllSemantics.size());
  ASSERT_EQ(lossy.flows.size(), kAllSemantics.size());

  for (std::size_t i = 0; i < kAllSemantics.size(); ++i) {
    const FlowBreakdown& clean = lossless.flows[i];
    const FlowBreakdown& lost = lossy.flows[i];
    ASSERT_EQ(clean.semantics, SemanticsName(kAllSemantics[i]));
    ASSERT_EQ(lost.semantics, clean.semantics);

    // The dropped first attempt and its timed-out ack wait are loss recovery:
    // all the extra latency lands under "retransmit"...
    EXPECT_EQ(clean.stage(Stage::kRetransmit), 0) << clean.semantics;
    EXPECT_GT(lost.stage(Stage::kRetransmit), 0) << lost.semantics;
    EXPECT_GT(lost.makespan, clean.makespan) << lost.semantics;
    // ...while "wire" (one real delivery's occupancy) is identical to the
    // lossless run: same frame, same link rate.
    EXPECT_EQ(lost.stage(Stage::kWire), clean.stage(Stage::kWire)) << lost.semantics;
    EXPECT_GT(clean.stage(Stage::kWire), 0) << clean.semantics;
    // ARQ was genuinely on in both: the final ack round trip is visible.
    EXPECT_GT(clean.stage(Stage::kAckWait), 0) << clean.semantics;
    // And the host stages of the taxonomy are present on both sides.
    EXPECT_GT(clean.stage(Stage::kPrepare), 0) << clean.semantics;
    EXPECT_GT(clean.stage(Stage::kDispose), 0) << clean.semantics;
  }
}

TEST(CriticalPathTest, CausalGraphJoinsReceiverPrepareByLabel) {
  TraceLog trace;
  const ScenarioResult run = RunScenario(false, &trace);
  const std::vector<std::uint64_t> flows = Flows(trace);
  ASSERT_EQ(flows.size(), kAllSemantics.size());
  // Ascending, deterministic enumeration.
  for (std::size_t i = 1; i < flows.size(); ++i) {
    EXPECT_LT(flows[i - 1], flows[i]);
  }

  const CausalGraph graph = BuildCausalGraph(trace, flows[0]);
  EXPECT_EQ(graph.flow, flows[0]);
  EXPECT_EQ(graph.semantics, SemanticsName(kAllSemantics[0]));
  EXPECT_EQ(graph.label.substr(0, 4), "out#");
  // The receiver's prepare happened before the sender existed, so it carries
  // flow 0 — the label join must still pull it into the graph.
  bool joined_prepare = false;
  for (const CausalEvent& e : graph.events) {
    if (e.label_joined && e.name.find(".prepare") != std::string::npos) {
      joined_prepare = true;
      EXPECT_EQ(e.name.substr(0, 3), "in#");
    }
    EXPECT_GE(e.start, graph.start());
    EXPECT_LE(e.end, graph.end());
  }
  EXPECT_TRUE(joined_prepare);
  EXPECT_EQ(graph.makespan(), run.flows[0].makespan);
}

// Windowed-mode scenario: `kBurst` concurrent copy-semantics transfers on
// one channel under a selective-repeat window. With `lossy`, one single-shot
// link-drop rule swallows the second wire frame, forcing exactly one timeout
// retransmission in the burst.
constexpr int kBurst = 4;

ScenarioResult RunWindowedScenario(std::uint32_t window, bool lossy) {
  TraceLog trace;
  Rig rig;
  rig.sender.set_trace(&trace);
  rig.receiver.set_trace(&trace);
  ReliableOptions opts;
  opts.arq = true;
  opts.window = window;
  opts.initial_timeout = 1 * kMillisecond;
  opts.jitter_frac = 0.0;
  rig.sender.EnableReliableDelivery(opts);
  rig.receiver.EnableReliableDelivery(opts);

  FaultPlan plan(1);
  if (lossy) {
    rig.sender.AttachFaultPlan(&plan);
    FaultRule rule;
    rule.site = FaultSite::kLinkDrop;
    rule.nth = 2;
    rule.max_fires = 1;
    plan.AddRule(rule);
  }

  std::vector<InputResult> results(kBurst);
  auto input_driver = [](Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t n,
                         InputResult* out) -> Task<void> {
    *out = co_await ep.Input(app, va, n, Semantics::kCopy);
  };
  for (int i = 0; i < kBurst; ++i) {
    const Vaddr src = kSrcBase + static_cast<Vaddr>(i) * 8 * kPage;
    const Vaddr dst = kDstBase + static_cast<Vaddr>(i) * 8 * kPage;
    rig.tx_app.CreateRegion(src, 8 * kPage);
    rig.rx_app.CreateRegion(dst, 8 * kPage);
    GENIE_CHECK(rig.tx_app.Write(src, TestPattern(kLen, static_cast<unsigned char>(i + 1))) ==
                AccessResult::kOk);
    std::move(input_driver(rig.rx_ep, rig.rx_app, dst, kLen, &results[i])).Detach();
    std::move(rig.tx_ep.Output(rig.tx_app, src, kLen, Semantics::kCopy)).Detach();
  }
  rig.engine.Run();
  for (int i = 0; i < kBurst; ++i) {
    GENIE_CHECK(results[i].ok) << "windowed transfer " << i;
  }
  if (lossy) {
    rig.sender.AttachFaultPlan(nullptr);
  }
  rig.sender.set_trace(nullptr);
  rig.receiver.set_trace(nullptr);

  ScenarioResult out;
  out.flows = AnalyzeTrace(trace);
  std::ostringstream js;
  WriteBreakdownJson(js, out.flows);
  out.json = js.str();
  std::ostringstream tb;
  WriteBreakdownTable(tb, out.flows);
  out.table = tb.str();
  return out;
}

TEST(CriticalPathTest, WindowedStageTotalsSumExactlyToMakespan) {
  // The partition property holds under pipelined acks, SACK trains, window
  // stalls, and per-entry retransmissions just as under stop-and-wait.
  for (const bool lossy : {false, true}) {
    for (const std::uint32_t window : {2u, 8u}) {
      const ScenarioResult run = RunWindowedScenario(window, lossy);
      ASSERT_EQ(run.flows.size(), static_cast<std::size_t>(kBurst));
      for (const FlowBreakdown& f : run.flows) {
        SimTime total = 0;
        for (const SimTime ns : f.stage_ns) {
          total += ns;
        }
        EXPECT_EQ(total, f.makespan)
            << "flow " << f.flow << " window " << window << (lossy ? " lossy" : "");
        EXPECT_GT(f.makespan, 0);
      }
    }
  }
}

TEST(CriticalPathTest, WindowedJsonIsByteIdenticalAcrossRuns) {
  const ScenarioResult a = RunWindowedScenario(8, true);
  const ScenarioResult b = RunWindowedScenario(8, true);
  EXPECT_EQ(a.json, b.json);
  EXPECT_FALSE(a.json.empty());
  EXPECT_NE(a.json.find("\"window_stall\""), std::string::npos);
}

TEST(CriticalPathTest, WindowStallChargedWhenWindowSaturates) {
  // A window of 2 cannot admit a burst of 4 at once: later transfers park in
  // admission and their stall time is attributed to window_stall. A window
  // wide enough for the whole burst never stalls.
  const ScenarioResult narrow = RunWindowedScenario(2, false);
  SimTime stalled = 0;
  for (const FlowBreakdown& f : narrow.flows) {
    stalled += f.stage(Stage::kWindowStall);
    EXPECT_EQ(f.stage(Stage::kRetransmit), 0) << f.flow;
  }
  EXPECT_GT(stalled, 0);

  const ScenarioResult wide = RunWindowedScenario(8, false);
  for (const FlowBreakdown& f : wide.flows) {
    EXPECT_EQ(f.stage(Stage::kWindowStall), 0) << f.flow;
    EXPECT_EQ(f.stage(Stage::kRetransmit), 0) << f.flow;
  }
}

TEST(CriticalPathTest, WindowedRetransmissionChargesToRetransmit) {
  // One frame of the burst is dropped once: exactly one flow pays a timeout
  // retransmission, charged to "retransmit"; ack pipelining keeps every
  // other flow's breakdown free of it.
  const ScenarioResult lossy = RunWindowedScenario(8, true);
  int flows_with_retransmit = 0;
  for (const FlowBreakdown& f : lossy.flows) {
    if (f.stage(Stage::kRetransmit) > 0) {
      ++flows_with_retransmit;
      // The retransmitted flow's recovery dominates its makespan: the 1 ms
      // timeout dwarfs the clean path.
      EXPECT_GT(f.stage(Stage::kRetransmit), f.stage(Stage::kWire));
    }
    EXPECT_GT(f.stage(Stage::kWire), 0) << f.flow;
  }
  EXPECT_EQ(flows_with_retransmit, 1);
}

// Fabric scenario: three copy transfers incast onto node 0's egress link of
// a 4-node star. `contended` launches them concurrently (the second and
// third serialize behind the first in DRR arbitration); otherwise they run
// back-to-back and never wait for a grant.
ScenarioResult RunFabricScenario(bool contended) {
  TraceLog trace;
  Engine engine;
  Fabric fabric(engine, Fabric::Config{Fabric::Topology::kStar, 4096});
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<AddressSpace*> apps;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<Node>(engine, "n" + std::to_string(i),
                                           Node::Config{}));
    fabric.Attach(nodes.back()->adapter(), 0);
    apps.push_back(&nodes.back()->CreateProcess("app"));
    nodes.back()->set_trace(&trace);
  }

  constexpr int kTransfers = 3;
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  std::vector<InputResult> results(kTransfers);
  auto input_driver = [](Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t n,
                         InputResult* out) -> Task<void> {
    *out = co_await ep.Input(app, va, n, Semantics::kCopy);
  };
  for (int t = 0; t < kTransfers; ++t) {
    const std::size_t from = static_cast<std::size_t>(t) + 1;
    const std::uint64_t channel = static_cast<std::uint64_t>(t) + 1;
    endpoints.push_back(std::make_unique<Endpoint>(*nodes[from], channel));
    Endpoint& tx_ep = *endpoints.back();
    endpoints.push_back(std::make_unique<Endpoint>(*nodes[0], channel));
    Endpoint& rx_ep = *endpoints.back();
    fabric.OpenChannel(channel, nodes[from]->adapter(), nodes[0]->adapter());

    const Vaddr src = kSrcBase;
    const Vaddr dst = kDstBase + static_cast<Vaddr>(t) * 8 * kPage;
    apps[from]->CreateRegion(src, 8 * kPage);
    apps[0]->CreateRegion(dst, 8 * kPage);
    GENIE_CHECK(apps[from]->Write(src, TestPattern(kLen, static_cast<unsigned char>(t + 1))) ==
                AccessResult::kOk);
    std::move(input_driver(rx_ep, *apps[0], dst, kLen, &results[t])).Detach();
    std::move(tx_ep.Output(*apps[from], src, kLen, Semantics::kCopy)).Detach();
    if (!contended) {
      engine.Run();
    }
  }
  if (contended) {
    engine.Run();
  }
  for (int t = 0; t < kTransfers; ++t) {
    GENIE_CHECK(results[t].ok) << "fabric transfer " << t;
  }
  for (auto& node : nodes) {
    node->set_trace(nullptr);
  }

  ScenarioResult out;
  out.flows = AnalyzeTrace(trace);
  std::ostringstream js;
  WriteBreakdownJson(js, out.flows);
  out.json = js.str();
  std::ostringstream tb;
  WriteBreakdownTable(tb, out.flows);
  out.table = tb.str();
  return out;
}

TEST(CriticalPathTest, FabricStageTotalsSumExactlyToMakespan) {
  // The partition property survives the switch hops: arbitration wait is a
  // first-class stage, so the per-stage totals still reproduce the traced
  // makespan exactly for every flow crossing the fabric.
  for (const bool contended : {false, true}) {
    const ScenarioResult run = RunFabricScenario(contended);
    ASSERT_EQ(run.flows.size(), 3u) << (contended ? "contended" : "serial");
    for (const FlowBreakdown& f : run.flows) {
      SimTime total = 0;
      for (const SimTime ns : f.stage_ns) {
        total += ns;
      }
      EXPECT_EQ(total, f.makespan)
          << "flow " << f.flow << (contended ? " contended" : " serial");
      EXPECT_GT(f.makespan, 0);
    }
  }
}

TEST(CriticalPathTest, FabricContentionChargesToFabricWait) {
  // Serialized transfers never wait for a grant; a concurrent incast makes
  // the later flows' arbitration time visible under "fabric_wait" and
  // nowhere else (wire stays one frame's occupancy either way).
  const ScenarioResult serial = RunFabricScenario(false);
  for (const FlowBreakdown& f : serial.flows) {
    EXPECT_EQ(f.stage(Stage::kFabricWait), 0) << f.flow;
    EXPECT_GT(f.stage(Stage::kWire), 0) << f.flow;
  }

  const ScenarioResult contended = RunFabricScenario(true);
  SimTime waited = 0;
  for (const FlowBreakdown& f : contended.flows) {
    waited += f.stage(Stage::kFabricWait);
    EXPECT_EQ(f.stage(Stage::kWire), serial.flows.front().stage(Stage::kWire)) << f.flow;
  }
  // Two of the three flows queued behind the first's ~740 us frame.
  EXPECT_GT(waited, 0);
}

TEST(CriticalPathTest, FabricJsonIsByteIdenticalAcrossRuns) {
  const ScenarioResult a = RunFabricScenario(true);
  const ScenarioResult b = RunFabricScenario(true);
  EXPECT_EQ(a.json, b.json);
  EXPECT_FALSE(a.json.empty());
  EXPECT_NE(a.json.find("\"fabric_wait\""), std::string::npos);
}

TEST(CriticalPathTest, BreakdownTableGroupsBySemantics) {
  const ScenarioResult run = RunScenario(false);
  // One row per semantics plus a header naming every stage column.
  for (const Semantics sem : kAllSemantics) {
    EXPECT_NE(run.table.find(SemanticsName(sem)), std::string::npos) << run.table;
  }
  for (const char* stage : {"prepare", "wire", "ack_wait", "retransmit", "dispose"}) {
    EXPECT_NE(run.table.find(stage), std::string::npos) << run.table;
  }
}

}  // namespace
}  // namespace genie
