#include "src/util/stats.h"

#include <array>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace genie {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_EQ(Mean({}), 0.0); }

TEST(StatsTest, MeanOfSingle) {
  const std::array<double, 1> xs = {42.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 42.0);
}

TEST(StatsTest, MeanOfSeveral) {
  const std::array<double, 4> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
}

TEST(StatsTest, StdDevOfConstantIsZero) {
  const std::array<double, 3> xs = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(StdDev(xs), 0.0);
}

TEST(StatsTest, StdDevKnownValue) {
  const std::array<double, 4> xs = {2.0, 4.0, 4.0, 6.0};
  // Population stddev: mean 4, squared devs {4,0,0,4}, variance 2.
  EXPECT_DOUBLE_EQ(StdDev(xs), std::sqrt(2.0));
}

TEST(StatsTest, GeometricMeanKnownValue) {
  const std::array<double, 2> xs = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(GeometricMean(xs), 2.0);
}

TEST(StatsTest, GeometricMeanSingle) {
  const std::array<double, 1> xs = {7.5};
  EXPECT_DOUBLE_EQ(GeometricMean(xs), 7.5);
}

TEST(StatsTest, MinMax) {
  const std::array<double, 5> xs = {3.0, -1.0, 7.0, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 7.0);
}

TEST(StatsTest, PercentileEndpoints) {
  const std::array<double, 4> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::array<double, 2> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 5.0);
}

TEST(StatsTest, PercentileUnsortedInput) {
  const std::array<double, 3> xs = {30.0, 10.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 20.0);
}

TEST(StatsTest, PercentileSingleSample) {
  const std::array<double, 1> xs = {42.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 42.0);
}

TEST(StatsTest, PercentileWithDuplicates) {
  const std::array<double, 5> xs = {5.0, 5.0, 5.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 9.0);
}

TEST(StatsTest, PercentileIsMonotonicInP) {
  const std::array<double, 6> xs = {1.0, 4.0, 4.5, 9.0, 16.0, 25.0};
  double prev = Percentile(xs, 0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = Percentile(xs, p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST(RunningStatsTest, Empty) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

TEST(RunningStatsTest, TracksMeanMinMax) {
  RunningStats rs;
  rs.Add(2.0);
  rs.Add(8.0);
  rs.Add(5.0);
  EXPECT_EQ(rs.count(), 3u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 8.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 15.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats rs;
  rs.Add(-3.0);
  rs.Add(-7.0);
  EXPECT_DOUBLE_EQ(rs.min(), -7.0);
  EXPECT_DOUBLE_EQ(rs.max(), -3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), -5.0);
}

}  // namespace
}  // namespace genie
