// Crash-stop node failures, epoch-fenced recovery, and partition healing.
//
// The scenarios here pin the recovery state machine end to end:
//   * a sender crash mid-frame resolves the in-flight output as
//     IoStatus::kPeerCrashed while the bytes already on the wire still land
//     exactly once at the receiver;
//   * a receiver crash silently swallows retransmits until restart, after
//     which the stale-epoch fence bounces the sender into an abort + resync
//     handshake, and the next transfer flows under the new incarnation;
//   * crashed nodes fail new I/O fast without touching the VM, and the first
//     post-restart contact performs epoch discovery (fence, resync, resume);
//   * seeded crash injection (FaultSite::kNodeCrash) crash-stops and restarts
//     a node on schedule, deterministically;
//   * a dumbbell trunk partition that heals inside the ARQ retry budget
//     completes every transfer exactly once, and one that outlasts the budget
//     surfaces kGiveUp / watchdog cancels — never silent loss — with every
//     node quiescently clean afterwards.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/workload.h"
#include "src/mem/fault_plan.h"
#include "src/util/units.h"
#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint64_t kPage = 4096;
// One maximal-ish AAL5 frame: ~3.67 ms of wire time on MicronP166, so a
// crash scheduled at 2 ms lands mid-frame for any plausible prepare cost.
constexpr std::uint64_t kBigLen = 60 * 1024;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;

ReliableOptions CrashArq() {
  ReliableOptions opts;
  opts.arq = true;
  opts.jitter_frac = 0.0;  // deterministic retransmit timeline
  opts.initial_timeout = 2 * kMillisecond;
  opts.max_timeout = 8 * kMillisecond;
  return opts;
}

struct CrashRig : Rig {
  CrashRig() : Rig() {
    sender.EnableReliableDelivery(CrashArq());
    receiver.EnableReliableDelivery(CrashArq());
    tx_app.CreateRegion(kSrc, 16 * kPage, RegionState::kUnmovable);
    rx_app.CreateRegion(kDst, 16 * kPage);
  }

  void WritePattern(std::uint64_t len, unsigned char seed) {
    const std::vector<std::byte> payload = TestPattern(len, seed);
    GENIE_CHECK(tx_app.Write(kSrc, payload) == AccessResult::kOk);
  }
};

TEST(CrashRecoveryTest, SenderCrashMidFrameFailsOutputOnceAndRestartResumes) {
  CrashRig rig;
  rig.WritePattern(kBigLen, 3);
  // The frame is on the wire well before 2 ms and still streaming after it.
  rig.engine.ScheduleAt(2 * kMillisecond, [&] { rig.sender.Crash(); });

  const InputResult first = rig.Transfer(kSrc, kDst, kBigLen, Semantics::kEmulatedCopy);

  // The incarnation died: the output is reported crashed exactly once...
  EXPECT_TRUE(rig.sender.crashed());
  EXPECT_EQ(rig.sender.epoch(), 2u);
  EXPECT_EQ(rig.sender.crashes(), 1u);
  EXPECT_EQ(rig.tx_ep.stats().failed_outputs, 1u);
  EXPECT_EQ(rig.sender.reliable().stats().peer_crash_aborts, 1u);
  // ...but the bytes the DMA engine had already committed to the wire reach
  // the live receiver exactly once, with golden payload.
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(rig.ReadBack(kDst, kBigLen), TestPattern(kBigLen, 3));

  // New I/O on the dead incarnation fails fast, without touching the VM.
  std::move(rig.tx_ep.Output(rig.tx_app, kSrc, kPage, Semantics::kEmulatedCopy)).Detach();
  rig.engine.Run();
  EXPECT_EQ(rig.tx_ep.stats().failed_outputs, 2u);
  rig.ExpectQuiescent();

  // Restart: same epoch (bumped at crash time), traffic flows again. The
  // receiver sees src_epoch 2 > 1 and advances its dedup floor.
  rig.sender.Restart();
  EXPECT_FALSE(rig.sender.crashed());
  rig.WritePattern(kBigLen, 4);
  const InputResult second = rig.Transfer(kSrc, kDst, kBigLen, Semantics::kEmulatedCopy);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(rig.ReadBack(kDst, kBigLen), TestPattern(kBigLen, 4));
  EXPECT_EQ(rig.tx_ep.stats().failed_outputs, 2u);
  rig.ExpectQuiescent();
}

TEST(CrashRecoveryTest, ReceiverCrashFencesSenderThenResyncRestoresExactlyOnce) {
  CrashRig rig;
  rig.WritePattern(kBigLen, 5);
  // Crash mid-receive at 2 ms; restart at 8 ms. The sender's retransmit at
  // ~5.7 ms hits the dead node (silent drop); the one at ~13.4 ms hits the
  // restarted epoch-2 node and is fenced (dst_epoch 1 < 2).
  rig.engine.ScheduleAt(2 * kMillisecond, [&] { rig.receiver.Crash(); });
  rig.engine.ScheduleAt(8 * kMillisecond, [&] { rig.receiver.Restart(); });

  const InputResult first = rig.Transfer(kSrc, kDst, kBigLen, Semantics::kEmulatedCopy);

  // The pre-crash posted input died with the incarnation.
  EXPECT_FALSE(first.ok);
  EXPECT_EQ(first.status, IoStatus::kPeerCrashed);
  EXPECT_EQ(rig.rx_ep.stats().failed_inputs, 1u);
  EXPECT_EQ(rig.receiver.crashes(), 1u);
  EXPECT_EQ(rig.receiver.epoch(), 2u);
  EXPECT_FALSE(rig.receiver.crashed());
  // Dead-node and dead-epoch frames were counted, never delivered.
  EXPECT_GE(rig.receiver.adapter().crash_frame_drops(), 1u);
  EXPECT_GE(rig.receiver.adapter().stale_epoch_frame_drops(), 1u);

  // The fence aborted the sender's transfer and drove the resync handshake.
  const ReliableDelivery::Stats& rel = rig.sender.reliable().stats();
  EXPECT_EQ(rel.epoch_bumps, 1u);
  EXPECT_GE(rel.resyncs, 1u);
  EXPECT_EQ(rel.peer_crash_aborts, 1u);
  EXPECT_GE(rel.retransmits, 2u);
  EXPECT_EQ(rel.giveups, 0u);  // crash abort, not budget exhaustion
  EXPECT_EQ(rig.tx_ep.stats().failed_outputs, 1u);
  EXPECT_EQ(rig.sender.reliable().PeerEpoch(1), 2u);
  EXPECT_FALSE(rig.sender.reliable().Resyncing(1));
  rig.ExpectQuiescent();

  // Post-resync traffic flows under the new incarnation, exactly once.
  rig.WritePattern(kBigLen, 6);
  const InputResult second = rig.Transfer(kSrc, kDst, kBigLen, Semantics::kEmulatedCopy);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(rig.ReadBack(kDst, kBigLen), TestPattern(kBigLen, 6));
  rig.ExpectQuiescent();
}

TEST(CrashRecoveryTest, CrashedNodesFailFastAndFirstContactPerformsEpochDiscovery) {
  CrashRig rig;
  rig.WritePattern(kPage, 7);
  rig.sender.Crash();
  rig.receiver.Crash();

  // Output on a crashed node: rejected synchronously, no VM churn.
  std::move(rig.tx_ep.Output(rig.tx_app, kSrc, kPage, Semantics::kEmulatedCopy)).Detach();
  EXPECT_EQ(rig.tx_ep.stats().failed_outputs, 1u);
  // Input on a crashed node: kPeerCrashed before any buffer is posted.
  InputResult dead;
  auto input_driver = [](Endpoint& ep, AddressSpace& app, InputResult* out) -> Task<void> {
    *out = co_await ep.Input(app, kDst, kPage, Semantics::kEmulatedCopy);
  };
  std::move(input_driver(rig.rx_ep, rig.rx_app, &dead)).Detach();
  rig.engine.Run();
  EXPECT_FALSE(dead.ok);
  EXPECT_EQ(dead.status, IoStatus::kPeerCrashed);
  EXPECT_EQ(rig.rx_ep.stats().failed_inputs, 1u);
  rig.ExpectQuiescent();

  rig.sender.Restart();
  rig.receiver.Restart();

  // First contact: the sender still believes the receiver is epoch 1, so the
  // probe frame is fenced; the fence teaches it epoch 2 and resyncs.
  std::move(rig.tx_ep.Output(rig.tx_app, kSrc, kPage, Semantics::kEmulatedCopy)).Detach();
  rig.engine.Run();
  EXPECT_EQ(rig.tx_ep.stats().failed_outputs, 2u);
  EXPECT_EQ(rig.sender.reliable().stats().epoch_bumps, 1u);
  EXPECT_GE(rig.sender.reliable().stats().resyncs, 1u);
  EXPECT_EQ(rig.sender.reliable().PeerEpoch(1), 2u);
  rig.ExpectQuiescent();

  // Epoch discovered: the next transfer flows first try.
  const InputResult ok = rig.Transfer(kSrc, kDst, kPage, Semantics::kEmulatedCopy);
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(rig.ReadBack(kDst, kPage), TestPattern(kPage, 7));
  EXPECT_EQ(rig.sender.epoch(), 2u);
  EXPECT_EQ(rig.receiver.epoch(), 2u);
  rig.ExpectQuiescent();
}

TEST(CrashRecoveryTest, ArmedCrashInjectionCrashesAndRestartsOnSchedule) {
  CrashRig rig;
  FaultPlan plan(77);
  FaultRule crash;
  crash.site = FaultSite::kNodeCrash;
  crash.nth = 2;  // second 50 us tick = 100 us
  crash.max_fires = 1;
  crash.arg = 300 * 1000;  // restart 300 us after the crash
  plan.AddRule(crash);
  rig.sender.ArmCrashInjection(&plan, 50 * kMicrosecond, kMillisecond,
                               /*restart_delay=*/100 * kMicrosecond);
  rig.engine.Run();

  EXPECT_EQ(rig.sender.crashes(), 1u);
  EXPECT_EQ(rig.sender.epoch(), 2u);
  EXPECT_FALSE(rig.sender.crashed());  // rule arg restarted it at 400 us
  EXPECT_GE(plan.site_ops(FaultSite::kNodeCrash), 2u);

  // The rebooted incarnation carries live traffic.
  rig.WritePattern(kPage, 9);
  const InputResult result = rig.Transfer(kSrc, kDst, kPage, Semantics::kEmulatedCopy);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(rig.ReadBack(kDst, kPage), TestPattern(kPage, 9));
  rig.ExpectQuiescent();
}

// --- Fabric partition scenarios (Workload over a dumbbell) ---

WorkloadConfig PartitionConfig(std::uint32_t max_retransmits, SimTime initial_timeout,
                               SimTime watchdog) {
  WorkloadConfig cfg;
  cfg.seed = 1234;
  cfg.nodes = 2;
  cfg.fabric.topology = Fabric::Topology::kDumbbell;

  ReliableOptions rel;
  rel.arq = true;
  rel.window = 4;
  rel.jitter_frac = 0.0;
  rel.max_retransmits = max_retransmits;
  rel.initial_timeout = initial_timeout;
  rel.max_timeout = 8 * initial_timeout;
  rel.watchdog_timeout = watchdog;
  cfg.reliable = rel;

  TenantClassConfig closed;
  closed.name = "closed";
  closed.tenants = 2;  // one per node; all traffic crosses the trunk
  closed.transfers_per_tenant = 3;
  closed.min_bytes = kPage;
  closed.max_bytes = kPage;
  closed.max_retries = 1;
  cfg.classes.push_back(closed);
  return cfg;
}

TEST(CrashRecoveryTest, TrunkPartitionHealingInsideBudgetCompletesExactlyOnce) {
  Engine engine;
  // Generous budget: 10 retries with 300 us..2.4 ms backoff rides out the
  // 2.8 ms outage with room to spare.
  Workload wl(engine, PartitionConfig(/*max_retransmits=*/10,
                                      /*initial_timeout=*/300 * kMicrosecond,
                                      /*watchdog=*/50 * kMillisecond));
  engine.ScheduleAt(200 * kMicrosecond, [&] {
    wl.fabric().SetTrunkDown(0);
    wl.fabric().SetTrunkDown(1);
  });
  engine.ScheduleAt(3 * kMillisecond, [&] { wl.fabric().HealAll(); });
  wl.Run();

  EXPECT_TRUE(wl.violations().empty());
  for (const TenantStats& t : wl.tenant_stats()) {
    EXPECT_EQ(t.completed, 3u) << "channel " << t.channel;
    EXPECT_EQ(t.failed, 0u) << "channel " << t.channel;
  }
  EXPECT_EQ(wl.fabric().link_flaps(), 2u);
  std::uint64_t retransmits = 0;
  std::uint64_t giveups = 0;
  std::uint64_t down_drops = wl.fabric().link_down_drops();
  for (std::size_t i = 0; i < wl.node_count(); ++i) {
    retransmits += wl.node(i).reliable().stats().retransmits;
    giveups += wl.node(i).reliable().stats().giveups;
    down_drops += wl.node(i).adapter().link_down_drops();
  }
  EXPECT_GE(retransmits, 1u);  // the partition actually cost frames
  EXPECT_GE(down_drops, 1u);
  EXPECT_EQ(giveups, 0u);  // ...but never the whole budget
  const InvariantReport report = wl.CheckInvariants(/*expect_quiescent=*/true);
  EXPECT_TRUE(report.violations.empty());
}

TEST(CrashRecoveryTest, PartitionOutlastingBudgetSurfacesGiveUpNeverSilentLoss) {
  Engine engine;
  // Tight budget: 2 retries x <=400 us can never bridge a permanent outage;
  // the 5 ms watchdog reclaims the receivers' parked inputs.
  Workload wl(engine, PartitionConfig(/*max_retransmits=*/2,
                                      /*initial_timeout=*/200 * kMicrosecond,
                                      /*watchdog=*/5 * kMillisecond));
  engine.ScheduleAt(50 * kMicrosecond, [&] {
    wl.fabric().SetTrunkDown(0);
    wl.fabric().SetTrunkDown(1);
  });
  wl.Run();

  EXPECT_TRUE(wl.violations().empty());
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  for (const TenantStats& t : wl.tenant_stats()) {
    EXPECT_EQ(t.completed + t.failed, 3u) << "channel " << t.channel;
    completed += t.completed;
    failed += t.failed;
  }
  // At most the pre-partition instants complete; everything else fails
  // loudly. Nothing may vanish without a verdict.
  EXPECT_GT(failed, 0u);
  std::uint64_t giveups = 0;
  std::uint64_t watchdog_cancels = 0;
  for (std::size_t i = 0; i < wl.node_count(); ++i) {
    giveups += wl.node(i).reliable().stats().giveups;
    watchdog_cancels += wl.node(i).reliable().stats().watchdog_cancels;
  }
  EXPECT_GE(giveups, 1u);
  EXPECT_GE(watchdog_cancels, 1u);
  const InvariantReport report = wl.CheckInvariants(/*expect_quiescent=*/true);
  EXPECT_TRUE(report.violations.empty());
}

}  // namespace
}  // namespace genie
