// Pageout daemon tests: eviction/page-in round trips, wiring, and the
// input-disabled pageout optimization (paper Section 3.2) including the
// corruption hazard it prevents (ablation path).
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/vm/address_space.h"
#include "src/vm/io_ref.h"
#include "src/vm/pageout.h"
#include "src/vm/vm.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kBase = 0x10000000;

std::vector<std::byte> Fill(std::size_t n, unsigned char v) {
  return std::vector<std::byte>(n, static_cast<std::byte>(v));
}

class PageoutTest : public ::testing::Test {
 protected:
  Vm vm_{16, kPage};
  AddressSpace as_{vm_, "app"};
};

TEST_F(PageoutTest, EvictAndFaultBackInPreservesData) {
  as_.CreateRegion(kBase, 2 * kPage);
  ASSERT_EQ(as_.Write(kBase, Fill(2 * kPage, 0x3C)), AccessResult::kOk);
  PageoutDaemon daemon(vm_);
  EXPECT_EQ(daemon.ScanOnce(100), 2u);
  EXPECT_EQ(vm_.pm().allocated_frames(), 0u);
  EXPECT_EQ(as_.FindPte(kBase), nullptr);  // Unmapped by eviction.

  std::vector<std::byte> out(2 * kPage);
  ASSERT_EQ(as_.Read(kBase, out), AccessResult::kOk);  // Faults in from swap.
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0x3C);
  EXPECT_EQ(static_cast<unsigned char>(out[2 * kPage - 1]), 0x3C);
  EXPECT_EQ(as_.counters().pageins, 2u);
}

TEST_F(PageoutTest, WiredPagesSkipped) {
  as_.CreateRegion(kBase, 2 * kPage);
  ASSERT_EQ(as_.Write(kBase, Fill(2 * kPage, 1)), AccessResult::kOk);
  ASSERT_EQ(as_.WireRange(kBase, kPage, false), AccessResult::kOk);
  PageoutDaemon daemon(vm_);
  EXPECT_EQ(daemon.ScanOnce(100), 1u);  // Only the unwired page.
  EXPECT_EQ(daemon.skipped_wired(), 1u);
  EXPECT_NE(as_.FindPte(kBase), nullptr);
  as_.UnwireRange(kBase, kPage);
}

TEST_F(PageoutTest, InputReferencedPagesSkipped) {
  // Input-disabled pageout: no wiring needed, yet the pending-input page is
  // never evicted.
  as_.CreateRegion(kBase, 2 * kPage);
  ASSERT_EQ(as_.Write(kBase, Fill(2 * kPage, 1)), AccessResult::kOk);
  IoReference ref;
  ASSERT_EQ(ReferenceRange(as_, kBase, kPage, IoDirection::kInput, &ref), AccessResult::kOk);
  PageoutDaemon daemon(vm_);
  EXPECT_EQ(daemon.ScanOnce(100), 1u);
  EXPECT_EQ(daemon.skipped_input_referenced(), 1u);
  Unreference(vm_, ref);
  // After input completes the page is evictable again.
  EXPECT_EQ(daemon.ScanOnce(100), 1u);
}

TEST_F(PageoutTest, OutputReferencedPagesEvictableSafely) {
  // Pages with pending *output* may be paged out: deferred deallocation
  // keeps the frame contents alive for the device.
  as_.CreateRegion(kBase, kPage);
  ASSERT_EQ(as_.Write(kBase, Fill(kPage, 0x42)), AccessResult::kOk);
  IoReference ref;
  ASSERT_EQ(ReferenceRange(as_, kBase, kPage, IoDirection::kOutput, &ref), AccessResult::kOk);
  const FrameId frame = ref.iovec.segments[0].frame;

  PageoutDaemon daemon(vm_);
  EXPECT_EQ(daemon.ScanOnce(100), 1u);
  // Device still reads correct data from the zombie frame.
  EXPECT_EQ(static_cast<unsigned char>(vm_.pm().Data(frame)[0]), 0x42);
  EXPECT_EQ(vm_.pm().zombie_frames(), 1u);
  Unreference(vm_, ref);
  EXPECT_EQ(vm_.pm().zombie_frames(), 0u);

  // And the application can still fault the data back in from swap.
  std::vector<std::byte> out(16);
  ASSERT_EQ(as_.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0x42);
}

TEST_F(PageoutTest, AblationWithoutInputDisabledPageoutCorruptsInput) {
  // Demonstrates the hazard: with the optimization off and no wiring, the
  // daemon evicts a pending-input page; the DMA store then lands in a frame
  // no longer attached to the buffer, and the application reads stale data.
  as_.CreateRegion(kBase, kPage);
  ASSERT_EQ(as_.Write(kBase, Fill(kPage, 0x01)), AccessResult::kOk);
  IoReference ref;
  ASSERT_EQ(ReferenceRange(as_, kBase, kPage, IoDirection::kInput, &ref), AccessResult::kOk);
  const FrameId dma_target = ref.iovec.segments[0].frame;

  PageoutDaemon daemon(vm_, PageoutDaemon::Options{.input_disabled_pageout = false});
  EXPECT_EQ(daemon.ScanOnce(100), 1u);  // Evicts the pending-input page!

  // Device input arrives.
  std::memset(vm_.pm().Data(dma_target).data(), 0xEE, kPage);
  Unreference(vm_, ref);

  // Application reads its input buffer: the data is the stale paged-out
  // copy, not the device input — the inconsistency Section 3.2 describes.
  std::vector<std::byte> out(16);
  ASSERT_EQ(as_.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0x01);
}

TEST_F(PageoutTest, EvictUntilFreeStopsAtTarget) {
  as_.CreateRegion(kBase, 8 * kPage);
  ASSERT_EQ(as_.Write(kBase, Fill(8 * kPage, 1)), AccessResult::kOk);
  PageoutDaemon daemon(vm_);
  EXPECT_EQ(vm_.pm().free_frames(), 8u);
  daemon.EvictUntilFree(12);
  EXPECT_GE(vm_.pm().free_frames(), 12u);
  EXPECT_LE(daemon.total_evictions(), 5u);
}

TEST_F(PageoutTest, EvictUntilFreeGivesUpWhenAllPinned) {
  as_.CreateRegion(kBase, 4 * kPage);
  ASSERT_EQ(as_.WireRange(kBase, 4 * kPage, true), AccessResult::kOk);
  PageoutDaemon daemon(vm_);
  daemon.EvictUntilFree(vm_.pm().num_frames());
  EXPECT_EQ(daemon.total_evictions(), 0u);
  as_.UnwireRange(kBase, 4 * kPage);
}

TEST_F(PageoutTest, SharedMappingsAllUnmapped) {
  AddressSpace other(vm_, "other");
  Region* r = as_.CreateRegion(kBase, kPage);
  ASSERT_EQ(as_.Write(kBase, Fill(kPage, 0x09)), AccessResult::kOk);
  other.CreateRegionWithObject(kBase, kPage, r->object, RegionState::kUnmovable);
  std::vector<std::byte> out(16);
  ASSERT_EQ(other.Read(kBase, out), AccessResult::kOk);  // Maps in `other` too.

  PageoutDaemon daemon(vm_);
  EXPECT_EQ(daemon.ScanOnce(100), 1u);
  EXPECT_EQ(as_.FindPte(kBase), nullptr);
  EXPECT_EQ(other.FindPte(kBase), nullptr);

  ASSERT_EQ(other.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0x09);
}

TEST_F(PageoutTest, MemoryPressureWorkflow) {
  // Fill physical memory via one region, then allocate another region whose
  // population requires evicting the first.
  as_.CreateRegion(kBase, 12 * kPage);
  ASSERT_EQ(as_.Write(kBase, Fill(12 * kPage, 0x0A)), AccessResult::kOk);
  PageoutDaemon daemon(vm_);

  const Vaddr second = as_.FindFreeRange(8 * kPage);
  as_.CreateRegion(second, 8 * kPage);
  for (int i = 0; i < 8; ++i) {
    if (vm_.pm().free_frames() < 2) {
      daemon.EvictUntilFree(2);
    }
    ASSERT_EQ(as_.Write(second + i * kPage, Fill(kPage, 0x0B)), AccessResult::kOk);
  }
  // First region data survives (page-in on demand).
  std::vector<std::byte> out(kPage);
  for (int i = 0; i < 12; ++i) {
    if (vm_.pm().free_frames() < 2) {
      daemon.EvictUntilFree(2);
    }
    ASSERT_EQ(as_.Read(kBase + i * kPage, out), AccessResult::kOk);
    EXPECT_EQ(static_cast<unsigned char>(out[0]), 0x0A) << "page " << i;
  }
}

}  // namespace
}  // namespace genie
