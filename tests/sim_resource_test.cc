#include "src/sim/resource.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/sim/awaitable.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace genie {
namespace {

Task<void> HoldFor(Engine& eng, Resource& res, SimTime dur, std::vector<SimTime>* grants) {
  co_await res.Acquire();
  if (grants != nullptr) {
    grants->push_back(eng.now());
  }
  co_await Delay(eng, dur);
  res.Release();
}

TEST(ResourceTest, UncontendedAcquireIsImmediate) {
  Engine eng;
  Resource res(eng, "cpu");
  std::vector<SimTime> grants;
  std::move(HoldFor(eng, res, 10, &grants)).Detach();
  eng.Run();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0], 0);
  EXPECT_FALSE(res.held());
}

TEST(ResourceTest, ContendersServedFifo) {
  Engine eng;
  Resource res(eng, "cpu");
  std::vector<SimTime> grants;
  std::move(HoldFor(eng, res, 10, &grants)).Detach();
  std::move(HoldFor(eng, res, 10, &grants)).Detach();
  std::move(HoldFor(eng, res, 10, &grants)).Detach();
  eng.Run();
  EXPECT_EQ(grants, (std::vector<SimTime>{0, 10, 20}));
}

TEST(ResourceTest, BusyTimeAccumulates) {
  Engine eng;
  Resource res(eng, "cpu");
  std::move(HoldFor(eng, res, 25, nullptr)).Detach();
  std::move(HoldFor(eng, res, 15, nullptr)).Detach();
  eng.Run();
  EXPECT_EQ(res.busy_time(), 40);
}

TEST(ResourceTest, BusyTimeExcludesIdleGaps) {
  Engine eng;
  Resource res(eng, "cpu");
  std::move(HoldFor(eng, res, 10, nullptr)).Detach();
  eng.Run();
  // Idle gap from t=10 to t=100.
  eng.ScheduleAt(100, [] {});
  eng.Run();
  std::move(HoldFor(eng, res, 5, nullptr)).Detach();
  eng.Run();
  EXPECT_EQ(res.busy_time(), 15);
  EXPECT_EQ(eng.now(), 105);
}

TEST(ResourceTest, BusyTimeIncludesInProgressGrant) {
  Engine eng;
  Resource res(eng, "cpu");
  std::move(HoldFor(eng, res, 100, nullptr)).Detach();
  eng.RunFor(40);
  EXPECT_EQ(res.busy_time(), 40);
}

TEST(ResourceTest, ResetBusyTimeStartsWindow) {
  Engine eng;
  Resource res(eng, "cpu");
  std::move(HoldFor(eng, res, 10, nullptr)).Detach();
  eng.Run();
  res.ResetBusyTime();
  EXPECT_EQ(res.busy_time(), 0);
  std::move(HoldFor(eng, res, 7, nullptr)).Detach();
  eng.Run();
  EXPECT_EQ(res.busy_time(), 7);
}

Task<void> UseRun(Resource& res, SimTime cost) { co_await res.Run(cost); }

TEST(ResourceTest, RunAcquiresHoldsReleases) {
  Engine eng;
  Resource res(eng, "cpu");
  std::move(UseRun(res, 33)).Detach();
  eng.Run();
  EXPECT_EQ(res.busy_time(), 33);
  EXPECT_FALSE(res.held());
  EXPECT_EQ(eng.now(), 33);
}

TEST(ResourceTest, RunSerializesWork) {
  Engine eng;
  Resource res(eng, "cpu");
  std::move(UseRun(res, 10)).Detach();
  std::move(UseRun(res, 20)).Detach();
  eng.Run();
  EXPECT_EQ(eng.now(), 30);
  EXPECT_EQ(res.busy_time(), 30);
}

TEST(ResourceTest, ZeroCostRunStillWorks) {
  Engine eng;
  Resource res(eng, "cpu");
  std::move(UseRun(res, 0)).Detach();
  eng.Run();
  EXPECT_EQ(res.busy_time(), 0);
  EXPECT_FALSE(res.held());
}

TEST(ResourceTest, QueueLengthVisible) {
  Engine eng;
  Resource res(eng, "cpu");
  std::move(HoldFor(eng, res, 50, nullptr)).Detach();
  std::move(HoldFor(eng, res, 50, nullptr)).Detach();
  std::move(HoldFor(eng, res, 50, nullptr)).Detach();
  EXPECT_TRUE(res.held());
  EXPECT_EQ(res.queue_length(), 2u);
  eng.Run();
  EXPECT_EQ(res.queue_length(), 0u);
}

TEST(ResourceDeathTest, ReleaseWithoutAcquireAborts) {
  Engine eng;
  Resource res(eng, "cpu");
  EXPECT_DEATH(res.Release(), "Release");
}

// Two resources used by interleaved tasks: utilization accounting stays
// independent.
Task<void> PingPong(Resource& a, Resource& b) {
  co_await a.Run(10);
  co_await b.Run(20);
  co_await a.Run(30);
}

TEST(ResourceTest, IndependentResources) {
  Engine eng;
  Resource a(eng, "a");
  Resource b(eng, "b");
  std::move(PingPong(a, b)).Detach();
  eng.Run();
  EXPECT_EQ(a.busy_time(), 40);
  EXPECT_EQ(b.busy_time(), 20);
  EXPECT_EQ(eng.now(), 60);
}

}  // namespace
}  // namespace genie
