// Fairness properties of the switched fabric under multi-tenant load.
//
// Property 1 (equal shares): K identical closed-loop tenants incast onto one
// egress link finish within a tight completed-bytes spread of each other,
// across 50 seeds. The egress SwitchLink's DRR arbitration is byte-fair and
// nothing in the stack lets one channel capture the link, so the spread is a
// few transfers of phase offset, not a function of tenant index.
//
// Property 2 (hog isolation): an open-loop tenant blasting jumbo frames at
// ~10x the link rate cannot starve small closed-loop tenants sharing its
// egress. The victims keep a healthy fraction of the throughput they get on
// an idle fabric, every victim keeps completing, and the hog is the one
// pushed into backpressure (its in-flight window fills and arrivals stall).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/harness/workload.h"
#include "src/util/units.h"

namespace genie {
namespace {

constexpr std::uint64_t kFrameBytes = 2048;

// Everything transmits toward node 0: the contended resource is node 0's
// fabric downlink, DRR-arbitrated across the tenants' channels.
WorkloadConfig IncastConfig(std::uint64_t seed, std::size_t tenants) {
  WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.nodes = 4;
  cfg.fixed_dst_node = 0;
  cfg.deadline = 30 * kMillisecond;
  TenantClassConfig cls;
  cls.name = "equal";
  cls.tenants = tenants;
  cls.transfers_per_tenant = 0;  // run until the deadline
  cls.min_bytes = kFrameBytes;   // fixed size: the spread is measured in
  cls.max_bytes = kFrameBytes;   // whole transfers, not sampling noise
  cfg.classes.push_back(cls);
  return cfg;
}

TEST(FabricFairnessTest, EqualTenantsSplitContendedEgressEvenly) {
  constexpr std::size_t kTenants = 6;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Engine engine;
    Workload wl(engine, IncastConfig(seed, kTenants));
    wl.Run();
    EXPECT_TRUE(wl.violations().empty())
        << "seed " << seed << ": " << wl.violations().front();

    std::vector<std::uint64_t> bytes;
    for (const TenantStats& t : wl.tenant_stats()) {
      EXPECT_EQ(t.failed, 0u) << "seed " << seed << " channel " << t.channel;
      bytes.push_back(t.completed_bytes);
    }
    ASSERT_EQ(bytes.size(), kTenants);
    const std::uint64_t lo = *std::min_element(bytes.begin(), bytes.end());
    const std::uint64_t hi = *std::max_element(bytes.begin(), bytes.end());
    // Everyone made real progress (the property is not vacuous)...
    EXPECT_GE(lo, 10 * kFrameBytes) << "seed " << seed;
    // ...and nobody pulled ahead by more than a few transfers of phase
    // offset. A capture-prone arbiter fails this by whole multiples.
    EXPECT_LE(hi - lo, 4 * kFrameBytes)
        << "seed " << seed << ": per-tenant bytes spread " << lo << ".." << hi;
  }
}

// Victim tenants ship small frames closed-loop; the optional hog fires 16 KiB
// frames open-loop at an offered load far beyond the shared egress rate.
WorkloadConfig SkewedConfig(std::uint64_t seed, bool with_hog) {
  WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.nodes = 4;
  cfg.fixed_dst_node = 0;
  cfg.deadline = 30 * kMillisecond;
  TenantClassConfig victims;
  victims.name = "victims";
  victims.tenants = 4;
  victims.transfers_per_tenant = 0;
  victims.min_bytes = 1024;
  victims.max_bytes = 1024;
  cfg.classes.push_back(victims);
  if (with_hog) {
    TenantClassConfig hog;
    hog.name = "hog";
    hog.tenants = 1;
    hog.open_loop = true;
    hog.transfers_per_tenant = 0;
    hog.mean_interarrival = 100 * kMicrosecond;  // ~160 MB/s offered
    hog.max_in_flight = 8;
    hog.min_bytes = 16 * 1024;
    hog.max_bytes = 16 * 1024;
    cfg.classes.push_back(hog);
  }
  return cfg;
}

TEST(FabricFairnessTest, JumboHogCannotStarveSmallTenants) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    // Baseline: the victims alone on an idle fabric. The hog class is
    // appended after the victims, so dropping it leaves victim placement,
    // channels, and RNG streams identical between the two runs.
    std::uint64_t baseline_bytes = 0;
    double baseline_p99_us = 0.0;
    {
      Engine engine;
      Workload wl(engine, SkewedConfig(seed, /*with_hog=*/false));
      wl.Run();
      ASSERT_TRUE(wl.violations().empty()) << wl.violations().front();
      baseline_bytes = wl.Rollups()[0].completed_bytes;
      baseline_p99_us = wl.Rollups()[0].p99_us;
    }

    Engine engine;
    Workload wl(engine, SkewedConfig(seed, /*with_hog=*/true));
    wl.Run();
    ASSERT_TRUE(wl.violations().empty()) << wl.violations().front();

    const std::vector<ClassRollup> rollups = wl.Rollups();
    const ClassRollup& victims = rollups[0];
    const ClassRollup& hog = rollups[1];

    // Isolation: a closed-loop victim still waits behind the *in-service*
    // jumbo frame (frames are non-preemptive, ~1 ms of wire each), but DRR
    // hands it the very next grant instead of draining the hog's whole
    // 8-frame backlog. So the victims keep a meaningful fraction of their
    // idle-fabric throughput — FIFO arbitration would leave a few percent.
    EXPECT_GE(victims.completed_bytes * 5, baseline_bytes)
        << "seed " << seed << ": victims kept " << victims.completed_bytes
        << " of " << baseline_bytes << " idle-fabric bytes";
    // Victim tail latency is one hog frame of head-of-line blocking, not the
    // hog's queue depth (8 frames would be ~8000 us).
    EXPECT_LE(victims.p99_us, baseline_p99_us + 2500.0) << "seed " << seed;
    // No individual victim starves either.
    for (const TenantStats& t : wl.tenant_stats()) {
      if (t.class_index == 0) {
        EXPECT_GE(t.completed, 10u) << "seed " << seed << " channel " << t.channel;
        EXPECT_EQ(t.failed, 0u) << "seed " << seed << " channel " << t.channel;
      }
    }
    // The hog pays for the contention: its offered load exceeds what the
    // fabric will absorb, so its arrival process runs into its own in-flight
    // cap instead of displacing the victims.
    const TenantStats& hog_stats = wl.tenant_stats().back();
    EXPECT_GT(hog_stats.backpressure_stalls, 0u) << "seed " << seed;
    EXPECT_GT(hog.completed_bytes, 0u) << "seed " << seed;
    // Sanity: the hog did not get more than the link could carry in the
    // deadline (0.0598 us/byte => ~500 KB in 30 ms).
    EXPECT_LT(hog.completed_bytes, 600u * 1024u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace genie
