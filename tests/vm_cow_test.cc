// Conventional COW sharing and input-disabled COW (paper Section 3.3).
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/vm/address_space.h"
#include "src/vm/cow.h"
#include "src/vm/io_ref.h"
#include "src/vm/vm.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kBase = 0x10000000;

std::vector<std::byte> Fill(std::size_t n, unsigned char v) {
  return std::vector<std::byte>(n, static_cast<std::byte>(v));
}

class CowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    src_.CreateRegion(kBase, 2 * kPage);
    ASSERT_EQ(src_.Write(kBase, Fill(2 * kPage, 0xAA)), AccessResult::kOk);
  }

  Vm vm_{64, kPage};
  AddressSpace src_{vm_, "parent"};
  AddressSpace dst_{vm_, "child"};
};

TEST_F(CowTest, ShareIsCowWithoutPendingInput) {
  const CowShareResult r = CowShareRegion(src_, kBase, dst_);
  EXPECT_FALSE(r.physically_copied);
  // No page copies yet: both sides read the same data.
  std::vector<std::byte> out(16);
  ASSERT_EQ(dst_.Read(r.dst_start, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xAA);
  EXPECT_EQ(dst_.counters().cow_copies, 0u);
}

TEST_F(CowTest, ReadersShareTheSameFrame) {
  const CowShareResult r = CowShareRegion(src_, kBase, dst_);
  std::vector<std::byte> out(1);
  ASSERT_EQ(dst_.Read(r.dst_start, out), AccessResult::kOk);
  ASSERT_EQ(src_.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(dst_.FindPte(r.dst_start)->frame, src_.FindPte(kBase)->frame);
}

TEST_F(CowTest, WriterGetsPrivateCopy) {
  const CowShareResult r = CowShareRegion(src_, kBase, dst_);
  ASSERT_EQ(dst_.Write(r.dst_start, Fill(16, 0xBB)), AccessResult::kOk);
  EXPECT_EQ(dst_.counters().cow_copies, 1u);
  // Source unaffected.
  std::vector<std::byte> out(16);
  ASSERT_EQ(src_.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xAA);
  // Destination sees its write.
  ASSERT_EQ(dst_.Read(r.dst_start, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xBB);
}

TEST_F(CowTest, SourceWriteAfterShareAlsoCopiesUp) {
  const CowShareResult r = CowShareRegion(src_, kBase, dst_);
  ASSERT_EQ(src_.Write(kBase, Fill(16, 0xCC)), AccessResult::kOk);
  EXPECT_EQ(src_.counters().cow_copies, 1u);
  std::vector<std::byte> out(16);
  ASSERT_EQ(dst_.Read(r.dst_start, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xAA);  // Child unaffected.
}

TEST_F(CowTest, OnlyWrittenPagesCopied) {
  const CowShareResult r = CowShareRegion(src_, kBase, dst_);
  ASSERT_EQ(dst_.Write(r.dst_start, Fill(16, 0xBB)), AccessResult::kOk);
  std::vector<std::byte> out(16);
  // Second page still shared.
  ASSERT_EQ(dst_.Read(r.dst_start + kPage, out), AccessResult::kOk);
  ASSERT_EQ(src_.Read(kBase + kPage, out), AccessResult::kOk);
  EXPECT_EQ(dst_.FindPte(r.dst_start + kPage)->frame, src_.FindPte(kBase + kPage)->frame);
  EXPECT_EQ(dst_.counters().cow_copies, 1u);
}

// --- Input-disabled COW (Section 3.3) ---

TEST_F(CowTest, PendingInputDemotesCowToPhysicalCopy) {
  // Post an in-place input into the source region, as an early-demultiplexed
  // preposted receive would.
  IoReference input_ref;
  ASSERT_EQ(ReferenceRange(src_, kBase, kPage, IoDirection::kInput, &input_ref),
            AccessResult::kOk);

  const CowShareResult r = CowShareRegion(src_, kBase, dst_);
  EXPECT_TRUE(r.physically_copied);

  // DMA lands input into the source's frame, bypassing the MMU.
  const FrameId target = input_ref.iovec.segments[0].frame;
  std::memset(vm_.pm().Data(target).data(), 0xEE, kPage);
  Unreference(vm_, input_ref);

  // Copy semantics preserved: the child must NOT see the late input.
  std::vector<std::byte> out(16);
  ASSERT_EQ(dst_.Read(r.dst_start, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xAA);
  // The parent, which issued the input, sees it.
  ASSERT_EQ(src_.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xEE);
}

TEST_F(CowTest, WithoutInputDisabledCowDmaWouldLeakToSharer) {
  // Demonstrates the hazard the optimization exists for: if we force plain
  // COW despite pending input, the DMA store becomes visible to both
  // processes — share semantics, not copy.
  IoReference input_ref;
  ASSERT_EQ(ReferenceRange(src_, kBase, kPage, IoDirection::kInput, &input_ref),
            AccessResult::kOk);
  const FrameId target = input_ref.iovec.segments[0].frame;
  Unreference(vm_, input_ref);  // Drop counts, but pretend DMA still runs:
  const CowShareResult r = CowShareRegion(src_, kBase, dst_);
  ASSERT_FALSE(r.physically_copied);  // Plain COW (no pending refs now).
  std::memset(vm_.pm().Data(target).data(), 0xEE, kPage);  // "Late" DMA.
  std::vector<std::byte> out(16);
  ASSERT_EQ(dst_.Read(r.dst_start, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xEE);  // Leaked!
}

TEST_F(CowTest, CowBeforeInputResolvedByReferenceWriteCheck) {
  // The reverse case (Section 3.3): region already COW, then in-place input.
  // Input page referencing verifies write access, so the fault handler
  // makes a private writable copy first; DMA then cannot touch shared data.
  const CowShareResult r = CowShareRegion(src_, kBase, dst_);
  ASSERT_FALSE(r.physically_copied);

  IoReference input_ref;
  ASSERT_EQ(ReferenceRange(src_, kBase, kPage, IoDirection::kInput, &input_ref),
            AccessResult::kOk);
  EXPECT_EQ(src_.counters().cow_copies, 1u);  // Copy-up happened.

  const FrameId target = input_ref.iovec.segments[0].frame;
  std::memset(vm_.pm().Data(target).data(), 0xEE, kPage);
  Unreference(vm_, input_ref);

  std::vector<std::byte> out(16);
  ASSERT_EQ(dst_.Read(r.dst_start, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xAA);  // Child safe.
  ASSERT_EQ(src_.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xEE);
}

TEST_F(CowTest, ObjectInputRefsTrackedDuringReference) {
  Region* region = src_.RegionAt(kBase);
  EXPECT_FALSE(region->object->ChainHasInputRefs());
  IoReference ref;
  ASSERT_EQ(ReferenceRange(src_, kBase, 2 * kPage, IoDirection::kInput, &ref),
            AccessResult::kOk);
  EXPECT_EQ(region->object->input_refs(), 2);  // One per page.
  Unreference(vm_, ref);
  EXPECT_FALSE(region->object->ChainHasInputRefs());
}

TEST_F(CowTest, WarmTlbDoesNotBypassCowProtection) {
  // Write immediately before the share so the parent's TLB caches a
  // writable translation; the share's write-protection must invalidate it,
  // and the next parent write must copy up instead of mutating the frame
  // the child reads.
  ASSERT_EQ(src_.Write(kBase, Fill(16, 0xAA)), AccessResult::kOk);
  const CowShareResult r = CowShareRegion(src_, kBase, dst_);
  ASSERT_FALSE(r.physically_copied);
  ASSERT_EQ(src_.Write(kBase, Fill(16, 0xCC)), AccessResult::kOk);
  EXPECT_EQ(src_.counters().cow_copies, 1u);
  std::vector<std::byte> out(16);
  ASSERT_EQ(dst_.Read(r.dst_start, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xAA);  // Child unaffected.
}

TEST_F(CowTest, ChainedSharesStillCorrect) {
  // Share parent->child, then child->grandchild; writes stay private.
  const CowShareResult r1 = CowShareRegion(src_, kBase, dst_);
  AddressSpace grand(vm_, "grandchild");
  const CowShareResult r2 = CowShareRegion(dst_, r1.dst_start, grand);
  EXPECT_FALSE(r2.physically_copied);

  ASSERT_EQ(grand.Write(r2.dst_start, Fill(16, 0x11)), AccessResult::kOk);
  ASSERT_EQ(dst_.Write(r1.dst_start, Fill(16, 0x22)), AccessResult::kOk);

  std::vector<std::byte> out(16);
  ASSERT_EQ(src_.Read(kBase, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xAA);
  ASSERT_EQ(dst_.Read(r1.dst_start, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0x22);
  ASSERT_EQ(grand.Read(r2.dst_start, out), AccessResult::kOk);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0x11);
}

}  // namespace
}  // namespace genie
