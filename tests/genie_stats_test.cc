// Endpoint statistics: every counter reflects exactly what happened.
#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;

struct StatsRig : Rig {
  StatsRig() {
    tx_app.CreateRegion(kSrc, 32 * kPage);
    rx_app.CreateRegion(kDst, 32 * kPage);
  }
  void Send(std::uint64_t len, Semantics sem, Vaddr dst_off = 0) {
    GENIE_CHECK(tx_app.Write(kSrc, TestPattern(len, 1)) == AccessResult::kOk);
    GENIE_CHECK(Transfer(kSrc, kDst + dst_off, len, sem).ok);
  }
};

TEST(StatsTest, OutputsAndInputsCount) {
  StatsRig rig;
  rig.Send(kPage, Semantics::kEmulatedCopy);
  rig.Send(kPage, Semantics::kEmulatedShare);
  rig.Send(kPage, Semantics::kCopy);
  EXPECT_EQ(rig.tx_ep.stats().outputs, 3u);
  EXPECT_EQ(rig.rx_ep.stats().inputs, 3u);
  EXPECT_EQ(rig.tx_ep.stats().inputs, 0u);
  EXPECT_EQ(rig.rx_ep.stats().outputs, 0u);
}

TEST(StatsTest, ConversionCountsOnlyBelowThreshold) {
  StatsRig rig;
  rig.Send(100, Semantics::kEmulatedCopy);    // converted (< 1666)
  rig.Send(2000, Semantics::kEmulatedCopy);   // not converted
  rig.Send(100, Semantics::kEmulatedShare);   // converted (< 280)
  rig.Send(300, Semantics::kEmulatedShare);   // not converted
  rig.Send(100, Semantics::kCopy);            // copy is never "converted"
  EXPECT_EQ(rig.tx_ep.stats().outputs_converted_to_copy, 2u);
}

TEST(StatsTest, SwapAndCopyByteAccounting) {
  StatsRig rig;
  // 3 full pages + 100-byte tail, aligned: 3 swaps + 100 bytes copied.
  rig.Send(3 * kPage + 100, Semantics::kEmulatedCopy);
  EXPECT_EQ(rig.rx_ep.stats().pages_swapped, 3u);
  EXPECT_EQ(rig.rx_ep.stats().bytes_swapped, 3u * kPage);
  EXPECT_EQ(rig.rx_ep.stats().bytes_copied, 100u);
  EXPECT_EQ(rig.rx_ep.stats().reverse_copyouts, 0u);
}

TEST(StatsTest, ReverseCopyoutAccounting) {
  StatsRig rig;
  // Tail of 3000 > threshold 2178: completed with 1096 bytes, then swapped.
  rig.Send(kPage + 3000, Semantics::kEmulatedCopy);
  EXPECT_EQ(rig.rx_ep.stats().reverse_copyouts, 1u);
  EXPECT_EQ(rig.rx_ep.stats().pages_swapped, 2u);
  EXPECT_EQ(rig.rx_ep.stats().bytes_copied, kPage - 3000u);
  EXPECT_EQ(rig.rx_ep.stats().bytes_swapped, kPage + 3000u);
}

TEST(StatsTest, CrcFailureCount) {
  StatsRig rig;
  GENIE_CHECK(rig.tx_app.Write(kSrc, TestPattern(kPage, 1)) == AccessResult::kOk);
  CrcErrorInjector crc(rig.sender.adapter());
  crc.CorruptNextFrame();
  EXPECT_FALSE(rig.Transfer(kSrc, kDst, kPage, Semantics::kEmulatedCopy).ok);
  rig.Send(kPage, Semantics::kEmulatedCopy);
  EXPECT_EQ(rig.rx_ep.stats().crc_failures, 1u);
}

TEST(StatsTest, RegionCacheHitMissAccounting) {
  Rig rig;
  const std::uint64_t len = 2 * kPage;
  Vaddr buf = rig.tx_ep.AllocateIoBuffer(rig.tx_app, len);
  GENIE_CHECK(rig.tx_app.Write(buf, TestPattern(len, 1)) == AccessResult::kOk);
  // First input: miss (no cached region). Echo rounds then hit the cache.
  InputResult in = rig.Transfer(buf, 0, len, Semantics::kEmulatedMove);
  ASSERT_TRUE(in.ok);
  EXPECT_EQ(rig.rx_ep.stats().region_cache_misses, 1u);
  EXPECT_EQ(rig.rx_ep.stats().region_cache_hits, 0u);

  InputResult back;
  auto input_driver = [](Endpoint& ep, AddressSpace& app, std::uint64_t n,
                         InputResult* out) -> Task<void> {
    *out = co_await ep.InputSystemAllocated(app, n, Semantics::kEmulatedMove);
  };
  std::move(input_driver(rig.tx_ep, rig.tx_app, len, &back)).Detach();
  std::move(rig.rx_ep.Output(rig.rx_app, in.addr, len, Semantics::kEmulatedMove)).Detach();
  rig.engine.Run();
  ASSERT_TRUE(back.ok);
  // The sender's own output had hidden+cached its original buffer region:
  // its input dequeues it (hit).
  EXPECT_EQ(rig.tx_ep.stats().region_cache_hits, 1u);
}

}  // namespace
}  // namespace genie
