// Determinism regression gate for the parallel host path PR: the golden
// constants below were captured on the seed tree (before allocation points,
// the sharded pool, SIMD checksums, or any <thread> code existed in the
// build). With all of that compiled in — but unused by the simulation —
// every semantics must still produce the bit-identical event digest and the
// byte-identical critical-path JSON. Any drift means the parallel plumbing
// leaked into the deterministic path: a new event, an extra RNG draw, a
// checksum that is no longer value-identical, or sim allocations routed
// through the MT entry points.
//
// To regenerate after an *intentional* schedule change, rebuild the capture
// at the new baseline (see the PR that added this file) — never hand-edit
// the table to make a red test green.

#include <cstdint>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/genie/host_path.h"
#include "src/net/checksum.h"
#include "src/obs/critical_path.h"
#include "src/sim/trace.h"
#include "tests/genie_test_util.h"

namespace genie {
namespace {

std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct Golden {
  Semantics sem;
  std::uint64_t event_digest;
  std::uint64_t json_fnv1a;
  std::size_t json_len;
};

// Captured at seed commit d49b881 (pooled input buffering, 32-page tx
// region, 10*4096+77-byte transfer, TestPattern seed 3).
constexpr Golden kSeedGoldens[] = {
    {Semantics::kCopy, 0x4283f7aa3d06e884ull, 0xeffb73a0033c34b3ull, 278},
    {Semantics::kEmulatedCopy, 0xda1d81c46ae955e5ull, 0xa8bba4da569dcdfeull, 295},
    {Semantics::kShare, 0x7888b065fa856783ull, 0x111e6dcda1ef2343ull, 276},
    {Semantics::kEmulatedShare, 0x88377dc9535b484aull, 0xef3d35b1ab429afcull, 298},
    {Semantics::kMove, 0xe662826a0ec4b13bull, 0x3668612bfe5ec1ddull, 274},
    {Semantics::kEmulatedMove, 0x2ed4e35be93c8006ull, 0x9092d871ded8afcbull, 295},
    {Semantics::kWeakMove, 0x9f56459c93b89961ull, 0xbf0a9ed2eb83302eull, 284},
    {Semantics::kEmulatedWeakMove, 0xc15a35c68752696aull, 0x451a2b2dedd080b0ull, 304},
};

class DeterminismRegressionTest : public ::testing::TestWithParam<Golden> {};

TEST_P(DeterminismRegressionTest, MatchesSeedGolden) {
  const Golden& g = GetParam();
  const Semantics sem = g.sem;
  TraceLog trace;
  Rig rig(InputBuffering::kPooled);
  rig.sender.set_trace(&trace);
  rig.receiver.set_trace(&trace);
  constexpr Vaddr kBuf = 0x20000000;
  rig.tx_app.CreateRegion(kBuf, 32 * 4096,
                          IsSystemAllocated(sem) ? RegionState::kMovedIn
                                                 : RegionState::kUnmovable);
  if (IsApplicationAllocated(sem)) {
    rig.rx_app.CreateRegion(kBuf, 32 * 4096);
  }
  ASSERT_EQ(rig.tx_app.Write(kBuf, TestPattern(10 * 4096, 3)), AccessResult::kOk);
  const InputResult r = rig.Transfer(IsSystemAllocated(sem) ? kBuf : kBuf + 100, kBuf + 100,
                                     10 * 4096 + 77, sem);
  ASSERT_TRUE(r.ok);

  EXPECT_EQ(rig.engine.event_digest(), g.event_digest)
      << SemanticsName(sem) << ": simulation schedule drifted from the seed";

  std::ostringstream os;
  WriteBreakdownJson(os, AnalyzeTrace(trace));
  const std::string json = os.str();
  EXPECT_EQ(json.size(), g.json_len) << SemanticsName(sem);
  EXPECT_EQ(Fnv1a(json), g.json_fnv1a)
      << SemanticsName(sem) << ": critical-path JSON changed:\n" << json;
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, DeterminismRegressionTest,
                         ::testing::ValuesIn(kSeedGoldens),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           std::string name(SemanticsName(info.param.sem));
                           for (char& c : name) {
                             if (c == ' ') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// The goldens above hold even after the parallel machinery has actually
// *run* in the same process: a prior RunParallelFused must leave no global
// state behind (no cached allocator state, no checksum mode flip, nothing)
// that could bend a later simulation.
TEST(DeterminismRegressionTest, GoldenHoldsAfterParallelRunInSameProcess) {
  {
    PhysicalMemory scratch(256, 4096);
    ParallelFusedConfig cfg;
    cfg.threads = 2;
    cfg.ops_per_thread = 50;
    cfg.bytes_per_op = 8 * 1024 + 9;
    cfg.arena_frames = 16;
    cfg.pool_pages = 8;
    cfg.seed = 3;
    cfg.verify = true;
    RunParallelFused(scratch, cfg);
  }
  const Golden& g = kSeedGoldens[0];  // kCopy
  TraceLog trace;
  Rig rig(InputBuffering::kPooled);
  rig.sender.set_trace(&trace);
  rig.receiver.set_trace(&trace);
  constexpr Vaddr kBuf = 0x20000000;
  rig.tx_app.CreateRegion(kBuf, 32 * 4096, RegionState::kUnmovable);
  rig.rx_app.CreateRegion(kBuf, 32 * 4096);
  ASSERT_EQ(rig.tx_app.Write(kBuf, TestPattern(10 * 4096, 3)), AccessResult::kOk);
  const InputResult r = rig.Transfer(kBuf + 100, kBuf + 100, 10 * 4096 + 77, Semantics::kCopy);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(rig.engine.event_digest(), g.event_digest);
  std::ostringstream os;
  WriteBreakdownJson(os, AnalyzeTrace(trace));
  EXPECT_EQ(Fnv1a(os.str()), g.json_fnv1a);
}

}  // namespace
}  // namespace genie
