// Checksum integration extension (paper Section 9 / reference [4]): both
// checksum modes verify good data; a corrupted checksum fails the input; and
// the semantic implication — integrated checksum+copy degrades copy to weak
// semantics — is observable, while the separate pass keeps it strong.
#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;
constexpr std::uint64_t kLen = 4 * kPage;

struct ChecksumRig : Rig {
  explicit ChecksumRig(ChecksumMode mode,
                       InputBuffering buffering = InputBuffering::kEarlyDemux)
      : Rig(buffering, WithMode(mode)) {
    tx_app.CreateRegion(kSrc, 16 * kPage);
    rx_app.CreateRegion(kDst, 16 * kPage);
  }
  static GenieOptions WithMode(ChecksumMode mode) {
    GenieOptions o;
    o.checksum_mode = mode;
    return o;
  }
};

class ChecksumModeTest
    : public ::testing::TestWithParam<std::tuple<ChecksumMode, InputBuffering>> {};

TEST_P(ChecksumModeTest, GoodDataVerifies) {
  ChecksumRig rig(std::get<0>(GetParam()), std::get<1>(GetParam()));
  const auto payload = TestPattern(kLen, 5);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);
  const InputResult r = rig.Transfer(kSrc, kDst, kLen, Semantics::kEmulatedCopy);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.checksum_ok);
  const auto got = rig.ReadBack(kDst, kLen);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), kLen), 0);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndBuffering, ChecksumModeTest,
    ::testing::Combine(::testing::Values(ChecksumMode::kSeparatePass, ChecksumMode::kIntegrated),
                       ::testing::Values(InputBuffering::kEarlyDemux, InputBuffering::kPooled,
                                         InputBuffering::kOutboard)),
    [](const ::testing::TestParamInfo<std::tuple<ChecksumMode, InputBuffering>>& param_info) {
      std::string name = std::get<0>(param_info.param) == ChecksumMode::kSeparatePass
                             ? "separate"
                             : "integrated";
      name += "_" + std::string(InputBufferingName(std::get<1>(param_info.param)));
      for (char& c : name) {
        if (c == ' ' || c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(ChecksumSemanticsTest, SeparatePassKeepsCopySemanticsStrong) {
  // Bad checksum, separate pass, copy semantics: the application buffer must
  // be untouched (verification happens before the copyout).
  ChecksumRig rig(ChecksumMode::kSeparatePass);
  const auto canvas = TestPattern(kLen, 0x77);
  ASSERT_EQ(rig.rx_app.Write(kDst, canvas), AccessResult::kOk);
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(kLen, 5)), AccessResult::kOk);

  rig.tx_ep.CorruptNextChecksum();
  const InputResult r = rig.Transfer(kSrc, kDst, kLen, Semantics::kCopy);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.checksum_ok);
  EXPECT_TRUE(r.crc_ok);  // The link itself was fine.
  const auto got = rig.ReadBack(kDst, kLen);
  EXPECT_EQ(std::memcmp(got.data(), canvas.data(), kLen), 0);  // Untouched.
  rig.ExpectQuiescent();
}

TEST(ChecksumSemanticsTest, IntegratedChecksumDegradesCopyToWeak) {
  // The paper's Section 9 point: if checksumming is integrated with the copy
  // into the application buffer and the checksum is wrong, the buffer is
  // overwritten with faulty data — actually weak, not copy, semantics.
  ChecksumRig rig(ChecksumMode::kIntegrated);
  const auto canvas = TestPattern(kLen, 0x77);
  ASSERT_EQ(rig.rx_app.Write(kDst, canvas), AccessResult::kOk);
  const auto payload = TestPattern(kLen, 5);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);

  rig.tx_ep.CorruptNextChecksum();
  const InputResult r = rig.Transfer(kSrc, kDst, kLen, Semantics::kCopy);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.checksum_ok);
  // The buffer WAS overwritten before the mismatch was detected.
  const auto got = rig.ReadBack(kDst, kLen);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), kLen), 0);
  rig.ExpectQuiescent();
}

TEST(ChecksumSemanticsTest, SwapPathsAlwaysVerifySeparately) {
  // Emulated copy with aligned buffers swaps pages; integration is
  // impossible there, so even kIntegrated falls back to a separate pass and
  // the application buffer is protected.
  ChecksumRig rig(ChecksumMode::kIntegrated);
  const auto canvas = TestPattern(kLen, 0x77);
  ASSERT_EQ(rig.rx_app.Write(kDst, canvas), AccessResult::kOk);
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(kLen, 5)), AccessResult::kOk);

  rig.tx_ep.CorruptNextChecksum();
  const InputResult r = rig.Transfer(kSrc, kDst, kLen, Semantics::kEmulatedCopy);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.checksum_ok);
  const auto got = rig.ReadBack(kDst, kLen);
  EXPECT_EQ(std::memcmp(got.data(), canvas.data(), kLen), 0);  // Untouched.
}

TEST(ChecksumSemanticsTest, ChannelRecoversAfterChecksumFailure) {
  ChecksumRig rig(ChecksumMode::kSeparatePass);
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(kLen, 5)), AccessResult::kOk);
  rig.tx_ep.CorruptNextChecksum();
  EXPECT_FALSE(rig.Transfer(kSrc, kDst, kLen, Semantics::kEmulatedCopy).ok);
  const InputResult retry = rig.Transfer(kSrc, kDst, kLen, Semantics::kEmulatedCopy);
  EXPECT_TRUE(retry.ok);
  EXPECT_TRUE(retry.checksum_ok);
  rig.ExpectQuiescent();
}

TEST(ChecksumCostTest, VmPassPlusReadBeatsChecksumAndCopy) {
  // The reference [4] claim as measured end-to-end: for long data, emulated
  // copy + separate checksum pass is faster than copy with an integrated
  // checksum (one-step checksum-and-copy).
  ChecksumRig vm_pass(ChecksumMode::kSeparatePass);
  ChecksumRig one_step(ChecksumMode::kIntegrated);
  const std::uint64_t len = 12 * kPage;
  ASSERT_EQ(vm_pass.tx_app.Write(kSrc, TestPattern(len, 5)), AccessResult::kOk);
  ASSERT_EQ(one_step.tx_app.Write(kSrc, TestPattern(len, 5)), AccessResult::kOk);

  // Warm up, then measure.
  vm_pass.Transfer(kSrc, kDst, len, Semantics::kEmulatedCopy);
  one_step.Transfer(kSrc, kDst, len, Semantics::kCopy);
  SimTime t0 = vm_pass.engine.now();
  const InputResult a = vm_pass.Transfer(kSrc, kDst, len, Semantics::kEmulatedCopy);
  const double vm_us = SimTimeToMicros(a.completed_at - t0);
  t0 = one_step.engine.now();
  const InputResult b = one_step.Transfer(kSrc, kDst, len, Semantics::kCopy);
  const double copy_us = SimTimeToMicros(b.completed_at - t0);
  EXPECT_LT(vm_us, copy_us);
}

}  // namespace
}  // namespace genie
