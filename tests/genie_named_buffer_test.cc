// Sender-managed buffer placement (paper Section 6.2.1, Hamlyn-style
// refs [5],[20]): persistent named receive buffers addressed by a tag in
// the packet header, with no per-datagram preposting.
#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;

struct NamedRig : Rig {
  NamedRig() {
    tx_app.CreateRegion(kSrc, 16 * kPage);
    rx_app.CreateRegion(kDst, 16 * kPage);
  }
};

Task<void> ReceiveInto(Endpoint& ep, std::uint32_t tag, InputResult* out) {
  *out = co_await ep.ReceiveNamed(tag);
}

TEST(NamedBufferTest, TaggedOutputLandsInNamedBuffer) {
  NamedRig rig;
  const std::uint64_t len = 4 * kPage;
  const std::uint32_t tag = rig.rx_ep.RegisterNamedBuffer(rig.rx_app, kDst, len);
  const auto payload = TestPattern(len, 7);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);

  InputResult r;
  std::move(ReceiveInto(rig.rx_ep, tag, &r)).Detach();
  std::move(rig.tx_ep.OutputTagged(rig.tx_app, kSrc, len, Semantics::kEmulatedShare, tag))
      .Detach();
  rig.engine.Run();

  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.addr, kDst);
  EXPECT_EQ(r.bytes, len);
  const auto got = rig.ReadBack(kDst, len);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), len), 0);
  rig.rx_ep.UnregisterNamedBuffer(tag);
}

TEST(NamedBufferTest, NoPrepostingNeededForBackToBackDatagrams) {
  // The point of sender-managed placement: many datagrams, one registration.
  NamedRig rig;
  const std::uint64_t len = 2 * kPage;
  const std::uint32_t tag = rig.rx_ep.RegisterNamedBuffer(rig.rx_app, kDst, len);

  for (int i = 0; i < 5; ++i) {
    const auto payload = TestPattern(len, static_cast<unsigned char>(i + 1));
    ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);
    InputResult r;
    std::move(ReceiveInto(rig.rx_ep, tag, &r)).Detach();
    std::move(rig.tx_ep.OutputTagged(rig.tx_app, kSrc, len, Semantics::kEmulatedShare, tag))
        .Detach();
    rig.engine.Run();
    ASSERT_TRUE(r.ok) << i;
    const auto got = rig.ReadBack(kDst, len);
    EXPECT_EQ(std::memcmp(got.data(), payload.data(), len), 0) << i;
  }
  EXPECT_EQ(rig.receiver.adapter().frames_dropped_no_buffer(), 0u);
  rig.rx_ep.UnregisterNamedBuffer(tag);
}

TEST(NamedBufferTest, ArrivalsQueueWhenReceiverIsSlow) {
  // Two datagrams arrive before the application asks; both notifications
  // are queued.
  NamedRig rig;
  const std::uint64_t len = kPage;
  const std::uint32_t tag = rig.rx_ep.RegisterNamedBuffer(rig.rx_app, kDst, len);
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(len, 1)), AccessResult::kOk);
  std::move(rig.tx_ep.OutputTagged(rig.tx_app, kSrc, len, Semantics::kEmulatedShare, tag))
      .Detach();
  std::move(rig.tx_ep.OutputTagged(rig.tx_app, kSrc, len, Semantics::kEmulatedShare, tag))
      .Detach();
  rig.engine.Run();

  InputResult r1;
  InputResult r2;
  std::move(ReceiveInto(rig.rx_ep, tag, &r1)).Detach();
  std::move(ReceiveInto(rig.rx_ep, tag, &r2)).Detach();
  rig.engine.Run();
  EXPECT_TRUE(r1.ok);
  EXPECT_TRUE(r2.ok);
  EXPECT_LE(r1.completed_at, r2.completed_at);
  rig.rx_ep.UnregisterNamedBuffer(tag);
}

TEST(NamedBufferTest, UnknownTagDropsFrame) {
  NamedRig rig;
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(kPage, 1)), AccessResult::kOk);
  std::move(rig.tx_ep.OutputTagged(rig.tx_app, kSrc, kPage, Semantics::kEmulatedShare, 99))
      .Detach();
  rig.engine.Run();
  EXPECT_EQ(rig.receiver.adapter().frames_dropped_no_buffer(), 1u);
  rig.ExpectQuiescent();
}

TEST(NamedBufferTest, NamedBufferPinnedAgainstPageout) {
  // The registration's long-lived input references make the buffer a
  // non-pageable area (Section 9's OS-bypass requirement).
  NamedRig rig;
  const std::uint64_t len = 2 * kPage;
  const std::uint32_t tag = rig.rx_ep.RegisterNamedBuffer(rig.rx_app, kDst, len);
  rig.receiver.pageout().ScanOnce(1000);
  EXPECT_GE(rig.receiver.pageout().skipped_input_referenced(), 2u);
  // Still works after the pageout sweep.
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(len, 9)), AccessResult::kOk);
  InputResult r;
  std::move(ReceiveInto(rig.rx_ep, tag, &r)).Detach();
  std::move(rig.tx_ep.OutputTagged(rig.tx_app, kSrc, len, Semantics::kEmulatedShare, tag))
      .Detach();
  rig.engine.Run();
  EXPECT_TRUE(r.ok);
  rig.rx_ep.UnregisterNamedBuffer(tag);
  // After unregistration the pages are evictable again.
  EXPECT_GT(rig.receiver.pageout().ScanOnce(1000), 0u);
}

TEST(NamedBufferTest, UnregisterReleasesWaiter) {
  NamedRig rig;
  const std::uint32_t tag = rig.rx_ep.RegisterNamedBuffer(rig.rx_app, kDst, kPage);
  InputResult r;
  r.ok = true;  // Must be overwritten with a failed result.
  std::move(ReceiveInto(rig.rx_ep, tag, &r)).Detach();
  rig.engine.Run();
  rig.rx_ep.UnregisterNamedBuffer(tag);
  rig.engine.Run();
  EXPECT_FALSE(r.ok);  // Woken with an empty result, not stranded.
}

TEST(NamedBufferTest, ChecksumVerifiedOnNamedPath) {
  GenieOptions options;
  options.checksum_mode = ChecksumMode::kSeparatePass;
  Rig rig(InputBuffering::kEarlyDemux, options);
  rig.tx_app.CreateRegion(kSrc, 16 * kPage);
  rig.rx_app.CreateRegion(kDst, 16 * kPage);
  const std::uint32_t tag = rig.rx_ep.RegisterNamedBuffer(rig.rx_app, kDst, kPage);
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(kPage, 4)), AccessResult::kOk);

  rig.tx_ep.CorruptNextChecksum();
  InputResult r;
  std::move(ReceiveInto(rig.rx_ep, tag, &r)).Detach();
  std::move(rig.tx_ep.OutputTagged(rig.tx_app, kSrc, kPage, Semantics::kEmulatedShare, tag))
      .Detach();
  rig.engine.Run();
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.checksum_ok);  // Reported; data already in place (weak).
  rig.rx_ep.UnregisterNamedBuffer(tag);
}

TEST(NamedBufferTest, LowerLatencyThanPrepostedEmulatedShare) {
  // Sender-managed placement removes per-datagram receive-path work: it
  // must beat even emulated share (the cheapest preposted semantics).
  NamedRig named;
  const std::uint64_t len = 8 * kPage;
  const std::uint32_t tag = named.rx_ep.RegisterNamedBuffer(named.rx_app, kDst, len);
  ASSERT_EQ(named.tx_app.Write(kSrc, TestPattern(len, 2)), AccessResult::kOk);
  InputResult r;
  std::move(ReceiveInto(named.rx_ep, tag, &r)).Detach();
  const SimTime t0 = named.engine.now();
  std::move(named.tx_ep.OutputTagged(named.tx_app, kSrc, len, Semantics::kEmulatedShare, tag))
      .Detach();
  named.engine.Run();
  ASSERT_TRUE(r.ok);
  const double named_us = SimTimeToMicros(r.completed_at - t0);

  NamedRig posted;
  ASSERT_EQ(posted.tx_app.Write(kSrc, TestPattern(len, 2)), AccessResult::kOk);
  const InputResult p = posted.Transfer(kSrc, kDst, len, Semantics::kEmulatedShare);
  ASSERT_TRUE(p.ok);
  const double posted_us = SimTimeToMicros(p.completed_at);

  EXPECT_LT(named_us, posted_us);
  named.rx_ep.UnregisterNamedBuffer(tag);
}

}  // namespace
}  // namespace genie
