// Multithreaded fused copy+checksum stress: K real threads x M transfers
// through the full parallel host-path stack (AllocationPoint sysbufs, fused
// UpdateWithCopy, optional ShardedBufferPool churn) over one PhysicalMemory.
//
// The load is scheduled by the OS, but every assertion is schedule-
// independent: per-thread digests are pure functions of (seed, thread id,
// op count, op size), verify=true re-reads every destination with the
// scalar checksum, and at quiescence VmInvariants::CheckAll proves the
// machine's frame accounting is exactly as if the run never happened.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/genie/host_path.h"
#include "src/mem/phys_memory.h"
#include "src/vm/address_space.h"
#include "src/vm/invariants.h"
#include "src/vm/vm.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;

// Frames so every thread can hold current + retired arenas plus slack.
std::size_t FramesFor(const ParallelFusedConfig& cfg) {
  return cfg.threads * cfg.arena_frames * 3 + cfg.pool_pages + 16;
}

TEST(HostPathMtStressTest, PerThreadDigestsAreScheduleIndependent) {
  ParallelFusedConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 200;
  cfg.bytes_per_op = 24 * 1024 + 77;  // odd length: exercises the carry path
  cfg.arena_frames = 32;
  cfg.seed = 42;
  cfg.verify = true;

  PhysicalMemory pm_a(FramesFor(cfg), kPage);
  const ParallelFusedResult a = RunParallelFused(pm_a, cfg);
  PhysicalMemory pm_b(FramesFor(cfg), kPage);
  const ParallelFusedResult b = RunParallelFused(pm_b, cfg);

  ASSERT_EQ(a.per_thread.size(), cfg.threads);
  ASSERT_EQ(b.per_thread.size(), cfg.threads);
  for (std::size_t t = 0; t < cfg.threads; ++t) {
    // Same seed, same thread index -> same digest, regardless of how the OS
    // interleaved the two runs.
    EXPECT_EQ(a.per_thread[t].digest, b.per_thread[t].digest) << "thread " << t;
    EXPECT_EQ(a.per_thread[t].ops, cfg.ops_per_thread);
    EXPECT_EQ(a.per_thread[t].bytes, cfg.ops_per_thread * cfg.bytes_per_op);
  }
  // Different threads checksum different patterns.
  EXPECT_NE(a.per_thread[0].digest, a.per_thread[1].digest);
  EXPECT_EQ(a.total_bytes, cfg.threads * cfg.ops_per_thread * cfg.bytes_per_op);
}

TEST(HostPathMtStressTest, SimdAndScalarKernelsProduceIdenticalDigests) {
  ParallelFusedConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 100;
  cfg.bytes_per_op = 16 * 1024 + 1;
  cfg.arena_frames = 16;
  cfg.seed = 7;

  cfg.use_simd = true;
  PhysicalMemory pm_simd(FramesFor(cfg), kPage);
  const ParallelFusedResult with_simd = RunParallelFused(pm_simd, cfg);

  cfg.use_simd = false;
  PhysicalMemory pm_scalar(FramesFor(cfg), kPage);
  const ParallelFusedResult scalar = RunParallelFused(pm_scalar, cfg);

  for (std::size_t t = 0; t < cfg.threads; ++t) {
    EXPECT_EQ(with_simd.per_thread[t].digest, scalar.per_thread[t].digest) << "thread " << t;
  }
}

TEST(HostPathMtStressTest, PoolChurnRunsCleanAndConserves) {
  ParallelFusedConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 500;
  cfg.bytes_per_op = 4 * 1024 + 13;
  cfg.arena_frames = 16;
  cfg.pool_pages = 8;  // deliberately tight: forces cross-shard stealing
  cfg.seed = 99;
  cfg.verify = true;

  PhysicalMemory pm(FramesFor(cfg), kPage);
  const std::size_t before = pm.allocated_frames();
  const ParallelFusedResult r = RunParallelFused(pm, cfg);
  // The pool and every arena unwound: frame ledger exactly as before.
  EXPECT_EQ(pm.allocated_frames(), before);
  EXPECT_EQ(r.total_bytes, cfg.threads * cfg.ops_per_thread * cfg.bytes_per_op);
  // 8 pool pages over 4 shards = 2 per shard; 4 threads churning every op
  // must have crossed shards at least once.
  EXPECT_GT(r.pool_steals + r.pool_depletions, 0u);
}

TEST(HostPathMtStressTest, AllocationPointsStayOnBumpFastPath) {
  ParallelFusedConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 1000;
  cfg.bytes_per_op = 8 * 1024;
  cfg.arena_frames = 64;  // far larger than the 3 frames an op needs
  cfg.seed = 5;

  PhysicalMemory pm(FramesFor(cfg), kPage);
  const ParallelFusedResult r = RunParallelFused(pm, cfg);
  for (const ParallelFusedThreadResult& t : r.per_thread) {
    // Alloc-use-free leaves the arena empty each op, so it rewinds in place;
    // steady state never goes back to the shared allocator.
    EXPECT_LE(t.alloc.refills, 2u);
    EXPECT_EQ(t.alloc.failed_refills, 0u);
    EXPECT_GT(t.alloc.bump_allocations + t.alloc.rewinds, 0u);
  }
}

// The headline invariant: a parallel run over the same PhysicalMemory a
// simulation Vm uses leaves no trace — VmInvariants::CheckAll(expect_
// quiescent) passes bit-for-bit, with live simulation state (an address
// space with mapped pages) untouched around it.
TEST(HostPathMtStressTest, VmInvariantsHoldAtQuiescence) {
  Vm vm(512, kPage);
  AddressSpace app(vm, "app");
  ASSERT_NE(app.CreateRegion(0x10000, 8 * kPage, RegionState::kUnmovable), nullptr);
  // Touch a few pages so the sim side has real PTEs and owned frames.
  const std::byte probe[] = {std::byte{0xAB}};
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(app.Write(0x10000 + static_cast<Vaddr>(i) * kPage, probe), AccessResult::kOk);
  }
  const InvariantReport before = VmInvariants::CheckAll(vm, app, /*expect_quiescent=*/true);
  ASSERT_TRUE(before.ok()) << before.ToString();
  const std::size_t allocated_before = vm.pm().allocated_frames();

  ParallelFusedConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 300;
  cfg.bytes_per_op = 12 * 1024 + 5;
  cfg.arena_frames = 16;
  cfg.pool_pages = 12;
  cfg.seed = 1234;
  cfg.verify = true;
  ASSERT_GE(vm.pm().num_frames(), FramesFor(cfg) + allocated_before);
  RunParallelFused(vm.pm(), cfg);

  EXPECT_EQ(vm.pm().allocated_frames(), allocated_before);
  const InvariantReport after = VmInvariants::CheckAll(vm, app, /*expect_quiescent=*/true);
  EXPECT_TRUE(after.ok()) << after.ToString();
  // The sim side's data survived the parallel storm.
  for (int i = 0; i < 8; ++i) {
    std::byte back[1] = {};
    ASSERT_EQ(app.Read(0x10000 + static_cast<Vaddr>(i) * kPage, back), AccessResult::kOk);
    EXPECT_EQ(back[0], std::byte{0xAB});
  }
}

}  // namespace
}  // namespace genie
