// API edge cases and misuse: bad buffers, taxonomy misuse, boundary
// lengths — the contract checks a downstream user would hit first.
#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;

struct EdgeRig : Rig {
  EdgeRig() {
    tx_app.CreateRegion(kSrc, 32 * kPage);
    rx_app.CreateRegion(kDst, 32 * kPage);
  }
};

TEST(EdgeTest, OutputFromUnmappedAddressAborts) {
  EdgeRig rig;
  EXPECT_DEATH(
      {
        std::move(rig.tx_ep.Output(rig.tx_app, 0xDEAD0000, 64, Semantics::kEmulatedCopy))
            .Detach();
        rig.engine.Run();
      },
      "bad output buffer");
}

TEST(EdgeTest, OutputPastRegionEndAborts) {
  EdgeRig rig;
  EXPECT_DEATH(
      {
        std::move(rig.tx_ep.Output(rig.tx_app, kSrc + 31 * kPage, 2 * kPage,
                                   Semantics::kEmulatedShare))
            .Detach();
        rig.engine.Run();
      },
      "bad output buffer");
}

TEST(EdgeTest, ZeroLengthOutputAborts) {
  EdgeRig rig;
  EXPECT_DEATH(
      {
        std::move(rig.tx_ep.Output(rig.tx_app, kSrc, 0, Semantics::kCopy)).Detach();
      },
      "");
}

TEST(EdgeTest, OversizedDatagramAborts) {
  EdgeRig rig;
  EXPECT_DEATH(
      {
        std::move(rig.tx_ep.Output(rig.tx_app, kSrc, kMaxAal5Payload + 1, Semantics::kCopy))
            .Detach();
      },
      "");
}

TEST(EdgeTest, InputWithSystemAllocatedSemanticsViaWrongCallAborts) {
  EdgeRig rig;
  EXPECT_DEATH(
      {
        auto drive = [](Endpoint& ep, AddressSpace& app) -> Task<void> {
          (void)co_await ep.Input(app, kDst, kPage, Semantics::kMove);
        };
        std::move(drive(rig.rx_ep, rig.rx_app)).Detach();
      },
      "application-allocated");
}

TEST(EdgeTest, SystemAllocatedInputViaWrongCallAborts) {
  EdgeRig rig;
  EXPECT_DEATH(
      {
        auto drive = [](Endpoint& ep, AddressSpace& app) -> Task<void> {
          (void)co_await ep.InputSystemAllocated(app, kPage, Semantics::kCopy);
        };
        std::move(drive(rig.rx_ep, rig.rx_app)).Detach();
      },
      "");
}

TEST(EdgeTest, FreeUnknownIoBufferAborts) {
  EdgeRig rig;
  EXPECT_DEATH(rig.tx_ep.FreeIoBuffer(rig.tx_app, 0x12340000), "unknown");
}

TEST(EdgeTest, MaxAal5PayloadTransfers) {
  // The largest legal datagram (65535 bytes) round-trips for the taxonomy's
  // headline semantics.
  EdgeRig rig;
  const std::uint64_t len = kMaxAal5Payload;
  const auto payload = TestPattern(len, 9);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);
  const InputResult r = rig.Transfer(kSrc, kDst, len, Semantics::kEmulatedCopy);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.bytes, len);
  const auto got = rig.ReadBack(kDst, len);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), len), 0);
}

TEST(EdgeTest, OneByteTransferEverySemantics) {
  for (const Semantics sem : kAllSemantics) {
    EdgeRig rig;
    Vaddr src = kSrc;
    if (IsSystemAllocated(sem)) {
      src = rig.tx_ep.AllocateIoBuffer(rig.tx_app, 1);
    }
    const auto payload = TestPattern(1, 7);
    ASSERT_EQ(rig.tx_app.Write(src, payload), AccessResult::kOk);
    const InputResult r = rig.Transfer(src, kDst, 1, sem);
    ASSERT_TRUE(r.ok) << SemanticsName(sem);
    const auto got = rig.ReadBack(r.addr, 1);
    EXPECT_EQ(got[0], payload[0]) << SemanticsName(sem);
  }
}

TEST(EdgeTest, UnknownNamedTagReceiveAborts) {
  EdgeRig rig;
  EXPECT_DEATH(
      {
        auto drive = [](Endpoint& ep) -> Task<void> {
          (void)co_await ep.ReceiveNamed(42);
        };
        std::move(drive(rig.rx_ep)).Detach();
      },
      "unknown named buffer");
}

}  // namespace
}  // namespace genie
