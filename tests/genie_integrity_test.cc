// The taxonomy's integrity matrix (paper Section 2.2), observed end to end:
// strong-integrity semantics deliver the data as of the output call and
// never expose partial input; weak-integrity semantics do not guarantee
// either. Also: failed (CRC-error) inputs and mid-I/O buffer access.
#include <gtest/gtest.h>

#include "tests/genie_test_util.h"

namespace genie {
namespace {

constexpr std::uint32_t kPage = 4096;
constexpr Vaddr kSrc = 0x20000000;
constexpr Vaddr kDst = 0x30000000;
constexpr std::uint64_t kLen = 8 * kPage;

// Time inside the wire transfer of a kLen datagram (after prepare; several
// pages still untransmitted).
constexpr SimTime MidTransfer() { return MicrosToSimTime(130 + 4 * kPage * 0.0598); }

class IntegrityRig : public Rig {
 public:
  explicit IntegrityRig(GenieOptions options = GenieOptions{})
      : Rig(InputBuffering::kEarlyDemux, options) {
    tx_app.CreateRegion(kSrc, 16 * kPage, RegionState::kUnmovable);
    rx_app.CreateRegion(kDst, 16 * kPage);
  }
};

// --- Output integrity: overwrite the send buffer mid-transmission ---

class OutputTamperTest : public ::testing::TestWithParam<Semantics> {};

TEST_P(OutputTamperTest, OverwriteDuringOutput) {
  const Semantics sem = GetParam();
  if (IsSystemAllocated(sem)) {
    // Strong move semantics make the buffer inaccessible during output; the
    // hazard cannot arise by construction (tested separately below). Weak
    // move leaves it mapped; covered via share behavior.
    GTEST_SKIP();
  }
  IntegrityRig rig;
  const auto original = TestPattern(kLen, 0x10);
  ASSERT_EQ(rig.tx_app.Write(kSrc, original), AccessResult::kOk);

  // Overwrite every page of the source buffer mid-transmission.
  const auto tamper = TestPattern(kLen, 0x77);
  bool tampered_ok = false;
  rig.engine.ScheduleAt(MidTransfer(), [&] {
    tampered_ok = rig.tx_app.Write(kSrc, tamper) == AccessResult::kOk;
  });

  const InputResult result = rig.Transfer(kSrc, kDst, kLen, sem);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(tampered_ok);  // The writer never faults unrecoverably.
  const auto got = rig.ReadBack(kDst, kLen);

  if (IsStrongIntegrity(sem)) {
    // Copy and emulated copy: the receiver sees the data as of the output
    // invocation, byte for byte.
    EXPECT_EQ(std::memcmp(got.data(), original.data(), kLen), 0)
        << SemanticsName(sem) << " leaked a concurrent overwrite";
    if (sem == Semantics::kEmulatedCopy) {
      // ... and it was TCOW, not an eager copy, that saved us.
      EXPECT_GT(rig.tx_app.counters().tcow_copies, 0u);
    }
  } else {
    // Share and emulated share: the overwrite corrupts untransmitted pages.
    EXPECT_NE(std::memcmp(got.data(), original.data(), kLen), 0)
        << SemanticsName(sem) << " unexpectedly provided strong integrity";
    // The first page left the wire before the tamper: still original.
    EXPECT_EQ(std::memcmp(got.data(), original.data(), kPage), 0);
    // The last page had not: tampered.
    EXPECT_EQ(std::memcmp(got.data() + kLen - kPage, tamper.data() + kLen - kPage, kPage), 0);
  }
  // After output dispose, the application can write its buffer again freely.
  EXPECT_EQ(rig.tx_app.Write(kSrc, original), AccessResult::kOk);
}

INSTANTIATE_TEST_SUITE_P(AppAllocated, OutputTamperTest,
                         ::testing::Values(Semantics::kCopy, Semantics::kEmulatedCopy,
                                           Semantics::kShare, Semantics::kEmulatedShare),
                         [](const ::testing::TestParamInfo<Semantics>& param_info) {
                           std::string name(SemanticsName(param_info.param));
                           for (char& c : name) {
                             if (c == ' ') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// Move semantics: accessing the buffer during output is an unrecoverable
// fault (the region is hidden / invalidated), which is how strong integrity
// is enforced for system-allocated output.
TEST(MoveOutputIntegrityTest, AccessDuringMoveOutputFaults) {
  IntegrityRig rig;
  const Vaddr buf = rig.tx_ep.AllocateIoBuffer(rig.tx_app, kLen);
  ASSERT_EQ(rig.tx_app.Write(buf, TestPattern(kLen, 1)), AccessResult::kOk);

  AccessResult mid_access = AccessResult::kOk;
  rig.engine.ScheduleAt(MidTransfer(), [&] {
    std::vector<std::byte> tmp(16);
    mid_access = rig.tx_app.Write(buf, tmp);
  });
  const InputResult result = rig.Transfer(buf, 0, kLen, Semantics::kEmulatedMove);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(mid_access, AccessResult::kUnrecoverableFault);
  // After dispose the region is moved out (hidden): still unrecoverable.
  std::vector<std::byte> tmp(16);
  EXPECT_EQ(rig.tx_app.Write(buf, tmp), AccessResult::kUnrecoverableFault);
}

// Weak move: the buffer stays mapped after output; accessing it does not
// fault, but its contents are indeterminate (may be reused for later input).
TEST(MoveOutputIntegrityTest, WeakMoveBufferAccessibleButIndeterminate) {
  IntegrityRig rig;
  const Vaddr buf = rig.tx_ep.AllocateIoBuffer(rig.tx_app, kLen);
  ASSERT_EQ(rig.tx_app.Write(buf, TestPattern(kLen, 1)), AccessResult::kOk);
  const InputResult result = rig.Transfer(buf, 0, kLen, Semantics::kEmulatedWeakMove);
  ASSERT_TRUE(result.ok);
  std::vector<std::byte> tmp(16);
  EXPECT_EQ(rig.tx_app.Read(buf, tmp), AccessResult::kOk);  // No crash.
}

// --- Input integrity: observe the receive buffer mid-arrival ---

class InputObservationTest : public ::testing::TestWithParam<Semantics> {};

TEST_P(InputObservationTest, PartialInputVisibilityMatchesIntegrity) {
  const Semantics sem = GetParam();
  IntegrityRig rig;
  const auto canvas = TestPattern(kLen, 0x55);
  ASSERT_EQ(rig.rx_app.Write(kDst, canvas), AccessResult::kOk);
  const auto payload = TestPattern(kLen, 0x22);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);

  std::vector<std::byte> observed(kLen);
  rig.engine.ScheduleAt(MidTransfer(), [&] {
    ASSERT_EQ(rig.rx_app.Read(kDst, observed), AccessResult::kOk);
  });
  const InputResult result = rig.Transfer(kSrc, kDst, kLen, sem);
  ASSERT_TRUE(result.ok);

  if (IsStrongIntegrity(sem)) {
    // Copy / emulated copy: mid-input the buffer still shows the old bytes.
    EXPECT_EQ(std::memcmp(observed.data(), canvas.data(), kLen), 0)
        << SemanticsName(sem) << " exposed a partial input";
  } else {
    // Share / emulated share: in-place input is observable as it arrives —
    // early pages new, late pages old.
    EXPECT_EQ(std::memcmp(observed.data(), payload.data(), kPage), 0);
    EXPECT_EQ(std::memcmp(observed.data() + kLen - kPage, canvas.data() + kLen - kPage, kPage),
              0);
  }
  // Once complete, everyone sees the payload.
  const auto got = rig.ReadBack(kDst, kLen);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), kLen), 0);
}

INSTANTIATE_TEST_SUITE_P(AppAllocated, InputObservationTest,
                         ::testing::Values(Semantics::kCopy, Semantics::kEmulatedCopy,
                                           Semantics::kShare, Semantics::kEmulatedShare),
                         [](const ::testing::TestParamInfo<Semantics>& param_info) {
                           std::string name(SemanticsName(param_info.param));
                           for (char& c : name) {
                             if (c == ' ') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Failed input (CRC error) ---

class FailedInputTest : public ::testing::TestWithParam<Semantics> {};

TEST_P(FailedInputTest, CrcFailureRespectsIntegrity) {
  const Semantics sem = GetParam();
  IntegrityRig rig;
  const auto canvas = TestPattern(kLen, 0x55);
  if (IsApplicationAllocated(sem)) {
    ASSERT_EQ(rig.rx_app.Write(kDst, canvas), AccessResult::kOk);
  }
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(kLen, 0x22)), AccessResult::kOk);
  if (IsSystemAllocated(sem)) {
    // Re-point the source at a moved-in region.
    Region* r = rig.tx_app.FindRegion(kSrc);
    r->state = RegionState::kMovedIn;
  }

  CrcErrorInjector crc(rig.sender.adapter());
  crc.CorruptNextFrame();
  const InputResult result = rig.Transfer(kSrc, kDst, kLen, sem);

  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.crc_ok);
  EXPECT_EQ(rig.rx_ep.stats().crc_failures, 1u);
  rig.ExpectQuiescent();

  if (IsApplicationAllocated(sem) && IsStrongIntegrity(sem)) {
    // Strong integrity: the application buffer is untouched after a failed
    // input operation.
    const auto got = rig.ReadBack(kDst, kLen);
    EXPECT_EQ(std::memcmp(got.data(), canvas.data(), kLen), 0);
  }
  // No leaked frames on either side.
  EXPECT_EQ(rig.receiver.vm().pm().zombie_frames(), 0u);

  // The channel still works afterwards. Move-family output consumed the
  // source buffer (deallocated / moved out), so take a fresh one.
  Vaddr retry_src = kSrc;
  if (IsSystemAllocated(sem)) {
    retry_src = rig.tx_ep.AllocateIoBuffer(rig.tx_app, kLen);
    ASSERT_EQ(rig.tx_app.Write(retry_src, TestPattern(kLen, 0x23)), AccessResult::kOk);
  }
  const InputResult retry = rig.Transfer(retry_src, kDst, kLen, sem);
  EXPECT_TRUE(retry.ok);
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, FailedInputTest, ::testing::ValuesIn(kAllSemantics),
                         [](const ::testing::TestParamInfo<Semantics>& param_info) {
                           std::string name(SemanticsName(param_info.param));
                           for (char& c : name) {
                             if (c == ' ') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Buffer deallocation during I/O (Section 3.1's malicious application) ---

TEST(MaliciousAppTest, RemoveOutputBufferRegionMidTransfer) {
  IntegrityRig rig;
  const auto payload = TestPattern(kLen, 0x31);
  ASSERT_EQ(rig.tx_app.Write(kSrc, payload), AccessResult::kOk);

  rig.engine.ScheduleAt(MidTransfer(), [&] {
    rig.tx_app.RemoveRegion(kSrc);  // Free the buffer under the DMA.
  });
  const InputResult result = rig.Transfer(kSrc, kDst, kLen, Semantics::kEmulatedShare);
  ASSERT_TRUE(result.ok);
  // The object reference held by the pending I/O (backed by I/O-deferred
  // deallocation at the frame level) kept the pages alive: the device read
  // the original bytes despite the free.
  const auto got = rig.ReadBack(kDst, kLen);
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), kLen), 0);
  EXPECT_EQ(rig.sender.vm().pm().zombie_frames(), 0u);  // Reclaimed after.
  // All sender frames were released once the output unreferenced them.
  EXPECT_EQ(rig.sender.vm().pm().allocated_frames(), 0u);
}

TEST(MaliciousAppTest, RemoveInputRegionMidTransferGetsRemapped) {
  IntegrityRig rig;
  ASSERT_EQ(rig.tx_app.Write(kSrc, TestPattern(kLen, 0x42)), AccessResult::kOk);
  Region* src_region = rig.tx_app.FindRegion(kSrc);
  src_region->state = RegionState::kMovedIn;

  // System-allocated input whose prepared region the application removes
  // mid-transfer: Genie's dispose-time region check maps the pages to a new
  // region so the returned location is valid (Section 6.2.1).
  InputResult result;
  auto input_driver = [](Endpoint& ep, AddressSpace& app, std::uint64_t n,
                         InputResult* out) -> Task<void> {
    *out = co_await ep.InputSystemAllocated(app, n, Semantics::kEmulatedMove);
  };
  std::move(input_driver(rig.rx_ep, rig.rx_app, kLen, &result)).Detach();
  std::move(rig.tx_ep.Output(rig.tx_app, kSrc, kLen, Semantics::kEmulatedMove)).Detach();
  bool removed = false;
  rig.engine.ScheduleAt(MidTransfer(), [&] {
    // Find the prepared (moving-in) region and remove it.
    for (Vaddr probe = 0x10000000; probe < 0x10000000 + 64ull * kPage; probe += kPage) {
      Region* r = rig.rx_app.FindRegion(probe);
      if (r != nullptr && r->state == RegionState::kMovingIn) {
        rig.rx_app.RemoveRegion(r->start);
        removed = true;
        break;
      }
    }
  });
  rig.engine.Run();
  ASSERT_TRUE(removed);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(rig.rx_ep.stats().regions_remapped_at_dispose, 1u);
  const auto got = rig.ReadBack(result.addr, kLen);
  const auto expect = TestPattern(kLen, 0x42);
  EXPECT_EQ(std::memcmp(got.data(), expect.data(), kLen), 0);
}

}  // namespace
}  // namespace genie
