// Multi-packet (fragmented) message transfer over a Genie endpoint —
// the "multiple-packet communication" setting of paper reference [4].
//
// Messages larger than one AAL5 datagram are split into fragments at page-
// multiple boundaries (so every fragment of an aligned buffer stays
// swappable) and reassembled in place at the receiver. A window of receives
// is preposted to keep the pipe full; with the adapter's credit-based flow
// control enabled, senders additionally never overrun the window.
#ifndef GENIE_SRC_GENIE_MESSAGE_H_
#define GENIE_SRC_GENIE_MESSAGE_H_

#include <cstdint>

#include "src/genie/endpoint.h"

namespace genie {

struct MessageResult {
  bool ok = false;
  std::uint64_t bytes = 0;
  SimTime completed_at = 0;
  std::uint32_t fragments = 0;
};

class MessageChannel {
 public:
  struct Options {
    // Fragment payload size; must be a page multiple <= the AAL5 maximum.
    std::uint64_t fragment_bytes = 60 * 1024;
    // How many fragment receives to keep preposted.
    std::uint32_t window = 4;
  };

  explicit MessageChannel(Endpoint& endpoint) : MessageChannel(endpoint, Options{}) {}
  MessageChannel(Endpoint& endpoint, Options options);

  Endpoint& endpoint() { return *endpoint_; }
  const Options& options() const { return options_; }

  // Sends [va, va+len) as a sequence of fragments with `sem`
  // (application-allocated semantics only: fragments reassemble into one
  // contiguous receiver buffer). Completes when the last fragment's output
  // call returns.
  Task<void> SendMessage(AddressSpace& app, Vaddr va, std::uint64_t len, Semantics sem);

  // Receives a message of exactly `len` bytes into [va, va+len).
  Task<MessageResult> ReceiveMessage(AddressSpace& app, Vaddr va, std::uint64_t len,
                                     Semantics sem);

 private:
  Endpoint* endpoint_;
  Options options_;
};

}  // namespace genie

#endif  // GENIE_SRC_GENIE_MESSAGE_H_
