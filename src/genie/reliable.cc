#include "src/genie/reliable.h"

#include <algorithm>
#include <vector>

#include "src/util/check.h"

namespace genie {

ReliableDelivery::ReliableDelivery(Engine& engine, Adapter& adapter, std::string xfer_track)
    : engine_(&engine),
      adapter_(&adapter),
      xfer_track_(std::move(xfer_track)),
      timers_(engine) {
  adapter_->set_ack_handler(
      [this](std::uint64_t channel, std::uint64_t seq, bool ok) { OnAck(channel, seq, ok); });
  adapter_->set_sack_handler(
      [this](std::uint64_t channel, std::vector<SackCell> cells) { OnSack(channel, cells); });
  adapter_->set_fence_handler([this](std::uint64_t channel, std::uint32_t peer_epoch) {
    OnFence(channel, peer_epoch);
  });
  adapter_->set_resync_ack_handler([this](std::uint64_t channel, std::uint32_t peer_epoch) {
    OnResyncAck(channel, peer_epoch);
  });
}

void ReliableDelivery::Instant(const std::string& text, std::uint64_t flow) {
  if (trace_ != nullptr) {
    trace_->Instant(xfer_track_, text, "reliable", engine_->now(), flow);
  }
}

void ReliableDelivery::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    ack_rtt_ = nullptr;
    retransmit_delay_ = nullptr;
    return;
  }
  ack_rtt_ = &metrics->Histogram("reliable.ack_rtt_us");
  retransmit_delay_ = &metrics->Histogram("reliable.retransmit_delay_us");
}

SimTime ReliableDelivery::WithJitter(SimTime timeout) {
  if (options_.jitter_frac <= 0.0) {
    return timeout;
  }
  const double stretch = static_cast<double>(timeout) * options_.jitter_frac * rng_.NextDouble();
  return timeout + static_cast<SimTime>(stretch);
}

void ReliableDelivery::OnAck(std::uint64_t channel, std::uint64_t seq, bool ok) {
  if (ok) {
    ++stats_.acks;
  } else {
    ++stats_.nacks;
  }
  if (options_.window > 1) {
    // Windowed mode still receives per-seq control cells for nacks (CRC
    // failures, dropped frames) and duplicate re-acks; SACK trains carry the
    // normal acknowledgement traffic (OnSack).
    WindowEntry* entry = FindEntry(channel, seq);
    if (entry != nullptr && ok && entry->result == WindowEntry::kGiveUp) {
      // The ack landed in the same instant as the give-up verdict, before
      // the owning coroutine consumed it: the frame WAS delivered, so the
      // ack wins and the transfer completes (counted once, as delivered).
      entry->result = WindowEntry::kAcked;
      if (entry->token != nullptr) {
        entry->token->resolved = true;
      }
      return;
    }
    if (entry == nullptr || entry->result != WindowEntry::kPending) {
      ++stats_.stale_acks;
      return;
    }
    if (ok) {
      ResolveAcked(*entry);
    } else {
      timers_.Cancel(entry->timer);
      RetransmitOrGiveUp(channel, seq, /*from_nack=*/true);
    }
    return;
  }
  auto it = pending_acks_.find({channel, seq});
  if (it == pending_acks_.end()) {
    // Re-ack of a frame we already resolved (the receiver re-acks every
    // suppressed duplicate so a lost ack cannot wedge the sender).
    ++stats_.stale_acks;
    return;
  }
  PendingAck& pending = *it->second;
  if (pending.outcome != PendingAck::kNone) {
    if (ok && pending.outcome == PendingAck::kTimeout) {
      // Ack and retransmit timer fired in the same instant with the timer's
      // event first; the round is still unconsumed (the owner wakes via a
      // zero-delay event), so the ack wins and the round completes.
      pending.outcome = PendingAck::kAcked;
      if (pending.token != nullptr) {
        pending.token->resolved = true;
      }
    }
    return;  // This round already resolved (e.g. ack racing the timeout).
  }
  pending.outcome = ok ? PendingAck::kAcked : PendingAck::kNacked;
  if (ok && pending.token != nullptr) {
    pending.token->resolved = true;
  }
  pending.event.Set();
}

Task<ReliableDelivery::TxReport> ReliableDelivery::TransmitReliably(
    std::uint64_t channel, IoVec iov, std::uint32_t header, std::uint32_t tag, std::string label,
    std::shared_ptr<CancelToken> token, std::uint64_t flow) {
  GENIE_CHECK(options_.arq) << "TransmitReliably with ARQ disabled";
  if (options_.window > 1) {
    co_return co_await TransmitWindowed(channel, iov, header, tag, std::move(label),
                                        std::move(token), flow);
  }
  TxReport report;
  if (crashed_) {
    report.outcome = TxOutcome::kPeerCrashed;
    ++stats_.peer_crash_aborts;
    co_return report;
  }
  if (!co_await AwaitResync(channel, token, label, flow)) {
    report.outcome = TxOutcome::kCancelled;
    ++stats_.cancelled_transmits;
    co_return report;
  }
  if (crashed_) {
    report.outcome = TxOutcome::kPeerCrashed;
    ++stats_.peer_crash_aborts;
    co_return report;
  }
  const std::uint64_t seq = ++next_seq_[channel];
  ++stats_.sequenced_frames;

  SimTime timeout = options_.initial_timeout;
  PendingAck pending(*engine_);
  pending.token = token;
  const std::pair<std::uint64_t, std::uint64_t> key{channel, seq};
  // Registered before the first transmit: with a delayed-completion fault on
  // our side of the wire, the peer's ack can arrive while TransmitFrame is
  // still running.
  pending_acks_[key] = &pending;
  if (token != nullptr) {
    token->wake = &pending.event;
  }

  for (std::uint32_t attempt = 0;; ++attempt) {
    report.attempts = attempt + 1;
    auto ctl = std::make_shared<TxControl>();
    ctl->seq = seq;
    ctl->src_epoch = local_epoch_;
    ctl->dst_epoch = PeerEpoch(channel);
    // A retransmitted frame re-occupies the slot its credit already paid
    // for; acquiring again would double-spend and deadlock under loss.
    ctl->skip_credit = attempt > 0;
    if (token != nullptr) {
      token->ctl = ctl;
    }
    co_await adapter_->TransmitFrame(channel, iov, header, tag, ctl, flow);
    if (pending.outcome == PendingAck::kCrashed || crashed_) {
      report.outcome = TxOutcome::kPeerCrashed;
      ++stats_.peer_crash_aborts;
      break;
    }
    if (ctl->aborted || (token != nullptr && token->cancelled)) {
      report.outcome = TxOutcome::kCancelled;
      ++stats_.cancelled_transmits;
      break;
    }
    const SimTime attempt_end = engine_->now();
    if (pending.outcome == PendingAck::kNone) {
      pending.timer = timers_.ScheduleAfter(WithJitter(timeout), [this, key] {
        auto it = pending_acks_.find(key);
        if (it == pending_acks_.end() || it->second->outcome != PendingAck::kNone) {
          return;
        }
        it->second->outcome = PendingAck::kTimeout;
        it->second->event.Set();
      });
      co_await pending.event.Wait();
      timers_.Cancel(pending.timer);
    }
    const PendingAck::Outcome outcome = pending.outcome;
    pending.outcome = PendingAck::kNone;
    pending.event.Reset();
    if (trace_ != nullptr && engine_->now() > attempt_end) {
      // Time parked between this attempt leaving the wire and its
      // resolution (ack, nack, or timeout).
      trace_->Span(xfer_track_, label + ".ack_wait", "reliable", attempt_end, engine_->now(),
                   flow);
    }

    if (outcome == PendingAck::kAcked) {
      if (ack_rtt_ != nullptr) {
        ack_rtt_->Add(SimTimeToMicros(engine_->now() - attempt_end));
      }
      report.outcome = TxOutcome::kDelivered;
      break;
    }
    if (outcome == PendingAck::kCrashed) {
      report.outcome = TxOutcome::kPeerCrashed;
      ++stats_.peer_crash_aborts;
      break;
    }
    if (token != nullptr && token->cancelled) {
      report.outcome = TxOutcome::kCancelled;
      ++stats_.cancelled_transmits;
      break;
    }
    if (attempt >= options_.max_retransmits) {
      report.outcome = TxOutcome::kGiveUp;
      ++stats_.giveups;
      Instant(label + " giveup seq " + std::to_string(seq) + " after " +
                  std::to_string(report.attempts) + " attempts",
              flow);
      break;
    }
    ++stats_.retransmits;
    if (outcome == PendingAck::kTimeout) {
      ++stats_.timeouts;
      if (retransmit_delay_ != nullptr) {
        retransmit_delay_->Add(SimTimeToMicros(engine_->now() - attempt_end));
      }
      Instant(label + " retransmit(timeout) seq " + std::to_string(seq) + " attempt " +
                  std::to_string(attempt + 2),
              flow);
      timeout = std::min<SimTime>(
          options_.max_timeout, static_cast<SimTime>(static_cast<double>(timeout) *
                                                     std::max(1.0, options_.backoff_factor)));
    } else {  // kNacked: receiver saw the frame but CRC failed.
      Instant(label + " retransmit(nack) seq " + std::to_string(seq) + " attempt " +
                  std::to_string(attempt + 2),
              flow);
      if (options_.nack_delay > 0) {
        const SimTime delay_start = engine_->now();
        co_await Delay(*engine_, options_.nack_delay);
        if (trace_ != nullptr) {
          trace_->Span(xfer_track_, label + ".nack_delay", "reliable", delay_start,
                       engine_->now(), flow);
        }
      }
      if (pending.outcome == PendingAck::kAcked) {
        // A duplicate delivery got acked while we paused; done after all.
        if (ack_rtt_ != nullptr) {
          ack_rtt_->Add(SimTimeToMicros(engine_->now() - attempt_end));
        }
        report.outcome = TxOutcome::kDelivered;
        break;
      }
      if (pending.outcome == PendingAck::kCrashed || crashed_) {
        report.outcome = TxOutcome::kPeerCrashed;
        ++stats_.peer_crash_aborts;
        break;
      }
      if (token != nullptr && token->cancelled) {
        report.outcome = TxOutcome::kCancelled;
        ++stats_.cancelled_transmits;
        break;
      }
      if (retransmit_delay_ != nullptr) {
        retransmit_delay_->Add(SimTimeToMicros(engine_->now() - attempt_end));
      }
    }
  }

  pending_acks_.erase(key);
  if (report.outcome == TxOutcome::kDelivered) {
    ++stats_.delivered_frames;
    stats_.delivered_bytes += iov.total_bytes();
  }
  if (token != nullptr) {
    token->resolved = true;
    token->wake = nullptr;
    token->ctl.reset();
  }
  co_return report;
}

ReliableDelivery::WindowEntry* ReliableDelivery::FindEntry(std::uint64_t channel,
                                                           std::uint64_t seq) {
  auto win = windows_.find(channel);
  if (win == windows_.end()) {
    return nullptr;
  }
  auto it = win->second->inflight.find(seq);
  return it == win->second->inflight.end() ? nullptr : it->second.get();
}

void ReliableDelivery::ResolveAcked(WindowEntry& entry) {
  timers_.Cancel(entry.timer);
  const SimTime now = engine_->now();
  if (trace_ != nullptr && entry.last_tx_end > 0 && now > entry.last_tx_end) {
    // The final ack_wait span of this transfer: last attempt off the wire to
    // ack arrival. Earlier attempts already emitted theirs when they timed
    // out (RetransmitOrGiveUp), so the critical-path classifier sees the
    // same per-flow shape as stop-and-wait.
    trace_->Span(xfer_track_, entry.label + ".ack_wait", "reliable", entry.last_tx_end, now,
                 entry.flow);
  }
  if (ack_rtt_ != nullptr) {
    // last_tx_end == 0 means the ack beat the first transmit's completion
    // (delayed-completion fault on our side): zero observable rtt.
    ack_rtt_->Add(entry.last_tx_end > 0 ? SimTimeToMicros(now - entry.last_tx_end) : 0.0);
  }
  entry.result = WindowEntry::kAcked;
  if (entry.token != nullptr) {
    entry.token->resolved = true;
  }
  entry.done.Set();
}

void ReliableDelivery::OnSack(std::uint64_t channel, const std::vector<SackCell>& cells) {
  auto win = windows_.find(channel);
  if (win == windows_.end() || cells.empty()) {
    return;
  }
  // Resolve every pending entry the train covers. Entries are erased only by
  // their owning coroutine (woken here via done.Set()), so iterating the
  // live map is safe. Sequence numbers never wrap in practice (64-bit,
  // minted from 1), so plain comparisons suffice on the sender side.
  for (auto& [seq, entry] : win->second->inflight) {
    if (entry->result != WindowEntry::kPending && entry->result != WindowEntry::kGiveUp) {
      continue;
    }
    bool covered = false;
    for (const SackCell& cell : cells) {
      const std::uint64_t off = seq - cell.base;
      if (seq <= cell.cum || (off < kSackBitsPerCell && ((cell.bitmap >> off) & 1ull) != 0)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      continue;
    }
    if (entry->result == WindowEntry::kGiveUp) {
      // The SACK landed in the same instant as the give-up verdict, before
      // the owning coroutine consumed it: the frame WAS delivered, so the
      // ack wins and the transfer completes (counted once, as delivered).
      ++stats_.acks;
      entry->result = WindowEntry::kAcked;
      if (entry->token != nullptr) {
        entry->token->resolved = true;
      }
      continue;
    }
    ++stats_.acks;
    ResolveAcked(*entry);
  }
}

void ReliableDelivery::ArmEntryTimer(std::uint64_t channel, std::uint64_t seq) {
  WindowEntry* entry = FindEntry(channel, seq);
  if (entry == nullptr) {
    return;
  }
  entry->timer = timers_.ScheduleAfter(WithJitter(entry->timeout), [this, channel, seq] {
    RetransmitOrGiveUp(channel, seq, /*from_nack=*/false);
  });
}

void ReliableDelivery::RetransmitOrGiveUp(std::uint64_t channel, std::uint64_t seq,
                                          bool from_nack) {
  WindowEntry* e = FindEntry(channel, seq);
  if (e == nullptr || e->result != WindowEntry::kPending || e->retransmitting) {
    // Already resolved, retired, or a retransmission is still on the wire
    // (a nack for the previous attempt can arrive mid-retransmit; the fresh
    // attempt's own timer takes over when it completes).
    return;
  }
  const SimTime now = engine_->now();
  if (trace_ != nullptr && e->last_tx_end > 0 && now > e->last_tx_end) {
    // Time parked between the attempt leaving the wire and this escalation.
    trace_->Span(xfer_track_, e->label + ".ack_wait", "reliable", e->last_tx_end, now, e->flow);
  }
  if (e->token != nullptr && e->token->cancelled) {
    e->result = WindowEntry::kCancelled;
    e->done.Set();
    return;
  }
  if (e->attempts > options_.max_retransmits) {
    // The give-up is counted (and traced) by the owning coroutine when it
    // consumes the verdict: an ack landing in this same instant may still
    // override the result to kAcked (OnAck/OnSack), and that path must
    // count one delivery — not a give-up AND a delivery.
    e->result = WindowEntry::kGiveUp;
    e->done.Set();
    return;
  }
  ++stats_.retransmits;
  if (!from_nack) {
    ++stats_.timeouts;
  }
  if (retransmit_delay_ != nullptr && e->last_tx_end > 0) {
    retransmit_delay_->Add(SimTimeToMicros(now - e->last_tx_end));
  }
  Instant(e->label + " retransmit(" + (from_nack ? "nack" : "timeout") + ") seq " +
              std::to_string(seq) + " attempt " + std::to_string(e->attempts + 1),
          e->flow);
  if (!from_nack) {
    e->timeout = std::min<SimTime>(
        options_.max_timeout, static_cast<SimTime>(static_cast<double>(e->timeout) *
                                                   std::max(1.0, options_.backoff_factor)));
  }
  e->retransmitting = true;
  std::move(RetransmitEntry(channel, seq, from_nack)).Detach();
}

Task<void> ReliableDelivery::RetransmitEntry(std::uint64_t channel, std::uint64_t seq,
                                             bool from_nack) {
  // `retransmitting` pins the entry: the owning coroutine defers erasure
  // until this unwinds, so the pointer stays valid across the awaits below.
  WindowEntry* e = FindEntry(channel, seq);
  GENIE_CHECK(e != nullptr);
  if (from_nack && options_.nack_delay > 0) {
    // Let the receiver finish restoring the posted buffer that the corrupted
    // frame consumed before the replacement lands in it.
    const SimTime delay_start = engine_->now();
    co_await Delay(*engine_, options_.nack_delay);
    if (trace_ != nullptr) {
      trace_->Span(xfer_track_, e->label + ".nack_delay", "reliable", delay_start,
                   engine_->now(), e->flow);
    }
    if (e->result != WindowEntry::kPending ||
        (e->token != nullptr && e->token->cancelled)) {
      // A duplicate delivery got acked (or the watchdog struck) during the
      // pause; the owner retires the entry.
      e->retransmitting = false;
      e->done.Set();
      co_return;
    }
  }
  ++e->attempts;
  auto ctl = std::make_shared<TxControl>();
  ctl->seq = seq;
  ctl->src_epoch = local_epoch_;
  ctl->dst_epoch = PeerEpoch(channel);
  // The lost original already spent this frame's flow-control credit;
  // acquiring again would double-spend and deadlock under loss.
  ctl->skip_credit = true;
  e->ctl = ctl;
  if (e->token != nullptr) {
    e->token->ctl = ctl;
  }
  co_await adapter_->TransmitFrame(channel, e->iov, e->header, e->tag, ctl, e->flow);
  e->last_tx_end = engine_->now();
  e->retransmitting = false;
  if (e->result == WindowEntry::kPending &&
      (ctl->aborted || (e->token != nullptr && e->token->cancelled))) {
    e->result = WindowEntry::kCancelled;
  }
  if (e->result != WindowEntry::kPending) {
    e->done.Set();  // Resolved (or cancelled) while on the wire.
    co_return;
  }
  ArmEntryTimer(channel, seq);
}

Task<ReliableDelivery::TxReport> ReliableDelivery::TransmitWindowed(
    std::uint64_t channel, IoVec iov, std::uint32_t header, std::uint32_t tag, std::string label,
    std::shared_ptr<CancelToken> token, std::uint64_t flow) {
  ++stats_.sequenced_frames;
  TxReport report;
  auto& win_slot = windows_[channel];
  if (win_slot == nullptr) {
    win_slot = std::make_unique<ChannelWindow>(*engine_);
  }
  ChannelWindow& win = *win_slot;

  // Admission: selective repeat keeps live seqs inside [base, base + window),
  // base being the oldest unacked frame. The seq is minted only on
  // admission, so a transfer cancelled while stalled leaves no hole in the
  // sequence space. All stalled admissions re-check when the window slides;
  // the check-and-mint runs without suspension, so each admission sees its
  // predecessors' seqs.
  for (;;) {
    if (crashed_) {
      report.outcome = TxOutcome::kPeerCrashed;
      ++stats_.peer_crash_aborts;
      co_return report;
    }
    if (token != nullptr && token->cancelled) {
      report.outcome = TxOutcome::kCancelled;
      ++stats_.cancelled_transmits;
      co_return report;
    }
    if (Resyncing(channel)) {
      if (!co_await AwaitResync(channel, token, label, flow)) {
        report.outcome = TxOutcome::kCancelled;
        ++stats_.cancelled_transmits;
        co_return report;
      }
      continue;  // Re-check crash/cancel/window from the top.
    }
    if (win.inflight.empty() ||
        next_seq_[channel] + 1 < win.inflight.begin()->first + options_.window) {
      break;
    }
    if (token != nullptr) {
      token->wake = &win.open;
    }
    const SimTime stall_start = engine_->now();
    co_await win.open.Wait();
    win.open.Reset();
    if (trace_ != nullptr && engine_->now() > stall_start) {
      trace_->Span(xfer_track_, label + ".window_stall", "reliable", stall_start, engine_->now(),
                   flow);
    }
  }

  const std::uint64_t seq = ++next_seq_[channel];
  auto owned = std::make_unique<WindowEntry>(*engine_);
  WindowEntry* e = owned.get();
  e->iov = iov;
  e->header = header;
  e->tag = tag;
  e->label = label;
  e->flow = flow;
  e->token = token;
  e->timeout = options_.initial_timeout;
  e->attempts = 1;
  win.inflight.emplace(seq, std::move(owned));
  if (token != nullptr) {
    token->wake = &e->done;
  }

  auto ctl = std::make_shared<TxControl>();
  ctl->seq = seq;
  ctl->src_epoch = local_epoch_;
  ctl->dst_epoch = PeerEpoch(channel);
  e->ctl = ctl;
  if (token != nullptr) {
    token->ctl = ctl;
  }
  co_await adapter_->TransmitFrame(channel, iov, header, tag, ctl, flow);
  e->last_tx_end = engine_->now();
  if (e->result == WindowEntry::kPending &&
      (ctl->aborted || (token != nullptr && token->cancelled))) {
    e->result = WindowEntry::kCancelled;
  }
  if (e->result == WindowEntry::kPending) {
    ArmEntryTimer(channel, seq);
  }

  // Park until the SACK/timeout/nack machinery resolves the entry, or a
  // watchdog cancellation pokes `done`.
  while (e->result == WindowEntry::kPending) {
    co_await e->done.Wait();
    e->done.Reset();
    if (e->result == WindowEntry::kPending && token != nullptr && token->cancelled) {
      timers_.Cancel(e->timer);
      e->result = WindowEntry::kCancelled;
    }
  }
  // A detached retransmission may still hold pointers into the entry; it
  // signals `done` as it unwinds. Only then is the entry safe to retire.
  while (e->retransmitting) {
    co_await e->done.Wait();
    e->done.Reset();
  }

  report.attempts = e->attempts;
  switch (e->result) {
    case WindowEntry::kAcked:
      // Counted here — not in ResolveAcked — so an ack that lands after the
      // give-up verdict and overrides it (OnAck/OnSack) still counts exactly
      // one delivery.
      report.outcome = TxOutcome::kDelivered;
      ++stats_.delivered_frames;
      stats_.delivered_bytes += e->iov.total_bytes();
      break;
    case WindowEntry::kGiveUp:
      report.outcome = TxOutcome::kGiveUp;
      ++stats_.giveups;
      Instant(label + " giveup seq " + std::to_string(seq) + " after " +
                  std::to_string(e->attempts) + " attempts",
              flow);
      break;
    case WindowEntry::kCrashed:
      report.outcome = TxOutcome::kPeerCrashed;
      ++stats_.peer_crash_aborts;
      break;
    case WindowEntry::kCancelled:
    case WindowEntry::kPending:
      report.outcome = TxOutcome::kCancelled;
      ++stats_.cancelled_transmits;
      break;
  }
  win.inflight.erase(seq);
  win.open.Set();  // The window slid; stalled admissions re-check.
  if (token != nullptr) {
    token->resolved = true;
    token->wake = nullptr;
    token->ctl.reset();
  }
  co_return report;
}

std::uint64_t ReliableDelivery::Watch(std::string label, std::function<WatchVerdict()> on_expire) {
  const std::uint64_t id = next_watch_id_++;
  if (!watchdog_enabled()) {
    return id;  // No-op registration keeps call sites branch-free.
  }
  watched_.emplace(id, Watched{std::move(label), std::move(on_expire),
                               engine_->now() + options_.watchdog_timeout});
  ArmScan();
  return id;
}

void ReliableDelivery::Unwatch(std::uint64_t id) { watched_.erase(id); }

void ReliableDelivery::ArmScan() {
  if (scan_armed_ || watched_.empty()) {
    return;
  }
  scan_armed_ = true;
  timers_.ScheduleAfter(options_.watchdog_period, [this] {
    scan_armed_ = false;
    RunScan();
    ArmScan();  // Re-arm only while transfers remain watched.
  });
}

void ReliableDelivery::RunScan() {
  ++stats_.watchdog_scans;
  const SimTime now = engine_->now();
  std::vector<std::uint64_t> expired;
  for (const auto& [id, entry] : watched_) {
    if (entry.deadline <= now) {
      expired.push_back(id);
    }
  }
  for (std::uint64_t id : expired) {
    auto it = watched_.find(id);
    if (it == watched_.end()) {
      continue;  // Retired by an earlier callback in this same scan.
    }
    // The callback may Unwatch() arbitrary entries (including this one), so
    // keep what we need before invoking it.
    const std::string label = it->second.label;
    const WatchVerdict verdict = it->second.on_expire();
    it = watched_.find(id);
    switch (verdict) {
      case WatchVerdict::kCompleted:
        if (it != watched_.end()) {
          watched_.erase(it);
        }
        break;
      case WatchVerdict::kCancelled:
        ++stats_.watchdog_cancels;
        Instant(label + " watchdog cancel");
        if (it != watched_.end()) {
          watched_.erase(it);
        }
        if (cancel_hook_) {
          cancel_hook_(label);
        }
        break;
      case WatchVerdict::kBusy:
        if (it != watched_.end()) {
          it->second.deadline = now + options_.watchdog_timeout;
        }
        break;
    }
  }
}

void ReliableDelivery::RecordFallback(const std::string& label, std::string_view from,
                                      std::string_view to) {
  ++stats_.fallbacks;
  Instant(label + " fallback " + std::string(from) + " -> " + std::string(to));
}

std::uint32_t ReliableDelivery::PeerEpoch(std::uint64_t channel) const {
  auto it = peer_epoch_.find(channel);
  return it == peer_epoch_.end() ? 1 : it->second;
}

bool ReliableDelivery::Resyncing(std::uint64_t channel) const {
  auto it = resync_.find(channel);
  return it != resync_.end() && it->second->resyncing;
}

Task<bool> ReliableDelivery::AwaitResync(std::uint64_t channel,
                                         std::shared_ptr<CancelToken> token,
                                         const std::string& label, std::uint64_t flow) {
  for (;;) {
    auto it = resync_.find(channel);
    if (it == resync_.end() || !it->second->resyncing) {
      co_return true;
    }
    if (token != nullptr && token->cancelled) {
      co_return false;
    }
    ResyncBarrier& barrier = *it->second;
    if (token != nullptr) {
      token->wake = &barrier.open;
    }
    const SimTime stall_start = engine_->now();
    co_await barrier.open.Wait();
    barrier.open.Reset();
    if (trace_ != nullptr && engine_->now() > stall_start) {
      trace_->Span(xfer_track_, label + ".resync_stall", "reliable", stall_start, engine_->now(),
                   flow);
    }
  }
}

void ReliableDelivery::OnFence(std::uint64_t channel, std::uint32_t peer_epoch) {
  if (peer_epoch <= PeerEpoch(channel)) {
    return;  // Duplicate fence from an incarnation we already resynced with.
  }
  ++stats_.epoch_bumps;
  peer_epoch_[channel] = peer_epoch;
  adapter_->NotePeerEpoch(channel, peer_epoch);
  Instant("peer epoch bump ch " + std::to_string(channel) + " -> e" +
          std::to_string(peer_epoch));
  AbortChannel(channel);
  StartResync(channel);
}

void ReliableDelivery::AbortChannel(std::uint64_t channel) {
  // Stop-and-wait rounds: resolve in place; the owning coroutine erases its
  // own map entry when it consumes the verdict.
  for (auto& [key, pending] : pending_acks_) {
    if (key.first != channel) {
      continue;
    }
    if (pending->outcome == PendingAck::kNone) {
      pending->outcome = PendingAck::kCrashed;
      pending->event.Set();
    }
  }
  // Windowed entries: the map itself stays (owners and detached retransmits
  // hold pointers into it); each entry resolves and its owner retires it.
  auto win = windows_.find(channel);
  if (win != windows_.end()) {
    for (auto& [seq, entry] : win->second->inflight) {
      if (entry->result != WindowEntry::kPending) {
        continue;
      }
      timers_.Cancel(entry->timer);
      entry->result = WindowEntry::kCrashed;
      entry->done.Set();
    }
  }
}

void ReliableDelivery::StartResync(std::uint64_t channel) {
  auto& slot = resync_[channel];
  if (slot == nullptr) {
    slot = std::make_unique<ResyncBarrier>(*engine_);
  }
  ResyncBarrier& barrier = *slot;
  if (barrier.resyncing) {
    // An even newer incarnation fenced us mid-handshake: restart the retry
    // budget and send a fresh proposal.
    timers_.Cancel(barrier.timer);
  }
  barrier.resyncing = true;
  barrier.open.Reset();
  barrier.retries = 0;
  SendResyncAttempt(channel);
}

void ReliableDelivery::SendResyncAttempt(std::uint64_t channel) {
  if (crashed_ || !Resyncing(channel)) {
    return;
  }
  ResyncBarrier& barrier = *resync_[channel];
  ++stats_.resyncs;
  // Propose our sequence high water: the rebooted receiver fast-forwards its
  // dedup cursor past every seq this incarnation may retire, so pre-crash
  // sequence numbers can never be mistaken for fresh traffic.
  adapter_->SendResync(channel, next_seq_[channel]);
  barrier.timer = timers_.ScheduleAfter(WithJitter(options_.initial_timeout), [this, channel] {
    auto it = resync_.find(channel);
    if (it == resync_.end() || !it->second->resyncing) {
      return;
    }
    if (it->second->retries >= options_.max_retransmits) {
      // Retry budget exhausted (the peer is still down, or the control path
      // truly died). Open the barrier anyway: parked transfers proceed and
      // fail through the normal give-up path, so the simulation still goes
      // quiescent instead of wedging on the barrier forever.
      Instant("resync giveup ch " + std::to_string(channel));
      ReleaseResync(channel);
      return;
    }
    ++it->second->retries;
    SendResyncAttempt(channel);
  });
}

void ReliableDelivery::ReleaseResync(std::uint64_t channel) {
  auto it = resync_.find(channel);
  if (it == resync_.end() || !it->second->resyncing) {
    return;
  }
  it->second->resyncing = false;
  timers_.Cancel(it->second->timer);
  it->second->open.Set();
}

void ReliableDelivery::OnResyncAck(std::uint64_t channel, std::uint32_t peer_epoch) {
  if (peer_epoch > PeerEpoch(channel)) {
    peer_epoch_[channel] = peer_epoch;
    adapter_->NotePeerEpoch(channel, peer_epoch);
  }
  if (Resyncing(channel)) {
    Instant("resync complete ch " + std::to_string(channel) + " peer e" +
            std::to_string(peer_epoch));
    ReleaseResync(channel);
  }
}

void ReliableDelivery::Crash(std::uint32_t epoch) {
  GENIE_CHECK(!crashed_) << "Crash() on already-crashed reliable layer";
  GENIE_CHECK_GT(epoch, local_epoch_);
  crashed_ = true;
  local_epoch_ = epoch;
  // Every in-flight round resolves as crashed; the owners observe the flag
  // when their zero-delay wake-ups run and report kPeerCrashed without
  // touching the wire again.
  for (auto& [key, pending] : pending_acks_) {
    if (pending->outcome == PendingAck::kNone) {
      pending->outcome = PendingAck::kCrashed;
    }
    pending->event.Set();
  }
  pending_acks_.clear();  // Owner erasures of retired keys become no-ops.
  for (auto& [channel, win] : windows_) {
    for (auto& [seq, entry] : win->inflight) {
      if (entry->result == WindowEntry::kPending) {
        timers_.Cancel(entry->timer);
        entry->result = WindowEntry::kCrashed;
      }
      entry->done.Set();
    }
    win->open.Set();  // Stalled admissions wake and observe crashed_.
  }
  // Open every resync barrier so parked transfers unwind. The barrier
  // objects themselves persist: parked coroutines hold references into them.
  for (auto& [channel, barrier] : resync_) {
    if (barrier->resyncing) {
      barrier->resyncing = false;
      timers_.Cancel(barrier->timer);
    }
    barrier->open.Set();
  }
  // What this incarnation knew about its peers dies with it; defaults (epoch
  // 1) are always <= the truth, so fencing only errs towards re-learning.
  peer_epoch_.clear();
  watched_.clear();  // Pending scan timers self-squelch on the empty set.
}

void ReliableDelivery::OnRestart() {
  GENIE_CHECK(crashed_) << "OnRestart() without a crash";
  crashed_ = false;
}

}  // namespace genie
