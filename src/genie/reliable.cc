#include "src/genie/reliable.h"

#include <algorithm>
#include <vector>

#include "src/util/check.h"

namespace genie {

ReliableDelivery::ReliableDelivery(Engine& engine, Adapter& adapter, std::string xfer_track)
    : engine_(&engine),
      adapter_(&adapter),
      xfer_track_(std::move(xfer_track)),
      timers_(engine) {
  adapter_->set_ack_handler(
      [this](std::uint64_t channel, std::uint64_t seq, bool ok) { OnAck(channel, seq, ok); });
}

void ReliableDelivery::Instant(const std::string& text, std::uint64_t flow) {
  if (trace_ != nullptr) {
    trace_->Instant(xfer_track_, text, "reliable", engine_->now(), flow);
  }
}

void ReliableDelivery::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    ack_rtt_ = nullptr;
    retransmit_delay_ = nullptr;
    return;
  }
  ack_rtt_ = &metrics->Histogram("reliable.ack_rtt_us");
  retransmit_delay_ = &metrics->Histogram("reliable.retransmit_delay_us");
}

SimTime ReliableDelivery::WithJitter(SimTime timeout) {
  if (options_.jitter_frac <= 0.0) {
    return timeout;
  }
  const double stretch = static_cast<double>(timeout) * options_.jitter_frac * rng_.NextDouble();
  return timeout + static_cast<SimTime>(stretch);
}

void ReliableDelivery::OnAck(std::uint64_t channel, std::uint64_t seq, bool ok) {
  if (ok) {
    ++stats_.acks;
  } else {
    ++stats_.nacks;
  }
  auto it = pending_acks_.find({channel, seq});
  if (it == pending_acks_.end()) {
    // Re-ack of a frame we already resolved (the receiver re-acks every
    // suppressed duplicate so a lost ack cannot wedge the sender).
    ++stats_.stale_acks;
    return;
  }
  PendingAck& pending = *it->second;
  if (pending.outcome != PendingAck::kNone) {
    return;  // This round already resolved (e.g. ack racing the timeout).
  }
  pending.outcome = ok ? PendingAck::kAcked : PendingAck::kNacked;
  pending.event.Set();
}

Task<ReliableDelivery::TxReport> ReliableDelivery::TransmitReliably(
    std::uint64_t channel, IoVec iov, std::uint32_t header, std::uint32_t tag, std::string label,
    std::shared_ptr<CancelToken> token, std::uint64_t flow) {
  GENIE_CHECK(options_.arq) << "TransmitReliably with ARQ disabled";
  const std::uint64_t seq = ++next_seq_[channel];
  ++stats_.sequenced_frames;

  TxReport report;
  SimTime timeout = options_.initial_timeout;
  PendingAck pending(*engine_);
  const std::pair<std::uint64_t, std::uint64_t> key{channel, seq};
  // Registered before the first transmit: with a delayed-completion fault on
  // our side of the wire, the peer's ack can arrive while TransmitFrame is
  // still running.
  pending_acks_[key] = &pending;
  if (token != nullptr) {
    token->wake = &pending.event;
  }

  for (std::uint32_t attempt = 0;; ++attempt) {
    report.attempts = attempt + 1;
    auto ctl = std::make_shared<TxControl>();
    ctl->seq = seq;
    // A retransmitted frame re-occupies the slot its credit already paid
    // for; acquiring again would double-spend and deadlock under loss.
    ctl->skip_credit = attempt > 0;
    if (token != nullptr) {
      token->ctl = ctl;
    }
    co_await adapter_->TransmitFrame(channel, iov, header, tag, ctl, flow);
    if (ctl->aborted || (token != nullptr && token->cancelled)) {
      report.outcome = TxOutcome::kCancelled;
      ++stats_.cancelled_transmits;
      break;
    }
    const SimTime attempt_end = engine_->now();
    if (pending.outcome == PendingAck::kNone) {
      pending.timer = timers_.ScheduleAfter(WithJitter(timeout), [this, key] {
        auto it = pending_acks_.find(key);
        if (it == pending_acks_.end() || it->second->outcome != PendingAck::kNone) {
          return;
        }
        it->second->outcome = PendingAck::kTimeout;
        it->second->event.Set();
      });
      co_await pending.event.Wait();
      timers_.Cancel(pending.timer);
    }
    const PendingAck::Outcome outcome = pending.outcome;
    pending.outcome = PendingAck::kNone;
    pending.event.Reset();
    if (trace_ != nullptr && engine_->now() > attempt_end) {
      // Time parked between this attempt leaving the wire and its
      // resolution (ack, nack, or timeout).
      trace_->Span(xfer_track_, label + ".ack_wait", "reliable", attempt_end, engine_->now(),
                   flow);
    }

    if (outcome == PendingAck::kAcked) {
      if (ack_rtt_ != nullptr) {
        ack_rtt_->Add(SimTimeToMicros(engine_->now() - attempt_end));
      }
      report.outcome = TxOutcome::kDelivered;
      break;
    }
    if (token != nullptr && token->cancelled) {
      report.outcome = TxOutcome::kCancelled;
      ++stats_.cancelled_transmits;
      break;
    }
    if (attempt >= options_.max_retransmits) {
      report.outcome = TxOutcome::kGiveUp;
      ++stats_.giveups;
      Instant(label + " giveup seq " + std::to_string(seq) + " after " +
                  std::to_string(report.attempts) + " attempts",
              flow);
      break;
    }
    ++stats_.retransmits;
    if (outcome == PendingAck::kTimeout) {
      ++stats_.timeouts;
      if (retransmit_delay_ != nullptr) {
        retransmit_delay_->Add(SimTimeToMicros(engine_->now() - attempt_end));
      }
      Instant(label + " retransmit(timeout) seq " + std::to_string(seq) + " attempt " +
                  std::to_string(attempt + 2),
              flow);
      timeout = std::min<SimTime>(
          options_.max_timeout, static_cast<SimTime>(static_cast<double>(timeout) *
                                                     std::max(1.0, options_.backoff_factor)));
    } else {  // kNacked: receiver saw the frame but CRC failed.
      Instant(label + " retransmit(nack) seq " + std::to_string(seq) + " attempt " +
                  std::to_string(attempt + 2),
              flow);
      if (options_.nack_delay > 0) {
        const SimTime delay_start = engine_->now();
        co_await Delay(*engine_, options_.nack_delay);
        if (trace_ != nullptr) {
          trace_->Span(xfer_track_, label + ".nack_delay", "reliable", delay_start,
                       engine_->now(), flow);
        }
      }
      if (pending.outcome == PendingAck::kAcked) {
        // A duplicate delivery got acked while we paused; done after all.
        if (ack_rtt_ != nullptr) {
          ack_rtt_->Add(SimTimeToMicros(engine_->now() - attempt_end));
        }
        report.outcome = TxOutcome::kDelivered;
        break;
      }
      if (token != nullptr && token->cancelled) {
        report.outcome = TxOutcome::kCancelled;
        ++stats_.cancelled_transmits;
        break;
      }
      if (retransmit_delay_ != nullptr) {
        retransmit_delay_->Add(SimTimeToMicros(engine_->now() - attempt_end));
      }
    }
  }

  pending_acks_.erase(key);
  if (token != nullptr) {
    token->wake = nullptr;
    token->ctl.reset();
  }
  co_return report;
}

std::uint64_t ReliableDelivery::Watch(std::string label, std::function<WatchVerdict()> on_expire) {
  const std::uint64_t id = next_watch_id_++;
  if (!watchdog_enabled()) {
    return id;  // No-op registration keeps call sites branch-free.
  }
  watched_.emplace(id, Watched{std::move(label), std::move(on_expire),
                               engine_->now() + options_.watchdog_timeout});
  ArmScan();
  return id;
}

void ReliableDelivery::Unwatch(std::uint64_t id) { watched_.erase(id); }

void ReliableDelivery::ArmScan() {
  if (scan_armed_ || watched_.empty()) {
    return;
  }
  scan_armed_ = true;
  timers_.ScheduleAfter(options_.watchdog_period, [this] {
    scan_armed_ = false;
    RunScan();
    ArmScan();  // Re-arm only while transfers remain watched.
  });
}

void ReliableDelivery::RunScan() {
  ++stats_.watchdog_scans;
  const SimTime now = engine_->now();
  std::vector<std::uint64_t> expired;
  for (const auto& [id, entry] : watched_) {
    if (entry.deadline <= now) {
      expired.push_back(id);
    }
  }
  for (std::uint64_t id : expired) {
    auto it = watched_.find(id);
    if (it == watched_.end()) {
      continue;  // Retired by an earlier callback in this same scan.
    }
    // The callback may Unwatch() arbitrary entries (including this one), so
    // keep what we need before invoking it.
    const std::string label = it->second.label;
    const WatchVerdict verdict = it->second.on_expire();
    it = watched_.find(id);
    switch (verdict) {
      case WatchVerdict::kCompleted:
        if (it != watched_.end()) {
          watched_.erase(it);
        }
        break;
      case WatchVerdict::kCancelled:
        ++stats_.watchdog_cancels;
        Instant(label + " watchdog cancel");
        if (it != watched_.end()) {
          watched_.erase(it);
        }
        if (cancel_hook_) {
          cancel_hook_(label);
        }
        break;
      case WatchVerdict::kBusy:
        if (it != watched_.end()) {
          it->second.deadline = now + options_.watchdog_timeout;
        }
        break;
    }
  }
}

void ReliableDelivery::RecordFallback(const std::string& label, std::string_view from,
                                      std::string_view to) {
  ++stats_.fallbacks;
  Instant(label + " fallback " + std::string(from) + " -> " + std::string(to));
}

}  // namespace genie
