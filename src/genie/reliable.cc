#include "src/genie/reliable.h"

#include <algorithm>
#include <vector>

#include "src/util/check.h"

namespace genie {

ReliableDelivery::ReliableDelivery(Engine& engine, Adapter& adapter, std::string xfer_track)
    : engine_(&engine),
      adapter_(&adapter),
      xfer_track_(std::move(xfer_track)),
      timers_(engine) {
  adapter_->set_ack_handler(
      [this](std::uint64_t channel, std::uint64_t seq, bool ok) { OnAck(channel, seq, ok); });
  adapter_->set_sack_handler(
      [this](std::uint64_t channel, std::vector<SackCell> cells) { OnSack(channel, cells); });
}

void ReliableDelivery::Instant(const std::string& text, std::uint64_t flow) {
  if (trace_ != nullptr) {
    trace_->Instant(xfer_track_, text, "reliable", engine_->now(), flow);
  }
}

void ReliableDelivery::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    ack_rtt_ = nullptr;
    retransmit_delay_ = nullptr;
    return;
  }
  ack_rtt_ = &metrics->Histogram("reliable.ack_rtt_us");
  retransmit_delay_ = &metrics->Histogram("reliable.retransmit_delay_us");
}

SimTime ReliableDelivery::WithJitter(SimTime timeout) {
  if (options_.jitter_frac <= 0.0) {
    return timeout;
  }
  const double stretch = static_cast<double>(timeout) * options_.jitter_frac * rng_.NextDouble();
  return timeout + static_cast<SimTime>(stretch);
}

void ReliableDelivery::OnAck(std::uint64_t channel, std::uint64_t seq, bool ok) {
  if (ok) {
    ++stats_.acks;
  } else {
    ++stats_.nacks;
  }
  if (options_.window > 1) {
    // Windowed mode still receives per-seq control cells for nacks (CRC
    // failures, dropped frames) and duplicate re-acks; SACK trains carry the
    // normal acknowledgement traffic (OnSack).
    WindowEntry* entry = FindEntry(channel, seq);
    if (entry == nullptr || entry->result != WindowEntry::kPending) {
      ++stats_.stale_acks;
      return;
    }
    if (ok) {
      ResolveAcked(*entry);
    } else {
      timers_.Cancel(entry->timer);
      RetransmitOrGiveUp(channel, seq, /*from_nack=*/true);
    }
    return;
  }
  auto it = pending_acks_.find({channel, seq});
  if (it == pending_acks_.end()) {
    // Re-ack of a frame we already resolved (the receiver re-acks every
    // suppressed duplicate so a lost ack cannot wedge the sender).
    ++stats_.stale_acks;
    return;
  }
  PendingAck& pending = *it->second;
  if (pending.outcome != PendingAck::kNone) {
    return;  // This round already resolved (e.g. ack racing the timeout).
  }
  pending.outcome = ok ? PendingAck::kAcked : PendingAck::kNacked;
  pending.event.Set();
}

Task<ReliableDelivery::TxReport> ReliableDelivery::TransmitReliably(
    std::uint64_t channel, IoVec iov, std::uint32_t header, std::uint32_t tag, std::string label,
    std::shared_ptr<CancelToken> token, std::uint64_t flow) {
  GENIE_CHECK(options_.arq) << "TransmitReliably with ARQ disabled";
  if (options_.window > 1) {
    co_return co_await TransmitWindowed(channel, iov, header, tag, std::move(label),
                                        std::move(token), flow);
  }
  const std::uint64_t seq = ++next_seq_[channel];
  ++stats_.sequenced_frames;

  TxReport report;
  SimTime timeout = options_.initial_timeout;
  PendingAck pending(*engine_);
  const std::pair<std::uint64_t, std::uint64_t> key{channel, seq};
  // Registered before the first transmit: with a delayed-completion fault on
  // our side of the wire, the peer's ack can arrive while TransmitFrame is
  // still running.
  pending_acks_[key] = &pending;
  if (token != nullptr) {
    token->wake = &pending.event;
  }

  for (std::uint32_t attempt = 0;; ++attempt) {
    report.attempts = attempt + 1;
    auto ctl = std::make_shared<TxControl>();
    ctl->seq = seq;
    // A retransmitted frame re-occupies the slot its credit already paid
    // for; acquiring again would double-spend and deadlock under loss.
    ctl->skip_credit = attempt > 0;
    if (token != nullptr) {
      token->ctl = ctl;
    }
    co_await adapter_->TransmitFrame(channel, iov, header, tag, ctl, flow);
    if (ctl->aborted || (token != nullptr && token->cancelled)) {
      report.outcome = TxOutcome::kCancelled;
      ++stats_.cancelled_transmits;
      break;
    }
    const SimTime attempt_end = engine_->now();
    if (pending.outcome == PendingAck::kNone) {
      pending.timer = timers_.ScheduleAfter(WithJitter(timeout), [this, key] {
        auto it = pending_acks_.find(key);
        if (it == pending_acks_.end() || it->second->outcome != PendingAck::kNone) {
          return;
        }
        it->second->outcome = PendingAck::kTimeout;
        it->second->event.Set();
      });
      co_await pending.event.Wait();
      timers_.Cancel(pending.timer);
    }
    const PendingAck::Outcome outcome = pending.outcome;
    pending.outcome = PendingAck::kNone;
    pending.event.Reset();
    if (trace_ != nullptr && engine_->now() > attempt_end) {
      // Time parked between this attempt leaving the wire and its
      // resolution (ack, nack, or timeout).
      trace_->Span(xfer_track_, label + ".ack_wait", "reliable", attempt_end, engine_->now(),
                   flow);
    }

    if (outcome == PendingAck::kAcked) {
      if (ack_rtt_ != nullptr) {
        ack_rtt_->Add(SimTimeToMicros(engine_->now() - attempt_end));
      }
      report.outcome = TxOutcome::kDelivered;
      break;
    }
    if (token != nullptr && token->cancelled) {
      report.outcome = TxOutcome::kCancelled;
      ++stats_.cancelled_transmits;
      break;
    }
    if (attempt >= options_.max_retransmits) {
      report.outcome = TxOutcome::kGiveUp;
      ++stats_.giveups;
      Instant(label + " giveup seq " + std::to_string(seq) + " after " +
                  std::to_string(report.attempts) + " attempts",
              flow);
      break;
    }
    ++stats_.retransmits;
    if (outcome == PendingAck::kTimeout) {
      ++stats_.timeouts;
      if (retransmit_delay_ != nullptr) {
        retransmit_delay_->Add(SimTimeToMicros(engine_->now() - attempt_end));
      }
      Instant(label + " retransmit(timeout) seq " + std::to_string(seq) + " attempt " +
                  std::to_string(attempt + 2),
              flow);
      timeout = std::min<SimTime>(
          options_.max_timeout, static_cast<SimTime>(static_cast<double>(timeout) *
                                                     std::max(1.0, options_.backoff_factor)));
    } else {  // kNacked: receiver saw the frame but CRC failed.
      Instant(label + " retransmit(nack) seq " + std::to_string(seq) + " attempt " +
                  std::to_string(attempt + 2),
              flow);
      if (options_.nack_delay > 0) {
        const SimTime delay_start = engine_->now();
        co_await Delay(*engine_, options_.nack_delay);
        if (trace_ != nullptr) {
          trace_->Span(xfer_track_, label + ".nack_delay", "reliable", delay_start,
                       engine_->now(), flow);
        }
      }
      if (pending.outcome == PendingAck::kAcked) {
        // A duplicate delivery got acked while we paused; done after all.
        if (ack_rtt_ != nullptr) {
          ack_rtt_->Add(SimTimeToMicros(engine_->now() - attempt_end));
        }
        report.outcome = TxOutcome::kDelivered;
        break;
      }
      if (token != nullptr && token->cancelled) {
        report.outcome = TxOutcome::kCancelled;
        ++stats_.cancelled_transmits;
        break;
      }
      if (retransmit_delay_ != nullptr) {
        retransmit_delay_->Add(SimTimeToMicros(engine_->now() - attempt_end));
      }
    }
  }

  pending_acks_.erase(key);
  if (token != nullptr) {
    token->wake = nullptr;
    token->ctl.reset();
  }
  co_return report;
}

ReliableDelivery::WindowEntry* ReliableDelivery::FindEntry(std::uint64_t channel,
                                                           std::uint64_t seq) {
  auto win = windows_.find(channel);
  if (win == windows_.end()) {
    return nullptr;
  }
  auto it = win->second->inflight.find(seq);
  return it == win->second->inflight.end() ? nullptr : it->second.get();
}

void ReliableDelivery::ResolveAcked(WindowEntry& entry) {
  timers_.Cancel(entry.timer);
  const SimTime now = engine_->now();
  if (trace_ != nullptr && entry.last_tx_end > 0 && now > entry.last_tx_end) {
    // The final ack_wait span of this transfer: last attempt off the wire to
    // ack arrival. Earlier attempts already emitted theirs when they timed
    // out (RetransmitOrGiveUp), so the critical-path classifier sees the
    // same per-flow shape as stop-and-wait.
    trace_->Span(xfer_track_, entry.label + ".ack_wait", "reliable", entry.last_tx_end, now,
                 entry.flow);
  }
  if (ack_rtt_ != nullptr) {
    // last_tx_end == 0 means the ack beat the first transmit's completion
    // (delayed-completion fault on our side): zero observable rtt.
    ack_rtt_->Add(entry.last_tx_end > 0 ? SimTimeToMicros(now - entry.last_tx_end) : 0.0);
  }
  entry.result = WindowEntry::kAcked;
  entry.done.Set();
}

void ReliableDelivery::OnSack(std::uint64_t channel, const std::vector<SackCell>& cells) {
  auto win = windows_.find(channel);
  if (win == windows_.end() || cells.empty()) {
    return;
  }
  // Resolve every pending entry the train covers. Entries are erased only by
  // their owning coroutine (woken here via done.Set()), so iterating the
  // live map is safe. Sequence numbers never wrap in practice (64-bit,
  // minted from 1), so plain comparisons suffice on the sender side.
  for (auto& [seq, entry] : win->second->inflight) {
    if (entry->result != WindowEntry::kPending) {
      continue;
    }
    bool covered = false;
    for (const SackCell& cell : cells) {
      const std::uint64_t off = seq - cell.base;
      if (seq <= cell.cum || (off < kSackBitsPerCell && ((cell.bitmap >> off) & 1ull) != 0)) {
        covered = true;
        break;
      }
    }
    if (covered) {
      ++stats_.acks;
      ResolveAcked(*entry);
    }
  }
}

void ReliableDelivery::ArmEntryTimer(std::uint64_t channel, std::uint64_t seq) {
  WindowEntry* entry = FindEntry(channel, seq);
  if (entry == nullptr) {
    return;
  }
  entry->timer = timers_.ScheduleAfter(WithJitter(entry->timeout), [this, channel, seq] {
    RetransmitOrGiveUp(channel, seq, /*from_nack=*/false);
  });
}

void ReliableDelivery::RetransmitOrGiveUp(std::uint64_t channel, std::uint64_t seq,
                                          bool from_nack) {
  WindowEntry* e = FindEntry(channel, seq);
  if (e == nullptr || e->result != WindowEntry::kPending || e->retransmitting) {
    // Already resolved, retired, or a retransmission is still on the wire
    // (a nack for the previous attempt can arrive mid-retransmit; the fresh
    // attempt's own timer takes over when it completes).
    return;
  }
  const SimTime now = engine_->now();
  if (trace_ != nullptr && e->last_tx_end > 0 && now > e->last_tx_end) {
    // Time parked between the attempt leaving the wire and this escalation.
    trace_->Span(xfer_track_, e->label + ".ack_wait", "reliable", e->last_tx_end, now, e->flow);
  }
  if (e->token != nullptr && e->token->cancelled) {
    e->result = WindowEntry::kCancelled;
    e->done.Set();
    return;
  }
  if (e->attempts > options_.max_retransmits) {
    ++stats_.giveups;
    Instant(e->label + " giveup seq " + std::to_string(seq) + " after " +
                std::to_string(e->attempts) + " attempts",
            e->flow);
    e->result = WindowEntry::kGiveUp;
    e->done.Set();
    return;
  }
  ++stats_.retransmits;
  if (!from_nack) {
    ++stats_.timeouts;
  }
  if (retransmit_delay_ != nullptr && e->last_tx_end > 0) {
    retransmit_delay_->Add(SimTimeToMicros(now - e->last_tx_end));
  }
  Instant(e->label + " retransmit(" + (from_nack ? "nack" : "timeout") + ") seq " +
              std::to_string(seq) + " attempt " + std::to_string(e->attempts + 1),
          e->flow);
  if (!from_nack) {
    e->timeout = std::min<SimTime>(
        options_.max_timeout, static_cast<SimTime>(static_cast<double>(e->timeout) *
                                                   std::max(1.0, options_.backoff_factor)));
  }
  e->retransmitting = true;
  std::move(RetransmitEntry(channel, seq, from_nack)).Detach();
}

Task<void> ReliableDelivery::RetransmitEntry(std::uint64_t channel, std::uint64_t seq,
                                             bool from_nack) {
  // `retransmitting` pins the entry: the owning coroutine defers erasure
  // until this unwinds, so the pointer stays valid across the awaits below.
  WindowEntry* e = FindEntry(channel, seq);
  GENIE_CHECK(e != nullptr);
  if (from_nack && options_.nack_delay > 0) {
    // Let the receiver finish restoring the posted buffer that the corrupted
    // frame consumed before the replacement lands in it.
    const SimTime delay_start = engine_->now();
    co_await Delay(*engine_, options_.nack_delay);
    if (trace_ != nullptr) {
      trace_->Span(xfer_track_, e->label + ".nack_delay", "reliable", delay_start,
                   engine_->now(), e->flow);
    }
    if (e->result != WindowEntry::kPending ||
        (e->token != nullptr && e->token->cancelled)) {
      // A duplicate delivery got acked (or the watchdog struck) during the
      // pause; the owner retires the entry.
      e->retransmitting = false;
      e->done.Set();
      co_return;
    }
  }
  ++e->attempts;
  auto ctl = std::make_shared<TxControl>();
  ctl->seq = seq;
  // The lost original already spent this frame's flow-control credit;
  // acquiring again would double-spend and deadlock under loss.
  ctl->skip_credit = true;
  e->ctl = ctl;
  if (e->token != nullptr) {
    e->token->ctl = ctl;
  }
  co_await adapter_->TransmitFrame(channel, e->iov, e->header, e->tag, ctl, e->flow);
  e->last_tx_end = engine_->now();
  e->retransmitting = false;
  if (e->result == WindowEntry::kPending &&
      (ctl->aborted || (e->token != nullptr && e->token->cancelled))) {
    e->result = WindowEntry::kCancelled;
  }
  if (e->result != WindowEntry::kPending) {
    e->done.Set();  // Resolved (or cancelled) while on the wire.
    co_return;
  }
  ArmEntryTimer(channel, seq);
}

Task<ReliableDelivery::TxReport> ReliableDelivery::TransmitWindowed(
    std::uint64_t channel, IoVec iov, std::uint32_t header, std::uint32_t tag, std::string label,
    std::shared_ptr<CancelToken> token, std::uint64_t flow) {
  ++stats_.sequenced_frames;
  TxReport report;
  auto& win_slot = windows_[channel];
  if (win_slot == nullptr) {
    win_slot = std::make_unique<ChannelWindow>(*engine_);
  }
  ChannelWindow& win = *win_slot;

  // Admission: selective repeat keeps live seqs inside [base, base + window),
  // base being the oldest unacked frame. The seq is minted only on
  // admission, so a transfer cancelled while stalled leaves no hole in the
  // sequence space. All stalled admissions re-check when the window slides;
  // the check-and-mint runs without suspension, so each admission sees its
  // predecessors' seqs.
  for (;;) {
    if (token != nullptr && token->cancelled) {
      report.outcome = TxOutcome::kCancelled;
      ++stats_.cancelled_transmits;
      co_return report;
    }
    if (win.inflight.empty() ||
        next_seq_[channel] + 1 < win.inflight.begin()->first + options_.window) {
      break;
    }
    if (token != nullptr) {
      token->wake = &win.open;
    }
    const SimTime stall_start = engine_->now();
    co_await win.open.Wait();
    win.open.Reset();
    if (trace_ != nullptr && engine_->now() > stall_start) {
      trace_->Span(xfer_track_, label + ".window_stall", "reliable", stall_start, engine_->now(),
                   flow);
    }
  }

  const std::uint64_t seq = ++next_seq_[channel];
  auto owned = std::make_unique<WindowEntry>(*engine_);
  WindowEntry* e = owned.get();
  e->iov = iov;
  e->header = header;
  e->tag = tag;
  e->label = label;
  e->flow = flow;
  e->token = token;
  e->timeout = options_.initial_timeout;
  e->attempts = 1;
  win.inflight.emplace(seq, std::move(owned));
  if (token != nullptr) {
    token->wake = &e->done;
  }

  auto ctl = std::make_shared<TxControl>();
  ctl->seq = seq;
  e->ctl = ctl;
  if (token != nullptr) {
    token->ctl = ctl;
  }
  co_await adapter_->TransmitFrame(channel, iov, header, tag, ctl, flow);
  e->last_tx_end = engine_->now();
  if (e->result == WindowEntry::kPending &&
      (ctl->aborted || (token != nullptr && token->cancelled))) {
    e->result = WindowEntry::kCancelled;
  }
  if (e->result == WindowEntry::kPending) {
    ArmEntryTimer(channel, seq);
  }

  // Park until the SACK/timeout/nack machinery resolves the entry, or a
  // watchdog cancellation pokes `done`.
  while (e->result == WindowEntry::kPending) {
    co_await e->done.Wait();
    e->done.Reset();
    if (e->result == WindowEntry::kPending && token != nullptr && token->cancelled) {
      timers_.Cancel(e->timer);
      e->result = WindowEntry::kCancelled;
    }
  }
  // A detached retransmission may still hold pointers into the entry; it
  // signals `done` as it unwinds. Only then is the entry safe to retire.
  while (e->retransmitting) {
    co_await e->done.Wait();
    e->done.Reset();
  }

  report.attempts = e->attempts;
  switch (e->result) {
    case WindowEntry::kAcked:
      report.outcome = TxOutcome::kDelivered;
      break;
    case WindowEntry::kGiveUp:
      report.outcome = TxOutcome::kGiveUp;
      break;
    case WindowEntry::kCancelled:
    case WindowEntry::kPending:
      report.outcome = TxOutcome::kCancelled;
      ++stats_.cancelled_transmits;
      break;
  }
  win.inflight.erase(seq);
  win.open.Set();  // The window slid; stalled admissions re-check.
  if (token != nullptr) {
    token->wake = nullptr;
    token->ctl.reset();
  }
  co_return report;
}

std::uint64_t ReliableDelivery::Watch(std::string label, std::function<WatchVerdict()> on_expire) {
  const std::uint64_t id = next_watch_id_++;
  if (!watchdog_enabled()) {
    return id;  // No-op registration keeps call sites branch-free.
  }
  watched_.emplace(id, Watched{std::move(label), std::move(on_expire),
                               engine_->now() + options_.watchdog_timeout});
  ArmScan();
  return id;
}

void ReliableDelivery::Unwatch(std::uint64_t id) { watched_.erase(id); }

void ReliableDelivery::ArmScan() {
  if (scan_armed_ || watched_.empty()) {
    return;
  }
  scan_armed_ = true;
  timers_.ScheduleAfter(options_.watchdog_period, [this] {
    scan_armed_ = false;
    RunScan();
    ArmScan();  // Re-arm only while transfers remain watched.
  });
}

void ReliableDelivery::RunScan() {
  ++stats_.watchdog_scans;
  const SimTime now = engine_->now();
  std::vector<std::uint64_t> expired;
  for (const auto& [id, entry] : watched_) {
    if (entry.deadline <= now) {
      expired.push_back(id);
    }
  }
  for (std::uint64_t id : expired) {
    auto it = watched_.find(id);
    if (it == watched_.end()) {
      continue;  // Retired by an earlier callback in this same scan.
    }
    // The callback may Unwatch() arbitrary entries (including this one), so
    // keep what we need before invoking it.
    const std::string label = it->second.label;
    const WatchVerdict verdict = it->second.on_expire();
    it = watched_.find(id);
    switch (verdict) {
      case WatchVerdict::kCompleted:
        if (it != watched_.end()) {
          watched_.erase(it);
        }
        break;
      case WatchVerdict::kCancelled:
        ++stats_.watchdog_cancels;
        Instant(label + " watchdog cancel");
        if (it != watched_.end()) {
          watched_.erase(it);
        }
        if (cancel_hook_) {
          cancel_hook_(label);
        }
        break;
      case WatchVerdict::kBusy:
        if (it != watched_.end()) {
          it->second.deadline = now + options_.watchdog_timeout;
        }
        break;
    }
  }
}

void ReliableDelivery::RecordFallback(const std::string& label, std::string_view from,
                                      std::string_view to) {
  ++stats_.fallbacks;
  Instant(label + " fallback " + std::string(from) + " -> " + std::string(to));
}

}  // namespace genie
