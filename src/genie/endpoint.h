// A Genie communication endpoint: the application-facing I/O interface that
// implements every data-passing semantics of the taxonomy over one network
// channel (paper Section 6).
//
// Output follows Table 2 (prepare at the output call, dispose at
// transmit-complete, overlapping the network and the receiver). Input is
// preposted and follows Table 3 for early-demultiplexed and outboard devices
// (with the Section 6.2.3 emulated-copy special case) and Table 4 for pooled
// devices. Short outputs are transparently converted to copy semantics under
// the Section 6 thresholds.
#ifndef GENIE_SRC_GENIE_ENDPOINT_H_
#define GENIE_SRC_GENIE_ENDPOINT_H_

#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/genie/node.h"
#include "src/genie/options.h"
#include "src/genie/semantics.h"
#include "src/genie/sys_buffer.h"
#include "src/sim/awaitable.h"
#include "src/sim/task.h"
#include "src/vm/io_ref.h"

namespace genie {

// Why an operation failed. Application misuse (bad buffer bounds, taxonomy
// misuse) still aborts — these cover failures the kernel recovers from.
enum class IoStatus : std::uint8_t {
  kOk = 0,
  kNoMemory,   // frame allocation failed and pageout could not make room
  kIoError,    // device error, failed page-in, or buffer yanked mid-transfer
  kCancelled,  // transfer watchdog cancelled a stuck operation
  kPeerCrashed,  // aborted by a crash-stop (local node or peer epoch bump)
};

struct InputResult {
  bool ok = false;         // data delivered with the semantics' guarantees
  bool crc_ok = true;      // network CRC status
  bool checksum_ok = true;  // transport checksum status (ChecksumMode != kNone)
  IoStatus status = IoStatus::kOk;  // failure cause when !ok
  Vaddr addr = 0;        // where the data is (application buffer, or the
                         // moved-in region for system-allocated semantics)
  std::uint64_t bytes = 0;
  SimTime completed_at = 0;
};

class Endpoint {
 public:
  // Per-operation instrumentation hook: (op, bytes, charged simulated time).
  using OpProbe = std::function<void(OpKind, std::uint64_t, SimTime)>;

  // --- Batched submission/completion rings (io_uring-style) ---
  // Callers enqueue operations with Submit()/SubmitBatch(), then Drain()
  // pushes the whole batch through the kernel in one pass: outputs run their
  // prepare under a single CPU acquisition (one "kernel entry" for N
  // sends, the amortization the windowed ARQ turns into wire pipelining)
  // and their transmit+dispose proceed detached; inputs launch their normal
  // self-contained coroutines. Each entry produces exactly one Completion
  // (tagged with the caller's user_data) in the completion ring, harvested
  // non-blocking with Harvest() or awaited with WaitCompletions(). Flow ids,
  // trace spans, watchdogs, and semantics fallback thread through the
  // batched path exactly as through Output()/Input().
  struct SubmitEntry {
    enum class Op : std::uint8_t { kOutput, kInput };
    Op op = Op::kOutput;
    AddressSpace* app = nullptr;
    Vaddr va = 0;            // ignored for system-allocated inputs
    std::uint64_t len = 0;
    Semantics sem = Semantics::kCopy;
    std::uint32_t tag = 0;   // outputs: sender-managed destination (0 = posted)
    bool system_allocated = false;  // inputs: system chooses the location
    std::uint64_t user_data = 0;    // opaque; echoed in the Completion
  };

  struct Completion {
    std::uint64_t user_data = 0;
    SubmitEntry::Op op = SubmitEntry::Op::kOutput;
    IoStatus status = IoStatus::kOk;
    std::uint64_t bytes = 0;
    Vaddr addr = 0;          // inputs: where the data landed
    SimTime completed_at = 0;
  };

  struct Stats {
    std::uint64_t outputs = 0;
    std::uint64_t inputs = 0;
    std::uint64_t outputs_converted_to_copy = 0;
    std::uint64_t pages_swapped = 0;
    std::uint64_t reverse_copyouts = 0;
    std::uint64_t bytes_swapped = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t crc_failures = 0;
    std::uint64_t region_cache_hits = 0;
    std::uint64_t region_cache_misses = 0;
    std::uint64_t regions_remapped_at_dispose = 0;
    // Fault-recovery accounting: operations that hit a recoverable failure
    // (injected or real) and were fully unwound instead of aborting.
    std::uint64_t failed_outputs = 0;
    std::uint64_t failed_inputs = 0;
    std::uint64_t recovered_transfers = 0;
    // Reliability layer: semantics downgrades taken instead of failing
    // (options.enable_semantics_fallback) and watchdog-cancelled operations.
    std::uint64_t semantics_fallbacks = 0;
    std::uint64_t watchdog_cancels = 0;
    // Ring API traffic: entries accepted, drain passes, completions posted.
    std::uint64_t ring_submits = 0;
    std::uint64_t ring_drains = 0;
    std::uint64_t ring_completions = 0;
  };

  Endpoint(Node& node, std::uint64_t channel, GenieOptions options = GenieOptions{});
  // Releases any still-registered named buffers (drops their pinned pages).
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  Node& node() { return *node_; }
  std::uint64_t channel() const { return channel_; }
  const GenieOptions& options() const { return options_; }
  const Stats& stats() const { return stats_; }
  void set_op_probe(OpProbe probe) { op_probe_ = std::move(probe); }

  // Per-completed-input latency hook (microseconds). Fires in addition to
  // the registry histogram, and is the only latency sink when the endpoint
  // runs with options.register_metrics = false (bulk workload harnesses
  // roll latencies up per tenant class instead of per channel).
  void set_input_latency_probe(std::function<void(double)> probe) {
    input_latency_probe_ = std::move(probe);
  }

  // Deterministic per-operation accounting: how many times each primitive
  // ran on this endpoint and over how many bytes. Bit-stable across runs —
  // the bench-regression gate exact-matches these through the node's
  // MetricsRegistry (gauges "ep<channel>.op.<name>.count" / ".bytes").
  std::uint64_t op_count(OpKind op) const {
    return op_counts_[static_cast<std::size_t>(op)];
  }
  std::uint64_t op_bytes(OpKind op) const {
    return op_bytes_[static_cast<std::size_t>(op)];
  }

  // Sends [va, va+len) with the given semantics. The task completes when the
  // application regains control (prepare done); transmission and dispose
  // continue asynchronously. For system-allocated semantics the buffer must
  // lie in a moved-in region, which is deallocated (moved out) by the send.
  Task<void> Output(AddressSpace& app, Vaddr va, std::uint64_t len, Semantics sem);

  // Application-allocated input: preposts a receive into [va, va+len) and
  // completes when the datagram has been delivered (dispose done).
  Task<InputResult> Input(AddressSpace& app, Vaddr va, std::uint64_t len, Semantics sem);

  // System-allocated input: the system chooses the location; the result's
  // `addr` points at the moved-in region.
  Task<InputResult> InputSystemAllocated(AddressSpace& app, std::uint64_t len, Semantics sem);

  // Explicit I/O buffer management for the system-allocated API (paper
  // Section 2.1): allocates a moved-in region usable as an output buffer.
  Vaddr AllocateIoBuffer(AddressSpace& app, std::uint64_t len);
  void FreeIoBuffer(AddressSpace& app, Vaddr start);

  // The preferred alignment of application input buffers (application input
  // alignment, Section 5.2) — page offset the first byte should have.
  std::uint32_t PreferredInputAlignment() const { return options_.preferred_input_offset; }

  // --- Sender-managed buffer placement (Section 6.2.1, refs [5],[20]) ---
  // The receiver registers a persistent in-place buffer under a tag; senders
  // direct datagrams at it with OutputTagged, with no per-datagram
  // preposting and the cheapest possible receive path (interrupt + notify).
  // Weak integrity: the buffer stays mapped and device-writable, like
  // Hamlyn's sender-managed areas; its pages are pinned by long-lived input
  // references (which input-disabled pageout honors — the "non-pageable
  // buffer area" of Section 9's OS-bypass discussion).
  std::uint32_t RegisterNamedBuffer(AddressSpace& app, Vaddr va, std::uint64_t len);
  void UnregisterNamedBuffer(std::uint32_t tag);
  // Awaits the next datagram arrival into the named buffer.
  Task<InputResult> ReceiveNamed(std::uint32_t tag);
  // Sends [va, va+len) to the receiver's named buffer `tag`.
  Task<void> OutputTagged(AddressSpace& app, Vaddr va, std::uint64_t len, Semantics sem,
                          std::uint32_t tag);

  // --- Ring API (see the SubmitEntry comment above) ---
  // Enqueues one entry; false when the submit ring is at options().ring_depth.
  bool Submit(const SubmitEntry& entry);
  // Enqueues entries until the ring fills; returns how many were accepted.
  std::size_t SubmitBatch(const std::vector<SubmitEntry>& entries);
  // Drains every currently-enqueued entry through the kernel in one pass and
  // co_returns the number launched (completions arrive asynchronously).
  Task<std::size_t> Drain();
  // Pops up to `max` completions into `out`; returns how many were popped.
  std::size_t Harvest(std::vector<Completion>* out,
                      std::size_t max = std::numeric_limits<std::size_t>::max());
  // Suspends until at least `n` completions are harvestable; returns the
  // number available. `n` counts ring occupancy, not cumulative completions.
  Task<std::size_t> WaitCompletions(std::size_t n);
  std::size_t submit_ring_size() const { return submit_ring_.size(); }
  std::size_t completion_ring_size() const { return completion_ring_.size(); }

  // Operations (outputs awaiting dispose, inputs awaiting data) in flight.
  std::size_t pending_operations() const { return pending_; }

  // True if at least one input has completed its prepare and is waiting for
  // data (posted to the device / queued for pooled or outboard frames).
  bool HasPreparedInput() const;

  // Test hook: the next output's transport checksum is corrupted in flight.
  void CorruptNextChecksum() { corrupt_next_checksum_ = true; }

  // Crash-stop unwind (called by Node::Crash after the adapter wiped its
  // posted-receive and queue state): every waiting input that has not begun
  // its dispose is unwound and failed with IoStatus::kPeerCrashed. Outputs
  // need no handling here — in-flight transmits are woken by the reliable
  // layer's crash resolution and run their normal sender-side dispose.
  void CrashAbort();

 private:
  struct Charges {
    std::vector<std::pair<OpKind, std::uint64_t>> items;
    void Add(OpKind op, std::uint64_t bytes) { items.emplace_back(op, bytes); }
  };

  struct OutputState {
    AddressSpace* app = nullptr;
    Vaddr va = 0;
    std::uint64_t len = 0;
    std::uint32_t tag = 0;  // sender-managed destination (0 = receiver-posted)
    Semantics requested = Semantics::kCopy;
    Semantics effective = Semantics::kCopy;
    IoReference ref;
    SysBuffer sysbuf;
    bool has_sysbuf = false;
    IoVec wire;
    std::uint32_t header = 0;       // transport checksum (ChecksumMode != kNone)
    bool has_fused_header = false;  // checksum already computed during copyin
    std::uint16_t fused_header = 0;
    bool extra_wired = false;  // ablation: emulated semantics wired
    Vaddr region_start = 0;    // system-allocated
    // Semantics fallback demoted a move-family output to copy: the moved-in
    // region must still be deallocated at dispose (the move contract — the
    // application has relinquished the buffer).
    bool deallocate_region = false;
    std::string xfer;          // trace key: "out#<id>[<semantics>]"
    std::uint64_t flow = 0;    // causal flow id stamping this transfer's events
    SimTime started_at = 0;
    // Ring-submitted outputs: invoked exactly once with the final status —
    // at prepare failure, or after dispose (kOk, or kCancelled/kIoError when
    // delivery failed). Null for the plain Output() path.
    std::function<void(IoStatus)> on_complete;
  };

  struct PendingInput {
    explicit PendingInput(Engine& engine) : done(engine) {}
    AddressSpace* app = nullptr;
    Vaddr va = 0;
    std::uint64_t len = 0;
    Semantics sem = Semantics::kCopy;
    InputBuffering mode = InputBuffering::kEarlyDemux;
    bool system_allocated = false;
    SysBuffer sysbuf;
    bool has_sysbuf = false;
    IoReference ref;
    bool wired = false;
    std::vector<FrameId> wired_frames;  // survives Unreference() for unwiring
    Vaddr region_start = 0;
    std::shared_ptr<MemoryObject> region_object;
    IoVec target;  // DMA target (posted buffer or outboard destination)
    // Displaced frames whose retirement to the device pool must wait until
    // their I/O references and wiring drop (see DisposeAligned).
    std::vector<FrameId> deferred_retire;
    InputResult result;
    SimEvent done;
    std::string xfer;  // trace key: "in#<id>[<semantics>]"
    // Causal flow id of the frame that landed in this input (stamped at
    // dispose; the prepare happens before any sender exists, so its span is
    // joined into the flow's graph by label instead).
    std::uint64_t flow = 0;
    SimTime started_at = 0;
    // Nonzero when the transfer watchdog may cancel this input; for
    // early-demultiplexed inputs the same id is stamped on the posted
    // receive so the adapter-side posting can be revoked atomically.
    std::uint64_t cancel_id = 0;
    // A dispose coroutine has claimed this input: the frame landed and data
    // movement is running. A node crash lets such inputs finish (the frames
    // are already local) instead of unwinding under a running dispose.
    bool dispose_started = false;
  };

  Task<InputResult> InputCommon(AddressSpace& app, Vaddr va, std::uint64_t len, Semantics sem,
                                bool system_allocated);

  // Transport checksum verification (Section 9 extension). Returns the ops
  // to charge and whether dispose should proceed; on a mismatch with a
  // separate-pass verify, the input is failed before any data reaches the
  // application buffer (strong); integrated verification is only detected
  // after the copy (weak for copy-out paths).
  struct ChecksumVerdict {
    bool verified_ok = true;
    bool integrated = false;
  };
  ChecksumVerdict VerifyChecksum(PendingInput& pi, const IoVec& data, std::uint64_t n,
                                 std::uint32_t header, Charges& ch);

  // Functional halves (bookkeeping + data movement), recording the costs to
  // charge; the coroutines charge them while holding the CPU.
  // Prepare may fail recoverably (allocation exhaustion, injected faults);
  // on failure everything it did is unwound and the operation is not started.
  IoStatus PrepareOutput(OutputState& st, Charges& ch);
  void DisposeOutput(OutputState& st, Charges& ch);
  IoStatus PrepareInput(PendingInput& pi, Charges& ch);
  // Prepare wrapped in the semantics degradation loop: on a recoverable
  // prepare failure with options.enable_semantics_fallback, walks the chain
  // emulated -> basic -> copy (resetting the half-prepared state between
  // attempts) until an attempt sticks or the chain bottoms out.
  IoStatus PrepareOutputWithFallback(OutputState& st, Charges& ch);
  IoStatus PrepareInputWithFallback(PendingInput& pi, Charges& ch);
  void RecordSemanticsFallback(const std::string& xfer, std::string_view from,
                               std::string_view to);
  // Table 3 dispose (early demultiplexed and outboard DMA targets).
  void DisposeInputTable3(PendingInput& pi, std::uint64_t n, Charges& ch);
  // Table 4 dispose (pooled overlay buffers).
  void DisposeInputTable4(PendingInput& pi, PooledFrame& frame, std::uint64_t n, Charges& ch);
  void CleanupFailedInput(PendingInput& pi, Charges& ch);
  // Shared unwind core (free sysbuf, unwire, unreference, restore hidden
  // regions) used by the CRC cleanup path and the watchdog cancel path.
  void UnwindInputResources(PendingInput& pi, Charges& ch);
  // Watchdog callback for a stuck input: kCompleted if it finished on its
  // own, kBusy if a frame is mid-delivery, else revokes the posting/queue
  // entry, unwinds, fails the input with IoStatus::kCancelled.
  ReliableDelivery::WatchVerdict TryCancelStuckInput(const std::shared_ptr<PendingInput>& pi);
  void CancelStuckInput(PendingInput& pi);

  // Output prepare phase (trace span, kernel-fixed charge, semantics
  // fallback, checksum, cost charges). Caller holds the CPU. On success the
  // caller detaches TransmitAndDispose; on failure everything was unwound.
  Task<IoStatus> RunOutputPrepare(std::shared_ptr<OutputState> st);
  // Builds the OutputState for [va, va+len) (copy-conversion thresholds,
  // effective semantics, flow id) — the pre-CPU half of OutputTagged.
  std::shared_ptr<OutputState> MakeOutputState(AddressSpace& app, Vaddr va, std::uint64_t len,
                                               Semantics sem, std::uint32_t tag);
  // Ring input wrapper: runs the normal input path, then posts a Completion.
  Task<void> RunRingInput(SubmitEntry entry);
  void PushCompletion(Completion completion);

  Task<void> TransmitAndDispose(std::shared_ptr<OutputState> st);
  Task<void> RunDisposeEarlyDemux(std::shared_ptr<PendingInput> pi, RxCompletion completion);
  Task<void> RunDisposePooled(std::shared_ptr<PendingInput> pi, PooledFrame frame);
  Task<void> RunDisposeOutboard(std::shared_ptr<PendingInput> pi, OutboardFrame frame);

  void OnPooledFrame(PooledFrame frame);
  void OnOutboardFrame(const OutboardFrame& frame);

  struct NamedBuffer {
    explicit NamedBuffer(Engine& engine) : ready(engine) {}
    AddressSpace* app = nullptr;
    Vaddr va = 0;
    std::uint64_t len = 0;
    IoReference ref;  // Long-lived: pins the pages for the device.
    std::deque<InputResult> arrivals;
    SimEvent ready;
  };
  Task<void> RunNamedArrival(std::shared_ptr<NamedBuffer> nb, RxCompletion completion);

  // Swap-or-copy of `n` bytes from aligned source pages into the buffer at
  // `va`, charging per the plan; overlay sources retire displaced frames to
  // the device pool.
  DisposePlan DisposeAligned(PendingInput& pi, Vaddr va, std::uint64_t n, SysBuffer& src,
                             bool to_pool, Charges& ch);

  // Charges `op` over `bytes` as held-CPU time (use only while holding cpu).
  Delay Charge(OpKind op, std::uint64_t bytes);

  void WireRefFrames(PendingInput& pi);
  void UnwireFrames(PendingInput& pi);
  void MapRegionPages(AddressSpace& app, Region& region);
  Region* CheckOrRemapRegion(PendingInput& pi, Charges& ch);
  void FinishOperation();

  // Registers this endpoint's stats and op-count gauges ("ep<channel>.*")
  // with the node's MetricsRegistry; the destructor unregisters them.
  void RegisterMetrics();
  // "out#7[emulated copy]" — the per-transfer trace/metric key.
  std::string XferLabel(const char* direction, Semantics sem);
  // The "<node>.xfer" track every per-transfer span lands on.
  std::string XferTrack() const;
  void RecordInputComplete(PendingInput& pi);

  Node* node_;
  std::uint64_t channel_;
  GenieOptions options_;
  Stats stats_;
  std::array<std::uint64_t, kOpKindCount> op_counts_{};
  std::array<std::uint64_t, kOpKindCount> op_bytes_{};
  std::string metric_prefix_;  // "ep<channel>."
  std::uint64_t next_transfer_id_ = 1;
  OpProbe op_probe_;
  std::function<void(double)> input_latency_probe_;
  bool corrupt_next_checksum_ = false;
  std::size_t pending_ = 0;
  std::deque<std::shared_ptr<PendingInput>> pending_pooled_;
  std::deque<std::shared_ptr<PendingInput>> pending_outboard_;
  std::map<std::uint32_t, std::shared_ptr<NamedBuffer>> named_buffers_;
  std::uint32_t next_tag_ = 1;
  std::uint64_t next_cancel_id_ = 1;
  // Every live input keyed by cancel id, from post to completion record —
  // the crash unwind's worklist. The deques above only cover pooled/outboard
  // waiters; early-demux postings live adapter-side.
  std::map<std::uint64_t, std::shared_ptr<PendingInput>> live_inputs_;
  // Ring API state. The deques are the rings (bounded by options_.ring_depth
  // on the submit side); cq_ready_ is set on every completion push so
  // WaitCompletions wakes exactly when occupancy grows.
  std::deque<SubmitEntry> submit_ring_;
  std::deque<Completion> completion_ring_;
  SimEvent cq_ready_;
};

}  // namespace genie

#endif  // GENIE_SRC_GENIE_ENDPOINT_H_
