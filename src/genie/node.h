// A simulated host: CPU, physical/virtual memory, pageout daemon, network
// adapter, and the cost model for its machine profile. Genie endpoints run
// on nodes; examples and benchmarks build a pair of nodes joined by a
// Network.
#ifndef GENIE_SRC_GENIE_NODE_H_
#define GENIE_SRC_GENIE_NODE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/genie/reliable.h"
#include "src/net/adapter.h"
#include "src/obs/metrics.h"
#include "src/sim/engine.h"
#include "src/sim/trace.h"
#include "src/sim/resource.h"
#include "src/vm/address_space.h"
#include "src/vm/pageout.h"
#include "src/vm/vm.h"

namespace genie {

class Endpoint;

class Node {
 public:
  struct Config {
    MachineProfile profile = MachineProfile::MicronP166();
    std::size_t mem_frames = 4096;
    InputBuffering rx_buffering = InputBuffering::kEarlyDemux;
    std::size_t pool_pages = 64;
    // Charge overlapped per-byte driver work on the CPUs (Figure 4).
    bool model_driver_work = true;
    // Credit-based flow control on the adapter (refs [2], [14]).
    bool flow_control = false;
  };

  Node(Engine& engine, std::string name, Config config);

  Engine& engine() { return *engine_; }
  const std::string& name() const { return name_; }
  const MachineProfile& profile() const { return cost_.profile(); }
  const CostModel& cost_model() const { return cost_; }
  Vm& vm() { return vm_; }
  Resource& cpu() { return cpu_; }
  Adapter& adapter() { return adapter_; }
  ReliableDelivery& reliable() { return *reliable_; }
  PageoutDaemon& pageout() { return pageout_; }
  std::uint32_t page_size() const { return vm_.page_size(); }

  // Creates a process address space owned by this node.
  AddressSpace& CreateProcess(const std::string& proc_name);

  // Per-channel demultiplexing of pooled / outboard frames to endpoints
  // (the adapter has a single handler slot; nodes fan it out).
  void RegisterPooledHandler(std::uint64_t channel, std::function<void(PooledFrame)> handler);
  void RegisterOutboardHandler(std::uint64_t channel,
                               std::function<void(OutboardFrame)> handler);
  // Endpoint teardown: drops a channel's fan-out entry so the `this`-
  // capturing handler cannot outlive its endpoint. Registering and then
  // destroying endpoints in bulk leaves the tables empty.
  void UnregisterPooledHandler(std::uint64_t channel) { pooled_handlers_.erase(channel); }
  void UnregisterOutboardHandler(std::uint64_t channel) { outboard_handlers_.erase(channel); }
  std::size_t pooled_handler_count() const { return pooled_handlers_.size(); }
  std::size_t outboard_handler_count() const { return outboard_handlers_.size(); }

  // Cost of `op` over `bytes` on this machine, as simulated time.
  SimTime Cost(OpKind op, std::uint64_t bytes) const { return cost_.Cost(op, bytes); }

  // Makes sure at least `frames` page frames are free, running the pageout
  // daemon under memory pressure (as a real kernel does before allocating
  // system buffers). Aborts only if eviction cannot make room.
  void EnsureFreeFrames(std::size_t frames) {
    GENIE_CHECK(TryEnsureFreeFrames(frames)) << "out of memory and nothing evictable";
  }

  // Recoverable variant for the data path: returns false when eviction
  // cannot make room (genuine exhaustion, or every eligible pageout write
  // failing under fault injection), letting the caller fail the operation
  // instead of the kernel aborting.
  bool TryEnsureFreeFrames(std::size_t frames) {
    if (vm_.pm().free_frames() < frames) {
      pageout_.EvictUntilFree(frames);
    }
    return vm_.pm().free_frames() >= frames;
  }

  // Attaches `plan` (nullptr detaches) to every injection point this node
  // owns — frame allocation, backing-store I/O, and the adapter's transmit
  // path — and gives the plan this node's sim clock for time-window rules.
  void AttachFaultPlan(FaultPlan* plan) {
    vm_.pm().set_fault_plan(plan);
    vm_.backing().set_fault_plan(plan);
    adapter_.set_fault_plan(plan);
    if (plan != nullptr) {
      plan->set_clock([this] { return engine_->now(); });
    }
  }

  // Turns on the reliable delivery layer (ARQ and/or watchdog) for every
  // endpoint on this node. Off by default; see ReliableOptions. The ARQ
  // window also configures this node's *receive* side (dedup discipline and
  // SACK batching), so both peers of a reliable channel should be enabled
  // with the same window.
  void EnableReliableDelivery(const ReliableOptions& options) {
    reliable_->Configure(options);
    adapter_.set_arq_window(options.window);
  }

  // Optional execution tracing (chrome://tracing export); nullptr disables.
  // The log is given this node's sim clock so TraceScope and the VM fault
  // instants read the current simulated time without threading the engine.
  // The node claims its track names on attach, so two nodes sharing one log
  // with colliding names (e.g. both called "tx") abort at wiring time
  // instead of silently interleaving their events on one lane.
  void set_trace(TraceLog* trace) {
    if (trace_ != nullptr && trace_ != trace) {
      trace_->UnregisterNode(this);
    }
    trace_ = trace;
    adapter_.set_trace(trace);
    vm_.set_trace(trace);
    reliable_->set_trace(trace);
    if (trace != nullptr) {
      trace->RegisterNode(this, name_ + ".xfer");
      trace->RegisterNode(this, name_ + ".cpu");
      trace->RegisterNode(this, name_ + ".nic.wire");
      trace->set_clock([this] { return engine_->now(); });
    }
  }
  TraceLog* trace() { return trace_; }

  // --- Crash-stop node failures & epoch-fenced restart ---
  //
  // Crash() atomically discards every piece of in-flight I/O state this
  // incarnation owns: the adapter drops posted receives, held frames, dedup
  // and credit state; every endpoint fails its waiting inputs with
  // IoStatus::kPeerCrashed; the reliable layer resolves in-flight transfers
  // as crashed. The incarnation epoch bumps at crash time, so a peer still
  // talking to the dead epoch is fenced (its frames bounce with an epoch
  // fence cell) and must resynchronize before new traffic flows. Process
  // memory and metrics survive — the model is kernel I/O state loss, not
  // full machine loss — and VM bookkeeping invariants are asserted on the
  // post-crash state. Restart() clears the crashed flag; the node accepts
  // traffic again under the new epoch.
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }
  std::uint32_t epoch() const { return epoch_; }
  std::uint64_t crashes() const { return crashes_; }

  // Observer invoked at crash time, BEFORE any state is discarded — the
  // flight recorder dumps the victim's trace ring here, with its last events
  // intact. Receives the epoch the node is crashing INTO.
  void set_crash_observer(std::function<void(std::uint32_t epoch)> observer) {
    crash_observer_ = std::move(observer);
  }
  // Observer invoked after Restart() (flight recorder: reset the trace ring
  // and stamp subsequent dumps with the new epoch).
  void set_restart_observer(std::function<void(std::uint32_t epoch)> observer) {
    restart_observer_ = std::move(observer);
  }

  // Seeded crash injection: every `period` a tick consults `plan` at
  // FaultSite::kNodeCrash; a firing rule crash-stops the node and schedules
  // Restart() after the rule's arg ns (0 = `restart_delay`). Ticks stop
  // after `horizon` so the simulation can go quiescent.
  void ArmCrashInjection(FaultPlan* plan, SimTime period, SimTime horizon,
                         SimTime restart_delay);

  // Endpoint registry (maintained by the Endpoint ctor/dtor) so Crash() can
  // unwind every endpoint's waiting operations.
  void RegisterEndpoint(Endpoint* endpoint);
  void UnregisterEndpoint(Endpoint* endpoint);

  // This node's metrics registry. The node registers gauges over its own
  // components (physical memory, backing store, pageout daemon, adapter) at
  // construction and over each process address space in CreateProcess;
  // endpoints add theirs when constructed on the node. The underlying
  // structs stay authoritative — the registry is a uniform read path.
  MetricsRegistry& metrics() { return metrics_; }

 private:
  void RegisterComponentGauges();
  void ScheduleCrashTick(FaultPlan* plan, SimTime period, SimTime horizon,
                         SimTime restart_delay);

  Engine* engine_;
  std::string name_;
  CostModel cost_;
  MetricsRegistry metrics_;
  Vm vm_;
  Resource cpu_;
  Adapter adapter_;
  // unique_ptr so the header needs only the declaration order above; the
  // layer registers itself as the adapter's ack handler at construction.
  std::unique_ptr<ReliableDelivery> reliable_;
  PageoutDaemon pageout_;
  std::vector<std::unique_ptr<AddressSpace>> processes_;
  TraceLog* trace_ = nullptr;
  std::map<std::uint64_t, std::function<void(PooledFrame)>> pooled_handlers_;
  std::map<std::uint64_t, std::function<void(OutboardFrame)>> outboard_handlers_;

  std::uint32_t epoch_ = 1;  // incarnation; bumped at crash time
  bool crashed_ = false;
  std::uint64_t crashes_ = 0;
  std::vector<Endpoint*> endpoints_;
  std::function<void(std::uint32_t)> crash_observer_;
  std::function<void(std::uint32_t)> restart_observer_;
};

// Connects two nodes with one ATM virtual circuit in each direction.
class Network {
 public:
  Network(Engine& engine, Node& a, Node& b);

 private:
  Resource link_ab_;
  Resource link_ba_;
};

}  // namespace genie

#endif  // GENIE_SRC_GENIE_NODE_H_
