#include "src/genie/endpoint.h"

#include <algorithm>
#include <cstring>

#include "src/genie/host_path.h"
#include "src/net/checksum.h"
#include "src/net/iovec_io.h"
#include "src/obs/trace_scope.h"
#include "src/util/check.h"

namespace genie {

namespace {

std::uint64_t CeilPages(std::uint64_t len, std::uint32_t page_size) {
  return (len + page_size - 1) / page_size;
}

// Semantics degradation chains (options.enable_semantics_fallback): the next
// semantics to try after `s` failed to prepare. The chain runs emulated ->
// basic -> copy; copy is the floor because it only needs a system buffer and
// a copyin/copyout, the weakest resource demand of the taxonomy.
//
// Demoting a move-family output to copy sets *deallocate_region: the
// application relinquished the buffer when it called output, so the copy
// fallback must still retire the moved-in region at dispose.
bool NextOutputFallback(Semantics s, Semantics* next, bool* deallocate_region) {
  switch (s) {
    case Semantics::kEmulatedCopy:
      *next = Semantics::kCopy;
      return true;
    case Semantics::kEmulatedShare:
      *next = Semantics::kShare;
      return true;
    case Semantics::kShare:
      *next = Semantics::kCopy;
      return true;
    case Semantics::kEmulatedMove:
      *next = Semantics::kMove;
      return true;
    case Semantics::kEmulatedWeakMove:
      *next = Semantics::kWeakMove;
      return true;
    case Semantics::kMove:
    case Semantics::kWeakMove:
      *next = Semantics::kCopy;
      *deallocate_region = true;
      return true;
    case Semantics::kCopy:
      return false;
  }
  return false;
}

// Input chains keep the allocation family fixed: an application-allocated
// input must deliver into the caller's buffer (floor: copy), a
// system-allocated input must deliver a moved-in region (floor: basic move,
// which builds its region from a plain system buffer at dispose and has no
// prepare-time region or wiring demands).
bool NextInputFallback(Semantics s, bool system_allocated, Semantics* next) {
  if (system_allocated) {
    switch (s) {
      case Semantics::kEmulatedMove:
        *next = Semantics::kMove;
        return true;
      case Semantics::kEmulatedWeakMove:
        *next = Semantics::kWeakMove;
        return true;
      case Semantics::kWeakMove:
        *next = Semantics::kMove;
        return true;
      default:
        return false;
    }
  }
  switch (s) {
    case Semantics::kEmulatedCopy:
      *next = Semantics::kCopy;
      return true;
    case Semantics::kEmulatedShare:
      *next = Semantics::kShare;
      return true;
    case Semantics::kShare:
      *next = Semantics::kCopy;
      return true;
    default:
      return false;
  }
}

}  // namespace

Endpoint::Endpoint(Node& node, std::uint64_t channel, GenieOptions options)
    : node_(&node),
      channel_(channel),
      options_(options),
      metric_prefix_("ep" + std::to_string(channel) + "."),
      cq_ready_(node.engine()) {
  if (options_.register_metrics) {
    RegisterMetrics();
  }
  switch (node_->adapter().rx_buffering()) {
    case InputBuffering::kPooled:
      node_->RegisterPooledHandler(channel_,
                                   [this](PooledFrame f) { OnPooledFrame(std::move(f)); });
      break;
    case InputBuffering::kOutboard:
      node_->RegisterOutboardHandler(channel_,
                                     [this](const OutboardFrame& f) { OnOutboardFrame(f); });
      break;
    case InputBuffering::kEarlyDemux:
      break;
  }
  node_->RegisterEndpoint(this);
}

Endpoint::~Endpoint() {
  node_->UnregisterEndpoint(this);
  while (!named_buffers_.empty()) {
    UnregisterNamedBuffer(named_buffers_.begin()->first);
  }
  // The node outlives the endpoint, but the fan-out handlers and gauges
  // capture `this` — drop every registration so a frame arriving later or a
  // metrics snapshot cannot call into freed memory, and so creating and
  // destroying endpoints in bulk leaves the node's tables empty.
  switch (node_->adapter().rx_buffering()) {
    case InputBuffering::kPooled:
      node_->UnregisterPooledHandler(channel_);
      break;
    case InputBuffering::kOutboard:
      node_->UnregisterOutboardHandler(channel_);
      break;
    case InputBuffering::kEarlyDemux:
      break;
  }
  if (options_.register_metrics) {
    node_->metrics().UnregisterByPrefix(metric_prefix_);
  }
}

void Endpoint::RegisterMetrics() {
  MetricsRegistry& m = node_->metrics();
  m.RegisterGauge(metric_prefix_ + "outputs", [this] { return stats_.outputs; });
  m.RegisterGauge(metric_prefix_ + "inputs", [this] { return stats_.inputs; });
  m.RegisterGauge(metric_prefix_ + "outputs_converted_to_copy",
                  [this] { return stats_.outputs_converted_to_copy; });
  m.RegisterGauge(metric_prefix_ + "pages_swapped", [this] { return stats_.pages_swapped; });
  m.RegisterGauge(metric_prefix_ + "reverse_copyouts",
                  [this] { return stats_.reverse_copyouts; });
  m.RegisterGauge(metric_prefix_ + "bytes_swapped", [this] { return stats_.bytes_swapped; });
  m.RegisterGauge(metric_prefix_ + "bytes_copied", [this] { return stats_.bytes_copied; });
  m.RegisterGauge(metric_prefix_ + "crc_failures", [this] { return stats_.crc_failures; });
  m.RegisterGauge(metric_prefix_ + "region_cache_hits",
                  [this] { return stats_.region_cache_hits; });
  m.RegisterGauge(metric_prefix_ + "region_cache_misses",
                  [this] { return stats_.region_cache_misses; });
  m.RegisterGauge(metric_prefix_ + "regions_remapped_at_dispose",
                  [this] { return stats_.regions_remapped_at_dispose; });
  m.RegisterGauge(metric_prefix_ + "failed_outputs", [this] { return stats_.failed_outputs; });
  m.RegisterGauge(metric_prefix_ + "failed_inputs", [this] { return stats_.failed_inputs; });
  m.RegisterGauge(metric_prefix_ + "recovered_transfers",
                  [this] { return stats_.recovered_transfers; });
  m.RegisterGauge(metric_prefix_ + "semantics_fallbacks",
                  [this] { return stats_.semantics_fallbacks; });
  m.RegisterGauge(metric_prefix_ + "watchdog_cancels",
                  [this] { return stats_.watchdog_cancels; });
  m.RegisterGauge(metric_prefix_ + "ring_submits", [this] { return stats_.ring_submits; });
  m.RegisterGauge(metric_prefix_ + "ring_drains", [this] { return stats_.ring_drains; });
  m.RegisterGauge(metric_prefix_ + "ring_completions",
                  [this] { return stats_.ring_completions; });
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    const std::string op_prefix =
        metric_prefix_ + "op." + std::string(OpKindName(static_cast<OpKind>(i))) + ".";
    m.RegisterGauge(op_prefix + "count", [this, i] { return op_counts_[i]; });
    m.RegisterGauge(op_prefix + "bytes", [this, i] { return op_bytes_[i]; });
  }
}

std::string Endpoint::XferLabel(const char* direction, Semantics sem) {
  return std::string(direction) + "#" + std::to_string(next_transfer_id_++) + "[" +
         std::string(SemanticsName(sem)) + "]";
}

std::string Endpoint::XferTrack() const { return node_->name() + ".xfer"; }

void Endpoint::RecordInputComplete(PendingInput& pi) {
  if (pi.cancel_id != 0) {
    live_inputs_.erase(pi.cancel_id);
  }
  const double us = SimTimeToMicros(node_->engine().now() - pi.started_at);
  if (options_.register_metrics) {
    node_->metrics().Histogram(metric_prefix_ + "input_latency_us").Add(us);
  }
  if (input_latency_probe_) {
    input_latency_probe_(us);
  }
}

Delay Endpoint::Charge(OpKind op, std::uint64_t bytes) {
  const SimTime cost = node_->Cost(op, bytes);
  ++op_counts_[static_cast<std::size_t>(op)];
  op_bytes_[static_cast<std::size_t>(op)] += bytes;
  if (op_probe_) {
    op_probe_(op, bytes, cost);
  }
  if (TraceLog* trace = node_->trace(); trace != nullptr && cost > 0) {
    const SimTime now = node_->engine().now();
    trace->Span(node_->name() + ".cpu", std::string(OpKindName(op)), "genie", now, now + cost);
  }
  return Delay(node_->engine(), cost);
}

void Endpoint::FinishOperation() {
  GENIE_CHECK_GT(pending_, 0u);
  --pending_;
}

bool Endpoint::HasPreparedInput() const {
  switch (node_->adapter().rx_buffering()) {
    case InputBuffering::kEarlyDemux:
      return node_->adapter().posted_receives(channel_) > 0;
    case InputBuffering::kPooled:
      return !pending_pooled_.empty();
    case InputBuffering::kOutboard:
      return !pending_outboard_.empty();
  }
  return false;
}

// ---------------------------------------------------------------------------
// Output (Table 2)
// ---------------------------------------------------------------------------

Task<void> Endpoint::Output(AddressSpace& app, Vaddr va, std::uint64_t len, Semantics sem) {
  return OutputTagged(app, va, len, sem, /*tag=*/0);
}

std::shared_ptr<Endpoint::OutputState> Endpoint::MakeOutputState(AddressSpace& app, Vaddr va,
                                                                 std::uint64_t len,
                                                                 Semantics sem,
                                                                 std::uint32_t tag) {
  GENIE_CHECK_GT(len, 0u);
  GENIE_CHECK_LE(len, kMaxAal5Payload);
  auto st = std::make_shared<OutputState>();
  st->app = &app;
  st->va = va;
  st->len = len;
  st->tag = tag;
  st->requested = sem;

  // Short-output conversion to copy semantics (Section 6 / Figure 5).
  Semantics effective = sem;
  if (options_.enable_copy_conversion) {
    if (sem == Semantics::kEmulatedCopy && len < options_.emulated_copy_output_threshold) {
      effective = Semantics::kCopy;
    } else if (sem == Semantics::kEmulatedShare &&
               len < options_.emulated_share_output_threshold) {
      effective = Semantics::kCopy;
    }
    if (effective != sem) {
      ++stats_.outputs_converted_to_copy;
    }
  }
  // Ablation: without TCOW there is no safe write-protection scheme for
  // in-place strong-integrity output; emulated copy degenerates to copy.
  if (!options_.enable_tcow && effective == Semantics::kEmulatedCopy) {
    effective = Semantics::kCopy;
  }
  st->effective = effective;
  st->xfer = XferLabel("out", effective);
  // Minted here, at the origin of the causal chain: every span and instant
  // this transfer produces — on either node — carries the same flow id.
  st->flow = node_->engine().NextFlowId();
  st->started_at = node_->engine().now();

  ++stats_.outputs;
  ++pending_;
  return st;
}

Task<IoStatus> Endpoint::RunOutputPrepare(std::shared_ptr<OutputState> st) {
  TraceScope prepare_span(node_->trace(), XferTrack(), st->xfer + ".prepare", "xfer", st->flow);
  co_await Charge(OpKind::kSenderKernelFixed, 0);
  Charges charges;
  IoStatus prep;
  {
    // Synchronous phase: VM events it triggers (faults, page-ins) are keyed
    // to this transfer.
    ScopedTraceContext trace_ctx(node_->trace(), st->xfer);
    prep = PrepareOutputWithFallback(*st, charges);
  }
  if (prep != IoStatus::kOk) {
    // The output never started; everything prepared so far was unwound. The
    // kernel time spent on the attempt is still charged.
    ++stats_.failed_outputs;
    ++stats_.recovered_transfers;
    for (const auto& [op, bytes] : charges.items) {
      co_await Charge(op, bytes);
    }
    prepare_span.End();
    if (st->on_complete) {
      st->on_complete(prep);
    }
    co_return prep;
  }
  if (options_.checksum_mode != ChecksumMode::kNone) {
    // Compute the transport checksum over the outgoing data. For copy
    // semantics it can be integrated with the copyin (reference [7]); for
    // in-place output it is a separate read-only pass.
    st->header = st->has_fused_header
                     ? st->fused_header
                     : ChecksumOfIoVec(st->app->vm().pm(), st->wire, st->len);
    if (corrupt_next_checksum_) {
      corrupt_next_checksum_ = false;
      st->header ^= 0xFFFF;
    }
    charges.Add(options_.checksum_mode == ChecksumMode::kIntegrated &&
                        st->effective == Semantics::kCopy
                    ? OpKind::kChecksumIntegrated
                    : OpKind::kChecksumRead,
                st->len);
  }
  for (const auto& [op, bytes] : charges.items) {
    co_await Charge(op, bytes);
  }
  prepare_span.End();
  co_return IoStatus::kOk;
}

Task<void> Endpoint::OutputTagged(AddressSpace& app, Vaddr va, std::uint64_t len,
                                  Semantics sem, std::uint32_t tag) {
  if (node_->crashed()) {
    // Kernel I/O state is gone; fail fast without touching the VM.
    ++stats_.failed_outputs;
    co_return;
  }
  auto st = MakeOutputState(app, va, len, sem, tag);
  co_await node_->cpu().Acquire();
  const IoStatus prep = co_await RunOutputPrepare(st);
  node_->cpu().Release();
  if (prep != IoStatus::kOk) {
    FinishOperation();
    co_return;
  }
  // Transmission and dispose proceed asynchronously; the application
  // regains control now (the output call returns).
  std::move(TransmitAndDispose(st)).Detach();
  co_return;
}

// ---------------------------------------------------------------------------
// Batched submission/completion rings
// ---------------------------------------------------------------------------

bool Endpoint::Submit(const SubmitEntry& entry) {
  GENIE_CHECK(entry.app != nullptr);
  if (submit_ring_.size() >= options_.ring_depth) {
    return false;
  }
  submit_ring_.push_back(entry);
  ++stats_.ring_submits;
  return true;
}

std::size_t Endpoint::SubmitBatch(const std::vector<SubmitEntry>& entries) {
  std::size_t accepted = 0;
  for (const SubmitEntry& entry : entries) {
    if (!Submit(entry)) {
      break;
    }
    ++accepted;
  }
  return accepted;
}

void Endpoint::PushCompletion(Completion completion) {
  completion.completed_at = node_->engine().now();
  completion_ring_.push_back(completion);
  ++stats_.ring_completions;
  cq_ready_.Set();
}

std::size_t Endpoint::Harvest(std::vector<Completion>* out, std::size_t max) {
  std::size_t popped = 0;
  while (!completion_ring_.empty() && popped < max) {
    out->push_back(completion_ring_.front());
    completion_ring_.pop_front();
    ++popped;
  }
  return popped;
}

Task<std::size_t> Endpoint::WaitCompletions(std::size_t n) {
  while (completion_ring_.size() < n) {
    co_await cq_ready_.Wait();
    cq_ready_.Reset();
  }
  co_return completion_ring_.size();
}

Task<void> Endpoint::RunRingInput(SubmitEntry entry) {
  const InputResult r =
      co_await InputCommon(*entry.app, entry.va, entry.len, entry.sem, entry.system_allocated);
  Completion c;
  c.user_data = entry.user_data;
  c.op = SubmitEntry::Op::kInput;
  // A delivery whose payload failed its integrity checks (CRC/checksum) is
  // reported kIoError: the entry is complete but the data is not usable.
  c.status = (!r.ok && r.status == IoStatus::kOk) ? IoStatus::kIoError : r.status;
  c.bytes = r.bytes;
  c.addr = r.addr;
  PushCompletion(c);
}

Task<std::size_t> Endpoint::Drain() {
  if (submit_ring_.empty()) {
    co_return 0;
  }
  ++stats_.ring_drains;
  // Take the current batch; entries submitted while this drain runs wait
  // for the next pass.
  std::deque<SubmitEntry> batch;
  batch.swap(submit_ring_);
  const std::size_t launched = batch.size();
  // One kernel entry for the whole batch: the CPU is acquired once, and
  // every output prepare runs under that single hold. Inputs launch their
  // normal self-contained coroutines, which queue FIFO for the CPU behind
  // this drain's hold, preserving submission order.
  co_await node_->cpu().Acquire();
  for (SubmitEntry& entry : batch) {
    if (entry.op == SubmitEntry::Op::kInput) {
      std::move(RunRingInput(entry)).Detach();
      continue;
    }
    auto st = MakeOutputState(*entry.app, entry.va, entry.len, entry.sem, entry.tag);
    const std::uint64_t user_data = entry.user_data;
    const std::uint64_t len = entry.len;
    st->on_complete = [this, user_data, len](IoStatus status) {
      Completion c;
      c.user_data = user_data;
      c.op = SubmitEntry::Op::kOutput;
      c.status = status;
      c.bytes = status == IoStatus::kOk ? len : 0;
      PushCompletion(c);
    };
    const IoStatus prep = co_await RunOutputPrepare(st);
    if (prep != IoStatus::kOk) {
      FinishOperation();
      continue;
    }
    std::move(TransmitAndDispose(st)).Detach();
  }
  node_->cpu().Release();
  co_return launched;
}

IoStatus Endpoint::PrepareOutput(OutputState& st, Charges& ch) {
  AddressSpace& app = *st.app;
  PhysicalMemory& pm = app.vm().pm();
  const Vaddr va = st.va;
  const std::uint64_t len = st.len;
  Region* region = app.FindRegion(va);
  GENIE_CHECK(region != nullptr && va + len <= region->end()) << "bad output buffer";
  if (IsSystemAllocated(st.effective)) {
    // Output with system-allocated semantics is allowed only on moved-in
    // regions (Section 2.1): deallocating an unmovable region (heap/stack)
    // would open inconsistent gaps.
    GENIE_CHECK(region->state == RegionState::kMovedIn)
        << "system-allocated output requires a moved-in region";
    st.region_start = region->start;
  }

  switch (st.effective) {
    case Semantics::kCopy: {
      // Allocate system buffer; copyin output data. Under memory pressure
      // the pageout daemon makes room first.
      if (!node_->TryEnsureFreeFrames(CeilPages(len, pm.page_size())) ||
          !TryAllocateSysBuffer(pm, 0, len, &st.sysbuf)) {
        return IoStatus::kNoMemory;
      }
      st.has_sysbuf = true;
      // Single-pass copyin, with the transport checksum folded in when one
      // is wanted (reference [7]): the data is read exactly once.
      InternetChecksum sum;
      const bool fuse = options_.checksum_mode != ChecksumMode::kNone;
      const AccessResult res = CopyinToIoVec(app, va, len, st.sysbuf.iov, fuse ? &sum : nullptr);
      if (res != AccessResult::kOk) {
        // A source page could not be faulted in (injected allocation or
        // backing failure); release the system buffer and fail the output.
        FreeSysBuffer(pm, st.sysbuf);
        st.has_sysbuf = false;
        return IoStatus::kIoError;
      }
      if (fuse) {
        st.fused_header = sum.value();
        st.has_fused_header = true;
      }
      for (const FrameId f : st.sysbuf.frames) {
        pm.AddOutputRef(f);
      }
      ch.Add(OpKind::kOverlayAllocate, 0);  // System buffer allocation.
      ch.Add(OpKind::kCopyin, len);
      st.wire = st.sysbuf.iov;
      break;
    }
    case Semantics::kEmulatedCopy: {
      // Reference application pages; read-only application pages (TCOW arm).
      // ReferenceRange unwinds itself on a mid-run page-in failure.
      const AccessResult res = ReferenceRange(app, va, len, IoDirection::kOutput, &st.ref);
      if (res != AccessResult::kOk) {
        return IoStatus::kIoError;
      }
      ch.Add(OpKind::kReference, len);
      app.RemoveWrite(va, len);
      ch.Add(OpKind::kReadOnly, len);
      st.wire = st.ref.iovec;
      break;
    }
    case Semantics::kShare: {
      const AccessResult res = ReferenceRange(app, va, len, IoDirection::kOutput, &st.ref);
      if (res != AccessResult::kOk) {
        return IoStatus::kIoError;
      }
      ch.Add(OpKind::kReference, len);
      for (const FrameId f : st.ref.frames) {
        pm.Wire(f);
      }
      ch.Add(OpKind::kWire, len);
      st.wire = st.ref.iovec;
      break;
    }
    case Semantics::kEmulatedShare: {
      const AccessResult res = ReferenceRange(app, va, len, IoDirection::kOutput, &st.ref);
      if (res != AccessResult::kOk) {
        return IoStatus::kIoError;
      }
      ch.Add(OpKind::kReference, len);
      st.wire = st.ref.iovec;
      break;
    }
    case Semantics::kMove:
    case Semantics::kWeakMove:
    case Semantics::kEmulatedMove:
    case Semantics::kEmulatedWeakMove: {
      const AccessResult res = ReferenceRange(app, va, len, IoDirection::kOutput, &st.ref);
      if (res != AccessResult::kOk) {
        return IoStatus::kIoError;
      }
      ch.Add(OpKind::kReference, len);
      if (st.effective == Semantics::kMove || st.effective == Semantics::kWeakMove) {
        for (const FrameId f : st.ref.frames) {
          pm.Wire(f);
        }
        ch.Add(OpKind::kWire, len);
      }
      region->state = RegionState::kMovingOut;
      ch.Add(OpKind::kRegionMarkOut, 0);
      if (st.effective == Semantics::kMove || st.effective == Semantics::kEmulatedMove) {
        // Strong move semantics: invalidate application pages so the data
        // cannot be observed or corrupted during output.
        app.RemoveAll(region->start, region->length);
        ch.Add(OpKind::kInvalidate, len);
      }
      st.wire = st.ref.iovec;
      break;
    }
  }

  // Ablation: with input-disabled pageout off, the emulated semantics must
  // wire like the basic ones to keep pages resident during I/O.
  if (!options_.enable_input_disabled_pageout && IsEmulated(st.effective)) {
    for (const FrameId f : st.ref.frames) {
      pm.Wire(f);
    }
    st.extra_wired = true;
    ch.Add(OpKind::kWire, len);
  }
  return IoStatus::kOk;
}

void Endpoint::RecordSemanticsFallback(const std::string& xfer, std::string_view from,
                                       std::string_view to) {
  ++stats_.semantics_fallbacks;
  node_->reliable().RecordFallback(xfer, from, to);
}

IoStatus Endpoint::PrepareOutputWithFallback(OutputState& st, Charges& ch) {
  IoStatus prep = PrepareOutput(st, ch);
  while (prep != IoStatus::kOk && options_.enable_semantics_fallback) {
    Semantics next;
    bool deallocate = st.deallocate_region;
    if (!NextOutputFallback(st.effective, &next, &deallocate)) {
      break;
    }
    RecordSemanticsFallback(st.xfer, SemanticsName(st.effective), SemanticsName(next));
    // The failed attempt unwound its own resources; drop the stale handles
    // before retrying with the demoted semantics.
    st.ref = IoReference{};
    st.sysbuf = SysBuffer{};
    st.has_sysbuf = false;
    st.has_fused_header = false;
    st.wire = IoVec{};
    st.effective = next;
    st.deallocate_region = deallocate;
    prep = PrepareOutput(st, ch);
  }
  if (prep == IoStatus::kOk && st.deallocate_region) {
    // Copy fallback of a move-family output: mark the region moving-out now
    // (so the application cannot start another transfer from it) and retire
    // it at dispose, honoring the move contract despite the demotion.
    if (Region* region = st.app->RegionAt(st.region_start); region != nullptr) {
      region->state = RegionState::kMovingOut;
    }
    ch.Add(OpKind::kRegionMarkOut, 0);
  }
  return prep;
}

Task<void> Endpoint::TransmitAndDispose(std::shared_ptr<OutputState> st) {
  // Device setup, bus and network fixed latencies, then the wire transfer.
  // The transmit span covers DMA through the adapter completion.
  ReliableDelivery& reliable = node_->reliable();
  TraceScope transmit_span(node_->trace(), XferTrack(), st->xfer + ".transmit", "xfer",
                           st->flow);
  co_await Delay(node_->engine(), node_->Cost(OpKind::kHardwareFixed, 0));
  bool delivery_failed = false;
  bool watchdog_cancelled = false;
  bool peer_crashed = false;
  if (reliable.arq_enabled()) {
    auto token = std::make_shared<ReliableDelivery::CancelToken>();
    std::uint64_t watch_id = 0;
    bool watching = false;
    if (reliable.watchdog_enabled()) {
      watching = true;
      watch_id = reliable.Watch(st->xfer, [this, token] {
        if (token->resolved) {
          // The transfer already succeeded at this instant (ack and watchdog
          // scan landing together): report completion, not a cancel, so the
          // giveup/completed counters cannot both tick for one transfer.
          return ReliableDelivery::WatchVerdict::kCompleted;
        }
        if (token->cancelled) {
          return ReliableDelivery::WatchVerdict::kBusy;  // Unwind under way.
        }
        token->cancelled = true;
        // Kick the transfer out of whichever wait it is parked in: a credit
        // wait is aborted outright, an ack wait is woken to observe the
        // cancellation.
        if (token->ctl != nullptr) {
          node_->adapter().AbortCreditWait(channel_, token->ctl);
        }
        if (token->wake != nullptr) {
          token->wake->Set();
        }
        return ReliableDelivery::WatchVerdict::kCancelled;
      });
    }
    const ReliableDelivery::TxReport report = co_await reliable.TransmitReliably(
        channel_, st->wire, st->header, st->tag, st->xfer, token, st->flow);
    if (watching) {
      reliable.Unwatch(watch_id);
    }
    delivery_failed = report.outcome != ReliableDelivery::TxOutcome::kDelivered;
    watchdog_cancelled = report.outcome == ReliableDelivery::TxOutcome::kCancelled;
    peer_crashed = report.outcome == ReliableDelivery::TxOutcome::kPeerCrashed;
  } else if (reliable.watchdog_enabled()) {
    // Unreliable transmit, but watched: a credit deadlock (flow control with
    // the peer never posting a receive) is broken by aborting the wait.
    auto ctl = std::make_shared<TxControl>();
    const std::uint64_t watch_id = reliable.Watch(st->xfer, [this, ctl] {
      return node_->adapter().AbortCreditWait(channel_, ctl)
                 ? ReliableDelivery::WatchVerdict::kCancelled
                 : ReliableDelivery::WatchVerdict::kBusy;
    });
    co_await node_->adapter().TransmitFrame(channel_, st->wire, st->header, st->tag, ctl,
                                            st->flow);
    reliable.Unwatch(watch_id);
    delivery_failed = ctl->aborted;
    watchdog_cancelled = ctl->aborted;
  } else {
    co_await node_->adapter().TransmitFrame(channel_, st->wire, st->header, st->tag,
                                            /*ctl=*/nullptr, st->flow);
  }
  transmit_span.End();
  if (delivery_failed) {
    // The data never reached the peer (retries exhausted or watchdog
    // cancelled); the send still disposes below — the sender-side unwind is
    // identical — but is accounted as failed-and-recovered.
    ++stats_.failed_outputs;
    ++stats_.recovered_transfers;
    if (watchdog_cancelled) {
      ++stats_.watchdog_cancels;
    }
  }

  // Transmit-complete: dispose on the sender CPU (overlapping the network
  // and receiver-side processing).
  co_await node_->cpu().Acquire();
  TraceScope dispose_span(node_->trace(), XferTrack(), st->xfer + ".dispose", "xfer", st->flow);
  Charges charges;
  {
    ScopedTraceContext trace_ctx(node_->trace(), st->xfer);
    DisposeOutput(*st, charges);
  }
  for (const auto& [op, bytes] : charges.items) {
    co_await Charge(op, bytes);
  }
  dispose_span.End();
  node_->metrics()
      .Histogram(metric_prefix_ + "output_latency_us")
      .Add(SimTimeToMicros(node_->engine().now() - st->started_at));
  node_->cpu().Release();
  FinishOperation();
  if (st->on_complete) {
    IoStatus status = IoStatus::kOk;
    if (delivery_failed) {
      status = peer_crashed      ? IoStatus::kPeerCrashed
               : watchdog_cancelled ? IoStatus::kCancelled
                                    : IoStatus::kIoError;
    }
    st->on_complete(status);
  }
}

void Endpoint::DisposeOutput(OutputState& st, Charges& ch) {
  AddressSpace& app = *st.app;
  PhysicalMemory& pm = app.vm().pm();
  const std::uint64_t len = st.len;

  if (st.extra_wired) {
    for (const FrameId f : st.ref.frames) {
      pm.Unwire(f);
    }
    ch.Add(OpKind::kUnwire, len);
  }

  switch (st.effective) {
    case Semantics::kCopy: {
      for (const FrameId f : st.sysbuf.frames) {
        pm.DropOutputRef(f);
      }
      FreeSysBuffer(pm, st.sysbuf);
      ch.Add(OpKind::kUnreference, len);
      if (st.deallocate_region) {
        // Copy fallback of a move-family output: the application gave the
        // buffer up, so the moved-in region is still retired here.
        if (app.RegionAt(st.region_start) != nullptr) {
          app.RemoveRegion(st.region_start);
        }
        ch.Add(OpKind::kRegionRemove, 0);
      }
      break;
    }
    case Semantics::kEmulatedCopy: {
      Unreference(app.vm(), st.ref);
      ch.Add(OpKind::kUnreference, len);
      break;
    }
    case Semantics::kShare: {
      for (const FrameId f : st.ref.frames) {
        pm.Unwire(f);
      }
      ch.Add(OpKind::kUnwire, len);
      Unreference(app.vm(), st.ref);
      ch.Add(OpKind::kUnreference, len);
      break;
    }
    case Semantics::kEmulatedShare: {
      Unreference(app.vm(), st.ref);
      ch.Add(OpKind::kUnreference, len);
      break;
    }
    case Semantics::kMove:
    case Semantics::kWeakMove: {
      for (const FrameId f : st.ref.frames) {
        pm.Unwire(f);
      }
      ch.Add(OpKind::kUnwire, len);
      Unreference(app.vm(), st.ref);
      ch.Add(OpKind::kUnreference, len);
      if (st.effective == Semantics::kMove) {
        // Deferred region removal (kept until dispose so virtual addresses
        // are not reassigned during I/O).
        if (app.RegionAt(st.region_start) != nullptr) {
          app.RemoveRegion(st.region_start);
        }
        ch.Add(OpKind::kRegionRemove, 0);
      } else {
        if (Region* region = app.RegionAt(st.region_start); region != nullptr) {
          region->state = RegionState::kWeaklyMovedOut;
          app.EnqueueCachedRegion(region->start);
        }
        ch.Add(OpKind::kRegionMarkOut, 0);
      }
      break;
    }
    case Semantics::kEmulatedMove:
    case Semantics::kEmulatedWeakMove: {
      Unreference(app.vm(), st.ref);
      ch.Add(OpKind::kUnreference, len);
      Region* region = app.RegionAt(st.region_start);
      if (st.effective == Semantics::kEmulatedMove && !options_.enable_region_hiding) {
        // Ablation: no hiding — pay full region removal like basic move.
        if (region != nullptr) {
          app.RemoveRegion(st.region_start);
        }
        ch.Add(OpKind::kRegionRemove, 0);
      } else if (region != nullptr) {
        region->state = st.effective == Semantics::kEmulatedMove
                            ? RegionState::kMovedOut
                            : RegionState::kWeaklyMovedOut;
        app.EnqueueCachedRegion(region->start);
        ch.Add(OpKind::kRegionMarkOut, 0);
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Input (Tables 3, 4 and Section 6.2.3)
// ---------------------------------------------------------------------------

Task<InputResult> Endpoint::Input(AddressSpace& app, Vaddr va, std::uint64_t len,
                                  Semantics sem) {
  GENIE_CHECK(IsApplicationAllocated(sem))
      << "Input() takes application-allocated semantics; use InputSystemAllocated";
  return InputCommon(app, va, len, sem, /*system_allocated=*/false);
}

Task<InputResult> Endpoint::InputSystemAllocated(AddressSpace& app, std::uint64_t len,
                                                 Semantics sem) {
  GENIE_CHECK(IsSystemAllocated(sem));
  return InputCommon(app, 0, len, sem, /*system_allocated=*/true);
}

Task<InputResult> Endpoint::InputCommon(AddressSpace& app, Vaddr va, std::uint64_t len,
                                        Semantics sem, bool system_allocated) {
  GENIE_CHECK_GT(len, 0u);
  GENIE_CHECK_LE(len, kMaxAal5Payload);
  if (node_->crashed()) {
    // Kernel I/O state is gone; fail fast without touching the VM.
    ++stats_.failed_inputs;
    InputResult result;
    result.ok = false;
    result.status = IoStatus::kPeerCrashed;
    result.completed_at = node_->engine().now();
    co_return result;
  }
  auto pi = std::make_shared<PendingInput>(node_->engine());
  pi->app = &app;
  pi->va = va;
  pi->len = len;
  pi->sem = sem;
  pi->mode = node_->adapter().rx_buffering();
  pi->system_allocated = system_allocated;
  pi->xfer = XferLabel("in", sem);
  pi->started_at = node_->engine().now();

  ++stats_.inputs;
  ++pending_;

  co_await node_->cpu().Acquire();
  TraceScope prepare_span(node_->trace(), XferTrack(), pi->xfer + ".prepare");
  Charges charges;
  IoStatus prep;
  {
    ScopedTraceContext trace_ctx(node_->trace(), pi->xfer);
    prep = PrepareInputWithFallback(*pi, charges);
  }
  for (const auto& [op, bytes] : charges.items) {
    co_await Charge(op, bytes);
  }
  prepare_span.End();
  node_->cpu().Release();

  if (prep != IoStatus::kOk) {
    // The input was never posted; prepare unwound everything it did. The
    // failure is reported to the caller instead of aborting the kernel.
    ++stats_.failed_inputs;
    ++stats_.recovered_transfers;
    pi->result.ok = false;
    pi->result.status = prep;
    pi->result.completed_at = node_->engine().now();
    FinishOperation();
    co_return pi->result;
  }

  if (node_->crashed()) {
    // The crash landed while prepare held the CPU (the crash unwind cannot
    // see an input that is not yet posted). Undo the prepare and fail, as
    // the crash unwind would have; PostReceive on a crashed adapter aborts.
    Charges discarded;
    UnwindInputResources(*pi, discarded);
    ++stats_.failed_inputs;
    ++stats_.recovered_transfers;
    pi->result.ok = false;
    pi->result.status = IoStatus::kPeerCrashed;
    pi->result.completed_at = node_->engine().now();
    FinishOperation();
    co_return pi->result;
  }

  pi->cancel_id = next_cancel_id_++;
  live_inputs_[pi->cancel_id] = pi;
  switch (pi->mode) {
    case InputBuffering::kEarlyDemux: {
      Adapter::PostedReceive posted;
      posted.target = pi->target;
      posted.cancel_id = pi->cancel_id;
      posted.on_complete = [this, pi](const RxCompletion& c) {
        pi->dispose_started = true;
        std::move(RunDisposeEarlyDemux(pi, c)).Detach();
      };
      node_->adapter().PostReceive(channel_, std::move(posted));
      break;
    }
    case InputBuffering::kPooled:
      pending_pooled_.push_back(pi);
      break;
    case InputBuffering::kOutboard:
      pending_outboard_.push_back(pi);
      break;
  }

  bool watching = false;
  std::uint64_t watch_id = 0;
  if (node_->reliable().watchdog_enabled()) {
    watching = true;
    watch_id = node_->reliable().Watch(pi->xfer, [this, pi] { return TryCancelStuckInput(pi); });
  }
  co_await pi->done.Wait();
  if (watching) {
    node_->reliable().Unwatch(watch_id);
  }
  co_return pi->result;
}

IoStatus Endpoint::PrepareInputWithFallback(PendingInput& pi, Charges& ch) {
  IoStatus prep = PrepareInput(pi, ch);
  while (prep != IoStatus::kOk && options_.enable_semantics_fallback) {
    Semantics next;
    if (!NextInputFallback(pi.sem, pi.system_allocated, &next)) {
      break;
    }
    RecordSemanticsFallback(pi.xfer, SemanticsName(pi.sem), SemanticsName(next));
    // The failed attempt unwound its own resources (including resetting
    // pi.va for system-allocated regions); drop the stale handles and retry
    // demoted. Dispose follows pi.sem, so the downgrade carries through the
    // whole transfer automatically.
    pi.sysbuf = SysBuffer{};
    pi.has_sysbuf = false;
    pi.ref = IoReference{};
    pi.wired = false;
    pi.wired_frames.clear();
    pi.region_start = 0;
    pi.region_object.reset();
    pi.target = IoVec{};
    pi.sem = next;
    prep = PrepareInput(pi, ch);
  }
  return prep;
}

IoStatus Endpoint::PrepareInput(PendingInput& pi, Charges& ch) {
  AddressSpace& app = *pi.app;
  PhysicalMemory& pm = app.vm().pm();
  const std::uint32_t psz = pm.page_size();
  const std::uint64_t len = pi.len;

  switch (pi.sem) {
    case Semantics::kCopy: {
      // Ready-time system buffer (charged here: preposted input overlaps
      // ready-time work with the sender and the network).
      if (pi.mode != InputBuffering::kPooled) {
        if (!node_->TryEnsureFreeFrames(CeilPages(len, psz)) ||
            !TryAllocateSysBuffer(pm, 0, len, &pi.sysbuf)) {
          return IoStatus::kNoMemory;
        }
        pi.has_sysbuf = true;
        pi.target = pi.sysbuf.iov;
        ch.Add(OpKind::kOverlayAllocate, 0);
      }
      break;
    }
    case Semantics::kEmulatedCopy: {
      // System input alignment (Section 5.2): the aligned buffer has the
      // same page offset and length as the application buffer. With
      // outboard devices no buffer is needed (Section 6.2.3).
      if (pi.mode == InputBuffering::kEarlyDemux) {
        const std::uint32_t offset =
            options_.enable_input_alignment ? static_cast<std::uint32_t>(pi.va % psz) : 0;
        if (options_.enable_semantics_fallback) {
          // Alignment degradation: when the aligned pool is exhausted, an
          // offset-0 buffer (one page smaller) may still fit; the dispose
          // then copies out instead of swapping, staying emulated copy.
          bool degraded = false;
          if (!TryAllocateSysBufferDegraded(
                  pm, offset, len, &pi.sysbuf, &degraded,
                  [this](std::uint64_t pages) {
                    return node_->TryEnsureFreeFrames(static_cast<std::size_t>(pages));
                  })) {
            return IoStatus::kNoMemory;
          }
          if (degraded) {
            RecordSemanticsFallback(pi.xfer, "aligned", "unaligned");
          }
        } else if (!node_->TryEnsureFreeFrames(
                       CeilPages(static_cast<std::uint64_t>(offset) + len, psz)) ||
                   !TryAllocateSysBuffer(pm, offset, len, &pi.sysbuf)) {
          return IoStatus::kNoMemory;
        }
        pi.has_sysbuf = true;
        pi.target = pi.sysbuf.iov;
        ch.Add(OpKind::kOverlayAllocate, 0);
      }
      break;
    }
    case Semantics::kShare:
    case Semantics::kEmulatedShare: {
      // In-place input: reference (and for share, wire) application pages.
      const AccessResult res = ReferenceRange(app, pi.va, len, IoDirection::kInput, &pi.ref);
      if (res != AccessResult::kOk) {
        return IoStatus::kIoError;
      }
      ch.Add(OpKind::kReference, len);
      if (pi.sem == Semantics::kShare ||
          (!options_.enable_input_disabled_pageout && pi.sem == Semantics::kEmulatedShare)) {
        WireRefFrames(pi);
        ch.Add(OpKind::kWire, len);
      }
      pi.target = pi.ref.iovec;
      break;
    }
    case Semantics::kMove: {
      // System buffer; the region is created at dispose time.
      if (pi.mode != InputBuffering::kPooled) {
        if (!node_->TryEnsureFreeFrames(CeilPages(len, psz)) ||
            !TryAllocateSysBuffer(pm, 0, len, &pi.sysbuf)) {
          return IoStatus::kNoMemory;
        }
        pi.has_sysbuf = true;
        pi.target = pi.sysbuf.iov;
        ch.Add(OpKind::kOverlayAllocate, 0);
      }
      break;
    }
    case Semantics::kEmulatedMove:
    case Semantics::kWeakMove:
    case Semantics::kEmulatedWeakMove: {
      // Dequeue a cached region (region caching / hiding) or allocate a new
      // one marked moving-in.
      const RegionState cache_state = pi.sem == Semantics::kEmulatedMove
                                          ? RegionState::kMovedOut
                                          : RegionState::kWeaklyMovedOut;
      const std::uint64_t rlen = CeilPages(len, psz) * psz;
      Region* region = nullptr;
      bool from_cache = false;
      const bool may_use_cache =
          pi.sem != Semantics::kEmulatedMove || options_.enable_region_hiding;
      if (may_use_cache) {
        region = app.DequeueCachedRegion(rlen, cache_state);
        from_cache = region != nullptr;
      }
      if (region != nullptr) {
        ++stats_.region_cache_hits;
        ch.Add(OpKind::kRegionDequeue, 0);
      } else {
        ++stats_.region_cache_misses;
        const Vaddr addr = app.FindFreeRange(rlen);
        region = app.CreateRegion(addr, rlen, RegionState::kMovingIn);
        ch.Add(OpKind::kRegionCreate, 0);
      }
      region->state = RegionState::kMovingIn;
      pi.region_start = region->start;
      pi.region_object = region->object;
      pi.va = region->start;
      const AccessResult res =
          ReferenceRange(app, region->start, len, IoDirection::kInput, &pi.ref);
      if (res != AccessResult::kOk) {
        // Unwind the prepared region: back to its cache if it came from one
        // (any pages it already holds stay with its object for reuse),
        // otherwise remove the fresh region entirely.
        if (from_cache) {
          region->state = cache_state;
          app.EnqueueCachedRegion(region->start);
        } else {
          app.RemoveRegion(region->start);
        }
        pi.region_start = 0;
        pi.region_object.reset();
        pi.va = 0;
        return IoStatus::kIoError;
      }
      ch.Add(OpKind::kReference, len);
      if (pi.sem == Semantics::kWeakMove || !options_.enable_input_disabled_pageout) {
        WireRefFrames(pi);
        ch.Add(OpKind::kWire, len);
      }
      pi.target = pi.ref.iovec;
      break;
    }
  }
  return IoStatus::kOk;
}

void Endpoint::WireRefFrames(PendingInput& pi) {
  PhysicalMemory& pm = pi.app->vm().pm();
  for (const FrameId f : pi.ref.frames) {
    pm.Wire(f);
  }
  pi.wired_frames = pi.ref.frames;
  pi.wired = true;
}

void Endpoint::MapRegionPages(AddressSpace& app, Region& region) {
  const std::uint32_t psz = app.page_size();
  for (const auto& [index, frame] : region.object->pages()) {
    app.MapPage(region.start + index * psz, frame, Prot::kReadWrite);
  }
}

Region* Endpoint::CheckOrRemapRegion(PendingInput& pi, Charges& ch) {
  AddressSpace& app = *pi.app;
  Region* region = app.RegionAt(pi.region_start);
  if (region != nullptr && region->object == pi.region_object) {
    return region;
  }
  // The application (advertently or not) removed the prepared region during
  // input. The object survived via the I/O reference; map it into a fresh
  // region so the location information returned is correct (Section 6.2.1).
  ++stats_.regions_remapped_at_dispose;
  const std::uint64_t rlen = pi.region_object->num_pages() * app.page_size();
  const Vaddr addr = app.FindFreeRange(rlen);
  region = app.CreateRegionWithObject(addr, rlen, pi.region_object, RegionState::kMovingIn);
  pi.region_start = addr;
  ch.Add(OpKind::kRegionCreate, 0);
  return region;
}

// --- Early demultiplexed / outboard dispose (Table 3) ---

void Endpoint::DisposeInputTable3(PendingInput& pi, std::uint64_t n, Charges& ch) {
  AddressSpace& app = *pi.app;
  PhysicalMemory& pm = app.vm().pm();
  InputResult& result = pi.result;
  bool ok = true;

  switch (pi.sem) {
    case Semantics::kCopy: {
      const DisposePlan plan = DisposeCopyOutIntoApp(app, pi.va, n, pi.sysbuf.iov);
      stats_.bytes_copied += plan.copied_bytes;
      ch.Add(OpKind::kCopyout, n);
      FreeSysBuffer(pm, pi.sysbuf);
      result.addr = pi.va;
      ok = plan.ok;
      break;
    }
    case Semantics::kEmulatedCopy: {
      if (pi.sysbuf.page_offset == pi.va % pm.page_size()) {
        const DisposePlan plan = DisposeAligned(pi, pi.va, n, pi.sysbuf, /*to_pool=*/false, ch);
        ok = plan.ok;
      } else {
        const DisposePlan plan = DisposeCopyOutIntoApp(app, pi.va, n, pi.sysbuf.iov);
        stats_.bytes_copied += plan.copied_bytes;
        ch.Add(OpKind::kCopyout, n);
        ok = plan.ok;
      }
      FreeSysBuffer(pm, pi.sysbuf);
      result.addr = pi.va;
      break;
    }
    case Semantics::kShare:
    case Semantics::kEmulatedShare: {
      // Data arrived in place.
      if (pi.wired) {
        UnwireFrames(pi);
        ch.Add(OpKind::kUnwire, n);
      }
      Unreference(app.vm(), pi.ref);
      ch.Add(OpKind::kUnreference, n);
      result.addr = pi.va;
      break;
    }
    case Semantics::kMove: {
      // Create region; zero-complete system pages and fill region; map.
      const std::uint32_t psz = pm.page_size();
      const std::uint64_t pages = CeilPages(n, psz);
      const std::uint64_t rlen = pages * psz;
      const Vaddr addr = app.FindFreeRange(rlen);
      Region* region = app.CreateRegion(addr, rlen, RegionState::kMovedIn);
      ch.Add(OpKind::kRegionCreate, 0);
      // Zero the tail of the last page (protection: frames may carry other
      // processes' residue).
      if (n < rlen) {
        const FrameId last = pi.sysbuf.frames[pages - 1];
        auto data = pm.Data(last);
        std::memset(data.data() + (n - (pages - 1) * psz), 0,
                    static_cast<std::size_t>(rlen - n));
      }
      ch.Add(OpKind::kZeroFill, rlen - n);
      for (std::uint64_t i = 0; i < pages; ++i) {
        region->object->InsertPage(i, pi.sysbuf.frames[i]);
        pi.sysbuf.frames[i] = kInvalidFrame;  // Donated to the region.
      }
      ch.Add(OpKind::kRegionFill, n);
      MapRegionPages(app, *region);
      ch.Add(OpKind::kRegionMap, n);
      FreeSysBuffer(pm, pi.sysbuf);  // Frames beyond `pages`, if any.
      result.addr = addr;
      break;
    }
    case Semantics::kEmulatedMove: {
      Region* region = CheckOrRemapRegion(pi, ch);
      Unreference(app.vm(), pi.ref);
      MapRegionPages(app, *region);  // Reinstate page accesses.
      region->state = RegionState::kMovedIn;
      ch.Add(OpKind::kRegionCheckUnrefReinstateMarkIn, n);
      result.addr = region->start;
      break;
    }
    case Semantics::kWeakMove: {
      Region* region = CheckOrRemapRegion(pi, ch);
      ch.Add(OpKind::kRegionCheck, 0);
      UnwireFrames(pi);
      ch.Add(OpKind::kUnwire, n);
      Unreference(app.vm(), pi.ref);
      ch.Add(OpKind::kUnreference, n);
      MapRegionPages(app, *region);
      region->state = RegionState::kMovedIn;
      ch.Add(OpKind::kRegionMarkIn, 0);
      result.addr = region->start;
      break;
    }
    case Semantics::kEmulatedWeakMove: {
      Region* region = CheckOrRemapRegion(pi, ch);
      Unreference(app.vm(), pi.ref);
      MapRegionPages(app, *region);
      region->state = RegionState::kMovedIn;
      ch.Add(OpKind::kRegionCheckUnrefMarkIn, n);
      result.addr = region->start;
      break;
    }
  }
  if (pi.wired) {
    // Ablation wiring of emulated semantics (input-disabled pageout off).
    UnwireFrames(pi);
    ch.Add(OpKind::kUnwire, n);
  }
  result.ok = ok;
  result.bytes = n;
  if (!ok) {
    result.status = IoStatus::kIoError;
    ++stats_.failed_inputs;
    ++stats_.recovered_transfers;
  }
}

void Endpoint::UnwireFrames(PendingInput& pi) {
  PhysicalMemory& pm = pi.app->vm().pm();
  for (const FrameId f : pi.wired_frames) {
    pm.Unwire(f);
  }
  pi.wired_frames.clear();
  pi.wired = false;
}

// --- Pooled dispose (Table 4) ---

void Endpoint::DisposeInputTable4(PendingInput& pi, PooledFrame& frame, std::uint64_t n,
                                  Charges& ch) {
  AddressSpace& app = *pi.app;
  PhysicalMemory& pm = app.vm().pm();
  BufferPool& pool = *node_->adapter().pool();
  const std::uint32_t psz = pm.page_size();
  InputResult& result = pi.result;
  bool ok = true;

  // Wrap the overlay pages as an offset-0 source buffer.
  SysBuffer overlay;
  overlay.frames = std::move(frame.overlay_pages);
  overlay.length = frame.bytes;
  overlay.page_offset = 0;
  {
    std::uint64_t remaining = frame.bytes;
    for (const FrameId f : overlay.frames) {
      const std::uint32_t seg =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(psz, remaining));
      overlay.iov.segments.push_back(IoSegment{f, 0, seg});
      remaining -= seg;
    }
  }
  auto release_overlay_to_pool = [&] {
    for (FrameId& f : overlay.frames) {
      if (f != kInvalidFrame) {
        pool.Free(f);
        f = kInvalidFrame;
      }
    }
  };

  switch (pi.sem) {
    case Semantics::kCopy: {
      const DisposePlan plan = DisposeCopyOutIntoApp(app, pi.va, n, overlay.iov);
      stats_.bytes_copied += plan.copied_bytes;
      ch.Add(OpKind::kCopyout, n);
      release_overlay_to_pool();
      ch.Add(OpKind::kOverlayDeallocate, n);
      result.addr = pi.va;
      ok = plan.ok;
      break;
    }
    case Semantics::kEmulatedCopy:
    case Semantics::kShare:
    case Semantics::kEmulatedShare: {
      const bool aligned = pi.va % psz == 0;
      if (aligned) {
        ok = DisposeAligned(pi, pi.va, n, overlay, /*to_pool=*/true, ch).ok;
      } else {
        const DisposePlan plan = DisposeCopyOutIntoApp(app, pi.va, n, overlay.iov);
        stats_.bytes_copied += plan.copied_bytes;
        ch.Add(OpKind::kCopyout, n);
        ok = plan.ok;
      }
      release_overlay_to_pool();
      ch.Add(OpKind::kOverlayDeallocate, n);
      if (pi.sem == Semantics::kShare || pi.sem == Semantics::kEmulatedShare) {
        if (pi.wired) {
          // The in-place frames referenced at prepare may have been swapped
          // out of the object; unwire the originally wired frames.
          UnwireFrames(pi);
          ch.Add(OpKind::kUnwire, n);
        }
        Unreference(app.vm(), pi.ref);
        ch.Add(OpKind::kUnreference, n);
      }
      result.addr = pi.va;
      break;
    }
    case Semantics::kMove: {
      // Create region; zero-complete overlay pages, fill region and refill
      // overlay buffer; map region.
      const std::uint64_t pages = CeilPages(n, psz);
      const std::uint64_t rlen = pages * psz;
      const Vaddr addr = app.FindFreeRange(rlen);
      Region* region = app.CreateRegion(addr, rlen, RegionState::kMovedIn);
      ch.Add(OpKind::kRegionCreate, 0);
      if (n < rlen) {
        const FrameId last = overlay.frames[pages - 1];
        auto data = pm.Data(last);
        std::memset(data.data() + (n - (pages - 1) * psz), 0,
                    static_cast<std::size_t>(rlen - n));
      }
      ch.Add(OpKind::kZeroFill, rlen - n);
      for (std::uint64_t i = 0; i < pages; ++i) {
        region->object->InsertPage(i, overlay.frames[i]);
        overlay.frames[i] = kInvalidFrame;  // Donated; pool must be refilled.
      }
      pool.Refill(pages);
      ch.Add(OpKind::kRegionFillOverlayRefill, n);
      MapRegionPages(app, *region);
      ch.Add(OpKind::kRegionMap, n);
      release_overlay_to_pool();  // Pages beyond `pages`, if any.
      ch.Add(OpKind::kOverlayDeallocate, n);
      result.addr = addr;
      break;
    }
    case Semantics::kEmulatedMove:
    case Semantics::kWeakMove:
    case Semantics::kEmulatedWeakMove: {
      Region* region = CheckOrRemapRegion(pi, ch);
      ch.Add(OpKind::kRegionCheck, 0);
      if (pi.wired) {
        UnwireFrames(pi);
        ch.Add(OpKind::kUnwire, n);
      }
      Unreference(app.vm(), pi.ref);
      ch.Add(OpKind::kUnreference, n);
      // Swap overlay pages into the region; displaced region pages refill
      // the pool.
      ok = DisposeAligned(pi, region->start, n, overlay, /*to_pool=*/true, ch).ok;
      release_overlay_to_pool();
      MapRegionPages(app, *region);
      region->state = RegionState::kMovedIn;
      ch.Add(OpKind::kRegionMarkIn, 0);
      ch.Add(OpKind::kOverlayDeallocate, n);
      result.addr = region->start;
      break;
    }
  }
  if (!pi.deferred_retire.empty()) {
    // Displaced frames that still carried I/O references or wiring at swap
    // time (the share-family input reference is dropped only after the
    // swap). Those are released now, so the frames can go back to physical
    // memory — deferred if a straggler (e.g. a delayed output completion)
    // still references them — and the pool is replenished in their stead.
    for (const FrameId f : pi.deferred_retire) {
      pm.Free(f);
    }
    pool.Refill(pi.deferred_retire.size());
    pi.deferred_retire.clear();
  }
  result.ok = ok;
  result.bytes = n;
  if (!ok) {
    result.status = IoStatus::kIoError;
    ++stats_.failed_inputs;
    ++stats_.recovered_transfers;
  }
}

DisposePlan Endpoint::DisposeAligned(PendingInput& pi, Vaddr va, std::uint64_t n,
                                     SysBuffer& src, bool to_pool, Charges& ch) {
  AddressSpace& app = *pi.app;
  PhysicalMemory& pm = app.vm().pm();
  std::function<void(FrameId)> retire;
  if (to_pool) {
    BufferPool* pool = node_->adapter().pool();
    retire = [&pi, &pm, pool](FrameId f) {
      // A displaced frame may still carry I/O references or wiring (a share
      // input's own reference is dropped only after the swap; a concurrent
      // delayed output may still source from it). Handing such a frame to
      // the device pool would let a new arrival DMA into memory another
      // party still reads — defer its retirement instead.
      if (pm.HasIoRefs(f) || pm.info(f).wire_count > 0) {
        pi.deferred_retire.push_back(f);
      } else {
        pool->Free(f);
      }
    };
  }
  const DisposePlan plan =
      DisposeAlignedIntoApp(app, va, n, src, options_.reverse_copyout_threshold, retire);
  if (to_pool && plan.swaps_without_displaced > 0) {
    // Swaps into untouched pages displaced no frame to give back to the
    // pool; replenish it with fresh frames to avoid depletion.
    node_->adapter().pool()->Refill(plan.swaps_without_displaced);
  }
  stats_.pages_swapped += plan.pages_swapped;
  stats_.reverse_copyouts += plan.reverse_copyouts;
  stats_.bytes_swapped += plan.swapped_bytes;
  stats_.bytes_copied += plan.copied_bytes;
  if (plan.swapped_bytes > 0) {
    ch.Add(OpKind::kSwap, plan.swapped_bytes);
  }
  if (plan.copied_bytes > 0) {
    ch.Add(OpKind::kCopyout, plan.copied_bytes);
  }
  return plan;
}

void Endpoint::UnwindInputResources(PendingInput& pi, Charges& ch) {
  AddressSpace& app = *pi.app;
  PhysicalMemory& pm = app.vm().pm();
  if (pi.has_sysbuf) {
    // Strong semantics: the application buffer was never touched; simply
    // discard the system buffer.
    FreeSysBuffer(pm, pi.sysbuf);
    pi.has_sysbuf = false;
  }
  if (pi.wired) {
    UnwireFrames(pi);
    ch.Add(OpKind::kUnwire, 0);
  }
  if (pi.ref.active) {
    Unreference(app.vm(), pi.ref);
    ch.Add(OpKind::kUnreference, 0);
  }
  if (pi.system_allocated && pi.sem != Semantics::kMove) {
    // Return the prepared region to its cache; the application never saw it.
    if (Region* region = app.RegionAt(pi.region_start);
        region != nullptr && region->object == pi.region_object) {
      region->state = pi.sem == Semantics::kEmulatedMove ? RegionState::kMovedOut
                                                         : RegionState::kWeaklyMovedOut;
      app.EnqueueCachedRegion(region->start);
    }
  }
}

void Endpoint::CleanupFailedInput(PendingInput& pi, Charges& ch) {
  ++stats_.crc_failures;
  UnwindInputResources(pi, ch);
  pi.result.ok = false;
  pi.result.status = IoStatus::kIoError;
  ++stats_.failed_inputs;
  ++stats_.recovered_transfers;
}

ReliableDelivery::WatchVerdict Endpoint::TryCancelStuckInput(
    const std::shared_ptr<PendingInput>& pi) {
  if (pi->result.completed_at != 0 || pi->done.is_set()) {
    return ReliableDelivery::WatchVerdict::kCompleted;  // Raced its completion.
  }
  switch (pi->mode) {
    case InputBuffering::kEarlyDemux:
      if (!node_->adapter().CancelPostedReceive(channel_, pi->cancel_id)) {
        // The posting was consumed: a frame is mid-delivery into it. The
        // completion handler owns the input now; extend the deadline.
        return ReliableDelivery::WatchVerdict::kBusy;
      }
      break;
    case InputBuffering::kPooled: {
      auto it = std::find(pending_pooled_.begin(), pending_pooled_.end(), pi);
      if (it == pending_pooled_.end()) {
        return ReliableDelivery::WatchVerdict::kBusy;
      }
      pending_pooled_.erase(it);
      break;
    }
    case InputBuffering::kOutboard: {
      auto it = std::find(pending_outboard_.begin(), pending_outboard_.end(), pi);
      if (it == pending_outboard_.end()) {
        return ReliableDelivery::WatchVerdict::kBusy;
      }
      pending_outboard_.erase(it);
      break;
    }
  }
  CancelStuckInput(*pi);
  return ReliableDelivery::WatchVerdict::kCancelled;
}

void Endpoint::CancelStuckInput(PendingInput& pi) {
  // Watchdog path: runs outside the CPU resource and charges nothing —
  // cancellation is control-plane work off the measured data path.
  Charges discarded;
  UnwindInputResources(pi, discarded);
  pi.result.ok = false;
  pi.result.status = IoStatus::kCancelled;
  pi.result.completed_at = node_->engine().now();
  ++stats_.failed_inputs;
  ++stats_.recovered_transfers;
  ++stats_.watchdog_cancels;
  if (TraceLog* trace = node_->trace(); trace != nullptr) {
    trace->Instant(XferTrack(), pi.xfer + " watchdog cancelled", "reliable",
                   node_->engine().now());
  }
  RecordInputComplete(pi);
  FinishOperation();
  pi.done.Set();
}

void Endpoint::CrashAbort() {
  // Inputs whose dispose already claimed them run to completion (their
  // frames are local); everything else waiting for data is unwound. Collect
  // first — failing an input erases it from live_inputs_.
  std::vector<std::shared_ptr<PendingInput>> victims;
  for (const auto& [id, pi] : live_inputs_) {
    if (!pi->dispose_started) {
      victims.push_back(pi);
    }
  }
  for (const auto& pi : victims) {
    // Control-plane unwind, like the watchdog path: no CPU charge.
    Charges discarded;
    UnwindInputResources(*pi, discarded);
    pi->result.ok = false;
    pi->result.status = IoStatus::kPeerCrashed;
    pi->result.completed_at = node_->engine().now();
    ++stats_.failed_inputs;
    ++stats_.recovered_transfers;
    if (TraceLog* trace = node_->trace(); trace != nullptr) {
      trace->Instant(XferTrack(), pi->xfer + " crash aborted", "crash",
                     node_->engine().now());
    }
    RecordInputComplete(*pi);
    FinishOperation();
    pi->done.Set();
  }
  // The adapter's crash wipe already dropped its postings; the endpoint-side
  // waiting lists must match (every entry was just failed above).
  pending_pooled_.clear();
  pending_outboard_.clear();
}

Endpoint::ChecksumVerdict Endpoint::VerifyChecksum(PendingInput& pi, const IoVec& data,
                                                   std::uint64_t n, std::uint32_t header,
                                                   Charges& ch) {
  ChecksumVerdict verdict;
  if (options_.checksum_mode == ChecksumMode::kNone || n == 0) {
    return verdict;
  }
  const std::uint16_t computed = ChecksumOfIoVec(pi.app->vm().pm(), data, n);
  verdict.verified_ok = computed == static_cast<std::uint16_t>(header);
  // Integration with the final copy is only possible on copy-out dispose
  // paths (copy semantics, or emulated copy without alignment); swap and
  // in-place paths always use a separate read pass (paper Section 9: with a
  // system buffer involved, passing by VM manipulation and then reading the
  // data costs less than a one-step checksum-and-copy).
  const bool copies_out =
      pi.sem == Semantics::kCopy ||
      (pi.sem == Semantics::kEmulatedCopy && pi.has_sysbuf &&
       pi.sysbuf.page_offset != pi.va % pi.app->vm().page_size());
  verdict.integrated = options_.checksum_mode == ChecksumMode::kIntegrated && copies_out;
  ch.Add(verdict.integrated ? OpKind::kChecksumIntegrated : OpKind::kChecksumRead, n);
  return verdict;
}

// --- Dispose drivers ---

Task<void> Endpoint::RunDisposeEarlyDemux(std::shared_ptr<PendingInput> pi,
                                          RxCompletion completion) {
  pi->flow = completion.flow;
  co_await node_->cpu().Acquire();
  TraceScope dispose_span(node_->trace(), XferTrack(), pi->xfer + ".dispose", "xfer", pi->flow);
  co_await Charge(OpKind::kReceiverKernelFixed, 0);
  Charges charges;
  pi->result.crc_ok = completion.crc_ok;
  const std::uint64_t n = std::min<std::uint64_t>(completion.bytes, pi->len);
  {
    ScopedTraceContext trace_ctx(node_->trace(), pi->xfer);
    if (!completion.crc_ok) {
      CleanupFailedInput(*pi, charges);
    } else {
      const ChecksumVerdict verdict =
          VerifyChecksum(*pi, pi->target, n, completion.header, charges);
      pi->result.checksum_ok = verdict.verified_ok;
      if (!verdict.verified_ok && !verdict.integrated) {
        // Separate-pass verification failed before any data reached the
        // application buffer: fail the input, strong semantics intact.
        CleanupFailedInput(*pi, charges);
      } else {
        DisposeInputTable3(*pi, n, charges);
        if (!verdict.verified_ok) {
          // Integrated verification detects the error only after the copy:
          // the application buffer was overwritten (weak behavior, the
          // Section 9 semantic implication).
          pi->result.ok = false;
        }
      }
    }
  }
  for (const auto& [op, bytes] : charges.items) {
    co_await Charge(op, bytes);
  }
  dispose_span.End();
  pi->result.completed_at = node_->engine().now();
  RecordInputComplete(*pi);
  node_->cpu().Release();
  FinishOperation();
  pi->done.Set();
}

Task<void> Endpoint::RunDisposePooled(std::shared_ptr<PendingInput> pi, PooledFrame frame) {
  pi->flow = frame.flow;
  co_await node_->cpu().Acquire();
  TraceScope dispose_span(node_->trace(), XferTrack(), pi->xfer + ".dispose", "xfer", pi->flow);
  co_await Charge(OpKind::kReceiverKernelFixed, 0);
  // Ready-time operations (Table 4): overlay allocation happened at arrival
  // in the device; the kernel-side costs land here, on the critical path.
  co_await Charge(OpKind::kOverlayAllocate, 0);
  co_await Charge(OpKind::kOverlay, 0);
  Charges charges;
  pi->result.crc_ok = frame.crc_ok;
  const std::uint64_t n = std::min<std::uint64_t>(frame.bytes, pi->len);
  bool failed = !frame.crc_ok;
  bool integrated_mismatch = false;
  {
    ScopedTraceContext trace_ctx(node_->trace(), pi->xfer);
    if (!failed) {
      IoVec overlay_iov;
      {
        std::uint64_t remaining = frame.bytes;
        const std::uint32_t psz = node_->vm().page_size();
        for (const FrameId f : frame.overlay_pages) {
          const std::uint32_t seg =
              static_cast<std::uint32_t>(std::min<std::uint64_t>(psz, remaining));
          overlay_iov.segments.push_back(IoSegment{f, 0, seg});
          remaining -= seg;
        }
      }
      const ChecksumVerdict verdict =
          VerifyChecksum(*pi, overlay_iov, n, frame.header, charges);
      pi->result.checksum_ok = verdict.verified_ok;
      if (!verdict.verified_ok && !verdict.integrated) {
        failed = true;
      } else if (!verdict.verified_ok) {
        integrated_mismatch = true;
      }
    }
    if (failed) {
      BufferPool& pool = *node_->adapter().pool();
      for (const FrameId f : frame.overlay_pages) {
        pool.Free(f);
      }
      CleanupFailedInput(*pi, charges);
    } else {
      DisposeInputTable4(*pi, frame, n, charges);
      if (integrated_mismatch) {
        pi->result.ok = false;
      }
    }
  }
  for (const auto& [op, bytes] : charges.items) {
    co_await Charge(op, bytes);
  }
  dispose_span.End();
  pi->result.completed_at = node_->engine().now();
  RecordInputComplete(*pi);
  node_->cpu().Release();
  FinishOperation();
  pi->done.Set();
}

Task<void> Endpoint::RunDisposeOutboard(std::shared_ptr<PendingInput> pi, OutboardFrame frame) {
  Adapter& adapter = node_->adapter();
  const std::uint64_t n = std::min<std::uint64_t>(frame.bytes, pi->len);
  pi->flow = frame.flow;
  co_await node_->cpu().Acquire();
  TraceScope dispose_span(node_->trace(), XferTrack(), pi->xfer + ".dispose", "xfer", pi->flow);
  co_await Charge(OpKind::kReceiverKernelFixed, 0);
  pi->result.crc_ok = frame.crc_ok;

  // Transport checksum: with outboard staging a separate pass can verify in
  // adapter memory before any host DMA (strong); integrated-with-DMA
  // verification detects the error only after the data reached its final
  // host location.
  bool checksum_failed_early = false;
  bool integrated_mismatch = false;
  if (frame.crc_ok && options_.checksum_mode != ChecksumMode::kNone && n > 0) {
    const std::uint16_t computed =
        ChecksumOf(adapter.OutboardData(frame.handle).subspan(0, static_cast<std::size_t>(n)));
    const bool ok = computed == static_cast<std::uint16_t>(frame.header);
    pi->result.checksum_ok = ok;
    co_await Charge(options_.checksum_mode == ChecksumMode::kIntegrated
                        ? OpKind::kChecksumIntegrated
                        : OpKind::kChecksumRead,
                    n);
    if (!ok) {
      if (options_.checksum_mode == ChecksumMode::kSeparatePass) {
        checksum_failed_early = true;
      } else {
        integrated_mismatch = true;
      }
    }
  }

  if (!frame.crc_ok || checksum_failed_early) {
    Charges charges;
    {
      ScopedTraceContext trace_ctx(node_->trace(), pi->xfer);
      CleanupFailedInput(*pi, charges);
    }
    for (const auto& [op, bytes] : charges.items) {
      co_await Charge(op, bytes);
    }
    adapter.FreeOutboard(frame.handle);
    dispose_span.End();
    pi->result.completed_at = node_->engine().now();
    RecordInputComplete(*pi);
    node_->cpu().Release();
    FinishOperation();
    pi->done.Set();
    co_return;
  }

  if (pi->sem == Semantics::kEmulatedCopy) {
    // Section 6.2.3: reference the application pages, DMA the outboard data
    // directly into the application buffer, unreference, free the outboard
    // buffer. No aligned buffer, no swap: close to emulated share.
    AccessResult res;
    {
      // Referencing may fault the application buffer in (page-in/zero-fill).
      ScopedTraceContext trace_ctx(node_->trace(), pi->xfer);
      res = ReferenceRange(*pi->app, pi->va, n, IoDirection::kInput, &pi->ref);
    }
    if (res != AccessResult::kOk) {
      // The application buffer could not be pinned (page-in or allocation
      // failed): fail the input; the staged data never left adapter memory.
      adapter.FreeOutboard(frame.handle);
      pi->result.ok = false;
      pi->result.status = IoStatus::kIoError;
      ++stats_.failed_inputs;
      ++stats_.recovered_transfers;
      dispose_span.End();
      pi->result.completed_at = node_->engine().now();
      RecordInputComplete(*pi);
      node_->cpu().Release();
      FinishOperation();
      pi->done.Set();
      co_return;
    }
    co_await Charge(OpKind::kReference, n);
    node_->cpu().Release();
    co_await Delay(node_->engine(), node_->Cost(OpKind::kBusTransfer, n));
    WriteToIoVec(pi->app->vm().pm(), pi->ref.iovec, 0,
                 adapter.OutboardData(frame.handle).subspan(0, static_cast<std::size_t>(n)));
    co_await node_->cpu().Acquire();
    Unreference(pi->app->vm(), pi->ref);
    co_await Charge(OpKind::kUnreference, n);
    adapter.FreeOutboard(frame.handle);
    pi->result.ok = true;
    pi->result.bytes = n;
    pi->result.addr = pi->va;
  } else {
    // DMA the staged frame into the prepared host target, then run the
    // Table 3 dispose operations.
    node_->cpu().Release();
    co_await Delay(node_->engine(), node_->Cost(OpKind::kBusTransfer, n));
    WriteToIoVec(pi->app->vm().pm(), pi->target, 0,
                 adapter.OutboardData(frame.handle).subspan(0, static_cast<std::size_t>(n)));
    co_await node_->cpu().Acquire();
    Charges charges;
    {
      ScopedTraceContext trace_ctx(node_->trace(), pi->xfer);
      DisposeInputTable3(*pi, n, charges);
    }
    for (const auto& [op, bytes] : charges.items) {
      co_await Charge(op, bytes);
    }
    adapter.FreeOutboard(frame.handle);
  }
  if (integrated_mismatch) {
    // Integrated verification: the host buffer was already written when the
    // mismatch surfaced (weak behavior, Section 9).
    pi->result.ok = false;
  }
  dispose_span.End();
  pi->result.completed_at = node_->engine().now();
  RecordInputComplete(*pi);
  node_->cpu().Release();
  FinishOperation();
  pi->done.Set();
}

void Endpoint::OnPooledFrame(PooledFrame frame) {
  if (pending_pooled_.empty()) {
    // No pending input: drop (return overlay pages to the pool).
    BufferPool& pool = *node_->adapter().pool();
    for (const FrameId f : frame.overlay_pages) {
      pool.Free(f);
    }
    return;
  }
  std::shared_ptr<PendingInput> pi = pending_pooled_.front();
  pending_pooled_.pop_front();
  pi->dispose_started = true;
  std::move(RunDisposePooled(pi, std::move(frame))).Detach();
}

void Endpoint::OnOutboardFrame(const OutboardFrame& frame) {
  if (pending_outboard_.empty()) {
    node_->adapter().FreeOutboard(frame.handle);
    return;
  }
  std::shared_ptr<PendingInput> pi = pending_outboard_.front();
  pending_outboard_.pop_front();
  pi->dispose_started = true;
  std::move(RunDisposeOutboard(pi, frame)).Detach();
}

// ---------------------------------------------------------------------------
// Sender-managed buffer placement (Section 6.2.1)
// ---------------------------------------------------------------------------

std::uint32_t Endpoint::RegisterNamedBuffer(AddressSpace& app, Vaddr va, std::uint64_t len) {
  GENIE_CHECK(node_->adapter().rx_buffering() == InputBuffering::kEarlyDemux)
      << "sender-managed placement requires early demultiplexing";
  auto nb = std::make_shared<NamedBuffer>(node_->engine());
  nb->app = &app;
  nb->va = va;
  nb->len = len;
  // Pin the buffer with a long-lived input reference: the device may write
  // it at any time, and input-disabled pageout keeps it resident — the
  // moral equivalent of a non-pageable buffer area (Section 9).
  const AccessResult res = ReferenceRange(app, va, len, IoDirection::kInput, &nb->ref);
  GENIE_CHECK(res == AccessResult::kOk) << "bad named buffer";
  const std::uint32_t tag = next_tag_++;
  Adapter::PostedReceive posted;
  posted.target = nb->ref.iovec;
  posted.on_complete = [this, nb](const RxCompletion& c) {
    std::move(RunNamedArrival(nb, c)).Detach();
  };
  node_->adapter().RegisterNamedBuffer(channel_, tag, std::move(posted));
  named_buffers_[tag] = std::move(nb);
  return tag;
}

void Endpoint::UnregisterNamedBuffer(std::uint32_t tag) {
  auto it = named_buffers_.find(tag);
  GENIE_CHECK(it != named_buffers_.end()) << "unknown named buffer tag " << tag;
  node_->adapter().UnregisterNamedBuffer(channel_, tag);
  Unreference(it->second->app->vm(), it->second->ref);
  it->second->ready.Set();  // Release any stranded waiter (sees no arrival).
  named_buffers_.erase(it);
}

Task<InputResult> Endpoint::ReceiveNamed(std::uint32_t tag) {
  auto it = named_buffers_.find(tag);
  GENIE_CHECK(it != named_buffers_.end()) << "unknown named buffer tag " << tag;
  std::shared_ptr<NamedBuffer> nb = it->second;
  while (nb->arrivals.empty()) {
    nb->ready.Reset();
    co_await nb->ready.Wait();
    if (!nb->ref.active) {
      co_return InputResult{};  // Unregistered while waiting.
    }
  }
  const InputResult result = nb->arrivals.front();
  nb->arrivals.pop_front();
  co_return result;
}

Task<void> Endpoint::RunNamedArrival(std::shared_ptr<NamedBuffer> nb,
                                     RxCompletion completion) {
  // The cheapest possible receive path: interrupt processing and a
  // notification. No per-datagram buffer management at all.
  co_await node_->cpu().Acquire();
  co_await Charge(OpKind::kReceiverKernelFixed, 0);
  InputResult result;
  result.crc_ok = completion.crc_ok;
  result.bytes = std::min<std::uint64_t>(completion.bytes, nb->len);
  result.addr = nb->va;
  result.ok = completion.crc_ok;
  if (options_.checksum_mode != ChecksumMode::kNone && completion.crc_ok &&
      result.bytes > 0) {
    const std::uint16_t computed =
        ChecksumOfIoVec(nb->app->vm().pm(), nb->ref.iovec, result.bytes);
    result.checksum_ok = computed == static_cast<std::uint16_t>(completion.header);
    co_await Charge(OpKind::kChecksumRead, result.bytes);
    // The data is already in place (weak integrity by construction); a
    // mismatch can only be reported, not undone.
    result.ok = result.ok && result.checksum_ok;
  }
  result.completed_at = node_->engine().now();
  node_->cpu().Release();
  nb->arrivals.push_back(result);
  nb->ready.Set();
}

// ---------------------------------------------------------------------------
// System-allocated buffer API (Section 2.1)
// ---------------------------------------------------------------------------

Vaddr Endpoint::AllocateIoBuffer(AddressSpace& app, std::uint64_t len) {
  const std::uint32_t psz = app.page_size();
  const std::uint64_t rlen = CeilPages(len, psz) * psz;
  const Vaddr addr = app.FindFreeRange(rlen);
  app.CreateRegion(addr, rlen, RegionState::kMovedIn);
  return addr;
}

void Endpoint::FreeIoBuffer(AddressSpace& app, Vaddr start) {
  Region* region = app.RegionAt(start);
  GENIE_CHECK(region != nullptr) << "freeing unknown I/O buffer";
  GENIE_CHECK(region->state == RegionState::kMovedIn ||
              region->state == RegionState::kMovedOut ||
              region->state == RegionState::kWeaklyMovedOut)
      << "freeing I/O buffer with pending I/O";
  app.RemoveRegion(start);
}

}  // namespace genie
