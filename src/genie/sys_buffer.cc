#include "src/genie/sys_buffer.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "src/util/check.h"

namespace genie {

SysBuffer AllocateSysBuffer(PhysicalMemory& pm, std::uint32_t page_offset, std::uint64_t len) {
  const std::uint32_t psz = pm.page_size();
  GENIE_CHECK_LT(page_offset, psz);
  GENIE_CHECK_GT(len, 0u);
  SysBuffer buf;
  buf.length = len;
  buf.page_offset = page_offset;
  const std::uint64_t pages = (page_offset + len + psz - 1) / psz;
  // Preferred: one physically contiguous run, so the DMA list is a single
  // segment and disposes/copies touch one span.
  if (page_offset + len <= std::numeric_limits<std::uint32_t>::max()) {
    const FrameId first = pm.TryAllocateRun(static_cast<std::size_t>(pages));
    if (first != kInvalidFrame) {
      for (std::uint64_t i = 0; i < pages; ++i) {
        buf.frames.push_back(first + static_cast<FrameId>(i));
      }
      buf.iov.segments.push_back(
          IoSegment{first, page_offset, static_cast<std::uint32_t>(len)});
      return buf;
    }
  }
  // Fragmented fallback: frame-at-a-time, still merging segments that land
  // physically adjacent.
  std::uint64_t remaining = len;
  std::uint32_t off = page_offset;
  while (remaining > 0) {
    const FrameId f = pm.Allocate();
    buf.frames.push_back(f);
    const std::uint32_t chunk =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(psz - off, remaining));
    if (!buf.iov.segments.empty()) {
      IoSegment& last = buf.iov.segments.back();
      if (static_cast<std::uint64_t>(last.frame) * psz + last.offset + last.length ==
          static_cast<std::uint64_t>(f) * psz + off) {
        last.length += chunk;
        remaining -= chunk;
        off = 0;
        continue;
      }
    }
    buf.iov.segments.push_back(IoSegment{f, off, chunk});
    remaining -= chunk;
    off = 0;
  }
  return buf;
}

bool TryAllocateSysBuffer(PhysicalMemory& pm, std::uint32_t page_offset, std::uint64_t len,
                          SysBuffer* out) {
  const std::uint32_t psz = pm.page_size();
  GENIE_CHECK_LT(page_offset, psz);
  GENIE_CHECK_GT(len, 0u);
  SysBuffer buf;
  buf.length = len;
  buf.page_offset = page_offset;
  const std::uint64_t pages = (page_offset + len + psz - 1) / psz;
  if (page_offset + len <= std::numeric_limits<std::uint32_t>::max()) {
    const FrameId first = pm.TryAllocateRun(static_cast<std::size_t>(pages));
    if (first != kInvalidFrame) {
      for (std::uint64_t i = 0; i < pages; ++i) {
        buf.frames.push_back(first + static_cast<FrameId>(i));
      }
      buf.iov.segments.push_back(
          IoSegment{first, page_offset, static_cast<std::uint32_t>(len)});
      *out = std::move(buf);
      return true;
    }
  }
  // Fragmented fallback, frame-at-a-time; each allocation may fail (for real
  // or by injection), in which case the partial buffer is released.
  std::uint64_t remaining = len;
  std::uint32_t off = page_offset;
  while (remaining > 0) {
    const FrameId f = pm.TryAllocate();
    if (f == kInvalidFrame) {
      FreeSysBuffer(pm, buf);
      return false;
    }
    buf.frames.push_back(f);
    const std::uint32_t chunk =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(psz - off, remaining));
    if (!buf.iov.segments.empty()) {
      IoSegment& last = buf.iov.segments.back();
      if (static_cast<std::uint64_t>(last.frame) * psz + last.offset + last.length ==
          static_cast<std::uint64_t>(f) * psz + off) {
        last.length += chunk;
        remaining -= chunk;
        off = 0;
        continue;
      }
    }
    buf.iov.segments.push_back(IoSegment{f, off, chunk});
    remaining -= chunk;
    off = 0;
  }
  *out = std::move(buf);
  return true;
}

bool TryAllocateSysBufferDegraded(PhysicalMemory& pm, std::uint32_t page_offset,
                                  std::uint64_t len, SysBuffer* out, bool* degraded,
                                  const std::function<bool(std::uint64_t)>& ensure_frames) {
  const std::uint32_t psz = pm.page_size();
  *degraded = false;
  const std::uint64_t aligned_pages = (page_offset + len + psz - 1) / psz;
  if ((!ensure_frames || ensure_frames(aligned_pages)) &&
      TryAllocateSysBuffer(pm, page_offset, len, out)) {
    return true;
  }
  if (page_offset == 0) {
    return false;  // The aligned attempt already was the offset-0 buffer.
  }
  const std::uint64_t plain_pages = (len + psz - 1) / psz;
  if ((!ensure_frames || ensure_frames(plain_pages)) &&
      TryAllocateSysBuffer(pm, 0, len, out)) {
    *degraded = true;
    return true;
  }
  return false;
}

bool TryAllocateSysBufferFrom(AllocationPoint& ap, std::uint32_t page_offset,
                              std::uint64_t len, SysBuffer* out) {
  const std::uint32_t psz = ap.pm().page_size();
  GENIE_CHECK_LT(page_offset, psz);
  GENIE_CHECK_GT(len, 0u);
  GENIE_CHECK_LE(page_offset + len, std::numeric_limits<std::uint32_t>::max());
  const std::uint64_t pages = (page_offset + len + psz - 1) / psz;
  const FrameId first = ap.TryAllocateRun(static_cast<std::size_t>(pages));
  if (first == kInvalidFrame) {
    return false;
  }
  SysBuffer buf;
  buf.length = len;
  buf.page_offset = page_offset;
  buf.frames.reserve(static_cast<std::size_t>(pages));
  for (std::uint64_t i = 0; i < pages; ++i) {
    buf.frames.push_back(first + static_cast<FrameId>(i));
  }
  buf.iov.segments.push_back(IoSegment{first, page_offset, static_cast<std::uint32_t>(len)});
  *out = std::move(buf);
  return true;
}

void FreeSysBuffer(AllocationPoint& ap, SysBuffer& buf) {
  if (buf.frames.empty()) {
    return;
  }
  // Allocation-point sysbufs are whole contiguous runs; swap-consumed pages
  // (kInvalidFrame holes) cannot appear on the parallel path.
  for (std::size_t i = 0; i < buf.frames.size(); ++i) {
    GENIE_CHECK(buf.frames[i] != kInvalidFrame);
    GENIE_CHECK_EQ(buf.frames[i], buf.frames[0] + static_cast<FrameId>(i));
  }
  ap.FreeRun(buf.frames[0], buf.frames.size());
  buf.frames.clear();
  buf.iov.segments.clear();
}

void FreeSysBuffer(PhysicalMemory& pm, SysBuffer& buf) {
  for (FrameId& f : buf.frames) {
    if (f != kInvalidFrame) {
      pm.Free(f);
      f = kInvalidFrame;
    }
  }
}

DisposePlan DisposeAlignedIntoApp(AddressSpace& app, Vaddr va, std::uint64_t len,
                                  SysBuffer& src, std::uint64_t reverse_copyout_threshold,
                                  std::function<void(FrameId)> retire_old) {
  PhysicalMemory& pm = app.vm().pm();
  const std::uint32_t psz = pm.page_size();
  GENIE_CHECK_EQ(va % psz, src.page_offset) << "system buffer not aligned to application buffer";
  GENIE_CHECK_LE(len, src.length);
  DisposePlan plan;
  Region* region = app.FindRegion(va);
  if (region == nullptr || va + len > region->end()) {
    // The application buffer vanished while the transfer was in flight (the
    // region was removed under the pending I/O). Nothing has been disposed;
    // the caller still owns every source frame and fails the input.
    plan.ok = false;
    return plan;
  }
  MemoryObject& obj = *region->object;
  if (!retire_old) {
    retire_old = [&pm](FrameId f) { pm.Free(f); };
  }

  std::uint64_t pos = 0;
  std::size_t i = 0;
  while (pos < len) {
    const Vaddr addr = va + pos;
    const Vaddr base = addr & ~static_cast<Vaddr>(psz - 1);
    const std::uint32_t off = static_cast<std::uint32_t>(addr - base);
    const std::uint64_t filled = std::min<std::uint64_t>(psz - off, len - pos);
    const std::uint64_t index = (base - region->start) / psz;
    GENIE_CHECK_LT(i, src.frames.size());
    const FrameId sframe = src.frames[i];
    GENIE_CHECK(sframe != kInvalidFrame);

    auto swap_in = [&] {
      const FrameId old =
          obj.PageAt(index) != kInvalidFrame ? obj.ReplacePage(index, sframe) : kInvalidFrame;
      if (old == kInvalidFrame) {
        obj.InsertPage(index, sframe);
        ++plan.swaps_without_displaced;
      }
      if (Pte* pte = app.FindPte(base); pte != nullptr) {
        pte->frame = sframe;  // Keep the existing protection.
      }
      if (old != kInvalidFrame) {
        retire_old(old);
      }
      src.frames[i] = kInvalidFrame;  // Consumed; no longer ours to free.
      plan.swapped_bytes += filled;
      ++plan.pages_swapped;
    };

    if (off == 0 && filled == psz) {
      swap_in();
    } else if (filled <= reverse_copyout_threshold) {
      // Short partial page: plain copyout into the application page.
      const FrameId aframe = app.ResolvePageForIo(addr, /*for_write=*/true);
      if (aframe == kInvalidFrame) {
        // The application page could not be materialized (injected allocation
        // or backing-read failure). Stop; remaining source frames stay with
        // the caller.
        plan.ok = false;
        return plan;
      }
      std::memcpy(pm.Data(aframe).data() + off, pm.Data(sframe).data() + off,
                  static_cast<std::size_t>(filled));
      plan.copied_bytes += filled;
    } else {
      // Reverse copyout (Figure 2, items 3-4): complete the system page with
      // the application page's bytes outside the buffer, then swap.
      const FrameId aframe = app.ResolvePageForIo(addr, /*for_write=*/false);
      if (aframe == kInvalidFrame) {
        plan.ok = false;
        return plan;
      }
      auto sdata = pm.Data(sframe);
      auto adata = pm.Data(aframe);
      std::memcpy(sdata.data(), adata.data(), off);
      const std::size_t tail_start = static_cast<std::size_t>(off + filled);
      std::memcpy(sdata.data() + tail_start, adata.data() + tail_start, psz - tail_start);
      plan.copied_bytes += psz - filled;
      ++plan.reverse_copyouts;
      swap_in();
    }
    pos += filled;
    ++i;
  }
  return plan;
}

DisposePlan DisposeCopyOutIntoApp(AddressSpace& app, Vaddr va, std::uint64_t len,
                                  const IoVec& src_iov) {
  GENIE_CHECK_LE(len, src_iov.total_bytes());
  DisposePlan plan;
  if (len == 0) {
    return plan;
  }
  // Store each source segment straight through the application's address
  // space (faulting pages in as needed) — no staging copy.
  PhysicalMemory& pm = app.vm().pm();
  std::uint64_t done = 0;
  for (const IoSegment& seg : src_iov.segments) {
    if (done == len) {
      break;
    }
    const std::uint64_t chunk = std::min<std::uint64_t>(seg.length, len - done);
    const AccessResult res = app.Write(va + done, pm.DataRun(seg.frame, seg.offset, chunk));
    if (res != AccessResult::kOk) {
      // The application buffer was yanked (or a page-in failed) while the
      // data was in flight. The bytes already copied out stay; the caller
      // fails the input instead of the kernel aborting.
      plan.ok = false;
      plan.copied_bytes = done;
      return plan;
    }
    done += chunk;
  }
  GENIE_CHECK_EQ(done, len);
  plan.copied_bytes = len;
  return plan;
}

}  // namespace genie
