#include "src/genie/semantics.h"

namespace genie {

std::string_view SemanticsName(Semantics s) {
  switch (s) {
    case Semantics::kCopy:
      return "copy";
    case Semantics::kEmulatedCopy:
      return "emulated copy";
    case Semantics::kShare:
      return "share";
    case Semantics::kEmulatedShare:
      return "emulated share";
    case Semantics::kMove:
      return "move";
    case Semantics::kEmulatedMove:
      return "emulated move";
    case Semantics::kWeakMove:
      return "weak move";
    case Semantics::kEmulatedWeakMove:
      return "emulated weak move";
  }
  return "?";
}

}  // namespace genie
