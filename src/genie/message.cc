#include "src/genie/message.h"

#include <algorithm>
#include <deque>

#include "src/util/check.h"

namespace genie {

MessageChannel::MessageChannel(Endpoint& endpoint, Options options)
    : endpoint_(&endpoint), options_(options) {
  const std::uint32_t psz = endpoint.node().page_size();
  GENIE_CHECK_GT(options_.fragment_bytes, 0u);
  GENIE_CHECK_EQ(options_.fragment_bytes % psz, 0u)
      << "fragment size must be a page multiple (keeps fragments swappable)";
  GENIE_CHECK_LE(options_.fragment_bytes, kMaxAal5Payload);
  GENIE_CHECK_GT(options_.window, 0u);
}

Task<void> MessageChannel::SendMessage(AddressSpace& app, Vaddr va, std::uint64_t len,
                                       Semantics sem) {
  GENIE_CHECK(IsApplicationAllocated(sem))
      << "fragmented messages reassemble in place; use application-allocated semantics";
  GENIE_CHECK_GT(len, 0u);
  std::uint64_t sent = 0;
  while (sent < len) {
    const std::uint64_t n = std::min<std::uint64_t>(options_.fragment_bytes, len - sent);
    // Each fragment is an independent Genie output; with flow control on,
    // the transmit side blocks on credits, so a slow receiver back-pressures
    // the sender instead of dropping frames.
    co_await endpoint_->Output(app, va + sent, n, sem);
    sent += n;
  }
}

namespace {

// An eagerly-started fragment receive: the driver task runs to the
// endpoint's prepost immediately, then parks until dispose completes.
struct PendingFragment {
  explicit PendingFragment(Engine& engine) : done(engine) {}
  InputResult result;
  bool finished = false;
  SimEvent done;
};

Task<void> DriveFragment(Endpoint& ep, AddressSpace& app, Vaddr va, std::uint64_t n,
                         Semantics sem, std::shared_ptr<PendingFragment> pf) {
  pf->result = co_await ep.Input(app, va, n, sem);
  pf->finished = true;
  pf->done.Set();
}

}  // namespace

Task<MessageResult> MessageChannel::ReceiveMessage(AddressSpace& app, Vaddr va,
                                                   std::uint64_t len, Semantics sem) {
  GENIE_CHECK(IsApplicationAllocated(sem));
  GENIE_CHECK_GT(len, 0u);
  MessageResult result;

  // Keep up to `window` fragment receives preposted; refill the window as
  // fragments complete. Fragments arrive in order (one FIFO virtual
  // circuit), so the k-th completion is the k-th fragment.
  const std::uint64_t frag = options_.fragment_bytes;
  const std::uint64_t total_frags = (len + frag - 1) / frag;
  Engine& engine = endpoint_->node().engine();
  std::deque<std::shared_ptr<PendingFragment>> in_flight;
  std::uint64_t posted = 0;
  auto post_next = [&] {
    const std::uint64_t off = posted * frag;
    const std::uint64_t n = std::min<std::uint64_t>(frag, len - off);
    auto pf = std::make_shared<PendingFragment>(engine);
    std::move(DriveFragment(*endpoint_, app, va + off, n, sem, pf)).Detach();
    in_flight.push_back(std::move(pf));
    ++posted;
  };
  while (posted < total_frags && posted < options_.window) {
    post_next();
  }

  while (!in_flight.empty()) {
    std::shared_ptr<PendingFragment> head = std::move(in_flight.front());
    in_flight.pop_front();
    if (!head->finished) {
      co_await head->done.Wait();
    }
    const InputResult r = head->result;
    if (!r.ok) {
      result.ok = false;
      co_return result;  // A lost/corrupt fragment fails the message.
    }
    result.bytes += r.bytes;
    result.completed_at = r.completed_at;
    ++result.fragments;
    if (posted < total_frags) {
      post_next();
    }
  }
  result.ok = result.bytes == len;
  co_return result;
}

}  // namespace genie
