// Fused host data-path primitives: single-pass copyin with integrated
// Internet checksum (paper Section 9 / reference [7]: checksum computed in
// the same pass as the copy, as in BSD in_cksum-folded copyin). Lives in
// the genie layer because it combines the VM (MMU-checked scatter access)
// with the net layer (checksum), which must not depend on each other.
#ifndef GENIE_SRC_GENIE_HOST_PATH_H_
#define GENIE_SRC_GENIE_HOST_PATH_H_

#include <cstdint>

#include "src/net/checksum.h"
#include "src/vm/address_space.h"
#include "src/vm/io_vec.h"

namespace genie {

// Copies `len` bytes from the application buffer [va, va+len) into the
// scatter/gather list `dst` (from its first byte), faulting application
// pages in as needed. When `sum` is non-null the bytes are folded into it
// in the same pass, so an integrated copyin+checksum reads the data once.
// Returns kUnrecoverableFault (with the copy partially done) exactly where
// AddressSpace::Read would.
AccessResult CopyinToIoVec(AddressSpace& app, Vaddr va, std::uint64_t len, const IoVec& dst,
                           InternetChecksum* sum);

}  // namespace genie

#endif  // GENIE_SRC_GENIE_HOST_PATH_H_
