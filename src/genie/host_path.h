// Fused host data-path primitives: single-pass copyin with integrated
// Internet checksum (paper Section 9 / reference [7]: checksum computed in
// the same pass as the copy, as in BSD in_cksum-folded copyin). Lives in
// the genie layer because it combines the VM (MMU-checked scatter access)
// with the net layer (checksum), which must not depend on each other.
#ifndef GENIE_SRC_GENIE_HOST_PATH_H_
#define GENIE_SRC_GENIE_HOST_PATH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/mem/alloc_point.h"
#include "src/net/checksum.h"
#include "src/vm/address_space.h"
#include "src/vm/io_vec.h"

namespace genie {

// Copies `len` bytes from the application buffer [va, va+len) into the
// scatter/gather list `dst` (from its first byte), faulting application
// pages in as needed. When `sum` is non-null the bytes are folded into it
// in the same pass, so an integrated copyin+checksum reads the data once.
// Returns kUnrecoverableFault (with the copy partially done) exactly where
// AddressSpace::Read would.
AccessResult CopyinToIoVec(AddressSpace& app, Vaddr va, std::uint64_t len, const IoVec& dst,
                           InternetChecksum* sum);

// ---------------------------------------------------------------------------
// Parallel real-host data plane (measurement harness, not simulation).
//
// RunParallelFused runs K OS threads against one PhysicalMemory, each thread
// driving the full per-transfer allocator + data-path stack: draw a system
// buffer from a private AllocationPoint (bump fast path, locked refill only
// on arena drain), fused copy+checksum of a thread-seeded pattern into the
// buffer, fold the checksum into a per-thread digest, free the buffer back
// to the arena. The deterministic simulation never calls any of this: it is
// the "real host" counterpart whose wall-clock numbers bench_hostpath
// reports and whose race-freedom the TSan leg checks.
// ---------------------------------------------------------------------------

struct ParallelFusedConfig {
  std::size_t threads = 1;
  std::size_t ops_per_thread = 64;
  std::uint64_t bytes_per_op = 64 * 1024;
  // Frames per thread-private arena. Callers must size PhysicalMemory with
  // >= threads * arena_frames * 3 + pool_pages frames: allocation failure
  // inside the run is a CHECK, not a return code, because a thread that
  // skips ops under transient exhaustion would make the per-thread digests
  // depend on scheduling.
  std::size_t arena_frames = 64;
  // When nonzero, each op also churns one overlay frame through a
  // ShardedBufferPool (threads shards) shared by all threads, exercising
  // cross-shard stealing alongside the arena path.
  std::size_t pool_pages = 0;
  std::uint64_t seed = 1;
  bool use_simd = true;  // false pins the scalar checksum kernel
  // When true every op re-checksums the destination bytes with the scalar
  // kernel and CHECKs equality — the stress tests' integrity net; off for
  // benchmarking (it doubles the memory traffic).
  bool verify = false;
};

struct ParallelFusedThreadResult {
  // FNV-1a chain over this thread's per-op checksum values. Depends only on
  // (seed, thread index, ops_per_thread, bytes_per_op) — never on the
  // schedule or on which physical frames served the ops — so tests can pin
  // it as a golden across thread counts and TSan/ASan builds.
  std::uint64_t digest = 0;
  std::uint64_t bytes = 0;
  std::uint64_t ops = 0;
  AllocationPoint::Stats alloc;
};

struct ParallelFusedResult {
  std::vector<ParallelFusedThreadResult> per_thread;
  std::uint64_t total_bytes = 0;
  double seconds = 0;  // wall time of the parallel region (threads running)
  std::uint64_t pool_steals = 0;
  std::uint64_t pool_depletions = 0;
};

ParallelFusedResult RunParallelFused(PhysicalMemory& pm, const ParallelFusedConfig& cfg);

}  // namespace genie

#endif  // GENIE_SRC_GENIE_HOST_PATH_H_
