#include "src/genie/node.h"

#include <algorithm>

#include "src/genie/endpoint.h"
#include "src/vm/invariants.h"

namespace genie {

namespace {

Adapter::Config AdapterConfig(const Node::Config& config) {
  Adapter::Config ac;
  ac.rx_buffering = config.rx_buffering;
  ac.pool_pages = config.pool_pages;
  ac.chunk_bytes = config.profile.page_size;
  ac.flow_control = config.flow_control;
  return ac;
}

}  // namespace

Node::Node(Engine& engine, std::string name, Config config)
    : engine_(&engine),
      name_(std::move(name)),
      cost_(config.profile),
      vm_(config.mem_frames, config.profile.page_size),
      cpu_(engine, name_ + ".cpu"),
      adapter_(engine, vm_.pm(), cost_, name_ + ".nic", AdapterConfig(config)),
      reliable_(std::make_unique<ReliableDelivery>(engine, adapter_, name_ + ".xfer")),
      pageout_(vm_) {
  vm_.set_low_memory_reclaimer([this](std::size_t want) { pageout_.EvictUntilFree(want); });
  if (config.model_driver_work) {
    adapter_.SetDriverWork(&cpu_, &cpu_,
                           cost_.Line(OpKind::kDriverPerByte).slope_us_per_byte);
  }
  reliable_->set_metrics(&metrics_);
  RegisterComponentGauges();
}

void Node::RegisterComponentGauges() {
  const PhysicalMemory& pm = vm_.pm();
  metrics_.RegisterGauge("mem.free_frames", [&pm] { return std::uint64_t{pm.free_frames()}; });
  metrics_.RegisterGauge("mem.allocated_frames",
                         [&pm] { return std::uint64_t{pm.allocated_frames()}; });
  metrics_.RegisterGauge("mem.zombie_frames",
                         [&pm] { return std::uint64_t{pm.zombie_frames()}; });
  metrics_.RegisterGauge("mem.total_allocations", [&pm] { return pm.total_allocations(); });
  metrics_.RegisterGauge("mem.deferred_frees", [&pm] { return pm.deferred_frees(); });
  metrics_.RegisterGauge("mem.completed_deferred_frees",
                         [&pm] { return pm.completed_deferred_frees(); });

  const BackingStore& backing = vm_.backing();
  metrics_.RegisterGauge("backing.stored_pages",
                         [&backing] { return std::uint64_t{backing.stored_pages()}; });
  metrics_.RegisterGauge("backing.total_pageouts",
                         [&backing] { return backing.total_pageouts(); });
  metrics_.RegisterGauge("backing.total_pageins",
                         [&backing] { return backing.total_pageins(); });
  metrics_.RegisterGauge("backing.failed_saves", [&backing] { return backing.failed_saves(); });
  metrics_.RegisterGauge("backing.failed_restores",
                         [&backing] { return backing.failed_restores(); });

  // Pageout pressure: evictions performed and pages the daemon had to skip.
  const PageoutDaemon& pd = pageout_;
  metrics_.RegisterGauge("pageout.total_evictions", [&pd] { return pd.total_evictions(); });
  metrics_.RegisterGauge("pageout.skipped_input_referenced",
                         [&pd] { return pd.skipped_input_referenced(); });
  metrics_.RegisterGauge("pageout.skipped_wired", [&pd] { return pd.skipped_wired(); });
  metrics_.RegisterGauge("pageout.failed_pageout_writes",
                         [&pd] { return pd.failed_pageout_writes(); });

  const Adapter& nic = adapter_;
  metrics_.RegisterGauge("nic.frames_sent", [&nic] { return nic.frames_sent(); });
  metrics_.RegisterGauge("nic.frames_received", [&nic] { return nic.frames_received(); });
  metrics_.RegisterGauge("nic.frames_dropped_no_buffer",
                         [&nic] { return nic.frames_dropped_no_buffer(); });
  metrics_.RegisterGauge("nic.rx_crc_errors", [&nic] { return nic.rx_crc_errors(); });
  metrics_.RegisterGauge("nic.rx_truncated_frames",
                         [&nic] { return nic.rx_truncated_frames(); });
  // Drop causes, split out so "frames_dropped_no_buffer went up" is
  // diagnosable from a metrics snapshot alone.
  metrics_.RegisterGauge("nic.drops_no_posted_buffer",
                         [&nic] { return nic.drops_no_posted_buffer(); });
  metrics_.RegisterGauge("nic.drops_pool_exhausted",
                         [&nic] { return nic.drops_pool_exhausted(); });
  metrics_.RegisterGauge("nic.drops_outboard_overflow",
                         [&nic] { return nic.drops_outboard_overflow(); });
  metrics_.RegisterGauge("nic.rx_duplicate_frames",
                         [&nic] { return nic.rx_duplicate_frames(); });
  metrics_.RegisterGauge("nic.acks_sent", [&nic] { return nic.acks_sent(); });
  metrics_.RegisterGauge("nic.nacks_sent", [&nic] { return nic.nacks_sent(); });
  metrics_.RegisterGauge("nic.link_frames_dropped", [&nic] { return nic.link_frames_dropped(); });
  metrics_.RegisterGauge("nic.link_frames_duplicated",
                         [&nic] { return nic.link_frames_duplicated(); });
  metrics_.RegisterGauge("nic.link_frames_reordered",
                         [&nic] { return nic.link_frames_reordered(); });

  const ReliableDelivery& rel = *reliable_;
  metrics_.RegisterGauge("reliable.sequenced_frames",
                         [&rel] { return rel.stats().sequenced_frames; });
  metrics_.RegisterGauge("reliable.retransmits", [&rel] { return rel.stats().retransmits; });
  metrics_.RegisterGauge("reliable.timeouts", [&rel] { return rel.stats().timeouts; });
  metrics_.RegisterGauge("reliable.acks", [&rel] { return rel.stats().acks; });
  metrics_.RegisterGauge("reliable.nacks", [&rel] { return rel.stats().nacks; });
  metrics_.RegisterGauge("reliable.giveups", [&rel] { return rel.stats().giveups; });
  metrics_.RegisterGauge("reliable.fallbacks", [&rel] { return rel.stats().fallbacks; });
  metrics_.RegisterGauge("reliable.watchdog_cancels",
                         [&rel] { return rel.stats().watchdog_cancels; });
  metrics_.RegisterGauge("reliable.watchdog_scans",
                         [&rel] { return rel.stats().watchdog_scans; });

  // Crash-stop recovery observability. All of these read zero on a healthy
  // run, so snapshots (zero-omitting JSON) are unchanged unless crashes,
  // fencing, or link flaps actually happened.
  metrics_.RegisterGauge("node.crashes", [this] { return crashes_; });
  metrics_.RegisterGauge("reliable.epoch_bumps", [&rel] { return rel.stats().epoch_bumps; });
  metrics_.RegisterGauge("reliable.resyncs", [&rel] { return rel.stats().resyncs; });
  metrics_.RegisterGauge("reliable.peer_crash_aborts",
                         [&rel] { return rel.stats().peer_crash_aborts; });
  metrics_.RegisterGauge("reliable.stale_epoch_drops",
                         [&nic] { return nic.stale_epoch_drops(); });
  metrics_.RegisterGauge("nic.crash_frame_drops", [&nic] { return nic.crash_frame_drops(); });
  metrics_.RegisterGauge("nic.crash_cell_drops", [&nic] { return nic.crash_cell_drops(); });
  metrics_.RegisterGauge("nic.fences_sent", [&nic] { return nic.fences_sent(); });
  metrics_.RegisterGauge("nic.resyncs_sent", [&nic] { return nic.resyncs_sent(); });
  metrics_.RegisterGauge("nic.link_down_drops", [&nic] { return nic.link_down_drops(); });

  // Telemetry rate sources and occupancy gauges. Pool occupancy reads the
  // receive pool directly (exact between events); on a node without an
  // outboard pool both read 0 and the zero-omitting snapshot is unchanged.
  metrics_.RegisterGauge("reliable.delivered_frames",
                         [&rel] { return rel.stats().delivered_frames; });
  metrics_.RegisterGauge("reliable.delivered_bytes",
                         [&rel] { return rel.stats().delivered_bytes; });
  metrics_.RegisterGauge("nic.pool_free_pages", [this] {
    BufferPool* pool = adapter_.pool();
    return pool == nullptr ? 0 : static_cast<std::uint64_t>(pool->available());
  });
  metrics_.RegisterGauge("nic.pool_capacity", [this] {
    BufferPool* pool = adapter_.pool();
    return pool == nullptr ? 0 : static_cast<std::uint64_t>(pool->capacity());
  });
  // Trace-ring overflow: nonzero means a telemetry/trace series was
  // truncated — exported so truncation can never pass silently.
  metrics_.RegisterGauge("trace.dropped_events",
                         [this] { return trace_ == nullptr ? 0 : trace_->dropped_events(); });
}

void Node::Crash() {
  GENIE_CHECK(!crashed_) << name_ << ": Crash() on an already-crashed node";
  if (trace_ != nullptr) {
    trace_->Instant(name_ + ".xfer", "crash -> e" + std::to_string(epoch_ + 1), "crash",
                    engine_->now());
  }
  // The observer fires BEFORE any state is discarded so a flight recorder
  // can dump the victim's trace ring with its final pre-crash events intact.
  if (crash_observer_) {
    crash_observer_(epoch_ + 1);
  }
  crashed_ = true;
  ++epoch_;
  ++crashes_;
  // Wipe order matters: the adapter first (so endpoint/reliable unwinds
  // cannot accidentally transmit or re-post against live NIC state), then
  // endpoint-level waiting operations, then the reliable layer's in-flight
  // transfer bookkeeping.
  adapter_.Crash(epoch_);
  for (Endpoint* ep : endpoints_) {
    ep->CrashAbort();
  }
  reliable_->Crash(epoch_);
  // A crash discards I/O state, not correctness of what survives: every
  // unwound input must have returned its references, wirings, and
  // system-allocated regions to a consistent VM state.
  std::vector<AddressSpace*> spaces;
  spaces.reserve(processes_.size());
  for (const auto& p : processes_) {
    spaces.push_back(p.get());
  }
  InvariantReport report =
      VmInvariants::CheckAll(vm_, spaces, /*expect_quiescent=*/false);
  GENIE_CHECK(report.violations.empty())
      << name_ << ": VM invariants violated by crash unwind: "
      << report.violations.front();
}

void Node::Restart() {
  GENIE_CHECK(crashed_) << name_ << ": Restart() on a node that is not crashed";
  crashed_ = false;
  adapter_.Restart();
  reliable_->OnRestart();
  if (trace_ != nullptr) {
    trace_->Instant(name_ + ".xfer", "restart e" + std::to_string(epoch_), "crash",
                    engine_->now());
  }
  if (restart_observer_) {
    restart_observer_(epoch_);
  }
}

void Node::ArmCrashInjection(FaultPlan* plan, SimTime period, SimTime horizon,
                             SimTime restart_delay) {
  GENIE_CHECK(plan != nullptr);
  GENIE_CHECK(period > 0);
  ScheduleCrashTick(plan, period, horizon, restart_delay);
}

void Node::ScheduleCrashTick(FaultPlan* plan, SimTime period, SimTime horizon,
                             SimTime restart_delay) {
  if (engine_->now() + period > horizon) {
    return;  // past the injection window; let the run go quiescent
  }
  engine_->ScheduleAfter(period, [this, plan, period, horizon, restart_delay] {
    // A crashed node consults no rules until its restart lands; the op
    // counter therefore advances only over live instants, which keeps
    // nth-style rules meaningful across incarnations.
    if (!crashed_) {
      std::uint64_t arg = 0;
      if (plan->ShouldFail(FaultSite::kNodeCrash, &arg)) {
        Crash();
        const SimTime delay = arg != 0 ? static_cast<SimTime>(arg) : restart_delay;
        engine_->ScheduleAfter(delay, [this] { Restart(); });
      }
    }
    ScheduleCrashTick(plan, period, horizon, restart_delay);
  });
}

void Node::RegisterEndpoint(Endpoint* endpoint) { endpoints_.push_back(endpoint); }

void Node::UnregisterEndpoint(Endpoint* endpoint) {
  endpoints_.erase(std::remove(endpoints_.begin(), endpoints_.end(), endpoint),
                   endpoints_.end());
}

AddressSpace& Node::CreateProcess(const std::string& proc_name) {
  processes_.push_back(std::make_unique<AddressSpace>(vm_, name_ + "." + proc_name));
  AddressSpace& as = *processes_.back();
  // Fault and translation counters of this process, keyed by its (node-
  // local) name. The address space lives exactly as long as the node, so the
  // captured reference cannot dangle.
  const std::string prefix = "vm." + proc_name + ".";
  const AddressSpace::Counters& c = as.counters();
  metrics_.RegisterGauge(prefix + "faults", [&c] { return c.faults; });
  metrics_.RegisterGauge(prefix + "unrecoverable_faults", [&c] { return c.unrecoverable_faults; });
  metrics_.RegisterGauge(prefix + "tcow_copies", [&c] { return c.tcow_copies; });
  metrics_.RegisterGauge(prefix + "tcow_reenables", [&c] { return c.tcow_reenables; });
  metrics_.RegisterGauge(prefix + "cow_copies", [&c] { return c.cow_copies; });
  metrics_.RegisterGauge(prefix + "pageins", [&c] { return c.pageins; });
  metrics_.RegisterGauge(prefix + "zero_fills", [&c] { return c.zero_fills; });
  metrics_.RegisterGauge(prefix + "tlb_hits", [&c] { return c.tlb_hits; });
  metrics_.RegisterGauge(prefix + "tlb_misses", [&c] { return c.tlb_misses; });
  metrics_.RegisterGauge(prefix + "tlb_invalidations", [&c] { return c.tlb_invalidations; });
  metrics_.RegisterGauge(prefix + "coalesced_runs", [&c] { return c.coalesced_runs; });
  metrics_.RegisterGauge(prefix + "coalesced_pages", [&c] { return c.coalesced_pages; });
  metrics_.RegisterGauge(prefix + "io_errors", [&c] { return c.io_errors; });
  return as;
}

void Node::RegisterPooledHandler(std::uint64_t channel,
                                 std::function<void(PooledFrame)> handler) {
  if (pooled_handlers_.empty()) {
    adapter_.set_pooled_handler([this](PooledFrame frame) {
      auto it = pooled_handlers_.find(frame.channel);
      GENIE_CHECK(it != pooled_handlers_.end())
          << "pooled frame on unregistered channel " << frame.channel;
      it->second(std::move(frame));
    });
  }
  pooled_handlers_[channel] = std::move(handler);
}

void Node::RegisterOutboardHandler(std::uint64_t channel,
                                   std::function<void(OutboardFrame)> handler) {
  if (outboard_handlers_.empty()) {
    adapter_.set_outboard_handler([this](OutboardFrame frame) {
      auto it = outboard_handlers_.find(frame.channel);
      GENIE_CHECK(it != outboard_handlers_.end())
          << "outboard frame on unregistered channel " << frame.channel;
      it->second(frame);
    });
  }
  outboard_handlers_[channel] = std::move(handler);
}

Network::Network(Engine& engine, Node& a, Node& b)
    : link_ab_(engine, a.name() + "->" + b.name()), link_ba_(engine, b.name() + "->" + a.name()) {
  a.adapter().ConnectTo(&b.adapter(), &link_ab_);
  b.adapter().ConnectTo(&a.adapter(), &link_ba_);
}

}  // namespace genie
