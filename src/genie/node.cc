#include "src/genie/node.h"

namespace genie {

namespace {

Adapter::Config AdapterConfig(const Node::Config& config) {
  Adapter::Config ac;
  ac.rx_buffering = config.rx_buffering;
  ac.pool_pages = config.pool_pages;
  ac.chunk_bytes = config.profile.page_size;
  ac.flow_control = config.flow_control;
  return ac;
}

}  // namespace

Node::Node(Engine& engine, std::string name, Config config)
    : engine_(&engine),
      name_(std::move(name)),
      cost_(config.profile),
      vm_(config.mem_frames, config.profile.page_size),
      cpu_(engine, name_ + ".cpu"),
      adapter_(engine, vm_.pm(), cost_, name_ + ".nic", AdapterConfig(config)),
      pageout_(vm_) {
  vm_.set_low_memory_reclaimer([this](std::size_t want) { pageout_.EvictUntilFree(want); });
  if (config.model_driver_work) {
    adapter_.SetDriverWork(&cpu_, &cpu_,
                           cost_.Line(OpKind::kDriverPerByte).slope_us_per_byte);
  }
}

AddressSpace& Node::CreateProcess(const std::string& proc_name) {
  processes_.push_back(std::make_unique<AddressSpace>(vm_, name_ + "." + proc_name));
  return *processes_.back();
}

void Node::RegisterPooledHandler(std::uint64_t channel,
                                 std::function<void(PooledFrame)> handler) {
  if (pooled_handlers_.empty()) {
    adapter_.set_pooled_handler([this](PooledFrame frame) {
      auto it = pooled_handlers_.find(frame.channel);
      GENIE_CHECK(it != pooled_handlers_.end())
          << "pooled frame on unregistered channel " << frame.channel;
      it->second(std::move(frame));
    });
  }
  pooled_handlers_[channel] = std::move(handler);
}

void Node::RegisterOutboardHandler(std::uint64_t channel,
                                   std::function<void(OutboardFrame)> handler) {
  if (outboard_handlers_.empty()) {
    adapter_.set_outboard_handler([this](OutboardFrame frame) {
      auto it = outboard_handlers_.find(frame.channel);
      GENIE_CHECK(it != outboard_handlers_.end())
          << "outboard frame on unregistered channel " << frame.channel;
      it->second(frame);
    });
  }
  outboard_handlers_[channel] = std::move(handler);
}

Network::Network(Engine& engine, Node& a, Node& b)
    : link_ab_(engine, a.name() + "->" + b.name()), link_ba_(engine, b.name() + "->" + a.name()) {
  a.adapter().ConnectTo(&b.adapter(), &link_ab_);
  b.adapter().ConnectTo(&a.adapter(), &link_ba_);
}

}  // namespace genie
