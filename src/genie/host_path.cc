#include "src/genie/host_path.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <random>
#include <thread>

#include "src/genie/sys_buffer.h"
#include "src/net/buffer_pool.h"
#include "src/util/check.h"

namespace genie {

AccessResult CopyinToIoVec(AddressSpace& app, Vaddr va, std::uint64_t len, const IoVec& dst,
                           InternetChecksum* sum) {
  GENIE_CHECK_LE(len, dst.total_bytes());
  PhysicalMemory& pm = app.vm().pm();
  std::size_t seg_i = 0;
  std::uint64_t seg_off = 0;  // bytes already written into segment seg_i
  return app.ReadScatter(va, len, [&](std::span<const std::byte> chunk) {
    std::uint64_t done = 0;
    while (done < chunk.size()) {
      const IoSegment& seg = dst.segments[seg_i];
      const std::uint64_t n =
          std::min<std::uint64_t>(seg.length - seg_off, chunk.size() - done);
      std::span<std::byte> out = pm.DataRun(seg.frame, seg.offset + seg_off, n);
      if (sum != nullptr) {
        sum->UpdateWithCopy(chunk.subspan(done, n), out.data());
      } else {
        std::memcpy(out.data(), chunk.data() + done, static_cast<std::size_t>(n));
      }
      done += n;
      seg_off += n;
      if (seg_off == seg.length) {
        ++seg_i;
        seg_off = 0;
      }
    }
  });
}

namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvMix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xFF)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

// One worker's whole life. Everything it touches is either thread-private
// (pattern, allocation point, checksum state) or explicitly thread-safe
// (PhysicalMemory *Mt entry points via the allocation point, the sharded
// pool), so the per-thread digest is a pure function of (seed, tid, cfg).
void FusedWorker(PhysicalMemory& pm, const ParallelFusedConfig& cfg, std::size_t tid,
                 ShardedBufferPool* pool, ParallelFusedThreadResult* out) {
  const std::uint32_t psz = pm.page_size();
  // Thread-seeded source pattern; the first 8 bytes are rewritten with the
  // op counter so every op checksums distinct data.
  std::vector<std::byte> pattern(static_cast<std::size_t>(cfg.bytes_per_op));
  std::mt19937_64 rng(cfg.seed * 0x9E3779B97F4A7C15ull + tid);
  for (std::byte& b : pattern) {
    b = static_cast<std::byte>(rng() & 0xFF);
  }

  AllocationPoint ap(pm, cfg.arena_frames);
  std::uint64_t digest = kFnvBasis;
  std::uint64_t bytes = 0;

  for (std::size_t op = 0; op < cfg.ops_per_thread; ++op) {
    for (std::size_t i = 0; i < 8 && i < pattern.size(); ++i) {
      pattern[i] = static_cast<std::byte>((op >> (8 * i)) & 0xFF);
    }
    // Vary intra-page alignment across ops so the SIMD head/tail paths and
    // the arena bump arithmetic both get exercised at every offset class.
    const std::uint32_t page_offset =
        static_cast<std::uint32_t>((tid * 13 + op * 29) % std::min<std::uint32_t>(psz, 128));

    SysBuffer buf;
    GENIE_CHECK(TryAllocateSysBufferFrom(ap, page_offset, cfg.bytes_per_op, &buf))
        << "parallel fused run under-provisioned: size PhysicalMemory with >= "
           "threads*arena_frames*3 + pool_pages frames";
    GENIE_CHECK_EQ(buf.iov.segments.size(), 1u);
    const IoSegment& seg = buf.iov.segments[0];
    std::span<std::byte> dst = pm.DataRun(seg.frame, seg.offset, seg.length);

    InternetChecksum sum;
    sum.set_use_simd(cfg.use_simd);
    sum.UpdateWithCopy(pattern, dst.data());
    const std::uint16_t cksum = sum.value();
    if (cfg.verify) {
      InternetChecksum ref;
      ref.set_use_simd(false);
      ref.Update(dst);
      GENIE_CHECK_EQ(ref.value(), cksum) << "fused copy+checksum mismatch vs scalar re-read";
      GENIE_CHECK_EQ(std::memcmp(dst.data(), pattern.data(), pattern.size()), 0)
          << "fused copy corrupted destination bytes";
    }
    digest = FnvMix(digest, cksum);
    bytes += cfg.bytes_per_op;

    if (pool != nullptr) {
      // Overlay churn: take a small burst of frames (draining the home
      // shard when the pool is tight, which forces the steal path), stamp
      // them, return them. Frame identities are schedule-dependent, so they
      // are deliberately NOT folded into the digest.
      FrameId burst[3];
      std::size_t got = 0;
      for (FrameId& f : burst) {
        f = pool->Allocate(tid);
        if (f == kInvalidFrame) {
          break;
        }
        pm.Data(f)[0] = static_cast<std::byte>(tid);
        ++got;
      }
      for (std::size_t i = 0; i < got; ++i) {
        pool->Free(burst[i]);
      }
    }
    FreeSysBuffer(ap, buf);
  }

  out->digest = digest;
  out->bytes = bytes;
  out->ops = cfg.ops_per_thread;
  out->alloc = ap.stats();
}

}  // namespace

ParallelFusedResult RunParallelFused(PhysicalMemory& pm, const ParallelFusedConfig& cfg) {
  GENIE_CHECK_GT(cfg.threads, 0u);
  GENIE_CHECK_GT(cfg.bytes_per_op, 0u);
  ParallelFusedResult result;
  result.per_thread.resize(cfg.threads);

  std::unique_ptr<ShardedBufferPool> pool;
  if (cfg.pool_pages > 0) {
    pool = std::make_unique<ShardedBufferPool>(pm, cfg.pool_pages, cfg.threads);
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);
  for (std::size_t t = 0; t < cfg.threads; ++t) {
    threads.emplace_back(FusedWorker, std::ref(pm), std::cref(cfg), t, pool.get(),
                         &result.per_thread[t]);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - start).count();

  for (const ParallelFusedThreadResult& r : result.per_thread) {
    result.total_bytes += r.bytes;
  }
  if (pool != nullptr) {
    result.pool_steals = pool->steals();
    result.pool_depletions = pool->depletion_events();
  }
  return result;
}

}  // namespace genie
