#include "src/genie/host_path.h"

#include <algorithm>
#include <cstring>

#include "src/util/check.h"

namespace genie {

AccessResult CopyinToIoVec(AddressSpace& app, Vaddr va, std::uint64_t len, const IoVec& dst,
                           InternetChecksum* sum) {
  GENIE_CHECK_LE(len, dst.total_bytes());
  PhysicalMemory& pm = app.vm().pm();
  std::size_t seg_i = 0;
  std::uint64_t seg_off = 0;  // bytes already written into segment seg_i
  return app.ReadScatter(va, len, [&](std::span<const std::byte> chunk) {
    std::uint64_t done = 0;
    while (done < chunk.size()) {
      const IoSegment& seg = dst.segments[seg_i];
      const std::uint64_t n =
          std::min<std::uint64_t>(seg.length - seg_off, chunk.size() - done);
      std::span<std::byte> out = pm.DataRun(seg.frame, seg.offset + seg_off, n);
      if (sum != nullptr) {
        sum->UpdateWithCopy(chunk.subspan(done, n), out.data());
      } else {
        std::memcpy(out.data(), chunk.data() + done, static_cast<std::size_t>(n));
      }
      done += n;
      seg_off += n;
      if (seg_off == seg.length) {
        ++seg_i;
        seg_off = 0;
      }
    }
  });
}

}  // namespace genie
