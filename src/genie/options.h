// Tunable Genie policies: the paper's empirically chosen thresholds
// (Section 7) and toggles for the optimizations, used by the ablation
// benchmarks.
#ifndef GENIE_SRC_GENIE_OPTIONS_H_
#define GENIE_SRC_GENIE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace genie {

// How transport checksums are computed/verified (paper Section 9): in a
// separate read-only pass over the data, or integrated with a data copy
// (reference [7]). Integration with the final copyout has a semantic
// implication: a bad checksum is detected only after the application buffer
// was overwritten, degrading copy to weak semantics.
enum class ChecksumMode : std::uint8_t {
  kNone,
  kSeparatePass,
  kIntegrated,
};

struct GenieOptions {
  // Output shorter than these thresholds is transparently converted to copy
  // semantics, which is very efficient for short data (Section 6 / Figure 5:
  // 1666 bytes for emulated copy, 280 bytes for emulated share).
  std::uint64_t emulated_copy_output_threshold = 1666;
  std::uint64_t emulated_share_output_threshold = 280;
  bool enable_copy_conversion = true;

  // Reverse copyout threshold (Section 5.2, Figure 5: 2178 bytes, just above
  // half a 4 KB page): data in a partially filled system page shorter than
  // this is copied out; longer data is completed from the application page
  // and swapped.
  std::uint64_t reverse_copyout_threshold = 2178;

  // Input alignment (Section 5.2): allocate system input buffers at the same
  // page offset and length as the application buffer so pages can be
  // swapped. Off = traditional practice (copyout for unaligned buffers).
  bool enable_input_alignment = true;

  // Region hiding (Section 4): emulated move revokes access and caches the
  // region instead of removing/creating regions. Off = emulated move pays
  // region create/remove like basic move.
  bool enable_region_hiding = true;

  // Input-disabled pageout (Section 3.2) makes wiring unnecessary in the
  // emulated semantics. Off = emulated semantics wire like the basic ones.
  bool enable_input_disabled_pageout = true;

  // TCOW (Section 5.1). Off = emulated copy output copies like basic copy
  // (the output side of copy avoidance disappears).
  bool enable_tcow = true;

  // Transport checksum handling (Section 9 extension).
  ChecksumMode checksum_mode = ChecksumMode::kNone;

  // Preferred page offset of application input buffers reported by the I/O
  // module (application input alignment query, Section 5.2). Zero for our
  // AAL5 stack (no unstripped headers).
  std::uint32_t preferred_input_offset = 0;

  // Capacity of the Endpoint submission ring (batched submit/complete API).
  // Submit() refuses entries beyond this depth until a drain makes room.
  std::size_t ring_depth = 64;

  // Register the endpoint's ~40 per-channel stat gauges and its input
  // latency histogram with the node's metrics registry. On by default; bulk
  // harnesses creating thousands of endpoints (the fabric workload
  // generator) turn it off and keep their own per-class roll-ups —
  // Endpoint::stats() stays authoritative either way.
  bool register_metrics = true;

  // Graceful semantics degradation: when a prepare step cannot honor the
  // requested semantics (TCOW sysbuf allocation fails, aligned input pool
  // exhausted, region wiring fails), retry the transfer along the fallback
  // chain emulated -> basic -> copy instead of failing the operation. Every
  // downgrade is counted in Endpoint::Stats::semantics_fallbacks and in the
  // node's reliable.fallbacks gauge. Off = a failed prepare fails the I/O,
  // exactly as before.
  bool enable_semantics_fallback = false;
};

}  // namespace genie

#endif  // GENIE_SRC_GENIE_OPTIONS_H_
