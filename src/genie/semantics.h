// The taxonomy of data-passing semantics (paper Section 2, Figure 1):
// three dimensions — buffer allocation scheme, guaranteed integrity, and
// level of optimization — giving four basic semantics and their emulated
// (transparently optimized) counterparts.
#ifndef GENIE_SRC_GENIE_SEMANTICS_H_
#define GENIE_SRC_GENIE_SEMANTICS_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace genie {

enum class Semantics : std::uint8_t {
  kCopy,              // application-allocated, strong integrity, basic
  kEmulatedCopy,      // application-allocated, strong integrity, optimized
  kShare,             // application-allocated, weak integrity, basic
  kEmulatedShare,     // application-allocated, weak integrity, optimized
  kMove,              // system-allocated, strong integrity, basic
  kEmulatedMove,      // system-allocated, strong integrity, optimized
  kWeakMove,          // system-allocated, weak integrity, basic
  kEmulatedWeakMove,  // system-allocated, weak integrity, optimized
};

inline constexpr std::array<Semantics, 8> kAllSemantics = {
    Semantics::kCopy,      Semantics::kEmulatedCopy, Semantics::kShare,
    Semantics::kEmulatedShare, Semantics::kMove,     Semantics::kEmulatedMove,
    Semantics::kWeakMove,  Semantics::kEmulatedWeakMove,
};

// Dimension 1 (Section 2.1): who chooses buffer locations. System-allocated
// semantics return input buffer locations to the application and deallocate
// output buffers on output.
constexpr bool IsSystemAllocated(Semantics s) {
  return s == Semantics::kMove || s == Semantics::kEmulatedMove ||
         s == Semantics::kWeakMove || s == Semantics::kEmulatedWeakMove;
}
constexpr bool IsApplicationAllocated(Semantics s) { return !IsSystemAllocated(s); }

// Dimension 2 (Section 2.2): strong integrity guarantees output data is
// unaffected by later overwrites and input buffers are never observable in
// incomplete states; weak integrity performs I/O in place and makes no such
// guarantee.
constexpr bool IsWeakIntegrity(Semantics s) {
  return s == Semantics::kShare || s == Semantics::kEmulatedShare ||
         s == Semantics::kWeakMove || s == Semantics::kEmulatedWeakMove;
}
constexpr bool IsStrongIntegrity(Semantics s) { return !IsWeakIntegrity(s); }

// Dimension 3 (Section 2.3): emulated semantics are transparently optimized —
// compatible behavior, normally better performance.
constexpr bool IsEmulated(Semantics s) {
  return s == Semantics::kEmulatedCopy || s == Semantics::kEmulatedShare ||
         s == Semantics::kEmulatedMove || s == Semantics::kEmulatedWeakMove;
}

// The basic semantics an emulated one optimizes (identity for basic ones).
constexpr Semantics BasicOf(Semantics s) {
  switch (s) {
    case Semantics::kEmulatedCopy:
      return Semantics::kCopy;
    case Semantics::kEmulatedShare:
      return Semantics::kShare;
    case Semantics::kEmulatedMove:
      return Semantics::kMove;
    case Semantics::kEmulatedWeakMove:
      return Semantics::kWeakMove;
    default:
      return s;
  }
}

std::string_view SemanticsName(Semantics s);

}  // namespace genie

#endif  // GENIE_SRC_GENIE_SEMANTICS_H_
