// Reliable delivery layer: per-channel ARQ over the adapter, transfer
// watchdogs, and bookkeeping for semantics degradation.
//
// The adapter (src/net) gives at-most-once datagram service: frames can be
// lost (link faults, no posted buffer), duplicated, reordered, or corrupted.
// ReliableDelivery turns an output into exactly-once delivery with ARQ:
// each frame carries a per-channel sequence number, the receiving adapter
// acks (or nacks on CRC failure), and the sender retransmits on timeout with
// exponential backoff plus deterministic jitter drawn from a seeded
// SplitMix64. The receiver's dedup state absorbs the duplicates that
// retransmission inevitably creates, so the host-visible stream is
// exactly-once even though the wire is not.
//
// Two sender disciplines share that machinery, selected by
// ReliableOptions::window:
//   * window == 1 — stop-and-wait: one frame outstanding per transfer, one
//     ack control cell per frame. This is the original discipline and its
//     event schedule is bit-for-bit unchanged.
//   * window  > 1 — selective repeat: up to `window` sequenced frames
//     outstanding per channel. Each in-flight frame has its own retransmit
//     timer; the receiver acknowledges with batched SACK cell trains
//     (cumulative + bitmap, src/net/sack.h) so one control-cell train
//     resolves many frames; frames are acked out of order and the send
//     window slides over the acked prefix. A transfer that arrives while
//     the window is full parks in an admission queue (traced as a
//     `.window_stall` span). Both peers must be configured with the same
//     window (Node::EnableReliableDelivery does this).
//
// The watchdog is a periodic scan over registered in-flight transfers. A
// transfer stuck past the deadline (delayed-completion fault, credit
// deadlock, lost frame with ARQ off) is handed to its cancel callback, which
// unwinds VM state (unwire, unreference, free sysbuf, restore hidden
// regions) and fails the operation with IoStatus::kCancelled. The scan timer
// is armed only while the watched set is non-empty so Engine::Run() still
// terminates when the simulation goes quiescent.
//
// Everything here is off by default: with ReliableOptions{} the layer adds
// no events, no RNG draws, and no trace records, keeping every existing
// deterministic golden (event digests, op-count gates, stress seeds)
// bit-for-bit identical.
#ifndef GENIE_SRC_GENIE_RELIABLE_H_
#define GENIE_SRC_GENIE_RELIABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "src/net/adapter.h"
#include "src/obs/metrics.h"
#include "src/sim/awaitable.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/sim/timer.h"
#include "src/sim/trace.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace genie {

struct ReliableOptions {
  // ARQ: sequence outputs and retransmit until acked (or give up).
  bool arq = false;
  // Selective-repeat send window, in frames per channel. 1 = stop-and-wait
  // (the legacy discipline, goldens unchanged); >1 pipelines up to `window`
  // sequenced frames per channel with SACK acknowledgement.
  std::uint32_t window = 1;
  std::uint32_t max_retransmits = 8;   // give up after this many retries
  SimTime initial_timeout = 2 * kMillisecond;
  SimTime max_timeout = 32 * kMillisecond;  // backoff ceiling
  double backoff_factor = 2.0;
  // Each armed timeout is stretched by a uniform fraction in [0, jitter_frac)
  // so two channels that lose frames at the same instant do not retransmit in
  // lockstep forever. Drawn from the seeded RNG: deterministic per seed.
  double jitter_frac = 0.1;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  // Pause before a nack-triggered retransmit (lets the receiver finish
  // restoring the posted buffer that the corrupted frame consumed).
  SimTime nack_delay = 100 * kMicrosecond;

  // Watchdog: 0 = off. A watched transfer older than `watchdog_timeout` is
  // cancelled; the set is scanned every `watchdog_period` (0 = timeout / 4).
  SimTime watchdog_timeout = 0;
  SimTime watchdog_period = 0;
};

// One reliable endpoint per node, layered over that node's adapter.
class ReliableDelivery {
 public:
  enum class TxOutcome : std::uint8_t {
    kDelivered,    // acked by the peer adapter
    kGiveUp,       // max_retransmits exhausted
    kCancelled,    // watchdog (or caller) cancelled the transfer
    kPeerCrashed,  // aborted by a crash-stop (local node or peer epoch bump)
  };

  struct TxReport {
    TxOutcome outcome = TxOutcome::kDelivered;
    std::uint32_t attempts = 0;  // transmissions actually performed
  };

  // Shared between the transmitting coroutine and the watchdog's cancel
  // callback; lets the watchdog abort a transfer wherever it is parked
  // (credit wait, wire, ack wait, nack delay).
  struct CancelToken {
    bool cancelled = false;
    // Set the moment the transfer reaches a successful resolution (ack/SACK
    // arrival). A watchdog scan running in the same instant must observe it
    // and report kCompleted instead of cancelling — otherwise the race is
    // double-counted (a watchdog_cancel AND a completed transfer).
    bool resolved = false;
    std::shared_ptr<TxControl> ctl;  // current in-flight transmission
    SimEvent* wake = nullptr;        // pending ack wait to poke
  };

  enum class WatchVerdict : std::uint8_t {
    kCompleted,  // transfer finished on its own; just forget it
    kCancelled,  // cancellation initiated; unwind is under way
    kBusy,       // cannot be cancelled right now; re-arm the deadline
  };

  struct Stats {
    std::uint64_t sequenced_frames = 0;  // TransmitReliably calls
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t acks = 0;
    std::uint64_t nacks = 0;
    std::uint64_t giveups = 0;
    std::uint64_t cancelled_transmits = 0;
    std::uint64_t stale_acks = 0;  // ack/nack with no pending entry
    std::uint64_t fallbacks = 0;   // semantics downgrades (endpoint-reported)
    std::uint64_t watchdog_scans = 0;
    std::uint64_t watchdog_cancels = 0;
    std::uint64_t epoch_bumps = 0;        // peer incarnation changes observed
    std::uint64_t resyncs = 0;            // resync handshake attempts sent
    std::uint64_t peer_crash_aborts = 0;  // transfers aborted by a crash-stop
    std::uint64_t delivered_frames = 0;   // transfers acked end-to-end
    std::uint64_t delivered_bytes = 0;    // payload bytes of those transfers
  };

  // `xfer_track` is the trace track transfer-level records go to
  // (conventionally "<node>.xfer", matching the endpoint's spans).
  ReliableDelivery(Engine& engine, Adapter& adapter, std::string xfer_track);

  void Configure(const ReliableOptions& options) { options_ = ConfiguredWith(options); }
  const ReliableOptions& options() const { return options_; }
  bool arq_enabled() const { return options_.arq; }
  bool watchdog_enabled() const { return options_.watchdog_timeout > 0; }

  // Transmits `iov` on `channel` with ARQ and co_returns once the frame is
  // acked, retries are exhausted, or `token` is cancelled. The caller keeps
  // `iov`'s backing pages alive (and unmutated) until this returns — the
  // retransmit re-reads them. `flow` (optional) stamps every trace record
  // this transmission produces with the transfer's causal flow id.
  Task<TxReport> TransmitReliably(std::uint64_t channel, IoVec iov, std::uint32_t header,
                                  std::uint32_t tag, std::string label,
                                  std::shared_ptr<CancelToken> token, std::uint64_t flow = 0);

  // Registers an in-flight transfer with the watchdog. `on_expire` runs from
  // the scan when the transfer overstays watchdog_timeout; kBusy verdicts
  // push the deadline out by a full timeout. Returns an id for Unwatch()
  // (valid — and ignored — even when the watchdog is off). Unwatch is
  // idempotent: the cancel callback may already have retired the entry.
  std::uint64_t Watch(std::string label, std::function<WatchVerdict()> on_expire);
  void Unwatch(std::uint64_t id);

  // Endpoint-side accounting hook for a semantics downgrade.
  void RecordFallback(const std::string& label, std::string_view from, std::string_view to);

  const Stats& stats() const { return stats_; }
  std::size_t watched() const { return watched_.size(); }
  void set_trace(TraceLog* trace) { trace_ = trace; }

  // Optional metrics sink: records `reliable.ack_rtt_us` (wire end of the
  // delivered attempt to ack arrival) and `reliable.retransmit_delay_us`
  // (previous attempt end to retransmission) latency histograms. Recording
  // draws no randomness and schedules nothing, so it never perturbs the
  // event schedule.
  void set_metrics(MetricsRegistry* metrics);

  // Optional hook invoked when the watchdog cancels a transfer (after the
  // cancel callback has run). The flight recorder uses it to dump the trace
  // ring at the moment of failure.
  void set_cancel_hook(std::function<void(const std::string& label)> hook) {
    cancel_hook_ = std::move(hook);
  }

  // --- Crash-stop & epoch fencing ---
  //
  // Crash-stop of the owning node: every in-flight stop-and-wait round and
  // window entry resolves as kPeerCrashed, watchdog registrations are wiped,
  // and open resync barriers release so parked transfers unwind through the
  // normal failure paths. `epoch` is the node's new incarnation (strictly
  // increasing). Sequence numbers are NOT reset — they are monotonic across
  // incarnations, so the peer's dedup state stays valid and the resync
  // handshake only has to advance its high water.
  void Crash(std::uint32_t epoch);
  // Clears the crashed flag once the node restarts; traffic may flow again.
  void OnRestart();
  std::uint32_t local_epoch() const { return local_epoch_; }
  bool crashed() const { return crashed_; }
  // Peer incarnation as last learned on `channel` (via fence or resync-ack
  // control cells); 1 until a bump is observed.
  std::uint32_t PeerEpoch(std::uint64_t channel) const;
  // True while a post-fence resync handshake gates new sequenced traffic.
  bool Resyncing(std::uint64_t channel) const;

 private:
  struct PendingAck {
    explicit PendingAck(Engine& engine) : event(engine) {}
    enum Outcome : std::uint8_t { kNone, kAcked, kNacked, kTimeout, kCrashed };
    Outcome outcome = kNone;
    SimEvent event;
    TimerSet::Handle timer = 0;
    // Lets the ack handler mark the transfer resolved the instant the final
    // ack arrives, before the owning coroutine has been resumed.
    std::shared_ptr<CancelToken> token;
  };

  struct Watched {
    std::string label;
    std::function<WatchVerdict()> on_expire;
    SimTime deadline = 0;
  };

  // One in-flight sequenced frame of a selective-repeat window. Owned by
  // the channel's window map; the transmitting coroutine, the per-entry
  // retransmit coroutine, and the SACK handler all reach it through the
  // (channel, seq) key. The entry is only erased by the transmitting
  // coroutine, and only once `retransmitting` has drained, so the pointers
  // the detached retransmit coroutine holds across awaits stay valid.
  struct WindowEntry {
    explicit WindowEntry(Engine& engine) : done(engine) {}
    enum Result : std::uint8_t { kPending, kAcked, kGiveUp, kCancelled, kCrashed };
    IoVec iov;
    std::uint32_t header = 0;
    std::uint32_t tag = 0;
    std::string label;
    std::uint64_t flow = 0;
    std::shared_ptr<CancelToken> token;
    std::shared_ptr<TxControl> ctl;  // latest attempt on the wire
    std::uint32_t attempts = 0;      // transmissions actually performed
    SimTime timeout = 0;             // current (backed-off) retransmit timeout
    SimTime last_tx_end = 0;         // wire end of the latest attempt
    TimerSet::Handle timer = 0;
    Result result = kPending;
    bool retransmitting = false;  // a detached retransmit is in flight
    SimEvent done;                // set on resolution and on retransmit drain
  };

  // Per-channel selective-repeat send window (window > 1 only).
  struct ChannelWindow {
    explicit ChannelWindow(Engine& engine) : open(engine) {}
    std::map<std::uint64_t, std::unique_ptr<WindowEntry>> inflight;  // by seq
    SimEvent open;  // set whenever the window slides; admission re-checks
  };

  // Per-channel barrier gating sequenced traffic while a post-fence resync
  // handshake is in flight. Never destroyed once created (parked coroutines
  // hold references into `open` across awaits).
  struct ResyncBarrier {
    explicit ResyncBarrier(Engine& engine) : open(engine) {}
    bool resyncing = false;
    std::uint32_t retries = 0;
    TimerSet::Handle timer = 0;
    SimEvent open;  // set when the handshake completes (or is abandoned)
  };

  ReliableOptions ConfiguredWith(ReliableOptions options) {
    rng_ = SplitMix64(options.seed);
    if (options.watchdog_timeout > 0 && options.watchdog_period == 0) {
      options.watchdog_period = options.watchdog_timeout / 4;
    }
    return options;
  }

  void OnAck(std::uint64_t channel, std::uint64_t seq, bool ok);
  SimTime WithJitter(SimTime timeout);

  // --- Selective-repeat window machinery (options_.window > 1) ---
  Task<TxReport> TransmitWindowed(std::uint64_t channel, IoVec iov, std::uint32_t header,
                                  std::uint32_t tag, std::string label,
                                  std::shared_ptr<CancelToken> token, std::uint64_t flow);
  // Batched SACK train from the peer: resolves every covered in-flight entry.
  void OnSack(std::uint64_t channel, const std::vector<SackCell>& cells);
  WindowEntry* FindEntry(std::uint64_t channel, std::uint64_t seq);
  void ResolveAcked(WindowEntry& entry);
  // Timeout/nack escalation: emits the attempt's ack_wait span, then either
  // gives up (retries exhausted) or launches a detached retransmission.
  void RetransmitOrGiveUp(std::uint64_t channel, std::uint64_t seq, bool from_nack);
  Task<void> RetransmitEntry(std::uint64_t channel, std::uint64_t seq, bool from_nack);
  void ArmEntryTimer(std::uint64_t channel, std::uint64_t seq);
  void ArmScan();
  void RunScan();
  void Instant(const std::string& text, std::uint64_t flow = 0);

  // --- Epoch fencing machinery ---
  // Fence cell from the peer adapter: the peer rebooted into `peer_epoch`.
  void OnFence(std::uint64_t channel, std::uint32_t peer_epoch);
  void OnResyncAck(std::uint64_t channel, std::uint32_t peer_epoch);
  // Resolves every in-flight round/entry on `channel` as kCrashed.
  void AbortChannel(std::uint64_t channel);
  void StartResync(std::uint64_t channel);
  void SendResyncAttempt(std::uint64_t channel);
  void ReleaseResync(std::uint64_t channel);
  // Parks until any resync handshake on `channel` completes; returns false
  // if the transfer was cancelled while parked.
  Task<bool> AwaitResync(std::uint64_t channel, std::shared_ptr<CancelToken> token,
                         const std::string& label, std::uint64_t flow);

  Engine* engine_;
  Adapter* adapter_;
  std::string xfer_track_;
  TraceLog* trace_ = nullptr;
  LatencyHistogram* ack_rtt_ = nullptr;
  LatencyHistogram* retransmit_delay_ = nullptr;
  std::function<void(const std::string& label)> cancel_hook_;
  ReliableOptions options_;
  TimerSet timers_;
  SplitMix64 rng_;
  Stats stats_;

  std::map<std::uint64_t, std::uint64_t> next_seq_;  // channel -> last used
  std::map<std::pair<std::uint64_t, std::uint64_t>, PendingAck*> pending_acks_;
  std::map<std::uint64_t, std::unique_ptr<ChannelWindow>> windows_;

  std::uint32_t local_epoch_ = 1;  // this node's incarnation (bumped on crash)
  bool crashed_ = false;
  std::map<std::uint64_t, std::uint32_t> peer_epoch_;  // channel -> last learned
  std::map<std::uint64_t, std::unique_ptr<ResyncBarrier>> resync_;

  std::uint64_t next_watch_id_ = 1;
  std::map<std::uint64_t, Watched> watched_;
  bool scan_armed_ = false;
};

}  // namespace genie

#endif  // GENIE_SRC_GENIE_RELIABLE_H_
