// Kernel system buffers and input alignment (paper Section 5.2).
//
// A SysBuffer is a run of raw kernel frames (not owned by a memory object)
// used as a DMA target or source. With *system input alignment* the buffer
// starts at the same page offset and has the same length as the application
// buffer it will be disposed into, so whole pages can be swapped even when
// the application buffer is not page-aligned; partially filled pages are
// moved by (reverse) copyout under the threshold rule.
#ifndef GENIE_SRC_GENIE_SYS_BUFFER_H_
#define GENIE_SRC_GENIE_SYS_BUFFER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/mem/alloc_point.h"
#include "src/mem/phys_memory.h"
#include "src/vm/address_space.h"
#include "src/vm/io_vec.h"

namespace genie {

struct SysBuffer {
  std::vector<FrameId> frames;  // kInvalidFrame marks pages consumed by swaps
  IoVec iov;
  std::uint64_t length = 0;
  std::uint32_t page_offset = 0;  // offset of the first byte in the first frame
};

// Allocates a system buffer of `len` bytes whose first byte sits at
// `page_offset` within its first frame (0 = conventional unaligned buffer).
SysBuffer AllocateSysBuffer(PhysicalMemory& pm, std::uint32_t page_offset, std::uint64_t len);

// As AllocateSysBuffer, but recoverable: on allocation failure (exhaustion or
// an injected FaultSite::kFrameAllocate/kFrameAllocateRun) any partially
// allocated frames are freed and false is returned with `*out` empty.
bool TryAllocateSysBuffer(PhysicalMemory& pm, std::uint32_t page_offset, std::uint64_t len,
                          SysBuffer* out);

// Alignment-degrading allocation for the reliability layer: tries the
// aligned buffer first (`ensure_frames` is called with the page count of
// each attempt so the caller can run pageout before it), and when the
// aligned request cannot be satisfied falls back to an offset-0 buffer —
// one page smaller for any nonzero offset — whose dispose copies out
// instead of swapping. `*degraded` reports which attempt succeeded.
// Returns false only when both attempts fail.
bool TryAllocateSysBufferDegraded(PhysicalMemory& pm, std::uint32_t page_offset,
                                  std::uint64_t len, SysBuffer* out, bool* degraded,
                                  const std::function<bool(std::uint64_t)>& ensure_frames);

// Frees the frames still held by `buf` (those not consumed by page swaps).
void FreeSysBuffer(PhysicalMemory& pm, SysBuffer& buf);

// Parallel-mode sysbuf allocation: draws one physically contiguous run from
// a per-thread AllocationPoint (bump fast path, fill/trap refill) instead
// of the global free list, so the hot path takes no lock. Always
// single-segment; fails (false) only when PhysicalMemory cannot supply a
// contiguous run at refill. Buffers from this path must be freed with the
// AllocationPoint overload below, on the owning thread, and must not have
// pages consumed by swaps (the parallel host path never disposes by swap).
bool TryAllocateSysBufferFrom(AllocationPoint& ap, std::uint32_t page_offset,
                              std::uint64_t len, SysBuffer* out);
void FreeSysBuffer(AllocationPoint& ap, SysBuffer& buf);

// Byte accounting of an input dispose, used to charge swap vs copy costs.
struct DisposePlan {
  std::uint64_t swapped_bytes = 0;   // moved by page swap
  std::uint64_t copied_bytes = 0;    // moved by copyout or reverse copyout
  std::uint64_t pages_swapped = 0;
  std::uint64_t reverse_copyouts = 0;
  // Swaps into previously untouched buffer pages, which displace no old
  // frame (an overlay pool must replenish itself by this many pages).
  std::uint64_t swaps_without_displaced = 0;
  // False if the dispose stopped early because the application buffer became
  // unusable mid-transfer (region removed, or a page could not be materialized
  // under an injected allocation/backing failure). The byte counts above
  // reflect what was actually moved; unconsumed source frames remain owned by
  // `src` for the caller to free.
  bool ok = true;
};

// Disposes `len` bytes of input data from aligned source pages into the
// application buffer [va, va+len) by swapping full pages and applying the
// reverse-copyout rule to partial ones (Section 5.2 and Figure 2):
//   data in a partial source page <= threshold  -> copy it out;
//   longer                                      -> complete the source page
//                                                  from the application page,
//                                                  then swap.
//
// Preconditions: src.page_offset == va % page_size (alignment), and
// src.frames covers ceil(len) pages. Swapped-in frames join the buffer's
// memory object; displaced application frames are passed to `retire_old`
// (default: freed). Consumed source frames are marked kInvalidFrame in
// `src.frames`.
DisposePlan DisposeAlignedIntoApp(AddressSpace& app, Vaddr va, std::uint64_t len,
                                  SysBuffer& src, std::uint64_t reverse_copyout_threshold,
                                  std::function<void(FrameId)> retire_old = nullptr);

// Unaligned fallback: copies all `len` bytes from `src_iov` into the
// application buffer.
DisposePlan DisposeCopyOutIntoApp(AddressSpace& app, Vaddr va, std::uint64_t len,
                                  const IoVec& src_iov);

}  // namespace genie

#endif  // GENIE_SRC_GENIE_SYS_BUFFER_H_
