// Deterministic end-of-run report: per-source telemetry series summaries,
// per-tenant SLO verdicts, the alert log, and (optionally) the trace-derived
// critical-path table, as one JSON document.
//
// Every field derives from sim-clock stamps and registry integers (doubles
// only through the round-trip formatter), so two same-seed runs — across
// optimization levels and sanitizers — emit byte-identical reports. The CI
// telemetry leg diffs exactly this output.
#ifndef GENIE_SRC_OBS_RUN_REPORT_H_
#define GENIE_SRC_OBS_RUN_REPORT_H_

#include <ostream>
#include <string>

#include "src/obs/telemetry.h"
#include "src/sim/trace.h"

namespace genie {

class RunReport {
 public:
  // `sampler` is required; `slo` may be null (the report then omits the SLO
  // section). Both must outlive the report.
  RunReport(const TelemetrySampler* sampler, const SloTracker* slo);

  // Embeds the per-flow critical-path breakdowns of `trace` (see
  // AnalyzeTrace) under "critical_path". Null clears.
  void set_critical_path(const TraceLog* trace) { trace_ = trace; }

  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;

 private:
  const TelemetrySampler* sampler_;
  const SloTracker* slo_;
  const TraceLog* trace_ = nullptr;
};

}  // namespace genie

#endif  // GENIE_SRC_OBS_RUN_REPORT_H_
