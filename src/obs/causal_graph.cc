#include "src/obs/causal_graph.h"

#include <algorithm>
#include <set>

namespace genie {

namespace {

// "out#3[emulated copy].prepare" -> "out#3[emulated copy]"; empty when the
// name is not a stage span of an endpoint transfer.
std::string TransferLabelOf(const std::string& name) {
  const std::size_t bracket = name.find(']');
  if (bracket == std::string::npos || name.find('#') == std::string::npos) {
    return std::string();
  }
  return name.substr(0, bracket + 1);
}

}  // namespace

SimTime CausalGraph::end() const {
  SimTime latest = start();
  for (const CausalEvent& e : events) {
    latest = std::max(latest, e.end);
  }
  return latest;
}

std::vector<std::uint64_t> Flows(const TraceLog& log) {
  std::set<std::uint64_t> seen;
  for (const TraceLog::Event& e : log.events()) {
    if (e.flow != 0) {
      seen.insert(e.flow);
    }
  }
  return std::vector<std::uint64_t>(seen.begin(), seen.end());
}

CausalGraph BuildCausalGraph(const TraceLog& log, std::uint64_t flow) {
  CausalGraph graph;
  graph.flow = flow;

  // Pass 1: events stamped with the flow id. Collect the sender label (the
  // first "out#..." stage span) and every receiver input label whose events
  // carry the flow — those inputs' unstamped events are pulled in below.
  std::set<std::string> input_labels;
  for (const TraceLog::Event& e : log.events()) {
    if (e.flow != flow) {
      continue;
    }
    graph.events.push_back(
        CausalEvent{e.track, e.name, e.category, e.start, e.end, e.instant, false});
    const std::string label = TransferLabelOf(e.name);
    if (label.empty()) {
      continue;
    }
    if (label.compare(0, 4, "out#") == 0 && graph.label.empty()) {
      graph.label = label;
    } else if (label.compare(0, 3, "in#") == 0) {
      input_labels.insert(label);
    }
  }

  // Pass 2 (label join): the receiver posts its input before any sender
  // exists, so the prepare span — and any VM instants keyed to the input's
  // context — carry flow 0. They share the input's label prefix with the
  // flow-stamped dispose, which names them as part of this transfer.
  if (!input_labels.empty()) {
    for (const TraceLog::Event& e : log.events()) {
      if (e.flow != 0) {
        continue;
      }
      const std::string label = TransferLabelOf(e.name);
      if (!label.empty() && input_labels.count(label) != 0) {
        graph.events.push_back(
            CausalEvent{e.track, e.name, e.category, e.start, e.end, e.instant, true});
      }
    }
  }

  if (!graph.label.empty()) {
    const std::size_t open = graph.label.find('[');
    if (open != std::string::npos && graph.label.back() == ']') {
      graph.semantics = graph.label.substr(open + 1, graph.label.size() - open - 2);
    }
  }

  // (start, end, insertion order) is a happens-before linearization: in a
  // discrete-event simulation an effect is never recorded before its cause.
  std::stable_sort(graph.events.begin(), graph.events.end(),
                   [](const CausalEvent& a, const CausalEvent& b) {
                     if (a.start != b.start) {
                       return a.start < b.start;
                     }
                     return a.end < b.end;
                   });
  return graph;
}

}  // namespace genie
