#include "src/obs/critical_path.h"

#include <algorithm>
#include <iomanip>
#include <map>

#include "src/util/json.h"
#include "src/util/units.h"

namespace genie {

namespace {

bool EndsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsWireSpan(const CausalEvent& e) {
  return !e.instant && e.category == "net" && e.name.compare(0, 6, "frame ") == 0;
}

// Higher rank claims an instant covered by several spans. Retransmission
// dominates (it is the cause of every overlap it appears in); real wire time
// beats the sender-side waits that merely contain it; receiver dispose is
// real work, so it beats the sender's concurrent ack wait; a window stall
// (admission blocked behind other transfers' unacked frames) beats the ack
// wait it overlaps, since the stall is the pipelining bottleneck; the
// umbrella ".transmit" span and anything unrecognized rank lowest.
int Rank(Stage stage) {
  switch (stage) {
    case Stage::kRetransmit:
      return 10;
    case Stage::kWire:
      return 9;
    case Stage::kCreditWait:
      return 8;
    // Fabric arbitration sits below the credit wait that may contain it
    // (credits are the end-to-end bottleneck when both overlap) but above
    // dispose: a frame parked in a switch queue is the transfer's live
    // bottleneck, dispose work merely overlaps it.
    case Stage::kFabricWait:
      return 7;
    case Stage::kDispose:
      return 6;
    case Stage::kWindowStall:
      return 5;
    case Stage::kAckWait:
      return 4;
    case Stage::kPrepare:
      return 3;
    case Stage::kReceiverPrepare:
      return 2;
    case Stage::kOther:
      return 1;
  }
  return 0;
}

struct ClassifiedSpan {
  SimTime start = 0;
  SimTime end = 0;
  Stage stage = Stage::kOther;
};

}  // namespace

std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kPrepare:
      return "prepare";
    case Stage::kCreditWait:
      return "credit_wait";
    case Stage::kWire:
      return "wire";
    case Stage::kReceiverPrepare:
      return "receiver_prepare";
    case Stage::kAckWait:
      return "ack_wait";
    case Stage::kRetransmit:
      return "retransmit";
    case Stage::kDispose:
      return "dispose";
    case Stage::kWindowStall:
      return "window_stall";
    case Stage::kFabricWait:
      return "fabric_wait";
    case Stage::kOther:
      return "other";
  }
  return "?";
}

FlowBreakdown AttributeStages(const CausalGraph& graph) {
  FlowBreakdown out;
  out.flow = graph.flow;
  out.label = graph.label;
  out.semantics = graph.semantics;
  out.start = graph.start();
  out.makespan = graph.makespan();

  // Classify every span. Wire spans after the first, and ack waits before
  // the last, are loss recovery; graph.events is causally ordered, so "first"
  // and "last" are well defined.
  std::size_t ack_waits = 0;
  for (const CausalEvent& e : graph.events) {
    if (!e.instant && EndsWith(e.name, ".ack_wait")) {
      ++ack_waits;
    }
  }
  std::vector<ClassifiedSpan> spans;
  bool saw_wire = false;
  std::size_t ack_wait_index = 0;
  for (const CausalEvent& e : graph.events) {
    if (e.instant || e.end <= e.start) {
      continue;
    }
    Stage stage = Stage::kOther;
    if (IsWireSpan(e)) {
      stage = saw_wire ? Stage::kRetransmit : Stage::kWire;
      saw_wire = true;
    } else if (e.name == "credit_wait") {
      stage = Stage::kCreditWait;
    } else if (e.name == "fabric_wait") {
      stage = Stage::kFabricWait;
    } else if (EndsWith(e.name, ".ack_wait")) {
      stage = ++ack_wait_index == ack_waits ? Stage::kAckWait : Stage::kRetransmit;
    } else if (EndsWith(e.name, ".nack_delay")) {
      stage = Stage::kRetransmit;
    } else if (EndsWith(e.name, ".window_stall")) {
      stage = Stage::kWindowStall;
    } else if (EndsWith(e.name, ".dispose")) {
      stage = Stage::kDispose;
    } else if (EndsWith(e.name, ".prepare")) {
      stage = e.name.compare(0, 3, "in#") == 0 ? Stage::kReceiverPrepare : Stage::kPrepare;
    }
    spans.push_back(ClassifiedSpan{e.start, e.end, stage});
  }

  // Priority sweep over the flow's elementary intervals: each interval is
  // charged to the highest-ranked span covering it, or kOther when bare.
  // Every nanosecond of the makespan is charged exactly once, so the stage
  // totals sum to the makespan by construction.
  std::vector<SimTime> bounds{out.start, graph.end()};
  for (const ClassifiedSpan& s : spans) {
    bounds.push_back(std::clamp(s.start, out.start, graph.end()));
    bounds.push_back(std::clamp(s.end, out.start, graph.end()));
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const SimTime lo = bounds[i];
    const SimTime hi = bounds[i + 1];
    Stage best = Stage::kOther;
    int best_rank = 0;
    for (const ClassifiedSpan& s : spans) {
      if (s.start <= lo && hi <= s.end && Rank(s.stage) > best_rank) {
        best = s.stage;
        best_rank = Rank(s.stage);
      }
    }
    out.stage_ns[static_cast<std::size_t>(best)] += hi - lo;
  }
  return out;
}

std::vector<FlowBreakdown> AnalyzeTrace(const TraceLog& log) {
  std::vector<FlowBreakdown> out;
  for (const std::uint64_t flow : Flows(log)) {
    out.push_back(AttributeStages(BuildCausalGraph(log, flow)));
  }
  return out;
}

void WriteBreakdownJson(std::ostream& os, const std::vector<FlowBreakdown>& flows) {
  os << "{\"flows\":[";
  bool first = true;
  for (const FlowBreakdown& f : flows) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n{\"flow\":" << f.flow << ",\"label\":";
    WriteJsonString(os, f.label);
    os << ",\"semantics\":";
    WriteJsonString(os, f.semantics);
    os << ",\"start_us\":";
    WriteJsonDouble(os, SimTimeToMicros(f.start));
    os << ",\"makespan_us\":";
    WriteJsonDouble(os, SimTimeToMicros(f.makespan));
    os << ",\"stages\":{";
    for (std::size_t s = 0; s < kStageCount; ++s) {
      if (s != 0) {
        os << ",";
      }
      WriteJsonString(os, StageName(static_cast<Stage>(s)));
      os << ":";
      WriteJsonDouble(os, SimTimeToMicros(f.stage_ns[s]));
    }
    os << "}}";
  }
  os << "\n]}\n";
}

void WriteBreakdownTable(std::ostream& os, const std::vector<FlowBreakdown>& flows) {
  // Group by semantics in first-appearance order (deterministic: the trace
  // is).
  std::vector<std::string> order;
  std::map<std::string, std::vector<const FlowBreakdown*>> groups;
  for (const FlowBreakdown& f : flows) {
    const std::string key = f.semantics.empty() ? "?" : f.semantics;
    if (groups.find(key) == groups.end()) {
      order.push_back(key);
    }
    groups[key].push_back(&f);
  }
  os << std::left << std::setw(22) << "semantics" << std::right << std::setw(4) << "n"
     << std::setw(12) << "total_us";
  for (std::size_t s = 0; s < kStageCount; ++s) {
    os << std::setw(18) << StageName(static_cast<Stage>(s));
  }
  os << "\n";
  const auto mean_us = [](double total_ns, std::size_t n) {
    return SimTimeToMicros(static_cast<SimTime>(total_ns / static_cast<double>(n)));
  };
  for (const std::string& key : order) {
    const auto& group = groups[key];
    double makespan = 0;
    std::array<double, kStageCount> stages{};
    for (const FlowBreakdown* f : group) {
      makespan += static_cast<double>(f->makespan);
      for (std::size_t s = 0; s < kStageCount; ++s) {
        stages[s] += static_cast<double>(f->stage_ns[s]);
      }
    }
    os << std::left << std::setw(22) << key << std::right << std::setw(4) << group.size()
       << std::setw(12) << std::fixed << std::setprecision(2)
       << mean_us(makespan, group.size());
    for (std::size_t s = 0; s < kStageCount; ++s) {
      os << std::setw(18) << mean_us(stages[s], group.size());
    }
    os << "\n";
    os.unsetf(std::ios::fixed);
  }
}

}  // namespace genie
