// Critical-path latency attribution over a flow's causal graph.
//
// The analyzer decomposes a transfer's end-to-end simulated latency into the
// stages of the buffering-semantics taxonomy: sender prepare, credit wait,
// wire occupancy, receiver prepare, ack wait, retransmission, window stall,
// and dispose.
// Attribution is a deterministic priority sweep over the flow's time range:
// at every instant the highest-priority overlapping span claims the time, and
// instants not covered by any span fall into "other". The per-stage totals
// therefore sum *exactly* to the flow's makespan — the trace-derived table is
// directly comparable against the CostModel's analytic Table 6.
//
// Retransmission attribution: the first wire span of a flow is real delivery
// (kWire); every later wire span, every ack wait except the last, and every
// nack pause exist only because a frame was lost or damaged, so they charge
// to kRetransmit. A lossy run thus shows its extra latency under
// "retransmit", with "wire" identical to the lossless run.
#ifndef GENIE_SRC_OBS_CRITICAL_PATH_H_
#define GENIE_SRC_OBS_CRITICAL_PATH_H_

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/causal_graph.h"

namespace genie {

enum class Stage : std::uint8_t {
  kPrepare = 0,      // sender prepare (Table 2 left column)
  kCreditWait,       // blocked on flow-control credit
  kWire,             // first delivery's wire occupancy
  kReceiverPrepare,  // receiver prepare (Tables 3/4)
  kAckWait,          // final attempt's wire-end-to-ack gap
  kRetransmit,       // loss recovery: extra wire spans, earlier ack waits,
                     // nack pauses
  kDispose,          // sender + receiver dispose
  kWindowStall,      // admission blocked on a full selective-repeat window
  kFabricWait,       // blocked in switch-fabric arbitration (contended links)
  kOther,            // covered by no span (fixed hardware latencies, gaps)
};
inline constexpr std::size_t kStageCount = 10;

std::string_view StageName(Stage stage);

// One flow's attributed latency. stage_ns sums exactly to makespan.
struct FlowBreakdown {
  std::uint64_t flow = 0;
  std::string label;      // "out#<id>[<semantics>]", empty if unknown
  std::string semantics;  // parsed from the label, empty if unknown
  SimTime start = 0;
  SimTime makespan = 0;
  std::array<SimTime, kStageCount> stage_ns{};

  SimTime stage(Stage s) const { return stage_ns[static_cast<std::size_t>(s)]; }
};

// Attributes `graph`'s makespan across the stages.
FlowBreakdown AttributeStages(const CausalGraph& graph);

// Analyzes every flow recorded in `log`, ascending by flow id.
std::vector<FlowBreakdown> AnalyzeTrace(const TraceLog& log);

// Deterministic JSON document of the per-flow breakdowns (times in
// microseconds). Byte-identical across runs of the same deterministic
// schedule — the golden analyzer test diffs this output.
void WriteBreakdownJson(std::ostream& os, const std::vector<FlowBreakdown>& flows);

// Human-readable per-semantics breakdown table (the trace-derived Table-6
// analogue): one row per semantics, mean stage times in microseconds over
// that semantics' flows, in first-appearance order.
void WriteBreakdownTable(std::ostream& os, const std::vector<FlowBreakdown>& flows);

}  // namespace genie

#endif  // GENIE_SRC_OBS_CRITICAL_PATH_H_
