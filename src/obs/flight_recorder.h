// Crash-time flight recorder: a bounded ring of recent trace events that is
// cheap enough to leave on in every stress run and dumps itself the moment
// something goes wrong.
//
// The recorder puts an attached TraceLog into ring mode (see
// TraceLog::set_capacity) so steady-state cost is O(1) per event with no
// allocation churn, then exposes Dump()/DumpToFile(): a self-contained JSON
// document with the failure reason, the node, the simulated time, the replay
// seed, a metrics snapshot, and the last N trace events. Wire it to the
// failure edges — VmInvariants::SetViolationHook, the reliable layer's
// watchdog-cancel hook, a failed test assertion — and a red stress run
// leaves behind exactly the context needed to replay and diagnose it.
//
// Recording and dumping schedule no events and draw no randomness, so an
// attached recorder never perturbs the deterministic schedule (seed-replay
// digests stay bit-identical).
#ifndef GENIE_SRC_OBS_FLIGHT_RECORDER_H_
#define GENIE_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "src/obs/metrics.h"
#include "src/sim/trace.h"

namespace genie {

class FlightRecorder {
 public:
  struct Config {
    // Ring size installed on the trace log (events kept ≈ capacity..2x).
    std::size_t capacity = 256;
    // Replay seed recorded in every dump (0 = not seed-driven).
    std::uint64_t seed = 0;
    // Dump directory; the GENIE_FLIGHT_DIR environment variable overrides
    // it, and "." is the fallback when both are empty.
    std::string dir;
  };

  // `log` must outlive the recorder. `metrics` may be null (dumps then carry
  // no snapshot). The log is switched into ring mode with cfg.capacity.
  FlightRecorder(std::string node, TraceLog* log, const MetricsRegistry* metrics, Config cfg);
  FlightRecorder(std::string node, TraceLog* log, const MetricsRegistry* metrics);

  // Writes the dump document for `reason` to `os`.
  void Dump(std::ostream& os, std::string_view reason) const;

  // Writes the dump to "<dir>/flight_<node>_<n>.json" and returns the path
  // (empty string if the file could not be opened). `n` is a per-recorder
  // counter, so successive failures in one run do not clobber each other.
  // With a nonzero incarnation epoch set, the name becomes
  // "flight_<node>_e<epoch>_<n>.json" so dumps from successive incarnations
  // of a crash-restarting node are distinguishable at a glance.
  std::string DumpToFile(std::string_view reason);

  // Incarnation epoch stamped into dump filenames and documents. Zero (the
  // default) keeps the legacy name and omits the field — a recorder on a
  // node that never crashes produces byte-identical dumps to before epochs
  // existed. Wire a node's crash/restart observers to this: dump at crash
  // time (before state is discarded), then set the new epoch and clear the
  // trace ring on restart so the next incarnation records from a clean slate.
  void set_epoch(std::uint32_t epoch) { epoch_ = epoch; }
  std::uint32_t epoch() const { return epoch_; }

  std::uint64_t dumps_written() const { return dumps_written_; }

  // Exports the dump count as a "flight.dumps" gauge so telemetry series and
  // snapshots show when (and how often) the recorder fired. The recorder must
  // outlive `registry`'s last Snapshot().
  void RegisterGauges(MetricsRegistry& registry);

 private:
  std::string node_;
  TraceLog* log_;
  const MetricsRegistry* metrics_;
  Config cfg_;
  std::uint32_t epoch_ = 0;
  std::uint64_t dumps_written_ = 0;
};

}  // namespace genie

#endif  // GENIE_SRC_OBS_FLIGHT_RECORDER_H_
