// Causal graph reconstruction from a TraceLog.
//
// Every trace event stamped with a flow id (minted by Engine::NextFlowId at
// the sending endpoint) belongs to exactly one end-to-end transfer, whatever
// node it was recorded on. This module gathers a flow's events from a
// process-wide log, orders them causally, and exposes the per-transfer view
// the critical-path analyzer consumes.
//
// Receiver prepares are the one stage a flow id cannot reach: the input is
// posted before any sender exists, so its prepare span carries flow 0. It is
// joined by label instead — the receiver's "in#<k>[...].dispose" span *does*
// carry the flow id, and every event sharing that "in#<k>[...]" label prefix
// belongs to the same input operation.
#ifndef GENIE_SRC_OBS_CAUSAL_GRAPH_H_
#define GENIE_SRC_OBS_CAUSAL_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/trace.h"

namespace genie {

// One node of a flow's causal graph: a trace event plus where it came from.
struct CausalEvent {
  std::string track;
  std::string name;
  std::string category;
  SimTime start = 0;
  SimTime end = 0;
  bool instant = false;
  // True for events pulled in by the label join (receiver prepare) rather
  // than a flow stamp.
  bool label_joined = false;
};

// A flow's reconstructed causal graph. Events are sorted by (start, end,
// insertion order), which in a discrete-event simulation is a valid
// linearization of happens-before: an effect can never be recorded earlier
// than its cause.
struct CausalGraph {
  std::uint64_t flow = 0;
  // "out#<id>[<semantics>]" of the originating output, empty if the flow has
  // no endpoint-level spans (e.g. a raw adapter test).
  std::string label;
  // Semantics name parsed out of the label's brackets, empty when unknown.
  std::string semantics;
  std::vector<CausalEvent> events;

  SimTime start() const { return events.empty() ? 0 : events.front().start; }
  SimTime end() const;
  SimTime makespan() const { return end() - start(); }
};

// All flow ids present in `log`, ascending (deterministic enumeration order).
std::vector<std::uint64_t> Flows(const TraceLog& log);

// Reconstructs `flow`'s graph from `log`: every event stamped with the flow
// id, plus (label join) every event of any receiver input whose dispose
// carries it.
CausalGraph BuildCausalGraph(const TraceLog& log, std::uint64_t flow);

}  // namespace genie

#endif  // GENIE_SRC_OBS_CAUSAL_GRAPH_H_
