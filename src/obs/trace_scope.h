// Per-transfer tracing helpers over TraceLog.
//
// TraceScope is an RAII span: opened at construction (at the log's current
// simulated time), closed by End() or the destructor. It is safe to keep in
// a coroutine frame across co_awaits — the span simply covers the elapsed
// simulated time, concurrent scopes on one track are fine in the trace-event
// model.
//
// ScopedTraceContext sets the log's transfer context ("out#3[copy]") for a
// *synchronous* extent only: deeper layers (the VM fault handler) prefix
// their instants with it, attributing page-ins, TCOW copies and zero-fills
// to the transfer that triggered them. Never hold one across a co_await —
// another task's events would inherit the context.
#ifndef GENIE_SRC_OBS_TRACE_SCOPE_H_
#define GENIE_SRC_OBS_TRACE_SCOPE_H_

#include <string>

#include "src/sim/trace.h"

namespace genie {

class TraceScope {
 public:
  // A null `log` makes the scope a no-op. A nonzero `flow` stamps the span
  // with that causal flow id (see TraceLog::Event::flow).
  TraceScope(TraceLog* log, std::string track, std::string name,
             std::string category = "xfer", std::uint64_t flow = 0);
  ~TraceScope() { End(); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  // Emits the span [construction, now). Idempotent.
  void End();

 private:
  TraceLog* log_;
  std::string track_;
  std::string name_;
  std::string category_;
  std::uint64_t flow_ = 0;
  SimTime start_ = 0;
  bool ended_ = false;
};

class ScopedTraceContext {
 public:
  ScopedTraceContext(TraceLog* log, const std::string& context);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceLog* log_;
  std::string previous_;
};

}  // namespace genie

#endif  // GENIE_SRC_OBS_TRACE_SCOPE_H_
